// Package percival is the public API of the PERCIVAL reproduction: a
// browser-embedded, deep-learning-powered perceptual ad blocker (Din, Tigas,
// King, Livshits — "PERCIVAL: Making In-Browser Perceptual Ad Blocking
// Practical with Deep Learning").
//
// The package bundles the internal substrates behind a small surface:
//
//	clf, arch, err := percival.QuickTrain(percival.QuickTrainOptions{})
//	verdict := clf.IsAd(bitmap)               // classify one decoded frame
//	b, err := percival.AttachToBrowser(...)   // render with in-path blocking
//
// Trained models round-trip through SaveModel/LoadModel in the compact PCVL
// binary format (optionally fp16-compressed, the paper's <2 MB deployment
// form).
package percival

import (
	"fmt"
	"io"
	"math/rand"

	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/dataset"
	"percival/internal/easylist"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/webgen"
)

// Classifier is the PERCIVAL frame-classification service. It implements the
// rendering pipeline's FrameInspector hook and is safe for concurrent use by
// parallel raster workers.
type Classifier = core.Percival

// Options configures a Classifier (decision threshold, sync/async mode,
// memoization cache size).
type Options = core.Options

// Deployment modes for Options.Mode.
const (
	// Synchronous classifies inside the raster task, blocking ads before
	// first paint at the cost of added render latency.
	Synchronous = core.Synchronous
	// Asynchronous renders first and classifies in the background,
	// memoizing verdicts so ads are blocked on subsequent sightings.
	Asynchronous = core.Asynchronous
)

// Arch is a network architecture configuration.
type Arch = squeezenet.Config

// PaperArch returns the paper-scale architecture: 224×224×4 input, six fire
// modules, <2 MB of weights.
func PaperArch() Arch { return squeezenet.PaperConfig() }

// SmallArch returns a reduced-resolution architecture with the same topology
// for CPU-budget training and experimentation.
func SmallArch(res int) Arch { return squeezenet.SmallConfig(res) }

// New wraps a trained network in a Classifier.
func New(net *nn.Sequential, arch Arch, opts Options) (*Classifier, error) {
	return core.New(net, arch, opts)
}

// QuickTrainOptions parameterizes QuickTrain. Zero values select sensible
// reduced-scale defaults.
type QuickTrainOptions struct {
	// Res is the input resolution (default 32; 224 = paper scale).
	Res int
	// Samples is the synthetic crawl size (default 700).
	Samples int
	// Epochs is the training budget (default 8).
	Epochs int
	// Seed drives data generation and initialization (default 1).
	Seed int64
	// Log receives per-epoch training lines when non-nil.
	Log io.Writer
	// Mode and Threshold configure the resulting classifier.
	Mode      core.Mode
	Threshold float64
}

// QuickTrain synthesizes a crawl-distribution dataset, trains the PERCIVAL
// fork on it with the paper's optimizer family, and returns a ready
// classifier plus the architecture used. This is the programmatic
// equivalent of cmd/percival-train.
func QuickTrain(o QuickTrainOptions) (*Classifier, Arch, error) {
	net, arch, err := TrainNetwork(o)
	if err != nil {
		return nil, arch, err
	}
	clf, err := core.New(net, arch, Options{Mode: o.Mode, Threshold: o.Threshold})
	if err != nil {
		return nil, arch, err
	}
	return clf, arch, nil
}

// TrainNetwork is QuickTrain without the service wrapper: it returns the raw
// trained network, e.g. for serialization with SaveModel.
func TrainNetwork(o QuickTrainOptions) (*nn.Sequential, Arch, error) {
	if o.Res == 0 {
		o.Res = 32
	}
	if o.Samples == 0 {
		o.Samples = 700
	}
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	var arch Arch
	if o.Res >= 224 {
		arch = squeezenet.PaperConfig()
	} else {
		arch = squeezenet.SmallConfig(o.Res)
	}
	ds := dataset.Generate(o.Seed, synth.CrawlStyle(), o.Samples)
	ds.Dedup(2)
	ds.Balance(rand.New(rand.NewSource(o.Seed + 1)))
	cfg := dataset.FastTraining(arch, o.Epochs)
	cfg.Seed = o.Seed
	cfg.Log = o.Log
	net, err := dataset.Train(cfg, ds)
	if err != nil {
		return nil, arch, fmt.Errorf("percival: training: %w", err)
	}
	return net, arch, nil
}

// SaveModel writes a trained network to path in the PCVL format; compressed
// selects fp16 quantization (half the footprint, the paper's "<2 MB" form).
func SaveModel(path string, net *nn.Sequential, compressed bool) error {
	return nn.SaveFile(path, net, compressed)
}

// LoadModel reads weights from path into a freshly built network of the
// given architecture and wraps it in a Classifier.
func LoadModel(path string, arch Arch, opts Options) (*Classifier, error) {
	net, err := squeezenet.Build(arch)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadFile(path, net); err != nil {
		return nil, fmt.Errorf("percival: load model: %w", err)
	}
	return core.New(net, arch, opts)
}

// BrowserOptions configures AttachToBrowser.
type BrowserOptions struct {
	// Corpus is the synthetic web to browse.
	Corpus *webgen.Corpus
	// Shields enables Brave-style filter-list blocking using FilterList.
	Shields bool
	// FilterList is the EasyList text used when Shields is set; empty uses
	// the corpus's synthetic list.
	FilterList string
	// RasterWorkers sizes the raster pool (default 4).
	RasterWorkers int
}

// AttachToBrowser builds a browser simulator with the classifier installed
// at the decode/raster choke point — the paper's deployment (§3).
// A nil classifier renders the baseline configuration.
func AttachToBrowser(clf *Classifier, o BrowserOptions) (*browser.Browser, error) {
	if o.Corpus == nil {
		return nil, fmt.Errorf("percival: browser needs a corpus")
	}
	profile := browser.Chromium()
	if o.Shields {
		text := o.FilterList
		if text == "" {
			text = o.Corpus.SyntheticEasyList()
		}
		list, errs := easylist.Parse(text)
		if len(errs) > 0 {
			return nil, fmt.Errorf("percival: filter list: %v", errs[0])
		}
		profile = browser.Brave(list)
	}
	cfg := browser.Config{
		Profile:       profile,
		Corpus:        o.Corpus,
		RasterWorkers: o.RasterWorkers,
	}
	if clf != nil {
		cfg.Inspector = clf
	}
	return browser.New(cfg)
}

// NewCorpus generates a deterministic synthetic web of nSites ranked sites
// (see internal/webgen for the page model).
func NewCorpus(seed int64, nSites int) *webgen.Corpus {
	return webgen.NewCorpus(seed, nSites)
}
