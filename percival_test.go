package percival

import (
	"os"
	"path/filepath"
	"testing"

	"percival/internal/synth"
)

func TestQuickTrainDefaultsAndClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	clf, arch, err := QuickTrain(QuickTrainOptions{Samples: 600, Epochs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if arch.InputRes != 32 {
		t.Fatalf("default res %d", arch.InputRes)
	}
	g := synth.NewGenerator(9, synth.CrawlStyle())
	correct := 0
	const n = 100
	for i := 0; i < n; i++ {
		img, label := g.Sample()
		if clf.IsAd(img) == (label == 1) {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.75 {
		t.Fatalf("quick-trained accuracy %v", acc)
	}
}

func TestSaveAndLoadModelRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	clf, _, err := QuickTrain(QuickTrainOptions{Res: 16, Samples: 60, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = clf
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pcvl")

	net, _, err := TrainNetwork(QuickTrainOptions{Res: 16, Samples: 60, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(path, net, true); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path, SmallArch(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := synth.NewGenerator(3, synth.CrawlStyle())
	img, _ := g.Sample()
	p := loaded.Classify(img)
	if p < 0 || p > 1 {
		t.Fatalf("probability %v", p)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.pcvl", SmallArch(16), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestAttachToBrowserConfigurations(t *testing.T) {
	corpus := NewCorpus(11, 3)
	// baseline (no classifier)
	b, err := AttachToBrowser(nil, BrowserOptions{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Render(corpus.Sites[0].PageURLs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surface == nil {
		t.Fatal("no surface")
	}
	// shields with synthetic list
	b2, err := AttachToBrowser(nil, BrowserOptions{Corpus: corpus, Shields: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Render(corpus.Sites[0].PageURLs[0], 0); err != nil {
		t.Fatal(err)
	}
	// validation
	if _, err := AttachToBrowser(nil, BrowserOptions{}); err == nil {
		t.Fatal("nil corpus must fail")
	}
	if _, err := AttachToBrowser(nil, BrowserOptions{Corpus: corpus, Shields: true, FilterList: "$badoption"}); err == nil {
		t.Fatal("broken filter list must fail")
	}
}

func TestPaperArchProperties(t *testing.T) {
	arch := PaperArch()
	if arch.InputRes != 224 || arch.InChannels != 4 || len(arch.Fires) != 6 {
		t.Fatalf("paper arch %+v", arch)
	}
}
