module percival

go 1.22
