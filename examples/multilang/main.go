// Multilang: the §5.5 experiment. The model is trained only on
// English-region creatives, then classifies ads from five other language
// regions. Because the detector keys on visual cues (badges, buttons,
// palettes) rather than glyphs, accuracy transfers — with the CJK
// degradation the paper observed.
package main

import (
	"fmt"
	"log"
	"os"

	"percival"
	"percival/internal/dataset"
	"percival/internal/synth"
)

func main() {
	fmt.Fprintln(os.Stderr, "training on English-region crawl only...")
	net, arch, err := percival.TrainNetwork(percival.QuickTrainOptions{Samples: 700, Epochs: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-9s %-10s %-8s\n", "language", "accuracy", "precision", "recall")
	for _, lang := range synth.Languages() {
		style, _ := synth.LanguageStyle(lang)
		d := dataset.Generate(777, style, 300)
		c := dataset.Evaluate(net, arch.InputRes, 0.5, d)
		fmt.Printf("%-10s %-9.1f %-10.3f %-8.3f\n",
			lang, c.Accuracy()*100, c.Precision(), c.Recall())
	}
	fmt.Println("\nLatin-script regions (Spanish, French) track the training")
	fmt.Println("distribution; Arabic and CJK regions degrade, matching Fig. 9.")
}
