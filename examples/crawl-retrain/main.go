// Crawl-retrain: the §4.4.2 bootstrap at small scale. The PERCIVAL pipeline
// crawler captures every decoded frame (no screenshot race), duplicates are
// removed (the paper keeps 15-20% of each phase), and the model is retrained
// after every phase on the cumulative dataset.
package main

import (
	"fmt"
	"log"
	"os"

	"percival/internal/crawler"
	"percival/internal/dataset"
	"percival/internal/easylist"
	"percival/internal/squeezenet"
	"percival/internal/webgen"
)

func main() {
	corpus := webgen.NewCorpus(4, 25)

	// First show why the pipeline crawler exists: the traditional
	// screenshot crawler races dynamically loading iframes.
	list, _ := easylist.Parse(corpus.SyntheticEasyList())
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs...)
	}
	tc := &crawler.Traditional{Corpus: corpus, List: list, ScreenshotDelayMS: 300}
	_, _, tstats, err := tc.Crawl(pages[:40])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traditional crawler: %d elements screenshotted, %d were white-space (race)\n\n",
		tstats.Elements, tstats.Whitespace)

	// Now the phased pipeline crawl + retrain loop.
	arch := squeezenet.SmallConfig(32)
	_, reports, err := crawler.RetrainLoop(corpus, crawler.RetrainConfig{
		Phases:   3,
		PagesPer: 60,
		Train:    dataset.FastTraining(arch, 8),
		Seed:     11,
		Log:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal model after %d phases: validation accuracy %.3f\n",
		len(reports), reports[len(reports)-1].ValAccuracy)
}
