// Facebook feed: the §5.3 scenario. Filter lists cannot block Facebook's
// first-party sponsored content because the DOM signatures are obfuscated;
// PERCIVAL blocks on appearance instead. This example browses simulated
// sessions and prints the confusion matrix (paper: 92% accuracy, precision
// 0.784, recall 0.7).
package main

import (
	"fmt"
	"log"
	"os"

	"percival"
	"percival/internal/metrics"
	"percival/internal/webgen"
)

func main() {
	fmt.Fprintln(os.Stderr, "training classifier...")
	clf, _, err := percival.QuickTrain(percival.QuickTrainOptions{Samples: 700, Epochs: 8})
	if err != nil {
		log.Fatal(err)
	}

	corpus := percival.NewCorpus(35, 2)
	var c metrics.Confusion
	kindNames := map[webgen.PostKind]string{
		webgen.OrganicPost:   "organic post",
		webgen.SponsoredPost: "sponsored post",
		webgen.BrandPost:     "brand-page post",
		webgen.RightColumnAd: "right-column ad",
	}
	misses := map[string]int{}
	for session := 1; session <= 20; session++ {
		fs := corpus.GenerateFeedSession(session)
		for _, spec := range fs.Page.Images {
			kind := fs.Kinds[spec.URL]
			blocked := clf.IsAd(spec.Render(0))
			c.Add(blocked, spec.IsAd)
			if blocked != spec.IsAd {
				misses[kindNames[kind]]++
			}
		}
	}
	fmt.Printf("20 sessions: %s\n", c.String())
	fmt.Println("\nerror sources (the paper's Fig. 11 pattern):")
	for kind, n := range misses {
		fmt.Printf("  %-16s %d misclassified\n", kind, n)
	}
	fmt.Println("\nnote: right-column ads are reliably caught; in-feed sponsored")
	fmt.Println("posts that look organic drive the false negatives, and brand-page")
	fmt.Println("posts with high ad intent drive the false positives — §5.3.")
}
