// Serving: stand the micro-batching classification service up in front of
// a PERCIVAL model and drive it from many concurrent clients — the
// deployment shape for serving heavy traffic, where throughput comes from
// batched forward passes, in-flight coalescing, and the sharded verdict
// cache rather than from per-frame latency alone.
//
// The second act scales the same service across process boundaries: a
// front serve.Server whose dispatch shards proxy every forward pass to two
// backend percival-serve replicas over HTTP (engine.RemoteBackend riding
// POST /classify/batch — spawned in-process here via httptest, `-peers`
// on a real deployment), supervised by an engine.Fleet. When a peer dies
// its traffic fails over to the surviving replica (or the local model as a
// last resort), the dead peer is evicted from rotation, and a background
// redialer re-admits it once /modelz answers again — verdicts stay
// identical throughout instead of failing open.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"percival/internal/core"
	"percival/internal/engine"
	"percival/internal/imaging"
	"percival/internal/serve"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

func main() {
	// A deterministic reduced-scale model: the example demonstrates the
	// serving machinery, not verdict quality.
	arch := squeezenet.SmallConfig(32)
	net, err := squeezenet.Build(arch)
	if err != nil {
		log.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	svc, err := core.New(net, arch, core.Options{DisableCache: true})
	if err != nil {
		log.Fatal(err)
	}

	// Two dispatch shards, each with its own coalescing batcher and backend
	// replica, partitioned by content-hash range; the AIMD policy adapts the
	// batch linger to the live latency histogram instead of a fixed 2ms.
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Deadline: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Warm()

	// The workload: 32 distinct creatives, each sighted 4 times across the
	// client population — ad creatives repeat, which is exactly what the
	// cache and the in-flight coalescer exploit.
	const distinct, repeats, clients = 32, 4, 8
	g := synth.NewGenerator(7, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, distinct)
	for i := range frames {
		frames[i], _ = g.Sample()
	}

	fmt.Fprintf(os.Stderr, "submitting %d frames from %d clients...\n", distinct*repeats, clients)
	start := time.Now()
	var wg sync.WaitGroup
	var blocked, shed int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < distinct*repeats/clients; i++ {
				res := srv.Submit(frames[(c+i*clients)%distinct])
				mu.Lock()
				if res.Ad {
					blocked++
				}
				if res.Status == serve.StatusShed {
					shed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := srv.Metrics()
	total := m.Submitted.Load()
	fmt.Printf("served %d frames in %v — %.0f frames/sec\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  model runs   %d (batched into %d forward passes, mean fill %.1f)\n",
		m.Classified.Load(), m.Batches.Load(), m.BatchFill.Mean())
	fmt.Printf("  cache hits   %d\n", m.CacheHits.Load())
	fmt.Printf("  coalesced    %d (attached to in-flight duplicates)\n", m.Coalesced.Load())
	fmt.Printf("  shed         %d\n", shed)
	fmt.Printf("  blocked      %d of %d\n", blocked, total)
	fmt.Printf("  p50 latency  %.2f ms, p99 %.2f ms (model-scored frames)\n",
		m.LatencyMS.Quantile(0.5), m.LatencyMS.Quantile(0.99))
	for i, st := range srv.BackendStats() {
		fmt.Printf("  shard %d      %d frames in %d forward passes (%s replica)\n",
			i, st.Frames, st.Batches, svc.Engine().Name())
	}
	srv.Close()

	// --- Two-tier topology: the same workload, but the front's dispatch
	// shards proxy to two backend model processes over the /classify/batch
	// wire, supervised by a self-healing fleet. Each shard pins a preferred
	// peer (round-robin), and verdicts are identical to in-process dispatch
	// because the peers run the exact same pre-processing and forward pass.
	fmt.Println()
	fmt.Println("two-tier: front serve.Server -> 2 remote percival-serve backends (fleet)")
	peers := make([]*engine.RemoteBackend, 2)
	backendSrvs := make([]*httptest.Server, 2)
	for i := range peers {
		rep := svc.Engine().Replicate()
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandler(nil, rep, svc.Threshold()))
		backendSrvs[i] = httptest.NewServer(mux)
		defer backendSrvs[i].Close()
		rb, err := engine.NewRemote(backendSrvs[i].URL, engine.RemoteOptions{ExpectRes: svc.InputRes()})
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = rb
	}
	// The fleet health-gates the peers: two consecutive chunk failures
	// evict a peer from rotation (re-routing its shard to the survivor),
	// a background redialer probes /modelz with doubling backoff until it
	// answers again, and the local model catches chunks if every peer is
	// out. -evict-after / -redial-max / -hedge-quantile on percival-serve.
	fleet, err := engine.NewFleet(peers, engine.FleetOptions{
		EvictAfter: 2,
		RedialBase: 500 * time.Millisecond,
		RedialMax:  2 * time.Second,
		Fallback:   svc.Engine(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	front, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Deadline: time.Second,
		Backend:  fleet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	front.Warm()

	mismatches := 0
	for i, f := range frames {
		res := front.Submit(f)
		if want := svc.Classify(f); res.Score != want {
			mismatches++
			fmt.Printf("  frame %d: proxied %v != in-process %v\n", i, res.Score, want)
		}
	}
	fmt.Printf("  %d/%d proxied verdicts identical to in-process dispatch\n",
		len(frames)-mismatches, len(frames))
	for i, st := range front.BackendStats() {
		fmt.Printf("  shard %d      %d frames in %d proxied passes (%s)\n",
			i, st.Frames, st.Batches, fleet.Name())
	}

	// Kill one backend: the supervisor fails its chunks over to the
	// surviving peer (verdicts stay identical — nothing fails open), trips
	// peer 0 to evicted after two consecutive failures, and keeps probing
	// it in the background. Frames route to shards by content hash, so
	// submit a spread of fresh frames to be sure some land on the dead
	// peer's preferred lane.
	backendSrvs[0].Close()
	mismatches = 0
	for i := 0; i < 32; i++ {
		fresh, _ := g.Sample()
		res := front.Submit(fresh)
		if want := svc.Classify(fresh); res.Score != want {
			mismatches++
		}
	}
	var failedOpen int64
	for _, st := range front.BackendStats() {
		failedOpen += st.Errors
	}
	fmt.Printf("  peer 0 down: 32/32 frames re-routed, %d verdict mismatches, %d failed open\n",
		mismatches, failedOpen)
	for _, ph := range fleet.PeerHealth() {
		fmt.Printf("  %-24s %s (evictions %d, %d frames served)\n",
			ph.Peer, ph.State, ph.Evictions, ph.Frames)
	}
}
