// Serving: stand the micro-batching classification service up in front of
// a PERCIVAL model and drive it from many concurrent clients — the
// deployment shape for serving heavy traffic, where throughput comes from
// batched forward passes, in-flight coalescing, and the sharded verdict
// cache rather than from per-frame latency alone.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"percival/internal/core"
	"percival/internal/imaging"
	"percival/internal/serve"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

func main() {
	// A deterministic reduced-scale model: the example demonstrates the
	// serving machinery, not verdict quality.
	arch := squeezenet.SmallConfig(32)
	net, err := squeezenet.Build(arch)
	if err != nil {
		log.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	svc, err := core.New(net, arch, core.Options{DisableCache: true})
	if err != nil {
		log.Fatal(err)
	}

	// Two dispatch shards, each with its own coalescing batcher and backend
	// replica, partitioned by content-hash range; the AIMD policy adapts the
	// batch linger to the live latency histogram instead of a fixed 2ms.
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Deadline: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Warm()

	// The workload: 32 distinct creatives, each sighted 4 times across the
	// client population — ad creatives repeat, which is exactly what the
	// cache and the in-flight coalescer exploit.
	const distinct, repeats, clients = 32, 4, 8
	g := synth.NewGenerator(7, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, distinct)
	for i := range frames {
		frames[i], _ = g.Sample()
	}

	fmt.Fprintf(os.Stderr, "submitting %d frames from %d clients...\n", distinct*repeats, clients)
	start := time.Now()
	var wg sync.WaitGroup
	var blocked, shed int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < distinct*repeats/clients; i++ {
				res := srv.Submit(frames[(c+i*clients)%distinct])
				mu.Lock()
				if res.Ad {
					blocked++
				}
				if res.Status == serve.StatusShed {
					shed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := srv.Metrics()
	total := m.Submitted.Load()
	fmt.Printf("served %d frames in %v — %.0f frames/sec\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  model runs   %d (batched into %d forward passes, mean fill %.1f)\n",
		m.Classified.Load(), m.Batches.Load(), m.BatchFill.Mean())
	fmt.Printf("  cache hits   %d\n", m.CacheHits.Load())
	fmt.Printf("  coalesced    %d (attached to in-flight duplicates)\n", m.Coalesced.Load())
	fmt.Printf("  shed         %d\n", shed)
	fmt.Printf("  blocked      %d of %d\n", blocked, total)
	fmt.Printf("  p50 latency  %.2f ms, p99 %.2f ms (model-scored frames)\n",
		m.LatencyMS.Quantile(0.5), m.LatencyMS.Quantile(0.99))
	for i, st := range srv.BackendStats() {
		fmt.Printf("  shard %d      %d frames in %d forward passes (%s replica)\n",
			i, st.Frames, st.Batches, svc.Engine().Name())
	}
}
