// Quickstart: train a small PERCIVAL model on synthetic crawl data and
// classify a handful of creatives — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"percival"
	"percival/internal/synth"
)

func main() {
	// Train a reduced-resolution model (the paper's architecture at 32px).
	// ~15 seconds on a laptop CPU.
	fmt.Fprintln(os.Stderr, "training...")
	clf, arch, err := percival.QuickTrain(percival.QuickTrainOptions{
		Samples: 700,
		Epochs:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s — %.2f MB of weights, threshold %.2f\n\n",
		arch.Name, float64(clf.ModelSizeBytes())/(1<<20), clf.Threshold())

	// Generate a few creatives and classify them the way the browser hook
	// would: decoded pixels in, verdict out.
	g := synth.NewGenerator(2026, synth.CrawlStyle())
	for i := 0; i < 6; i++ {
		frame, label := g.Sample()
		prob := clf.Classify(frame)
		verdict := "render"
		if prob >= clf.Threshold() {
			verdict = "BLOCK"
		}
		truth := "content"
		if label == 1 {
			truth = "ad"
		}
		fmt.Printf("%dx%-4d  p(ad)=%.3f  -> %-6s (ground truth: %s)\n",
			frame.W, frame.H, prob, verdict, truth)
	}

	s := clf.Stats()
	fmt.Printf("\nclassified %d frames, %.2f ms average per frame\n",
		s.Classified, s.AvgClassifyMS)
}
