// Browser blocking: the paper's headline deployment (§3). A synthetic page
// full of third-party and first-party ads is rendered twice — once in a
// stock browser, once with PERCIVAL installed at the decode/raster choke
// point — and the example prints what was blocked and what it cost.
package main

import (
	"fmt"
	"log"
	"os"

	"percival"
)

func main() {
	corpus := percival.NewCorpus(7, 8)

	fmt.Fprintln(os.Stderr, "training classifier...")
	clf, _, err := percival.QuickTrain(percival.QuickTrainOptions{Samples: 700, Epochs: 8})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := percival.AttachToBrowser(nil, percival.BrowserOptions{Corpus: corpus})
	if err != nil {
		log.Fatal(err)
	}
	protected, err := percival.AttachToBrowser(clf, percival.BrowserOptions{Corpus: corpus})
	if err != nil {
		log.Fatal(err)
	}

	var baseAds, blockedAds, blockedContent, totalAds int
	for _, site := range corpus.TopSites(8) {
		url := site.PageURLs[0]
		b, err := baseline.Render(url, 0)
		if err != nil {
			log.Fatal(err)
		}
		p, err := protected.Render(url, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, ri := range b.Images {
			if ri.Spec.IsAd {
				baseAds++
			}
		}
		for _, ri := range p.Images {
			if ri.Spec.IsAd {
				totalAds++
				if ri.BlockedByInspector {
					blockedAds++
				}
			} else if ri.BlockedByInspector {
				blockedContent++
			}
		}
		fmt.Printf("%-28s baseline %6.1f ms | percival %6.1f ms | %d frames blocked\n",
			url, b.RenderTimeMS, p.RenderTimeMS, p.Stats.Blocked)
	}
	fmt.Printf("\nads blocked: %d/%d; content wrongly blocked: %d\n", blockedAds, totalAds, blockedContent)
	fmt.Printf("(the baseline rendered all %d ads)\n", baseAds)
}
