# Development targets. `make check` is the gate every change must pass: it
# includes a race-detector run over the packages that share the GEMM worker
# pool and the inference arena.

GO ?= go

.PHONY: check vet build test race bench bench-infer

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/core/...

# Full benchmark sweep (slow: regenerates every paper figure).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Just the inference-latency trajectory (see PERFORMANCE.md).
bench-infer:
	$(GO) test -run=NONE -bench='BenchmarkInferSingle|BenchmarkInferBatch' -benchmem .
	$(GO) test -run=NONE -bench=BenchmarkGemm -benchtime=1s ./internal/tensor/
