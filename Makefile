# Development targets. `make check` is the gate every change must pass: it
# includes a gofmt cleanliness check and a race-detector run over the
# packages that share the GEMM worker pool and the inference arena.

GO ?= go

# Per-fuzzer budget for the `fuzz` smoke target.
FUZZTIME ?= 15s

.PHONY: check fmt vet build test race fuzz chaos bench bench-all bench-infer

check: fmt vet build test race

# Fail on unformatted files so the assembly-adjacent Go stays tidy in CI.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/engine/... ./internal/core/... ./internal/serve/... ./internal/faultinject/... ./internal/metrics/...

# Native Go fuzzing smoke pass over the decoders that face untrusted input
# (EasyList rules, HTML, the persistent-socket wire framing, the admin
# control-plane request bodies). Each fuzzer runs for FUZZTIME; crashers are
# written to the package's testdata/fuzz corpus and reproduced by `go test`.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/easylist
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/dom
	$(GO) test -run=NONE -fuzz=FuzzWireMsg -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=NONE -fuzz=FuzzAdminRequest -fuzztime=$(FUZZTIME) ./internal/engine

# Fault-injection smoke: drives the fleet supervisor (eviction, redial,
# hedging, local fallback) and the daemon's serving edge through flapping /
# blackholed / slow peers, under the race detector. Tests opt in by carrying
# the Chaos name prefix; the faultinject package's own tests ride along.
chaos:
	$(GO) test -race -run Chaos -count=1 -v ./internal/engine/ ./cmd/percival-serve/
	$(GO) test -race -count=1 ./internal/faultinject/

# Headline benchmark snapshot: runs the perf-trajectory benchmarks (FP32 and
# INT8 inference, serve-vs-sync throughput, the shard-count sweep, the
# pinned-lane multi-core row, the two-tier remote-dispatch rotation and the
# fault-injected fleet-health row at concurrency 8, stem GEMMs, resize,
# training epoch) plus the GOMAXPROCS core-count sweep and the INT8
# accuracy-parity comparison, and writes BENCH_9.json.
#
# BENCH_SMOKE=1 instead runs one iteration of every inference/serving
# headline benchmark (both engines, all shard counts, the sync baselines,
# a training epoch) plus the stem GEMM kernels, a GOMAXPROCS=4 run of the
# pinned-lane multi-core row, and compiles the snapshot tool — the CI gate
# that catches harness breakage without paying for a full trajectory run.
# ServeOverload8x2 rides in the BenchmarkServe match and is itself a gate:
# it fails the run unless the brownout ladder engages, releases, and holds
# goodput under 2x offered load. ServeReroute8x2 rides the same match and
# gates the control plane: weighted routing must beat the static baseline
# with live membership churn and an agreement-driven canary mid-run. Not
# covered at runtime: the eval parity experiment (compile-only via the
# tool build).
bench:
ifdef BENCH_SMOKE
	$(GO) test -run=NONE -bench='BenchmarkInfer|BenchmarkServe|BenchmarkSync|BenchmarkTrainingEpoch' -benchtime=1x .
	GOMAXPROCS=4 $(GO) test -run=NONE -bench='BenchmarkServeRotationPinned' -benchtime=1x .
	$(GO) test -run=NONE -bench='BenchmarkGemm|BenchmarkQGemm' -benchtime=1x ./internal/tensor/
	$(GO) build -o /dev/null ./cmd/percival-bench
else
	$(GO) run ./cmd/percival-bench -out BENCH_9.json
endif

# Full benchmark sweep (slow: regenerates every paper figure).
bench-all:
	$(GO) test -run=NONE -bench=. -benchmem .

# Just the inference-latency trajectory (see PERFORMANCE.md).
bench-infer:
	$(GO) test -run=NONE -bench='BenchmarkInferSingle|BenchmarkInferBatch' -benchmem .
	$(GO) test -run=NONE -bench='BenchmarkGemm|BenchmarkQGemm' -benchtime=1s ./internal/tensor/
