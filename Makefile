# Development targets. `make check` is the gate every change must pass: it
# includes a gofmt cleanliness check and a race-detector run over the
# packages that share the GEMM worker pool and the inference arena.

GO ?= go

.PHONY: check fmt vet build test race bench bench-all bench-infer

check: fmt vet build test race

# Fail on unformatted files so the assembly-adjacent Go stays tidy in CI.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/core/...

# Headline benchmark snapshot: runs the perf-trajectory benchmarks (FP32 and
# INT8 inference, stem GEMMs, resize, training epoch) plus the INT8
# accuracy-parity comparison, and writes BENCH_2.json.
bench:
	$(GO) run ./cmd/percival-bench -out BENCH_2.json

# Full benchmark sweep (slow: regenerates every paper figure).
bench-all:
	$(GO) test -run=NONE -bench=. -benchmem .

# Just the inference-latency trajectory (see PERFORMANCE.md).
bench-infer:
	$(GO) test -run=NONE -bench='BenchmarkInferSingle|BenchmarkInferBatch' -benchmem .
	$(GO) test -run=NONE -bench='BenchmarkGemm|BenchmarkQGemm' -benchtime=1s ./internal/tensor/
