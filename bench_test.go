package percival_test

// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus ablations of the design choices DESIGN.md calls out. Each BenchmarkFigN
// drives the same runner as `percival-eval -experiment figN`; slow experiment
// benches naturally run a single iteration under the default -benchtime.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig7 -benchtime=1x

import (
	"math/rand"
	"sync"
	"testing"

	"percival/internal/benchsuite"
	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/crawler"
	"percival/internal/dataset"
	"percival/internal/easylist"
	"percival/internal/eval"
	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/tensor"
	"percival/internal/webgen"
	"percival/internal/zoo"
)

var (
	benchOnce    sync.Once
	benchHarness *eval.Harness
)

// harness returns the shared reduced-scale evaluation harness (the model
// trains once for the whole bench run).
func harness(b *testing.B) *eval.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchHarness = eval.NewHarness(nil)
		benchHarness.Scale = 0.5
		benchHarness.TrainSamples = 500
		benchHarness.Epochs = 6
	})
	if _, err := benchHarness.Model(); err != nil {
		b.Fatal(err)
	}
	return benchHarness
}

func runExperiment(b *testing.B, id string) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ModelSize regenerates the architecture/size comparison.
func BenchmarkFig3ModelSize(b *testing.B) { runExperiment(b, eval.ExpFig3) }

// BenchmarkFig4GradCAM regenerates the salience maps.
func BenchmarkFig4GradCAM(b *testing.B) { runExperiment(b, eval.ExpFig4) }

// BenchmarkFig6EasyList regenerates the filter-list coverage table.
func BenchmarkFig6EasyList(b *testing.B) { runExperiment(b, eval.ExpFig6) }

// BenchmarkFig7Replication regenerates the EasyList-replication row
// (paper: 96.76% accuracy).
func BenchmarkFig7Replication(b *testing.B) { runExperiment(b, eval.ExpFig7) }

// BenchmarkFig8External regenerates the external-dataset validation.
func BenchmarkFig8External(b *testing.B) { runExperiment(b, eval.ExpFig8) }

// BenchmarkFig9Languages regenerates the five-language table.
func BenchmarkFig9Languages(b *testing.B) { runExperiment(b, eval.ExpFig9) }

// BenchmarkFig10Facebook regenerates the first-party blocking row.
func BenchmarkFig10Facebook(b *testing.B) { runExperiment(b, eval.ExpFig10) }

// BenchmarkFig13Search regenerates the image-search probe table.
func BenchmarkFig13Search(b *testing.B) { runExperiment(b, eval.ExpFig13) }

// BenchmarkFig14RenderCDF regenerates the four render-time distributions.
func BenchmarkFig14RenderCDF(b *testing.B) { runExperiment(b, eval.ExpFig14) }

// BenchmarkFig15Overhead regenerates the median-overhead table (paper:
// +4.55% Chromium, +19.07% Brave).
func BenchmarkFig15Overhead(b *testing.B) { runExperiment(b, eval.ExpFig15) }

// BenchmarkCrawlComparison regenerates the §4.4 crawler-methodology table.
func BenchmarkCrawlComparison(b *testing.B) { runExperiment(b, eval.ExpCrawl) }

// BenchmarkAsyncMemoization regenerates the sync-vs-async deployment table.
func BenchmarkAsyncMemoization(b *testing.B) { runExperiment(b, eval.ExpAsync) }

// --- micro-benchmarks and ablations ---

// BenchmarkInferSingle measures raw single-frame inference latency at paper
// resolution on the arena fast path (model forward only, no harness
// training): the per-frame cost PERCIVAL adds to the rendering critical
// path. Steady state should report ~zero allocs/op.
func BenchmarkInferSingle(b *testing.B) { benchsuite.InferSingle(b) }

// BenchmarkInferBatch measures batched inference throughput (8 frames per
// forward pass) on the arena fast path, the ClassifyBatch workload.
func BenchmarkInferBatch(b *testing.B) { benchsuite.InferBatch(b) }

// BenchmarkInferSingleInt8 measures single-frame inference latency at paper
// resolution on the quantized arena path — the INT8 counterpart of
// BenchmarkInferSingle. Steady state should report 0 allocs/op. (Benchmark
// bodies live in internal/benchsuite, shared with cmd/percival-bench.)
func BenchmarkInferSingleInt8(b *testing.B) { benchsuite.InferSingleInt8(b) }

// BenchmarkInferBatchInt8 measures batched quantized throughput (8 frames
// per forward pass) — the quantized ClassifyBatch workload.
func BenchmarkInferBatchInt8(b *testing.B) { benchsuite.InferBatchInt8(b) }

// BenchmarkServeSteady8 measures the micro-batching service's steady state
// at concurrency 8 on non-repeating frames (cache off): the pure-batching
// throughput row, and the 0 allocs/op gate for the serve hot path.
func BenchmarkServeSteady8(b *testing.B) { benchsuite.ServeSteady8(b) }

// BenchmarkServeSteady8Int8 is the INT8 steady-state serving benchmark.
func BenchmarkServeSteady8Int8(b *testing.B) { benchsuite.ServeSteady8Int8(b) }

// BenchmarkServeRotation8 measures serving throughput on the rotation
// workload (16 distinct creatives sighted by 8 concurrent clients each,
// cold cache per window) — the repeated-creative reality the sharded cache
// and in-flight coalescing exploit.
func BenchmarkServeRotation8(b *testing.B) { benchsuite.ServeRotation8(b) }

// BenchmarkServeRotation8Int8 is the INT8 rotation-workload benchmark.
func BenchmarkServeRotation8Int8(b *testing.B) { benchsuite.ServeRotation8Int8(b) }

// BenchmarkServeRotation8x2 is the rotation workload over 2 dispatch
// shards (content-hash range partitions, per-shard backend replicas) with
// the AIMD adaptive linger policy.
func BenchmarkServeRotation8x2(b *testing.B) { benchsuite.ServeRotation8x2(b) }

// BenchmarkServeRotation8x2Int8 is the INT8 2-shard rotation benchmark.
func BenchmarkServeRotation8x2Int8(b *testing.B) { benchsuite.ServeRotation8x2Int8(b) }

// BenchmarkServeRotation8x4 is the 4-shard rotation benchmark.
func BenchmarkServeRotation8x4(b *testing.B) { benchsuite.ServeRotation8x4(b) }

// BenchmarkServeRotationPinned is the core-pinned lane rotation benchmark:
// one OS-thread-locked dispatch lane per GOMAXPROCS slot with the GEMM pool
// partitioned across lanes. Run it under different GOMAXPROCS values (the
// core_sweep section of BENCH_9.json does) to trace multi-core scaling.
func BenchmarkServeRotationPinned(b *testing.B) { benchsuite.ServeRotationPinned(b) }

// BenchmarkServeRemote8x2 is the two-tier rotation benchmark: 2 dispatch
// shards proxying every forward pass to two backend replicas over loopback
// HTTP (engine.RemoteBackend). Its delta against BenchmarkServeRotation8x2
// is the remote-dispatch proxy overhead.
func BenchmarkServeRemote8x2(b *testing.B) { benchsuite.ServeRemote8x2(b) }

// BenchmarkServeRemoteWire8x2 is the persistent-socket transport benchmark:
// the remote topology with the wire-v2 framed socket negotiated instead of
// HTTP and hash-first dedup answering repeat creatives from the peers'
// verdict caches. It gates the transport's contracts — bit-identical
// verdicts, >=10x cache-warm wire-bytes cut, zero fail-open — and its delta
// against BenchmarkServeRotation8x2 is the socket dispatch overhead.
func BenchmarkServeRemoteWire8x2(b *testing.B) { benchsuite.ServeRemoteWire8x2(b) }

// BenchmarkServeChaos8x2 is the fleet-health row: the remote topology plus
// a spare replica under fault injection (one preferred peer blackholed and
// evicted, one serving a 20% slow tail absorbed by hedging). It asserts the
// self-healing contract — zero fail-open, steady-chaos p99 within 2x the
// healthy-fleet p99, automatic re-admission — while measuring chaos-phase
// throughput.
func BenchmarkServeChaos8x2(b *testing.B) { benchsuite.ServeChaos8x2(b) }

// BenchmarkServeOverload8x2 is the admission-control row: the chaos
// topology offered 2x its measured healthy throughput open-loop while one
// peer serves a 20% slow tail. It asserts the graded-brownout contract —
// zero fail-open, the ladder engages (stage >= 1) and releases after the
// load drops, goodput >= 80% of healthy throughput — while measuring
// goodput under overload.
func BenchmarkServeOverload8x2(b *testing.B) { benchsuite.ServeOverload8x2(b) }

// BenchmarkServeReroute8x2 is the control-plane row: a 3-peer fleet with
// one always-slow peer, routed by congestion-window headroom per unit
// latency EWMA behind the canary dispatch proxy. It asserts the
// fleet-control contract — weighted goodput >= the static lane-pinned
// baseline, live drain+remove/add mid-run with zero fail-open and
// bit-identical verdicts, canary rollback of a disagreeing model and
// promotion of an agreeing one driven only by the live agreement floor —
// while measuring weighted-routing throughput.
func BenchmarkServeReroute8x2(b *testing.B) { benchsuite.ServeReroute8x2(b) }

// BenchmarkServeSteady8x2 is the sharded steady-state benchmark and the
// 0 allocs/op gate for the sharded dispatch hot path.
func BenchmarkServeSteady8x2(b *testing.B) { benchsuite.ServeSteady8x2(b) }

// BenchmarkSyncClassify8 is the baseline the serve layer is measured
// against: the same rotation workload as synchronous single-frame Classify
// calls from 8 concurrent goroutines.
func BenchmarkSyncClassify8(b *testing.B) { benchsuite.SyncClassify8(b) }

// BenchmarkSyncClassify8Int8 is the INT8 synchronous baseline.
func BenchmarkSyncClassify8Int8(b *testing.B) { benchsuite.SyncClassify8Int8(b) }

// BenchmarkClassifySingleFrame measures the per-frame model latency the
// paper quotes as 11 ms at 224px (ours runs at the harness resolution).
func BenchmarkClassifySingleFrame(b *testing.B) {
	h := harness(b)
	svc, err := h.Service(core.Synchronous)
	if err != nil {
		b.Fatal(err)
	}
	g := synth.NewGenerator(1, synth.CrawlStyle())
	frame := g.Ad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Classify(frame)
	}
}

// BenchmarkClassifyPaperResolution measures the 224×224×4 forward pass of
// the paper-scale fork with random weights (pure inference cost).
func BenchmarkClassifyPaperResolution(b *testing.B) {
	net, err := squeezenet.Build(squeezenet.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	x := tensor.New(1, 4, 224, 224)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x.Clone(), false)
	}
}

// BenchmarkAblationArchitecture contrasts the fork against the original
// SqueezeNet it was cut down from (the Fig. 3 latency motivation).
func BenchmarkAblationArchitecture(b *testing.B) {
	x224x3 := tensor.New(1, 3, 224, 224)
	x224x4 := tensor.New(1, 4, 224, 224)
	b.Run("percival-fork", func(b *testing.B) {
		net, _ := squeezenet.Build(squeezenet.PaperConfig())
		squeezenet.PretrainedInit(net, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Forward(x224x4.Clone(), false)
		}
	})
	b.Run("original-squeezenet", func(b *testing.B) {
		net := squeezenet.BuildOriginal(squeezenet.OriginalSqueezeNet())
		nn.InitHe(net, rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Forward(x224x3.Clone(), false)
		}
	})
	b.Run("yolo-class-standin", func(b *testing.B) {
		net := zoo.BuildStandIn(zoo.StandInYOLOClass, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Forward(x224x4.Clone(), false)
		}
	})
}

// BenchmarkAblationConvAlgo contrasts the im2col+GEMM convolution against a
// direct nested-loop convolution on a representative fork layer.
func BenchmarkAblationConvAlgo(b *testing.B) {
	spec := tensor.ConvSpec{InC: 64, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(1, 64, 28, 28)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	w := make([]float32, spec.OutC*spec.InC*9)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	oh, ow := spec.OutSize(28, 28)
	col := make([]float32, spec.InC*9*oh*ow)
	b.Run("im2col-gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.ConvForward(x, w, nil, spec, col)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			directConv(x, w, spec)
		}
	})
}

// directConv is the naive reference convolution used by the ablation.
func directConv(x *tensor.Tensor, w []float32, s tensor.ConvSpec) *tensor.Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	y := tensor.New(n, s.OutC, oh, ow)
	for i := 0; i < n; i++ {
		for oc := 0; oc < s.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH - s.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW - s.PadW + kx
								if ix < 0 || ix >= wd {
									continue
								}
								sum += w[((oc*c+ic)*s.KH+ky)*s.KW+kx] * x.At(i, ic, iy, ix)
							}
						}
					}
					y.Set(sum, i, oc, oy, ox)
				}
			}
		}
	}
	return y
}

// BenchmarkAblationRasterWorkers sweeps the raster pool size to show the
// §3.1 parallelism win (one classifier instance per raster worker).
func BenchmarkAblationRasterWorkers(b *testing.B) {
	h := harness(b)
	svc, err := h.Service(core.Synchronous)
	if err != nil {
		b.Fatal(err)
	}
	corpus := webgen.NewCorpus(99, 6)
	url := corpus.Sites[0].PageURLs[0]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(workerName(workers), func(b *testing.B) {
			br, err := browser.New(browser.Config{
				Profile: browser.Chromium(), Corpus: corpus,
				Inspector: svc, RasterWorkers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.Render(url, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func workerName(n int) string {
	return string(rune('0'+n)) + "-workers"
}

// BenchmarkAblationHookPoint contrasts the two data-access strategies from
// §2.2/§4.4: element screenshots (race-prone) versus in-pipeline frames.
func BenchmarkAblationHookPoint(b *testing.B) {
	corpus := webgen.NewCorpus(123, 8)
	list, errs := easylist.Parse(corpus.SyntheticEasyList())
	if len(errs) > 0 {
		b.Fatal(errs[0])
	}
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs[0])
	}
	b.Run("element-screenshot", func(b *testing.B) {
		tc := &crawler.Traditional{Corpus: corpus, List: list, ScreenshotDelayMS: 400}
		for i := 0; i < b.N; i++ {
			if _, _, _, err := tc.Crawl(pages); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline-frames", func(b *testing.B) {
		pc := &crawler.Pipeline{Corpus: corpus, Labeler: crawler.GroundTruthLabeler{Corpus: corpus}}
		for i := 0; i < b.N; i++ {
			if _, _, err := pc.Crawl(pages, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoizationHitRate measures the async cache's effect on repeated
// creatives (the §1 "speeding up the classification process" claim).
func BenchmarkMemoizationHitRate(b *testing.B) {
	h := harness(b)
	g := synth.NewGenerator(5, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, 10)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	b.Run("cold-every-frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := h.Service(core.Synchronous)
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range frames {
				svc.InspectFrame("x", f)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		svc, err := h.Service(core.Synchronous)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range frames {
			svc.InspectFrame("x", f)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range frames {
				svc.InspectFrame("x", f)
			}
		}
	})
}

// BenchmarkTrainingEpoch measures one SGD epoch at the harness scale
// (§4.3's training recipe on this engine).
func BenchmarkTrainingEpoch(b *testing.B) {
	arch := squeezenet.SmallConfig(32)
	ds := dataset.Generate(7, synth.CrawlStyle(), 96)
	cfg := dataset.FastTraining(arch, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Train(cfg, ds); err != nil {
			b.Fatal(err)
		}
	}
}
