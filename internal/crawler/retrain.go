package crawler

import (
	"fmt"
	"io"
	"math/rand"

	"percival/internal/dataset"
	"percival/internal/nn"
	"percival/internal/webgen"
)

// PhaseReport summarizes one crawl/retrain phase (§4.4.2 ran eight of them,
// one every 15 days, retraining after each on all data so far).
type PhaseReport struct {
	Phase       int
	Crawled     int
	Deduped     int // samples removed as (near-)duplicates
	KeptUseful  int // crawled - deduped ("15-20% of the collected results")
	CumulativeN int // training-set size after merging
	ValAccuracy float64
}

// RetrainConfig drives the multi-phase loop.
type RetrainConfig struct {
	Phases      int
	PagesPer    int // pages visited per phase
	Train       dataset.TrainConfig
	DedupRadius int
	Seed        int64
	Log         io.Writer
}

// RetrainLoop runs the paper's phased crawl-and-retrain process against the
// corpus: each phase crawls with the pipeline crawler (rotating creatives
// advance with the phase number), removes duplicates against everything seen
// so far, merges, rebalances, and retrains from scratch on the cumulative
// dataset. Returns the final model and per-phase reports.
func RetrainLoop(corpus *webgen.Corpus, cfg RetrainConfig) (*nn.Sequential, []PhaseReport, error) {
	if cfg.Phases < 1 {
		return nil, nil, fmt.Errorf("crawler: need at least one phase")
	}
	if cfg.DedupRadius == 0 {
		cfg.DedupRadius = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pc := &Pipeline{Corpus: corpus, Labeler: GroundTruthLabeler{Corpus: corpus}}

	// page pool: all pages of all sites
	var pool []string
	for _, s := range corpus.Sites {
		pool = append(pool, s.PageURLs...)
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("crawler: corpus has no pages")
	}

	cumulative := &dataset.Dataset{}
	var reports []PhaseReport
	var net *nn.Sequential
	for phase := 0; phase < cfg.Phases; phase++ {
		pages := samplePages(rng, pool, cfg.PagesPer)
		crawled, _, err := pc.Crawl(pages, phase)
		if err != nil {
			return nil, reports, err
		}
		crawledN := crawled.Len()
		// dedup within the phase and against everything already kept
		merged := &dataset.Dataset{}
		merged.Merge(cumulative)
		merged.Merge(crawled)
		removed := merged.Dedup(cfg.DedupRadius)
		kept := merged.Len() - cumulative.Len()
		if kept < 0 {
			kept = 0
		}
		cumulative = merged
		balanced := &dataset.Dataset{}
		balanced.Merge(cumulative)
		balanced.Balance(rng)

		rep := PhaseReport{
			Phase:       phase + 1,
			Crawled:     crawledN,
			Deduped:     removed,
			KeptUseful:  kept,
			CumulativeN: balanced.Len(),
		}

		if balanced.Len() >= cfg.Train.BatchSize*2 {
			train, val := balanced.Split(rng, 0.85)
			net, err = dataset.Train(cfg.Train, train)
			if err != nil {
				return nil, reports, err
			}
			if val.Len() > 0 {
				c := dataset.Evaluate(net, cfg.Train.Arch.InputRes, 0.5, val)
				rep.ValAccuracy = c.Accuracy()
			}
		}
		reports = append(reports, rep)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "phase %d: crawled %d, dup-removed %d, kept %d, cumulative %d, val acc %.3f\n",
				rep.Phase, rep.Crawled, rep.Deduped, rep.KeptUseful, rep.CumulativeN, rep.ValAccuracy)
		}
	}
	if net == nil {
		return nil, reports, fmt.Errorf("crawler: never accumulated enough data to train")
	}
	return net, reports, nil
}

func samplePages(rng *rand.Rand, pool []string, n int) []string {
	if n >= len(pool) {
		out := append([]string(nil), pool...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	perm := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, p := range perm {
		out[i] = pool[p]
	}
	return out
}
