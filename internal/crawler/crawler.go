// Package crawler implements the paper's two data-acquisition systems:
//
//   - The traditional crawler (§4.4.1): drive a browser over top-ranked
//     sites, use EasyList to identify ad elements, and screenshot each
//     element's box. It inherits the methodology's defect — dynamically
//     loading iframes that miss the screenshot deadline yield white-space
//     crops — which is exactly why the paper built the second crawler.
//
//   - The PERCIVAL pipeline crawler (§4.4.2): capture every decoded image
//     frame directly from the rendering pipeline, eliminating the race
//     between content load and screenshot. Frames are labelled either by
//     ground truth or by the current model (the paper's bootstrap), and the
//     eight-phase crawl/retrain loop is provided as a first-class operation.
package crawler

import (
	"fmt"
	"image/color"
	"sync"

	"percival/internal/browser"
	"percival/internal/dataset"
	"percival/internal/dom"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/layout"
	"percival/internal/webgen"
)

// Traditional is the Selenium-style screenshot crawler.
type Traditional struct {
	Corpus *webgen.Corpus
	List   *easylist.List
	// ScreenshotDelayMS is how long after the load event the screenshot is
	// taken. Image chains slower than this yield white-space samples.
	ScreenshotDelayMS float64
}

// TraditionalStats summarizes one traditional crawl.
type TraditionalStats struct {
	PagesVisited int
	Elements     int // elements screenshotted
	Whitespace   int // crops that raced the load and captured nothing
	AdLabelled   int // samples EasyList labelled as ads
}

// Crawl visits the given pages and returns the labelled screenshot dataset.
// Labels come from EasyList: an element whose request matches a blocking
// rule (or whose container matches a cosmetic rule) is labelled ad. The
// second return value carries generation-time ground truth per sample, the
// information the paper's manual spot-checking pass recovered by hand.
func (tc *Traditional) Crawl(pages []string) (*dataset.Dataset, []int, TraditionalStats, error) {
	if tc.List == nil {
		return nil, nil, TraditionalStats{}, fmt.Errorf("crawler: traditional crawl needs a filter list")
	}
	b, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: tc.Corpus})
	if err != nil {
		return nil, nil, TraditionalStats{}, err
	}
	ds := &dataset.Dataset{}
	var truth []int
	var stats TraditionalStats
	for _, url := range pages {
		res, err := b.Render(url, 0)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("crawler: render %s: %w", url, err)
		}
		stats.PagesVisited++
		page, _ := tc.Corpus.Page(url)
		doc := dom.Parse(page.HTML)
		sizer := tc.sizer(res)
		box := layout.Layout(doc, layout.DefaultViewportW, sizer)

		// walk image/iframe elements, crop their boxes from the surface
		for _, node := range append(doc.ByTag("img"), doc.ByTag("iframe")...) {
			src := node.Attrs["src"]
			spec, chain, ok := tc.resolveSpec(src)
			if !ok {
				continue
			}
			lb := layout.FindBox(box, node)
			if lb == nil || lb.W < 8 || lb.H < 8 {
				continue
			}
			stats.Elements++
			var crop *imaging.Bitmap
			if chain > tc.ScreenshotDelayMS {
				// the race: the iframe/image had not rendered at screenshot
				// time — the crop is white-space (§4.4.2 motivation)
				crop = imaging.NewBitmap(lb.W, lb.H)
				crop.Fill(white())
				stats.Whitespace++
			} else {
				crop = res.Surface.SubImage(lb.X, lb.Y, lb.X+lb.W, lb.Y+lb.H)
			}
			label := dataset.NonAd
			if tc.matchesList(spec, node, page) {
				label = dataset.Ad
				stats.AdLabelled++
			}
			ds.Add(crop, label)
			gt := dataset.NonAd
			if spec.IsAd {
				gt = dataset.Ad
			}
			truth = append(truth, gt)
		}
	}
	return ds, truth, stats, nil
}

// resolveSpec maps an element src (image URL or frame URL) to its creative
// spec and total chain delay.
func (tc *Traditional) resolveSpec(src string) (*webgen.ImageSpec, float64, bool) {
	if spec, ok := tc.Corpus.Image(src); ok {
		return spec, spec.LoadDelayMS, true
	}
	if page, ok := tc.Corpus.Page(src); ok && len(page.Images) == 1 {
		spec := page.Images[0]
		return spec, spec.LoadDelayMS, true
	}
	return nil, 0, false
}

// matchesList labels an element using EasyList the way §4.4.1 does: network
// rules against the resource URL, cosmetic rules against the container.
func (tc *Traditional) matchesList(spec *webgen.ImageSpec, node *dom.Node, page *webgen.Page) bool {
	req := easylist.Request{
		URL:        spec.URL,
		Domain:     host(spec.URL),
		PageDomain: page.Site.Domain,
		Type:       easylist.TypeImage,
	}
	if tc.List.ShouldBlock(req) {
		return true
	}
	if node.Parent != nil {
		for _, sel := range tc.List.HideSelectors(page.Site.Domain) {
			if node.Parent.MatchesSelector(sel) {
				return true
			}
		}
	}
	return false
}

func (tc *Traditional) sizer(res *browser.RenderResult) layout.Sizer {
	dims := map[string][2]int{}
	for _, ri := range res.Images {
		bm := ri.Spec.Render(0)
		dims[ri.Spec.URL] = [2]int{bm.W, bm.H}
	}
	return func(src string) (int, int, bool) {
		if d, ok := dims[src]; ok {
			return d[0], d[1], true
		}
		return 0, 0, false
	}
}

// Labeler assigns a label to a captured frame.
type Labeler interface {
	Label(src string, frame *imaging.Bitmap) int
}

// GroundTruthLabeler labels frames from the corpus's generation-time truth.
type GroundTruthLabeler struct{ Corpus *webgen.Corpus }

// Label implements Labeler.
func (g GroundTruthLabeler) Label(src string, _ *imaging.Bitmap) int {
	if spec, ok := g.Corpus.Image(src); ok && spec.IsAd {
		return dataset.Ad
	}
	return dataset.NonAd
}

// ModelLabeler labels frames with a classifier — the paper's §4.4.2
// bootstrap, where the current network buckets each decoded frame.
type ModelLabeler struct {
	Classify func(*imaging.Bitmap) bool
}

// Label implements Labeler.
func (m ModelLabeler) Label(_ string, frame *imaging.Bitmap) int {
	if m.Classify(frame) {
		return dataset.Ad
	}
	return dataset.NonAd
}

// collector is a raster.FrameInspector that captures every decoded frame
// without blocking anything — PERCIVAL's browser instrumentation running in
// crawl mode (Fig. 5: "every decoded image frame is passed through PERCIVAL
// and PERCIVAL downloads the image frame into the appropriate bucket").
type collector struct {
	mu     sync.Mutex
	frames []capturedFrame
}

type capturedFrame struct {
	src   string
	frame *imaging.Bitmap
}

func (c *collector) InspectFrame(src string, frame *imaging.Bitmap) bool {
	c.mu.Lock()
	c.frames = append(c.frames, capturedFrame{src, frame.Clone()})
	c.mu.Unlock()
	return false
}

// Pipeline is the PERCIVAL in-pipeline crawler.
type Pipeline struct {
	Corpus  *webgen.Corpus
	Labeler Labeler
}

// PipelineStats summarizes one pipeline crawl.
type PipelineStats struct {
	PagesVisited int
	Captured     int
	Whitespace   int // always 0: the pipeline has no screenshot race
}

// Crawl renders the pages with frame capture enabled and returns the
// labelled dataset. epoch propagates to rotating creatives so repeated
// phases see fresh inventory.
func (pc *Pipeline) Crawl(pages []string, epoch int) (*dataset.Dataset, PipelineStats, error) {
	if pc.Labeler == nil {
		return nil, PipelineStats{}, fmt.Errorf("crawler: pipeline crawl needs a labeler")
	}
	col := &collector{}
	b, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: pc.Corpus, Inspector: col})
	if err != nil {
		return nil, PipelineStats{}, err
	}
	var stats PipelineStats
	for _, url := range pages {
		if _, err := b.Render(url, epoch); err != nil {
			return nil, stats, fmt.Errorf("crawler: render %s: %w", url, err)
		}
		stats.PagesVisited++
	}
	ds := &dataset.Dataset{}
	for _, cf := range col.frames {
		ds.Add(cf.frame, pc.Labeler.Label(cf.src, cf.frame))
	}
	stats.Captured = ds.Len()
	return ds, stats, nil
}

func host(url string) string {
	rest := url
	if i := indexOf(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' || rest[i] == '?' {
			return rest[:i]
		}
	}
	return rest
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func white() color.RGBA { return color.RGBA{255, 255, 255, 255} }
