package crawler

import (
	"testing"

	"percival/internal/dataset"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/squeezenet"
	"percival/internal/webgen"
)

func setup(t *testing.T, seed int64, sites int) (*webgen.Corpus, *easylist.List, []string) {
	t.Helper()
	c := webgen.NewCorpus(seed, sites)
	list, errs := easylist.Parse(c.SyntheticEasyList())
	if len(errs) > 0 {
		t.Fatalf("list errors: %v", errs)
	}
	var pages []string
	for _, s := range c.Sites {
		pages = append(pages, s.PageURLs...)
	}
	return c, list, pages
}

func TestTraditionalCrawlLabelsWithEasyList(t *testing.T) {
	c, list, pages := setup(t, 1, 8)
	tc := &Traditional{Corpus: c, List: list, ScreenshotDelayMS: 500}
	ds, truth, stats, err := tc.Crawl(pages[:10])
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesVisited != 10 || stats.Elements == 0 {
		t.Fatalf("stats %+v", stats)
	}
	ads, nonAds := ds.Counts()
	if ads == 0 || nonAds == 0 {
		t.Fatalf("labels degenerate: %d/%d", ads, nonAds)
	}
	if stats.AdLabelled != ads {
		t.Fatalf("AdLabelled %d != ads %d", stats.AdLabelled, ads)
	}
	if len(truth) != ds.Len() {
		t.Fatalf("ground truth %d entries for %d samples", len(truth), ds.Len())
	}
	// EasyList must miss some ads that ground truth knows about
	// (first-party and unlisted networks)
	missed := 0
	for i, s := range ds.Samples {
		if truth[i] == dataset.Ad && s.Label == dataset.NonAd {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("EasyList should miss first-party ads in the crawl labels")
	}
}

func TestTraditionalCrawlHasWhitespaceRace(t *testing.T) {
	c, list, pages := setup(t, 2, 10)
	// aggressive deadline: slow iframes (150-900ms) miss it
	tc := &Traditional{Corpus: c, List: list, ScreenshotDelayMS: 150}
	_, _, fast, err := tc.Crawl(pages)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Whitespace == 0 {
		t.Fatal("expected white-space captures with a tight screenshot deadline")
	}
	// generous deadline: everything loads in time
	tc2 := &Traditional{Corpus: c, List: list, ScreenshotDelayMS: 10_000}
	_, _, slow, err := tc2.Crawl(pages)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Whitespace != 0 {
		t.Fatalf("no race expected at 10s deadline, got %d", slow.Whitespace)
	}
	if fast.Whitespace <= slow.Whitespace {
		t.Fatal("tighter deadline must race more")
	}
}

func TestTraditionalRequiresList(t *testing.T) {
	c, _, pages := setup(t, 3, 2)
	tc := &Traditional{Corpus: c}
	if _, _, _, err := tc.Crawl(pages[:1]); err == nil {
		t.Fatal("expected error without list")
	}
}

func TestPipelineCrawlCapturesEverythingWithoutRace(t *testing.T) {
	c, _, pages := setup(t, 4, 8)
	pc := &Pipeline{Corpus: c, Labeler: GroundTruthLabeler{Corpus: c}}
	ds, stats, err := pc.Crawl(pages[:10], 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Whitespace != 0 {
		t.Fatal("pipeline crawler cannot race")
	}
	if stats.Captured == 0 {
		t.Fatal("nothing captured")
	}
	// every captured frame must have real pixels (no white-space artifacts
	// from iframes — the pipeline sees decoded frames directly)
	for _, s := range ds.Samples {
		if s.Image.IsCleared() {
			t.Fatal("captured frame is blank")
		}
	}
	// ground-truth labels must match corpus ground truth exactly
	ads, nonAds := ds.Counts()
	if ads == 0 || nonAds == 0 {
		t.Fatalf("labels degenerate: %d/%d", ads, nonAds)
	}
}

func TestPipelineCapturesMoreAdsThanTraditionalSees(t *testing.T) {
	// The §4.4.2 claim: in-pipeline capture gets clean creatives where the
	// screenshot crawler gets white-space for late iframes.
	c, list, pages := setup(t, 5, 10)
	tc := &Traditional{Corpus: c, List: list, ScreenshotDelayMS: 200}
	_, _, tstats, err := tc.Crawl(pages)
	if err != nil {
		t.Fatal(err)
	}
	pc := &Pipeline{Corpus: c, Labeler: GroundTruthLabeler{Corpus: c}}
	_, pstats, err := pc.Crawl(pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tstats.Whitespace == 0 {
		t.Skip("corpus draw produced no slow iframes")
	}
	if pstats.Whitespace != 0 {
		t.Fatal("pipeline produced whitespace")
	}
}

func TestModelLabeler(t *testing.T) {
	ml := ModelLabeler{Classify: func(b *imaging.Bitmap) bool { return b.W > 100 }}
	wide := imaging.NewBitmap(200, 50)
	narrow := imaging.NewBitmap(50, 50)
	if ml.Label("x", wide) != dataset.Ad || ml.Label("x", narrow) != dataset.NonAd {
		t.Fatal("model labeler misroutes")
	}
	pc := &Pipeline{}
	if _, _, err := pc.Crawl(nil, 0); err == nil {
		t.Fatal("pipeline without labeler must error")
	}
}

func TestRetrainLoopImprovesAndReports(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// Dedup keeps only ~20-40% of each crawl (the paper reports 15-20%), so
	// the loop needs a meaningful page budget before training is viable.
	c, _, _ := setup(t, 6, 25)
	arch := squeezenet.SmallConfig(32)
	tcfg := dataset.FastTraining(arch, 8)
	net, reports, err := RetrainLoop(c, RetrainConfig{
		Phases:   3,
		PagesPer: 60,
		Train:    tcfg,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net == nil || len(reports) != 3 {
		t.Fatalf("reports %d", len(reports))
	}
	for i, r := range reports {
		if r.Phase != i+1 || r.Crawled == 0 {
			t.Fatalf("report %d: %+v", i, r)
		}
		if i > 0 && r.CumulativeN < reports[i-1].CumulativeN {
			t.Fatal("cumulative dataset shrank")
		}
	}
	last := reports[len(reports)-1]
	if last.ValAccuracy < 0.7 {
		t.Fatalf("final val accuracy %v", last.ValAccuracy)
	}
}

func TestRetrainLoopValidation(t *testing.T) {
	c, _, _ := setup(t, 7, 2)
	if _, _, err := RetrainLoop(c, RetrainConfig{Phases: 0}); err == nil {
		t.Fatal("zero phases must fail")
	}
}

func TestHostHelper(t *testing.T) {
	if host("http://a.b.com/x/y?z") != "a.b.com" {
		t.Fatalf("host = %q", host("http://a.b.com/x/y?z"))
	}
	if host("plain") != "plain" {
		t.Fatal("plain host")
	}
}
