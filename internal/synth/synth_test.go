package synth

import (
	"testing"

	"percival/internal/imaging"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42, CrawlStyle())
	b := NewGenerator(42, CrawlStyle())
	for i := 0; i < 10; i++ {
		x, lx := a.Sample()
		y, ly := b.Sample()
		if lx != ly {
			t.Fatal("labels diverge under same seed")
		}
		if imaging.ContentHash(x) != imaging.ContentHash(y) {
			t.Fatal("images diverge under same seed")
		}
	}
	c := NewGenerator(43, CrawlStyle())
	diff := false
	for i := 0; i < 10; i++ {
		x, _ := a.Sample()
		y, _ := c.Sample()
		if imaging.ContentHash(x) != imaging.ContentHash(y) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestAdSizesAreIABGeometries(t *testing.T) {
	g := NewGenerator(1, CrawlStyle())
	g.style.HardAdFrac = 0 // force pure ad templates
	sizes := map[Size]bool{}
	for _, s := range AdSizes {
		sizes[s] = true
	}
	for i := 0; i < 50; i++ {
		ad := g.Ad()
		if !sizes[Size{ad.W, ad.H}] {
			t.Fatalf("ad size %dx%d not an IAB geometry", ad.W, ad.H)
		}
	}
}

func TestSampleBalance(t *testing.T) {
	g := NewGenerator(7, CrawlStyle())
	ads := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, label := g.Sample()
		if label == 1 {
			ads++
		}
	}
	frac := float64(ads) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("ad fraction %v not balanced", frac)
	}
}

func TestHardFractionsChangeRendering(t *testing.T) {
	// With HardAdFrac=1, every "ad" must use content templates, which come in
	// content geometries.
	s := CrawlStyle()
	s.HardAdFrac = 1
	g := NewGenerator(3, s)
	contentSizes := map[Size]bool{}
	for _, sz := range ContentSizes {
		contentSizes[sz] = true
	}
	for i := 0; i < 20; i++ {
		ad := g.Ad()
		if !contentSizes[Size{ad.W, ad.H}] {
			t.Fatalf("hard ad rendered with ad geometry %dx%d", ad.W, ad.H)
		}
	}
	s.HardAdFrac = 0
	s.HardNonAdFrac = 1
	g = NewGenerator(3, s)
	adSizes := map[Size]bool{}
	for _, sz := range AdSizes {
		adSizes[sz] = true
	}
	for i := 0; i < 20; i++ {
		non := g.NonAd()
		if !adSizes[Size{non.W, non.H}] {
			t.Fatalf("hard non-ad rendered with content geometry %dx%d", non.W, non.H)
		}
	}
}

func TestLanguageStyles(t *testing.T) {
	for _, lang := range Languages() {
		s, ok := LanguageStyle(lang)
		if !ok {
			t.Fatalf("missing style for %s", lang)
		}
		if s.Name != lang {
			t.Fatalf("style name %q for %s", s.Name, lang)
		}
		g := NewGenerator(1, s)
		ad := g.Ad()
		if ad.W == 0 || ad.H == 0 {
			t.Fatalf("%s: degenerate ad", lang)
		}
	}
	if _, ok := LanguageStyle("klingon"); ok {
		t.Fatal("unknown language should not resolve")
	}
	if len(Languages()) != 5 {
		t.Fatalf("Fig. 9 evaluates 5 languages, got %d", len(Languages()))
	}
}

func TestScriptsProduceDifferentTextTexture(t *testing.T) {
	// Render the same text-ad template under Latin vs Han scripts; the ink
	// coverage must differ noticeably (CJK text is denser).
	mk := func(script Script, density float64) float64 {
		s := CrawlStyle()
		s.Script = script
		s.TextDensity = density
		g := NewGenerator(11, s)
		b := g.renderTextAd(Size{300, 250})
		// measure fraction of pixels deviating from the background
		bg := b.At(150, 248)
		diff := 0
		for y := 0; y < b.H; y++ {
			for x := 0; x < b.W; x++ {
				if b.At(x, y) != bg {
					diff++
				}
			}
		}
		return float64(diff) / float64(b.W*b.H)
	}
	latin := mk(Latin, 1)
	han := mk(Han, 1.6)
	if han <= latin {
		t.Fatalf("Han ink coverage %v should exceed Latin %v", han, latin)
	}
}

func TestAdChoicesMarkerInTopRightCorner(t *testing.T) {
	s := CrawlStyle()
	s.HardAdFrac = 0
	g := NewGenerator(5, s)
	found := 0
	for i := 0; i < 40; i++ {
		ad := g.renderBanner(Size{300, 250})
		// look for the blue chevron pixels in the top-right 16x16 box
		blue := 0
		for y := 0; y < 16; y++ {
			for x := ad.W - 16; x < ad.W; x++ {
				c := ad.At(x, y)
				if c.B > 150 && c.R < 100 {
					blue++
				}
			}
		}
		if blue > 5 {
			found++
		}
	}
	if found < 30 { // marker appears with p=0.9
		t.Fatalf("AdChoices marker found on only %d/40 banners", found)
	}
}

func TestDistributionStylesDiffer(t *testing.T) {
	crawl := CrawlStyle()
	ext := ExternalStyle()
	fb := FacebookStyle()
	if ext.PaletteShift == crawl.PaletteShift {
		t.Fatal("external style should shift the palette")
	}
	if fb.HardAdFrac <= crawl.HardAdFrac {
		t.Fatal("facebook sponsored content must be harder to spot than crawl ads")
	}
	if ext.HardNonAdFrac <= crawl.HardNonAdFrac {
		t.Fatal("external negatives should be more ad-like")
	}
}

func TestTextDensityDefaulting(t *testing.T) {
	g := NewGenerator(1, Style{Name: "zero"})
	if g.Style().TextDensity != 1 {
		t.Fatal("zero TextDensity must default to 1")
	}
}

func TestAllTemplatesRenderAtAllSizes(t *testing.T) {
	g := NewGenerator(9, CrawlStyle())
	for _, sz := range append(append([]Size{}, AdSizes...), ContentSizes...) {
		for _, f := range []func(Size) *imaging.Bitmap{
			g.renderBanner, g.renderProductCard, g.renderTextAd,
			g.renderPhoto, g.renderUIScreenshot, g.renderIcon, g.renderPortrait,
		} {
			b := f(sz)
			if b.W != sz.W || b.H != sz.H {
				t.Fatalf("template rendered %dx%d for size %v", b.W, b.H, sz)
			}
		}
	}
}
