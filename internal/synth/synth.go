// Package synth generates the synthetic ad and non-ad imagery that stands in
// for the paper's crawled datasets (§4.4), which are not redistributable.
//
// The generators encode the visual vocabulary the paper reports its CNN
// keying on (§5.6 salience analysis): AdChoices chevrons, call-to-action
// buttons, price flashes, saturated banner palettes and dense text texture
// for ads; photographs, UI chrome and portraits for page content. Each
// evaluation distribution (the crawl set, the external Hussain-style set,
// Facebook creatives, per-language regions, search results) is a Style whose
// hard-example fractions steer the achievable precision/recall toward the
// paper's reported operating points: a "hard ad" is rendered with the
// opposite class's template (a sponsored post that looks organic — the
// paper's false-negative source) and a "hard non-ad" is content with high ad
// intent (brand-page posts, product photography — the false-positive source).
package synth

import (
	"math/rand"

	"percival/internal/imaging"
)

// Script selects the glyph-texture model used when rendering text. The
// classifier never reads glyphs — the paper's point is exactly that blocking
// is language-agnostic — but script changes the text's visual statistics,
// which is what degrades accuracy on CJK pages (§5.5).
type Script int

// Supported scripts.
const (
	Latin Script = iota
	Arabic
	Hangul
	Han
)

// Size is a pixel geometry for a generated creative.
type Size struct{ W, H int }

// Standard IAB ad geometries plus common content-image geometries.
var (
	AdSizes = []Size{
		{728, 90},  // leaderboard
		{300, 250}, // medium rectangle
		{160, 600}, // wide skyscraper
		{320, 50},  // mobile banner
		{336, 280}, // large rectangle
		{468, 60},  // full banner
	}
	ContentSizes = []Size{
		{640, 360}, // article hero
		{400, 300}, // inline photo
		{128, 128}, // avatar / icon
		{320, 240}, // thumbnail
		{600, 400}, // gallery image
	}
)

// Style parameterizes one evaluation distribution.
type Style struct {
	// Name labels the distribution in reports.
	Name string
	// Script selects the text-texture model.
	Script Script
	// HardAdFrac is the fraction of ads rendered with content-like visuals
	// (drives false negatives / recall).
	HardAdFrac float64
	// HardNonAdFrac is the fraction of non-ads rendered with ad-like visuals
	// (drives false positives / precision).
	HardNonAdFrac float64
	// PaletteShift rotates the ad palette hue (0..1); the external dataset
	// uses a shifted palette to model a different crawl methodology.
	PaletteShift float64
	// TextDensity scales how much text appears on creatives (CJK ads carry
	// denser text that blends with editorial content).
	TextDensity float64
}

// CrawlStyle is the training distribution: PERCIVAL's own Alexa-top-sites
// crawl (§4.4.2). Hard fractions are tuned so a trained model replicates
// EasyList labels at roughly the paper's Fig. 7 operating point
// (acc 96.76%, precision 97.76%, recall 95.72%).
func CrawlStyle() Style {
	return Style{Name: "crawl", Script: Latin, HardAdFrac: 0.042, HardNonAdFrac: 0.022, TextDensity: 1}
}

// ExternalStyle is the held-out Hussain et al. style distribution (§5.1,
// Fig. 8: acc 0.877, precision 0.815, recall 0.976): same ad vocabulary,
// shifted palette and layout mix, with many ad-adjacent negatives.
func ExternalStyle() Style {
	return Style{Name: "external", Script: Latin, HardAdFrac: 0.02, HardNonAdFrac: 0.21, PaletteShift: 0.35, TextDensity: 1.1}
}

// FacebookStyle models first-party sponsored content (§5.3, Fig. 10:
// acc 92%, precision 0.784, recall 0.7): a third of sponsored creatives are
// visually indistinguishable from organic posts, and brand-page posts supply
// ad-like negatives.
func FacebookStyle() Style {
	return Style{Name: "facebook", Script: Latin, HardAdFrac: 0.295, HardNonAdFrac: 0.036, TextDensity: 0.9}
}

// LanguageStyle returns the regional distribution for §5.5 (Fig. 9). Hard
// fractions are derived from the paper's per-language precision/recall.
func LanguageStyle(lang string) (Style, bool) {
	styles := map[string]Style{
		"arabic":  {Name: "arabic", Script: Arabic, HardAdFrac: 0.17, HardNonAdFrac: 0.195, TextDensity: 1.2},
		"spanish": {Name: "spanish", Script: Latin, HardAdFrac: 0.105, HardNonAdFrac: 0.036, TextDensity: 1},
		"french":  {Name: "french", Script: Latin, HardAdFrac: 0.092, HardNonAdFrac: 0.045, TextDensity: 1},
		"korean":  {Name: "korean", Script: Hangul, HardAdFrac: 0.075, HardNonAdFrac: 0.10, TextDensity: 1.5},
		"chinese": {Name: "chinese", Script: Han, HardAdFrac: 0.27, HardNonAdFrac: 0.082, TextDensity: 1.6},
		"german":  {Name: "german", Script: Latin, HardAdFrac: 0.09, HardNonAdFrac: 0.05, TextDensity: 1},
	}
	s, ok := styles[lang]
	return s, ok
}

// Languages lists the regions evaluated in Fig. 9, in paper order.
func Languages() []string {
	return []string{"arabic", "spanish", "french", "korean", "chinese"}
}

// Generator produces labelled creatives for one style, deterministically
// from its seed.
type Generator struct {
	rng   *rand.Rand
	style Style
}

// NewGenerator constructs a generator for a style.
func NewGenerator(seed int64, style Style) *Generator {
	if style.TextDensity == 0 {
		style.TextDensity = 1
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), style: style}
}

// Style returns the generator's distribution parameters.
func (g *Generator) Style() Style { return g.style }

// Ad produces one advertisement creative. With probability HardAdFrac the
// creative is rendered with content visuals (the recall-limiting case).
func (g *Generator) Ad() *imaging.Bitmap {
	if g.rng.Float64() < g.style.HardAdFrac {
		return g.contentLike()
	}
	return g.adLike()
}

// NonAd produces one content image. With probability HardNonAdFrac the image
// carries ad-like visuals (the precision-limiting case).
func (g *Generator) NonAd() *imaging.Bitmap {
	if g.rng.Float64() < g.style.HardNonAdFrac {
		return g.adLike()
	}
	return g.contentLike()
}

// Sample draws a balanced labelled sample (label 1 = ad).
func (g *Generator) Sample() (*imaging.Bitmap, int) {
	if g.rng.Intn(2) == 1 {
		return g.Ad(), 1
	}
	return g.NonAd(), 0
}

// SampleFrames draws n balanced crawl-style frames from a fresh generator —
// the common recipe for calibration sets, serving workloads, and test
// fixtures that need deterministic representative creatives.
func SampleFrames(seed int64, n int) []*imaging.Bitmap {
	g := NewGenerator(seed, CrawlStyle())
	frames := make([]*imaging.Bitmap, n)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	return frames
}

// adLike renders one of the ad templates.
func (g *Generator) adLike() *imaging.Bitmap {
	sz := AdSizes[g.rng.Intn(len(AdSizes))]
	switch g.rng.Intn(3) {
	case 0:
		return g.renderBanner(sz)
	case 1:
		return g.renderProductCard(sz)
	default:
		return g.renderTextAd(sz)
	}
}

// contentLike renders one of the content templates.
func (g *Generator) contentLike() *imaging.Bitmap {
	sz := ContentSizes[g.rng.Intn(len(ContentSizes))]
	switch g.rng.Intn(4) {
	case 0:
		return g.renderPhoto(sz)
	case 1:
		return g.renderUIScreenshot(sz)
	case 2:
		return g.renderIcon(sz)
	default:
		return g.renderPortrait(sz)
	}
}
