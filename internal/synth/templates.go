package synth

import (
	"image/color"
	"math"

	"percival/internal/imaging"
)

// adPalette returns a saturated banner color, optionally hue-shifted for the
// external distribution.
func (g *Generator) adPalette() color.RGBA {
	hues := []float64{0.0, 0.08, 0.55, 0.62, 0.78, 0.33, 0.13}
	h := hues[g.rng.Intn(len(hues))] + g.style.PaletteShift
	h -= math.Floor(h)
	return hsv(h, 0.75+0.25*g.rng.Float64(), 0.8+0.2*g.rng.Float64())
}

// mutedPalette returns a desaturated content color.
func (g *Generator) mutedPalette() color.RGBA {
	return hsv(g.rng.Float64(), 0.1+0.25*g.rng.Float64(), 0.5+0.4*g.rng.Float64())
}

// renderBanner draws the archetypal display ad: bright gradient background,
// border, headline text, a call-to-action button and an AdChoices chevron in
// the top-right corner.
func (g *Generator) renderBanner(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	base := g.adPalette()
	darker := color.RGBA{base.R / 2, base.G / 2, base.B / 2, 255}
	b.LinearGradientV(0, 0, sz.W, sz.H, base, darker)
	if g.rng.Float64() < 0.8 {
		b.StrokeRect(0, 0, sz.W, sz.H, 1+g.rng.Intn(3), color.RGBA{255, 255, 255, 255})
	}
	// headline text block
	lines := 1 + g.rng.Intn(3)
	ty := sz.H / 5
	for i := 0; i < lines && ty < sz.H-10; i++ {
		g.drawTextLine(b, sz.W/12, ty, sz.W*2/3, color.RGBA{255, 255, 255, 255})
		ty += g.textLineHeight() + 3
	}
	// CTA button
	if g.rng.Float64() < 0.85 {
		bw, bh := sz.W/4, clampInt(sz.H/4, 10, 28)
		bx, by := sz.W-bw-sz.W/10, sz.H-bh-sz.H/8
		cta := hsv(math.Mod(float64(base.R)/255+0.5, 1), 0.9, 0.95)
		b.FillRect(bx, by, bx+bw, by+bh, cta)
		b.StrokeRect(bx, by, bx+bw, by+bh, 1, color.RGBA{255, 255, 255, 255})
		g.drawTextLine(b, bx+3, by+bh/2-1, bw-6, color.RGBA{255, 255, 255, 255})
	}
	if g.rng.Float64() < 0.9 {
		g.drawAdChoices(b)
	}
	return b
}

// renderProductCard draws an e-commerce style creative: light background,
// product blob, price tag and sale flash.
func (g *Generator) renderProductCard(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	b.Fill(color.RGBA{245, 245, 248, 255})
	b.StrokeRect(0, 0, sz.W, sz.H, 1, color.RGBA{200, 200, 205, 255})
	// product: a colored shape in the upper area
	pc := g.adPalette()
	cx, cy := sz.W/3, sz.H/3
	r := clampInt(minInt(sz.W, sz.H)/4, 6, 60)
	if g.rng.Intn(2) == 0 {
		b.FillCircle(cx, cy, r, pc)
	} else {
		b.FillRect(cx-r, cy-r, cx+r, cy+r, pc)
	}
	// price text: bold red block
	priceC := color.RGBA{210, 30, 30, 255}
	g.drawTextLine(b, sz.W/2, sz.H*2/3, sz.W/3, priceC)
	// sale flash: high-contrast disk with burst
	if g.rng.Float64() < 0.7 {
		fx, fy := sz.W*4/5, sz.H/5
		fr := clampInt(minInt(sz.W, sz.H)/6, 5, 40)
		b.FillCircle(fx, fy, fr, color.RGBA{255, 210, 0, 255})
		b.FillCircle(fx, fy, fr*2/3, color.RGBA{220, 30, 30, 255})
	}
	// CTA strip along the bottom
	if g.rng.Float64() < 0.8 {
		b.FillRect(0, sz.H-clampInt(sz.H/6, 8, 24), sz.W, sz.H, g.adPalette())
	}
	if g.rng.Float64() < 0.9 {
		g.drawAdChoices(b)
	}
	return b
}

// renderTextAd draws a text-dominant creative (the classic "sponsored link"
// unit): flat saturated background with dense copy.
func (g *Generator) renderTextAd(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	bg := g.adPalette()
	b.Fill(bg)
	fg := color.RGBA{255, 255, 255, 255}
	if int(bg.R)+int(bg.G)+int(bg.B) > 500 {
		fg = color.RGBA{20, 20, 20, 255}
	}
	ty := sz.H / 8
	lh := g.textLineHeight() + 2
	for ty < sz.H-lh {
		g.drawTextLine(b, sz.W/14, ty, sz.W*5/6, fg)
		ty += lh
		if g.rng.Float64() > g.style.TextDensity*0.85 {
			ty += lh // paragraph gap
		}
	}
	if g.rng.Float64() < 0.9 {
		g.drawAdChoices(b)
	}
	return b
}

// renderPhoto draws a photographic content image: sky/ground gradient split
// at a horizon plus organic blobs.
func (g *Generator) renderPhoto(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	skyTop := hsv(0.55+0.1*g.rng.Float64(), 0.3+0.3*g.rng.Float64(), 0.8+0.2*g.rng.Float64())
	skyBot := hsv(0.55, 0.15, 0.95)
	horizon := sz.H/3 + g.rng.Intn(maxInt(sz.H/3, 1))
	b.LinearGradientV(0, 0, sz.W, horizon, skyTop, skyBot)
	ground := hsv(0.25+0.1*g.rng.Float64(), 0.4, 0.3+0.3*g.rng.Float64())
	groundDark := color.RGBA{ground.R / 2, ground.G / 2, ground.B / 2, 255}
	b.LinearGradientV(0, horizon, sz.W, sz.H, ground, groundDark)
	// organic blobs: trees, rocks, clouds
	blobs := 3 + g.rng.Intn(6)
	for i := 0; i < blobs; i++ {
		c := g.mutedPalette()
		x := g.rng.Intn(sz.W)
		y := horizon - sz.H/8 + g.rng.Intn(maxInt(sz.H/3, 1))
		r := 3 + g.rng.Intn(maxInt(minInt(sz.W, sz.H)/8, 4))
		b.FillCircle(x, y, r, c)
	}
	g.addNoise(b, 10)
	return b
}

// renderUIScreenshot draws a page-chrome screenshot: nav bar, gray paragraph
// text, thumbnails — the screenshot-crawler negatives of §4.4.1.
func (g *Generator) renderUIScreenshot(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	b.Fill(color.RGBA{252, 252, 252, 255})
	nav := hsv(g.rng.Float64(), 0.25, 0.35)
	navH := clampInt(sz.H/8, 6, 28)
	b.FillRect(0, 0, sz.W, navH, nav)
	textC := color.RGBA{90, 90, 95, 255}
	ty := navH + 6
	lh := g.textLineHeight() + 3
	for ty < sz.H-lh {
		w := sz.W * (60 + g.rng.Intn(30)) / 100
		g.drawTextLine(b, sz.W/20, ty, w, textC)
		ty += lh
	}
	// a thumbnail image
	if g.rng.Float64() < 0.6 && sz.W > 60 && sz.H > 60 {
		tw := sz.W / 4
		th := sz.H / 4
		tx, tyy := sz.W-tw-8, navH+8
		b.FillRect(tx, tyy, tx+tw, tyy+th, g.mutedPalette())
	}
	return b
}

// renderIcon draws a flat icon / logo: plain background, centered glyph.
func (g *Generator) renderIcon(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	b.Fill(g.mutedPalette())
	c := g.mutedPalette()
	cx, cy := sz.W/2, sz.H/2
	r := minInt(sz.W, sz.H) / 3
	switch g.rng.Intn(3) {
	case 0:
		b.FillCircle(cx, cy, r, c)
	case 1:
		b.FillRect(cx-r, cy-r, cx+r, cy+r, c)
	default:
		b.FillTriangle(cx, cy-r, cx-r, cy+r, cx+r, cy+r, c)
	}
	return b
}

// renderPortrait draws a head-and-shoulders content image.
func (g *Generator) renderPortrait(sz Size) *imaging.Bitmap {
	b := imaging.NewBitmap(sz.W, sz.H)
	bg := g.mutedPalette()
	b.Fill(bg)
	skin := color.RGBA{uint8(190 + g.rng.Intn(50)), uint8(140 + g.rng.Intn(50)), uint8(110 + g.rng.Intn(40)), 255}
	cx := sz.W / 2
	headR := minInt(sz.W, sz.H) / 5
	headY := sz.H / 3
	b.FillCircle(cx, headY, headR, skin)
	// shoulders
	b.FillRect(cx-headR*2, headY+headR, cx+headR*2, sz.H, hsv(g.rng.Float64(), 0.4, 0.4))
	g.addNoise(b, 6)
	return b
}

// drawAdChoices draws the AdChoices disclosure marker — a small blue chevron
// in a light box at the top-right corner, the cue the paper's Grad-CAM shows
// the network attending to (Fig. 4a).
func (g *Generator) drawAdChoices(b *imaging.Bitmap) {
	const box = 14
	x0 := b.W - box - 1
	y0 := 1
	b.FillRect(x0, y0, x0+box, y0+box, color.RGBA{235, 240, 245, 230})
	blue := color.RGBA{0, 100, 200, 255}
	// chevron: triangle pointing right + arc hint
	b.FillTriangle(x0+4, y0+3, x0+11, y0+7, x0+4, y0+11, blue)
	b.FillCircle(x0+4, y0+7, 2, blue)
}

// textLineHeight returns the glyph row height for the style's script.
func (g *Generator) textLineHeight() int {
	switch g.style.Script {
	case Han, Hangul:
		return 6
	default:
		return 4
	}
}

// drawTextLine renders one line of pseudo-text starting at (x, y) with the
// given width. Glyph statistics depend on the script: Latin uses word blocks
// of varying width; Arabic uses long connected strokes with diacritic dots;
// Hangul and Han use dense square blocks.
func (g *Generator) drawTextLine(b *imaging.Bitmap, x, y, w int, c color.RGBA) {
	if w <= 0 {
		return
	}
	switch g.style.Script {
	case Arabic:
		cx := x
		for cx < x+w {
			run := 8 + g.rng.Intn(18)
			if cx+run > x+w {
				run = x + w - cx
			}
			b.FillRect(cx, y+2, cx+run, y+4, c)
			// diacritic dots above/below
			dots := g.rng.Intn(3)
			for d := 0; d < dots; d++ {
				dx := cx + g.rng.Intn(maxInt(run, 1))
				dy := y
				if g.rng.Intn(2) == 0 {
					dy = y + 5
				}
				b.Set(dx, dy, c)
			}
			cx += run + 3 + g.rng.Intn(4)
		}
	case Hangul, Han:
		cx := x
		side := 5
		for cx+side <= x+w {
			// square glyph block with internal gaps
			b.FillRect(cx, y, cx+side, y+side, c)
			b.Set(cx+1+g.rng.Intn(3), y+1+g.rng.Intn(3), color.RGBA{})
			b.Set(cx+1+g.rng.Intn(3), y+1+g.rng.Intn(3), color.RGBA{})
			cx += side + 1
			if g.rng.Float64() < 0.08 {
				cx += 3 // occasional space
			}
		}
	default: // Latin
		cx := x
		for cx < x+w {
			wordW := 4 + g.rng.Intn(12)
			if cx+wordW > x+w {
				wordW = x + w - cx
			}
			b.FillRect(cx, y, cx+wordW, y+3, c)
			cx += wordW + 2 + g.rng.Intn(3)
		}
	}
}

// addNoise perturbs pixel values to give photographic texture.
func (g *Generator) addNoise(b *imaging.Bitmap, amp int) {
	for i := 0; i < len(b.Pix); i += 4 {
		n := g.rng.Intn(2*amp+1) - amp
		for c := 0; c < 3; c++ {
			v := int(b.Pix[i+c]) + n
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			b.Pix[i+c] = uint8(v)
		}
		b.Pix[i+3] = 255
	}
}

// hsv converts hue/saturation/value in [0,1] to an opaque RGBA color.
func hsv(h, s, v float64) color.RGBA {
	h = h - math.Floor(h)
	i := int(h * 6)
	f := h*6 - float64(i)
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	var r, g, b float64
	switch i % 6 {
	case 0:
		r, g, b = v, t, p
	case 1:
		r, g, b = q, v, p
	case 2:
		r, g, b = p, v, t
	case 3:
		r, g, b = p, q, v
	case 4:
		r, g, b = t, p, v
	default:
		r, g, b = v, p, q
	}
	return color.RGBA{uint8(r * 255), uint8(g * 255), uint8(b * 255), 255}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
