package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

// TestInjectorManual: Set pins a fault and Set(Fault{}) heals.
func TestInjectorManual(t *testing.T) {
	in := NewInjector(1)
	if f := in.Fault(); f != (Fault{}) {
		t.Fatalf("fresh injector has fault %+v", f)
	}
	in.Set(Fault{Blackhole: true})
	if !in.Fault().Blackhole {
		t.Fatal("Set(Blackhole) not in effect")
	}
	in.Set(Fault{})
	if f := in.Fault(); f != (Fault{}) {
		t.Fatalf("healed injector has fault %+v", f)
	}
}

// TestInjectorSchedule: a timed schedule walks its phases, and a cycling
// schedule wraps around (the flapping-peer shape).
func TestInjectorSchedule(t *testing.T) {
	in := NewInjector(1)
	in.SetSchedule(false,
		Phase{Fault: Fault{}, For: 30 * time.Millisecond},
		Phase{Fault: Fault{Blackhole: true}, For: 30 * time.Millisecond},
		Phase{Fault: Fault{}, For: 30 * time.Millisecond},
	)
	if in.Fault().Blackhole {
		t.Fatal("phase 0 should be healthy")
	}
	time.Sleep(40 * time.Millisecond)
	if !in.Fault().Blackhole {
		t.Fatal("phase 1 should blackhole")
	}
	time.Sleep(35 * time.Millisecond)
	if in.Fault().Blackhole {
		t.Fatal("phase 2 should be healthy")
	}
	// non-cycling: the last phase holds forever
	time.Sleep(40 * time.Millisecond)
	if in.Fault().Blackhole {
		t.Fatal("last phase should hold")
	}

	in.SetSchedule(true,
		Phase{Fault: Fault{Blackhole: true}, For: 20 * time.Millisecond},
		Phase{Fault: Fault{}, For: 20 * time.Millisecond},
	)
	if !in.Fault().Blackhole {
		t.Fatal("cycling phase 0 should blackhole")
	}
	time.Sleep(45 * time.Millisecond) // one full cycle + 5ms: back in phase 0
	if !in.Fault().Blackhole {
		t.Fatal("cycling schedule did not wrap")
	}
}

// TestMiddlewareFaults: the server-side wrapper must pass healthy traffic,
// 503 on error injection, and hang blackholed requests until the client's
// deadline — never answer them.
func TestMiddlewareFaults(t *testing.T) {
	in := NewInjector(1)
	ts := httptest.NewServer(Middleware(in, okHandler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d", resp.StatusCode)
	}

	in.Set(Fault{ErrorRate: 1})
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("error-injected status %d, want 503", resp.StatusCode)
	}

	in.Set(Fault{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("blackholed request got a response")
	}
}

// TestTransportFaults: the client-side wrapper injects without the server
// ever seeing the request, and added latency is observable.
func TestTransportFaults(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	in := NewInjector(1)
	client := &http.Client{Transport: &Transport{Inj: in}}

	in.Set(Fault{ErrorRate: 1})
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("injected transport error not surfaced")
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests through an error-injected transport", hits)
	}

	in.Set(Fault{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("blackholed transport returned a response")
	}

	in.Set(Fault{Latency: 40 * time.Millisecond})
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("latency injection took %v, want >= 40ms", d)
	}
}

// TestLatencyRate: a partial latency rate slows some requests and not
// others (the "20% slow peer" shape), deterministically per seed.
func TestLatencyRate(t *testing.T) {
	in := NewInjector(7)
	in.Set(Fault{Latency: time.Hour, LatencyRate: 0.5})
	slow := 0
	for i := 0; i < 64; i++ {
		if d, _, _ := in.decide(); d > 0 {
			slow++
		}
	}
	if slow == 0 || slow == 64 {
		t.Fatalf("LatencyRate 0.5 slowed %d/64 requests", slow)
	}
	// rate 0 with latency set means every request
	in.Set(Fault{Latency: time.Millisecond})
	if d, _, _ := in.decide(); d != time.Millisecond {
		t.Fatalf("zero rate with latency should always apply, got %v", d)
	}
}

// TestInjectorConcurrentScheduleMutation hammers one injector from many
// goroutines — decide/Fault readers racing Set and SetSchedule writers —
// the way a chaos benchmark's driver rewrites phases while request
// goroutines are mid-flight. The race detector is the real assertion; the
// invariant checked is that a decided fault is always one a configured
// phase could produce.
func TestInjectorConcurrentScheduleMutation(t *testing.T) {
	in := NewInjector(3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				delay, _, blackhole := in.decide()
				if blackhole {
					t.Error("no configured phase blackholes")
					return
				}
				if delay != 0 && delay != 3*time.Millisecond {
					t.Errorf("decided delay %v matches no configured phase", delay)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			in.Set(Fault{ErrorRate: 0.5})
		case 1:
			in.SetSchedule(true,
				Phase{Fault: Fault{Latency: 3 * time.Millisecond}, For: time.Millisecond},
				Phase{Fault: Fault{}, For: time.Millisecond},
			)
		case 2:
			in.Set(Fault{})
		}
	}
	close(stop)
	wg.Wait()
}

// TestTransportScheduleConcurrent composes a timed phase schedule with the
// client-side RoundTripper under concurrent requests: a healthy → failing →
// healthy schedule must fail some in-flight traffic mid-schedule and none
// once the final phase holds.
func TestTransportScheduleConcurrent(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	in := NewInjector(5)
	client := &http.Client{Transport: &Transport{Inj: in}}
	in.SetSchedule(false,
		Phase{Fault: Fault{}, For: 30 * time.Millisecond},
		Phase{Fault: Fault{ErrorRate: 1}, For: 30 * time.Millisecond},
		Phase{Fault: Fault{}, For: time.Millisecond},
	)

	var ok, injected, other atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(90 * time.Millisecond)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Get(ts.URL)
				switch {
				case err == nil:
					resp.Body.Close()
					ok.Add(1)
				case errors.Is(err, injectedError{}):
					injected.Add(1)
				default:
					other.Add(1)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d non-injected failures", other.Load())
	}
	if ok.Load() == 0 || injected.Load() == 0 {
		t.Fatalf("schedule did not exercise both phases under concurrency: ok=%d injected=%d",
			ok.Load(), injected.Load())
	}
	// the non-cycling schedule's last phase holds: traffic is clean again
	for i := 0; i < 8; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatalf("request after heal phase failed: %v", err)
		}
		resp.Body.Close()
	}
}
