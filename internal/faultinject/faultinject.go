// Package faultinject is a reusable fault-injection harness for the serving
// tier: an http.RoundTripper wrapper (client side) and an http.Handler
// middleware (server side) that inject added latency, synthetic errors and
// blackholes — either under manual control (Set) or on a timed schedule of
// phases (SetSchedule), which is how tests and benchmarks script a flapping
// peer (up -> blackhole -> up) without touching the code under test.
//
// The classifier sits inline in the rendering path, so the fleet layer's
// contract is "never block a page under any backend condition"; this
// package is how that contract is exercised: internal/engine's fleet tests,
// the ServeChaos8x2 benchmark row, and the `make chaos` CI smoke all drive
// their peers through an Injector.
package faultinject

import (
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Fault is one fault configuration. The zero value injects nothing.
type Fault struct {
	// Latency is added to affected requests before they proceed (bounded by
	// the request context, so a canceled caller never waits it out).
	Latency time.Duration
	// LatencyRate is the fraction of requests Latency applies to; 0 with a
	// non-zero Latency means every request (a uniformly slow peer), values
	// in (0, 1) model a peer whose tail is poisoned (a "20% slow" peer).
	LatencyRate float64
	// ErrorRate is the fraction of requests answered with a synthetic
	// failure: a transport error on the client side, a 503 on the server
	// side. Both are retryable in engine.RemoteBackend's classification.
	ErrorRate float64
	// Blackhole swallows affected requests entirely: no response until the
	// caller's context expires — the failure mode of a dead host, as opposed
	// to ErrorRate's fast failure of a live-but-broken one.
	Blackhole bool
}

// Phase is one step of a timed schedule.
type Phase struct {
	// Fault applies for the phase's duration.
	Fault Fault
	// For is how long the phase lasts. The final phase of a non-cycling
	// schedule holds forever once reached.
	For time.Duration
}

// Injector decides the fault applied to each request. Safe for concurrent
// use; the zero value injects nothing. Deterministic given a seed: the rate
// rolls come from a private PRNG, not the global one.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	manual Fault
	phases []Phase
	cycle  bool
	start  time.Time
}

// NewInjector returns an injector that injects nothing until Set or
// SetSchedule configures it.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Set pins the current fault, clearing any schedule. Set(Fault{}) heals.
func (in *Injector) Set(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.manual = f
	in.phases = nil
}

// SetSchedule starts a timed schedule from now. With cycle the phases
// repeat (a flapping peer); without it the last phase holds once reached.
func (in *Injector) SetSchedule(cycle bool, phases ...Phase) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.manual = Fault{}
	in.phases = append([]Phase(nil), phases...)
	in.cycle = cycle
	in.start = time.Now()
}

// Fault returns the fault in effect right now.
func (in *Injector) Fault() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.phases) == 0 {
		return in.manual
	}
	elapsed := time.Since(in.start)
	if in.cycle {
		var total time.Duration
		for _, p := range in.phases {
			total += p.For
		}
		if total > 0 {
			elapsed %= total
		}
	}
	for _, p := range in.phases {
		if elapsed < p.For {
			return p.Fault
		}
		elapsed -= p.For
	}
	return in.phases[len(in.phases)-1].Fault
}

// roll reports whether an event with the given rate fires.
func (in *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < rate
}

// decide resolves the per-request actions from the current fault.
func (in *Injector) decide() (delay time.Duration, fail, blackhole bool) {
	f := in.Fault()
	if f.Blackhole {
		return 0, false, true
	}
	if f.Latency > 0 && (f.LatencyRate == 0 || in.roll(f.LatencyRate)) {
		delay = f.Latency
	}
	return delay, in.roll(f.ErrorRate), false
}

// injectedError is the synthetic client-side transport failure.
type injectedError struct{}

func (injectedError) Error() string   { return "faultinject: injected transport error" }
func (injectedError) Timeout() bool   { return false }
func (injectedError) Temporary() bool { return true }

// Transport is a client-side http.RoundTripper that injects the Injector's
// current fault in front of Base (http.DefaultTransport when nil).
type Transport struct {
	Base http.RoundTripper
	Inj  *Injector
}

// RoundTrip applies the current fault, then delegates to Base.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	delay, fail, blackhole := t.Inj.decide()
	ctx := req.Context()
	if blackhole {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	if fail {
		return nil, injectedError{}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Middleware wraps a server-side handler with the Injector's current fault:
// blackholed requests hang until the client gives up, delayed requests wait
// out the added latency, failed requests answer 503.
func Middleware(in *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delay, fail, blackhole := in.decide()
		if blackhole {
			// No response at all: the client's per-attempt timeout is what
			// ends this request, exactly like a dead host holding a socket.
			// The body must be drained first — with unread body bytes the
			// HTTP/1.x server never starts the background read that detects
			// the client abort, and r.Context() would never fire.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-r.Context().Done():
				timer.Stop()
				return
			}
		}
		if fail {
			http.Error(w, "faultinject: injected error", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
