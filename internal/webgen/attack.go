package webgen

import (
	"fmt"
	"math/rand"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// GenerateAttackPage builds one §2.2/§7 evasion page: every ad creative is
// covered by an absolutely-positioned perturbation overlay (the CSS-mask
// construct from Tramèr et al.'s attacks on element- and frame-based
// perceptual blockers). A blocker that screenshots rendered element boxes
// sees ad+mask composites; PERCIVAL, reading decoded frames from the
// pipeline, sees the unmodified creative.
func (c *Corpus) GenerateAttackPage(idx int) *Page {
	rng := rand.New(rand.NewSource(c.seed ^ int64(hashString(fmt.Sprintf("attack:%d", idx)))))
	site := &Site{Domain: fmt.Sprintf("hostile%d.example", idx), Rank: 900 + idx, Category: "news", Lang: "english"}
	url := fmt.Sprintf("http://%s/index.html", site.Domain)
	page := &Page{URL: url, Site: site}
	style := synth.CrawlStyle()
	style.HardAdFrac = 0 // clean ads: the evasion comes from the overlay

	var html htmlBuilder
	html.open("html")
	html.open("body")
	contentImgs := 2 + rng.Intn(2)
	for i := 0; i < contentImgs; i++ {
		imgURL := fmt.Sprintf("http://%s/img/%d.jpg", site.Domain, i)
		spec := &ImageSpec{
			URL: imgURL, IsAd: false, Kind: KindContent,
			Seed:        c.seed ^ int64(hashString(imgURL)),
			Style:       style,
			LoadDelayMS: 20 + rng.Float64()*80,
			Format:      imaging.JPEG,
		}
		c.images[imgURL] = spec
		page.Images = append(page.Images, spec)
		html.openAttrs("div", `class="article-body"`)
		html.void("img", fmt.Sprintf(`src=%q`, imgURL))
		html.close("div")
	}
	adSlots := 2 + rng.Intn(2)
	for i := 0; i < adSlots; i++ {
		imgURL := fmt.Sprintf("http://%s/promo/a%d.png", site.Domain, i)
		spec := &ImageSpec{
			URL: imgURL, IsAd: true, Kind: KindFirstPartyAd,
			Seed:        c.seed ^ int64(hashString(imgURL)),
			Style:       style,
			LoadDelayMS: 30 + rng.Float64()*100,
			Format:      imaging.PNG,
		}
		c.images[imgURL] = spec
		page.Images = append(page.Images, spec)
		html.openAttrs("div", fmt.Sprintf(`class=%q`, obfuscatedClass(rng)))
		html.void("img", fmt.Sprintf(`src=%q`, imgURL))
		// the mask: painted after, positioned exactly over the creative
		html.openAttrs("div", `data-overlay="prev" class="mask"`)
		html.close("div")
		html.close("div")
	}
	html.close("body")
	html.close("html")
	page.HTML = html.String()
	c.RegisterPage(page)
	return page
}
