package webgen

import (
	"fmt"
	"strings"
)

// SyntheticEasyList emits a filter list in EasyList syntax covering the
// corpus's listed ad networks (network rules) and the conventional ad
// container classes (cosmetic rules). Unlisted networks and first-party ad
// units are deliberately uncovered: those are the paper's motivating rule
// gaps (out-of-date lists, first-party blind spots).
func (c *Corpus) SyntheticEasyList() string {
	var sb strings.Builder
	sb.WriteString("[Adblock Plus 2.0]\n")
	sb.WriteString("! Synthetic EasyList for the webgen corpus\n")
	sb.WriteString("! --- network rules ---\n")
	for _, n := range c.Networks {
		if !n.Listed {
			continue
		}
		fmt.Fprintf(&sb, "||%s^$third-party\n", n.Domain)
	}
	// generic path heuristics mirroring real EasyList entries
	sb.WriteString("/banners/*$image\n")
	sb.WriteString("/creative/*$image,third-party\n")
	sb.WriteString("! --- cosmetic rules ---\n")
	for _, class := range []string{"ad-banner", "sponsored-box", "ad-slot", "advert"} {
		fmt.Fprintf(&sb, "##.%s\n", class)
	}
	sb.WriteString("! promo-unit is only hidden on news sites (domain-scoped)\n")
	for _, s := range c.Sites {
		if s.Category == "news" && s.Rank <= 50 {
			fmt.Fprintf(&sb, "%s##.promo-unit\n", s.Domain)
		}
	}
	return sb.String()
}
