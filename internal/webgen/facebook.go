package webgen

import (
	"fmt"
	"math/rand"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// FacebookDomain is the synthetic social site's origin. All of its content,
// including ads, is first-party — the configuration that defeats filter
// lists (§5.3).
const FacebookDomain = "facebook.example"

// PostKind classifies feed units.
type PostKind int

// Feed unit kinds. BrandPost is organic content from a brand page — the
// paper's main false-positive source (Fig. 11a shows a Dell page post).
const (
	OrganicPost PostKind = iota
	SponsoredPost
	BrandPost
	RightColumnAd
)

// FeedSession is one simulated browsing session (§5.3 browses daily for 35
// days): a feed page with organic posts, sponsored units and right-column
// ads, every signature obfuscated.
type FeedSession struct {
	Page  *Page
	Kinds map[string]PostKind // image URL -> unit kind
}

// GenerateFeedSession builds one Facebook browsing session. Session numbers
// give distinct content day to day while remaining deterministic.
func (c *Corpus) GenerateFeedSession(session int) *FeedSession {
	rng := rand.New(rand.NewSource(c.seed ^ int64(session)*104729))
	site := &Site{Domain: FacebookDomain, Rank: 3, Category: "social", Lang: "english"}
	url := fmt.Sprintf("http://%s/feed/session%d", FacebookDomain, session)
	fs := &FeedSession{Kinds: map[string]PostKind{}}
	style := synth.FacebookStyle()

	var html htmlBuilder
	html.open("html")
	html.open("body")

	page := &Page{URL: url, Site: site}

	addUnit := func(kind PostKind, i int, isAd bool) {
		imgURL := fmt.Sprintf("http://%s/photos/s%d-%d.jpg", FacebookDomain, session, i)
		spec := &ImageSpec{
			URL: imgURL, IsAd: isAd, Kind: KindFirstPartyAd,
			Seed:        c.seed ^ int64(hashString(imgURL)),
			Style:       style,
			LoadDelayMS: 40 + rng.Float64()*200,
			Format:      imaging.JPEG,
		}
		if !isAd {
			spec.Kind = KindContent
		}
		page.Images = append(page.Images, spec)
		fs.Kinds[imgURL] = kind
		// obfuscated container class: rule-based hiding has nothing stable
		// to anchor on ("the ad post code now looks identical to normal
		// posts").
		html.openAttrs("div", fmt.Sprintf(`class=%q`, obfuscatedClass(rng)))
		html.void("img", fmt.Sprintf(`src=%q`, imgURL))
		html.close("div")
	}

	// right column: two ad units per session
	unit := 0
	for i := 0; i < 2; i++ {
		addUnit(RightColumnAd, unit, true)
		unit++
	}
	// feed: ~15 posts; roughly 1 in 6 sponsored, 1 in 8 from brand pages
	posts := 13 + rng.Intn(5)
	for i := 0; i < posts; i++ {
		switch {
		case rng.Float64() < 0.17:
			addUnit(SponsoredPost, unit, true)
		case rng.Float64() < 0.12:
			addUnit(BrandPost, unit, false)
		default:
			addUnit(OrganicPost, unit, false)
		}
		unit++
	}
	html.close("body")
	html.close("html")
	page.HTML = html.String()
	fs.Page = page
	c.RegisterPage(page)
	return fs
}
