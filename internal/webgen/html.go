package webgen

import (
	"fmt"
	"strings"
)

// htmlBuilder assembles markup with minimal ceremony.
type htmlBuilder struct {
	sb strings.Builder
}

func (h *htmlBuilder) open(tag string) {
	h.sb.WriteString("<" + tag + ">")
}

func (h *htmlBuilder) openAttrs(tag, attrs string) {
	fmt.Fprintf(&h.sb, "<%s %s>", tag, attrs)
}

func (h *htmlBuilder) void(tag, attrs string) {
	fmt.Fprintf(&h.sb, "<%s %s>", tag, attrs)
}

func (h *htmlBuilder) close(tag string) {
	h.sb.WriteString("</" + tag + ">")
}

func (h *htmlBuilder) text(s string) {
	h.sb.WriteString(s)
}

func (h *htmlBuilder) String() string { return h.sb.String() }
