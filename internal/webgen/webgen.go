// Package webgen synthesizes the web corpus the experiments run against:
// an Alexa-style ranked site population with realistic page structure
// (content images, ad slots filled by third-party ad networks, dynamically
// refreshing iframes), a Facebook-like social site serving obfuscated
// first-party sponsored content (§5.3), image-search result pages with
// controlled ad intent (§5.4), regional language sites (§5.5), and a
// synthetic EasyList covering a realistic subset of the ad networks.
//
// Every image URL resolves deterministically to a creative specification;
// the browser's network layer materializes pixels on fetch via synth.
package webgen

import (
	"fmt"
	"math/rand"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// ImageKind describes how a creative is embedded in a page.
type ImageKind int

// Embedding kinds.
const (
	KindContent      ImageKind = iota // editorial/content image
	KindAdImg                         // ad served as a direct <img> from a network CDN
	KindAdFrame                       // ad served inside a third-party iframe
	KindFirstPartyAd                  // ad served from the page's own origin
)

// ImageSpec is the deterministic recipe for one image URL.
type ImageSpec struct {
	URL   string
	IsAd  bool
	Kind  ImageKind
	Seed  int64
	Style synth.Style
	// Network is the serving ad network domain ("" for first-party/content).
	Network string
	// LoadDelayMS models fetch+decode latency after the document loads.
	LoadDelayMS float64
	// RefreshMS > 0 marks a dynamically refreshing creative (rotating ads in
	// iframes, §4.4.2's race-condition source).
	RefreshMS float64
	Format    imaging.Format
}

// Render materializes the creative deterministically from its seed. epoch
// selects the rotation for refreshing creatives (epoch 0 is the initial
// fill; the same URL shows different creatives over time).
func (s *ImageSpec) Render(epoch int) *imaging.Bitmap {
	seed := s.Seed
	if s.RefreshMS > 0 {
		seed += int64(epoch) * 7919
	}
	g := synth.NewGenerator(seed, s.Style)
	if s.IsAd {
		return g.Ad()
	}
	return g.NonAd()
}

// AdNetwork is one synthetic third-party ad server.
type AdNetwork struct {
	Domain string
	// Listed marks networks covered by the synthetic EasyList. Unlisted
	// networks model the rule gaps that motivate perceptual blocking.
	Listed bool
}

// Site is one synthetic website.
type Site struct {
	Domain   string
	Rank     int // 1-based Alexa-style rank
	Category string
	Lang     string
	PageURLs []string
}

// Page is a generated document.
type Page struct {
	URL  string
	Site *Site
	HTML string
	// Links are same-site URLs the crawler may follow.
	Links []string
	// Images lists every image reachable from the page, including those
	// inside iframes, with ground-truth labels.
	Images []*ImageSpec
	// FrameURLs lists third-party iframe documents embedded in the page.
	FrameURLs []string
}

// Corpus is the full synthetic web.
type Corpus struct {
	Sites    []*Site
	Networks []AdNetwork
	pages    map[string]*Page
	images   map[string]*ImageSpec
	seed     int64
}

// Categories used for site generation; news sites carry the heaviest ad
// load, matching the paper's choice of "Alexa top 500 news sites" for the
// EasyList comparison (§5.2).
var categories = []string{"news", "shopping", "blog", "reference", "video"}

// NewCorpus generates a ranked population of nSites sites with their pages.
// Generation is deterministic in seed.
func NewCorpus(seed int64, nSites int) *Corpus {
	c := &Corpus{
		pages:  map[string]*Page{},
		images: map[string]*ImageSpec{},
		seed:   seed,
	}
	rng := rand.New(rand.NewSource(seed))
	c.Networks = makeNetworks(rng)
	for rank := 1; rank <= nSites; rank++ {
		cat := categories[rng.Intn(len(categories))]
		site := &Site{
			Domain:   fmt.Sprintf("%s%d.example", cat, rank),
			Rank:     rank,
			Category: cat,
			Lang:     "english",
		}
		c.Sites = append(c.Sites, site)
		nPages := 3 + rng.Intn(4)
		for p := 0; p < nPages; p++ {
			page := c.generatePage(rng, site, p, synth.CrawlStyle())
			site.PageURLs = append(site.PageURLs, page.URL)
		}
	}
	return c
}

// makeNetworks creates the ad-network population: 12 networks, two thirds
// covered by the synthetic EasyList.
func makeNetworks(rng *rand.Rand) []AdNetwork {
	names := []string{
		"adsrv", "clickbay", "bannerx", "promoweb", "trafficgen", "admaxx",
		"pixelpush", "sponsornet", "dispad", "advista", "quietads", "stealthad",
	}
	nets := make([]AdNetwork, len(names))
	for i, n := range names {
		nets[i] = AdNetwork{Domain: n + ".adnet.example", Listed: i < 10}
	}
	_ = rng
	return nets
}

// servePath picks the URL path segment a network serves creatives from.
// Listed networks use the conventional paths that EasyList's generic rules
// cover; unlisted networks deliberately avoid them — they are the freshly
// spun-up domains that evade out-of-date lists (§1).
func (c *Corpus) servePath(net AdNetwork, frame bool) string {
	if net.Listed {
		if frame {
			return "creative"
		}
		return "banners"
	}
	if frame {
		return "media"
	}
	return "assets"
}

// generatePage builds one document for a site: a header, paragraphs with
// content images, and ad slots. News sites get more slots.
func (c *Corpus) generatePage(rng *rand.Rand, site *Site, idx int, style synth.Style) *Page {
	url := fmt.Sprintf("http://%s/page%d.html", site.Domain, idx)
	page := &Page{URL: url, Site: site}
	var html htmlBuilder
	html.open("html")
	html.open("body")
	html.openAttrs("div", `class="header"`)
	html.close("div")

	adSlots := 2 + rng.Intn(3)
	if site.Category == "news" {
		adSlots = 3 + rng.Intn(4)
	}
	contentImgs := 2 + rng.Intn(3)

	// interleave content and ad slots
	for i := 0; i < contentImgs; i++ {
		imgURL := fmt.Sprintf("http://%s/img/%d-%d.jpg", site.Domain, idx, i)
		spec := &ImageSpec{
			URL: imgURL, IsAd: false, Kind: KindContent,
			Seed:        c.seed ^ int64(hashString(imgURL)),
			Style:       style,
			LoadDelayMS: 20 + rng.Float64()*120,
			Format:      imaging.JPEG,
		}
		c.images[imgURL] = spec
		page.Images = append(page.Images, spec)
		html.openAttrs("div", `class="article-body"`)
		html.void("img", fmt.Sprintf(`src=%q`, imgURL))
		html.text("Lorem ipsum editorial copy block.")
		html.close("div")
	}
	for i := 0; i < adSlots; i++ {
		net := c.Networks[rng.Intn(len(c.Networks))]
		slotClass := adSlotClass(rng)
		switch rng.Intn(3) {
		case 0: // direct third-party <img>
			imgURL := fmt.Sprintf("http://cdn.%s/%s/%d-%d-%d.png", net.Domain, c.servePath(net, false), site.Rank, idx, i)
			spec := &ImageSpec{
				URL: imgURL, IsAd: true, Kind: KindAdImg,
				Seed:        c.seed ^ int64(hashString(imgURL)),
				Style:       style,
				Network:     net.Domain,
				LoadDelayMS: 60 + rng.Float64()*240,
				Format:      imaging.PNG,
			}
			c.images[imgURL] = spec
			page.Images = append(page.Images, spec)
			html.openAttrs("div", fmt.Sprintf(`class=%q`, slotClass))
			html.void("img", fmt.Sprintf(`src=%q`, imgURL))
			html.close("div")
		case 1: // third-party iframe with rotating creative
			frameURL := fmt.Sprintf("http://%s/frame/%d-%d-%d.html", net.Domain, site.Rank, idx, i)
			imgURL := fmt.Sprintf("http://cdn.%s/%s/%d-%d-%d.png", net.Domain, c.servePath(net, true), site.Rank, idx, i)
			spec := &ImageSpec{
				URL: imgURL, IsAd: true, Kind: KindAdFrame,
				Seed:        c.seed ^ int64(hashString(imgURL)),
				Style:       style,
				Network:     net.Domain,
				LoadDelayMS: 150 + rng.Float64()*750,
				RefreshMS:   500 + rng.Float64()*1500,
				Format:      imaging.PNG,
			}
			c.images[imgURL] = spec
			page.Images = append(page.Images, spec)
			page.FrameURLs = append(page.FrameURLs, frameURL)
			c.pages[frameURL] = c.framePage(frameURL, site, spec)
			html.openAttrs("div", fmt.Sprintf(`class=%q`, slotClass))
			html.void("iframe", fmt.Sprintf(`src=%q`, frameURL))
			html.close("div")
		default: // first-party ad (EasyList blind spot)
			imgURL := fmt.Sprintf("http://%s/promo/native-%d-%d.png", site.Domain, idx, i)
			spec := &ImageSpec{
				URL: imgURL, IsAd: true, Kind: KindFirstPartyAd,
				Seed:        c.seed ^ int64(hashString(imgURL)),
				Style:       style,
				LoadDelayMS: 40 + rng.Float64()*160,
				Format:      imaging.PNG,
			}
			c.images[imgURL] = spec
			page.Images = append(page.Images, spec)
			html.openAttrs("div", fmt.Sprintf(`class=%q`, obfuscatedClass(rng)))
			html.void("img", fmt.Sprintf(`src=%q`, imgURL))
			html.close("div")
		}
	}
	html.close("body")
	html.close("html")
	page.HTML = html.String()
	c.pages[url] = page
	return page
}

// framePage builds the sub-document served inside an ad iframe.
func (c *Corpus) framePage(url string, site *Site, creative *ImageSpec) *Page {
	var html htmlBuilder
	html.open("html")
	html.open("body")
	html.void("img", fmt.Sprintf(`src=%q`, creative.URL))
	html.close("body")
	html.close("html")
	return &Page{URL: url, Site: site, HTML: html.String(), Images: []*ImageSpec{creative}}
}

// adSlotClass picks a container class; most are conventional (and covered by
// the synthetic EasyList cosmetic rules), some are novel.
func adSlotClass(rng *rand.Rand) string {
	classes := []string{"ad-banner", "sponsored-box", "ad-slot", "advert", "promo-unit", "widget-ext"}
	return classes[rng.Intn(len(classes))]
}

// obfuscatedClass models Facebook-style signature churn: a class name that
// changes per generation, defeating rule-based hiding (§5.3).
func obfuscatedClass(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return "x" + string(b)
}

// Page returns the document at the URL.
func (c *Corpus) Page(url string) (*Page, bool) {
	p, ok := c.pages[url]
	return p, ok
}

// Image returns the creative spec for an image URL.
func (c *Corpus) Image(url string) (*ImageSpec, bool) {
	s, ok := c.images[url]
	return s, ok
}

// RegisterPage inserts an externally generated page (Facebook feed, search
// results) into the corpus.
func (c *Corpus) RegisterPage(p *Page) {
	c.pages[p.URL] = p
	for _, img := range p.Images {
		c.images[img.URL] = img
	}
}

// TopSites returns the n highest-ranked sites.
func (c *Corpus) TopSites(n int) []*Site {
	if n > len(c.Sites) {
		n = len(c.Sites)
	}
	return c.Sites[:n]
}

// hashString is a small FNV-1a for deterministic per-URL seeds.
func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
