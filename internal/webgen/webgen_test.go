package webgen

import (
	"strings"
	"testing"

	"percival/internal/dom"
	"percival/internal/easylist"
	"percival/internal/imaging"
)

func TestCorpusDeterminism(t *testing.T) {
	a := NewCorpus(42, 5)
	b := NewCorpus(42, 5)
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("site counts differ")
	}
	for i := range a.Sites {
		if a.Sites[i].Domain != b.Sites[i].Domain {
			t.Fatal("domains differ under same seed")
		}
		pa, _ := a.Page(a.Sites[i].PageURLs[0])
		pb, _ := b.Page(b.Sites[i].PageURLs[0])
		if pa.HTML != pb.HTML {
			t.Fatal("page HTML differs under same seed")
		}
	}
}

func TestPagesParseAndReferenceImages(t *testing.T) {
	c := NewCorpus(1, 10)
	for _, site := range c.Sites {
		for _, u := range site.PageURLs {
			page, ok := c.Page(u)
			if !ok {
				t.Fatalf("page %s missing", u)
			}
			root := dom.Parse(page.HTML)
			imgs := root.ByTag("img")
			frames := root.ByTag("iframe")
			// every top-level img src must resolve to a registered spec
			for _, img := range imgs {
				src := img.Attrs["src"]
				if _, ok := c.Image(src); !ok {
					t.Fatalf("img %s not registered", src)
				}
			}
			// every iframe must resolve to a sub-document with one creative
			for _, f := range frames {
				sub, ok := c.Page(f.Attrs["src"])
				if !ok {
					t.Fatalf("frame %s not registered", f.Attrs["src"])
				}
				if len(sub.Images) != 1 || !sub.Images[0].IsAd {
					t.Fatalf("frame %s should hold one ad creative", f.Attrs["src"])
				}
			}
			// page.Images covers both direct imgs and frame creatives
			if len(page.Images) != len(imgs)+len(frames) {
				t.Fatalf("page %s: Images=%d, dom imgs=%d frames=%d", u, len(page.Images), len(imgs), len(frames))
			}
		}
	}
}

func TestImageSpecsRenderDeterministically(t *testing.T) {
	c := NewCorpus(2, 3)
	page, _ := c.Page(c.Sites[0].PageURLs[0])
	for _, spec := range page.Images {
		a := spec.Render(0)
		b := spec.Render(0)
		if imaging.ContentHash(a) != imaging.ContentHash(b) {
			t.Fatalf("%s renders nondeterministically", spec.URL)
		}
	}
}

func TestRefreshingCreativesRotate(t *testing.T) {
	c := NewCorpus(3, 20)
	var rotating *ImageSpec
	for _, s := range c.Sites {
		for _, u := range s.PageURLs {
			p, _ := c.Page(u)
			for _, spec := range p.Images {
				if spec.RefreshMS > 0 {
					rotating = spec
				}
			}
		}
	}
	if rotating == nil {
		t.Fatal("corpus generated no rotating iframe creatives")
	}
	e0 := rotating.Render(0)
	e1 := rotating.Render(1)
	if imaging.ContentHash(e0) == imaging.ContentHash(e1) {
		t.Fatal("rotating creative should differ across epochs")
	}
}

func TestGroundTruthKinds(t *testing.T) {
	c := NewCorpus(4, 30)
	kinds := map[ImageKind]int{}
	for _, s := range c.Sites {
		for _, u := range s.PageURLs {
			p, _ := c.Page(u)
			for _, spec := range p.Images {
				kinds[spec.Kind]++
				if spec.Kind == KindContent && spec.IsAd {
					t.Fatal("content image labelled ad")
				}
				if spec.Kind != KindContent && !spec.IsAd {
					t.Fatal("ad slot labelled non-ad")
				}
			}
		}
	}
	for _, k := range []ImageKind{KindContent, KindAdImg, KindAdFrame, KindFirstPartyAd} {
		if kinds[k] == 0 {
			t.Fatalf("no images of kind %d generated", k)
		}
	}
}

func TestSyntheticEasyListParsesAndMatchesListedNetworks(t *testing.T) {
	c := NewCorpus(5, 40)
	list, errs := easylist.Parse(c.SyntheticEasyList())
	if len(errs) > 0 {
		t.Fatalf("synthetic list has parse errors: %v", errs)
	}
	if len(list.Network) == 0 || len(list.Cosmetic) == 0 {
		t.Fatal("list should carry both rule kinds")
	}
	// listed networks' creatives must be blocked; first-party ads must not
	var listedBlocked, listedTotal, fpBlocked, fpTotal int
	for _, s := range c.Sites {
		for _, u := range s.PageURLs {
			p, _ := c.Page(u)
			for _, spec := range p.Images {
				req := easylist.Request{
					URL: spec.URL, Domain: hostOf(spec.URL), PageDomain: s.Domain, Type: easylist.TypeImage,
				}
				blocked := list.ShouldBlock(req)
				switch spec.Kind {
				case KindAdImg, KindAdFrame:
					if isListed(c, spec.Network) {
						listedTotal++
						if blocked {
							listedBlocked++
						}
					}
				case KindFirstPartyAd:
					fpTotal++
					if blocked {
						fpBlocked++
					}
				}
			}
		}
	}
	if listedTotal == 0 {
		t.Fatal("no listed-network creatives in corpus")
	}
	if listedBlocked != listedTotal {
		t.Fatalf("listed networks: %d/%d blocked", listedBlocked, listedTotal)
	}
	if fpBlocked != 0 {
		t.Fatalf("first-party ads blocked by list: %d/%d (lists should miss them)", fpBlocked, fpTotal)
	}
}

func isListed(c *Corpus, network string) bool {
	for _, n := range c.Networks {
		if n.Domain == network {
			return n.Listed
		}
	}
	return false
}

func hostOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

func TestFacebookFeedSessions(t *testing.T) {
	c := NewCorpus(6, 3)
	s1 := c.GenerateFeedSession(1)
	s2 := c.GenerateFeedSession(2)
	if s1.Page.URL == s2.Page.URL {
		t.Fatal("sessions should have distinct URLs")
	}
	kinds := map[PostKind]int{}
	ads, nonAds := 0, 0
	for i := 1; i <= 40; i++ {
		fs := c.GenerateFeedSession(i)
		for url, kind := range fs.Kinds {
			kinds[kind]++
			spec, ok := c.Image(url)
			if !ok {
				t.Fatalf("feed image %s not registered", url)
			}
			isAdKind := kind == SponsoredPost || kind == RightColumnAd
			if spec.IsAd != isAdKind {
				t.Fatalf("kind %d with IsAd=%v", kind, spec.IsAd)
			}
			if spec.IsAd {
				ads++
			} else {
				nonAds++
			}
		}
	}
	if kinds[RightColumnAd] != 80 {
		t.Fatalf("expected 2 right-column ads per session, got %d over 40", kinds[RightColumnAd])
	}
	if kinds[SponsoredPost] == 0 || kinds[BrandPost] == 0 || kinds[OrganicPost] == 0 {
		t.Fatalf("kind mix: %v", kinds)
	}
	// feed is ad-light like the paper's (354 ads vs 1830 non-ads)
	if ads >= nonAds {
		t.Fatalf("feed should be mostly organic: %d ads vs %d non-ads", ads, nonAds)
	}
	// obfuscated signatures: a filter list has nothing to match
	list, _ := easylist.Parse(c.SyntheticEasyList())
	sel := list.HideSelectors(FacebookDomain)
	root := dom.Parse(s1.Page.HTML)
	for _, s := range sel {
		if len(root.QuerySelectorAll(s)) > 0 {
			t.Fatalf("cosmetic rule %q matched obfuscated feed", s)
		}
	}
}

func TestSearchResultIntents(t *testing.T) {
	c := NewCorpus(7, 2)
	queries := SearchQueries()
	if len(queries) != 7 {
		t.Fatalf("Fig. 13 has 7 queries, got %d", len(queries))
	}
	for _, q := range queries {
		page := c.GenerateSearchResults(q, 100)
		if len(page.Images) != 100 {
			t.Fatalf("%s: %d images", q.Name, len(page.Images))
		}
		ads := 0
		for _, spec := range page.Images {
			if spec.IsAd {
				ads++
			}
		}
		frac := float64(ads) / 100
		if frac < q.AdIntent-0.15 || frac > q.AdIntent+0.15 {
			t.Fatalf("%s: ad fraction %.2f, intent %.2f", q.Name, frac, q.AdIntent)
		}
	}
}

func TestRegionalSites(t *testing.T) {
	c := NewCorpus(8, 2)
	sites, err := c.GenerateRegionalSites("arabic", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Fatalf("%d sites", len(sites))
	}
	for _, s := range sites {
		if s.Lang != "arabic" {
			t.Fatalf("lang %q", s.Lang)
		}
		for _, u := range s.PageURLs {
			p, ok := c.Page(u)
			if !ok {
				t.Fatalf("page %s missing", u)
			}
			for _, spec := range p.Images {
				if spec.Style.Name != "arabic" {
					t.Fatalf("image style %q on arabic site", spec.Style.Name)
				}
			}
		}
	}
	if _, err := c.GenerateRegionalSites("klingon", 1); err == nil {
		t.Fatal("unknown language should error")
	}
}

func TestTopSites(t *testing.T) {
	c := NewCorpus(9, 10)
	top := c.TopSites(3)
	if len(top) != 3 || top[0].Rank != 1 {
		t.Fatalf("TopSites wrong: %+v", top)
	}
	if len(c.TopSites(99)) != 10 {
		t.Fatal("TopSites should clamp")
	}
}
