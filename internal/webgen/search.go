package webgen

import (
	"fmt"
	"math/rand"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// SearchQuery is one image-search probe from §5.4 (Fig. 13): a query string
// with a ground-truth ad-intent level — the fraction of result images that
// are advertisements.
type SearchQuery struct {
	Name string
	// AdIntent is the probability a result image is an ad.
	AdIntent float64
	// Labeled mirrors the paper's "-" rows: for Shoes/Pastry/Coffee the
	// authors could not establish ground truth, so FP/FN are not reported.
	Labeled bool
}

// SearchQueries returns the Fig. 13 query set. Intents are derived from the
// paper's blocked/FP/FN counts (e.g. Obama: 12 blocked, all 12 false
// positives — intent 0; Advertisement: 96 blocked + 4 missed — intent 1).
func SearchQueries() []SearchQuery {
	return []SearchQuery{
		{Name: "Obama", AdIntent: 0.00, Labeled: true},
		{Name: "Advertisement", AdIntent: 1.00, Labeled: true},
		{Name: "Shoes", AdIntent: 0.56, Labeled: false},
		{Name: "Pastry", AdIntent: 0.14, Labeled: false},
		{Name: "Coffee", AdIntent: 0.23, Labeled: false},
		{Name: "Detergent", AdIntent: 0.81, Labeled: true},
		{Name: "iPhone", AdIntent: 0.54, Labeled: true},
	}
}

// GenerateSearchResults builds a result page of n images for a query. Each
// image is an ad with probability AdIntent; the mix of hard examples comes
// from the crawl style, modeling creatives in the wild.
func (c *Corpus) GenerateSearchResults(q SearchQuery, n int) *Page {
	rng := rand.New(rand.NewSource(c.seed ^ int64(hashString("search:"+q.Name))))
	site := &Site{Domain: "images.search.example", Rank: 2, Category: "search", Lang: "english"}
	url := fmt.Sprintf("http://%s/search?q=%s", site.Domain, q.Name)
	page := &Page{URL: url, Site: site}
	var html htmlBuilder
	html.open("html")
	html.open("body")
	style := synth.CrawlStyle()
	for i := 0; i < n; i++ {
		isAd := rng.Float64() < q.AdIntent
		imgURL := fmt.Sprintf("http://%s/result/%s/%d.jpg", site.Domain, q.Name, i)
		spec := &ImageSpec{
			URL: imgURL, IsAd: isAd, Kind: KindContent,
			Seed:        c.seed ^ int64(hashString(imgURL)),
			Style:       style,
			LoadDelayMS: 20 + rng.Float64()*80,
			Format:      imaging.JPEG,
		}
		page.Images = append(page.Images, spec)
		html.openAttrs("div", `class="result-tile"`)
		html.void("img", fmt.Sprintf(`src=%q`, imgURL))
		html.close("div")
	}
	html.close("body")
	html.close("html")
	page.HTML = html.String()
	c.RegisterPage(page)
	return page
}

// GenerateRegionalSites adds language-region sites for the §5.5 evaluation:
// nSites per language, built from the language's style so ads carry the
// region's script texture.
func (c *Corpus) GenerateRegionalSites(lang string, nSites int) ([]*Site, error) {
	style, ok := synth.LanguageStyle(lang)
	if !ok {
		return nil, fmt.Errorf("webgen: unknown language %q", lang)
	}
	rng := rand.New(rand.NewSource(c.seed ^ int64(hashString("region:"+lang))))
	var sites []*Site
	for i := 1; i <= nSites; i++ {
		site := &Site{
			Domain:   fmt.Sprintf("%s-site%d.example", lang, i),
			Rank:     i,
			Category: "news",
			Lang:     lang,
		}
		nPages := 2 + rng.Intn(3)
		for p := 0; p < nPages; p++ {
			page := c.generatePage(rng, site, p, style)
			site.PageURLs = append(site.PageURLs, page.URL)
		}
		sites = append(sites, site)
		c.Sites = append(c.Sites, site)
	}
	return sites, nil
}
