package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomInput feeds the parser adversarial byte soup —
// the web is full of malformed markup and §2.2's obfuscation attacks depend
// on parsers misbehaving.
func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	f := func(s string) bool {
		root := Parse(s)
		return root != nil && root.Tag == "#document"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnMarkupSoup biases the generator toward tag-like
// fragments, which random strings rarely produce.
func TestParseNeverPanicsOnMarkupSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pieces := []string{
		"<div", ">", "</div>", "<img src=", `"x.png"`, "<", "'", "=",
		"<script>", "</script>", "<!--", "-->", "<!DOCTYPE", "class=",
		"<iframe", "/>", "text", " ", "\n", "<p", "</", "##", "\"",
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
		}
		root := Parse(sb.String())
		if root == nil {
			t.Fatalf("nil root for %q", sb.String())
		}
		// reparse of render must also not panic
		Parse(root.Render())
	}
}

// TestReparseStable: parse → render → parse must preserve element counts.
func TestReparseStable(t *testing.T) {
	htmls := []string{
		`<div><p>a</p><img src="x"></div>`,
		`<div class="a b"><iframe src="f"></iframe></div>`,
		`<section><article><h1>t</h1><span>s</span></article></section>`,
	}
	count := func(n *Node) int {
		c := 0
		n.Walk(func(*Node) { c++ })
		return c
	}
	for _, h := range htmls {
		a := Parse(h)
		b := Parse(a.Render())
		if count(a) != count(b) {
			t.Fatalf("reparse changed element count for %q: %d vs %d", h, count(a), count(b))
		}
	}
}
