// Package dom implements the document-object-model substrate of the
// rendering pipeline: a tolerant HTML tokenizer and parser producing an
// element tree, plus the simple selector matching needed by EasyList's
// element-hiding rules and by DOM-based crawlers. The paper's architecture
// (§2.1) has the renderer process build exactly this structure before
// layout, and §2.2's attacks (DOM obfuscation, resource exhaustion) are
// expressed against it.
package dom

import (
	"fmt"
	"strings"
)

// Node is one DOM node: an element, or a text node (Tag == "" and Text set).
type Node struct {
	Tag      string
	Attrs    map[string]string
	Text     string
	Children []*Node
	Parent   *Node
}

// voidTags never have closing tags in HTML.
var voidTags = map[string]bool{
	"img": true, "br": true, "hr": true, "meta": true, "link": true, "input": true,
}

// rawTextTags contain unparsed text until their close tag.
var rawTextTags = map[string]bool{"script": true, "style": true}

// Parse builds a DOM tree from HTML. The parser is tolerant in the way
// browsers are: unknown tags nest normally, unclosed tags are closed at
// their ancestor's boundary, and malformed attribute syntax is skipped. The
// returned root is a synthetic node with tag "#document".
func Parse(html string) *Node {
	root := &Node{Tag: "#document", Attrs: map[string]string{}}
	stack := []*Node{root}
	i := 0
	for i < len(html) {
		if html[i] != '<' {
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				j = len(html) - i
			}
			text := strings.TrimSpace(html[i : i+j])
			if text != "" {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, &Node{Text: text, Parent: top})
			}
			i += j
			continue
		}
		// comment
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i:], "-->")
			if end < 0 {
				break
			}
			i += end + 3
			continue
		}
		// doctype or other declaration
		if strings.HasPrefix(html[i:], "<!") {
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tagBody := html[i+1 : i+end]
		i += end + 1
		if strings.HasPrefix(tagBody, "/") {
			// closing tag: pop to the matching element if present
			name := strings.ToLower(strings.TrimSpace(tagBody[1:]))
			for d := len(stack) - 1; d > 0; d-- {
				if stack[d].Tag == name {
					stack = stack[:d]
					break
				}
			}
			continue
		}
		selfClose := strings.HasSuffix(tagBody, "/")
		if selfClose {
			tagBody = tagBody[:len(tagBody)-1]
		}
		name, attrs := parseTag(tagBody)
		if name == "" {
			continue
		}
		node := &Node{Tag: name, Attrs: attrs}
		top := stack[len(stack)-1]
		node.Parent = top
		top.Children = append(top.Children, node)
		if rawTextTags[name] && !selfClose {
			// consume raw text until the close tag. The search must be
			// length-preserving: strings.ToLower re-encodes invalid UTF-8
			// bytes as U+FFFD (3 bytes), so an index found in a lowered copy
			// can overrun the original string.
			closeTag := "</" + name
			idx := indexFoldASCII(html[i:], closeTag)
			if idx < 0 {
				break
			}
			raw := html[i : i+idx]
			if t := strings.TrimSpace(raw); t != "" {
				node.Children = append(node.Children, &Node{Text: t, Parent: node})
			}
			skip := strings.IndexByte(html[i+idx:], '>')
			if skip < 0 {
				break
			}
			i += idx + skip + 1
			continue
		}
		if !selfClose && !voidTags[name] {
			stack = append(stack, node)
		}
	}
	return root
}

// indexFoldASCII returns the first index of needle (lowercase ASCII) in s
// under ASCII case-folding, or -1. Byte-oriented, so positions are valid
// indices into s regardless of encoding.
func indexFoldASCII(s, needle string) int {
	for i := 0; i+len(needle) <= len(s); i++ {
		j := 0
		for ; j < len(needle); j++ {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				break
			}
		}
		if j == len(needle) {
			return i
		}
	}
	return -1
}

// parseTag splits "div class=x id='y'" into name and attributes.
func parseTag(body string) (string, map[string]string) {
	body = strings.TrimSpace(body)
	if body == "" {
		return "", nil
	}
	nameEnd := strings.IndexAny(body, " \t\n")
	name := body
	rest := ""
	if nameEnd >= 0 {
		name = body[:nameEnd]
		rest = body[nameEnd:]
	}
	name = strings.ToLower(name)
	attrs := map[string]string{}
	i := 0
	for i < len(rest) {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t' || rest[i] == '\n') {
			i++
		}
		if i >= len(rest) {
			break
		}
		keyStart := i
		for i < len(rest) && rest[i] != '=' && rest[i] != ' ' && rest[i] != '\t' && rest[i] != '\n' {
			i++
		}
		key := strings.ToLower(rest[keyStart:i])
		if key == "" {
			i++
			continue
		}
		if i >= len(rest) || rest[i] != '=' {
			attrs[key] = "" // boolean attribute
			continue
		}
		i++ // skip '='
		if i < len(rest) && (rest[i] == '"' || rest[i] == '\'') {
			quote := rest[i]
			i++
			valStart := i
			for i < len(rest) && rest[i] != quote {
				i++
			}
			attrs[key] = rest[valStart:i]
			i++ // skip quote
		} else {
			valStart := i
			for i < len(rest) && rest[i] != ' ' && rest[i] != '\t' && rest[i] != '\n' {
				i++
			}
			attrs[key] = rest[valStart:i]
		}
	}
	return name, attrs
}

// ID returns the node's id attribute.
func (n *Node) ID() string { return n.Attrs["id"] }

// Classes returns the node's class list.
func (n *Node) Classes() []string {
	c := n.Attrs["class"]
	if c == "" {
		return nil
	}
	return strings.Fields(c)
}

// HasClass reports whether the node carries the class.
func (n *Node) HasClass(class string) bool {
	for _, c := range n.Classes() {
		if c == class {
			return true
		}
	}
	return false
}

// Walk visits every element node in document order.
func (n *Node) Walk(fn func(*Node)) {
	if n.Tag != "" {
		fn(n)
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// ByTag returns all descendant elements with the given tag.
func (n *Node) ByTag(tag string) []*Node {
	var out []*Node
	n.Walk(func(e *Node) {
		if e.Tag == tag {
			out = append(out, e)
		}
	})
	return out
}

// ByID returns the first element with the given id, or nil.
func (n *Node) ByID(id string) *Node {
	var found *Node
	n.Walk(func(e *Node) {
		if found == nil && e.ID() == id {
			found = e
		}
	})
	return found
}

// MatchesSelector tests the node against a simple selector: "tag", "#id",
// ".class", "tag.class", or "tag#id". This covers the selector forms that
// appear in EasyList element-hiding rules for our corpus.
func (n *Node) MatchesSelector(sel string) bool {
	sel = strings.TrimSpace(sel)
	if sel == "" || n.Tag == "" || n.Tag == "#document" {
		return false
	}
	tag, rest := splitSelector(sel)
	if tag != "" && tag != "*" && n.Tag != tag {
		return false
	}
	switch {
	case rest == "":
		return tag != ""
	case rest[0] == '#':
		return n.ID() == rest[1:]
	case rest[0] == '.':
		return n.HasClass(rest[1:])
	}
	return false
}

func splitSelector(sel string) (tag, rest string) {
	for i := 0; i < len(sel); i++ {
		if sel[i] == '#' || sel[i] == '.' {
			return sel[:i], sel[i:]
		}
	}
	return sel, ""
}

// QuerySelectorAll returns all descendants matching the simple selector.
func (n *Node) QuerySelectorAll(sel string) []*Node {
	var out []*Node
	n.Walk(func(e *Node) {
		if e.MatchesSelector(sel) {
			out = append(out, e)
		}
	})
	return out
}

// Render re-serializes the tree (diagnostics and tests).
func (n *Node) Render() string {
	var sb strings.Builder
	n.render(&sb)
	return sb.String()
}

func (n *Node) render(sb *strings.Builder) {
	if n.Tag == "" {
		sb.WriteString(n.Text)
		return
	}
	if n.Tag != "#document" {
		sb.WriteString("<" + n.Tag)
		for k, v := range n.Attrs {
			fmt.Fprintf(sb, " %s=%q", k, v)
		}
		sb.WriteString(">")
	}
	for _, c := range n.Children {
		c.render(sb)
	}
	if n.Tag != "#document" && !voidTags[n.Tag] {
		sb.WriteString("</" + n.Tag + ">")
	}
}
