package dom

import (
	"testing"
)

// FuzzParse drives the tolerant HTML parser with arbitrary markup. The
// contract mirrors a browser parser: any byte sequence produces a
// well-formed tree (no panics, consistent parent pointers, a #document
// root), the tree re-serializes, and the serialized form re-parses.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<html><body><div class=\"ad-banner\"><img src=\"http://cdn.x/a.png\"></div></body></html>",
		"<div><p>unclosed<p>paragraphs<div>nested",
		"<!-- comment --><!DOCTYPE html><html></html>",
		"<script>var x = '<div>not a tag</div>';</script>",
		"<style>.ad { display:none }</style>text",
		"<iframe src='http://adnet.example/frame/1.html'></iframe>",
		"<img src=x onerror=alert(1)//",
		"<div class='a b c' id=\"q\" data-x>text</div>",
		"<a><b><c></a></b></c>",
		"< notatag >< /customtag>",
		"<div",
		"</",
		"<>",
		"<!--",
		"<script>",
		"plain text only",
		"<p attr=\"unterminated",
		"<self-close/><void br><input type=checkbox checked>",
		// regression: invalid UTF-8 inside a raw-text element used to panic
		// (ToLower grew the string past the original's bounds)
		"<stYle>\x89\x89\x89\x89</stYle",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, html string) {
		root := Parse(html)
		if root == nil || root.Tag != "#document" {
			t.Fatal("parse must produce a #document root")
		}
		checkTree(t, root)
		// selector matching over arbitrary trees must not panic
		root.QuerySelectorAll(".ad-banner")
		root.QuerySelectorAll("#q")
		root.QuerySelectorAll("div")
		root.ByTag("img")
		root.ByID("q")
		// the serialized form must itself be parseable into a sound tree
		rendered := root.Render()
		again := Parse(rendered)
		if again == nil || again.Tag != "#document" {
			t.Fatal("re-parse of rendered tree failed")
		}
		checkTree(t, again)
	})
}

// checkTree verifies structural invariants: parent pointers match the
// child lists, and no node is its own ancestor (the visit terminates
// because Walk recurses the child lists, which checkTree bounds).
func checkTree(t *testing.T, root *Node) {
	t.Helper()
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			t.Fatal("node appears twice in the tree")
		}
		seen[n] = true
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %q has wrong parent pointer", c.Tag)
			}
			visit(c)
		}
	}
	visit(root)
}
