package dom

import (
	"strings"
	"testing"
)

func TestParseBasicTree(t *testing.T) {
	root := Parse(`<html><body><div id="main" class="wrap page"><p>Hello</p><img src="a.png"></div></body></html>`)
	div := root.ByID("main")
	if div == nil {
		t.Fatal("div#main not found")
	}
	if !div.HasClass("wrap") || !div.HasClass("page") {
		t.Fatalf("classes = %v", div.Classes())
	}
	imgs := root.ByTag("img")
	if len(imgs) != 1 || imgs[0].Attrs["src"] != "a.png" {
		t.Fatalf("imgs = %+v", imgs)
	}
	ps := root.ByTag("p")
	if len(ps) != 1 || len(ps[0].Children) != 1 || ps[0].Children[0].Text != "Hello" {
		t.Fatal("text node missing")
	}
}

func TestParseAttributesVariants(t *testing.T) {
	root := Parse(`<div data-x=raw id='single' class="double" hidden></div>`)
	d := root.ByTag("div")[0]
	if d.Attrs["data-x"] != "raw" || d.Attrs["id"] != "single" || d.Attrs["class"] != "double" {
		t.Fatalf("attrs = %v", d.Attrs)
	}
	if _, ok := d.Attrs["hidden"]; !ok {
		t.Fatal("boolean attribute missing")
	}
}

func TestParseVoidAndSelfClosingTags(t *testing.T) {
	root := Parse(`<div><img src="x"><br><p>after</p></div>`)
	div := root.ByTag("div")[0]
	// img and br must not swallow the p
	if len(root.ByTag("p")) != 1 {
		t.Fatal("p missing")
	}
	if root.ByTag("p")[0].Parent != div {
		t.Fatal("p should be a child of div, not of img")
	}
	root2 := Parse(`<div><iframe src="a"/><p>x</p></div>`)
	if len(root2.ByTag("p")) != 1 || root2.ByTag("p")[0].Parent.Tag != "div" {
		t.Fatal("self-closing iframe mishandled")
	}
}

func TestParseUnclosedTagsRecover(t *testing.T) {
	root := Parse(`<div><p>one<p>two</div><span>after</span>`)
	if len(root.ByTag("span")) != 1 {
		t.Fatal("span lost after unclosed p")
	}
}

func TestParseCommentsAndDoctype(t *testing.T) {
	root := Parse("<!DOCTYPE html><!-- hidden --><div>x</div>")
	if len(root.ByTag("div")) != 1 {
		t.Fatal("div missing")
	}
	if strings.Contains(root.Render(), "hidden") {
		t.Fatal("comment leaked into tree")
	}
}

func TestScriptRawText(t *testing.T) {
	root := Parse(`<script>if (a < b) { inject("<div>") }</script><div id="real"></div>`)
	if len(root.ByTag("div")) != 1 {
		t.Fatal("script content parsed as markup")
	}
	if root.ByID("real") == nil {
		t.Fatal("element after script lost")
	}
}

func TestSelectorMatching(t *testing.T) {
	root := Parse(`<div class="ad-banner"></div><div id="promo"></div><span class="ad-banner"></span>`)
	if got := len(root.QuerySelectorAll(".ad-banner")); got != 2 {
		t.Fatalf(".ad-banner matched %d", got)
	}
	if got := len(root.QuerySelectorAll("div.ad-banner")); got != 1 {
		t.Fatalf("div.ad-banner matched %d", got)
	}
	if got := len(root.QuerySelectorAll("#promo")); got != 1 {
		t.Fatalf("#promo matched %d", got)
	}
	if got := len(root.QuerySelectorAll("div#promo")); got != 1 {
		t.Fatalf("div#promo matched %d", got)
	}
	if got := len(root.QuerySelectorAll("span")); got != 1 {
		t.Fatalf("span matched %d", got)
	}
	if len(root.QuerySelectorAll("")) != 0 {
		t.Fatal("empty selector should match nothing")
	}
}

func TestWalkOrder(t *testing.T) {
	root := Parse(`<a><b></b><c><d></d></c></a>`)
	var order []string
	root.Walk(func(n *Node) { order = append(order, n.Tag) })
	want := "#document a b c d"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("walk order %q want %q", got, want)
	}
}

func TestRenderRoundTripStructure(t *testing.T) {
	html := `<div id="x"><p>hi</p><img src="a.png"></div>`
	root := Parse(html)
	out := root.Render()
	reparsed := Parse(out)
	if reparsed.ByID("x") == nil || len(reparsed.ByTag("img")) != 1 {
		t.Fatalf("reparse of render lost structure: %s", out)
	}
}

func TestDeepNestingResourceExhaustion(t *testing.T) {
	// §2.2: publishers inject many dummy elements to overwhelm DOM-based ad
	// blockers. The parser must stay linear and correct on such documents.
	var sb strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		sb.WriteString(`<div class="dummy">`)
	}
	sb.WriteString(`<img src="deep.png">`)
	for i := 0; i < n; i++ {
		sb.WriteString("</div>")
	}
	root := Parse(sb.String())
	if len(root.ByTag("img")) != 1 {
		t.Fatal("deep img lost")
	}
	if got := len(root.QuerySelectorAll(".dummy")); got != n {
		t.Fatalf("dummy count %d", got)
	}
}
