package imaging

import (
	"bytes"
	"fmt"
	"image"
	"image/gif"
	"image/jpeg"
	"image/png"
	"io"
)

// Format identifies an encoded image format. Advertisers serve creatives in
// several formats (§3.1: "JPG, PNG, or GIF"); the raster hook abstracts over
// all of them because it sees only decoded pixels.
type Format string

// Supported encoded-image formats.
const (
	PNG  Format = "png"
	JPEG Format = "jpeg"
	GIF  Format = "gif"
)

// Encode serializes the bitmap in the given format.
func Encode(b *Bitmap, f Format) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch f {
	case PNG:
		err = png.Encode(&buf, b.ToImage())
	case JPEG:
		err = jpeg.Encode(&buf, b.ToImage(), &jpeg.Options{Quality: 85})
	case GIF:
		err = gif.Encode(&buf, b.ToImage(), nil)
	default:
		return nil, fmt.Errorf("imaging: unknown format %q", f)
	}
	if err != nil {
		return nil, fmt.Errorf("imaging: encode %s: %w", f, err)
	}
	return buf.Bytes(), nil
}

// Decode parses an encoded image (PNG, JPEG or GIF — sniffed from the
// payload, as Blink's image decoders do) into a Bitmap.
func Decode(data []byte) (*Bitmap, Format, error) {
	img, name, err := image.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, "", fmt.Errorf("imaging: decode: %w", err)
	}
	return FromImage(img), Format(name), nil
}

// DecodeFrom decodes from a reader.
func DecodeFrom(r io.Reader) (*Bitmap, Format, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("imaging: decode: %w", err)
	}
	return Decode(data)
}
