// Package imaging provides the pixel substrate shared by the rendering
// pipeline, the synthetic-data generators and the classifier: RGBA bitmaps
// (the decoded-frame representation PERCIVAL intercepts in Blink, §3.3),
// drawing primitives (a miniature Skia), bilinear scaling to the network's
// input size, tensor conversion, content and perceptual hashing, and
// stdlib-backed PNG/JPEG codecs.
package imaging

import (
	"fmt"
	"image"
	"image/color"
)

// Bitmap is a dense 8-bit RGBA pixel buffer, equivalent to the SkBitmap that
// DecodingImageGenerator::onGetPixels populates. Pixels are row-major,
// 4 bytes per pixel.
type Bitmap struct {
	W, H int
	Pix  []uint8
}

// NewBitmap allocates a transparent-black w×h bitmap.
func NewBitmap(w, h int) *Bitmap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, Pix: make([]uint8, w*h*4)}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := NewBitmap(b.W, b.H)
	copy(c.Pix, b.Pix)
	return c
}

// At returns the pixel at (x, y). Out-of-bounds reads return zero.
func (b *Bitmap) At(x, y int) color.RGBA {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return color.RGBA{}
	}
	i := (y*b.W + x) * 4
	return color.RGBA{b.Pix[i], b.Pix[i+1], b.Pix[i+2], b.Pix[i+3]}
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (b *Bitmap) Set(x, y int, c color.RGBA) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	i := (y*b.W + x) * 4
	b.Pix[i], b.Pix[i+1], b.Pix[i+2], b.Pix[i+3] = c.R, c.G, c.B, c.A
}

// Fill paints the whole bitmap with a solid color.
func (b *Bitmap) Fill(c color.RGBA) {
	for i := 0; i < len(b.Pix); i += 4 {
		b.Pix[i], b.Pix[i+1], b.Pix[i+2], b.Pix[i+3] = c.R, c.G, c.B, c.A
	}
}

// Clear zeroes every pixel. This is exactly what PERCIVAL does to an ad
// frame: "if PERCIVAL determines that the buffer contains an ad, it clears
// the buffer, effectively blocking the image frame" (§3.3).
func (b *Bitmap) Clear() {
	for i := range b.Pix {
		b.Pix[i] = 0
	}
}

// IsCleared reports whether every pixel is zero (a blocked frame).
func (b *Bitmap) IsCleared() bool {
	for _, v := range b.Pix {
		if v != 0 {
			return false
		}
	}
	return true
}

// FillRect paints the axis-aligned rectangle [x0,x1)×[y0,y1), clipped to the
// bitmap.
func (b *Bitmap) FillRect(x0, y0, x1, y1 int, c color.RGBA) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > b.W {
		x1 = b.W
	}
	if y1 > b.H {
		y1 = b.H
	}
	for y := y0; y < y1; y++ {
		row := (y*b.W + x0) * 4
		for x := x0; x < x1; x++ {
			b.Pix[row] = c.R
			b.Pix[row+1] = c.G
			b.Pix[row+2] = c.B
			b.Pix[row+3] = c.A
			row += 4
		}
	}
}

// StrokeRect draws a rectangle outline of the given thickness.
func (b *Bitmap) StrokeRect(x0, y0, x1, y1, thickness int, c color.RGBA) {
	b.FillRect(x0, y0, x1, y0+thickness, c)
	b.FillRect(x0, y1-thickness, x1, y1, c)
	b.FillRect(x0, y0, x0+thickness, y1, c)
	b.FillRect(x1-thickness, y0, x1, y1, c)
}

// FillCircle paints a filled disk centered at (cx, cy).
func (b *Bitmap) FillCircle(cx, cy, r int, c color.RGBA) {
	r2 := r * r
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r2 {
				b.Set(x, y, c)
			}
		}
	}
}

// FillTriangle paints a filled triangle (used for the AdChoices chevron).
func (b *Bitmap) FillTriangle(x0, y0, x1, y1, x2, y2 int, c color.RGBA) {
	minX, maxX := min3(x0, x1, x2), max3(x0, x1, x2)
	minY, maxY := min3(y0, y1, y2), max3(y0, y1, y2)
	// barycentric sign test
	edge := func(ax, ay, bx, by, px, py int) int {
		return (bx-ax)*(py-ay) - (by-ay)*(px-ax)
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			d0 := edge(x0, y0, x1, y1, x, y)
			d1 := edge(x1, y1, x2, y2, x, y)
			d2 := edge(x2, y2, x0, y0, x, y)
			if (d0 >= 0 && d1 >= 0 && d2 >= 0) || (d0 <= 0 && d1 <= 0 && d2 <= 0) {
				b.Set(x, y, c)
			}
		}
	}
}

// LinearGradientV fills the rect with a vertical gradient from top to bottom.
func (b *Bitmap) LinearGradientV(x0, y0, x1, y1 int, top, bottom color.RGBA) {
	if y1 <= y0 {
		return
	}
	for y := y0; y < y1; y++ {
		t := float64(y-y0) / float64(y1-y0)
		c := lerpColor(top, bottom, t)
		b.FillRect(x0, y, x1, y+1, c)
	}
}

// Blit copies src onto b with its top-left corner at (dx, dy), clipping as
// needed. Alpha is ignored (source-over with opaque sources).
func (b *Bitmap) Blit(src *Bitmap, dx, dy int) {
	for y := 0; y < src.H; y++ {
		ty := dy + y
		if ty < 0 || ty >= b.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := dx + x
			if tx < 0 || tx >= b.W {
				continue
			}
			si := (y*src.W + x) * 4
			di := (ty*b.W + tx) * 4
			copy(b.Pix[di:di+4], src.Pix[si:si+4])
		}
	}
}

// SubImage copies the rectangle [x0,x1)×[y0,y1) (clipped) into a new bitmap.
func (b *Bitmap) SubImage(x0, y0, x1, y1 int) *Bitmap {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > b.W {
		x1 = b.W
	}
	if y1 > b.H {
		y1 = b.H
	}
	if x1 <= x0 || y1 <= y0 {
		return NewBitmap(1, 1)
	}
	out := NewBitmap(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W*4:], b.Pix[(y*b.W+x0)*4:(y*b.W+x1)*4])
	}
	return out
}

// ToImage converts the bitmap to a stdlib image for encoding.
func (b *Bitmap) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, b.W, b.H))
	copy(img.Pix, b.Pix)
	return img
}

// FromImage converts any stdlib image into a Bitmap.
func FromImage(img image.Image) *Bitmap {
	bounds := img.Bounds()
	b := NewBitmap(bounds.Dx(), bounds.Dy())
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			r, g, bl, a := img.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			b.Set(x, y, color.RGBA{uint8(r >> 8), uint8(g >> 8), uint8(bl >> 8), uint8(a >> 8)})
		}
	}
	return b
}

func lerpColor(a, b color.RGBA, t float64) color.RGBA {
	l := func(x, y uint8) uint8 { return uint8(float64(x) + (float64(y)-float64(x))*t) }
	return color.RGBA{l(a.R, b.R), l(a.G, b.G), l(a.B, b.B), l(a.A, b.A)}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
