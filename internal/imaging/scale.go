package imaging

import (
	"sync"

	"percival/internal/tensor"
)

// ResizeBilinear scales the bitmap to w×h with bilinear filtering. This is
// the scaling step PERCIVAL performs before classification: "PERCIVAL reads
// the image, scales it to 224×224×4 ... creates a tensor" (§3.3).
func ResizeBilinear(src *Bitmap, w, h int) *Bitmap {
	dst := NewBitmap(w, h)
	ResizeBilinearInto(src, dst)
	return dst
}

// resizeTables holds the precomputed sampling geometry for one
// (srcW, srcH) → (dstW, dstH) scaling: per-column and per-row source offsets
// plus 8.8 fixed-point blend weights. The geometry depends only on the two
// sizes, so it is computed once and shared by every frame of that shape —
// the per-pixel float64 coordinate math and divides disappear from the
// per-frame path.
type resizeTables struct {
	x0, x1 []int    // source byte offsets of the left/right sample columns
	fx     []uint32 // horizontal weight of the right sample, in [0, 256]
	y0, y1 []int    // source byte offsets of the top/bottom sample rows
	fy     []uint32 // vertical weight of the bottom sample, in [0, 256]
}

var resizeCache = struct {
	sync.RWMutex
	m map[[4]int]*resizeTables
}{m: make(map[[4]int]*resizeTables)}

// resizeCacheMax bounds the table cache: source frame sizes are
// page-determined and unbounded in variety in a long-running service, so
// when the cache fills it is flushed wholesale — live sizes repopulate
// immediately and tables are cheap to recompute, while the footprint stays
// bounded.
const resizeCacheMax = 1024

// resizeTablesFor returns the (cached) sampling tables for a scaling pair.
// The read-locked fast path performs no allocation, keeping the steady-state
// classification pipeline zero-alloc.
func resizeTablesFor(sw, sh, dw, dh int) *resizeTables {
	key := [4]int{sw, sh, dw, dh}
	resizeCache.RLock()
	t := resizeCache.m[key]
	resizeCache.RUnlock()
	if t != nil {
		return t
	}
	t = &resizeTables{
		x0: make([]int, dw), x1: make([]int, dw), fx: make([]uint32, dw),
		y0: make([]int, dh), y1: make([]int, dh), fy: make([]uint32, dh),
	}
	xRatio := float64(sw-1) / float64(maxInt(dw-1, 1))
	for x := 0; x < dw; x++ {
		sx := float64(x) * xRatio
		x0 := int(sx)
		x1 := x0 + 1
		if x1 >= sw {
			x1 = sw - 1
		}
		t.x0[x] = x0 * 4
		t.x1[x] = x1 * 4
		t.fx[x] = uint32((sx-float64(x0))*256 + 0.5)
	}
	yRatio := float64(sh-1) / float64(maxInt(dh-1, 1))
	for y := 0; y < dh; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= sh {
			y1 = sh - 1
		}
		t.y0[y] = y0 * sw * 4
		t.y1[y] = y1 * sw * 4
		t.fy[y] = uint32((sy-float64(y0))*256 + 0.5)
	}
	resizeCache.Lock()
	if len(resizeCache.m) >= resizeCacheMax {
		resizeCache.m = make(map[[4]int]*resizeTables, resizeCacheMax)
	}
	resizeCache.m[key] = t
	resizeCache.Unlock()
	return t
}

// ResizeBilinearInto scales src into the pre-allocated dst bitmap, whose
// dimensions select the output size. It allocates nothing in steady state
// (the sampling tables are cached per size pair), so per-frame
// pre-processing reuses one destination across frames. Blending runs in 8.8
// fixed point — integer loads, multiplies and one shift per channel — in
// place of the former per-pixel float64 interpolation.
func ResizeBilinearInto(src, dst *Bitmap) {
	w, h := dst.W, dst.H
	if src.W == w && src.H == h {
		copy(dst.Pix, src.Pix)
		return
	}
	t := resizeTablesFor(src.W, src.H, w, h)
	for y := 0; y < h; y++ {
		r0 := src.Pix[t.y0[y]:]
		r1 := src.Pix[t.y1[y]:]
		wy := t.fy[y]
		iwy := 256 - wy
		drow := dst.Pix[y*w*4 : (y+1)*w*4]
		for x := 0; x < w; x++ {
			o0, o1 := t.x0[x], t.x1[x]
			wx := t.fx[x]
			iwx := 256 - wx
			p00 := r0[o0 : o0+4]
			p01 := r0[o1 : o1+4]
			p10 := r1[o0 : o0+4]
			p11 := r1[o1 : o1+4]
			d := drow[x*4 : x*4+4]
			top := uint32(p00[0])*iwx + uint32(p01[0])*wx
			bot := uint32(p10[0])*iwx + uint32(p11[0])*wx
			d[0] = uint8((top*iwy + bot*wy + 1<<15) >> 16)
			top = uint32(p00[1])*iwx + uint32(p01[1])*wx
			bot = uint32(p10[1])*iwx + uint32(p11[1])*wx
			d[1] = uint8((top*iwy + bot*wy + 1<<15) >> 16)
			top = uint32(p00[2])*iwx + uint32(p01[2])*wx
			bot = uint32(p10[2])*iwx + uint32(p11[2])*wx
			d[2] = uint8((top*iwy + bot*wy + 1<<15) >> 16)
			top = uint32(p00[3])*iwx + uint32(p01[3])*wx
			bot = uint32(p10[3])*iwx + uint32(p11[3])*wx
			d[3] = uint8((top*iwy + bot*wy + 1<<15) >> 16)
		}
	}
}

// ToTensor converts a bitmap into a [1,4,H,W] network input, scaling pixel
// values to [0,1]. Channel order is RGBA, matching the decoded buffer layout.
func ToTensor(b *Bitmap) *tensor.Tensor {
	t := tensor.New(1, 4, b.H, b.W)
	ToTensorInto(b, t.Data)
	return t
}

// ToTensorInto writes the [4,H,W] float planes of one bitmap into dst
// (length >= 4*H*W) without allocating — the per-sample body of ToTensor and
// of batched tensor assembly.
func ToTensorInto(b *Bitmap, dst []float32) {
	plane := b.H * b.W
	if len(dst) < 4*plane {
		panic("imaging: ToTensorInto dst too small")
	}
	const inv = float32(1) / 255
	r := dst[:plane]
	g := dst[plane : 2*plane]
	bl := dst[2*plane : 3*plane]
	a := dst[3*plane : 4*plane]
	for pi := 0; pi < plane; pi++ {
		si := pi * 4
		r[pi] = float32(b.Pix[si]) * inv
		g[pi] = float32(b.Pix[si+1]) * inv
		bl[pi] = float32(b.Pix[si+2]) * inv
		a[pi] = float32(b.Pix[si+3]) * inv
	}
}

// BatchToTensor stacks same-sized bitmaps into an [N,4,H,W] batch.
func BatchToTensor(bs []*Bitmap) *tensor.Tensor {
	if len(bs) == 0 {
		panic("imaging: empty batch")
	}
	h, w := bs[0].H, bs[0].W
	t := tensor.New(len(bs), 4, h, w)
	per := 4 * h * w
	for i, b := range bs {
		if b.H != h || b.W != w {
			panic("imaging: batch bitmaps must share dimensions")
		}
		ToTensorInto(b, t.Data[i*per:(i+1)*per])
	}
	return t
}

// PrepareInput resizes a decoded frame to the network resolution and converts
// it to a tensor — the complete pre-processing PERCIVAL applies inside the
// raster task.
func PrepareInput(b *Bitmap, res int) *tensor.Tensor {
	return ToTensor(ResizeBilinear(b, res, res))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
