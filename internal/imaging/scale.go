package imaging

import "percival/internal/tensor"

// ResizeBilinear scales the bitmap to w×h with bilinear filtering. This is
// the scaling step PERCIVAL performs before classification: "PERCIVAL reads
// the image, scales it to 224×224×4 ... creates a tensor" (§3.3).
func ResizeBilinear(src *Bitmap, w, h int) *Bitmap {
	dst := NewBitmap(w, h)
	ResizeBilinearInto(src, dst)
	return dst
}

// ResizeBilinearInto scales src into the pre-allocated dst bitmap, whose
// dimensions select the output size. It allocates nothing, so per-frame
// pre-processing can reuse one destination across frames.
func ResizeBilinearInto(src, dst *Bitmap) {
	w, h := dst.W, dst.H
	if src.W == w && src.H == h {
		copy(dst.Pix, src.Pix)
		return
	}
	xRatio := float64(src.W-1) / float64(maxInt(w-1, 1))
	yRatio := float64(src.H-1) / float64(maxInt(h-1, 1))
	for y := 0; y < h; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= src.H {
			y1 = src.H - 1
		}
		fy := sy - float64(y0)
		for x := 0; x < w; x++ {
			sx := float64(x) * xRatio
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			fx := sx - float64(x0)
			di := (y*w + x) * 4
			for c := 0; c < 4; c++ {
				p00 := float64(src.Pix[(y0*src.W+x0)*4+c])
				p01 := float64(src.Pix[(y0*src.W+x1)*4+c])
				p10 := float64(src.Pix[(y1*src.W+x0)*4+c])
				p11 := float64(src.Pix[(y1*src.W+x1)*4+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				dst.Pix[di+c] = uint8(top + (bot-top)*fy + 0.5)
			}
		}
	}
}

// ToTensor converts a bitmap into a [1,4,H,W] network input, scaling pixel
// values to [0,1]. Channel order is RGBA, matching the decoded buffer layout.
func ToTensor(b *Bitmap) *tensor.Tensor {
	t := tensor.New(1, 4, b.H, b.W)
	ToTensorInto(b, t.Data)
	return t
}

// ToTensorInto writes the [4,H,W] float planes of one bitmap into dst
// (length >= 4*H*W) without allocating — the per-sample body of ToTensor and
// of batched tensor assembly.
func ToTensorInto(b *Bitmap, dst []float32) {
	plane := b.H * b.W
	if len(dst) < 4*plane {
		panic("imaging: ToTensorInto dst too small")
	}
	const inv = float32(1) / 255
	r := dst[:plane]
	g := dst[plane : 2*plane]
	bl := dst[2*plane : 3*plane]
	a := dst[3*plane : 4*plane]
	for pi := 0; pi < plane; pi++ {
		si := pi * 4
		r[pi] = float32(b.Pix[si]) * inv
		g[pi] = float32(b.Pix[si+1]) * inv
		bl[pi] = float32(b.Pix[si+2]) * inv
		a[pi] = float32(b.Pix[si+3]) * inv
	}
}

// BatchToTensor stacks same-sized bitmaps into an [N,4,H,W] batch.
func BatchToTensor(bs []*Bitmap) *tensor.Tensor {
	if len(bs) == 0 {
		panic("imaging: empty batch")
	}
	h, w := bs[0].H, bs[0].W
	t := tensor.New(len(bs), 4, h, w)
	per := 4 * h * w
	for i, b := range bs {
		if b.H != h || b.W != w {
			panic("imaging: batch bitmaps must share dimensions")
		}
		ToTensorInto(b, t.Data[i*per:(i+1)*per])
	}
	return t
}

// PrepareInput resizes a decoded frame to the network resolution and converts
// it to a tensor — the complete pre-processing PERCIVAL applies inside the
// raster task.
func PrepareInput(b *Bitmap, res int) *tensor.Tensor {
	return ToTensor(ResizeBilinear(b, res, res))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
