package imaging

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// resizeBilinearRef is the float64 reference implementation (the pre-table
// scalar code), kept for equivalence testing and the speedup benchmark.
func resizeBilinearRef(src, dst *Bitmap) {
	w, h := dst.W, dst.H
	if src.W == w && src.H == h {
		copy(dst.Pix, src.Pix)
		return
	}
	xRatio := float64(src.W-1) / float64(maxInt(w-1, 1))
	yRatio := float64(src.H-1) / float64(maxInt(h-1, 1))
	for y := 0; y < h; y++ {
		sy := float64(y) * yRatio
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= src.H {
			y1 = src.H - 1
		}
		fy := sy - float64(y0)
		for x := 0; x < w; x++ {
			sx := float64(x) * xRatio
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			fx := sx - float64(x0)
			di := (y*w + x) * 4
			for c := 0; c < 4; c++ {
				p00 := float64(src.Pix[(y0*src.W+x0)*4+c])
				p01 := float64(src.Pix[(y0*src.W+x1)*4+c])
				p10 := float64(src.Pix[(y1*src.W+x0)*4+c])
				p11 := float64(src.Pix[(y1*src.W+x1)*4+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				dst.Pix[di+c] = uint8(top + (bot-top)*fy + 0.5)
			}
		}
	}
}

func randomBitmap(rng *rand.Rand, w, h int) *Bitmap {
	b := NewBitmap(w, h)
	for i := range b.Pix {
		b.Pix[i] = uint8(rng.Intn(256))
	}
	return b
}

// TestResizeBilinearMatchesReference checks the fixed-point table path stays
// within 1 intensity step of the float64 reference (8.8 weights round the
// blend fractions) across representative shapes, including identity,
// upscaling, and extreme aspect ratios.
func TestResizeBilinearMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := [][4]int{
		{640, 480, 224, 224}, {64, 64, 64, 64}, {30, 20, 224, 224},
		{224, 224, 32, 32}, {3, 500, 32, 32}, {500, 3, 64, 16}, {1, 1, 16, 16},
	}
	for _, cse := range cases {
		src := randomBitmap(rng, cse[0], cse[1])
		want := NewBitmap(cse[2], cse[3])
		resizeBilinearRef(src, want)
		got := NewBitmap(cse[2], cse[3])
		ResizeBilinearInto(src, got)
		for i := range want.Pix {
			if d := math.Abs(float64(int(got.Pix[i]) - int(want.Pix[i]))); d > 1 {
				t.Fatalf("%v: pix[%d]=%d reference %d (diff %v > 1)", cse, i, got.Pix[i], want.Pix[i], d)
			}
		}
	}
}

// TestResizeBilinearIntoNoAllocs checks the steady-state resize (tables
// cached) performs no heap allocation — it sits on the zero-alloc Classify
// path.
func TestResizeBilinearIntoNoAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(32))
	src := randomBitmap(rng, 300, 200)
	dst := NewBitmap(224, 224)
	ResizeBilinearInto(src, dst) // warm the table cache
	allocs := testing.AllocsPerRun(10, func() {
		ResizeBilinearInto(src, dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ResizeBilinearInto allocates %v times per call, want 0", allocs)
	}
}

// TestResizeBilinearConcurrent exercises the table cache from multiple
// goroutines (run under -race in the imaging test sweep).
func TestResizeBilinearConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	src := randomBitmap(rng, 123, 77)
	want := NewBitmap(224, 224)
	ResizeBilinearInto(src, want)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			dst := NewBitmap(224, 224)
			for i := 0; i < 20; i++ {
				ResizeBilinearInto(src, dst)
			}
			ok := true
			for i := range want.Pix {
				if dst.Pix[i] != want.Pix[i] {
					ok = false
					break
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent resize mismatch")
		}
	}
}

// BenchmarkResizeBilinearInto measures the per-frame scaling cost on the
// classification pre-processing path (typical decoded frame → 224×224).
func BenchmarkResizeBilinearInto(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	src := randomBitmap(rng, 640, 480)
	dst := NewBitmap(224, 224)
	ResizeBilinearInto(src, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResizeBilinearInto(src, dst)
	}
}

// BenchmarkResizeBilinearRef benchmarks the float64 reference loop for the
// speedup comparison recorded in PERFORMANCE.md.
func BenchmarkResizeBilinearRef(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	src := randomBitmap(rng, 640, 480)
	dst := NewBitmap(224, 224)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resizeBilinearRef(src, dst)
	}
}
