package imaging

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
)

// ContentHash returns a collision-resistant digest of the exact pixel
// content plus dimensions. PERCIVAL's asynchronous mode memoizes
// classification results by this key, and the crawler uses it for exact
// de-duplication.
func ContentHash(b *Bitmap) [32]byte {
	h := sha256.New()
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(b.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(b.H))
	h.Write(dims[:])
	h.Write(b.Pix)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// PerceptualHash computes an 8×8 average hash: the image is downscaled to
// 8×8 grayscale and each bit records whether that cell is brighter than the
// mean. Visually-similar images (rescaled, recompressed ad creatives) map to
// nearby hashes; the crawler treats small Hamming distances as duplicates.
func PerceptualHash(b *Bitmap) uint64 {
	small := ResizeBilinear(b, 8, 8)
	var gray [64]float64
	var mean float64
	for i := 0; i < 64; i++ {
		r := float64(small.Pix[i*4])
		g := float64(small.Pix[i*4+1])
		bl := float64(small.Pix[i*4+2])
		gray[i] = 0.299*r + 0.587*g + 0.114*bl
		mean += gray[i]
	}
	mean /= 64
	var h uint64
	for i := 0; i < 64; i++ {
		if gray[i] > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

// HammingDistance counts differing bits between two perceptual hashes.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// NearDuplicate reports whether two perceptual hashes are within the
// given Hamming radius (a radius of 5 works well for rescaled creatives).
func NearDuplicate(a, b uint64, radius int) bool {
	return HammingDistance(a, b) <= radius
}

// ThumbEdge is the square edge of comparison thumbnails.
const ThumbEdge = 16

// Thumbnail returns a 16×16 downscale used for second-stage duplicate
// confirmation: the 64-bit aHash is a cheap prefilter but collides on
// images that share layout; the thumbnail comparison is color-aware.
func Thumbnail(b *Bitmap) *Bitmap { return ResizeBilinear(b, ThumbEdge, ThumbEdge) }

// MeanAbsDiff computes the mean absolute per-channel difference (0..255)
// between two same-sized bitmaps.
func MeanAbsDiff(a, b *Bitmap) float64 {
	if a.W != b.W || a.H != b.H {
		return 255
	}
	var sum int
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix))
}
