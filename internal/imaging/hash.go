package imaging

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
	"sync"
)

// ContentHash returns a collision-resistant digest of the exact pixel
// content plus dimensions. PERCIVAL's asynchronous mode memoizes
// classification results by this key, and the crawler uses it for exact
// de-duplication.
func ContentHash(b *Bitmap) [32]byte {
	h := sha256.New()
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(b.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(b.H))
	h.Write(dims[:])
	h.Write(b.Pix)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ContentKey is the canonical verdict-cache key shared by the serving layer
// and the remote-dispatch wire: SHA-256 of the pixel buffer with the
// dimensions XOR-folded into the leading bytes, so two buffers of equal
// byte-length but different shapes cannot collide. Computed with
// sha256.Sum256 (stack-allocated state), so keying a frame on the submit or
// dispatch hot path performs no heap allocation — unlike ContentHash, whose
// hash.Hash interface forces its state to escape. A remote peer answering a
// hash probe from its cache and the local serve layer memoizing a verdict
// must agree on this key byte-for-byte.
func ContentKey(b *Bitmap) [32]byte {
	k := sha256.Sum256(b.Pix)
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(b.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(b.H))
	for i, d := range dims {
		k[i] ^= d
	}
	return k
}

// PerceptualHash computes an 8×8 average hash: the image is downscaled to
// 8×8 grayscale and each bit records whether that cell is brighter than the
// mean. Visually-similar images (rescaled, recompressed ad creatives) map to
// nearby hashes; the crawler treats small Hamming distances as duplicates.
func PerceptualHash(b *Bitmap) uint64 {
	return averageHash(ResizeBilinear(b, 8, 8))
}

// phashScratch pools the 8×8 downscale buffers PerceptualHashPooled reuses.
var phashScratch = sync.Pool{New: func() any { return NewBitmap(8, 8) }}

// PerceptualHashPooled is PerceptualHash on a pooled downscale buffer:
// bit-identical output, zero steady-state heap allocation (ResizeBilinearInto
// reuses its cached interpolation tables). The remote-dispatch wire hashes
// every frame it probes, so the per-frame cost must not allocate.
func PerceptualHashPooled(b *Bitmap) uint64 {
	small := phashScratch.Get().(*Bitmap)
	ResizeBilinearInto(b, small)
	h := averageHash(small)
	phashScratch.Put(small)
	return h
}

// averageHash computes the aHash bits of an already-downscaled 8×8 frame.
func averageHash(small *Bitmap) uint64 {
	var gray [64]float64
	var mean float64
	for i := 0; i < 64; i++ {
		r := float64(small.Pix[i*4])
		g := float64(small.Pix[i*4+1])
		bl := float64(small.Pix[i*4+2])
		gray[i] = 0.299*r + 0.587*g + 0.114*bl
		mean += gray[i]
	}
	mean /= 64
	var h uint64
	for i := 0; i < 64; i++ {
		if gray[i] > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

// HammingDistance counts differing bits between two perceptual hashes.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// NearDuplicate reports whether two perceptual hashes are within the
// given Hamming radius (a radius of 5 works well for rescaled creatives).
func NearDuplicate(a, b uint64, radius int) bool {
	return HammingDistance(a, b) <= radius
}

// ThumbEdge is the square edge of comparison thumbnails.
const ThumbEdge = 16

// Thumbnail returns a 16×16 downscale used for second-stage duplicate
// confirmation: the 64-bit aHash is a cheap prefilter but collides on
// images that share layout; the thumbnail comparison is color-aware.
func Thumbnail(b *Bitmap) *Bitmap { return ResizeBilinear(b, ThumbEdge, ThumbEdge) }

// MeanAbsDiff computes the mean absolute per-channel difference (0..255)
// between two same-sized bitmaps.
func MeanAbsDiff(a, b *Bitmap) float64 {
	if a.W != b.W || a.H != b.H {
		return 255
	}
	var sum int
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix))
}
