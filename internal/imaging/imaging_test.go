package imaging

import (
	"image/color"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	red   = color.RGBA{255, 0, 0, 255}
	white = color.RGBA{255, 255, 255, 255}
	black = color.RGBA{0, 0, 0, 255}
)

func randBitmap(rng *rand.Rand, w, h int) *Bitmap {
	b := NewBitmap(w, h)
	rng.Read(b.Pix)
	return b
}

func TestSetAtAndBounds(t *testing.T) {
	b := NewBitmap(4, 4)
	b.Set(1, 2, red)
	if b.At(1, 2) != red {
		t.Fatalf("At = %v", b.At(1, 2))
	}
	// out-of-bounds: no panic, zero reads
	b.Set(-1, 0, red)
	b.Set(0, 99, red)
	if (b.At(-1, 0) != color.RGBA{}) || (b.At(99, 0) != color.RGBA{}) {
		t.Fatal("out-of-bounds At should be zero")
	}
}

func TestNewBitmapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitmap(0, 5)
}

func TestFillRectClipsAndFills(t *testing.T) {
	b := NewBitmap(8, 8)
	b.FillRect(-5, -5, 4, 4, red)
	if b.At(0, 0) != red || b.At(3, 3) != red {
		t.Fatal("rect not filled")
	}
	if b.At(4, 4) == red {
		t.Fatal("rect overfilled")
	}
	b.FillRect(6, 6, 100, 100, white)
	if b.At(7, 7) != white {
		t.Fatal("clipped rect not filled")
	}
}

func TestClearAndIsCleared(t *testing.T) {
	b := NewBitmap(4, 4)
	b.Fill(red)
	if b.IsCleared() {
		t.Fatal("filled bitmap reported cleared")
	}
	b.Clear()
	if !b.IsCleared() {
		t.Fatal("cleared bitmap not detected")
	}
}

func TestStrokeRect(t *testing.T) {
	b := NewBitmap(10, 10)
	b.StrokeRect(0, 0, 10, 10, 2, red)
	if b.At(0, 0) != red || b.At(9, 9) != red || b.At(1, 5) != red {
		t.Fatal("border missing")
	}
	if b.At(5, 5) == red {
		t.Fatal("interior painted")
	}
}

func TestFillCircle(t *testing.T) {
	b := NewBitmap(21, 21)
	b.FillCircle(10, 10, 5, red)
	if b.At(10, 10) != red || b.At(10, 5) != red {
		t.Fatal("circle missing pixels")
	}
	if b.At(10, 3) == red || b.At(0, 0) == red {
		t.Fatal("circle overdrawn")
	}
}

func TestFillTriangle(t *testing.T) {
	b := NewBitmap(20, 20)
	b.FillTriangle(0, 0, 19, 0, 0, 19, red)
	if b.At(1, 1) != red {
		t.Fatal("triangle interior missing")
	}
	if b.At(19, 19) == red {
		t.Fatal("opposite corner painted")
	}
}

func TestLinearGradientV(t *testing.T) {
	b := NewBitmap(4, 10)
	b.LinearGradientV(0, 0, 4, 10, black, white)
	top, bottom := b.At(0, 0), b.At(0, 9)
	if top.R >= bottom.R {
		t.Fatalf("gradient not increasing: %v -> %v", top, bottom)
	}
}

func TestBlitAndSubImage(t *testing.T) {
	dst := NewBitmap(10, 10)
	src := NewBitmap(3, 3)
	src.Fill(red)
	dst.Blit(src, 4, 4)
	if dst.At(4, 4) != red || dst.At(6, 6) != red {
		t.Fatal("blit failed")
	}
	if dst.At(3, 3) == red || dst.At(7, 7) == red {
		t.Fatal("blit overdrawn")
	}
	// clipping blit
	dst.Blit(src, 9, 9)
	if dst.At(9, 9) != red {
		t.Fatal("clipped blit failed")
	}
	sub := dst.SubImage(4, 4, 7, 7)
	if sub.W != 3 || sub.H != 3 || sub.At(0, 0) != red {
		t.Fatal("subimage wrong")
	}
	// degenerate subimage
	d := dst.SubImage(8, 8, 2, 2)
	if d.W != 1 || d.H != 1 {
		t.Fatal("degenerate subimage should be 1x1")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewBitmap(2, 2)
	b.Fill(red)
	c := b.Clone()
	c.Fill(white)
	if b.At(0, 0) != red {
		t.Fatal("clone shares pixels")
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randBitmap(rng, 7, 5)
	r := ResizeBilinear(b, 7, 5)
	for i := range b.Pix {
		if b.Pix[i] != r.Pix[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizeBilinearSolidStaysSolid(t *testing.T) {
	b := NewBitmap(13, 9)
	b.Fill(color.RGBA{37, 99, 201, 255})
	r := ResizeBilinear(b, 224, 224)
	for i := 0; i < len(r.Pix); i += 4 {
		if r.Pix[i] != 37 || r.Pix[i+1] != 99 || r.Pix[i+2] != 201 {
			t.Fatalf("solid color distorted at %d: %v", i, r.Pix[i:i+4])
		}
	}
}

func TestResizeBilinearDownscalePreservesStructure(t *testing.T) {
	// left half black, right half white; downscale must keep the split
	b := NewBitmap(100, 100)
	b.Fill(black)
	b.FillRect(50, 0, 100, 100, white)
	r := ResizeBilinear(b, 10, 10)
	if r.At(1, 5).R > 60 {
		t.Fatalf("left half should stay dark: %v", r.At(1, 5))
	}
	if r.At(8, 5).R < 200 {
		t.Fatalf("right half should stay bright: %v", r.At(8, 5))
	}
}

func TestToTensorLayoutAndRange(t *testing.T) {
	b := NewBitmap(2, 2)
	b.Set(0, 0, color.RGBA{255, 0, 128, 255})
	tns := ToTensor(b)
	if tns.Shape[0] != 1 || tns.Shape[1] != 4 || tns.Shape[2] != 2 || tns.Shape[3] != 2 {
		t.Fatalf("shape %v", tns.Shape)
	}
	if tns.At(0, 0, 0, 0) != 1 { // R
		t.Fatal("R channel wrong")
	}
	if tns.At(0, 1, 0, 0) != 0 { // G
		t.Fatal("G channel wrong")
	}
	if v := tns.At(0, 2, 0, 0); v < 0.49 || v > 0.51 { // B = 128/255
		t.Fatalf("B channel %v", v)
	}
	for _, v := range tns.Data {
		if v < 0 || v > 1 {
			t.Fatalf("value %v outside [0,1]", v)
		}
	}
}

func TestBatchToTensor(t *testing.T) {
	a := NewBitmap(3, 3)
	a.Fill(white)
	b := NewBitmap(3, 3)
	b.Fill(black)
	batch := BatchToTensor([]*Bitmap{a, b})
	if batch.Shape[0] != 2 {
		t.Fatalf("batch shape %v", batch.Shape)
	}
	if batch.At(0, 0, 0, 0) != 1 || batch.At(1, 0, 0, 0) != 0 {
		t.Fatal("batch values wrong")
	}
}

func TestBatchToTensorRejectsMixedSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BatchToTensor([]*Bitmap{NewBitmap(2, 2), NewBitmap(3, 3)})
}

func TestPrepareInputShape(t *testing.T) {
	b := NewBitmap(300, 250) // IAB medium rectangle
	tns := PrepareInput(b, 64)
	if tns.Shape[2] != 64 || tns.Shape[3] != 64 {
		t.Fatalf("shape %v", tns.Shape)
	}
}

func TestContentHashDistinguishesAndRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randBitmap(rng, 16, 16)
	b := a.Clone()
	if ContentHash(a) != ContentHash(b) {
		t.Fatal("identical bitmaps must hash equal")
	}
	b.Set(3, 3, red)
	if ContentHash(a) == ContentHash(b) {
		t.Fatal("different bitmaps hashed equal")
	}
	// dimension change with same bytes must differ
	c := &Bitmap{W: 8, H: 32, Pix: append([]uint8(nil), a.Pix...)}
	if ContentHash(a) == ContentHash(c) {
		t.Fatal("dimension change should alter hash")
	}
}

func TestPerceptualHashToleratesRescale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// structured image: gradient + rect, so the aHash has signal
	b := NewBitmap(64, 64)
	b.LinearGradientV(0, 0, 64, 64, black, white)
	b.FillRect(10, 10, 30, 30, red)
	_ = rng
	h1 := PerceptualHash(b)
	scaled := ResizeBilinear(b, 97, 41)
	h2 := PerceptualHash(scaled)
	if d := HammingDistance(h1, h2); d > 8 {
		t.Fatalf("rescaled image hash distance %d too large", d)
	}
	if !NearDuplicate(h1, h2, 8) {
		t.Fatal("rescale should be near-duplicate")
	}
	inverted := NewBitmap(64, 64)
	inverted.LinearGradientV(0, 0, 64, 64, white, black)
	h3 := PerceptualHash(inverted)
	if NearDuplicate(h1, h3, 8) {
		t.Fatal("inverted image should not be near-duplicate")
	}
}

// TestPerceptualHashPooledBitIdentical: the pooled zero-alloc path must be
// bit-identical to PerceptualHash on every input — the remote wire sends
// pooled hashes and the peer compares against allocation-path history, so
// any divergence would silently break dedup.
func TestPerceptualHashPooledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inputs := []*Bitmap{
		NewBitmap(1, 1),
		NewBitmap(8, 8),
		randBitmap(rng, 3, 17),
		randBitmap(rng, 64, 64),
		randBitmap(rng, 97, 41),
	}
	g := NewBitmap(64, 64)
	g.LinearGradientV(0, 0, 64, 64, black, white)
	inputs = append(inputs, g)
	for i, b := range inputs {
		if got, want := PerceptualHashPooled(b), PerceptualHash(b); got != want {
			t.Fatalf("input %d (%dx%d): pooled %x, plain %x", i, b.W, b.H, got, want)
		}
	}
	// zero-alloc is the point of the pooled path: it must stay off the
	// serve hot path's allocation budget
	b := inputs[3]
	PerceptualHashPooled(b) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() { PerceptualHashPooled(b) }); allocs != 0 {
		t.Fatalf("PerceptualHashPooled allocates %v per run, want 0", allocs)
	}
}

// TestContentKeyDistinguishesAndIsZeroAlloc: ContentKey is the canonical
// wire/cache key — same content and dims agree, any pixel or dimension
// change differs, and computing it costs no allocations.
func TestContentKeyDistinguishesAndIsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randBitmap(rng, 16, 16)
	if ContentKey(a) != ContentKey(a.Clone()) {
		t.Fatal("identical bitmaps must key equal")
	}
	b := a.Clone()
	b.Set(5, 5, red)
	if ContentKey(a) == ContentKey(b) {
		t.Fatal("different pixels keyed equal")
	}
	c := &Bitmap{W: 8, H: 32, Pix: append([]uint8(nil), a.Pix...)}
	if ContentKey(a) == ContentKey(c) {
		t.Fatal("dimension change should alter key")
	}
	if allocs := testing.AllocsPerRun(100, func() { ContentKey(a) }); allocs != 0 {
		t.Fatalf("ContentKey allocates %v per run, want 0", allocs)
	}
}

func TestHammingDistanceProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		d := HammingDistance(a, b)
		return d == HammingDistance(b, a) && d >= 0 && d <= 64 &&
			(a != b || d == 0) && (a == b || d > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTripPNG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := randBitmap(rng, 12, 9)
	// PNG is lossless: exact roundtrip (force opaque alpha to avoid
	// premultiplication differences in decode paths)
	for i := 3; i < len(b.Pix); i += 4 {
		b.Pix[i] = 255
	}
	data, err := Encode(b, PNG)
	if err != nil {
		t.Fatal(err)
	}
	dec, format, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if format != PNG {
		t.Fatalf("sniffed format %q", format)
	}
	for i := range b.Pix {
		if b.Pix[i] != dec.Pix[i] {
			t.Fatalf("png roundtrip differs at %d", i)
		}
	}
}

func TestCodecRoundTripJPEGApproximate(t *testing.T) {
	b := NewBitmap(32, 32)
	b.Fill(color.RGBA{200, 100, 50, 255})
	data, err := Encode(b, JPEG)
	if err != nil {
		t.Fatal(err)
	}
	dec, format, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if format != JPEG {
		t.Fatalf("format %q", format)
	}
	// lossy: tolerate small error
	for i := 0; i < len(b.Pix); i += 4 {
		for c := 0; c < 3; c++ {
			diff := int(b.Pix[i+c]) - int(dec.Pix[i+c])
			if diff < -12 || diff > 12 {
				t.Fatalf("jpeg error too large at %d: %d vs %d", i+c, b.Pix[i+c], dec.Pix[i+c])
			}
		}
	}
}

func TestCodecGIF(t *testing.T) {
	b := NewBitmap(8, 8)
	b.Fill(red)
	data, err := Encode(b, GIF)
	if err != nil {
		t.Fatal(err)
	}
	dec, format, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if format != GIF || dec.W != 8 {
		t.Fatalf("gif decode: %q %dx%d", format, dec.W, dec.H)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode([]byte("not an image")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestEncodeRejectsUnknownFormat(t *testing.T) {
	if _, err := Encode(NewBitmap(2, 2), Format("webp")); err == nil {
		t.Fatal("expected error for unsupported format")
	}
}
