// Package elementblocker implements the element-based perceptual ad blocker
// PERCIVAL is contrasted against in §2.2 and §7 (Ad Highlighter-style,
// Storey et al.): it walks the DOM for image elements, screenshots each
// element's rendered box, and classifies the crop. Because it trusts the
// rendered composite, it inherits two weaknesses PERCIVAL avoids — the
// dynamic-load screenshot race, and CSS overlay masks that perturb the
// rendered region without touching the decoded image bytes.
package elementblocker

import (
	"fmt"

	"percival/internal/browser"
	"percival/internal/dom"
	"percival/internal/imaging"
	"percival/internal/layout"
	"percival/internal/webgen"
)

// Classifier scores a rendered crop; true means "ad".
type Classifier func(*imaging.Bitmap) bool

// Verdict records one element's outcome.
type Verdict struct {
	Src       string
	IsAdTruth bool
	Flagged   bool
}

// Blocker is the DOM-scanning element blocker.
type Blocker struct {
	Corpus   *webgen.Corpus
	Classify Classifier
}

// Scan renders the page (no in-pipeline inspector), then screenshots and
// classifies every image element's box, returning per-element verdicts.
func (bl *Blocker) Scan(url string) ([]Verdict, error) {
	if bl.Classify == nil {
		return nil, fmt.Errorf("elementblocker: nil classifier")
	}
	b, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: bl.Corpus})
	if err != nil {
		return nil, err
	}
	res, err := b.Render(url, 0)
	if err != nil {
		return nil, err
	}
	page, _ := bl.Corpus.Page(url)
	doc := dom.Parse(page.HTML)
	dims := map[string][2]int{}
	for _, ri := range res.Images {
		bm := ri.Spec.Render(0)
		dims[ri.Spec.URL] = [2]int{bm.W, bm.H}
	}
	sizer := func(src string) (int, int, bool) {
		d, ok := dims[src]
		if !ok {
			return 0, 0, false
		}
		return d[0], d[1], true
	}
	box := layout.Layout(doc, layout.DefaultViewportW, sizer)

	var out []Verdict
	for _, node := range doc.ByTag("img") {
		src := node.Attrs["src"]
		spec, ok := bl.Corpus.Image(src)
		if !ok {
			continue
		}
		lb := layout.FindBox(box, node)
		if lb == nil || lb.W < 8 || lb.H < 8 {
			continue
		}
		crop := res.Surface.SubImage(lb.X, lb.Y, lb.X+lb.W, lb.Y+lb.H)
		out = append(out, Verdict{
			Src:       src,
			IsAdTruth: spec.IsAd,
			Flagged:   bl.Classify(crop),
		})
	}
	return out, nil
}
