package elementblocker

import (
	"testing"

	"percival/internal/imaging"
	"percival/internal/webgen"
)

// oracle flags crops matching ground truth by comparing against the
// corpus's own rendering — here we just use a pixel-statistics heuristic so
// the test exercises the scan mechanics without training a model.
func brightnessClassifier(threshold float64) Classifier {
	return func(b *imaging.Bitmap) bool {
		var sum float64
		for i := 0; i < len(b.Pix); i += 4 {
			sum += float64(b.Pix[i]) + float64(b.Pix[i+1]) + float64(b.Pix[i+2])
		}
		return sum/float64(len(b.Pix)/4*3) > threshold
	}
}

func TestScanWalksEveryImageElement(t *testing.T) {
	corpus := webgen.NewCorpus(21, 4)
	bl := &Blocker{Corpus: corpus, Classify: brightnessClassifier(0)}
	url := corpus.Sites[0].PageURLs[0]
	verdicts, err := bl.Scan(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no elements scanned")
	}
	page, _ := corpus.Page(url)
	adCount := 0
	for _, v := range verdicts {
		if _, ok := corpus.Image(v.Src); !ok {
			t.Fatalf("verdict for unregistered src %s", v.Src)
		}
		if v.IsAdTruth {
			adCount++
		}
		// brightness > 0 means everything flagged
		if !v.Flagged {
			t.Fatal("always-true classifier must flag everything")
		}
	}
	_ = page
	if adCount == 0 {
		t.Fatal("page should contain directly-embedded ads")
	}
}

func TestScanRequiresClassifier(t *testing.T) {
	corpus := webgen.NewCorpus(22, 2)
	bl := &Blocker{Corpus: corpus}
	if _, err := bl.Scan(corpus.Sites[0].PageURLs[0]); err == nil {
		t.Fatal("nil classifier must error")
	}
}

func TestScanUnknownURL(t *testing.T) {
	corpus := webgen.NewCorpus(23, 2)
	bl := &Blocker{Corpus: corpus, Classify: brightnessClassifier(0)}
	if _, err := bl.Scan("http://nope.example/"); err == nil {
		t.Fatal("unknown URL must error")
	}
}

// TestAttackPageOverlaysChangeScreenshotsNotFrames is the §2.2 mechanism
// check: the overlay must alter the element's screenshot while the decoded
// creative is byte-identical.
func TestAttackPageOverlaysChangeScreenshotsNotFrames(t *testing.T) {
	corpus := webgen.NewCorpus(24, 2)
	page := corpus.GenerateAttackPage(0)
	if len(page.Images) == 0 {
		t.Fatal("empty attack page")
	}
	var adSpec *webgen.ImageSpec
	for _, s := range page.Images {
		if s.IsAd {
			adSpec = s
		}
	}
	if adSpec == nil {
		t.Fatal("attack page carries no ads")
	}
	// the decoded frame is the pure creative regardless of the overlay
	frame := adSpec.Render(0)
	if frame.W == 0 || imagingAllOneColor(frame) {
		t.Fatal("creative degenerate")
	}
	// the element screenshot contains overlay stripes: scan and compare the
	// crop against the pure creative
	bl := &Blocker{Corpus: corpus, Classify: func(b *imaging.Bitmap) bool {
		// detect the sky-colored mask stripes
		c := b.At(b.W/2, 1)
		return c.B > 200 && c.R < 180
	}}
	verdicts, err := bl.Scan(page.URL)
	if err != nil {
		t.Fatal(err)
	}
	maskSeen := false
	for _, v := range verdicts {
		if v.IsAdTruth && v.Flagged {
			maskSeen = true
		}
	}
	if !maskSeen {
		t.Fatal("no overlay stripes found in any ad element screenshot")
	}
}

func imagingAllOneColor(b *imaging.Bitmap) bool {
	first := b.At(0, 0)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) != first {
				return false
			}
		}
	}
	return true
}
