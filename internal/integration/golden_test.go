package integration

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/easylist"
	"percival/internal/synth"
	"percival/internal/webgen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden render files")

// goldenSeed/goldenSites pin the corpus the golden files were generated
// from; changing either requires regenerating with -update.
const (
	goldenSeed  = 7202
	goldenSites = 8
)

// goldenPage records the observable blocking outcome of rendering one page
// under the three §5.7 profiles: stock Chromium (nothing blocked), Brave
// shields (filter-list request blocking + element hiding), and Chromium
// with the PERCIVAL inspector attached (perceptual blocking).
type goldenPage struct {
	URL string `json:"url"`
	// Images is every creative considered, sorted by URL.
	Images []string `json:"images"`
	// ListBlocked is the Brave profile's request-blocked set.
	ListBlocked []string `json:"list_blocked"`
	// HiddenContainers is the Brave profile's cosmetic-rule count.
	HiddenContainers int `json:"hidden_containers"`
	// ModelBlocked is the set cleared by the FP32 PERCIVAL inspector.
	ModelBlocked []string `json:"model_blocked"`
}

type goldenRender struct {
	Seed  int64        `json:"seed"`
	Sites int          `json:"sites"`
	Pages []goldenPage `json:"pages"`
}

const goldenPath = "testdata/golden_render.json"

// renderProfiles renders every top-site front page under the three
// profiles, using the given inspector for the PERCIVAL profile.
func renderProfiles(t *testing.T, corpus *webgen.Corpus, list *easylist.List, inspector *core.Percival) []goldenPage {
	t.Helper()
	chromium, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	brave, err := browser.New(browser.Config{Profile: browser.Brave(list), Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	percival, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: inspector})
	if err != nil {
		t.Fatal(err)
	}
	var pages []goldenPage
	for _, site := range corpus.TopSites(goldenSites) {
		url := site.PageURLs[0]
		gp := goldenPage{URL: url}

		base, err := chromium.Render(url, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ri := range base.Images {
			gp.Images = append(gp.Images, ri.Spec.URL)
			if ri.BlockedByList || ri.BlockedByInspector {
				t.Fatalf("%s: stock Chromium blocked %s", url, ri.Spec.URL)
			}
		}
		sort.Strings(gp.Images)

		shielded, err := brave.Render(url, 0)
		if err != nil {
			t.Fatal(err)
		}
		gp.HiddenContainers = shielded.HiddenContainers
		for _, ri := range shielded.Images {
			if ri.BlockedByList {
				gp.ListBlocked = append(gp.ListBlocked, ri.Spec.URL)
			}
		}
		sort.Strings(gp.ListBlocked)

		inspected, err := percival.Render(url, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ri := range inspected.Images {
			if ri.BlockedByInspector {
				gp.ModelBlocked = append(gp.ModelBlocked, ri.Spec.URL)
			}
		}
		sort.Strings(gp.ModelBlocked)

		pages = append(pages, gp)
	}
	return pages
}

// TestGoldenRenderBlockedSets is the end-to-end pin: a seeded corpus
// rendered under the Chromium / Brave / PERCIVAL-inspector profiles must
// reproduce the committed blocked-element sets exactly, and the INT8 engine
// must produce the identical verdict set as FP32 on the same corpus.
// Regenerate with: go test ./internal/integration -run Golden -update
func TestGoldenRenderBlockedSets(t *testing.T) {
	net, arch := trainedModel(t)
	corpus := webgen.NewCorpus(goldenSeed, goldenSites)
	list, errs := easylist.Parse(corpus.SyntheticEasyList())
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}

	fp32, err := core.New(net, arch, core.Options{Mode: core.Synchronous})
	if err != nil {
		t.Fatal(err)
	}
	got := goldenRender{Seed: goldenSeed, Sites: goldenSites, Pages: renderProfiles(t, corpus, list, fp32)}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want goldenRender
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.Seed != goldenSeed || want.Sites != goldenSites {
		t.Fatalf("golden file pins corpus %d/%d, test uses %d/%d — regenerate with -update",
			want.Seed, want.Sites, goldenSeed, goldenSites)
	}
	if len(want.Pages) != len(got.Pages) {
		t.Fatalf("rendered %d pages, golden has %d", len(got.Pages), len(want.Pages))
	}
	blockedTotal := 0
	for i, gp := range got.Pages {
		wp := want.Pages[i]
		if gp.URL != wp.URL {
			t.Fatalf("page %d: url %s, golden %s", i, gp.URL, wp.URL)
		}
		assertSameSet(t, gp.URL, "images", gp.Images, wp.Images)
		assertSameSet(t, gp.URL, "list-blocked", gp.ListBlocked, wp.ListBlocked)
		assertSameSet(t, gp.URL, "model-blocked", gp.ModelBlocked, wp.ModelBlocked)
		if gp.HiddenContainers != wp.HiddenContainers {
			t.Errorf("%s: hid %d containers, golden %d", gp.URL, gp.HiddenContainers, wp.HiddenContainers)
		}
		blockedTotal += len(gp.ModelBlocked) + len(gp.ListBlocked)
	}
	if blockedTotal == 0 {
		t.Fatal("golden corpus exercises no blocking at all")
	}

	// INT8 parity leg: the quantized engine, gated on the same model, must
	// reproduce the FP32 verdict set exactly on this corpus.
	int8svc, err := core.New(net, arch, core.Options{
		Mode:      core.Synchronous,
		Quantized: true,
		// activation floor only — verdict-set identity is asserted below,
		// which is strictly stronger than any agreement fraction
		ParityMinAgreement: 0.5,
		CalibFrames:        synth.SampleFrames(goldenSeed+1, 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !int8svc.QuantizedActive() {
		t.Fatalf("INT8 engine did not activate (parity %.3f)", int8svc.ParityAgreement())
	}
	int8Pages := renderProfiles(t, webgen.NewCorpus(goldenSeed, goldenSites), list, int8svc)
	for i, gp := range got.Pages {
		assertSameSet(t, gp.URL, "int8-vs-fp32 model-blocked", int8Pages[i].ModelBlocked, gp.ModelBlocked)
	}
}

// assertSameSet compares two sorted string sets with readable diffs.
func assertSameSet(t *testing.T, url, what string, got, want []string) {
	t.Helper()
	gm := map[string]bool{}
	for _, g := range got {
		gm[g] = true
	}
	wm := map[string]bool{}
	for _, w := range want {
		wm[w] = true
	}
	for _, w := range want {
		if !gm[w] {
			t.Errorf("%s: %s missing %s", url, what, w)
		}
	}
	for _, g := range got {
		if !wm[g] {
			t.Errorf("%s: %s has unexpected %s", url, what, g)
		}
	}
}
