// Package integration exercises the full system end-to-end: synthetic web →
// browser rendering pipeline → PERCIVAL classification → blocking, across
// module boundaries, the way the paper deploys it.
package integration

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/dataset"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/webgen"
)

var (
	trainOnce sync.Once
	trainNet  *nn.Sequential
	trainArch squeezenet.Config
	trainErr  error
)

// trainedModel trains a shared 32px model once for the whole package.
func trainedModel(t *testing.T) (*nn.Sequential, squeezenet.Config) {
	t.Helper()
	if testing.Short() {
		t.Skip("integration tests train a model")
	}
	trainOnce.Do(func() {
		trainArch = squeezenet.SmallConfig(32)
		ds := dataset.Generate(300, synth.CrawlStyle(), 650)
		ds.Dedup(2)
		ds.Balance(rand.New(rand.NewSource(301)))
		cfg := dataset.FastTraining(trainArch, 8)
		trainNet, trainErr = dataset.Train(cfg, ds)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainNet, trainArch
}

func service(t *testing.T, mode core.Mode) *core.Percival {
	t.Helper()
	net, arch := trainedModel(t)
	svc, err := core.New(net, arch, core.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestEndToEndBlockingInBrowser is the headline integration: render the
// synthetic web with PERCIVAL attached and verify most ads are blocked while
// most content survives.
func TestEndToEndBlockingInBrowser(t *testing.T) {
	svc := service(t, core.Synchronous)
	corpus := webgen.NewCorpus(55, 12)
	b, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: svc})
	if err != nil {
		t.Fatal(err)
	}
	var c metrics.Confusion
	for _, site := range corpus.TopSites(12) {
		res, err := b.Render(site.PageURLs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ri := range res.Images {
			c.Add(ri.BlockedByInspector, ri.Spec.IsAd)
		}
	}
	if c.Total() < 30 {
		t.Fatalf("too few images rendered: %d", c.Total())
	}
	if rec := c.Recall(); rec < 0.6 {
		t.Fatalf("blocked only %.0f%% of ads in the browser (%s)", rec*100, c.String())
	}
	if prec := c.Precision(); prec < 0.6 {
		t.Fatalf("too much content blocked (%s)", c.String())
	}
}

// TestLayeredBlocking verifies the paper's deployment story: PERCIVAL "can
// be run in addition to an existing ad blocker, as a last-step measure to
// block whatever slips through its filters" (§1). With shields on, the list
// takes listed networks and PERCIVAL sweeps up first-party and unlisted ads.
func TestLayeredBlocking(t *testing.T) {
	svc := service(t, core.Synchronous)
	corpus := webgen.NewCorpus(56, 12)
	list, errs := easylist.Parse(corpus.SyntheticEasyList())
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	b, err := browser.New(browser.Config{Profile: browser.Brave(list), Corpus: corpus, Inspector: svc})
	if err != nil {
		t.Fatal(err)
	}
	var adsTotal, byList, byModel int
	for _, site := range corpus.TopSites(12) {
		for _, u := range site.PageURLs {
			res, err := b.Render(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, ri := range res.Images {
				if !ri.Spec.IsAd {
					continue
				}
				adsTotal++
				switch {
				case ri.BlockedByList:
					byList++
				case ri.BlockedByInspector:
					byModel++
				}
			}
		}
	}
	if byList == 0 || byModel == 0 {
		t.Fatalf("both layers must block: list=%d model=%d", byList, byModel)
	}
	coverage := float64(byList+byModel) / float64(adsTotal)
	if coverage < 0.8 {
		t.Fatalf("layered coverage %.2f too low (list %d + model %d of %d)",
			coverage, byList, byModel, adsTotal)
	}
}

// TestModelRoundTripPreservesVerdicts saves the trained model (compressed),
// reloads it, and checks verdict agreement on fresh creatives.
func TestModelRoundTripPreservesVerdicts(t *testing.T) {
	net, arch := trainedModel(t)
	var buf bytes.Buffer
	if err := nn.SaveCompressed(&buf, net); err != nil {
		t.Fatal(err)
	}
	reloaded, err := squeezenet.Build(arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Load(&buf, reloaded); err != nil {
		t.Fatal(err)
	}
	orig, _ := core.New(net, arch, core.Options{})
	rest, _ := core.New(reloaded, arch, core.Options{})
	g := synth.NewGenerator(77, synth.CrawlStyle())
	agree := 0
	const n = 60
	for i := 0; i < n; i++ {
		img, _ := g.Sample()
		if orig.IsAd(img) == rest.IsAd(img) {
			agree++
		}
	}
	// fp16 quantization may flip borderline frames, nothing more
	if agree < n-3 {
		t.Fatalf("only %d/%d verdicts agree after fp16 round-trip", agree, n)
	}
}

// TestAsyncModeBlocksOnRevisitEndToEnd drives the full async story through
// the browser: first visit renders, drain, revisit blocks.
func TestAsyncModeBlocksOnRevisitEndToEnd(t *testing.T) {
	svc := service(t, core.Asynchronous)
	corpus := webgen.NewCorpus(57, 6)
	url := corpus.Sites[0].PageURLs[0]

	b1, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: svc})
	res1, err := b1.Render(url, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range res1.Images {
		if ri.BlockedByInspector {
			t.Fatal("async first visit must not block")
		}
	}
	svc.Drain()

	b2, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: svc})
	res2, err := b2.Render(url, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked := 0
	for _, ri := range res2.Images {
		if ri.BlockedByInspector {
			blocked++
			if ri.Spec.RefreshMS > 0 {
				continue // rotated creative re-classified: fine either way
			}
		}
	}
	if res2.Stats.Blocked == 0 && blocked == 0 {
		// tolerate a page with zero correctly-classified static ads, but
		// the cache must at least have been consulted
		if svc.Stats().CacheHits == 0 {
			t.Fatal("revisit never hit the memoization cache")
		}
	}
}

// TestClassifierAgreesWithDatasetEvaluate cross-checks the two inference
// paths (service single-frame vs batched dataset evaluation).
func TestClassifierAgreesWithDatasetEvaluate(t *testing.T) {
	net, arch := trainedModel(t)
	svc, _ := core.New(net, arch, core.Options{})
	d := dataset.Generate(88, synth.CrawlStyle(), 40)
	c := dataset.Evaluate(net, arch.InputRes, 0.5, d)
	var c2 metrics.Confusion
	for _, s := range d.Samples {
		c2.Add(svc.IsAd(s.Image), s.Label == dataset.Ad)
	}
	if c != c2 {
		t.Fatalf("paths disagree: %s vs %s", c.String(), c2.String())
	}
}

// TestBlockedSlotsAreVisuallyBlank confirms the §3.3 user-visible effect:
// blocked creatives leave blank space in the rendered surface.
func TestBlockedSlotsAreVisuallyBlank(t *testing.T) {
	svc := service(t, core.Synchronous)
	corpus := webgen.NewCorpus(58, 8)
	withP, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: svc})
	without, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus})
	var differs bool
	for _, site := range corpus.TopSites(8) {
		u := site.PageURLs[0]
		a, err := withP.Render(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		bRes, err := without.Render(u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Blocked > 0 {
			if imaging.ContentHash(a.Surface) != imaging.ContentHash(bRes.Surface) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("blocking never changed a rendered surface")
	}
}
