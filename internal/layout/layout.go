// Package layout implements the middle of the rendering pipeline (§3.2):
// it turns a DOM tree into a layout tree (boxes with screen coordinates) and
// then into a display list — the sequence of draw commands the raster stage
// consumes. The model is a simplified block-flow layout: block elements
// stack vertically, images and iframes occupy their intrinsic size, text
// flows in fixed-height lines.
package layout

import (
	"image/color"

	"percival/internal/dom"
)

// Box is one node of the layout tree.
type Box struct {
	Node       *dom.Node
	X, Y, W, H int
	Children   []*Box
}

// Sizer resolves an image URL to its intrinsic pixel size. The browser
// supplies this from fetched resources; unresolvable sources get a
// placeholder slot.
type Sizer func(src string) (w, h int, ok bool)

// Constants of the simplified layout model.
const (
	DefaultViewportW = 1280
	lineHeight       = 18
	blockPadding     = 8
	charsPerLine     = 80
)

// Layout computes the layout tree for a document at the given viewport
// width. The returned root box's height is the document height.
func Layout(doc *dom.Node, viewportW int, size Sizer) *Box {
	if viewportW <= 0 {
		viewportW = DefaultViewportW
	}
	root := &Box{Node: doc, X: 0, Y: 0, W: viewportW}
	y := layoutChildren(doc, root, 0, 0, viewportW, size)
	root.H = y
	return root
}

// layoutChildren stacks n's children vertically starting at (x, y) within
// width w; returns the y after the last child.
func layoutChildren(n *dom.Node, parent *Box, x, y, w int, size Sizer) int {
	for _, child := range n.Children {
		switch {
		case child.Attrs["data-overlay"] == "prev":
			// Absolute-positioned overlay covering the previous sibling's
			// box — the CSS masking construct of the §2.2/§7 evasion attacks.
			// It consumes no flow space and paints after (thus over) the
			// element it covers.
			if len(parent.Children) == 0 {
				continue
			}
			prev := parent.Children[len(parent.Children)-1]
			box := &Box{Node: child, X: prev.X, Y: prev.Y, W: prev.W, H: prev.H}
			parent.Children = append(parent.Children, box)
		case child.Tag == "" && child.Text != "":
			lines := (len(child.Text) + charsPerLine - 1) / charsPerLine
			box := &Box{Node: child, X: x, Y: y, W: w, H: lines * lineHeight}
			parent.Children = append(parent.Children, box)
			y += box.H
		case child.Tag == "img" || child.Tag == "iframe":
			iw, ih := 300, 250 // placeholder slot until the resource resolves
			if size != nil {
				if rw, rh, ok := size(child.Attrs["src"]); ok {
					iw, ih = rw, rh
				}
			}
			if iw > w && w > 0 {
				// downscale to fit the containing block, preserving ratio
				ih = ih * w / iw
				iw = w
			}
			box := &Box{Node: child, X: x, Y: y, W: iw, H: ih}
			parent.Children = append(parent.Children, box)
			y += ih
		case child.Tag == "script" || child.Tag == "style" || child.Tag == "meta" || child.Tag == "link":
			// non-visual
		case child.Tag != "":
			box := &Box{Node: child, X: x, Y: y, W: w}
			parent.Children = append(parent.Children, box)
			innerY := layoutChildren(child, box, x+blockPadding, y+blockPadding, w-2*blockPadding, size)
			box.H = innerY - y + blockPadding
			y = innerY + blockPadding
		}
	}
	return y
}

// ItemKind discriminates display-list commands.
type ItemKind int

// Display item kinds.
const (
	ItemRect ItemKind = iota
	ItemImage
	ItemText
	// ItemPattern is a sparse perturbation pattern painted over its box —
	// the adversarial overlay mask from §2.2/§7 attack pages. It disturbs a
	// screenshot of the region while the underlying content stays legible.
	ItemPattern
)

// DisplayItem is one draw command. For ItemImage, Src identifies the
// resource whose decoded pixels are drawn; the raster stage performs the
// decode (deferred image decoding, §3.3).
type DisplayItem struct {
	Kind       ItemKind
	X, Y, W, H int
	Color      color.RGBA
	Src        string
	Text       string
	// Element is the DOM node the item paints (for provenance/debugging).
	Element *dom.Node
}

// BuildDisplayList walks the layout tree in paint order and emits draw
// commands: container backgrounds, images, then text.
func BuildDisplayList(root *Box) []DisplayItem {
	var items []DisplayItem
	var walk func(b *Box)
	walk = func(b *Box) {
		n := b.Node
		if n != nil {
			switch {
			case n.Attrs["data-overlay"] == "prev":
				items = append(items, DisplayItem{
					Kind: ItemPattern, X: b.X, Y: b.Y, W: b.W, H: b.H,
					Color: color.RGBA{0, 0, 0, 255}, Element: n,
				})
			case n.Tag == "img" || n.Tag == "iframe":
				items = append(items, DisplayItem{
					Kind: ItemImage, X: b.X, Y: b.Y, W: b.W, H: b.H,
					Src: n.Attrs["src"], Element: n,
				})
			case n.Tag == "" && n.Text != "":
				items = append(items, DisplayItem{
					Kind: ItemText, X: b.X, Y: b.Y, W: b.W, H: b.H,
					Text: n.Text, Color: color.RGBA{40, 40, 40, 255}, Element: n,
				})
			case n.Tag == "div":
				items = append(items, DisplayItem{
					Kind: ItemRect, X: b.X, Y: b.Y, W: b.W, H: b.H,
					Color: color.RGBA{250, 250, 250, 255}, Element: n,
				})
			}
		}
		for _, c := range b.Children {
			walk(c)
		}
	}
	walk(root)
	return items
}

// FindBox returns the layout box for a DOM node (depth-first), or nil.
func FindBox(root *Box, n *dom.Node) *Box {
	if root.Node == n {
		return root
	}
	for _, c := range root.Children {
		if b := FindBox(c, n); b != nil {
			return b
		}
	}
	return nil
}
