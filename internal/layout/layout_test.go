package layout

import (
	"testing"

	"percival/internal/dom"
)

func fixedSizer(w, h int) Sizer {
	return func(string) (int, int, bool) { return w, h, true }
}

func TestLayoutStacksBlocksVertically(t *testing.T) {
	doc := dom.Parse(`<div><p>one</p></div><div><p>two</p></div>`)
	root := Layout(doc, 1000, nil)
	if len(root.Children) != 2 {
		t.Fatalf("children %d", len(root.Children))
	}
	a, b := root.Children[0], root.Children[1]
	if b.Y < a.Y+a.H {
		t.Fatalf("second div overlaps first: a=%+v b=%+v", a, b)
	}
	if root.H < b.Y+b.H {
		t.Fatal("document height too small")
	}
}

func TestLayoutImageIntrinsicSize(t *testing.T) {
	doc := dom.Parse(`<img src="a.png">`)
	root := Layout(doc, 1000, fixedSizer(300, 250))
	img := root.Children[0]
	if img.W != 300 || img.H != 250 {
		t.Fatalf("img box %dx%d", img.W, img.H)
	}
}

func TestLayoutImagePlaceholderWithoutSizer(t *testing.T) {
	doc := dom.Parse(`<img src="a.png">`)
	root := Layout(doc, 1000, nil)
	img := root.Children[0]
	if img.W != 300 || img.H != 250 {
		t.Fatalf("placeholder %dx%d", img.W, img.H)
	}
}

func TestLayoutOversizedImageScalesToFit(t *testing.T) {
	doc := dom.Parse(`<img src="wide.png">`)
	root := Layout(doc, 400, fixedSizer(800, 200))
	img := root.Children[0]
	if img.W != 400 || img.H != 100 {
		t.Fatalf("scaled box %dx%d, want 400x100", img.W, img.H)
	}
}

func TestLayoutSkipsNonVisual(t *testing.T) {
	doc := dom.Parse(`<script>var x=1;</script><style>.a{}</style><div>x</div>`)
	root := Layout(doc, 1000, nil)
	if len(root.Children) != 1 || root.Children[0].Node.Tag != "div" {
		t.Fatalf("non-visual elements laid out: %d children", len(root.Children))
	}
}

func TestLayoutViewportDefault(t *testing.T) {
	doc := dom.Parse(`<div>x</div>`)
	root := Layout(doc, 0, nil)
	if root.W != DefaultViewportW {
		t.Fatalf("viewport %d", root.W)
	}
}

func TestDisplayListContainsImagesAndText(t *testing.T) {
	doc := dom.Parse(`<div class="c"><p>hello world</p><img src="x.png"></div>`)
	root := Layout(doc, 800, fixedSizer(100, 50))
	items := BuildDisplayList(root)
	var rects, images, texts int
	for _, it := range items {
		switch it.Kind {
		case ItemRect:
			rects++
		case ItemImage:
			images++
			if it.Src != "x.png" {
				t.Fatalf("image src %q", it.Src)
			}
		case ItemText:
			texts++
		}
	}
	if rects != 1 || images != 1 || texts != 1 {
		t.Fatalf("items rect=%d img=%d text=%d", rects, images, texts)
	}
}

func TestDisplayListPaintOrderBackgroundFirst(t *testing.T) {
	doc := dom.Parse(`<div><img src="x.png"></div>`)
	root := Layout(doc, 800, fixedSizer(10, 10))
	items := BuildDisplayList(root)
	if len(items) != 2 || items[0].Kind != ItemRect || items[1].Kind != ItemImage {
		t.Fatalf("paint order wrong: %+v", items)
	}
}

func TestFindBox(t *testing.T) {
	doc := dom.Parse(`<div><img src="x.png"></div>`)
	root := Layout(doc, 800, fixedSizer(10, 10))
	img := doc.ByTag("img")[0]
	b := FindBox(root, img)
	if b == nil || b.Node != img {
		t.Fatal("FindBox failed")
	}
	if FindBox(root, &dom.Node{}) != nil {
		t.Fatal("FindBox should miss unknown node")
	}
}

func TestNestedPaddingAccumulates(t *testing.T) {
	doc := dom.Parse(`<div><div><p>deep</p></div></div>`)
	root := Layout(doc, 500, nil)
	outer := root.Children[0]
	inner := outer.Children[0]
	if inner.X <= outer.X {
		t.Fatal("inner block should be inset")
	}
	p := inner.Children[0]
	if p.X <= inner.X {
		t.Fatal("paragraph should be inset further")
	}
}
