package engine

// The pluggable transport seam under RemoteBackend. A Transport carries one
// chunk of frames to a peer and brings the scores back; RemoteBackend owns
// everything above it — retry ladder, congestion window, RTO-capped attempt
// timeouts, fail-open — so the wire can change without touching the
// dispatch semantics. Two transports exist:
//
//   - httpTransport: one POST /classify/batch per chunk, wire v1. The
//     universal fallback every peer speaks.
//   - sockTransport (sockwire.go): one hot TCP connection per peer, wire v2
//     framing multiplexed by request ID, with the hash-first dedup tier.
//
// The interface is sealed (its methods take the package-private wireChunk),
// so pluggability is an engine-internal seam, not an extension point —
// the negotiated wire format must stay in lockstep with remotehttp.go.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"percival/internal/imaging"
)

// wireChunk is one dispatch chunk in flight to a peer: the frames plus
// lazily-computed wire representations, each computed at most once however
// many transport attempts and hedge arms share the chunk. Hedged dispatch
// hands the same *wireChunk to two peers concurrently, so the lazy fields
// are mutex-guarded.
type wireChunk struct {
	frames []*imaging.Bitmap

	mu     sync.Mutex
	body   []byte     // v1 HTTP body (header + dims + pixels), built on demand
	keys   [][32]byte // content keys, built on demand for the dedup probe
	phash  []uint64   // perceptual hashes, alongside keys
	hashed bool
}

// reset re-arms a pooled chunk for a new frame set, keeping the amortized
// buffer capacity.
func (c *wireChunk) reset(frames []*imaging.Bitmap) {
	c.frames = frames
	c.body = c.body[:0]
	c.keys = c.keys[:0]
	c.phash = c.phash[:0]
	c.hashed = false
}

// pixelBody returns the chunk's v1 HTTP encoding, building it on first use.
func (c *wireChunk) pixelBody() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.body) == 0 {
		c.body = encodeFrames(c.body[:0], c.frames)
	}
	return c.body
}

// contentKeys returns the chunk's content keys and perceptual hashes,
// computing them on first use (zero-alloc per frame once the chunk's slices
// are warm: sha256.Sum256 + the pooled 8×8 downscale).
func (c *wireChunk) contentKeys() ([][32]byte, []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.hashed {
		for _, f := range c.frames {
			c.keys = append(c.keys, imaging.ContentKey(f))
			c.phash = append(c.phash, imaging.PerceptualHashPooled(f))
		}
		c.hashed = true
	}
	return c.keys, c.phash
}

// chunkPool pools *wireChunk across dispatches (RemoteBackend and Fleet
// each own one; replicas share their parent's).
type chunkPool struct{ p sync.Pool }

func (cp *chunkPool) get(frames []*imaging.Bitmap) *wireChunk {
	c, _ := cp.p.Get().(*wireChunk)
	if c == nil {
		c = &wireChunk{}
	}
	c.reset(frames)
	return c
}

func (cp *chunkPool) put(c *wireChunk) {
	c.frames = nil
	cp.p.Put(c)
}

// TransportStats is one transport's byte and dedup accounting — the
// /healthz and /metrics surface for "what is this peer link costing".
type TransportStats struct {
	// Kind names the wire ("http", "socket").
	Kind string `json:"kind"`
	// Chunks counts round trips attempted (per transport attempt, so a
	// retried chunk counts each attempt).
	Chunks int64 `json:"chunks"`
	// BytesOut/BytesIn count wire payload bytes (message framing included,
	// transport-protocol overhead like HTTP headers excluded).
	BytesOut int64 `json:"bytes_out"`
	BytesIn  int64 `json:"bytes_in"`
	// FramesPixels counts frames whose pixels crossed the wire;
	// FramesDedup counts frames answered by the hash probe alone. Their
	// ratio is the dedup tier's hit rate.
	FramesPixels int64 `json:"frames_pixels"`
	FramesDedup  int64 `json:"frames_dedup"`
	// Dials counts socket (re)connections; 0 for HTTP.
	Dials int64 `json:"dials"`
}

// transportCounters is the live atomic half of TransportStats.
type transportCounters struct {
	chunks       atomic.Int64
	bytesOut     atomic.Int64
	bytesIn      atomic.Int64
	framesPixels atomic.Int64
	framesDedup  atomic.Int64
	dials        atomic.Int64
}

func (t *transportCounters) snapshot(kind string) TransportStats {
	return TransportStats{
		Kind:         kind,
		Chunks:       t.chunks.Load(),
		BytesOut:     t.bytesOut.Load(),
		BytesIn:      t.bytesIn.Load(),
		FramesPixels: t.framesPixels.Load(),
		FramesDedup:  t.framesDedup.Load(),
		Dials:        t.dials.Load(),
	}
}

// Transport is one way of carrying chunks to a peer. Implementations are
// safe for concurrent use and shared across a peer's replicas (one
// connection picture per peer, like the congestion window).
type Transport interface {
	// Kind names the wire for health surfaces ("http", "socket").
	Kind() string
	// Stats snapshots the transport's byte/dedup counters.
	Stats() TransportStats
	// Close releases the transport's connections. It must be idempotent
	// and must tolerate sibling replicas still holding the transport: a
	// closed transport re-establishes what it needs on the next roundTrip.
	Close()

	// roundTrip runs one attempt of one chunk: scores land in
	// out[:len(chunk.frames)]. retryable reports whether a further attempt
	// could succeed (transport errors yes, peer rejections no). The context
	// carries the attempt's RTO-capped deadline.
	roundTrip(ctx context.Context, chunk *wireChunk, out []float64) (retryable bool, err error)
	// warm pre-establishes connections so the first dispatch pays no setup.
	warm(ctx context.Context) error
	// compatible reports whether a fresh handshake document still matches
	// what this transport needs from the peer (redial re-admission check).
	compatible(info ModelzInfo) bool
}

// httpTransport is wire v1: one POST per chunk over a pooled HTTP client.
type httpTransport struct {
	peer     string // normalized base URL, for error text
	batchURL string
	client   *http.Client
	stats    transportCounters
}

func newHTTPTransport(peer, batchURL string, client *http.Client) *httpTransport {
	return &httpTransport{peer: peer, batchURL: batchURL, client: client}
}

func (t *httpTransport) Kind() string          { return "http" }
func (t *httpTransport) Stats() TransportStats { return t.stats.snapshot("http") }

// Close releases idle connections. The client is shared across replicas and
// stays usable; CloseIdleConnections is naturally idempotent.
func (t *httpTransport) Close() { t.client.CloseIdleConnections() }

// warm is a no-op: the /modelz handshake RemoteBackend.Warm performs over
// the same client already populates the connection pool.
func (t *httpTransport) warm(ctx context.Context) error { return nil }

// compatible accepts any peer inside the proxy's version range: HTTP v1 is
// the floor every peer speaks.
func (t *httpTransport) compatible(info ModelzInfo) bool {
	return wireCompatible(info.WireVersion)
}

func (t *httpTransport) roundTrip(ctx context.Context, chunk *wireChunk, out []float64) (retryable bool, err error) {
	body := chunk.pixelBody()
	t.stats.chunks.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.batchURL, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		return true, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode >= 500, fmt.Errorf("engine: peer %s: %s", t.peer, resp.Status)
	}
	if err := decodeScoresInto(resp.Body, out); err != nil {
		return true, err
	}
	t.stats.bytesOut.Add(int64(len(body)))
	t.stats.bytesIn.Add(int64(wireHeaderLen + 8*len(out)))
	t.stats.framesPixels.Add(int64(len(chunk.frames)))
	return false, nil
}

// wireCompatible reports whether a peer's advertised wire version falls in
// this proxy's [wireVersion, wireVersionSock] acceptance range.
func wireCompatible(v int) bool {
	return v >= wireVersion && v <= wireVersionSock
}
