package engine

// CubicWindow is a per-remote-replica congestion window: it bounds how many
// chunks are in flight against one peer at a time, and adapts that bound to
// the peer's observed round-trip behaviour the way TCP CUBIC adapts cwnd —
// slow-start to probe a fresh peer, a cubic growth curve in congestion
// avoidance (fast recovery toward the last known-good window, cautious
// plateau around it, then accelerating probe beyond), and multiplicative
// backoff on loss signals (chunk timeout, injected failure, hedge fire,
// eviction).
//
// Before the window existed, the only per-peer in-flight bound was the
// shard topology itself: one serve shard per peer keeps roughly one chunk
// in flight per lane, but failover, hedging and multi-worker shards all
// stack extra chunks onto whichever peer looks healthy, and a peer that is
// merely slow keeps absorbing new chunks while its queue (and the tail)
// grows without bound. The window closes that loop: RTT inflation and
// timeouts shrink it, so a congested peer sees its offered load cut
// instead of compounded.
//
// The RTT estimator is the fleet's latency EWMA (metrics.EWMA: mean +
// smoothed mean absolute deviation) shared with the hedging trigger, and
// derives the retransmission-timeout the transport uses as its adaptive
// per-attempt budget: RTO = mean + 4·dev (the RFC 6298 shape with the
// EWMA's deviation standing in for RTTVAR), floored so scheduler noise on
// a fast fleet never produces a hair-trigger timeout, and never exceeding
// the configured per-attempt ceiling.
//
// The shape follows ndn-dpdk's ndn/segmented fetch logic (CUBIC window +
// RTT estimator driving an in-flight fetch pipeline); constants are the
// RFC 8312 defaults (C=0.4, beta=0.7).

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/metrics"
)

// CUBIC and RTO defaults; see WindowOptions.
const (
	windowDefaultInitial = 4
	windowDefaultMax     = 64
	windowDefaultBeta    = 0.7
	windowDefaultC       = 0.4
	windowDefaultRTOMin  = 200 * time.Millisecond
	// windowRTOSamples is how many RTT samples must be observed before the
	// adaptive RTO is trusted over the configured per-attempt timeout.
	windowRTOSamples = 8
)

// WindowOptions tunes a CubicWindow. The zero value gets defaults from
// NewCubicWindow.
type WindowOptions struct {
	// Initial is the starting (and post-Reset) window (default 4).
	Initial float64
	// Max caps the window (default 64). The floor is always 1: a peer that
	// can take any traffic at all can take one chunk.
	Max float64
	// Beta is the multiplicative-decrease factor applied on loss
	// (default 0.7, the RFC 8312 value).
	Beta float64
	// C is the cubic growth-scaling constant (default 0.4).
	C float64
	// RTOMin floors the adaptive retransmission timeout (default 200ms) so
	// a fast fleet's scheduler noise never produces hair-trigger timeouts.
	RTOMin time.Duration
}

func (o WindowOptions) withDefaults() WindowOptions {
	if o.Initial <= 0 {
		o.Initial = windowDefaultInitial
	}
	if o.Max <= 0 {
		o.Max = windowDefaultMax
	}
	if o.Initial > o.Max {
		o.Initial = o.Max
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = windowDefaultBeta
	}
	if o.C <= 0 {
		o.C = windowDefaultC
	}
	if o.RTOMin <= 0 {
		o.RTOMin = windowDefaultRTOMin
	}
	return o
}

// CubicWindow is the adaptive in-flight bound for one peer. Safe for
// concurrent use; one window is shared by every replica dialing the same
// peer (Replicate copies the pointer), so all lanes see one congestion
// picture.
type CubicWindow struct {
	opts WindowOptions
	rtt  *metrics.EWMA // round-trip latency, milliseconds; shared with hedging

	mu       sync.Mutex
	cwnd     float64
	wmax     float64 // window at the last loss (the cubic plateau target)
	ssthresh float64 // slow-start/congestion-avoidance boundary
	k        float64 // cubic inflection offset, seconds
	epoch    time.Time
	lastLoss time.Time
	inflight int
	wake     chan struct{} // closed+replaced on every release (broadcast)

	losses  atomic.Int64
	blocked atomic.Int64 // Acquire calls that had to wait

	now func() time.Time // test clock hook
}

// NewCubicWindow builds a window in slow start at the initial size.
func NewCubicWindow(opts WindowOptions) *CubicWindow {
	opts = opts.withDefaults()
	w := &CubicWindow{
		opts: opts,
		rtt:  metrics.NewEWMA(0.2),
		wake: make(chan struct{}),
		now:  time.Now,
	}
	w.resetLocked()
	return w
}

// resetLocked restores the fresh-peer state: initial window, slow start
// straight to Max, no loss history. Callers hold mu (or own the window
// exclusively, as in NewCubicWindow).
func (w *CubicWindow) resetLocked() {
	w.cwnd = w.opts.Initial
	w.wmax = w.opts.Initial
	w.ssthresh = w.opts.Max
	w.k = 0
	w.epoch = time.Time{}
	w.lastLoss = time.Time{}
}

// RTT returns the shared round-trip estimator (milliseconds) — the same
// EWMA the fleet's hedging trigger reads.
func (w *CubicWindow) RTT() *metrics.EWMA { return w.rtt }

// limitLocked is the integer in-flight bound: the window floor is 1 chunk.
func (w *CubicWindow) limitLocked() int {
	n := int(w.cwnd)
	if n < 1 {
		n = 1
	}
	return n
}

// Acquire blocks until an in-flight slot frees up (or ctx ends, reporting
// false). Every successful Acquire must be paired with one Release.
func (w *CubicWindow) Acquire(ctx context.Context) bool {
	waited := false
	for {
		w.mu.Lock()
		if w.inflight < w.limitLocked() {
			w.inflight++
			w.mu.Unlock()
			return true
		}
		wake := w.wake
		w.mu.Unlock()
		if !waited {
			waited = true
			w.blocked.Add(1)
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return false
		}
	}
}

// Release frees one in-flight slot and wakes every waiter (the window is
// small; a broadcast retry is cheaper than tracked handoff).
func (w *CubicWindow) Release() {
	w.mu.Lock()
	if w.inflight > 0 {
		w.inflight--
	}
	close(w.wake)
	w.wake = make(chan struct{})
	w.mu.Unlock()
}

// OnSuccess feeds one successful round trip: the RTT sample goes to the
// shared estimator, and the window grows — by one chunk per ack in slow
// start, along the cubic curve in congestion avoidance.
func (w *CubicWindow) OnSuccess(rtt time.Duration) {
	w.rtt.Observe(float64(rtt.Nanoseconds()) / 1e6)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cwnd < w.ssthresh {
		w.cwnd++
	} else {
		if w.epoch.IsZero() {
			// entering congestion avoidance without a loss epoch (slow start
			// ran straight into ssthresh): the curve starts here
			w.epoch = w.now()
			w.wmax = w.cwnd
			w.k = 0
		}
		// W_cubic(t) = C·(t−K)³ + Wmax: concave recovery toward the last
		// known-good window, plateau around it, convex probe past it.
		t := w.now().Sub(w.epoch).Seconds()
		target := w.opts.C*math.Pow(t-w.k, 3) + w.wmax
		if target > w.cwnd {
			w.cwnd += (target - w.cwnd) / w.cwnd
		} else {
			// on or above the curve: probe gently so the window still moves
			w.cwnd += 0.01 / w.cwnd
		}
	}
	if w.cwnd > w.opts.Max {
		w.cwnd = w.opts.Max
	}
	// growth can unblock waiters even without a release
	close(w.wake)
	w.wake = make(chan struct{})
}

// OnLoss applies the multiplicative decrease for one congestion signal — a
// chunk timeout, a transport failure, or a hedge firing against this peer.
// Concurrent chunks failing together are one congestion event, not many:
// decreases within one smoothed RTT of the last are coalesced, so a burst
// of losses cannot collapse the window straight to the floor.
func (w *CubicWindow) OnLoss() {
	now := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.lastLoss.IsZero() && now.Sub(w.lastLoss) < w.guardLocked() {
		return
	}
	w.lastLoss = now
	w.losses.Add(1)
	w.backoffLocked(now)
}

// backoffLocked is the CUBIC decrease: remember the pre-loss window as the
// plateau target, cut cwnd by beta, recompute the inflection offset K.
func (w *CubicWindow) backoffLocked(now time.Time) {
	if w.cwnd < w.wmax {
		// fast convergence (RFC 8312 §4.6): losing again below the previous
		// plateau means the bandwidth shrank — release the slot sooner
		w.wmax = w.cwnd * (2 - w.opts.Beta) / 2
	} else {
		w.wmax = w.cwnd
	}
	w.cwnd *= w.opts.Beta
	if w.cwnd < 1 {
		w.cwnd = 1
	}
	w.ssthresh = w.cwnd
	w.k = math.Cbrt(w.wmax * (1 - w.opts.Beta) / w.opts.C)
	w.epoch = now
}

// guardLocked is the loss-coalescing interval: one smoothed RTT, or the RTO
// floor before the estimator warms up.
func (w *CubicWindow) guardLocked() time.Duration {
	if ms := w.rtt.Value(); ms > 0 {
		return time.Duration(ms * float64(time.Millisecond))
	}
	return w.opts.RTOMin
}

// Collapse drops the window to the floor — the eviction signal: the peer
// stopped answering entirely, so the next probe after re-admission should
// start from one chunk... unless Reset is called (re-admission does), which
// restores the fresh-peer state instead.
func (w *CubicWindow) Collapse() {
	now := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.losses.Add(1)
	w.lastLoss = now
	w.wmax = w.cwnd
	w.cwnd = 1
	w.ssthresh = 1
	w.k = math.Cbrt(w.wmax * (1 - w.opts.Beta) / w.opts.C)
	w.epoch = now
}

// Reset restores the fresh-peer state — window, loss history, and the RTT
// estimator (a peer re-admitted after eviction must not inherit its
// pre-eviction latency or congestion picture).
func (w *CubicWindow) Reset() {
	w.rtt.Reset()
	w.mu.Lock()
	w.resetLocked()
	close(w.wake)
	w.wake = make(chan struct{})
	w.mu.Unlock()
}

// SeedRTT primes the RTT estimator with one measured round trip — the
// /modelz handshake RTT at dial and re-admission time. Without the seed a
// (re)dialed peer enters cold: hedging and the weighted router both
// misjudge it until dispatch samples re-converge, and the static failover
// scan meanwhile routes real traffic by a fiction. One sample is
// deliberate: the hedge trigger arms at N() >= 3 and the adaptive RTO at
// windowRTOSamples, so a seed can bias neither — it only gives the
// weighted router's score a live prior instead of the optimistic floor.
func (w *CubicWindow) SeedRTT(d time.Duration) {
	if d <= 0 {
		return
	}
	w.rtt.Observe(float64(d.Nanoseconds()) / 1e6)
}

// RTO derives the adaptive per-attempt timeout from the estimator:
// mean + 4·dev milliseconds (RFC 6298 shape), floored at RTOMin. Zero
// means "no opinion yet" — before windowRTOSamples observations the
// caller's configured timeout stands.
func (w *CubicWindow) RTO() time.Duration {
	if w.rtt.N() < windowRTOSamples {
		return 0
	}
	ms := w.rtt.Value() + 4*w.rtt.Deviation()
	d := time.Duration(ms * float64(time.Millisecond))
	if d < w.opts.RTOMin {
		d = w.opts.RTOMin
	}
	return d
}

// WindowStat is one window's live state — the /metrics and admission-
// controller surface.
type WindowStat struct {
	Peer     string  `json:"peer"`
	Cwnd     float64 `json:"cwnd"`
	InFlight int     `json:"in_flight"`
	Losses   int64   `json:"losses"`
	Blocked  int64   `json:"blocked"`
	RTOMS    float64 `json:"rto_ms"`
}

// Stat snapshots the window (Peer is filled by the owner).
func (w *CubicWindow) Stat() WindowStat {
	w.mu.Lock()
	cwnd, inflight := w.cwnd, w.inflight
	w.mu.Unlock()
	return WindowStat{
		Cwnd:     cwnd,
		InFlight: inflight,
		Losses:   w.losses.Load(),
		Blocked:  w.blocked.Load(),
		RTOMS:    float64(w.RTO().Nanoseconds()) / 1e6,
	}
}

// WindowReporter is implemented by backends that gate per-peer in-flight
// depth with congestion windows; the serving layer's admission controller
// reads remote congestion through it without a concrete-type dependency.
type WindowReporter interface {
	WindowStats() []WindowStat
}
