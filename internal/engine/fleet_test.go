package engine

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"percival/internal/faultinject"
	"percival/internal/synth"
)

// newFaultyPeer stands up a peer wire surface behind a fault injector, so
// tests can flip it between healthy, slow, erroring and blackholed while a
// fleet is dispatching to it.
func newFaultyPeer(t testing.TB, def Backend) (*httptest.Server, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.NewInjector(1)
	mux := http.NewServeMux()
	mux.Handle("POST /classify/batch", BatchHandler(nil, def))
	mux.Handle("GET /modelz", ModelzHandler(nil, def, 0.5))
	ts := httptest.NewServer(faultinject.Middleware(inj, mux))
	t.Cleanup(ts.Close)
	return ts, inj
}

// dialFleet dials every peer URL with short chaos-friendly budgets and
// wraps them in a supervised fleet.
func dialFleet(t testing.TB, opts FleetOptions, urls ...string) *Fleet {
	t.Helper()
	remotes := make([]*RemoteBackend, len(urls))
	for i, u := range urls {
		rb, err := NewRemote(u, RemoteOptions{
			Timeout:      300 * time.Millisecond,
			Retries:      0,
			RetryBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		remotes[i] = rb
	}
	f, err := NewFleet(remotes, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// waitPeerState polls the fleet health snapshot until the named peer
// reaches want (or the deadline passes).
func waitPeerState(t testing.TB, f *Fleet, peer string, want PeerState, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		for _, ph := range f.PeerHealth() {
			if ph.Peer == peer && ph.StateCode == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %s never reached state %v; health: %+v", peer, want, f.PeerHealth())
}

// TestChaosFlappingPeer is the supervisor's end-to-end contract under a
// flapping peer (up -> blackhole -> up), with traffic flowing throughout:
//   - eviction fires after EvictAfter consecutive chunk failures,
//   - traffic re-routes to the healthy peer with no score-0 verdicts,
//   - the redialer re-admits the peer after it recovers,
//
// all meaningful under -race (`make race` covers this package).
func TestChaosFlappingPeer(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	tsA, _ := newFaultyPeer(t, a)
	tsB, injB := newFaultyPeer(t, b)

	f := dialFleet(t, FleetOptions{
		EvictAfter:    2,
		RedialBase:    10 * time.Millisecond,
		RedialMax:     50 * time.Millisecond,
		HedgeQuantile: 0.99,
	}, tsA.URL, tsB.URL)
	peerB := f.Peers()[1].Peer()

	frames := synth.SampleFrames(7, 4)
	want := make([]float64, len(frames))
	a.InferBatchInto(frames, want)

	check := func(phase string) {
		out := make([]float64, len(frames))
		f.InferBatchInto(frames, out)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("%s: frame %d scored %v, want %v (score-0 fail-open leaked?)",
					phase, i, out[i], want[i])
			}
		}
	}

	// phase 1: both peers up — every chunk verdict matches local dispatch
	for i := 0; i < 4; i++ {
		check("both up")
	}

	// phase 2: peer B blackholes. Concurrent traffic must keep resolving
	// with real verdicts (the supervisor fails over to A), and B must trip
	// to evicted.
	injB.Set(faultinject.Fault{Blackhole: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(frames))
			for i := 0; i < 6; i++ {
				f.InferBatchInto(frames, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("blackhole phase: frame %d scored %v, want %v", j, out[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := f.Stats(); st.Errors != 0 {
		t.Fatalf("fail-open errors during failover: %+v", st)
	}
	waitPeerState(t, f, peerB, PeerEvicted, 3*time.Second)

	// phase 3: peer B recovers. The redial state machine must re-admit it
	// off a fresh handshake, without anyone dispatching to it.
	injB.Set(faultinject.Fault{})
	waitPeerState(t, f, peerB, PeerHealthy, 3*time.Second)
	var ph PeerHealthInfo
	for _, p := range f.PeerHealth() {
		if p.Peer == peerB {
			ph = p
		}
	}
	if ph.Evictions == 0 || ph.Redials == 0 {
		t.Fatalf("supervisor counters did not move: %+v", ph)
	}

	// phase 4: the re-admitted peer serves traffic again
	for i := 0; i < 4; i++ {
		check("re-admitted")
	}
	if f.Peers()[1].Stats().Frames == 0 {
		t.Fatal("re-admitted peer never served a frame")
	}
}

// TestChaosFleetFallsBackToLocal: with every peer evicted, chunks must be
// scored by the local fallback backend — identical verdicts, zero
// fail-open — and only fail open when there is no fallback either.
func TestChaosFleetFallsBackToLocal(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()
	rep := NewFP32(net, res)
	defer rep.Close()
	ts, inj := newFaultyPeer(t, rep)

	f := dialFleet(t, FleetOptions{
		EvictAfter: 1,
		RedialBase: time.Hour, // keep the peer out for the whole test
		Fallback:   local,
	}, ts.URL)

	frames := synth.SampleFrames(7, 3)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)

	inj.Set(faultinject.Fault{Blackhole: true})
	out := make([]float64, len(frames))
	for i := 0; i < 3; i++ {
		f.InferBatchInto(frames, out)
		for j := range out {
			if out[j] != want[j] {
				t.Fatalf("fallback pass %d: frame %d scored %v, want %v", i, j, out[j], want[j])
			}
		}
	}
	if f.Fallbacks() == 0 {
		t.Fatal("local fallback never engaged")
	}
	if st := f.Stats(); st.Errors != 0 {
		t.Fatalf("fail-open with a live fallback: %+v", st)
	}

	// without a fallback the same situation fails open, like RemotePool
	// (heal for the dial-time handshake, then kill the peer again)
	inj.Set(faultinject.Fault{})
	f2 := dialFleet(t, FleetOptions{EvictAfter: 1, RedialBase: time.Hour}, ts.URL)
	inj.Set(faultinject.Fault{Blackhole: true})
	out[0], out[1], out[2] = 9, 9, 9
	f2.InferBatchInto(frames, out)
	if out[0] != 0 || f2.Stats().Errors == 0 {
		t.Fatalf("no-fallback fleet must fail open: out=%v stats=%+v", out, f2.Stats())
	}
}

// TestChaosHedgeRescuesSlowPeer: a peer past its tail trigger must be
// hedged to the second replica, the hedge must win with a correct verdict,
// and the canceled primary must neither lose the verdict nor leak
// goroutines.
func TestChaosHedgeRescuesSlowPeer(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	tsA, injA := newFaultyPeer(t, a)
	tsB, _ := newFaultyPeer(t, b)

	f := dialFleet(t, FleetOptions{
		EvictAfter:    50, // hedging, not eviction, is under test
		HedgeQuantile: 0.99,
		HedgeMin:      time.Millisecond,
	}, tsA.URL, tsB.URL)

	frames := synth.SampleFrames(7, 2)
	want := make([]float64, len(frames))
	a.InferBatchInto(frames, want)
	out := make([]float64, len(frames))

	// arm the latency EWMA for peer A with healthy samples; the fleet
	// round-robins, so pin dispatch through a replica preferring A
	ra := f.Replicate()
	if rap, ok := ra.(*fleetReplica); !ok || rap.pref != 0 {
		// Replicate pins round-robin from 0; first replica prefers peer 0
		t.Fatalf("first replica not pinned to peer 0")
	}
	for i := 0; i < 6; i++ {
		ra.InferBatchInto(frames, out)
	}

	before := runtime.NumGoroutine()
	// now make A slow — far past any EWMA-derived trigger
	injA.Set(faultinject.Fault{Latency: 250 * time.Millisecond})
	for i := 0; i < 4; i++ {
		out[0], out[1] = 9, 9
		ra.InferBatchInto(frames, out)
		for j := range out {
			if out[j] != want[j] {
				t.Fatalf("hedged chunk %d: frame %d scored %v, want %v", i, j, out[j], want[j])
			}
		}
	}
	if f.Hedges() == 0 || f.HedgeWins() == 0 {
		t.Fatalf("hedge never fired/won: hedges=%d wins=%d", f.Hedges(), f.HedgeWins())
	}
	var winsB int64
	for _, ph := range f.PeerHealth() {
		if ph.Peer == f.Peers()[1].Peer() {
			winsB = ph.HedgeWins
		}
	}
	if winsB == 0 {
		t.Fatal("per-peer hedge-win counter did not move")
	}

	// hedge cancellation must not leak: every losing arm is canceled and
	// drained before the chunk returns, so the goroutine count settles back
	injA.Set(faultinject.Fault{})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across hedged chunks: %d before, %d after",
		before, runtime.NumGoroutine())
}

// TestFleetLiveMembership: peers join and leave a dispatching fleet with
// zero fail-open — AddPeer routes immediately, DrainRemovePeer quiesces
// in-flight chunks then removes, dedup and last-peer guards hold, and the
// removed peer's supervision (redial included) is fully torn down.
func TestFleetLiveMembership(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	tsA, _ := newFaultyPeer(t, a)
	tsB, _ := newFaultyPeer(t, b)

	f := dialFleet(t, FleetOptions{HedgeQuantile: -1}, tsA.URL)
	frames := synth.SampleFrames(7, 3)
	want := make([]float64, len(frames))
	a.InferBatchInto(frames, want)

	// background load across the whole membership change
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(frames))
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.InferBatchInto(frames, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("membership churn: frame %d scored %v, want %v", j, out[j], want[j])
						return
					}
				}
			}
		}()
	}

	rbB, err := NewRemote(tsB.URL, RemoteOptions{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddPeer(rbB); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPeer(rbB); err == nil {
		t.Fatal("duplicate peer admitted")
	}
	if len(f.PeerHealth()) != 2 {
		t.Fatalf("fleet health after add: %+v", f.PeerHealth())
	}

	// drain + remove the original peer while traffic flows
	peerA := f.Peers()[0].Peer()
	removed, err := f.DrainRemovePeer(peerA, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if removed.Peer() != peerA {
		t.Fatalf("removed %q, want %q", removed.Peer(), peerA)
	}
	if _, err := f.DrainRemovePeer(peerA, time.Second); err == nil {
		t.Fatal("removed the same peer twice")
	}
	// the last peer of a fallback-less fleet must refuse to leave
	if _, err := f.DrainRemovePeer(rbB.Peer(), time.Second); err == nil {
		t.Fatal("drained the last peer of a fallback-less fleet")
	}

	close(stop)
	wg.Wait()
	if st := f.Stats(); st.Errors != 0 {
		t.Fatalf("fail-open during membership churn: %+v", st)
	}
	if len(f.PeerHealth()) != 1 || f.Peers()[0].Peer() != rbB.Peer() {
		t.Fatalf("post-removal membership: %+v", f.PeerHealth())
	}
	// the new peer actually serves
	out := make([]float64, len(frames))
	f.InferBatchInto(frames, out)
	if rbB.Stats().Frames == 0 {
		t.Fatal("admitted peer never served a frame")
	}
}

// TestFleetReplicatePinsPeers: replicas pin round-robin like RemotePool
// (shard-per-peer), share the health table, and keep their own counters.
func TestFleetReplicatePinsPeers(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	tsA, _ := newFaultyPeer(t, a)
	tsB, _ := newFaultyPeer(t, b)
	f := dialFleet(t, FleetOptions{}, tsA.URL, tsB.URL)

	r0 := f.Replicate().(*fleetReplica)
	r1 := f.Replicate().(*fleetReplica)
	r2 := f.Replicate().(*fleetReplica)
	// lanes are raw ordinals; the router maps them onto live membership
	n := len(f.peerList())
	p0, p1, p2 := f.router.Pin(r0.pref, n), f.router.Pin(r1.pref, n), f.router.Pin(r2.pref, n)
	if p0 == p1 || p2 != p0 {
		t.Fatalf("replica pinning %d/%d/%d, want round-robin with wraparound", p0, p1, p2)
	}
	frames := synth.SampleFrames(7, 2)
	out := make([]float64, len(frames))
	r0.InferBatchInto(frames, out)
	if st := r0.Stats(); st.Frames != int64(len(frames)) || st.Batches != 1 {
		t.Fatalf("replica stats %+v", st)
	}
	if st := r1.Stats(); st.Frames != 0 {
		t.Fatalf("sibling replica charged: %+v", st)
	}
	if hr, ok := Backend(r1).(HealthReporter); !ok {
		t.Fatal("replica does not report fleet health")
	} else if len(hr.PeerHealth()) != 2 {
		t.Fatalf("replica health %+v", hr.PeerHealth())
	}
	if _, err := NewFleet(nil, FleetOptions{}); err == nil {
		t.Fatal("empty fleet not rejected")
	}
}
