package engine

import (
	"percival/internal/nn"
	"percival/internal/tensor"
)

// Engine names used by the built-in backends and the selection flags.
const (
	FP32Name = "fp32"
	Int8Name = "int8"
)

// FP32Backend runs inference on the float32 arena fast path
// (nn.PredictArena over the trained Sequential).
type FP32Backend struct {
	base
	net *nn.Sequential
}

// NewFP32 wraps a trained network as a Backend at the given input
// resolution.
func NewFP32(net *nn.Sequential, res int) *FP32Backend {
	b := &FP32Backend{net: net}
	b.base = base{
		name: FP32Name,
		res:  res,
		predict: func(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
			return nn.PredictArena(net, x, a)
		},
	}
	return b
}

// Net exposes the wrapped network (model introspection, size reporting).
func (b *FP32Backend) Net() *nn.Sequential { return b.net }

// SizeBytes is the float32 weight footprint.
func (b *FP32Backend) SizeBytes() int { return nn.SizeBytes(b.net) }

// Replicate shares the weights with a fresh warm-state pool.
func (b *FP32Backend) Replicate() Backend { return NewFP32(b.net, b.res) }

// Int8Backend runs inference on the quantized INT8 engine.
type Int8Backend struct {
	base
	qnet *nn.QuantizedSequential
}

// NewInt8 wraps a calibrated quantized network as a Backend at the given
// input resolution.
func NewInt8(qnet *nn.QuantizedSequential, res int) *Int8Backend {
	b := &Int8Backend{qnet: qnet}
	b.base = base{
		name: Int8Name,
		res:  res,
		predict: func(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
			return qnet.PredictArena(x, a)
		},
	}
	return b
}

// QNet exposes the wrapped quantized network.
func (b *Int8Backend) QNet() *nn.QuantizedSequential { return b.qnet }

// SizeBytes is the INT8 weight footprint.
func (b *Int8Backend) SizeBytes() int { return b.qnet.SizeBytes() }

// Replicate shares the quantized weights with a fresh warm-state pool.
func (b *Int8Backend) Replicate() Backend { return NewInt8(b.qnet, b.res) }
