package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"percival/internal/synth"
)

// FuzzWireMsg drives the persistent-socket wire's two stream decoders with
// arbitrary bytes. They parse length-prefixed frames off a long-lived TCP
// connection — the server's (and client's) untrusted-input surface — so the
// contract is: bounded allocation before any length is validated, an error
// for every malformed prefix, and never a panic. Whatever does decode must
// re-encode/route without crashing.
func FuzzWireMsg(f *testing.F) {
	// seeds: well-formed messages of every shape, then each invariant the
	// decoders enforce broken one at a time
	frames := synth.SampleFrames(3, 2)
	keys := make([][32]byte, len(frames))
	var probe bytes.Buffer
	var hdr [sockHeaderLen]byte
	putSockHeader(hdr[:], batchMagic, 7, sockFlagProbe, uint32(len(frames)))
	probe.Write(hdr[:])
	var pb [8]byte
	for i := range frames {
		probe.Write(keys[i][:])
		binary.LittleEndian.PutUint64(pb[:], uint64(i)*0x9e3779b9)
		probe.Write(pb[:])
	}
	f.Add(probe.Bytes())

	var pixels bytes.Buffer
	putSockHeader(hdr[:], batchMagic, 8, 0, uint32(len(frames)))
	pixels.Write(hdr[:])
	var dims [8]byte
	for i, fr := range frames {
		pixels.Write(keys[i][:])
		binary.LittleEndian.PutUint32(dims[0:4], uint32(fr.W))
		binary.LittleEndian.PutUint32(dims[4:8], uint32(fr.H))
		pixels.Write(dims[:])
		pixels.Write(fr.Pix)
	}
	f.Add(pixels.Bytes())

	var scoresPlain bytes.Buffer
	putSockHeader(hdr[:], scoreMagic, 9, 0, 2)
	scoresPlain.Write(hdr[:])
	scoresPlain.Write(make([]byte, 16))
	f.Add(scoresPlain.Bytes())

	var scoresMasked bytes.Buffer
	putSockHeader(hdr[:], scoreMagic, 10, sockFlagMask, 3)
	scoresMasked.Write(hdr[:])
	scoresMasked.WriteByte(0b101) // 2 hits of 3
	scoresMasked.Write(make([]byte, 16))
	f.Add(scoresMasked.Bytes())

	// broken invariants: truncations, version skew, id/flag noise, counts
	// and dims past every bound (including the w*h*4 overflow corner)
	f.Add(probe.Bytes()[:sockHeaderLen-3])
	f.Add(pixels.Bytes()[:pixels.Len()-5])
	skew := append([]byte{}, probe.Bytes()...)
	binary.LittleEndian.PutUint16(skew[4:6], 0xffff)
	f.Add(skew)
	noise := append([]byte{}, scoresPlain.Bytes()...)
	binary.LittleEndian.PutUint32(noise[6:10], 0xdeadbeef) // unknown id
	binary.LittleEndian.PutUint32(noise[10:14], 0xff)      // reserved flags
	f.Add(noise)
	huge := append([]byte{}, pixels.Bytes()[:sockHeaderLen]...)
	binary.LittleEndian.PutUint32(huge[14:18], 0xffffffff)
	f.Add(huge)
	var overflow bytes.Buffer
	putSockHeader(hdr[:], batchMagic, 11, 0, 1)
	overflow.Write(hdr[:])
	overflow.Write(keys[0][:])
	binary.LittleEndian.PutUint32(dims[0:4], 1<<15)
	binary.LittleEndian.PutUint32(dims[4:8], 1<<15)
	overflow.Write(dims[:])
	f.Add(overflow.Bytes())
	mask := append([]byte{}, scoresMasked.Bytes()...)
	mask[sockHeaderLen] = 0xff // bits set past count
	f.Add(mask)

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := readSockRequest(bufio.NewReader(bytes.NewReader(data))); err == nil {
			// decoded requests must be internally consistent: the server
			// indexes keys, phashes and frames by the same count
			if req.probe {
				if len(req.phash) != len(req.keys) || len(req.frames) != 0 {
					t.Fatalf("probe shape: %d keys, %d phash, %d frames",
						len(req.keys), len(req.phash), len(req.frames))
				}
			} else {
				if len(req.frames) != len(req.keys) || len(req.frames) == 0 {
					t.Fatalf("pixel shape: %d keys, %d frames", len(req.keys), len(req.frames))
				}
				for _, fr := range req.frames {
					if fr.W <= 0 || fr.H <= 0 || len(fr.Pix) != fr.W*fr.H*4 {
						t.Fatalf("decoded frame %dx%d with %d pixel bytes", fr.W, fr.H, len(fr.Pix))
					}
				}
			}
		}
		if resp, err := readSockResponse(bufio.NewReader(bytes.NewReader(data))); err == nil {
			// the client walks mask bits against the score slice; a decoded
			// response must never send it out of bounds
			if resp.masked {
				hits := 0
				for i := 0; i < resp.count; i++ {
					if resp.mask[i/8]&(1<<(i%8)) != 0 {
						hits++
					}
				}
				if hits != len(resp.scores) {
					t.Fatalf("mask sets %d bits, %d scores decoded", hits, len(resp.scores))
				}
			} else if len(resp.scores) != resp.count {
				t.Fatalf("%d scores for count %d", len(resp.scores), resp.count)
			}
		}
	})
}
