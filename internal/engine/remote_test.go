package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"percival/internal/synth"
)

// newPeer stands up an in-process percival-serve wire surface over the
// given backend: the two endpoints a RemoteBackend speaks.
func newPeer(t testing.TB, reg *Registry, def Backend) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("POST /classify/batch", BatchHandler(reg, def))
	mux.Handle("GET /modelz", ModelzHandler(reg, def, 0.5))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestWireFrameRoundTrip: the batch encoding must reproduce every frame
// bit-for-bit, and the score encoding every score.
func TestWireFrameRoundTrip(t *testing.T) {
	frames := synth.SampleFrames(3, 5)
	enc := encodeFrames(nil, frames)
	got, err := decodeFrames(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if got[i].W != frames[i].W || got[i].H != frames[i].H {
			t.Fatalf("frame %d: %dx%d, want %dx%d", i, got[i].W, got[i].H, frames[i].W, frames[i].H)
		}
		if !bytes.Equal(got[i].Pix, frames[i].Pix) {
			t.Fatalf("frame %d: pixel mismatch", i)
		}
	}
	scores := []float64{0, 0.25, 1, math.SmallestNonzeroFloat64}
	out := make([]float64, len(scores))
	if err := decodeScoresInto(bytes.NewReader(encodeScores(nil, scores)), out); err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if out[i] != scores[i] {
			t.Fatalf("score %d: %v, want %v", i, out[i], scores[i])
		}
	}
}

// TestWireRejectsMalformedBatches: a lying header must error out before any
// pixel buffer is allocated, never over-allocate or succeed partially.
func TestWireRejectsMalformedBatches(t *testing.T) {
	frames := synth.SampleFrames(3, 1)
	good := encodeFrames(nil, frames)
	cases := map[string][]byte{
		"bad magic":     append([]byte("XXXX"), good[4:]...),
		"bad version":   append(append([]byte(batchMagic), 0xff, 0xff), good[6:]...),
		"zero count":    append(append([]byte{}, good[:6]...), 0, 0, 0, 0),
		"huge count":    append(append([]byte{}, good[:6]...), 0xff, 0xff, 0xff, 0xff),
		"truncated pix": good[:len(good)-8],
		"giant frame dim": func() []byte {
			b := append([]byte{}, good...)
			copy(b[10:14], []byte{0xff, 0xff, 0xff, 0x7f})
			return b
		}(),
	}
	for name, enc := range cases {
		if _, err := decodeFrames(bytes.NewReader(enc)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// score count must match the caller's frame count
	if err := decodeScoresInto(bytes.NewReader(encodeScores(nil, []float64{1, 2})), make([]float64, 3)); err == nil {
		t.Error("score-count mismatch not rejected")
	}
}

// TestWireFrameSizeOverflow: regression for the decodeFrames size guard
// computing w*h*4 in int — 32768x32768x4 is exactly 2^32, which wraps to 0
// on 32-bit platforms and sails past the byte bound. The guard must do the
// arithmetic in int64 and reject the frame on every platform.
func TestWireFrameSizeOverflow(t *testing.T) {
	good := encodeFrames(nil, synth.SampleFrames(3, 1))
	b := append([]byte{}, good[:wireHeaderLen]...)
	var dims [8]byte
	// both edges at the maxWireEdge limit: the per-edge checks pass, only
	// the (overflow-prone) byte bound can reject it
	binary.LittleEndian.PutUint32(dims[0:4], 1<<15)
	binary.LittleEndian.PutUint32(dims[4:8], 1<<15)
	b = append(b, dims[:]...)
	if frames, err := decodeFrames(bytes.NewReader(b)); err == nil {
		t.Fatalf("2^32-byte frame accepted (%d frames decoded)", len(frames))
	}
}

// TestBatchHandlerContentLengthAndCounters: the batch endpoint must declare
// Content-Length on its binary response (the body is fully assembled before
// the write) and account the exchange in the wire counters, including
// failed writes.
func TestBatchHandlerContentLengthAndCounters(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()
	ts := newPeer(t, nil, local)

	before := WireHTTPStats()
	frames := synth.SampleFrames(5, 3)
	body := encodeFrames(nil, frames)
	resp, err := http.Post(ts.URL+"/classify/batch", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wantLen := int64(wireHeaderLen + 8*len(frames))
	if resp.ContentLength != wantLen {
		t.Fatalf("Content-Length %d, want %d", resp.ContentLength, wantLen)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(payload)) != wantLen {
		t.Fatalf("body %d bytes, want %d", len(payload), wantLen)
	}
	after := WireHTTPStats()
	if after.Requests != before.Requests+1 {
		t.Fatalf("requests %d -> %d, want +1", before.Requests, after.Requests)
	}
	if after.BytesIn-before.BytesIn != int64(len(body)) {
		t.Fatalf("bytesIn moved %d, want %d", after.BytesIn-before.BytesIn, len(body))
	}
	if after.BytesOut-before.BytesOut != wantLen {
		t.Fatalf("bytesOut moved %d, want %d", after.BytesOut-before.BytesOut, wantLen)
	}
}

// TestRemoteDefaultClientIdleConns: the default HTTP client must keep a
// congestion window's worth of idle connections per peer — net/http's
// default of 2 would churn TCP setup on every >2-deep burst.
func TestRemoteDefaultClientIdleConns(t *testing.T) {
	o := RemoteOptions{}.withDefaults()
	tr, ok := o.Client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport %T, want *http.Transport", o.Client.Transport)
	}
	if tr.MaxIdleConnsPerHost != o.WindowMax || tr.MaxIdleConnsPerHost < 3 {
		t.Fatalf("MaxIdleConnsPerHost %d, want WindowMax %d", tr.MaxIdleConnsPerHost, o.WindowMax)
	}
	// an explicit client is never overridden
	c := &http.Client{}
	if o2 := (RemoteOptions{Client: c}).withDefaults(); o2.Client != c {
		t.Fatal("explicit client replaced by defaults")
	}
}

// TestRemoteMatchesLocalBackend is the tentpole's correctness anchor: a
// frame proxied over the wire must score exactly what the peer's backend
// scores locally — same pre-processing, same forward pass, bit-identical
// float64 on the wire.
func TestRemoteMatchesLocalBackend(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()
	ts := newPeer(t, nil, local)

	rb, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if rb.InputRes() != res {
		t.Fatalf("remote res %d, want %d", rb.InputRes(), res)
	}
	if want := "remote:" + FP32Name + "@"; len(rb.Name()) <= len(want) || rb.Name()[:len(want)] != want {
		t.Fatalf("remote name %q", rb.Name())
	}

	// more frames than one chunk, so the client-side chunk loop runs
	frames := synth.SampleFrames(7, BatchChunk+5)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)
	got := make([]float64, len(frames))
	rb.InferBatchInto(frames, got)
	for i := range frames {
		if got[i] != want[i] {
			t.Fatalf("frame %d: remote %v, local %v", i, got[i], want[i])
		}
	}
	st := rb.Stats()
	if st.Frames != int64(len(frames)) || st.Batches != 2 || st.Errors != 0 {
		t.Fatalf("remote stats %+v", st)
	}
}

// TestRemoteHandshake: construction must reject unreachable peers and
// resolution mismatches — deployment errors, not fail-open conditions.
func TestRemoteHandshake(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()
	ts := newPeer(t, nil, local)

	if _, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res + 8}); err == nil {
		t.Fatal("resolution mismatch not rejected")
	}
	if _, err := NewRemote("http://127.0.0.1:1", RemoteOptions{Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("unreachable peer not rejected")
	}
	if _, err := NewRemote("://not a url", RemoteOptions{}); err == nil {
		t.Fatal("invalid address not rejected")
	}

	// a version-skewed peer (past the whole [v1, v2] acceptance range) must
	// be refused at dial time, not fail every batch open at runtime
	skew := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ModelzInfo{WireVersion: wireVersionSock + 1, Engine: "fp32", InputRes: res})
	}))
	defer skew.Close()
	if _, err := NewRemote(skew.URL, RemoteOptions{}); err == nil {
		t.Fatal("wire-version skew not rejected")
	}

	// a wire-v2 peer is inside the range: a v1-only proxy preference and the
	// auto negotiation must both interoperate with it over HTTP when it
	// advertises no socket listener
	v2http := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ModelzInfo{WireVersion: wireVersionSock, Engine: "fp32", InputRes: res})
	}))
	defer v2http.Close()
	rb, err := NewRemote(v2http.URL, RemoteOptions{})
	if err != nil {
		t.Fatalf("v2 peer without socket listener rejected: %v", err)
	}
	if rb.tr.Kind() != "http" {
		t.Fatalf("negotiated %s transport for a peer with no wire addr, want http", rb.tr.Kind())
	}

	// requesting the socket wire from a peer that cannot serve it is a
	// deployment error, refused at dial time
	if _, err := NewRemote(v2http.URL, RemoteOptions{Transport: "socket"}); err == nil {
		t.Fatal("socket transport against socketless peer not rejected")
	}
}

// TestRemoteRetriesAndFailsOpen: a transient peer error is absorbed by the
// retry budget; a peer that stays down fails the chunk open (score 0,
// Errors counted) instead of blocking or panicking.
func TestRemoteRetriesAndFailsOpen(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()

	var fails atomic.Int64
	mux := http.NewServeMux()
	mux.Handle("GET /modelz", ModelzHandler(nil, local, 0.5))
	batch := BatchHandler(nil, local)
	mux.HandleFunc("POST /classify/batch", func(w http.ResponseWriter, r *http.Request) {
		if fails.Add(-1) >= 0 {
			http.Error(w, "flake", http.StatusServiceUnavailable)
			return
		}
		batch(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rb, err := NewRemote(ts.URL, RemoteOptions{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	frames := synth.SampleFrames(7, 2)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)

	// one 503, then the retry succeeds
	fails.Store(1)
	got := make([]float64, len(frames))
	rb.InferBatchInto(frames, got)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("retry did not recover: %v, want %v", got, want)
	}
	if st := rb.Stats(); st.Errors != 0 {
		t.Fatalf("transient flake counted as failure: %+v", st)
	}

	// peer stays down: every attempt fails, the chunk fails open
	fails.Store(1 << 30)
	got[0], got[1] = 0.9, 0.9
	rb.InferBatchInto(frames, got)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("failed chunk must score 0 (fail open), got %v", got)
	}
	if st := rb.Stats(); st.Errors != 1 {
		t.Fatalf("fail-open not counted: %+v", st)
	}
}

// TestRemoteDoesNotRetryRejections: a 4xx means the peer rejected this
// exact request — re-sending the same body cannot succeed, so the retry
// budget must not be spent on it.
func TestRemoteDoesNotRetryRejections(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()

	var attempts atomic.Int64
	mux := http.NewServeMux()
	mux.Handle("GET /modelz", ModelzHandler(nil, local, 0.5))
	mux.HandleFunc("POST /classify/batch", func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "rejected", http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rb, err := NewRemote(ts.URL, RemoteOptions{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	out := make([]float64, 1)
	rb.InferBatchInto(synth.SampleFrames(7, 1), out)
	if out[0] != 0 {
		t.Fatalf("rejected chunk must fail open, scored %v", out[0])
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("peer saw %d attempts of a non-retryable rejection, want 1", got)
	}
	if st := rb.Stats(); st.Errors != 1 {
		t.Fatalf("rejection not counted as fail-open: %+v", st)
	}
}

// TestRemotePoolRoundRobin: Replicate must pin successive replicas to
// successive peers (shard-per-peer), and pool stats must aggregate.
func TestRemotePoolRoundRobin(t *testing.T) {
	net, res := testNet(t, 16)
	remotes := make([]*RemoteBackend, 2)
	for i := range remotes {
		b := NewFP32(net, res)
		defer b.Close()
		ts := newPeer(t, nil, b)
		rb, err := NewRemote(ts.URL, RemoteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		remotes[i] = rb
	}
	pool, err := NewRemotePool(remotes)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	r0 := pool.Replicate().(*RemoteBackend)
	r1 := pool.Replicate().(*RemoteBackend)
	r2 := pool.Replicate().(*RemoteBackend)
	if r0.Peer() == r1.Peer() {
		t.Fatalf("consecutive replicas share peer %s", r0.Peer())
	}
	if r2.Peer() != r0.Peer() {
		t.Fatalf("replica 2 on %s, want wraparound to %s", r2.Peer(), r0.Peer())
	}

	// dispatch on the pool round-robins batches across peers, and the pool
	// aggregates the peers' counters (replicas keep their own, like every
	// other Replicate)
	frames := synth.SampleFrames(7, 4)
	out := make([]float64, len(frames))
	pool.InferBatchInto(frames, out)
	pool.InferBatchInto(frames, out)
	if st := pool.Stats(); st.Frames != 2*int64(len(frames)) {
		t.Fatalf("pool stats %+v, want %d frames aggregated", st, 2*len(frames))
	}
	if remotes[0].Stats().Frames == 0 || remotes[1].Stats().Frames == 0 {
		t.Fatalf("pool dispatch not spread: %+v / %+v", remotes[0].Stats(), remotes[1].Stats())
	}
	r1out := make([]float64, 1)
	r1.InferBatchInto(frames[:1], r1out)
	if r1.Stats().Frames != 1 {
		t.Fatalf("replica stats %+v, want its own counters", r1.Stats())
	}
	if _, err := NewRemotePool(nil); err == nil {
		t.Fatal("empty pool not rejected")
	}
}

// TestBatchHandlerModelSelection: ?model= must resolve through
// Registry.Select on both wire endpoints, with the lenient
// fallback-to-default for unknown names.
func TestBatchHandlerModelSelection(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	if err := reg.Register("fp32", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("fp32@2", b); err != nil {
		t.Fatal(err)
	}
	ts := newPeer(t, reg, a)

	rb, err := NewRemote(ts.URL, RemoteOptions{Model: "fp32@2"})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	frames := synth.SampleFrames(7, 3)
	out := make([]float64, len(frames))
	rb.InferBatchInto(frames, out)
	if got := b.Stats().Frames; got != int64(len(frames)) {
		t.Fatalf("named model served %d frames, want %d", got, int64(len(frames)))
	}
	if a.Stats().Frames != 0 {
		t.Fatalf("default backend served %d frames for a named request", a.Stats().Frames)
	}

	// unknown model name falls back to the registry default
	rb2, err := NewRemote(ts.URL, RemoteOptions{Model: "no-such-model"})
	if err != nil {
		t.Fatal(err)
	}
	defer rb2.Close()
	rb2.InferBatchInto(frames[:1], out[:1])
	if a.Stats().Frames != 1 {
		t.Fatalf("unknown model did not fall back to default (default served %d)", a.Stats().Frames)
	}
}

// TestRemoteConcurrentDispatch exercises the shared buffer pool and
// counters from concurrent submitters (meaningful under -race, which
// `make race` runs over this package).
func TestRemoteConcurrentDispatch(t *testing.T) {
	net, res := testNet(t, 16)
	local := NewFP32(net, res)
	defer local.Close()
	ts := newPeer(t, nil, local)
	rb, err := NewRemote(ts.URL, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	frames := synth.SampleFrames(7, 4)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(frames))
			for i := 0; i < 8; i++ {
				rb.InferBatchInto(frames, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("concurrent dispatch: frame %d scored %v, want %v", j, out[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := rb.Stats(); st.Frames != 4*8*int64(len(frames)) || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
}
