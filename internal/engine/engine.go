// Package engine defines the pluggable inference-backend layer: a Backend
// is one way of turning decoded frames into ad scores (the FP32 arena path,
// the INT8 quantized path, and — behind the same seam — any future remote
// or experimental engine), and a Registry names the backends a service
// knows about so engine selection becomes policy instead of inline
// branching.
//
// Before this layer existed the FP32 and INT8 paths were hard-wired twin
// code paths inside core.Percival (predictArena vs qnet, duplicated across
// Classify/ClassifyBatch/ClassifyBatchInto), and internal/serve could only
// dispatch to the single core.Percival it was constructed with. Backends
// pull that branching out: each backend owns its warm per-goroutine
// inference state (tensor arena + scaled-frame buffer), so a serve shard
// can hold its own replica and never contend with its neighbours for arena
// buffers.
//
// Arena-ownership rule: one Backend value owns one state pool. Replicate
// shares the (read-only) weights but starts a fresh pool, which is what a
// dispatch shard wants; Close drains the pool back to the global arena
// free-list.
package engine

import (
	"sync"
	"sync/atomic"

	"percival/internal/imaging"
	"percival/internal/tensor"
)

// BatchChunk caps the frames per forward pass. Activation buffers scale
// with batch size and the warm arena retains its high-water mark, so an
// unbounded batch (a 100-image search page at paper resolution) would pin
// hundreds of MB; chunking keeps the pre-processing amortization while
// bounding the arena to a fixed footprint.
const BatchChunk = 16

// Stats are a backend's dispatch counters, readable while it serves.
type Stats struct {
	// Batches counts forward passes (chunks, not caller-level batches).
	Batches int64
	// Frames counts frames scored.
	Frames int64
	// Errors counts chunks that failed open (score 0, verdict unknown)
	// because the engine could not produce a real verdict — transport
	// failures past the retry budget on a RemoteBackend. The in-process
	// backends never fail open, so they always report 0.
	Errors int64
}

// Backend is one inference engine: pre-processing, forward pass, and the
// warm per-goroutine state both need. Implementations are safe for
// concurrent use; a steady-state InferBatchInto performs no heap
// allocation once the state pool is warm (see Warm).
type Backend interface {
	// Name identifies the engine ("fp32", "int8") for registries, logs and
	// health endpoints.
	Name() string
	// InputRes is the network input resolution frames are scaled to.
	InputRes() int
	// InferBatchInto scores frames into out (len(out) >= len(frames)) and
	// returns out[:len(frames)]. Scores are the ad-class probability.
	InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64
	// Replicate returns a backend sharing this backend's weights but owning
	// a fresh warm-state pool — the per-shard replica serve dispatch wants.
	Replicate() Backend
	// Warm pre-touches the state pool for every chunk size a batch of up to
	// maxBatch frames can produce, so the first real dispatch allocates
	// nothing.
	Warm(maxBatch int)
	// Close drains the warm-state pool back to the global arena free-list.
	// The backend must not be used after Close.
	Close()
	// Stats returns the dispatch counters.
	Stats() Stats
}

// inferState bundles the reusable per-goroutine inference resources: a warm
// tensor arena holding every buffer one forward pass needs, plus the scaled
// bitmap the pre-processing writes into.
type inferState struct {
	arena  *tensor.Arena
	scaled *imaging.Bitmap
}

// predictFn runs one forward pass over a pre-processed input batch using
// arena-backed buffers; it is the only point where FP32 and INT8 differ.
type predictFn func(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor

// base carries the engine-independent machinery: state pool, chunked
// pre-processing loop, and stats. Concrete backends embed it and supply
// predict.
type base struct {
	name    string
	res     int
	predict predictFn

	states  sync.Pool
	batches atomic.Int64
	frames  atomic.Int64
}

func (b *base) Name() string  { return b.name }
func (b *base) InputRes() int { return b.res }

func (b *base) Stats() Stats {
	return Stats{Batches: b.batches.Load(), Frames: b.frames.Load()}
}

func (b *base) getState() *inferState {
	if st, ok := b.states.Get().(*inferState); ok {
		return st
	}
	return &inferState{
		arena:  tensor.GetArena(),
		scaled: imaging.NewBitmap(b.res, b.res),
	}
}

func (b *base) putState(st *inferState) { b.states.Put(st) }

// InferBatchInto scores frames in chunked forward passes, amortizing
// pre-processing through the warm arena and scaled-frame buffer.
func (b *base) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	if len(frames) == 0 {
		return out[:0]
	}
	st := b.getState()
	res := b.res
	per := 4 * res * res
	out = out[:len(frames)]
	for lo := 0; lo < len(frames); lo += BatchChunk {
		hi := lo + BatchChunk
		if hi > len(frames) {
			hi = len(frames)
		}
		chunk := frames[lo:hi]
		x := st.arena.GetTensor(len(chunk), 4, res, res)
		for i, f := range chunk {
			imaging.ResizeBilinearInto(f, st.scaled)
			imaging.ToTensorInto(st.scaled, x.Data[i*per:(i+1)*per])
		}
		probs := b.predict(x, st.arena)
		k := probs.Shape[1]
		for i := range chunk {
			out[lo+i] = float64(probs.Data[i*k+1]) // class 1 = ad
		}
		st.arena.PutTensor(probs)
		st.arena.PutTensor(x)
		b.batches.Add(1)
	}
	b.putState(st)
	b.frames.Add(int64(len(frames)))
	return out
}

// Warm runs one forward pass at every chunk size a batch of up to maxBatch
// frames can produce. The arena free-lists are exact-size, so a chunk size
// first seen on the serving hot path would allocate there instead.
func (b *base) Warm(maxBatch int) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxBatch > BatchChunk {
		maxBatch = BatchChunk
	}
	frame := imaging.NewBitmap(b.res, b.res)
	frames := make([]*imaging.Bitmap, maxBatch)
	for i := range frames {
		frames[i] = frame
	}
	out := make([]float64, maxBatch)
	for n := 1; n <= maxBatch; n++ {
		b.InferBatchInto(frames[:n], out[:n])
	}
}

// Close drains the warm-state pool, returning arenas to the global
// free-list.
func (b *base) Close() {
	for {
		st, ok := b.states.Get().(*inferState)
		if !ok {
			return
		}
		tensor.PutArena(st.arena)
	}
}
