package engine

import (
	"math"
	"sync"
	"testing"

	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/tensor"
)

// testNet builds a deterministic untrained small network; engine tests
// exercise the dispatch machinery, not verdict quality.
func testNet(t testing.TB, res int) (*nn.Sequential, int) {
	t.Helper()
	cfg := squeezenet.SmallConfig(res)
	net, err := squeezenet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	return net, cfg.InputRes
}

// TestFP32MatchesPredictArena anchors the extracted backend to the path it
// was extracted from: scores must match a direct nn.PredictArena run over
// the same pre-processing.
func TestFP32MatchesPredictArena(t *testing.T) {
	net, res := testNet(t, 16)
	b := NewFP32(net, res)
	defer b.Close()
	frames := synth.SampleFrames(3, 6)
	out := make([]float64, len(frames))
	b.InferBatchInto(frames, out)
	a := tensor.GetArena()
	defer tensor.PutArena(a)
	for i, f := range frames {
		x := imaging.PrepareInput(f, res)
		probs := nn.PredictArena(net, x, a)
		want := float64(probs.Data[1])
		a.PutTensor(probs)
		if math.Abs(out[i]-want) > 1e-6 {
			t.Fatalf("frame %d: backend score %v, direct score %v", i, out[i], want)
		}
	}
	if s := b.Stats(); s.Frames != int64(len(frames)) || s.Batches == 0 {
		t.Fatalf("stats not recorded: %+v", s)
	}
}

// TestInt8BackendRuns covers the quantized implementation end to end.
func TestInt8BackendRuns(t *testing.T) {
	net, res := testNet(t, 16)
	calib := []*tensor.Tensor{imaging.PrepareInput(synth.SampleFrames(5, 1)[0], res)}
	qnet, err := nn.Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	b := NewInt8(qnet, res)
	defer b.Close()
	if b.Name() != Int8Name || b.InputRes() != res {
		t.Fatalf("identity: name=%q res=%d", b.Name(), b.InputRes())
	}
	frames := synth.SampleFrames(7, 4)
	out := b.InferBatchInto(frames, make([]float64, len(frames)))
	for i, s := range out {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("frame %d: score %v outside [0,1]", i, s)
		}
	}
}

// TestReplicateSharesWeightsOwnsState: a replica must produce identical
// scores (same weights) while keeping its own stats and state pool.
func TestReplicateSharesWeightsOwnsState(t *testing.T) {
	net, res := testNet(t, 16)
	b := NewFP32(net, res)
	defer b.Close()
	rep := b.Replicate()
	defer rep.Close()
	frames := synth.SampleFrames(11, 3)
	a := b.InferBatchInto(frames, make([]float64, len(frames)))
	r := rep.InferBatchInto(frames, make([]float64, len(frames)))
	for i := range a {
		if a[i] != r[i] {
			t.Fatalf("frame %d: replica score %v != original %v", i, r[i], a[i])
		}
	}
	if rs := rep.Stats(); rs.Frames != int64(len(frames)) {
		t.Fatalf("replica stats %+v should count only its own traffic", rs)
	}
	if bs := b.Stats(); bs.Frames != int64(len(frames)) {
		t.Fatalf("original stats %+v polluted by replica", bs)
	}
}

// TestWarmMakesInferZeroAlloc is the arena-ownership gate: after Warm, the
// steady-state InferBatchInto must not allocate at any chunk size.
func TestWarmMakesInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	net, res := testNet(t, 16)
	b := NewFP32(net, res)
	defer b.Close()
	b.Warm(4)
	frames := synth.SampleFrames(13, 4)
	out := make([]float64, len(frames))
	for n := 1; n <= len(frames); n++ {
		allocs := testing.AllocsPerRun(10, func() {
			b.InferBatchInto(frames[:n], out[:n])
		})
		if allocs >= 1 {
			t.Fatalf("batch %d: steady-state InferBatchInto allocates %.2f/op", n, allocs)
		}
	}
}

// TestConcurrentInfer exercises the state pool under parallel callers.
func TestConcurrentInfer(t *testing.T) {
	net, res := testNet(t, 16)
	b := NewFP32(net, res)
	defer b.Close()
	frames := synth.SampleFrames(17, 8)
	want := b.InferBatchInto(frames, make([]float64, len(frames)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(frames))
			for i := 0; i < 4; i++ {
				b.InferBatchInto(frames, out)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("frame %d: concurrent score %v != %v", j, out[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestRegistrySelectionAndFallback covers the named-version lookup rules:
// first registration defaults, Select falls back on unknown names, and
// SetDefault re-routes.
func TestRegistrySelectionAndFallback(t *testing.T) {
	net, res := testNet(t, 16)
	fp := NewFP32(net, res)
	r := NewRegistry()
	if r.Default() != nil {
		t.Fatal("empty registry must have no default")
	}
	if err := r.Register(FP32Name, fp); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(FP32Name, fp); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if r.DefaultName() != FP32Name {
		t.Fatalf("first registration must default, got %q", r.DefaultName())
	}
	rep := fp.Replicate()
	if err := r.Register("fp32@2", rep); err != nil {
		t.Fatal(err)
	}
	if got := r.Select("fp32@2"); got != rep {
		t.Fatal("Select must return the named backend")
	}
	if got := r.Select("no-such-model"); got != fp {
		t.Fatal("Select must fall back to the default on unknown names")
	}
	if got := r.Select(""); got != fp {
		t.Fatal("Select must fall back to the default on empty names")
	}
	if err := r.SetDefault("no-such-model"); err == nil {
		t.Fatal("SetDefault must reject unregistered names")
	}
	if err := r.SetDefault("fp32@2"); err != nil {
		t.Fatal(err)
	}
	if r.Default() != rep {
		t.Fatal("SetDefault did not re-route the default")
	}
	if got := r.Names(); len(got) != 2 || got[0] != FP32Name || got[1] != "fp32@2" {
		t.Fatalf("Names order %v", got)
	}
	r.Close()
}
