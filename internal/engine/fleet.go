package engine

// Fleet is the self-healing control plane over a set of RemoteBackend
// peers. RemotePool (remote.go) routes blindly: a dead peer sheds its
// shard's traffic (score 0) until a human restarts something, retries are
// the peer's own problem, and a merely slow peer poisons its shard's tail
// unchecked. Fleet closes those gaps with three mechanisms:
//
//   - Health-gated eviction: every chunk outcome feeds a per-peer
//     supervisor. EvictAfter consecutive chunk failures trip the peer from
//     healthy to evicted — it stops receiving traffic instantly, and the
//     chunk that tripped it (plus everything after) re-routes to the next
//     healthy peer, then to the local Fallback backend, and only fails
//     open when nothing at all can score frames.
//
//   - Redial state machine: eviction starts a background redialer that
//     probes the peer with a fresh /modelz handshake on an exponential
//     backoff ladder (RedialBase doubling up to RedialMax, +/-50% jitter).
//     The peer is re-admitted only after a handshake that still speaks the
//     right wire version at the right resolution — a peer that came back
//     as something else stays out.
//
//     healthy --EvictAfter consecutive failures--> evicted
//     evicted --backoff elapsed--> redialing --handshake ok--> healthy
//     redialing --handshake failed--> evicted (backoff doubles)
//
//   - Hedged requests: each peer's chunk latency feeds an EWMA (mean +
//     mean absolute deviation). When a chunk has waited past the peer's
//     HedgeQuantile-derived delay, the same chunk is re-issued to a second
//     healthy peer; the first success wins and the loser is canceled via
//     context propagation through post(). A slow peer costs one hedge
//     instead of a tail-latency spike.
//
// Fleet is an ordinary Backend: serve shards call Replicate and get a
// replica pinned to a preferred peer (round-robin, shard-per-peer like
// RemotePool) with its own Stats counters, while all replicas share one
// health table — an eviction observed by one shard protects every shard.

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/imaging"
	"percival/internal/metrics"
)

// PeerState is a supervised peer's position in the health state machine.
type PeerState int32

const (
	// PeerHealthy: the peer receives traffic.
	PeerHealthy PeerState = iota
	// PeerEvicted: tripped by consecutive failures; no traffic until the
	// redialer re-admits it. The redial backoff is counting down.
	PeerEvicted
	// PeerRedialing: a re-admission handshake is in flight right now.
	PeerRedialing
)

// String names the state for /healthz and logs.
func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerEvicted:
		return "evicted"
	case PeerRedialing:
		return "redialing"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// FleetOptions tunes the supervisor. The zero value gets defaults from
// NewFleet.
type FleetOptions struct {
	// EvictAfter is how many consecutive chunk failures trip a peer to
	// evicted (default 3). Lower is jumpier, higher tolerates more flap.
	EvictAfter int
	// RedialBase is the first redial backoff after an eviction (default
	// 250ms); it doubles per failed probe up to RedialMax (default 15s),
	// with +/-50% jitter on every sleep.
	RedialBase time.Duration
	RedialMax  time.Duration
	// HedgeQuantile derives the hedge delay from each peer's latency EWMA:
	// a chunk waiting past approximately this quantile of the peer's
	// recent latency is re-issued to a second healthy peer (default 0.99;
	// <= 0 or >= 1 disables hedging). Hedging needs at least two healthy
	// peers and a few observed chunks to arm.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay so a fast fleet does not hedge every
	// chunk on scheduler noise (default 2ms).
	HedgeMin time.Duration
	// HedgeMax caps the hedge delay (default 0: the peer's whole chunk
	// budget). The EWMA trigger chases whatever latency it observes — under
	// congestion or a degrading peer the derived delay inflates until
	// hedges never fire — so operators with a latency SLO should pin the
	// ceiling near it.
	HedgeMax time.Duration
	// Fallback, when set, scores chunks locally when no healthy peer
	// remains — the "-peers front also holds a model" deployment. Without
	// it an all-evicted fleet fails open, same as RemotePool.
	Fallback Backend
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.EvictAfter <= 0 {
		o.EvictAfter = 3
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 250 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 15 * time.Second
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.99
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 2 * time.Millisecond
	}
	return o
}

// fleetPeer is one supervised peer: the transport plus its health state.
type fleetPeer struct {
	b *RemoteBackend

	state       atomic.Int32 // PeerState
	consecFails atomic.Int64
	// consecCancels counts hedge losses where this peer's arm was canceled
	// before producing a real outcome. A blackholed peer that is always
	// rescued by the hedge never *fails* (canceled arms are not health
	// signals), so once this streak reaches EvictAfter the peer's next
	// chunk runs unhedged — a live probe that must genuinely succeed or
	// genuinely fail, restoring eviction liveness.
	consecCancels atomic.Int64
	evictions     metrics.Counter
	redials       metrics.Counter // probe attempts (successful or not)
	hedgeWins     metrics.Counter // chunks this peer rescued as the hedge
	// lat aliases the peer's congestion-window RTT estimator: the window
	// observes every attempt's round trip inside tryChunk, and the hedge
	// trigger reads the same stream here — one feed, two consumers.
	lat *metrics.EWMA // attempt latency, milliseconds
}

func (p *fleetPeer) healthy() bool {
	return PeerState(p.state.Load()) == PeerHealthy
}

// recordSuccess resets the failure streaks and charges the scored frames to
// the peer's own counters (fleet dispatch goes through tryChunk, below the
// peer's InferBatchInto accounting). The latency model is NOT fed here:
// tryChunk already observed the attempt's round trip into the shared window
// EWMA, and a second observation would double-weight every sample.
func (p *fleetPeer) recordSuccess(nframes int) {
	p.consecFails.Store(0)
	p.consecCancels.Store(0)
	p.b.frames.Add(int64(nframes))
}

// PeerHealthInfo is one peer's row of the fleet health snapshot — the
// /healthz and /metrics surface.
type PeerHealthInfo struct {
	Peer          string    `json:"peer"`
	State         string    `json:"state"`
	StateCode     PeerState `json:"state_code"`
	ConsecFails   int64     `json:"consec_fails"`
	Evictions     int64     `json:"evictions"`
	Redials       int64     `json:"redials"`
	HedgeWins     int64     `json:"hedge_wins"`
	LatencyEWMAMS float64   `json:"latency_ewma_ms"`
	LatencyDevMS  float64   `json:"latency_dev_ms"`
	Frames        int64     `json:"frames"`
	Errors        int64     `json:"errors"`
	// congestion-window state (see CubicWindow)
	Cwnd           float64 `json:"cwnd"`
	WindowInFlight int     `json:"window_in_flight"`
	WindowLosses   int64   `json:"window_losses"`
	RTOMS          float64 `json:"rto_ms"`
	// negotiated-transport state (see TransportStats); the byte counters
	// make the dedup tier's wire savings visible per peer
	Transport      string `json:"transport"`
	WireBytesOut   int64  `json:"wire_bytes_out"`
	WireBytesIn    int64  `json:"wire_bytes_in"`
	WireFramesPix  int64  `json:"wire_frames_pixels"`
	WireFramesDdup int64  `json:"wire_frames_dedup"`
	WireDials      int64  `json:"wire_dials"`
}

// HealthReporter is implemented by backends that supervise peers; the
// serving layer and the daemon's health endpoints discover fleet state
// through it without a concrete-type dependency.
type HealthReporter interface {
	PeerHealth() []PeerHealthInfo
}

// Fleet fronts supervised remote peers as one Backend. Safe for concurrent
// use; replicas share the health table.
type Fleet struct {
	opts    FleetOptions
	peers   []*fleetPeer
	next    atomic.Int64 // Replicate pinning + unpinned routing cursor
	reroute atomic.Int64 // spreads displaced-lane traffic across survivors
	zHi     float64      // sigma multiplier derived from HedgeQuantile

	hedges    metrics.Counter // hedges issued
	hedgeWins metrics.Counter // hedges that beat the primary
	fallbacks metrics.Counter // chunks scored by the local Fallback

	chunks  chunkPool // pooled dispatch chunks (lazy wire encodings)
	scores  sync.Pool // *[]float64 hedge scratch buffers
	closed  chan struct{}
	closeMu sync.Mutex
	redials sync.WaitGroup

	batches atomic.Int64
	frames  atomic.Int64
	errors  atomic.Int64
}

// NewFleet builds a supervised fleet over peers (same input resolution,
// like NewRemotePool) and starts its control plane.
func NewFleet(peers []*RemoteBackend, opts FleetOptions) (*Fleet, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("engine: fleet needs at least one peer")
	}
	opts = opts.withDefaults()
	res := peers[0].InputRes()
	for _, p := range peers[1:] {
		if p.InputRes() != res {
			return nil, fmt.Errorf("engine: fleet mixes resolutions %d and %d (%s)",
				res, p.InputRes(), p.Name())
		}
	}
	if opts.Fallback != nil && opts.Fallback.InputRes() != res {
		return nil, fmt.Errorf("engine: fleet fallback serves res %d, peers serve %d",
			opts.Fallback.InputRes(), res)
	}
	f := &Fleet{
		opts:   opts,
		closed: make(chan struct{}),
	}
	// Quantile -> sigma multiplier through the normal inverse CDF, with the
	// EWMA's mean-absolute-deviation scaled to sigma (~1.25x for normal
	// samples). An approximation — chunk latency is not normal — but the
	// hedge delay only needs to sit past the bulk of the distribution.
	if q := opts.HedgeQuantile; q > 0.5 && q < 1 {
		f.zHi = 1.25 * math.Sqrt2 * math.Erfinv(2*q-1)
	}
	f.peers = make([]*fleetPeer, len(peers))
	for i, b := range peers {
		f.peers[i] = &fleetPeer{b: b, lat: b.win.RTT()}
	}
	return f, nil
}

// Name identifies the fleet and its size.
func (f *Fleet) Name() string { return fmt.Sprintf("fleet(%d)", len(f.peers)) }

// InputRes is the shared peer resolution.
func (f *Fleet) InputRes() int { return f.peers[0].b.InputRes() }

// Peers returns the supervised transports (stats introspection).
func (f *Fleet) Peers() []*RemoteBackend {
	out := make([]*RemoteBackend, len(f.peers))
	for i, p := range f.peers {
		out[i] = p.b
	}
	return out
}

// PeerHealth snapshots every peer's supervisor state.
func (f *Fleet) PeerHealth() []PeerHealthInfo {
	out := make([]PeerHealthInfo, len(f.peers))
	for i, p := range f.peers {
		st := p.b.Stats()
		win := p.b.win.Stat()
		tr := p.b.TransportStats()
		state := PeerState(p.state.Load())
		out[i] = PeerHealthInfo{
			Peer:           p.b.Peer(),
			State:          state.String(),
			StateCode:      state,
			ConsecFails:    p.consecFails.Load(),
			Evictions:      p.evictions.Load(),
			Redials:        p.redials.Load(),
			HedgeWins:      p.hedgeWins.Load(),
			LatencyEWMAMS:  p.lat.Value(),
			LatencyDevMS:   p.lat.Deviation(),
			Frames:         st.Frames,
			Errors:         st.Errors,
			Cwnd:           win.Cwnd,
			WindowInFlight: win.InFlight,
			WindowLosses:   win.Losses,
			RTOMS:          win.RTOMS,
			Transport:      tr.Kind,
			WireBytesOut:   tr.BytesOut,
			WireBytesIn:    tr.BytesIn,
			WireFramesPix:  tr.FramesPixels,
			WireFramesDdup: tr.FramesDedup,
			WireDials:      tr.Dials,
		}
	}
	return out
}

// WindowStats reports every supervised peer's congestion-window state
// (WindowReporter) — the serve admission controller's remote-saturation
// signal.
func (f *Fleet) WindowStats() []WindowStat {
	out := make([]WindowStat, len(f.peers))
	for i, p := range f.peers {
		st := p.b.win.Stat()
		st.Peer = p.b.Peer()
		out[i] = st
	}
	return out
}

// Hedges reports the number of hedged chunks issued.
func (f *Fleet) Hedges() int64 { return f.hedges.Load() }

// HedgeWins reports how many hedges beat their primary.
func (f *Fleet) HedgeWins() int64 { return f.hedgeWins.Load() }

// Fallbacks reports chunks scored by the local Fallback backend.
func (f *Fleet) Fallbacks() int64 { return f.fallbacks.Load() }

// Stats aggregates the fleet's own dispatch counters (replicas keep their
// own, like every Replicate).
func (f *Fleet) Stats() Stats {
	return Stats{Batches: f.batches.Load(), Frames: f.frames.Load(), Errors: f.errors.Load()}
}

// InferBatchInto dispatches chunks through the supervisor, starting at the
// next peer round-robin.
func (f *Fleet) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	pref := int(f.next.Add(1)-1) % len(f.peers)
	return f.inferBatch(pref, frames, out, &f.batches, &f.frames, &f.errors)
}

// Replicate pins a replica to the next peer round-robin: N serve shards
// over N peers yields a dispatch lane per peer, exactly like RemotePool —
// but the lane fails over instead of failing open.
func (f *Fleet) Replicate() Backend {
	return &fleetReplica{f: f, pref: int(f.next.Add(1)-1) % len(f.peers)}
}

// Warm pings every peer (logging and counting dead ones — see
// RemoteBackend.Warm) and warms the fallback's arenas.
func (f *Fleet) Warm(maxBatch int) {
	for _, p := range f.peers {
		p.b.Warm(maxBatch)
	}
	if f.opts.Fallback != nil {
		f.opts.Fallback.Warm(maxBatch)
	}
}

// Close stops the control plane (waiting out every redialer) and releases
// the peers' connections. The fallback backend is the caller's — typically
// the daemon's serving engine — and is not closed here.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	select {
	case <-f.closed:
	default:
		close(f.closed)
	}
	f.closeMu.Unlock()
	f.redials.Wait()
	for _, p := range f.peers {
		p.b.Close()
	}
}

// fleetReplica is a shard's lane into the fleet: its own counters and
// preferred peer, everything else shared.
type fleetReplica struct {
	f    *Fleet
	pref int

	batches atomic.Int64
	frames  atomic.Int64
	errors  atomic.Int64
}

func (r *fleetReplica) Name() string  { return r.f.Name() }
func (r *fleetReplica) InputRes() int { return r.f.InputRes() }
func (r *fleetReplica) Stats() Stats {
	return Stats{Batches: r.batches.Load(), Frames: r.frames.Load(), Errors: r.errors.Load()}
}
func (r *fleetReplica) Replicate() Backend { return r.f.Replicate() }
func (r *fleetReplica) Warm(maxBatch int)  { r.f.peers[r.pref].b.Warm(maxBatch) }
func (r *fleetReplica) Close()             {} // the fleet owns the shared transports

// PeerHealth lets a shard replica answer for the whole fleet (the serving
// layer discovers health through any replica).
func (r *fleetReplica) PeerHealth() []PeerHealthInfo { return r.f.PeerHealth() }

// WindowStats lets a shard replica report the whole fleet's windows.
func (r *fleetReplica) WindowStats() []WindowStat { return r.f.WindowStats() }

func (r *fleetReplica) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	return r.f.inferBatch(r.pref, frames, out, &r.batches, &r.frames, &r.errors)
}

// inferBatch chunks a batch through the supervisor on behalf of the fleet
// or one of its replicas, charging the caller's counters.
func (f *Fleet) inferBatch(pref int, frames []*imaging.Bitmap, out []float64, batches, nframes, errs *atomic.Int64) []float64 {
	if len(frames) == 0 {
		return out[:0]
	}
	out = out[:len(frames)]
	for lo := 0; lo < len(frames); lo += BatchChunk {
		hi := lo + BatchChunk
		if hi > len(frames) {
			hi = len(frames)
		}
		if f.dispatchChunk(pref, frames[lo:hi], out[lo:hi]) {
			batches.Add(1)
		} else {
			// Fail open only once every peer and the fallback are gone:
			// score 0 renders the frame, same contract as RemoteBackend.
			for i := lo; i < hi; i++ {
				out[i] = 0
			}
			errs.Add(1)
		}
	}
	nframes.Add(int64(len(frames)))
	return out
}

// pickHealthy scans for a healthy peer starting at start, skipping skip.
func (f *Fleet) pickHealthy(start int, skip *fleetPeer) *fleetPeer {
	n := len(f.peers)
	for i := 0; i < n; i++ {
		p := f.peers[(start+i)%n]
		if p != skip && p.healthy() {
			return p
		}
	}
	return nil
}

// dispatchChunk scores one chunk somewhere: the preferred peer (hedged),
// failing over across the remaining healthy peers, then the local
// fallback. Reports whether a real verdict was produced.
func (f *Fleet) dispatchChunk(pref int, frames []*imaging.Bitmap, out []float64) bool {
	// one wireChunk per dispatch, shared by every failover try and hedge
	// arm: each wire encoding (HTTP body, content keys) is computed at most
	// once no matter how many peers or transports see the chunk
	chunk := f.chunks.get(frames)
	defer f.chunks.put(chunk)

	var tried [8]*fleetPeer // failover path; fleets are small
	ntried := 0
	skip := func(p *fleetPeer) bool {
		for i := 0; i < ntried; i++ {
			if tried[i] == p {
				return true
			}
		}
		return false
	}
	for ntried < len(f.peers) && ntried < len(tried) {
		var p *fleetPeer
		start := pref
		if ntried > 0 || !f.peers[pref%len(f.peers)].healthy() {
			// The preferred lane is out (or already failed this chunk):
			// rotate the scan start so displaced traffic spreads across the
			// survivors. A fixed forward scan would re-route every displaced
			// lane to the same next peer — with the first peer down that
			// doubles one survivor's load while the spare sits idle.
			start = int(f.reroute.Add(1) - 1)
		}
		for i := 0; i < len(f.peers); i++ {
			c := f.peers[(start+i)%len(f.peers)]
			if c.healthy() && !skip(c) {
				p = c
				break
			}
		}
		if p == nil {
			break
		}
		if f.sendHedged(p, pref, chunk, out) {
			return true
		}
		tried[ntried] = p
		ntried++
	}
	if f.opts.Fallback != nil {
		f.opts.Fallback.InferBatchInto(frames, out)
		f.fallbacks.Inc()
		return true
	}
	return false
}

// chunkBudget bounds one peer's whole try (retries and backoffs included).
func (f *Fleet) chunkBudget(p *fleetPeer) time.Duration {
	return p.b.timeout * time.Duration(p.b.retries+1)
}

// hedgeDelay derives the tail-latency trigger for a peer: EWMA mean plus
// the HedgeQuantile sigma multiple of the smoothed deviation. Zero means
// "do not hedge" — before any latency signal exists, or with hedging off.
func (f *Fleet) hedgeDelay(p *fleetPeer) time.Duration {
	if f.zHi == 0 || p.lat.N() < 3 {
		return 0
	}
	// Too many consecutive canceled hedge losses: run this chunk unhedged
	// as a live probe (see fleetPeer.consecCancels). The probe's cost is one
	// potential tail spike per EvictAfter hedge wins against a dead peer.
	if p.consecCancels.Load() >= int64(f.opts.EvictAfter) {
		return 0
	}
	ms := p.lat.Value() + f.zHi*p.lat.Deviation()
	d := time.Duration(ms * float64(time.Millisecond))
	if d < f.opts.HedgeMin {
		d = f.opts.HedgeMin
	}
	if f.opts.HedgeMax > 0 && d > f.opts.HedgeMax {
		d = f.opts.HedgeMax
	}
	if budget := f.chunkBudget(p); d > budget {
		d = budget
	}
	return d
}

// hedgeOutcome is one arm's result.
type hedgeOutcome struct {
	peer *fleetPeer
	out  []float64
	err  error
}

// sendHedged runs one chunk against peer p, re-issuing it to a second
// healthy peer once p's hedge delay expires; the first success cancels the
// other arm. Reports whether the chunk was scored into out; failures are
// recorded against every peer that actually failed.
func (f *Fleet) sendHedged(p *fleetPeer, pref int, chunk *wireChunk, out []float64) bool {
	delay := f.hedgeDelay(p)
	arm := func(pr *fleetPeer) (func(), chan hedgeOutcome) {
		ctx, cancel := context.WithTimeout(context.Background(), f.chunkBudget(pr))
		ch := make(chan hedgeOutcome, 1)
		buf := f.getScores(len(out))
		go func() {
			err := pr.b.tryChunk(ctx, chunk, buf)
			ch <- hedgeOutcome{peer: pr, out: buf, err: err}
		}()
		return cancel, ch
	}

	settle := func(o hedgeOutcome, won bool) bool {
		defer f.putScores(o.out)
		if o.err != nil {
			f.recordFailure(o.peer)
			return false
		}
		o.peer.recordSuccess(len(o.out))
		if won {
			copy(out, o.out)
		}
		return won
	}

	cancelP, chP := arm(p)
	defer cancelP()
	var h *fleetPeer
	if delay > 0 {
		h = f.pickHealthy(pref+1, p)
	}
	if h == nil {
		// no hedge candidate (or hedging unarmed): plain dispatch
		return settle(<-chP, true)
	}
	timer := time.NewTimer(delay)
	select {
	case o := <-chP:
		timer.Stop()
		if settle(o, true) {
			return true
		}
		// primary failed before the hedge fired: fall back to the
		// dispatchChunk failover loop rather than hedging a known failure
		return false
	case <-timer.C:
	}

	// Primary is past its tail trigger: issue the hedge and race the arms.
	// The loser is canceled and always waited out, so no goroutine (or
	// scratch buffer) outlives the chunk. Firing is itself a congestion
	// signal against the primary — it blew past its own tail estimate — so
	// its window backs off (coalesced to one decrease per RTT, so a burst
	// of hedges against a briefly-slow peer is one event, not a collapse).
	p.b.win.OnLoss()
	f.hedges.Inc()
	cancelH, chH := arm(h)
	defer cancelH()
	// finish publishes the winner after draining the canceled loser. A
	// canceled loser's error is not a health signal against its peer (the
	// cancellation raced a possibly-fine request), so only its success is
	// recorded.
	finish := func(winner hedgeOutcome, loserCancel func(), loserCh chan hedgeOutcome, hedgeWon bool) bool {
		loserCancel()
		loser := <-loserCh
		f.putScores(loser.out)
		if loser.err == nil {
			loser.peer.recordSuccess(len(loser.out))
		} else {
			// the cancellation raced a possibly-fine request, so this is not
			// a failure — but the streak feeds the unhedged-probe trigger in
			// hedgeDelay so a dead peer cannot hide behind its hedges forever
			loser.peer.consecCancels.Add(1)
		}
		if hedgeWon {
			winner.peer.hedgeWins.Inc()
			f.hedgeWins.Inc()
		}
		return settle(winner, true)
	}
	select {
	case o := <-chP:
		if o.err == nil {
			return finish(o, cancelH, chH, false)
		}
		// primary failed for real; let the hedge finish the chunk
		settle(o, false)
		return settle(<-chH, true)
	case o := <-chH:
		if o.err == nil {
			return finish(o, cancelP, chP, true)
		}
		settle(o, false)
		return settle(<-chP, true)
	}
}

func (f *Fleet) getScores(n int) []float64 {
	if sp, ok := f.scores.Get().(*[]float64); ok && cap(*sp) >= n {
		return (*sp)[:n]
	}
	return make([]float64, n)
}

func (f *Fleet) putScores(s []float64) {
	s = s[:cap(s)]
	f.scores.Put(&s)
}

// recordFailure advances the supervisor: one more consecutive failure, and
// past EvictAfter the peer trips to evicted and its redialer starts. The
// CAS guarantees exactly one redialer per eviction.
func (f *Fleet) recordFailure(p *fleetPeer) {
	if p.consecFails.Add(1) < int64(f.opts.EvictAfter) {
		return
	}
	if !p.state.CompareAndSwap(int32(PeerHealthy), int32(PeerEvicted)) {
		return
	}
	p.evictions.Inc()
	// the peer stopped answering entirely: drop its window to the floor so
	// a racing in-flight dispatch cannot stack chunks onto a dead peer
	p.b.win.Collapse()
	log.Printf("engine: fleet evicted %s after %d consecutive failures", p.b.Peer(), p.consecFails.Load())
	f.redials.Add(1)
	go f.redial(p)
}

// redial is the background re-admission state machine for one evicted
// peer: sleep the jittered backoff, probe /modelz, re-admit on a valid
// handshake, double the backoff and stay evicted otherwise.
func (f *Fleet) redial(p *fleetPeer) {
	defer f.redials.Done()
	backoff := f.opts.RedialBase
	for {
		timer := time.NewTimer(jitter(backoff))
		select {
		case <-timer.C:
		case <-f.closed:
			timer.Stop()
			return
		}
		p.state.Store(int32(PeerRedialing))
		p.redials.Inc()
		info, err := p.b.handshake(p.b.modelzURL)
		if err == nil && p.b.tr.compatible(info) && info.InputRes == p.b.res {
			// fresh handshake at the right version and resolution: re-admit
			// with a clean slate — stale pre-eviction latency must not arm
			// the hedge trigger against a peer that just came back, and the
			// window restarts in slow start (Reset clears the shared EWMA)
			p.consecFails.Store(0)
			p.consecCancels.Store(0)
			p.b.win.Reset()
			p.state.Store(int32(PeerHealthy))
			log.Printf("engine: fleet re-admitted %s", p.b.Peer())
			return
		}
		if err == nil {
			// the transport's own compatibility check failed: the peer came
			// back speaking a wire this backend's negotiated transport
			// cannot ride (e.g. socket peer restarted HTTP-only)
			err = fmt.Errorf("handshake wire v%d addr %q res %d incompatible with %s transport (res %d)",
				info.WireVersion, info.WireAddr, info.InputRes, p.b.tr.Kind(), p.b.res)
		}
		p.state.Store(int32(PeerEvicted))
		log.Printf("engine: fleet redial %s failed (next in ~%v): %v", p.b.Peer(), backoff*2, err)
		backoff *= 2
		if backoff > f.opts.RedialMax {
			backoff = f.opts.RedialMax
		}
		select {
		case <-f.closed:
			return
		default:
		}
	}
}

// jitter spreads a delay uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return backoffDelay(1, d, d)
}
