package engine

// Fleet is the self-healing control plane over a set of RemoteBackend
// peers. RemotePool (remote.go) routes blindly: a dead peer sheds its
// shard's traffic (score 0) until a human restarts something, retries are
// the peer's own problem, and a merely slow peer poisons its shard's tail
// unchecked. Fleet closes those gaps with four mechanisms:
//
//   - Health-gated eviction: every chunk outcome feeds a per-peer
//     supervisor. EvictAfter consecutive chunk failures trip the peer from
//     healthy to evicted — it stops receiving traffic instantly, and the
//     chunk that tripped it (plus everything after) re-routes to the next
//     routable peer, then to the local Fallback backend, and only fails
//     open when nothing at all can score frames.
//
//   - Redial state machine: eviction starts a background redialer that
//     probes the peer with a fresh /modelz handshake on an exponential
//     backoff ladder (RedialBase doubling up to RedialMax, +/-50% jitter).
//     The peer is re-admitted only after a handshake that still speaks the
//     right wire version at the right resolution — a peer that came back
//     as something else stays out. The probe's round trip seeds the
//     latency EWMA so the peer re-enters warm, not blind.
//
//     healthy --EvictAfter consecutive failures--> evicted
//     evicted --backoff elapsed--> redialing --handshake ok--> healthy
//     redialing --handshake failed--> evicted (backoff doubles)
//     healthy --DrainRemovePeer--> draining --in-flight quiesced--> removed
//
//   - Hedged requests: each peer's chunk latency feeds an EWMA (mean +
//     mean absolute deviation). When a chunk has waited past the peer's
//     HedgeQuantile-derived delay, the same chunk is re-issued to a second
//     routable peer; the first success wins and the loser is canceled via
//     context propagation through post(). A slow peer costs one hedge
//     instead of a tail-latency spike.
//
//   - Live membership: the peer set is a copy-on-write snapshot behind an
//     atomic pointer, so AddPeer and DrainRemovePeer (the /admin/peers
//     control plane) mutate topology while dispatch runs lock-free against
//     whatever snapshot it loaded. Removal drains first — the peer stops
//     receiving new chunks, in-flight chunks quiesce through its
//     congestion window, then it leaves the snapshot.
//
// Placement itself — which peer a lane prefers, which peer serves a chunk,
// which peer runs a hedge arm — is delegated to the Router seam
// (router.go): static round-robin pinning by default, weighted
// least-loaded placement off the window/EWMA signals when configured.
//
// Fleet is an ordinary Backend: serve shards call Replicate and get a
// replica carrying a dispatch-lane ordinal (the router maps it to a
// preferred peer against live membership) with its own Stats counters,
// while all replicas share one health table — an eviction observed by one
// shard protects every shard.

import (
	"context"
	"fmt"
	"log"
	"math"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/imaging"
	"percival/internal/metrics"
)

// PeerState is a supervised peer's position in the health state machine.
type PeerState int32

const (
	// PeerHealthy: the peer receives traffic.
	PeerHealthy PeerState = iota
	// PeerEvicted: tripped by consecutive failures; no traffic until the
	// redialer re-admits it. The redial backoff is counting down.
	PeerEvicted
	// PeerRedialing: a re-admission handshake is in flight right now.
	PeerRedialing
	// PeerDraining: DrainRemovePeer is quiescing the peer — no new chunks
	// are placed on it while its in-flight chunks finish, then it leaves
	// the fleet. Terminal: a draining peer is never re-admitted.
	PeerDraining
)

// String names the state for /healthz and logs.
func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerEvicted:
		return "evicted"
	case PeerRedialing:
		return "redialing"
	case PeerDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// FleetOptions tunes the supervisor. The zero value gets defaults from
// NewFleet.
type FleetOptions struct {
	// EvictAfter is how many consecutive chunk failures trip a peer to
	// evicted (default 3). Lower is jumpier, higher tolerates more flap.
	EvictAfter int
	// RedialBase is the first redial backoff after an eviction (default
	// 250ms); it doubles per failed probe up to RedialMax (default 15s),
	// with +/-50% jitter on every sleep.
	RedialBase time.Duration
	RedialMax  time.Duration
	// HedgeQuantile derives the hedge delay from each peer's latency EWMA:
	// a chunk waiting past approximately this quantile of the peer's
	// recent latency is re-issued to a second healthy peer (default 0.99;
	// <= 0 or >= 1 disables hedging). Hedging needs at least two healthy
	// peers and a few observed chunks to arm.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay so a fast fleet does not hedge every
	// chunk on scheduler noise (default 2ms).
	HedgeMin time.Duration
	// HedgeMax caps the hedge delay (default 0: the peer's whole chunk
	// budget). The EWMA trigger chases whatever latency it observes — under
	// congestion or a degrading peer the derived delay inflates until
	// hedges never fire — so operators with a latency SLO should pin the
	// ceiling near it.
	HedgeMax time.Duration
	// Fallback, when set, scores chunks locally when no healthy peer
	// remains — the "-peers front also holds a model" deployment. Without
	// it an all-evicted fleet fails open, same as RemotePool.
	Fallback Backend
	// Router is the placement policy (router.go). Nil means StaticRouter —
	// the pre-seam round-robin pinning, bit-for-bit.
	Router Router
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.EvictAfter <= 0 {
		o.EvictAfter = 3
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 250 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 15 * time.Second
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.99
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 2 * time.Millisecond
	}
	if o.Router == nil {
		o.Router = &StaticRouter{}
	}
	return o
}

// fleetPeer is one supervised peer: the transport plus its health state.
type fleetPeer struct {
	b *RemoteBackend

	state atomic.Int32 // PeerState
	// gone flips when the peer has been removed from the fleet snapshot;
	// a late redialer or failure recorder observing it stands down.
	gone        atomic.Bool
	consecFails atomic.Int64
	// consecCancels counts hedge losses where this peer's arm was canceled
	// before producing a real outcome. A blackholed peer that is always
	// rescued by the hedge never *fails* (canceled arms are not health
	// signals), so once this streak reaches EvictAfter the peer's next
	// chunk runs unhedged — a live probe that must genuinely succeed or
	// genuinely fail, restoring eviction liveness.
	consecCancels atomic.Int64
	evictions     metrics.Counter
	redials       metrics.Counter // probe attempts (successful or not)
	hedgeWins     metrics.Counter // chunks this peer rescued as the hedge
	// lat aliases the peer's congestion-window RTT estimator: the window
	// observes every attempt's round trip inside tryChunk, and the hedge
	// trigger and weighted router read the same stream here — one feed,
	// three consumers.
	lat *metrics.EWMA // attempt latency, milliseconds
}

// routable reports whether the router may place new chunks on the peer:
// healthy only — evicted, redialing and draining peers take no traffic.
func (p *fleetPeer) routable() bool {
	return PeerState(p.state.Load()) == PeerHealthy
}

// recordSuccess resets the failure streaks and charges the scored frames to
// the peer's own counters (fleet dispatch goes through tryChunk, below the
// peer's InferBatchInto accounting). The latency model is NOT fed here:
// tryChunk already observed the attempt's round trip into the shared window
// EWMA, and a second observation would double-weight every sample.
func (p *fleetPeer) recordSuccess(nframes int) {
	p.consecFails.Store(0)
	p.consecCancels.Store(0)
	p.b.frames.Add(int64(nframes))
}

// PeerHealthInfo is one peer's row of the fleet health snapshot — the
// /healthz and /metrics surface.
type PeerHealthInfo struct {
	Peer          string    `json:"peer"`
	State         string    `json:"state"`
	StateCode     PeerState `json:"state_code"`
	ConsecFails   int64     `json:"consec_fails"`
	Evictions     int64     `json:"evictions"`
	Redials       int64     `json:"redials"`
	HedgeWins     int64     `json:"hedge_wins"`
	LatencyEWMAMS float64   `json:"latency_ewma_ms"`
	LatencyDevMS  float64   `json:"latency_dev_ms"`
	Frames        int64     `json:"frames"`
	Errors        int64     `json:"errors"`
	// congestion-window state (see CubicWindow)
	Cwnd           float64 `json:"cwnd"`
	WindowInFlight int     `json:"window_in_flight"`
	WindowLosses   int64   `json:"window_losses"`
	RTOMS          float64 `json:"rto_ms"`
	// negotiated-transport state (see TransportStats); the byte counters
	// make the dedup tier's wire savings visible per peer
	Transport      string `json:"transport"`
	WireBytesOut   int64  `json:"wire_bytes_out"`
	WireBytesIn    int64  `json:"wire_bytes_in"`
	WireFramesPix  int64  `json:"wire_frames_pixels"`
	WireFramesDdup int64  `json:"wire_frames_dedup"`
	WireDials      int64  `json:"wire_dials"`
}

// HealthReporter is implemented by backends that supervise peers; the
// serving layer and the daemon's health endpoints discover fleet state
// through it without a concrete-type dependency.
type HealthReporter interface {
	PeerHealth() []PeerHealthInfo
}

// Fleet fronts supervised remote peers as one Backend. Safe for concurrent
// use; replicas share the health table and the live membership snapshot.
type Fleet struct {
	opts   FleetOptions
	router Router
	res    int     // shared peer input resolution, fixed for the fleet's life
	zHi    float64 // sigma multiplier derived from HedgeQuantile

	// peers is the copy-on-write membership snapshot: dispatch loads it
	// once per chunk and routes against that view, while AddPeer and
	// DrainRemovePeer swap in a new slice under peersMu. A chunk racing a
	// removal may still try the departed peer once; it fails over like any
	// other chunk failure.
	peers   atomic.Pointer[[]*fleetPeer]
	peersMu sync.Mutex // serializes membership mutation, never dispatch

	next atomic.Int64 // dispatch-lane ordinal source (Replicate, batches)

	hedges    metrics.Counter // hedges issued
	hedgeWins metrics.Counter // hedges that beat the primary
	fallbacks metrics.Counter // chunks scored by the local Fallback

	chunks  chunkPool // pooled dispatch chunks (lazy wire encodings)
	scores  sync.Pool // *[]float64 hedge scratch buffers
	closed  chan struct{}
	closeMu sync.Mutex
	redials sync.WaitGroup

	batches atomic.Int64
	frames  atomic.Int64
	errors  atomic.Int64
}

// NewFleet builds a supervised fleet over peers (same input resolution,
// like NewRemotePool) and starts its control plane.
func NewFleet(peers []*RemoteBackend, opts FleetOptions) (*Fleet, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("engine: fleet needs at least one peer")
	}
	opts = opts.withDefaults()
	res := peers[0].InputRes()
	for _, p := range peers[1:] {
		if p.InputRes() != res {
			return nil, fmt.Errorf("engine: fleet mixes resolutions %d and %d (%s)",
				res, p.InputRes(), p.Name())
		}
	}
	if opts.Fallback != nil && opts.Fallback.InputRes() != res {
		return nil, fmt.Errorf("engine: fleet fallback serves res %d, peers serve %d",
			opts.Fallback.InputRes(), res)
	}
	f := &Fleet{
		opts:   opts,
		router: opts.Router,
		res:    res,
		closed: make(chan struct{}),
	}
	// Quantile -> sigma multiplier through the normal inverse CDF, with the
	// EWMA's mean-absolute-deviation scaled to sigma (~1.25x for normal
	// samples). An approximation — chunk latency is not normal — but the
	// hedge delay only needs to sit past the bulk of the distribution.
	if q := opts.HedgeQuantile; q > 0.5 && q < 1 {
		f.zHi = 1.25 * math.Sqrt2 * math.Erfinv(2*q-1)
	}
	list := make([]*fleetPeer, len(peers))
	for i, b := range peers {
		list[i] = &fleetPeer{b: b, lat: b.win.RTT()}
	}
	f.peers.Store(&list)
	return f, nil
}

// peerList loads the current membership snapshot (never nil).
func (f *Fleet) peerList() []*fleetPeer {
	return *f.peers.Load()
}

// Router reports the active placement policy (the /admin/topology surface).
func (f *Fleet) Router() Router { return f.router }

// Name identifies the fleet and its current size.
func (f *Fleet) Name() string { return fmt.Sprintf("fleet(%d)", len(f.peerList())) }

// InputRes is the shared peer resolution.
func (f *Fleet) InputRes() int { return f.res }

// Peers returns the supervised transports (stats introspection).
func (f *Fleet) Peers() []*RemoteBackend {
	peers := f.peerList()
	out := make([]*RemoteBackend, len(peers))
	for i, p := range peers {
		out[i] = p.b
	}
	return out
}

// PeerHealth snapshots every peer's supervisor state.
func (f *Fleet) PeerHealth() []PeerHealthInfo {
	peers := f.peerList()
	out := make([]PeerHealthInfo, len(peers))
	for i, p := range peers {
		st := p.b.Stats()
		win := p.b.win.Stat()
		tr := p.b.TransportStats()
		state := PeerState(p.state.Load())
		out[i] = PeerHealthInfo{
			Peer:           p.b.Peer(),
			State:          state.String(),
			StateCode:      state,
			ConsecFails:    p.consecFails.Load(),
			Evictions:      p.evictions.Load(),
			Redials:        p.redials.Load(),
			HedgeWins:      p.hedgeWins.Load(),
			LatencyEWMAMS:  p.lat.Value(),
			LatencyDevMS:   p.lat.Deviation(),
			Frames:         st.Frames,
			Errors:         st.Errors,
			Cwnd:           win.Cwnd,
			WindowInFlight: win.InFlight,
			WindowLosses:   win.Losses,
			RTOMS:          win.RTOMS,
			Transport:      tr.Kind,
			WireBytesOut:   tr.BytesOut,
			WireBytesIn:    tr.BytesIn,
			WireFramesPix:  tr.FramesPixels,
			WireFramesDdup: tr.FramesDedup,
			WireDials:      tr.Dials,
		}
	}
	return out
}

// WindowStats reports the congestion-window state of every peer that can
// actually take traffic (WindowReporter) — the serve admission
// controller's remote-saturation signal. Evicted and draining peers are
// excluded: their windows are collapsed or quiescing by design, and
// averaging them in would misreport a healthy fleet as saturated (or a
// drained one as idle capacity).
func (f *Fleet) WindowStats() []WindowStat {
	peers := f.peerList()
	out := make([]WindowStat, 0, len(peers))
	for _, p := range peers {
		if !p.routable() {
			continue
		}
		st := p.b.win.Stat()
		st.Peer = p.b.Peer()
		out = append(out, st)
	}
	return out
}

// Hedges reports the number of hedged chunks issued.
func (f *Fleet) Hedges() int64 { return f.hedges.Load() }

// HedgeWins reports how many hedges beat their primary.
func (f *Fleet) HedgeWins() int64 { return f.hedgeWins.Load() }

// Fallbacks reports chunks scored by the local Fallback backend.
func (f *Fleet) Fallbacks() int64 { return f.fallbacks.Load() }

// Stats aggregates the fleet's own dispatch counters (replicas keep their
// own, like every Replicate).
func (f *Fleet) Stats() Stats {
	return Stats{Batches: f.batches.Load(), Frames: f.frames.Load(), Errors: f.errors.Load()}
}

// AddPeer admits a freshly-dialed peer into the fleet — the POST
// /admin/peers control plane. The backend must already have passed its
// dial-time /modelz handshake (NewRemote enforces it) and serve the
// fleet's resolution; it enters healthy, with its window's EWMA seeded
// from that handshake, and starts taking traffic on the next chunk that
// loads the new snapshot.
func (f *Fleet) AddPeer(rb *RemoteBackend) error {
	if rb == nil {
		return fmt.Errorf("engine: fleet cannot add a nil peer")
	}
	if rb.InputRes() != f.res {
		return fmt.Errorf("engine: fleet serves res %d, new peer %s serves %d",
			f.res, rb.Peer(), rb.InputRes())
	}
	f.peersMu.Lock()
	defer f.peersMu.Unlock()
	select {
	case <-f.closed:
		return fmt.Errorf("engine: fleet is closed")
	default:
	}
	cur := f.peerList()
	for _, p := range cur {
		if p.b.Peer() == rb.Peer() {
			return fmt.Errorf("engine: fleet already has peer %s", rb.Peer())
		}
	}
	next := make([]*fleetPeer, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, &fleetPeer{b: rb, lat: rb.win.RTT()})
	f.peers.Store(&next)
	log.Printf("engine: fleet added peer %s (%d peers)", rb.Peer(), len(next))
	return nil
}

// DrainRemovePeer removes the peer matching id ("host:port" or the full
// base URL) — the DELETE /admin/peers/{id} control plane. A healthy peer
// drains first: it stops receiving new chunks immediately (the router
// skips draining peers) and its in-flight chunks are waited out through
// the congestion window, up to timeout (default 5s; removal proceeds
// regardless after it, logged). Evicted and redialing peers have no
// traffic to drain and are removed at once. Returns the removed backend
// (already closed) so the caller can deregister it elsewhere. The last
// peer of a fallback-less fleet is refused: removing it would turn every
// subsequent chunk into a fail-open.
func (f *Fleet) DrainRemovePeer(id string, timeout time.Duration) (*RemoteBackend, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	f.peersMu.Lock()
	cur := f.peerList()
	var victim *fleetPeer
	for _, p := range cur {
		if peerMatches(p.b.Peer(), id) {
			victim = p
			break
		}
	}
	if victim == nil {
		f.peersMu.Unlock()
		return nil, fmt.Errorf("engine: fleet has no peer %q", id)
	}
	if len(cur) == 1 && f.opts.Fallback == nil {
		f.peersMu.Unlock()
		return nil, fmt.Errorf("engine: refusing to remove %s: last peer of a fallback-less fleet", victim.b.Peer())
	}
	if PeerState(victim.state.Load()) == PeerDraining {
		f.peersMu.Unlock()
		return nil, fmt.Errorf("engine: peer %s is already draining", victim.b.Peer())
	}
	// stop new placements: the router never picks a non-healthy peer, so
	// flipping the state is the whole admission cut. Evicted/redialing
	// peers fail the CAS and skip straight to removal below.
	draining := victim.state.CompareAndSwap(int32(PeerHealthy), int32(PeerDraining))
	f.peersMu.Unlock()

	if draining {
		// quiesce: every dispatch holds one window slot for its whole try
		// (tryChunk), so InFlight reaching 0 means no chunk is against the
		// peer. A chunk that picked the peer from a pre-drain snapshot but
		// has not acquired yet can slip through; it either completes
		// against the still-listening process or fails over — never open.
		deadline := time.Now().Add(timeout)
		for victim.b.win.Stat().InFlight > 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if victim.b.win.Stat().InFlight > 0 {
			log.Printf("engine: fleet removing %s with chunks still in flight after %v drain", victim.b.Peer(), timeout)
		}
	}

	f.peersMu.Lock()
	cur = f.peerList()
	next := make([]*fleetPeer, 0, len(cur))
	for _, p := range cur {
		if p != victim {
			next = append(next, p)
		}
	}
	f.peers.Store(&next)
	victim.gone.Store(true)
	f.peersMu.Unlock()
	victim.b.Close()
	log.Printf("engine: fleet removed peer %s (%d peers left)", victim.b.Peer(), len(next))
	return victim.b, nil
}

// peerMatches resolves a control-plane peer id against a normalized base
// URL: the full URL or just its host:port both address the peer.
func peerMatches(peerBase, id string) bool {
	if peerBase == id {
		return true
	}
	u, err := url.Parse(peerBase)
	return err == nil && u.Host == id
}

// InferBatchInto dispatches chunks through the supervisor on a fresh
// dispatch lane per batch (round-robin under the static router).
func (f *Fleet) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	lane := int(f.next.Add(1) - 1)
	return f.inferBatch(lane, frames, out, &f.batches, &f.frames, &f.errors)
}

// Replicate hands out the next dispatch-lane ordinal: N serve shards over
// N peers yields a lane per peer under the static router, exactly like
// RemotePool — but the lane fails over instead of failing open. The lane
// is stored raw (not modded) so the router can re-map it when membership
// changes underneath it.
func (f *Fleet) Replicate() Backend {
	return &fleetReplica{f: f, pref: int(f.next.Add(1) - 1)}
}

// Warm pings every peer (logging and counting dead ones — see
// RemoteBackend.Warm) and warms the fallback's arenas.
func (f *Fleet) Warm(maxBatch int) {
	for _, p := range f.peerList() {
		p.b.Warm(maxBatch)
	}
	if f.opts.Fallback != nil {
		f.opts.Fallback.Warm(maxBatch)
	}
}

// Close stops the control plane (waiting out every redialer) and releases
// the peers' connections. The fallback backend is the caller's — typically
// the daemon's serving engine — and is not closed here.
func (f *Fleet) Close() {
	f.closeMu.Lock()
	select {
	case <-f.closed:
	default:
		close(f.closed)
	}
	f.closeMu.Unlock()
	f.redials.Wait()
	for _, p := range f.peerList() {
		p.b.Close()
	}
}

// fleetReplica is a shard's lane into the fleet: its own counters and
// dispatch-lane ordinal, everything else shared.
type fleetReplica struct {
	f    *Fleet
	pref int // lane ordinal; the router maps it to a preferred peer

	batches atomic.Int64
	frames  atomic.Int64
	errors  atomic.Int64
}

func (r *fleetReplica) Name() string  { return r.f.Name() }
func (r *fleetReplica) InputRes() int { return r.f.InputRes() }
func (r *fleetReplica) Stats() Stats {
	return Stats{Batches: r.batches.Load(), Frames: r.frames.Load(), Errors: r.errors.Load()}
}
func (r *fleetReplica) Replicate() Backend { return r.f.Replicate() }
func (r *fleetReplica) Warm(maxBatch int) {
	peers := r.f.peerList()
	if len(peers) == 0 {
		return
	}
	peers[r.f.router.Pin(r.pref, len(peers))].b.Warm(maxBatch)
}
func (r *fleetReplica) Close() {} // the fleet owns the shared transports

// PeerHealth lets a shard replica answer for the whole fleet (the serving
// layer discovers health through any replica).
func (r *fleetReplica) PeerHealth() []PeerHealthInfo { return r.f.PeerHealth() }

// WindowStats lets a shard replica report the whole fleet's windows.
func (r *fleetReplica) WindowStats() []WindowStat { return r.f.WindowStats() }

func (r *fleetReplica) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	return r.f.inferBatch(r.pref, frames, out, &r.batches, &r.frames, &r.errors)
}

// inferBatch chunks a batch through the supervisor on behalf of the fleet
// or one of its replicas, charging the caller's counters.
func (f *Fleet) inferBatch(lane int, frames []*imaging.Bitmap, out []float64, batches, nframes, errs *atomic.Int64) []float64 {
	if len(frames) == 0 {
		return out[:0]
	}
	out = out[:len(frames)]
	for lo := 0; lo < len(frames); lo += BatchChunk {
		hi := lo + BatchChunk
		if hi > len(frames) {
			hi = len(frames)
		}
		if f.dispatchChunk(lane, frames[lo:hi], out[lo:hi]) {
			batches.Add(1)
		} else {
			// Fail open only once every peer and the fallback are gone:
			// score 0 renders the frame, same contract as RemoteBackend.
			for i := lo; i < hi; i++ {
				out[i] = 0
			}
			errs.Add(1)
		}
	}
	nframes.Add(int64(len(frames)))
	return out
}

// dispatchChunk scores one chunk somewhere: the router's pick (hedged),
// failing over across the remaining routable peers, then the local
// fallback. Reports whether a real verdict was produced. The membership
// snapshot is loaded once — the chunk routes against one consistent view.
func (f *Fleet) dispatchChunk(lane int, frames []*imaging.Bitmap, out []float64) bool {
	peers := f.peerList()
	// one wireChunk per dispatch, shared by every failover try and hedge
	// arm: each wire encoding (HTTP body, content keys) is computed at most
	// once no matter how many peers or transports see the chunk
	chunk := f.chunks.get(frames)
	defer f.chunks.put(chunk)

	pref := f.router.Pin(lane, len(peers))
	var tried [8]*fleetPeer // failover path; fleets are small
	ntried := 0
	skip := func(p *fleetPeer) bool {
		for i := 0; i < ntried; i++ {
			if tried[i] == p {
				return true
			}
		}
		return false
	}
	for ntried < len(peers) && ntried < len(tried) {
		p := f.router.Pick(peers, pref, skip, ntried == 0)
		if p == nil {
			break
		}
		if f.sendHedged(peers, p, pref, chunk, out) {
			return true
		}
		tried[ntried] = p
		ntried++
	}
	if f.opts.Fallback != nil {
		f.opts.Fallback.InferBatchInto(frames, out)
		f.fallbacks.Inc()
		return true
	}
	return false
}

// chunkBudget bounds one peer's whole try (retries and backoffs included).
func (f *Fleet) chunkBudget(p *fleetPeer) time.Duration {
	return p.b.timeout * time.Duration(p.b.retries+1)
}

// hedgeDelay derives the tail-latency trigger for a peer: EWMA mean plus
// the HedgeQuantile sigma multiple of the smoothed deviation. Zero means
// "do not hedge" — before any latency signal exists, or with hedging off.
func (f *Fleet) hedgeDelay(p *fleetPeer) time.Duration {
	if f.zHi == 0 || p.lat.N() < 3 {
		return 0
	}
	// Too many consecutive canceled hedge losses: run this chunk unhedged
	// as a live probe (see fleetPeer.consecCancels). The probe's cost is one
	// potential tail spike per EvictAfter hedge wins against a dead peer.
	if p.consecCancels.Load() >= int64(f.opts.EvictAfter) {
		return 0
	}
	ms := p.lat.Value() + f.zHi*p.lat.Deviation()
	d := time.Duration(ms * float64(time.Millisecond))
	if d < f.opts.HedgeMin {
		d = f.opts.HedgeMin
	}
	if f.opts.HedgeMax > 0 && d > f.opts.HedgeMax {
		d = f.opts.HedgeMax
	}
	if budget := f.chunkBudget(p); d > budget {
		d = budget
	}
	return d
}

// hedgeOutcome is one arm's result.
type hedgeOutcome struct {
	peer *fleetPeer
	out  []float64
	err  error
}

// sendHedged runs one chunk against peer p, re-issuing it to the router's
// hedge pick once p's hedge delay expires; the first success cancels the
// other arm. Reports whether the chunk was scored into out; failures are
// recorded against every peer that actually failed.
func (f *Fleet) sendHedged(peers []*fleetPeer, p *fleetPeer, pref int, chunk *wireChunk, out []float64) bool {
	delay := f.hedgeDelay(p)
	arm := func(pr *fleetPeer) (func(), chan hedgeOutcome) {
		ctx, cancel := context.WithTimeout(context.Background(), f.chunkBudget(pr))
		ch := make(chan hedgeOutcome, 1)
		buf := f.getScores(len(out))
		go func() {
			err := pr.b.tryChunk(ctx, chunk, buf)
			ch <- hedgeOutcome{peer: pr, out: buf, err: err}
		}()
		return cancel, ch
	}

	settle := func(o hedgeOutcome, won bool) bool {
		defer f.putScores(o.out)
		if o.err != nil {
			f.recordFailure(o.peer)
			return false
		}
		o.peer.recordSuccess(len(o.out))
		if won {
			copy(out, o.out)
		}
		return won
	}

	cancelP, chP := arm(p)
	defer cancelP()
	var h *fleetPeer
	if delay > 0 {
		h = f.router.Hedge(peers, pref, p)
	}
	if h == nil {
		// no hedge candidate (or hedging unarmed): plain dispatch
		return settle(<-chP, true)
	}
	timer := time.NewTimer(delay)
	select {
	case o := <-chP:
		timer.Stop()
		if settle(o, true) {
			return true
		}
		// primary failed before the hedge fired: fall back to the
		// dispatchChunk failover loop rather than hedging a known failure
		return false
	case <-timer.C:
	}

	// Primary is past its tail trigger: issue the hedge and race the arms.
	// The loser is canceled and always waited out, so no goroutine (or
	// scratch buffer) outlives the chunk. Firing is itself a congestion
	// signal against the primary — it blew past its own tail estimate — so
	// its window backs off (coalesced to one decrease per RTT, so a burst
	// of hedges against a briefly-slow peer is one event, not a collapse).
	p.b.win.OnLoss()
	f.hedges.Inc()
	cancelH, chH := arm(h)
	defer cancelH()
	// finish publishes the winner after draining the canceled loser. A
	// canceled loser's error is not a health signal against its peer (the
	// cancellation raced a possibly-fine request), so only its success is
	// recorded.
	finish := func(winner hedgeOutcome, loserCancel func(), loserCh chan hedgeOutcome, hedgeWon bool) bool {
		loserCancel()
		loser := <-loserCh
		f.putScores(loser.out)
		if loser.err == nil {
			loser.peer.recordSuccess(len(loser.out))
		} else {
			// the cancellation raced a possibly-fine request, so this is not
			// a failure — but the streak feeds the unhedged-probe trigger in
			// hedgeDelay so a dead peer cannot hide behind its hedges forever
			loser.peer.consecCancels.Add(1)
		}
		if hedgeWon {
			winner.peer.hedgeWins.Inc()
			f.hedgeWins.Inc()
		}
		return settle(winner, true)
	}
	select {
	case o := <-chP:
		if o.err == nil {
			return finish(o, cancelH, chH, false)
		}
		// primary failed for real; let the hedge finish the chunk
		settle(o, false)
		return settle(<-chH, true)
	case o := <-chH:
		if o.err == nil {
			return finish(o, cancelP, chP, true)
		}
		settle(o, false)
		return settle(<-chP, true)
	}
}

func (f *Fleet) getScores(n int) []float64 {
	if sp, ok := f.scores.Get().(*[]float64); ok && cap(*sp) >= n {
		return (*sp)[:n]
	}
	return make([]float64, n)
}

func (f *Fleet) putScores(s []float64) {
	s = s[:cap(s)]
	f.scores.Put(&s)
}

// recordFailure advances the supervisor: one more consecutive failure, and
// past EvictAfter the peer trips to evicted and its redialer starts. The
// CAS guarantees exactly one redialer per eviction — and keeps a draining
// or removed peer out of the redial machine entirely.
func (f *Fleet) recordFailure(p *fleetPeer) {
	if p.gone.Load() {
		return
	}
	if p.consecFails.Add(1) < int64(f.opts.EvictAfter) {
		return
	}
	if !p.state.CompareAndSwap(int32(PeerHealthy), int32(PeerEvicted)) {
		return
	}
	p.evictions.Inc()
	// the peer stopped answering entirely: drop its window to the floor so
	// a racing in-flight dispatch cannot stack chunks onto a dead peer
	p.b.win.Collapse()
	log.Printf("engine: fleet evicted %s after %d consecutive failures", p.b.Peer(), p.consecFails.Load())
	f.redials.Add(1)
	go f.redial(p)
}

// redial is the background re-admission state machine for one evicted
// peer: sleep the jittered backoff, probe /modelz, re-admit on a valid
// handshake, double the backoff and stay evicted otherwise. A peer removed
// from the fleet mid-redial is abandoned.
func (f *Fleet) redial(p *fleetPeer) {
	defer f.redials.Done()
	backoff := f.opts.RedialBase
	for {
		timer := time.NewTimer(jitter(backoff))
		select {
		case <-timer.C:
		case <-f.closed:
			timer.Stop()
			return
		}
		if p.gone.Load() {
			return
		}
		p.state.Store(int32(PeerRedialing))
		p.redials.Inc()
		probeStart := time.Now()
		info, err := p.b.handshake(p.b.modelzURL)
		probeRTT := time.Since(probeStart)
		if err == nil && p.b.tr.compatible(info) && info.InputRes == p.b.res {
			if p.gone.Load() {
				return
			}
			// fresh handshake at the right version and resolution: re-admit
			// with a clean slate — stale pre-eviction latency must not arm
			// the hedge trigger against a peer that just came back, and the
			// window restarts in slow start (Reset clears the shared EWMA).
			// The probe's own round trip then seeds the estimator, so the
			// weighted router scores the re-admitted peer off a live
			// measurement instead of a cold optimistic prior.
			p.consecFails.Store(0)
			p.consecCancels.Store(0)
			p.b.win.Reset()
			p.b.win.SeedRTT(probeRTT)
			p.state.Store(int32(PeerHealthy))
			log.Printf("engine: fleet re-admitted %s", p.b.Peer())
			return
		}
		if err == nil {
			// the transport's own compatibility check failed: the peer came
			// back speaking a wire this backend's negotiated transport
			// cannot ride (e.g. socket peer restarted HTTP-only)
			err = fmt.Errorf("handshake wire v%d addr %q res %d incompatible with %s transport (res %d)",
				info.WireVersion, info.WireAddr, info.InputRes, p.b.tr.Kind(), p.b.res)
		}
		p.state.Store(int32(PeerEvicted))
		log.Printf("engine: fleet redial %s failed (next in ~%v): %v", p.b.Peer(), backoff*2, err)
		backoff *= 2
		if backoff > f.opts.RedialMax {
			backoff = f.opts.RedialMax
		}
		select {
		case <-f.closed:
			return
		default:
		}
	}
}

// jitter spreads a delay uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return backoffDelay(1, d, d)
}
