package engine

import (
	"strings"
	"testing"
)

// TestDecodeAdminPeerRequest pins the strict-decode contract: valid bodies
// round-trip, and every rejection class — empty, schemeless garbage,
// unknown fields, trailing data, bad transports — is an error, not a
// zero-value request that mutates topology.
func TestDecodeAdminPeerRequest(t *testing.T) {
	req, err := DecodeAdminPeerRequest(strings.NewReader(`{"addr":"h1:8093"}`))
	if err != nil || req.Addr != "h1:8093" {
		t.Fatalf("plain addr: %+v, %v", req, err)
	}
	req, err = DecodeAdminPeerRequest(strings.NewReader(`{"addr":"http://h1:8093","transport":"socket"}`))
	if err != nil || req.Transport != "socket" {
		t.Fatalf("full addr: %+v, %v", req, err)
	}
	for name, body := range map[string]string{
		"empty object":    `{}`,
		"blank addr":      `{"addr":"  "}`,
		"bad scheme":      `{"addr":"ftp://h1:8093"}`,
		"no host":         `{"addr":"http://"}`,
		"bad transport":   `{"addr":"h1:8093","transport":"carrier-pigeon"}`,
		"unknown field":   `{"addr":"h1:8093","evil":true}`,
		"trailing data":   `{"addr":"h1:8093"}{"addr":"h2:8093"}`,
		"not json":        `addr=h1`,
		"wrong addr type": `{"addr":42}`,
	} {
		if _, err := DecodeAdminPeerRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted: %s", name, body)
		}
	}
}

// TestDecodeAdminCanaryRequest pins the canary body's range checks.
func TestDecodeAdminCanaryRequest(t *testing.T) {
	req, err := DecodeAdminCanaryRequest(strings.NewReader(
		`{"candidate":"int8","fraction":0.1,"floor":0.995,"hold_window":128,"min_samples":32}`))
	if err != nil || req.Candidate != "int8" || req.HoldWindow != 128 {
		t.Fatalf("valid body: %+v, %v", req, err)
	}
	for name, body := range map[string]string{
		"no candidate":     `{"fraction":0.1}`,
		"fraction > 1":     `{"candidate":"x","fraction":1.5}`,
		"negative floor":   `{"candidate":"x","floor":-0.1}`,
		"window too large": `{"candidate":"x","hold_window":1048577}`,
		"negative samples": `{"candidate":"x","min_samples":-1}`,
		"unknown field":    `{"candidate":"x","promote_now":true}`,
	} {
		if _, err := DecodeAdminCanaryRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted: %s", name, body)
		}
	}
}

// FuzzAdminRequest drives both admin decoders with arbitrary bytes. They
// parse the authenticated-but-network-reachable control-plane bodies, so
// the contract is: never panic, never allocate past the body cap, and
// anything that does decode satisfies the validated invariants (a parseable
// peer address, knobs inside their ranges) — a fuzzer-found violation here
// is a topology mutation a hostile admin payload could have caused.
func FuzzAdminRequest(f *testing.F) {
	f.Add([]byte(`{"addr":"h1:8093"}`))
	f.Add([]byte(`{"addr":"https://h1:8093","transport":"auto"}`))
	f.Add([]byte(`{"candidate":"int8","fraction":0.05,"floor":0.99,"hold_window":256,"min_samples":64}`))
	f.Add([]byte(`{"addr":42}`))
	f.Add([]byte(`{"candidate":"x","hold_window":-1}`))
	f.Add([]byte(`{"addr":"h1:8093"}garbage`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeAdminPeerRequest(strings.NewReader(string(data))); err == nil {
			if strings.TrimSpace(req.Addr) == "" {
				t.Fatalf("decoded peer request with blank addr: %+v", req)
			}
			switch req.Transport {
			case "", "auto", "http", "socket":
			default:
				t.Fatalf("decoded peer request with transport %q", req.Transport)
			}
		}
		if req, err := DecodeAdminCanaryRequest(strings.NewReader(string(data))); err == nil {
			if strings.TrimSpace(req.Candidate) == "" {
				t.Fatalf("decoded canary request with blank candidate: %+v", req)
			}
			if req.Fraction < 0 || req.Fraction > 1 || req.Floor < 0 || req.Floor > 1 {
				t.Fatalf("decoded canary request outside [0,1]: %+v", req)
			}
			if req.HoldWindow < 0 || req.HoldWindow > adminMaxWindow ||
				req.MinSamples < 0 || req.MinSamples > adminMaxWindow {
				t.Fatalf("decoded canary request outside window bounds: %+v", req)
			}
		}
	})
}
