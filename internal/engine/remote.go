package engine

// RemoteBackend proxies InferBatchInto to another percival-serve over HTTP,
// so one daemon can front a fleet of model processes: the front keeps the
// serving edge (decode, batching, verdict cache, shedding) and the peers
// keep the arenas and the weights. It is an ordinary Backend — serve shards
// replicate it exactly like the in-process engines — and it rides the wire
// surface defined in remotehttp.go.
//
// Failure semantics are fail-open: classification guards rendering, so a
// peer that cannot be reached within the retry budget must never block or
// break the page. A failed chunk resolves every frame to score 0 ("not an
// ad", render it) and counts one Stats.Errors — the same contract as
// serve's StatusShed, applied at the transport layer.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"percival/internal/imaging"
)

// RemoteOptions tunes a RemoteBackend. The zero value gets defaults from
// NewRemote.
type RemoteOptions struct {
	// Timeout bounds each HTTP attempt, handshake included (default 5s).
	Timeout time.Duration
	// Retries is how many times a failed batch attempt is re-sent before
	// the chunk fails open. The zero value means no retries — the value
	// given is the value used (percival-serve's -peer-retries flag carries
	// the daemon default of 2); negative values are treated as 0.
	Retries int
	// RetryBackoff is the base delay before the first retry; further
	// attempts back off exponentially (base, 2x, 4x, ...) with +/-50%
	// jitter so a struggling peer is never hammered by an instant retry
	// storm (default 10ms). Capped at RetryBackoffMax (default 250ms).
	// A retry whose backoff would outlive the chunk's overall deadline is
	// skipped — the chunk fails over immediately instead of sleeping into
	// a guaranteed timeout.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Model selects a named backend on the peer (?model=); empty serves
	// the peer's default.
	Model string
	// ExpectRes, when non-zero, rejects a peer whose input resolution
	// differs — the proxy's frames would be pre-processed for the wrong
	// network.
	ExpectRes int
	// Client overrides the HTTP client. Replicas share their parent's
	// client, so a fleet of shard replicas reuses one connection pool.
	Client *http.Client
	// WindowMax caps the peer's adaptive in-flight congestion window
	// (default 64 chunks). The window starts small, grows CUBIC-style on
	// RTT-sample success, and backs off multiplicatively on timeouts and
	// hedge fires — see CubicWindow. All replicas of one backend share one
	// window, so every lane sees one congestion picture per peer.
	WindowMax int
	// Transport picks the wire: "http" forces the v1 POST-per-chunk wire,
	// "socket" requires the v2 persistent-socket wire (dial fails if the
	// peer does not advertise it), and "auto" (or empty) takes the best
	// wire the peer's handshake supports. A Model selection always rides
	// HTTP: the socket wire serves the peer's default backend only.
	Transport string
	// NoDedup disables the socket wire's hash-first probe tier: every
	// frame's pixels cross the wire even when the peer's verdict cache
	// already knows the answer. For measurement; dedup never changes
	// scores (the probe key is an exact content hash).
	NoDedup bool
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 250 * time.Millisecond
	}
	if o.WindowMax <= 0 {
		o.WindowMax = windowDefaultMax
	}
	if o.Client == nil {
		// net/http's DefaultMaxIdleConnsPerHost is 2: with a congestion
		// window of dozens of in-flight chunks to one peer, every burst
		// would churn fresh TCP connections and then close all but two.
		// Size the idle pool to the window so a full window's connections
		// survive between bursts.
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * o.WindowMax,
			MaxIdleConnsPerHost: o.WindowMax,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// RemoteBackend is a Backend whose forward passes run on a peer
// percival-serve reached over the negotiated transport (HTTP v1 or the
// persistent-socket v2 wire). Safe for concurrent use.
type RemoteBackend struct {
	peer       string // normalized base URL ("http://host:port")
	batchURL   string // POST target incl. ?model=
	modelzURL  string // GET handshake target incl. ?model=
	name       string
	instanceID string // peer daemon's per-process identity (may be "")
	res        int
	timeout    time.Duration
	retries    int
	backoff    time.Duration
	backoffMax time.Duration
	client     *http.Client // handshake client; also the HTTP transport's
	tr         Transport    // shared across replicas, like client and win
	chunks     *chunkPool   // shared across replicas: amortized chunk bodies
	win        *CubicWindow // shared across replicas: one window per peer

	batches atomic.Int64
	frames  atomic.Int64
	errors  atomic.Int64
}

// NewRemote dials peer ("host:port" or a full URL), performs the GET
// /modelz handshake to learn the engine name and input resolution, and
// returns the proxy backend. The handshake must succeed: registering an
// unreachable or mismatched peer is a deployment error, not a runtime
// condition to fail open on.
func NewRemote(peer string, opts RemoteOptions) (*RemoteBackend, error) {
	opts = opts.withDefaults()
	if !strings.Contains(peer, "://") {
		peer = "http://" + peer
	}
	u, err := url.Parse(peer)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("engine: remote peer %q: invalid address", peer)
	}
	base := u.Scheme + "://" + u.Host
	b := &RemoteBackend{
		peer:       base,
		timeout:    opts.Timeout,
		retries:    opts.Retries,
		backoff:    opts.RetryBackoff,
		backoffMax: opts.RetryBackoffMax,
		client:     opts.Client,
		chunks:     &chunkPool{},
		win:        NewCubicWindow(WindowOptions{Max: float64(opts.WindowMax)}),
	}
	b.batchURL = base + "/classify/batch"
	b.modelzURL = base + "/modelz"
	if opts.Model != "" {
		q := "?model=" + url.QueryEscape(opts.Model)
		b.batchURL += q
		b.modelzURL += q
	}
	dialStart := time.Now()
	info, err := b.handshake(b.modelzURL)
	if err != nil {
		return nil, fmt.Errorf("engine: remote peer %s: %w", u.Host, err)
	}
	// the handshake round trip seeds the latency EWMA so the peer enters
	// the fleet warm — the weighted router and hedging would otherwise fly
	// blind until dispatch samples converge (see CubicWindow.SeedRTT)
	b.win.SeedRTT(time.Since(dialStart))
	if !wireCompatible(info.WireVersion) {
		// refuse a version-skewed fleet at dial time: a peer outside the
		// compatibility range would deterministically reject every batch,
		// failing all traffic open while looking healthy
		return nil, fmt.Errorf("engine: remote peer %s speaks wire version %d, want %d..%d",
			u.Host, info.WireVersion, wireVersion, wireVersionSock)
	}
	if info.InputRes <= 0 {
		return nil, fmt.Errorf("engine: remote peer %s: input resolution %d", u.Host, info.InputRes)
	}
	if opts.ExpectRes > 0 && info.InputRes != opts.ExpectRes {
		return nil, fmt.Errorf("engine: remote peer %s serves res %d, want %d",
			u.Host, info.InputRes, opts.ExpectRes)
	}
	b.res = info.InputRes
	b.instanceID = info.InstanceID
	b.name = "remote:" + info.Engine + "@" + u.Host
	if b.tr, err = pickTransport(opts, u.Host, info, b); err != nil {
		return nil, err
	}
	return b, nil
}

// pickTransport negotiates the wire from the dialing side's preference and
// the peer's handshake. The socket wire needs the peer to speak v2 AND
// advertise a listener AND serve its default backend (?model= has no socket
// equivalent); everything else rides HTTP v1.
func pickTransport(opts RemoteOptions, host string, info ModelzInfo, b *RemoteBackend) (Transport, error) {
	sockable := info.WireVersion >= wireVersionSock && info.WireAddr != "" && opts.Model == ""
	switch opts.Transport {
	case "", "auto":
		if !sockable {
			return newHTTPTransport(b.peer, b.batchURL, b.client), nil
		}
	case "http":
		return newHTTPTransport(b.peer, b.batchURL, b.client), nil
	case "socket":
		if !sockable {
			return nil, fmt.Errorf("engine: remote peer %s: socket transport requested but peer offers wire v%d addr %q model %q",
				host, info.WireVersion, info.WireAddr, opts.Model)
		}
	default:
		return nil, fmt.Errorf("engine: remote transport %q (want auto, http or socket)", opts.Transport)
	}
	return newSockTransport(resolveWireAddr(host, info.WireAddr), b.peer, !opts.NoDedup), nil
}

// handshake fetches and decodes the peer's /modelz document.
func (b *RemoteBackend) handshake(modelzURL string) (ModelzInfo, error) {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, modelzURL, nil)
	if err != nil {
		return ModelzInfo{}, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return ModelzInfo{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return ModelzInfo{}, fmt.Errorf("modelz: %s", resp.Status)
	}
	var info ModelzInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return ModelzInfo{}, fmt.Errorf("modelz: %w", err)
	}
	return info, nil
}

// Name identifies the proxied engine and its peer
// ("remote:fp32@10.0.0.7:8093").
func (b *RemoteBackend) Name() string { return b.name }

// Peer returns the normalized peer base URL.
func (b *RemoteBackend) Peer() string { return b.peer }

// InstanceID returns the peer daemon's per-process identity from the dial
// handshake ("" when the peer predates the field). Dialers use it to
// reject self-dials: a -peers or /admin/peers address that loops back to
// the dialing daemon would score every chunk through an infinite proxy
// recursion.
func (b *RemoteBackend) InstanceID() string { return b.instanceID }

// InputRes is the peer's network input resolution (from the handshake).
func (b *RemoteBackend) InputRes() int { return b.res }

// Stats reports proxied batches/frames and the fail-open error count.
func (b *RemoteBackend) Stats() Stats {
	return Stats{Batches: b.batches.Load(), Frames: b.frames.Load(), Errors: b.errors.Load()}
}

// InferBatchInto proxies frames to the peer in BatchChunk-sized requests —
// one forward pass per request on the peer — and fails open (score 0) for
// any chunk still failing after the retry budget.
func (b *RemoteBackend) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	if len(frames) == 0 {
		return out[:0]
	}
	out = out[:len(frames)]
	for lo := 0; lo < len(frames); lo += BatchChunk {
		hi := lo + BatchChunk
		if hi > len(frames) {
			hi = len(frames)
		}
		b.inferChunk(frames[lo:hi], out[lo:hi])
	}
	b.frames.Add(int64(len(frames)))
	return out
}

func (b *RemoteBackend) inferChunk(frames []*imaging.Bitmap, out []float64) {
	chunk := b.chunks.get(frames)
	defer b.chunks.put(chunk)
	// overall chunk budget: one per-attempt timeout per attempt; backoff
	// sleeps spend from the same budget, so a retry that cannot finish in
	// time is abandoned early rather than slept into
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout*time.Duration(b.retries+1))
	defer cancel()
	if err := b.tryChunk(ctx, chunk, out); err != nil {
		// Fail open: the peer cannot score this chunk and the verdict is
		// unknown. Score 0 renders the frame — the serving edge's shed
		// semantics, applied here.
		for i := range out {
			out[i] = 0
		}
		b.errors.Add(1)
	}
}

// tryChunk runs the retry loop of one encoded chunk against this peer:
// bounded exponential backoff with jitter between attempts, bailing out as
// soon as ctx's deadline would be exceeded. Unlike inferChunk it reports
// failure instead of failing open — the fleet layer re-routes a failed
// chunk to another replica before giving up on a verdict.
//
// The whole try holds one slot of the peer's congestion window: a peer
// whose window has shrunk takes proportionally fewer chunks in flight, and
// every attempt's round trip feeds the window (growth on success, backoff
// on a failed attempt) so the in-flight bound tracks what the peer can
// actually absorb.
func (b *RemoteBackend) tryChunk(ctx context.Context, chunk *wireChunk, out []float64) error {
	if !b.win.Acquire(ctx) {
		// the window never opened within the chunk budget: the peer is
		// saturated, which the caller treats like any other chunk failure
		// (the fleet fails over; standalone use fails open)
		return fmt.Errorf("engine: peer %s: congestion window saturated: %w", b.peer, ctx.Err())
	}
	defer b.win.Release()
	var lastErr error
	for attempt := 0; attempt <= b.retries; attempt++ {
		if attempt > 0 {
			delay := backoffDelay(attempt, b.backoff, b.backoffMax)
			if dl, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(dl) {
				return lastErr // the backoff alone would outlive the budget
			}
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return lastErr
			}
		}
		start := time.Now()
		retryable, err := b.attempt(ctx, chunk, out)
		if err == nil {
			b.batches.Add(1)
			b.win.OnSuccess(time.Since(start))
			return nil
		}
		if ctx.Err() != context.Canceled {
			// a canceled hedge loser is not a congestion signal — the
			// cancellation raced a possibly-fine request; everything else
			// (timeout, transport error, 5xx) backs the window off
			b.win.OnLoss()
		}
		lastErr = err
		if !retryable {
			// a 4xx is the peer rejecting this exact request; re-sending
			// the same body cannot succeed
			return err
		}
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// backoffDelay is the exponential retry ladder: base doubled per attempt,
// capped at ceil, with +/-50% jitter so synchronized failures do not retry
// in lockstep.
func backoffDelay(attempt int, base, ceil time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	if d <= 0 {
		return 0
	}
	// uniform in [d/2, 3d/2)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// attempt runs one transport attempt of a chunk, bounded by the RTO-capped
// per-attempt timeout and the caller's context (hedged dispatch cancels the
// losing attempt through it). retryable reports whether a further attempt
// could succeed (transport errors and 5xx yes, peer rejections no).
func (b *RemoteBackend) attempt(ctx context.Context, chunk *wireChunk, out []float64) (retryable bool, err error) {
	timeout := b.timeout
	if rto := b.win.RTO(); rto > 0 && rto < timeout {
		// adaptive RTO: once the RTT estimator has warmed up, an attempt
		// that has outlived mean+4·dev is almost certainly lost — retry it
		// (or fail over) instead of sleeping out the configured ceiling.
		// Living here rather than in the transports keeps the loss-detection
		// contract identical across wires.
		timeout = rto
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return b.tr.roundTrip(ctx, chunk, out)
}

// Window returns the peer's shared congestion window.
func (b *RemoteBackend) Window() *CubicWindow { return b.win }

// WindowStats reports this peer's window state (WindowReporter).
func (b *RemoteBackend) WindowStats() []WindowStat {
	st := b.win.Stat()
	st.Peer = b.peer
	return []WindowStat{st}
}

// TransportStats reports the negotiated transport's byte and dedup
// accounting (shared across replicas, like the transport itself).
func (b *RemoteBackend) TransportStats() TransportStats { return b.tr.Stats() }

// Replicate returns a proxy to the same peer sharing this backend's
// transport (one connection picture per peer), chunk pool and congestion
// window with its own counters — the per-shard replica serve dispatch
// wants.
func (b *RemoteBackend) Replicate() Backend {
	return &RemoteBackend{
		peer:       b.peer,
		batchURL:   b.batchURL,
		modelzURL:  b.modelzURL,
		name:       b.name,
		instanceID: b.instanceID,
		res:        b.res,
		timeout:    b.timeout,
		retries:    b.retries,
		backoff:    b.backoff,
		backoffMax: b.backoffMax,
		client:     b.client,
		tr:         b.tr,
		chunks:     b.chunks,
		win:        b.win,
	}
}

// Warm pings the peer so a live connection exists before the first real
// dispatch: the /modelz handshake warms the HTTP pool, and the transport
// pre-establishes whatever else it needs (the socket wire dials its hot
// connection). The peer warms its own arenas at startup. A peer that is
// already dead at warm time is an operational signal, not a silent no-op:
// the failure is logged and counted in Stats.Errors so it shows up on
// /metrics before the first real dispatch discovers it.
func (b *RemoteBackend) Warm(maxBatch int) {
	ctx, cancel := context.WithTimeout(context.Background(), b.timeout)
	defer cancel()
	if _, err := b.handshake(b.modelzURL); err != nil {
		b.errors.Add(1)
		log.Printf("engine: warm %s: %v", b.peer, err)
	} else if err := b.tr.warm(ctx); err != nil {
		b.errors.Add(1)
		log.Printf("engine: warm %s: %v", b.peer, err)
	}
}

// Close releases the transport's connections. The transport is shared and
// non-terminal: sibling replicas stay usable (the next dispatch
// re-establishes what it needs) and Close is idempotent.
func (b *RemoteBackend) Close() { b.tr.Close() }

// drainClose consumes the rest of an HTTP response body so the connection
// can be reused, then closes it.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

// RemotePool fronts several remote peers as one Backend: Replicate hands
// out the next peer round-robin; calls on the pool itself round-robin per
// batch. InferBatchInto fails open per peer, so one dead replica sheds
// only the traffic routed to it. Most callers want Fleet instead — same
// round-robin pinning, but with health-gated eviction, failover, redial
// and hedging; the pool remains for the fail-fast-per-lane semantics
// (`percival-serve -peers` builds a Fleet since PR 6).
type RemotePool struct {
	peers []*RemoteBackend
	next  atomic.Int64
}

// NewRemotePool builds a pool over peers, which must all serve the same
// input resolution.
func NewRemotePool(peers []*RemoteBackend) (*RemotePool, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("engine: remote pool needs at least one peer")
	}
	res := peers[0].InputRes()
	for _, p := range peers[1:] {
		if p.InputRes() != res {
			return nil, fmt.Errorf("engine: remote pool mixes resolutions %d and %d (%s)",
				res, p.InputRes(), p.Name())
		}
	}
	return &RemotePool{peers: peers}, nil
}

// Peers returns the pooled backends (stats introspection).
func (p *RemotePool) Peers() []*RemoteBackend { return p.peers }

// WindowStats reports every pooled peer's congestion window state.
func (p *RemotePool) WindowStats() []WindowStat {
	out := make([]WindowStat, len(p.peers))
	for i, b := range p.peers {
		out[i] = b.WindowStats()[0]
	}
	return out
}

// Name identifies the pool and its size.
func (p *RemotePool) Name() string { return fmt.Sprintf("remote-pool(%d)", len(p.peers)) }

// InputRes is the shared peer resolution.
func (p *RemotePool) InputRes() int { return p.peers[0].InputRes() }

func (p *RemotePool) pick() *RemoteBackend {
	return p.peers[int(p.next.Add(1)-1)%len(p.peers)]
}

// InferBatchInto routes the batch to the next peer round-robin.
func (p *RemotePool) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	return p.pick().InferBatchInto(frames, out)
}

// Replicate pins the next peer round-robin: N serve shards over N peers
// yields exactly one shard lane per remote replica.
func (p *RemotePool) Replicate() Backend { return p.pick().Replicate() }

// Warm pings every peer.
func (p *RemotePool) Warm(maxBatch int) {
	for _, b := range p.peers {
		b.Warm(maxBatch)
	}
}

// Close releases every peer's idle connections.
func (p *RemotePool) Close() {
	for _, b := range p.peers {
		b.Close()
	}
}

// Stats aggregates the peers' counters.
func (p *RemotePool) Stats() Stats {
	var s Stats
	for _, b := range p.peers {
		ps := b.Stats()
		s.Batches += ps.Batches
		s.Frames += ps.Frames
		s.Errors += ps.Errors
	}
	return s
}
