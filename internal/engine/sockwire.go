package engine

// Wire v2: the persistent-socket transport. One hot TCP connection per
// peer carries multiplexed request/response messages (the PCVB/PCVS
// encoding from remotehttp.go, grown a request-ID and a flags word — the
// full format is documented in remotehttp.go's header comment), replacing
// one HTTP exchange per chunk with framed messages on a connection that
// never goes cold. Request IDs let responses return out of order, so the
// CUBIC congestion window's in-flight chunks really are concurrently in
// flight on one connection; a request that outlives its RTO deadline is
// abandoned client-side (its ID is forgotten; a late response is dropped)
// and feeds the window as a loss, exactly like a timed-out HTTP attempt.
//
// On top of the framing sits the hash-first dedup tier: a probe message
// carries each frame's content key + perceptual hash, the peer answers
// what its verdict cache already knows, and only the misses are sent as
// (keyed) pixels. On cache-warm traffic a ~200 KB frame costs 40 bytes on
// the wire. Pixels that do travel are written straight from each frame's
// backing buffer to the socket — no per-chunk body assembly.
//
// sockettransport-style stream framing (see ndn-dpdk): the reader is a
// single goroutine per connection that routes responses to waiters by ID;
// writers serialize whole messages under a write lock. A protocol error
// anywhere kills the connection — a byte stream that lost framing cannot
// resync — and the next round trip redials.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"math/bits"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/imaging"
)

const (
	// sockHeaderLen is the v2 message prefix: magic, version, id, flags,
	// count.
	sockHeaderLen = 4 + 2 + 4 + 4 + 4
	// sockFlagProbe marks a request as a hash probe (keys + phashes, no
	// pixels); sockFlagMask marks a response as a probe answer (hit bitmask
	// + scores for the set bits). Any other flag bit is a protocol error.
	sockFlagProbe = 1 << 0
	sockFlagMask  = 1 << 0
	// wireKeyLen is the content-key length (imaging.ContentKey).
	wireKeyLen = 32
	// probeEntryLen is one probe entry: content key + perceptual hash.
	probeEntryLen = wireKeyLen + 8
	// maxSockPixelBytes bounds one pixel message's total pixel payload —
	// the same budget the HTTP endpoint enforces via MaxBytesReader.
	maxSockPixelBytes = int64(BatchChunk) * maxWireFrameBytes
	// sockBufSize sizes the per-connection read/write buffers.
	sockBufSize = 64 << 10
)

// putSockHeader writes a v2 message header into dst[:sockHeaderLen].
func putSockHeader(dst []byte, magic string, id, flags, count uint32) {
	copy(dst[:4], magic)
	binary.LittleEndian.PutUint16(dst[4:6], wireVersionSock)
	binary.LittleEndian.PutUint32(dst[6:10], id)
	binary.LittleEndian.PutUint32(dst[10:14], flags)
	binary.LittleEndian.PutUint32(dst[14:18], count)
}

// sockReq is one decoded v2 request: a hash probe (keys+phash) or a keyed
// pixel batch (keys+frames).
type sockReq struct {
	id     uint32
	probe  bool
	keys   [][32]byte
	phash  []uint64
	frames []*imaging.Bitmap
}

// readSockRequest decodes one request message from the stream, validating
// every bound before allocating. This is the server's untrusted-input
// surface (fuzzed by FuzzWireMsg).
func readSockRequest(r io.Reader) (*sockReq, error) {
	var hdr [sockHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("engine: wire request header: %w", err)
	}
	if string(hdr[:4]) != batchMagic {
		return nil, fmt.Errorf("engine: not a wire request (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersionSock {
		return nil, fmt.Errorf("engine: wire request version %d, want %d", v, wireVersionSock)
	}
	req := &sockReq{id: binary.LittleEndian.Uint32(hdr[6:10])}
	flags := binary.LittleEndian.Uint32(hdr[10:14])
	count := binary.LittleEndian.Uint32(hdr[14:18])
	if flags != 0 && flags != sockFlagProbe {
		return nil, fmt.Errorf("engine: wire request flags %#x", flags)
	}
	if count == 0 || count > maxWireFrames {
		return nil, fmt.Errorf("engine: wire request of %d entries (1..%d)", count, maxWireFrames)
	}
	req.keys = make([][32]byte, count)
	if flags&sockFlagProbe != 0 {
		req.probe = true
		req.phash = make([]uint64, count)
		var ent [probeEntryLen]byte
		for i := range req.keys {
			if _, err := io.ReadFull(r, ent[:]); err != nil {
				return nil, fmt.Errorf("engine: probe entry %d: %w", i, err)
			}
			copy(req.keys[i][:], ent[:wireKeyLen])
			req.phash[i] = binary.LittleEndian.Uint64(ent[wireKeyLen:])
		}
		return req, nil
	}
	req.frames = make([]*imaging.Bitmap, 0, count)
	var total int64
	for i := uint32(0); i < count; i++ {
		var fh [wireKeyLen + 8]byte
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			return nil, fmt.Errorf("engine: wire frame %d header: %w", i, err)
		}
		copy(req.keys[i][:], fh[:wireKeyLen])
		w := int(binary.LittleEndian.Uint32(fh[wireKeyLen : wireKeyLen+4]))
		h := int(binary.LittleEndian.Uint32(fh[wireKeyLen+4:]))
		// int64 bound math, like decodeFrames: w*h*4 wraps on 32-bit
		if w <= 0 || h <= 0 || w > maxWireEdge || h > maxWireEdge || int64(w)*int64(h)*4 > maxWireFrameBytes {
			return nil, fmt.Errorf("engine: wire frame %d is %dx%d", i, w, h)
		}
		if total += int64(w) * int64(h) * 4; total > maxSockPixelBytes {
			return nil, fmt.Errorf("engine: wire request pixel payload exceeds %d bytes", maxSockPixelBytes)
		}
		b := imaging.NewBitmap(w, h)
		if _, err := io.ReadFull(r, b.Pix); err != nil {
			return nil, fmt.Errorf("engine: wire frame %d pixels: %w", i, err)
		}
		req.frames = append(req.frames, b)
	}
	return req, nil
}

// sockResp is one decoded v2 response: either plain scores (count of them)
// or a probe answer (hit mask over count entries, scores for the set bits).
type sockResp struct {
	id     uint32
	masked bool
	count  int
	mask   []byte
	scores []float64
}

// wireSize is the response's on-the-wire byte count (accounting).
func (r sockResp) wireSize() int64 {
	return int64(sockHeaderLen + len(r.mask) + 8*len(r.scores))
}

// readSockResponse decodes one response message from the stream (the
// client side of the fuzzed surface).
func readSockResponse(r io.Reader) (sockResp, error) {
	var hdr [sockHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return sockResp{}, fmt.Errorf("engine: wire response header: %w", err)
	}
	if string(hdr[:4]) != scoreMagic {
		return sockResp{}, fmt.Errorf("engine: not a wire response (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersionSock {
		return sockResp{}, fmt.Errorf("engine: wire response version %d, want %d", v, wireVersionSock)
	}
	resp := sockResp{id: binary.LittleEndian.Uint32(hdr[6:10])}
	flags := binary.LittleEndian.Uint32(hdr[10:14])
	count := binary.LittleEndian.Uint32(hdr[14:18])
	if flags != 0 && flags != sockFlagMask {
		return sockResp{}, fmt.Errorf("engine: wire response flags %#x", flags)
	}
	if count == 0 || count > maxWireFrames {
		return sockResp{}, fmt.Errorf("engine: wire response of %d entries (1..%d)", count, maxWireFrames)
	}
	resp.count = int(count)
	nscores := resp.count
	if flags&sockFlagMask != 0 {
		resp.masked = true
		resp.mask = make([]byte, (count+7)/8)
		if _, err := io.ReadFull(r, resp.mask); err != nil {
			return sockResp{}, fmt.Errorf("engine: wire response mask: %w", err)
		}
		nscores = 0
		for i, m := range resp.mask {
			if i == len(resp.mask)-1 {
				// bits past count must be clear, or the score count is
				// ambiguous
				if extra := len(resp.mask)*8 - resp.count; extra > 0 && m>>(8-extra) != 0 {
					return sockResp{}, fmt.Errorf("engine: wire response mask sets bits past entry %d", count)
				}
			}
			nscores += bits.OnesCount8(m)
		}
	}
	resp.scores = make([]float64, nscores)
	var buf [8]byte
	for i := range resp.scores {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sockResp{}, fmt.Errorf("engine: wire response score %d: %w", i, err)
		}
		resp.scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return resp, nil
}

// sockResult delivers a response (or the connection's fatal error) to the
// round trip waiting on its request ID.
type sockResult struct {
	resp sockResp
	err  error
}

// sockTransport is the wire-v2 client: one hot connection, lazily dialed
// and redialed, multiplexing round trips by request ID. Shared across a
// peer's replicas like the HTTP client and the congestion window.
type sockTransport struct {
	addr  string // wire listener address, resolved against the peer host
	peer  string // peer base URL, for error text
	dedup bool

	mu      sync.Mutex // connection lifecycle + pending table + nextID
	wmu     sync.Mutex // serializes whole-message writes (never held with mu)
	conn    net.Conn
	bw      *bufio.Writer
	pending map[uint32]chan sockResult
	nextID  uint32

	stats transportCounters
}

func newSockTransport(addr, peer string, dedup bool) *sockTransport {
	return &sockTransport{
		addr:    addr,
		peer:    peer,
		dedup:   dedup,
		pending: make(map[uint32]chan sockResult),
	}
}

func (t *sockTransport) Kind() string          { return "socket" }
func (t *sockTransport) Stats() TransportStats { return t.stats.snapshot("socket") }

// Close drops the hot connection, failing the in-flight round trips.
// Sibling replicas sharing the transport stay usable: the next round trip
// redials.
func (t *sockTransport) Close() {
	t.mu.Lock()
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		t.dropConn(conn, net.ErrClosed)
	}
}

// warm pre-dials the connection so the first dispatch pays no setup.
func (t *sockTransport) warm(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		return nil
	}
	return t.dialLocked(ctx)
}

// compatible requires the peer to still speak v2 and advertise a listener:
// a peer that came back HTTP-only cannot serve this transport.
func (t *sockTransport) compatible(info ModelzInfo) bool {
	return info.WireVersion >= wireVersionSock && info.WireAddr != ""
}

// dialLocked establishes the connection and starts its reader. Caller
// holds t.mu.
func (t *sockTransport) dialLocked(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return fmt.Errorf("engine: peer %s wire dial %s: %w", t.peer, t.addr, err)
	}
	t.conn = conn
	t.bw = bufio.NewWriterSize(conn, sockBufSize)
	t.stats.dials.Add(1)
	go t.readLoop(conn, bufio.NewReaderSize(conn, sockBufSize))
	return nil
}

// dropConn retires a dead connection: in-flight round trips fail with err
// (they retry through the window machinery) and the next call redials. A
// stale conn — already replaced — is just closed.
func (t *sockTransport) dropConn(conn net.Conn, err error) {
	t.mu.Lock()
	if t.conn == conn {
		t.conn, t.bw = nil, nil
		for id, ch := range t.pending {
			delete(t.pending, id)
			ch <- sockResult{err: err}
		}
	}
	t.mu.Unlock()
	conn.Close()
}

// readLoop is the connection's single reader: it routes responses to their
// waiting round trips by ID. A response whose ID is unknown answers a
// request that already timed out client-side — dropped, the timeout was
// the loss signal.
func (t *sockTransport) readLoop(conn net.Conn, br *bufio.Reader) {
	for {
		resp, err := readSockResponse(br)
		if err != nil {
			t.dropConn(conn, err)
			return
		}
		t.stats.bytesIn.Add(resp.wireSize())
		t.mu.Lock()
		ch := t.pending[resp.id]
		delete(t.pending, resp.id)
		t.mu.Unlock()
		if ch != nil {
			ch <- sockResult{resp: resp}
		}
	}
}

// call runs one request/response exchange: register a pending ID, write
// the message (size bytes, for accounting), await the routed response.
// ctx expiry abandons the ID — in-flight accounting for the congestion
// window stays with the caller, which holds the window slot.
func (t *sockTransport) call(ctx context.Context, size int64, write func(bw *bufio.Writer, id uint32) error) (sockResp, error) {
	t.mu.Lock()
	if t.conn == nil {
		if err := t.dialLocked(ctx); err != nil {
			t.mu.Unlock()
			return sockResp{}, err
		}
	}
	conn, bw := t.conn, t.bw
	t.nextID++
	id := t.nextID
	ch := make(chan sockResult, 1)
	t.pending[id] = ch
	t.mu.Unlock()

	t.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(dl)
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	err := write(bw, id)
	if err == nil {
		err = bw.Flush()
	}
	t.wmu.Unlock()
	if err != nil {
		t.dropConn(conn, err)
		return sockResp{}, err
	}
	t.stats.bytesOut.Add(size)
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
		return sockResp{}, ctx.Err()
	}
}

// roundTrip scores one chunk over the socket: hash probe first (when dedup
// is on), then pixels for the misses only. Every socket failure is
// retryable — the retry redials.
func (t *sockTransport) roundTrip(ctx context.Context, chunk *wireChunk, out []float64) (retryable bool, err error) {
	frames := chunk.frames
	t.stats.chunks.Add(1)
	var missArr [BatchChunk]int
	miss := missArr[:0]
	keys, phash := chunk.contentKeys()
	if t.dedup {
		n := len(keys)
		size := int64(sockHeaderLen + n*probeEntryLen)
		resp, err := t.call(ctx, size, func(bw *bufio.Writer, id uint32) error {
			var hdr [sockHeaderLen]byte
			putSockHeader(hdr[:], batchMagic, id, sockFlagProbe, uint32(n))
			bw.Write(hdr[:])
			var pb [8]byte
			for i := range keys {
				bw.Write(keys[i][:])
				binary.LittleEndian.PutUint64(pb[:], phash[i])
				bw.Write(pb[:])
			}
			return nil // write errors are sticky; Flush surfaces them
		})
		if err != nil {
			return true, err
		}
		if !resp.masked || resp.count != n {
			return true, fmt.Errorf("engine: peer %s wire: probe answered %d/%v, want %d/mask",
				t.peer, resp.count, resp.masked, n)
		}
		si := 0
		for i := 0; i < n; i++ {
			if resp.mask[i/8]&(1<<(i%8)) != 0 {
				out[i] = resp.scores[si]
				si++
			} else {
				miss = append(miss, i)
			}
		}
		t.stats.framesDedup.Add(int64(n - len(miss)))
		if len(miss) == 0 {
			return false, nil
		}
	} else {
		for i := range frames {
			miss = append(miss, i)
		}
	}
	size := int64(sockHeaderLen)
	for _, i := range miss {
		size += wireKeyLen + 8 + int64(len(frames[i].Pix))
	}
	resp, err := t.call(ctx, size, func(bw *bufio.Writer, id uint32) error {
		var hdr [sockHeaderLen]byte
		putSockHeader(hdr[:], batchMagic, id, 0, uint32(len(miss)))
		bw.Write(hdr[:])
		var dims [8]byte
		for _, i := range miss {
			bw.Write(keys[i][:])
			binary.LittleEndian.PutUint32(dims[0:4], uint32(frames[i].W))
			binary.LittleEndian.PutUint32(dims[4:8], uint32(frames[i].H))
			bw.Write(dims[:])
			// zero-copy: pixels go straight from the frame's backing buffer
			// to the socket (bufio passes large writes through)
			bw.Write(frames[i].Pix)
		}
		return nil
	})
	if err != nil {
		return true, err
	}
	if resp.masked || resp.count != len(miss) {
		return true, fmt.Errorf("engine: peer %s wire: %d scores for %d frames",
			t.peer, resp.count, len(miss))
	}
	for j, i := range miss {
		out[i] = resp.scores[j]
	}
	t.stats.framesPixels.Add(int64(len(miss)))
	return false, nil
}

// resolveWireAddr resolves a peer's advertised wire listener against its
// HTTP host: an empty or wildcard listener host (":8094", "0.0.0.0:8094",
// "[::]:8094") means "same host as the handshake".
func resolveWireAddr(httpHost, wireAddr string) string {
	host, port, err := net.SplitHostPort(wireAddr)
	if err != nil {
		return wireAddr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if h, _, err := net.SplitHostPort(httpHost); err == nil {
			host = h
		} else {
			host = httpHost
		}
		return net.JoinHostPort(host, port)
	}
	return wireAddr
}

// VerdictCache answers wire hash probes and absorbs wire-scored verdicts.
// serve.Server implements it over the sharded serving cache; VerdictMap is
// the standalone implementation for peers without a serving edge.
type VerdictCache interface {
	// LookupVerdict reports a memoized score by imaging.ContentKey.
	LookupVerdict(key [32]byte) (float64, bool)
	// StoreVerdict memoizes a freshly-scored verdict.
	StoreVerdict(key [32]byte, score float64)
}

// VerdictMap is a bounded FIFO-evicting VerdictCache for wire peers that
// have no serve.Server (benchmarks, bare model processes). Safe for
// concurrent use.
type VerdictMap struct {
	mu    sync.Mutex
	max   int
	m     map[[32]byte]float64
	order [][32]byte
	next  int
}

// NewVerdictMap builds a cache bounded to max entries (default 4096).
func NewVerdictMap(max int) *VerdictMap {
	if max <= 0 {
		max = 4096
	}
	return &VerdictMap{max: max, m: make(map[[32]byte]float64, max)}
}

// LookupVerdict implements VerdictCache.
func (v *VerdictMap) LookupVerdict(key [32]byte) (float64, bool) {
	v.mu.Lock()
	s, ok := v.m[key]
	v.mu.Unlock()
	return s, ok
}

// StoreVerdict implements VerdictCache with FIFO eviction.
func (v *VerdictMap) StoreVerdict(key [32]byte, score float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, exists := v.m[key]; exists {
		v.m[key] = score
		return
	}
	if len(v.m) >= v.max {
		old := v.order[v.next%len(v.order)]
		delete(v.m, old)
		v.order[v.next%len(v.order)] = key
		v.next++
	} else {
		v.order = append(v.order, key)
	}
	v.m[key] = score
}

// Reset drops every memoized verdict (rotation epochs, benchmarks).
func (v *VerdictMap) Reset() {
	v.mu.Lock()
	clear(v.m)
	v.order = v.order[:0]
	v.next = 0
	v.mu.Unlock()
}

// Len reports the number of memoized verdicts.
func (v *VerdictMap) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.m)
}

// WireServerStats is the wire listener's counter snapshot (/metrics).
type WireServerStats struct {
	Conns        int64 `json:"conns"`
	Requests     int64 `json:"requests"`
	ProbeHits    int64 `json:"probe_hits"`
	ProbeMisses  int64 `json:"probe_misses"`
	FramesScored int64 `json:"frames_scored"`
	BytesIn      int64 `json:"bytes_in"`
	BytesOut     int64 `json:"bytes_out"`
	WriteErrors  int64 `json:"write_errors"`
}

// WireServerOptions configures a WireServer.
type WireServerOptions struct {
	// Backend scores the pixel messages (probe misses). Required.
	Backend Backend
	// Cache answers probes and memoizes wire-scored verdicts. Optional:
	// without it every probe misses and nothing is memoized — correct but
	// dedup-blind.
	Cache VerdictCache
	// MaxConcurrent bounds concurrent forward passes across all
	// connections (default 2×GOMAXPROCS): the multiplexed wire would
	// otherwise let one proxy's whole congestion window fan out into
	// unbounded goroutines.
	MaxConcurrent int
}

// WireServer is the peer side of the persistent-socket wire: an accept
// loop over framed v2 messages, answering probes from the verdict cache
// inline and scoring pixel batches on the backend (concurrently per
// request ID, so responses overtake each other exactly as the multiplexed
// client expects).
type WireServer struct {
	backend Backend
	cache   VerdictCache
	sem     chan struct{}

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	conns_       atomic.Int64
	requests     atomic.Int64
	probeHits    atomic.Int64
	probeMisses  atomic.Int64
	framesScored atomic.Int64
	bytesIn      atomic.Int64
	bytesOut     atomic.Int64
	writeErrors  atomic.Int64
}

// NewWireServer builds a wire listener over a backend and optional cache.
func NewWireServer(opts WireServerOptions) *WireServer {
	if opts.Backend == nil {
		panic("engine: WireServer needs a backend")
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = 2 * runtime.GOMAXPROCS(0)
	}
	return &WireServer{
		backend: opts.Backend,
		cache:   opts.Cache,
		sem:     make(chan struct{}, maxc),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Stats snapshots the server's wire counters.
func (s *WireServer) Stats() WireServerStats {
	return WireServerStats{
		Conns:        s.conns_.Load(),
		Requests:     s.requests.Load(),
		ProbeHits:    s.probeHits.Load(),
		ProbeMisses:  s.probeMisses.Load(),
		FramesScored: s.framesScored.Load(),
		BytesIn:      s.bytesIn.Load(),
		BytesOut:     s.bytesOut.Load(),
		WriteErrors:  s.writeErrors.Load(),
	}
}

// Serve accepts connections on ln until Close (which returns nil) or a
// listener error. Multiple Serve calls on different listeners are allowed.
func (s *WireServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.conns_.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listeners, closes every connection and waits the
// handlers out.
func (s *WireServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// handleConn reads requests until the stream breaks: probes are answered
// inline (cache lookups, no model time), pixel batches score on a bounded
// pool of goroutines so a deep client window maps to concurrent forward
// passes without unbounded fan-out. Any protocol error closes the
// connection — framing cannot resync mid-stream.
func (s *WireServer) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(countingReader{r: conn, n: &s.bytesIn}, sockBufSize)
	var wmu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		req, err := readSockRequest(br)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && err != io.EOF && !errorIsEOF(err) {
				log.Printf("engine: wire conn %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.requests.Add(1)
		if req.probe {
			s.answerProbe(conn, &wmu, req)
			continue
		}
		reqWG.Add(1)
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem; reqWG.Done() }()
			s.scorePixels(conn, &wmu, req)
		}()
	}
}

// errorIsEOF reports whether err wraps a clean or mid-header stream end —
// the client closing its hot connection, not a protocol violation worth
// logging.
func errorIsEOF(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == io.EOF || err == io.ErrUnexpectedEOF || err == net.ErrClosed {
			return true
		}
		if ne, ok := err.(*net.OpError); ok {
			err = ne.Err
			continue
		}
	}
	return false
}

func unwrap(err error) error {
	if u, ok := err.(interface{ Unwrap() error }); ok {
		return u.Unwrap()
	}
	return nil
}

// answerProbe replies with the verdict cache's view of the probed keys:
// hit bitmask + scores for the hits.
func (s *WireServer) answerProbe(conn net.Conn, wmu *sync.Mutex, req *sockReq) {
	n := len(req.keys)
	buf := make([]byte, sockHeaderLen, sockHeaderLen+(n+7)/8+8*n)
	mask := make([]byte, (n+7)/8)
	hits := 0
	scores := make([]float64, 0, n)
	if s.cache != nil {
		for i, k := range req.keys {
			if v, ok := s.cache.LookupVerdict(k); ok {
				mask[i/8] |= 1 << (i % 8)
				scores = append(scores, v)
				hits++
			}
		}
	}
	s.probeHits.Add(int64(hits))
	s.probeMisses.Add(int64(n - hits))
	putSockHeader(buf, scoreMagic, req.id, sockFlagMask, uint32(n))
	buf = append(buf, mask...)
	for _, v := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	s.writeMsg(conn, wmu, buf)
}

// scorePixels runs the batch on the backend, memoizes the verdicts under
// the client-supplied content keys, and replies with plain scores.
func (s *WireServer) scorePixels(conn net.Conn, wmu *sync.Mutex, req *sockReq) {
	out := make([]float64, len(req.frames))
	s.backend.InferBatchInto(req.frames, out)
	s.framesScored.Add(int64(len(req.frames)))
	if s.cache != nil {
		for i, k := range req.keys[:len(req.frames)] {
			s.cache.StoreVerdict(k, out[i])
		}
	}
	buf := make([]byte, sockHeaderLen, sockHeaderLen+8*len(out))
	putSockHeader(buf, scoreMagic, req.id, 0, uint32(len(out)))
	for _, v := range out {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	s.writeMsg(conn, wmu, buf)
}

// writeMsg writes one whole response under the connection's write lock. A
// failed write closes the connection: the client's reader notices and
// redials.
func (s *WireServer) writeMsg(conn net.Conn, wmu *sync.Mutex, buf []byte) {
	wmu.Lock()
	_, err := conn.Write(buf)
	wmu.Unlock()
	if err != nil {
		s.writeErrors.Add(1)
		conn.Close()
		return
	}
	s.bytesOut.Add(int64(len(buf)))
}
