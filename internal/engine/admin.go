package engine

// Admin control-plane request surface: the typed bodies of percival-serve's
// POST /admin/peers and POST /admin/canary, with strict decoders. The
// decoders live here (not in the daemon) because they guard a privileged,
// network-reachable boundary: unknown fields, oversized bodies, trailing
// garbage and out-of-range knobs are all rejected before any topology
// mutation happens, and FuzzAdminRequest hammers exactly this layer.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strings"
)

// adminMaxBody bounds an admin request body; topology requests are tiny
// and an unbounded read on an authenticated-but-compromised channel is
// still a memory grenade.
const adminMaxBody = 64 << 10

// AdminPeerRequest is the POST /admin/peers body: dial this address and
// admit it into the fleet.
type AdminPeerRequest struct {
	// Addr is the peer address ("host:port" or a full http URL).
	Addr string `json:"addr"`
	// Transport optionally pins the wire ("auto", "http", "socket");
	// empty negotiates like -peer-transport.
	Transport string `json:"transport,omitempty"`
}

// DecodeAdminPeerRequest strictly decodes and validates a peer-add body.
func DecodeAdminPeerRequest(r io.Reader) (AdminPeerRequest, error) {
	var req AdminPeerRequest
	if err := decodeAdminBody(r, &req); err != nil {
		return AdminPeerRequest{}, fmt.Errorf("engine: admin peer request: %w", err)
	}
	req.Addr = strings.TrimSpace(req.Addr)
	if req.Addr == "" {
		return AdminPeerRequest{}, fmt.Errorf("engine: admin peer request: addr required")
	}
	addr := req.Addr
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if u, err := url.Parse(addr); err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return AdminPeerRequest{}, fmt.Errorf("engine: admin peer request: invalid addr %q", req.Addr)
	}
	switch req.Transport {
	case "", "auto", "http", "socket":
	default:
		return AdminPeerRequest{}, fmt.Errorf("engine: admin peer request: transport %q (want auto, http or socket)", req.Transport)
	}
	return req, nil
}

// AdminCanaryRequest is the POST /admin/canary body: start an
// agreement-gated rollout of a registered model version (CanaryOptions
// semantics; zero fields take the BeginCanary defaults).
type AdminCanaryRequest struct {
	Candidate  string  `json:"candidate"`
	Fraction   float64 `json:"fraction,omitempty"`
	Floor      float64 `json:"floor,omitempty"`
	HoldWindow int     `json:"hold_window,omitempty"`
	MinSamples int     `json:"min_samples,omitempty"`
}

// adminMaxWindow caps the canary ring so a hostile hold_window cannot
// allocate unbounded memory through the admin surface.
const adminMaxWindow = 1 << 20

// DecodeAdminCanaryRequest strictly decodes and validates a canary body.
func DecodeAdminCanaryRequest(r io.Reader) (AdminCanaryRequest, error) {
	var req AdminCanaryRequest
	if err := decodeAdminBody(r, &req); err != nil {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: %w", err)
	}
	req.Candidate = strings.TrimSpace(req.Candidate)
	if req.Candidate == "" {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: candidate required")
	}
	if req.Fraction < 0 || req.Fraction > 1 {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: fraction %v outside [0,1]", req.Fraction)
	}
	if req.Floor < 0 || req.Floor > 1 {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: floor %v outside [0,1]", req.Floor)
	}
	if req.HoldWindow < 0 || req.HoldWindow > adminMaxWindow {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: hold_window %d outside [0,%d]", req.HoldWindow, adminMaxWindow)
	}
	if req.MinSamples < 0 || req.MinSamples > adminMaxWindow {
		return AdminCanaryRequest{}, fmt.Errorf("engine: admin canary request: min_samples %d outside [0,%d]", req.MinSamples, adminMaxWindow)
	}
	return req, nil
}

// decodeAdminBody is the shared strict-JSON core: bounded read, unknown
// fields rejected, exactly one value, no trailing garbage.
func decodeAdminBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, adminMaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request object")
	}
	return nil
}
