package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a CubicWindow's time source deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testWindow(opts WindowOptions) (*CubicWindow, *fakeClock) {
	w := NewCubicWindow(opts)
	clk := newFakeClock()
	w.now = clk.now
	return w, clk
}

func TestWindowSlowStart(t *testing.T) {
	w, _ := testWindow(WindowOptions{Initial: 2, Max: 32})
	if got := w.Stat().Cwnd; got != 2 {
		t.Fatalf("initial cwnd = %v, want 2", got)
	}
	// below ssthresh every ack adds a full chunk
	for i := 0; i < 5; i++ {
		w.OnSuccess(time.Millisecond)
	}
	if got := w.Stat().Cwnd; got != 7 {
		t.Fatalf("cwnd after 5 acks in slow start = %v, want 7", got)
	}
	// growth saturates at Max
	for i := 0; i < 100; i++ {
		w.OnSuccess(time.Millisecond)
	}
	if got := w.Stat().Cwnd; got != 32 {
		t.Fatalf("cwnd = %v, want capped at Max=32", got)
	}
}

// TestWindowCubicShape checks the congestion-avoidance curve: concave
// recovery toward the pre-loss plateau, slow movement near it, then convex
// acceleration past it — growth per unit time must dip around t=K.
func TestWindowCubicShape(t *testing.T) {
	w, clk := testWindow(WindowOptions{Initial: 4, Max: 1000, Beta: 0.7, C: 0.4})
	// grow to a meaty window, then take a loss to enter congestion avoidance
	for w.Stat().Cwnd < 40 {
		w.OnSuccess(time.Millisecond)
	}
	pre := w.Stat().Cwnd
	w.OnLoss()
	post := w.Stat().Cwnd
	if want := pre * 0.7; post < want-0.01 || post > want+0.01 {
		t.Fatalf("cwnd after loss = %v, want beta*%v = %v", post, pre, want)
	}

	// sample cwnd along the curve at fixed time steps, one RTT's worth of
	// acks (~cwnd) per step so the window tracks the cubic target
	growth := make([]float64, 0, 30)
	prev := post
	for i := 0; i < 30; i++ {
		clk.advance(200 * time.Millisecond)
		for a := int(w.Stat().Cwnd); a > 0; a-- {
			w.OnSuccess(time.Millisecond)
		}
		cur := w.Stat().Cwnd
		growth = append(growth, cur-prev)
		prev = cur
	}
	if prev <= pre {
		t.Fatalf("window never probed past pre-loss plateau: %v <= %v", prev, pre)
	}
	// concave region recovers faster than the plateau region, and the convex
	// tail grows faster than the plateau region
	early, mid, late := growth[0], growth[len(growth)/2], growth[len(growth)-1]
	if early <= mid {
		t.Errorf("concave recovery not faster than plateau: early=%v mid=%v", early, mid)
	}
	if late <= mid {
		t.Errorf("convex probe not faster than plateau: late=%v mid=%v", late, mid)
	}
}

func TestWindowLossCoalescing(t *testing.T) {
	w, clk := testWindow(WindowOptions{Initial: 16, Max: 64})
	// warm the RTT estimator so the guard interval is ~10ms
	for i := 0; i < 10; i++ {
		w.OnSuccess(10 * time.Millisecond)
	}
	first := w.Stat().Cwnd
	w.OnLoss()
	afterOne := w.Stat().Cwnd
	if afterOne >= first {
		t.Fatalf("loss did not shrink window: %v -> %v", first, afterOne)
	}
	// a burst of losses within one RTT is one congestion event
	w.OnLoss()
	w.OnLoss()
	if got := w.Stat().Cwnd; got != afterOne {
		t.Fatalf("coalesced losses changed window: %v, want %v", got, afterOne)
	}
	if got := w.Stat().Losses; got != 1 {
		t.Fatalf("losses counter = %d, want 1 coalesced event", got)
	}
	// past the guard interval a new loss counts
	clk.advance(time.Second)
	w.OnLoss()
	if got := w.Stat().Cwnd; got >= afterOne {
		t.Fatalf("second loss event did not shrink window: %v", got)
	}
}

func TestWindowNeverBelowOne(t *testing.T) {
	w, clk := testWindow(WindowOptions{Initial: 2, Max: 8})
	for i := 0; i < 50; i++ {
		w.OnLoss()
		clk.advance(time.Second) // defeat coalescing: every loss counts
	}
	if got := w.Stat().Cwnd; got < 1 {
		t.Fatalf("cwnd = %v, fell below 1", got)
	}
	w.Collapse()
	if got := w.Stat().Cwnd; got != 1 {
		t.Fatalf("cwnd after Collapse = %v, want 1", got)
	}
	// even at the floor one slot is always grantable
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if !w.Acquire(ctx) {
		t.Fatal("Acquire failed at floor window")
	}
	w.Release()
}

func TestWindowRTO(t *testing.T) {
	w, _ := testWindow(WindowOptions{RTOMin: 200 * time.Millisecond})
	if got := w.RTO(); got != 0 {
		t.Fatalf("RTO before %d samples = %v, want 0 (no opinion)", windowRTOSamples, got)
	}
	// fast steady samples: mean+4dev is tiny, so the floor must hold
	for i := 0; i < 20; i++ {
		w.OnSuccess(2 * time.Millisecond)
	}
	if got := w.RTO(); got != 200*time.Millisecond {
		t.Fatalf("RTO on fast peer = %v, want floored at 200ms", got)
	}
	// slow samples push the RTO above the floor
	for i := 0; i < 40; i++ {
		w.OnSuccess(300 * time.Millisecond)
	}
	if got := w.RTO(); got <= 200*time.Millisecond {
		t.Fatalf("RTO on slow peer = %v, want above the floor", got)
	}
}

func TestWindowAcquireGating(t *testing.T) {
	w, _ := testWindow(WindowOptions{Initial: 2, Max: 2})
	ctx := context.Background()
	if !w.Acquire(ctx) || !w.Acquire(ctx) {
		t.Fatal("could not fill window")
	}
	// third acquire must block until a release
	got := make(chan bool, 1)
	go func() {
		got <- w.Acquire(ctx)
	}()
	select {
	case <-got:
		t.Fatal("Acquire succeeded beyond the window")
	case <-time.After(20 * time.Millisecond):
	}
	w.Release()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("Acquire returned false after release")
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake on release")
	}

	// a blocked acquire must honour context cancellation
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if w.Acquire(cctx) {
		t.Fatal("Acquire succeeded on cancelled context with full window")
	}
	if w.Stat().Blocked < 2 {
		t.Fatalf("blocked counter = %d, want >= 2", w.Stat().Blocked)
	}
}

func TestWindowReset(t *testing.T) {
	w, clk := testWindow(WindowOptions{Initial: 4, Max: 64})
	for i := 0; i < 20; i++ {
		w.OnSuccess(5 * time.Millisecond)
	}
	w.OnLoss()
	clk.advance(time.Second)
	w.Reset()
	st := w.Stat()
	if st.Cwnd != 4 {
		t.Fatalf("cwnd after Reset = %v, want initial 4", st.Cwnd)
	}
	if n := w.RTT().N(); n != 0 {
		t.Fatalf("RTT estimator kept %d samples across Reset", n)
	}
	// reset puts the window back in slow start
	w.OnSuccess(time.Millisecond)
	if got := w.Stat().Cwnd; got != 5 {
		t.Fatalf("cwnd after post-reset ack = %v, want 5 (slow start)", got)
	}
}
