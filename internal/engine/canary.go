package engine

// Agreement-gated model canary: the automated rollout primitive the
// registry's ?model= selection was always pointed at. An operator (or the
// retrain pipeline) registers a new model version and begins a canary; the
// controller shifts a configurable fraction of live traffic to the
// candidate, shadow-scores the same frames on the incumbent path, and
// tracks per-frame verdict agreement (same side of the blocking threshold)
// over a sliding hold window. Agreement holding at or above the floor for
// a full window promotes the candidate to registry default; agreement
// dipping below the floor — any time after a minimum sample count — rolls
// the rollout back. No wall-clock holds, no manual gate: the agreement
// floor is the only driver, so a disagreeing model can never be promoted
// by timeout and an agreeing one is never held hostage by one.
//
// The dispatch half is CanaryBackend, a Backend proxy layered over the
// serving backend (local engine or fleet). It is passthrough when no
// rollout is running, so steady-state serving pays one atomic load per
// batch. During a rollout a deterministic counter split sends every Nth
// chunk to the candidate; those chunks are scored twice (candidate answers
// the caller, incumbent is the shadow reference), which is the canary's
// cost — Fraction bounds it.

import (
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"

	"percival/internal/imaging"
)

// CanaryState is a rollout's position in the canary state machine.
type CanaryState int32

const (
	// CanaryIdle: no rollout has been started.
	CanaryIdle CanaryState = iota
	// CanaryRunning: a traffic fraction is shifted to the candidate and
	// agreement is being measured.
	CanaryRunning
	// CanaryPromoted: agreement held at or above the floor for a full hold
	// window; the candidate is the registry default now.
	CanaryPromoted
	// CanaryRolledBack: agreement dipped below the floor (or the rollout
	// was canceled); all traffic is back on the incumbent.
	CanaryRolledBack
)

// String names the state for /admin/topology and logs.
func (s CanaryState) String() string {
	switch s {
	case CanaryIdle:
		return "idle"
	case CanaryRunning:
		return "running"
	case CanaryPromoted:
		return "promoted"
	case CanaryRolledBack:
		return "rolled_back"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// CanaryOptions tunes a rollout. The zero value gets defaults from
// BeginCanary.
type CanaryOptions struct {
	// Fraction of chunks shifted to the candidate while running (default
	// 0.05). Those chunks are scored twice (shadow reference), so this
	// also bounds the rollout's compute overhead. >= 1 shifts everything.
	Fraction float64
	// Floor is the verdict-agreement ratio the candidate must hold
	// (default 0.99, the INT8 parity gate's bar).
	Floor float64
	// HoldWindow is the sliding window of shadowed frames the floor must
	// hold over for promotion (default 256).
	HoldWindow int
	// MinSamples is how many shadowed frames must be observed before a
	// dip can roll the rollout back (default 64) — one early disagreeing
	// chunk should count against the window, not kill the rollout alone.
	MinSamples int
	// Threshold is the ad-probability verdict boundary agreement is
	// measured at (default 0.5, the serving default).
	Threshold float64
}

func (o CanaryOptions) withDefaults() CanaryOptions {
	if o.Fraction <= 0 {
		o.Fraction = 0.05
	}
	if o.Floor <= 0 || o.Floor > 1 {
		o.Floor = 0.99
	}
	if o.HoldWindow <= 0 {
		o.HoldWindow = 256
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 64
	}
	if o.Threshold <= 0 || o.Threshold >= 1 {
		o.Threshold = 0.5
	}
	return o
}

// canaryController is one rollout's live state, owned by the registry.
type canaryController struct {
	reg       *Registry
	candidate string
	incumbent string
	cand      Backend
	opts      CanaryOptions

	stateA atomic.Int32  // CanaryState; transitions by CAS only
	flips  atomic.Uint64 // chunk rotor for the deterministic traffic split
	period uint64        // every period-th chunk rides the canary

	mu       sync.Mutex
	ring     []bool // per-frame agreement, sliding hold window
	pos      int
	filled   int
	winAgree int   // agreeing frames currently in the ring
	agree    int64 // lifetime agreeing frames
	total    int64 // lifetime shadowed frames
}

func (c *canaryController) state() CanaryState {
	return CanaryState(c.stateA.Load())
}

// take decides whether this chunk rides the canary: a deterministic
// counter split (every period-th chunk), so the shifted fraction is exact
// and reproducible rather than sampled.
func (c *canaryController) take() bool {
	if c.period <= 1 {
		return true
	}
	return c.flips.Add(1)%c.period == 0
}

// observe folds one shadowed chunk's agreement into the window and drives
// the state machine: rollback on a dip past MinSamples, promotion on a
// full window at or above the floor. The registry default flip happens
// outside the controller lock — SetDefault takes the registry lock, and
// BeginCanary holds it while reading controller state, so nesting the two
// here would invert the order.
func (c *canaryController) observe(agreed, total int) {
	if total <= 0 {
		return
	}
	c.mu.Lock()
	if c.state() != CanaryRunning {
		c.mu.Unlock()
		return
	}
	for i := 0; i < total; i++ {
		ok := i < agreed // order within a chunk is immaterial to a ratio
		if c.filled == len(c.ring) {
			if c.ring[c.pos] {
				c.winAgree--
			}
		} else {
			c.filled++
		}
		c.ring[c.pos] = ok
		if ok {
			c.winAgree++
		}
		c.pos = (c.pos + 1) % len(c.ring)
	}
	c.agree += int64(agreed)
	c.total += int64(total)
	ratio := float64(c.winAgree) / float64(c.filled)
	samples := c.total
	var promote, rollback bool
	if samples >= int64(c.opts.MinSamples) && ratio < c.opts.Floor {
		rollback = c.stateA.CompareAndSwap(int32(CanaryRunning), int32(CanaryRolledBack))
	} else if c.filled == len(c.ring) && ratio >= c.opts.Floor {
		promote = c.stateA.CompareAndSwap(int32(CanaryRunning), int32(CanaryPromoted))
	}
	c.mu.Unlock()
	if rollback {
		log.Printf("engine: canary %s rolled back: window agreement %.4f < floor %.4f after %d shadowed frames",
			c.candidate, ratio, c.opts.Floor, samples)
	}
	if promote {
		if err := c.reg.SetDefault(c.candidate); err != nil {
			// the candidate was deregistered mid-rollout; the promotion is
			// moot but the state already says promoted — log loudly
			log.Printf("engine: canary %s promoted but default flip failed: %v", c.candidate, err)
		} else {
			log.Printf("engine: canary %s promoted over %s: agreement %.4f >= floor %.4f for a %d-frame window",
				c.candidate, c.incumbent, ratio, c.opts.Floor, len(c.ring))
		}
	}
}

// CanaryStatus is the rollout's introspection surface (/admin/topology).
type CanaryStatus struct {
	Active          bool    `json:"active"`
	State           string  `json:"state"`
	Candidate       string  `json:"candidate,omitempty"`
	Incumbent       string  `json:"incumbent,omitempty"`
	Fraction        float64 `json:"fraction,omitempty"`
	Floor           float64 `json:"floor,omitempty"`
	HoldWindow      int     `json:"hold_window,omitempty"`
	Samples         int64   `json:"samples"`
	Agreement       float64 `json:"agreement"`        // lifetime ratio
	WindowFill      int     `json:"window_fill"`      // frames in the ring
	WindowAgreement float64 `json:"window_agreement"` // ring ratio
}

func (c *canaryController) status() CanaryStatus {
	st := c.state()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := CanaryStatus{
		Active:     st == CanaryRunning,
		State:      st.String(),
		Candidate:  c.candidate,
		Incumbent:  c.incumbent,
		Fraction:   c.opts.Fraction,
		Floor:      c.opts.Floor,
		HoldWindow: len(c.ring),
		Samples:    c.total,
		WindowFill: c.filled,
	}
	if c.total > 0 {
		out.Agreement = float64(c.agree) / float64(c.total)
	}
	if c.filled > 0 {
		out.WindowAgreement = float64(c.winAgree) / float64(c.filled)
	}
	return out
}

// BeginCanary starts an agreement-gated rollout of the named candidate
// against the current default. One rollout at a time; a finished
// (promoted or rolled-back) controller is replaced, a running one is an
// error. The candidate must serve the incumbent's resolution — the
// shadowed frames are pre-processed once for both.
func (r *Registry) BeginCanary(candidate string, opts CanaryOptions) error {
	opts = opts.withDefaults()
	r.mu.Lock()
	defer r.mu.Unlock()
	cand, ok := r.m[candidate]
	if !ok {
		return fmt.Errorf("engine: canary candidate %q not registered", candidate)
	}
	if candidate == r.def {
		return fmt.Errorf("engine: canary candidate %q is already the default", candidate)
	}
	if inc := r.m[r.def]; inc != nil && cand.InputRes() != inc.InputRes() {
		return fmt.Errorf("engine: canary candidate %q serves res %d, incumbent %q serves %d",
			candidate, cand.InputRes(), r.def, inc.InputRes())
	}
	if old := r.canary.Load(); old != nil && old.state() == CanaryRunning {
		return fmt.Errorf("engine: canary %q already running", old.candidate)
	}
	ctl := &canaryController{
		reg:       r,
		candidate: candidate,
		incumbent: r.def,
		cand:      cand,
		opts:      opts,
		ring:      make([]bool, opts.HoldWindow),
	}
	if opts.Fraction < 1 {
		ctl.period = uint64(math.Round(1 / opts.Fraction))
	}
	ctl.stateA.Store(int32(CanaryRunning))
	r.canary.Store(ctl)
	log.Printf("engine: canary %s vs %s started: fraction %.3f, floor %.4f over %d frames",
		candidate, r.def, opts.Fraction, opts.Floor, opts.HoldWindow)
	return nil
}

// CancelCanary aborts a running rollout (an operator judgment call outside
// the agreement gate); traffic snaps back to the incumbent on the next
// chunk. Reports whether a running rollout was actually canceled.
func (r *Registry) CancelCanary() bool {
	ctl := r.canary.Load()
	if ctl == nil {
		return false
	}
	if ctl.stateA.CompareAndSwap(int32(CanaryRunning), int32(CanaryRolledBack)) {
		log.Printf("engine: canary %s canceled", ctl.candidate)
		return true
	}
	return false
}

// CanaryStatus snapshots the active (or most recent) rollout; the zero
// value means no rollout has ever been started.
func (r *Registry) CanaryStatus() CanaryStatus {
	ctl := r.canary.Load()
	if ctl == nil {
		return CanaryStatus{State: CanaryIdle.String()}
	}
	return ctl.status()
}

// CanaryBackend is the dispatch half of the rollout: a Backend proxy over
// the serving path (local engine or fleet) that consults the registry's
// canary controller per batch. Idle and finished states are passthrough;
// a running rollout splits chunks by the controller's rotor and shadow-
// scores the shifted ones; a promoted rollout routes everything to the
// candidate. Like every Backend, one instance serves one dispatch lane —
// serve replicates it per shard, and each replica lazily replicates its
// own candidate lane when a rollout appears.
type CanaryBackend struct {
	reg *Registry

	mu     sync.Mutex
	base   Backend           // incumbent serving path for this lane
	ctl    *canaryController // controller this lane last synced against
	cand   Backend           // lane-local candidate replica
	shadow []float64         // incumbent shadow-score scratch
}

// NewCanaryBackend wraps the serving backend with the rollout proxy.
func NewCanaryBackend(reg *Registry, base Backend) *CanaryBackend {
	return &CanaryBackend{reg: reg, base: base}
}

// syncLocked adopts a controller change: a promoted rollout's candidate
// replica becomes the lane's steady route (the registry default already
// flipped; this flips the lane), any other outgoing replica is released.
func (cb *CanaryBackend) syncLocked(ctl *canaryController) {
	if cb.cand != nil {
		if cb.ctl != nil && cb.ctl.state() == CanaryPromoted {
			cb.base = cb.cand
		} else {
			cb.cand.Close()
		}
		cb.cand = nil
	}
	cb.ctl = ctl
	if ctl != nil {
		cb.cand = ctl.cand.Replicate()
	}
}

// InferBatchInto routes one batch through the rollout state machine.
func (cb *CanaryBackend) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	ctl := cb.reg.canary.Load()
	cb.mu.Lock()
	if ctl != cb.ctl {
		cb.syncLocked(ctl)
	}
	base, cand := cb.base, cb.cand
	if ctl == nil {
		cb.mu.Unlock()
		return base.InferBatchInto(frames, out)
	}
	switch ctl.state() {
	case CanaryPromoted:
		cb.mu.Unlock()
		return cand.InferBatchInto(frames, out)
	case CanaryRunning:
		if ctl.take() {
			if cap(cb.shadow) < len(frames) {
				cb.shadow = make([]float64, len(frames))
			}
			ref := cb.shadow[:len(frames)]
			cb.mu.Unlock()
			// the candidate answers the caller; the incumbent shadow-scores
			// the same frames as the agreement reference
			out = cand.InferBatchInto(frames, out)
			base.InferBatchInto(frames, ref)
			agreed := 0
			thr := ctl.opts.Threshold
			for i := range out {
				if (out[i] >= thr) == (ref[i] >= thr) {
					agreed++
				}
			}
			ctl.observe(agreed, len(out))
			return out
		}
	}
	cb.mu.Unlock()
	return base.InferBatchInto(frames, out)
}

// baseNow reads the lane's current steady route.
func (cb *CanaryBackend) baseNow() Backend {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.base
}

// Name identifies the underlying serving path (the proxy is invisible in
// /healthz — operators see the canary through /admin/topology).
func (cb *CanaryBackend) Name() string { return cb.baseNow().Name() }

// InputRes is the serving path's input resolution.
func (cb *CanaryBackend) InputRes() int { return cb.baseNow().InputRes() }

// Stats reports the serving path's counters.
func (cb *CanaryBackend) Stats() Stats { return cb.baseNow().Stats() }

// Replicate hands a sibling lane over the same registry: the base
// replicates, the candidate lane is created lazily when a rollout appears.
func (cb *CanaryBackend) Replicate() Backend {
	return NewCanaryBackend(cb.reg, cb.baseNow().Replicate())
}

// Warm warms the serving path (candidate lanes warm on first replicate).
func (cb *CanaryBackend) Warm(maxBatch int) { cb.baseNow().Warm(maxBatch) }

// Close releases the lane's backends.
func (cb *CanaryBackend) Close() {
	cb.mu.Lock()
	base, cand := cb.base, cb.cand
	cb.cand = nil
	cb.mu.Unlock()
	if cand != nil {
		cand.Close()
	}
	base.Close()
}

// PeerHealth forwards fleet supervision through the proxy (HealthReporter
// discovery type-asserts the shard backend, which is now this proxy).
func (cb *CanaryBackend) PeerHealth() []PeerHealthInfo {
	if hr, ok := cb.baseNow().(HealthReporter); ok {
		return hr.PeerHealth()
	}
	return nil
}

// WindowStats forwards congestion windows through the proxy (the admission
// controller's saturation feed).
func (cb *CanaryBackend) WindowStats() []WindowStat {
	if wr, ok := cb.baseNow().(WindowReporter); ok {
		return wr.WindowStats()
	}
	return nil
}
