package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// newWirePeer stands up a full wire-v2 peer: the HTTP surface plus the
// persistent-socket listener, advertised through the /modelz handshake the
// way percival-serve -wire-listen mounts it.
func newWirePeer(t testing.TB, def Backend, cache VerdictCache) (*httptest.Server, *WireServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(WireServerOptions{Backend: def, Cache: cache})
	go ws.Serve(ln)
	t.Cleanup(ws.Close)
	mux := http.NewServeMux()
	mux.Handle("POST /classify/batch", BatchHandler(nil, def))
	mux.Handle("GET /modelz", ModelzHandlerWire(nil, def, 0.5, ln.Addr().String()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, ws
}

// TestSockWireBitIdentical is the transport's acceptance anchor: verdicts
// over the persistent socket — cold and dedup-warm — must be bit-identical
// to in-process scoring, and the warm pass must travel probe bytes, not
// pixel bytes.
func TestSockWireBitIdentical(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()
	ts, ws := newWirePeer(t, local, NewVerdictMap(0))

	rb, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if kind := rb.tr.Kind(); kind != "socket" {
		t.Fatalf("negotiated %s transport, want socket", kind)
	}

	frames := synth.SampleFrames(7, 2*BatchChunk+3)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)

	got := make([]float64, len(frames))
	rb.InferBatchInto(frames, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cold frame %d: socket %v, local %v", i, got[i], want[i])
		}
	}
	cold := rb.TransportStats()
	if cold.FramesPixels != int64(len(frames)) {
		t.Fatalf("cold pass sent %d pixel frames, want %d", cold.FramesPixels, len(frames))
	}

	// warm pass: the peer's verdict cache knows every frame, so the probes
	// answer everything and no pixels travel
	for i := range got {
		got[i] = -1
	}
	rb.InferBatchInto(frames, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm frame %d: socket %v, local %v", i, got[i], want[i])
		}
	}
	warm := rb.TransportStats()
	if warm.FramesPixels != cold.FramesPixels {
		t.Fatalf("warm pass re-sent pixels (%d -> %d)", cold.FramesPixels, warm.FramesPixels)
	}
	if warm.FramesDedup != int64(len(frames)) {
		t.Fatalf("warm pass deduped %d frames, want %d", warm.FramesDedup, len(frames))
	}
	warmBytes := warm.BytesOut - cold.BytesOut
	if warmBytes <= 0 || warmBytes*10 > cold.BytesOut {
		t.Fatalf("warm pass cost %d bytes vs cold %d, want >=10x cut", warmBytes, cold.BytesOut)
	}
	if st := ws.Stats(); st.ProbeHits == 0 || st.FramesScored != int64(len(frames)) {
		t.Fatalf("wire server stats %+v", st)
	}
	if st := rb.Stats(); st.Errors != 0 {
		t.Fatalf("socket wire failed open: %+v", st)
	}
}

// TestSockWireNoDedup: with probes disabled every frame's pixels travel on
// every pass, and scores stay bit-identical.
func TestSockWireNoDedup(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()
	ts, _ := newWirePeer(t, local, NewVerdictMap(0))

	rb, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res, NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	frames := synth.SampleFrames(11, BatchChunk)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)
	got := make([]float64, len(frames))
	for pass := 0; pass < 2; pass++ {
		rb.InferBatchInto(frames, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d frame %d: %v, want %v", pass, i, got[i], want[i])
			}
		}
	}
	st := rb.TransportStats()
	if st.FramesDedup != 0 || st.FramesPixels != int64(2*len(frames)) {
		t.Fatalf("NoDedup stats %+v", st)
	}
}

// TestSockWireRedialsAfterClose: Close drops the hot connection but is not
// terminal — sibling replicas share the transport, so the next dispatch
// must redial instead of failing.
func TestSockWireRedialsAfterClose(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()
	ts, _ := newWirePeer(t, local, nil)

	rb, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(13, 3)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)
	got := make([]float64, len(frames))

	rep := rb.Replicate().(*RemoteBackend)
	rb.InferBatchInto(frames, got)
	dials := rb.TransportStats().Dials
	rb.Close() // replica rep still holds the transport
	rep.InferBatchInto(frames, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-Close frame %d: %v, want %v", i, got[i], want[i])
		}
	}
	if st := rep.Stats(); st.Errors != 0 {
		t.Fatalf("replica failed open after sibling Close: %+v", st)
	}
	if d := rb.TransportStats().Dials; d != dials+1 {
		t.Fatalf("dials %d -> %d, want one redial", dials, d)
	}
}

// TestSockWireConcurrent: the multiplexed connection must carry many
// concurrent chunks (out-of-order responses, shared pending table) with
// every verdict bit-identical. Run under -race this is the transport's
// synchronization gate.
func TestSockWireConcurrent(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()
	ts, _ := newWirePeer(t, local, NewVerdictMap(0))

	rb, err := NewRemote(ts.URL, RemoteOptions{ExpectRes: res, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	frames := synth.SampleFrames(17, 24)
	want := make([]float64, len(frames))
	local.InferBatchInto(frames, want)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := rb.Replicate()
			got := make([]float64, len(frames))
			for iter := 0; iter < 5; iter++ {
				rep.InferBatchInto(frames, got)
				for i := range want {
					if got[i] != want[i] {
						errs <- fmt.Errorf("worker %d iter %d frame %d: %v, want %v", w, iter, i, got[i], want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if st := rb.Stats(); st.Errors != 0 {
		t.Fatalf("concurrent socket dispatch failed open: %+v", st)
	}
}

// TestSockWireFailsOpenWhenDown: a wire peer whose socket listener dies
// mid-life must not wedge the proxy — chunks fail open within the retry
// budget like any dead peer.
func TestSockWireFailsOpenWhenDown(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()
	ts, ws := newWirePeer(t, local, nil)

	rb, err := NewRemote(ts.URL, RemoteOptions{
		ExpectRes: res, Timeout: 300 * time.Millisecond, Retries: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	frames := synth.SampleFrames(19, 2)
	got := make([]float64, len(frames))
	rb.InferBatchInto(frames, got) // healthy pass establishes the conn
	ws.Close()                     // socket listener dies; HTTP surface stays up
	rb.InferBatchInto(frames, got)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("frame %d scored %v after wire death, want fail-open 0", i, v)
		}
	}
	if st := rb.Stats(); st.Errors == 0 {
		t.Fatal("wire death did not count a fail-open error")
	}
}

// TestWireServerRejectsGarbage: a stream that breaks framing must close —
// a byte stream that lost sync cannot recover — and must do so without
// wedging or crashing the listener.
func TestWireServerRejectsGarbage(t *testing.T) {
	net_, res := testNet(t, 16)
	local := NewFP32(net_, res)
	defer local.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(WireServerOptions{Backend: local})
	go ws.Serve(ln)
	defer ws.Close()

	for _, msg := range [][]byte{
		[]byte("not a wire message, nowhere near one......."),
		// right magic, wrong version
		func() []byte {
			var b [sockHeaderLen]byte
			putSockHeader(b[:], batchMagic, 1, 0, 1)
			binary.LittleEndian.PutUint16(b[4:6], 9)
			return b[:]
		}(),
		// probe with an impossible count
		func() []byte {
			var b [sockHeaderLen]byte
			putSockHeader(b[:], batchMagic, 1, sockFlagProbe, maxWireFrames+1)
			return b[:]
		}(),
		// pixel frame with overflowing dims (the v1 regression, on the v2 wire)
		func() []byte {
			var b [sockHeaderLen + wireKeyLen + 8]byte
			putSockHeader(b[:], batchMagic, 1, 0, 1)
			binary.LittleEndian.PutUint32(b[sockHeaderLen+wireKeyLen:], 1<<15)
			binary.LittleEndian.PutUint32(b[sockHeaderLen+wireKeyLen+4:], 1<<15)
			return b[:]
		}(),
	} {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("write %q: %v", msg[:4], err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("garbage %x: conn read %v, want EOF (server must drop the conn)", msg[:8], err)
		}
		conn.Close()
	}
}

// TestSockRequestRoundTrip: the v2 request/response codecs must reproduce
// probes, keyed pixel batches and masked responses bit-for-bit.
func TestSockRequestRoundTrip(t *testing.T) {
	frames := synth.SampleFrames(23, 3)
	keys := make([][32]byte, len(frames))
	phash := make([]uint64, len(frames))
	for i, f := range frames {
		keys[i] = imaging.ContentKey(f)
		phash[i] = imaging.PerceptualHash(f)
	}

	// probe
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	var hdr [sockHeaderLen]byte
	putSockHeader(hdr[:], batchMagic, 42, sockFlagProbe, uint32(len(keys)))
	bw.Write(hdr[:])
	var pb [8]byte
	for i := range keys {
		bw.Write(keys[i][:])
		binary.LittleEndian.PutUint64(pb[:], phash[i])
		bw.Write(pb[:])
	}
	bw.Flush()
	req, err := readSockRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !req.probe || req.id != 42 || len(req.keys) != len(keys) {
		t.Fatalf("probe decoded %+v", req)
	}
	for i := range keys {
		if req.keys[i] != keys[i] || req.phash[i] != phash[i] {
			t.Fatalf("probe entry %d mismatch", i)
		}
	}

	// keyed pixels
	buf.Reset()
	putSockHeader(hdr[:], batchMagic, 43, 0, uint32(len(frames)))
	buf.Write(hdr[:])
	var dims [8]byte
	for i, f := range frames {
		buf.Write(keys[i][:])
		binary.LittleEndian.PutUint32(dims[0:4], uint32(f.W))
		binary.LittleEndian.PutUint32(dims[4:8], uint32(f.H))
		buf.Write(dims[:])
		buf.Write(f.Pix)
	}
	req, err = readSockRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if req.probe || req.id != 43 || len(req.frames) != len(frames) {
		t.Fatalf("pixel request decoded %+v", req)
	}
	for i, f := range frames {
		if req.keys[i] != keys[i] || req.frames[i].W != f.W || !bytes.Equal(req.frames[i].Pix, f.Pix) {
			t.Fatalf("pixel frame %d mismatch", i)
		}
	}

	// masked response with bits set past count must be rejected
	buf.Reset()
	putSockHeader(hdr[:], scoreMagic, 44, sockFlagMask, 3)
	buf.Write(hdr[:])
	buf.WriteByte(0xFF) // 8 bits set for 3 entries
	resp, err := readSockResponse(&buf)
	if err == nil {
		t.Fatalf("overfull mask accepted: %+v", resp)
	}
}

// TestResolveWireAddr: wildcard and empty listener hosts resolve against
// the handshake host; concrete hosts pass through.
func TestResolveWireAddr(t *testing.T) {
	for _, tc := range []struct{ httpHost, wire, want string }{
		{"10.0.0.7:8093", ":8094", "10.0.0.7:8094"},
		{"10.0.0.7:8093", "0.0.0.0:8094", "10.0.0.7:8094"},
		{"10.0.0.7:8093", "[::]:8094", "10.0.0.7:8094"},
		{"10.0.0.7:8093", "10.0.0.8:8094", "10.0.0.8:8094"},
		{"example.test:8093", ":9", "example.test:9"},
	} {
		if got := resolveWireAddr(tc.httpHost, tc.wire); got != tc.want {
			t.Errorf("resolveWireAddr(%q, %q) = %q, want %q", tc.httpHost, tc.wire, got, tc.want)
		}
	}
}

// TestVerdictMap: bounded FIFO semantics, update-in-place, reset.
func TestVerdictMap(t *testing.T) {
	m := NewVerdictMap(3)
	key := func(i byte) [32]byte { var k [32]byte; k[0] = i; return k }
	for i := byte(0); i < 5; i++ {
		m.StoreVerdict(key(i), float64(i))
	}
	if m.Len() != 3 {
		t.Fatalf("len %d, want 3 (bounded)", m.Len())
	}
	if _, ok := m.LookupVerdict(key(0)); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := m.LookupVerdict(key(4)); !ok || v != 4 {
		t.Fatalf("newest entry %v %v", v, ok)
	}
	m.StoreVerdict(key(4), 9) // update must not evict
	if m.Len() != 3 {
		t.Fatalf("update grew the map to %d", m.Len())
	}
	if v, _ := m.LookupVerdict(key(4)); v != 9 {
		t.Fatalf("update not applied: %v", v)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("reset left %d entries", m.Len())
	}
}
