package engine

import (
	"fmt"
	"sync/atomic"
)

// Router is the fleet's placement seam. Before it existed the placement
// decision was smeared across three layers that each half-owned it: serve
// pinned shards to peers at construction (fixed round-robin), Fleet's
// dispatch loop rotated a failover scan when the pin was out, and
// RemoteBackend's retry loop re-sent to whatever peer it was handed. The
// Router pulls all three decisions — lane pinning, per-chunk peer choice,
// hedge-arm choice — behind one interface, so a policy swap changes every
// layer at once and the layers stop disagreeing about who places work.
//
// Two policies ship:
//
//   - static: the pre-router behaviour, bit-for-bit. Lanes pin round-robin
//     (lane i prefers peer i mod N, shard-per-peer like RemotePool), a
//     chunk whose preferred peer is out rotates the failover scan start so
//     displaced traffic spreads across survivors, and the hedge arm is the
//     next routable peer after the preference.
//
//   - weighted: least-loaded by congestion-window headroom over latency.
//     Each routable peer scores free_window/latency_ewma — free CUBIC
//     window headroom (how many more chunks the peer has proven it can
//     absorb right now) divided by its smoothed round-trip time — and the
//     chunk goes to the best score. A slow or saturated peer's score decays
//     on both axes (its window shrinks, its EWMA inflates), so load drains
//     away from it without waiting for eviction; the 100ms-slow peer in
//     ServeReroute8x2 keeps serving, just proportionally less.
//
// Routers only ever see routable (healthy, non-draining) peers filtered by
// the fleet; health state, eviction and redial stay the fleet's job. The
// interface is sealed the way Transport is: the fleet's dispatch loop
// trusts Pick to return nil only when no routable un-tried peer exists.
type Router interface {
	// Name identifies the policy for /admin/topology and logs.
	Name() string
	// Pin maps a dispatch lane ordinal to its preferred peer index given
	// the current fleet size. Called per chunk (membership is live), so it
	// must be cheap and stateless.
	Pin(lane, npeers int) int
	// Pick chooses the peer to serve a chunk. pref is the lane's preferred
	// index (already < npeers), tried reports peers that already failed
	// this chunk, and first is true on the chunk's first try. Returns nil
	// when no routable un-tried peer remains.
	Pick(peers []*fleetPeer, pref int, tried func(*fleetPeer) bool, first bool) *fleetPeer
	// Hedge chooses the second arm for a hedged chunk — any routable peer
	// other than primary, or nil to skip the hedge.
	Hedge(peers []*fleetPeer, pref int, primary *fleetPeer) *fleetPeer
}

// NewRouter resolves a policy name ("static", "weighted", or "" for the
// default) — the -route flag's parser.
func NewRouter(policy string) (Router, error) {
	switch policy {
	case "", "static":
		return &StaticRouter{}, nil
	case "weighted":
		return &WeightedRouter{}, nil
	}
	return nil, fmt.Errorf("engine: unknown router policy %q (want static or weighted)", policy)
}

// StaticRouter is the default-compatible policy: fixed round-robin lane
// pins with a rotating failover scan for displaced traffic.
type StaticRouter struct {
	// reroute spreads displaced-lane traffic across survivors. A fixed
	// forward scan would re-route every displaced lane to the same next
	// peer — with the first peer down that doubles one survivor's load
	// while the spare sits idle.
	reroute atomic.Int64
}

// Name identifies the policy.
func (r *StaticRouter) Name() string { return "static" }

// Pin assigns lanes round-robin: N serve shards over N peers yields one
// dispatch lane per peer, exactly like RemotePool.
func (r *StaticRouter) Pin(lane, npeers int) int {
	if npeers <= 0 {
		return 0
	}
	return lane % npeers
}

// Pick prefers the pinned peer; once it is out (or already failed this
// chunk) the scan start rotates so displaced traffic spreads.
func (r *StaticRouter) Pick(peers []*fleetPeer, pref int, tried func(*fleetPeer) bool, first bool) *fleetPeer {
	n := len(peers)
	if n == 0 {
		return nil
	}
	start := pref % n
	if !first || !peers[start].routable() {
		start = int(r.reroute.Add(1) - 1)
	}
	for i := 0; i < n; i++ {
		c := peers[(start%n+n+i)%n]
		if c.routable() && !tried(c) {
			return c
		}
	}
	return nil
}

// Hedge scans forward from the preference for any other routable peer.
func (r *StaticRouter) Hedge(peers []*fleetPeer, pref int, primary *fleetPeer) *fleetPeer {
	n := len(peers)
	for i := 0; i < n; i++ {
		p := peers[(pref+1+i)%n]
		if p != primary && p.routable() {
			return p
		}
	}
	return nil
}

// Weighted-router scoring floors. Headroom is floored so a peer whose
// window is momentarily full still scores (it may free a slot before a
// blocked Acquire times out — starving it entirely would pin its EWMA
// stale forever); latency is floored so a sub-millisecond loopback peer
// cannot divide the score to infinity on estimator noise.
const (
	routeMinHeadroom  = 0.25
	routeMinLatencyMS = 0.05
)

// WeightedRouter scores every routable peer by free congestion-window
// headroom over its latency EWMA and routes to the best — least-loaded
// placement off signals the fleet already maintains. Stateless: both
// inputs are live shared state (the CUBIC window and the RTT estimator),
// so every lane sees one load picture per peer.
type WeightedRouter struct{}

// Name identifies the policy.
func (r *WeightedRouter) Name() string { return "weighted" }

// Pin spreads lane preferences round-robin like the static policy; under
// weighted routing the pin only breaks scoring ties (deterministic lane
// spread when all peers look identical, e.g. at cold start).
func (r *WeightedRouter) Pin(lane, npeers int) int {
	if npeers <= 0 {
		return 0
	}
	return lane % npeers
}

// Pick routes to the routable un-tried peer with the best weight, breaking
// ties toward the lane preference.
func (r *WeightedRouter) Pick(peers []*fleetPeer, pref int, tried func(*fleetPeer) bool, first bool) *fleetPeer {
	n := len(peers)
	if n == 0 {
		return nil
	}
	var best *fleetPeer
	bestW := 0.0
	for i := 0; i < n; i++ {
		p := peers[(pref+i)%n]
		if !p.routable() || tried(p) {
			continue
		}
		if w := routeWeight(p); best == nil || w > bestW {
			best, bestW = p, w
		}
	}
	return best
}

// Hedge picks the best-scoring routable peer other than the primary — the
// hedge should land where the spare capacity is.
func (r *WeightedRouter) Hedge(peers []*fleetPeer, pref int, primary *fleetPeer) *fleetPeer {
	return r.Pick(peers, pref, func(p *fleetPeer) bool { return p == primary }, false)
}

// routeWeight is the weighted policy's score: free window headroom over
// smoothed latency, both floored. A cold peer (no latency samples yet —
// rare, since dial and re-admission both seed the EWMA from the handshake
// round trip) scores optimistically at the latency floor so it attracts
// probe traffic and converges.
func routeWeight(p *fleetPeer) float64 {
	st := p.b.win.Stat()
	head := st.Cwnd - float64(st.InFlight)
	if head < routeMinHeadroom {
		head = routeMinHeadroom
	}
	lat := p.lat.Value()
	if p.lat.N() == 0 || lat < routeMinLatencyMS {
		lat = routeMinLatencyMS
	}
	return head / lat
}
