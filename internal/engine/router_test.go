package engine

import (
	"testing"
	"time"

	"percival/internal/faultinject"
	"percival/internal/synth"
)

// TestNewRouterPolicies: the factory maps policy names to routers and
// rejects the rest.
func TestNewRouterPolicies(t *testing.T) {
	for _, name := range []string{"", "static"} {
		r, err := NewRouter(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != "static" {
			t.Fatalf("NewRouter(%q) built %q", name, r.Name())
		}
	}
	r, err := NewRouter("weighted")
	if err != nil || r.Name() != "weighted" {
		t.Fatalf("NewRouter(weighted) = %v, %v", r, err)
	}
	if _, err := NewRouter("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestWeightedRouterShedsSlowPeer: under the weighted policy a fleet must
// shift dispatch toward the peer with better window headroom per unit
// latency — the slow peer keeps serving (it stays healthy) but carries a
// minority of the frames, with verdicts bit-identical throughout.
func TestWeightedRouterShedsSlowPeer(t *testing.T) {
	net, res := testNet(t, 16)
	a, b := NewFP32(net, res), NewFP32(net, res)
	defer a.Close()
	defer b.Close()
	tsA, injA := newFaultyPeer(t, a)
	tsB, _ := newFaultyPeer(t, b)

	f := dialFleet(t, FleetOptions{
		EvictAfter:    50,
		HedgeQuantile: -1, // routing, not hedging, is under test
		Router:        &WeightedRouter{},
	}, tsA.URL, tsB.URL)
	if f.Router().Name() != "weighted" {
		t.Fatalf("fleet router %q", f.Router().Name())
	}

	frames := synth.SampleFrames(7, 2)
	want := make([]float64, len(frames))
	a.InferBatchInto(frames, want)
	out := make([]float64, len(frames))

	// warm both EWMAs, then make A slow and keep dispatching on one lane —
	// the per-chunk Pick must migrate the traffic to B
	for i := 0; i < 6; i++ {
		f.InferBatchInto(frames, out)
	}
	injA.Set(faultinject.Fault{Latency: 60 * time.Millisecond, LatencyRate: 1.0})
	aBefore := f.Peers()[0].Stats().Frames
	bBefore := f.Peers()[1].Stats().Frames
	for i := 0; i < 20; i++ {
		out[0], out[1] = 9, 9
		f.InferBatchInto(frames, out)
		for j := range out {
			if out[j] != want[j] {
				t.Fatalf("weighted chunk %d: frame %d scored %v, want %v", i, j, out[j], want[j])
			}
		}
	}
	aGot := f.Peers()[0].Stats().Frames - aBefore
	bGot := f.Peers()[1].Stats().Frames - bBefore
	if bGot <= aGot {
		t.Fatalf("weighted router kept loading the slow peer: slow=%d fast=%d frames", aGot, bGot)
	}
}

// TestStaticRouterPinsAndFailsOver: the default policy preserves the old
// contract — lane pinning round-robin, forward-scan failover off an
// unroutable preferred peer.
func TestStaticRouterPinsAndFailsOver(t *testing.T) {
	r := &StaticRouter{}
	if r.Pin(0, 3) != 0 || r.Pin(4, 3) != 1 {
		t.Fatalf("static pinning broke: %d,%d", r.Pin(0, 3), r.Pin(4, 3))
	}
	none := func(*fleetPeer) bool { return false }

	mk := func(states ...PeerState) []*fleetPeer {
		peers := make([]*fleetPeer, len(states))
		for i, s := range states {
			p := &fleetPeer{}
			p.state.Store(int32(s))
			peers[i] = p
		}
		return peers
	}
	peers := mk(PeerHealthy, PeerHealthy, PeerHealthy)
	if got := r.Pick(peers, 1, none, true); got != peers[1] {
		t.Fatal("first attempt not on the preferred peer")
	}
	peers[1].state.Store(int32(PeerEvicted))
	if got := r.Pick(peers, 1, none, true); got == peers[1] || got == nil {
		t.Fatal("unroutable preferred peer still picked")
	}
	// draining peers take no fresh chunks either
	peers = mk(PeerDraining, PeerHealthy)
	if got := r.Pick(peers, 0, none, true); got != peers[1] {
		t.Fatal("draining peer picked for a fresh chunk")
	}
	// all tried -> nil, the dispatcher's fallback signal
	tried := func(*fleetPeer) bool { return true }
	if got := r.Pick(peers, 0, tried, false); got != nil {
		t.Fatal("exhausted candidate set did not return nil")
	}
}
