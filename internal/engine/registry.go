package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Registry names the backends a service knows about — model versions,
// engine variants — and designates one as the default. Selecting a backend
// by name with fallback to the default is how callers express engine
// policy ("int8 if the parity gate passed, fp32 otherwise") without inline
// branching at every call site. It also hosts the agreement-gated canary
// controller (canary.go) that automates default promotion between model
// versions.
type Registry struct {
	mu    sync.RWMutex
	m     map[string]Backend
	names []string // registration order, for stable listings
	def   string

	// canary is the active (or most recently finished) rollout controller.
	// Atomic so the CanaryBackend dispatch path reads it lock-free; only
	// BeginCanary swaps it, under mu.
	canary atomic.Pointer[canaryController]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Backend)}
}

// Register adds a named backend. The first registration becomes the
// default. Duplicate names are an error — versioned models get versioned
// names ("fp32@2").
func (r *Registry) Register(name string, b Backend) error {
	if name == "" {
		return fmt.Errorf("engine: empty backend name")
	}
	if b == nil {
		return fmt.Errorf("engine: nil backend %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("engine: backend %q already registered", name)
	}
	r.m[name] = b
	r.names = append(r.names, name)
	if r.def == "" {
		r.def = name
	}
	return nil
}

// Deregister removes a named backend without closing it (the caller owns
// the shutdown — a fleet drain wants the transport alive until in-flight
// chunks quiesce). The default cannot be deregistered: dispatch paths
// lean on Select's fallback never being nil.
func (r *Registry) Deregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; !ok {
		return fmt.Errorf("engine: backend %q not registered", name)
	}
	if r.def == name {
		return fmt.Errorf("engine: cannot deregister the default backend %q", name)
	}
	delete(r.m, name)
	for i, n := range r.names {
		if n == name {
			r.names = append(r.names[:i], r.names[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns the backend registered under name.
func (r *Registry) Get(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.m[name]
	return b, ok
}

// Select returns the backend registered under name, falling back to the
// default when name is empty or unknown — the lenient lookup dispatch
// paths want (a stale model name must not take the service down).
func (r *Registry) Select(name string) Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if b, ok := r.m[name]; ok {
		return b
	}
	return r.m[r.def]
}

// SetDefault designates the backend new traffic routes to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; !ok {
		return fmt.Errorf("engine: cannot default to unregistered backend %q", name)
	}
	r.def = name
	return nil
}

// Default returns the default backend (nil for an empty registry).
func (r *Registry) Default() Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[r.def]
}

// DefaultName returns the default backend's name ("" when empty).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Names lists the registered backends in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Close closes every registered backend.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.m {
		b.Close()
	}
}
