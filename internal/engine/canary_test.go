package engine

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"percival/internal/imaging"
	"percival/internal/synth"
)

// scriptedBackend scores every frame with a settable fixed value — the
// knob canary tests steer verdict agreement with. Concurrency-safe (the
// score is atomic), so Replicate can hand out the shared instance.
type scriptedBackend struct {
	name   string
	res    int
	score  atomic.Uint64 // math.Float64bits
	frames atomic.Int64
}

func newScripted(name string, res int, score float64) *scriptedBackend {
	b := &scriptedBackend{name: name, res: res}
	b.score.Store(math.Float64bits(score))
	return b
}

func (b *scriptedBackend) setScore(s float64) { b.score.Store(math.Float64bits(s)) }

func (b *scriptedBackend) Name() string       { return b.name }
func (b *scriptedBackend) InputRes() int      { return b.res }
func (b *scriptedBackend) Stats() Stats       { return Stats{Frames: b.frames.Load()} }
func (b *scriptedBackend) Warm(int)           {}
func (b *scriptedBackend) Close()             {}
func (b *scriptedBackend) Replicate() Backend { return b }

func (b *scriptedBackend) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	s := math.Float64frombits(b.score.Load())
	for i := range frames {
		out[i] = s
	}
	b.frames.Add(int64(len(frames)))
	return out[:len(frames)]
}

// canaryRig wires a registry with a scripted incumbent + candidate and the
// dispatch proxy over the incumbent.
func canaryRig(t *testing.T, incScore, candScore float64) (*Registry, *scriptedBackend, *scriptedBackend, *CanaryBackend) {
	t.Helper()
	reg := NewRegistry()
	inc := newScripted("incumbent", 16, incScore)
	cand := newScripted("candidate", 16, candScore)
	if err := reg.Register("incumbent", inc); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("candidate", cand); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetDefault("incumbent"); err != nil {
		t.Fatal(err)
	}
	cb := NewCanaryBackend(reg, inc)
	t.Cleanup(cb.Close)
	return reg, inc, cand, cb
}

// TestCanaryPromotesOnSustainedAgreement: with the candidate agreeing on
// every shadowed frame, a full hold window at the floor must promote it to
// registry default — no wall clock, no manual gate — and the dispatch
// proxy must route everything to it afterwards.
func TestCanaryPromotesOnSustainedAgreement(t *testing.T) {
	reg, inc, cand, cb := canaryRig(t, 0.9, 0.8) // same side of 0.5: agree
	err := reg.BeginCanary("candidate", CanaryOptions{
		Fraction: 1.0, Floor: 0.99, HoldWindow: 32, MinSamples: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := reg.CanaryStatus(); !st.Active || st.State != "running" {
		t.Fatalf("rollout did not start: %+v", st)
	}

	frames := synth.SampleFrames(3, 8)
	out := make([]float64, len(frames))
	for i := 0; i < 4; i++ { // 32 shadowed frames = one full window
		cb.InferBatchInto(frames, out)
		if out[0] != 0.8 {
			t.Fatalf("shifted chunk %d answered by %v, want candidate 0.8", i, out[0])
		}
	}
	st := reg.CanaryStatus()
	if st.State != "promoted" || st.Samples != 32 || st.Agreement != 1.0 {
		t.Fatalf("not promoted after a full agreeing window: %+v", st)
	}
	if reg.DefaultName() != "candidate" {
		t.Fatalf("registry default %q after promotion", reg.DefaultName())
	}

	// post-promotion dispatch rides the candidate, incumbent sees nothing
	incBefore, candBefore := inc.frames.Load(), cand.frames.Load()
	cb.InferBatchInto(frames, out)
	if out[0] != 0.8 || cand.frames.Load() == candBefore || inc.frames.Load() != incBefore {
		t.Fatalf("promoted traffic not on candidate: out=%v inc=%d->%d cand=%d->%d",
			out[0], incBefore, inc.frames.Load(), candBefore, cand.frames.Load())
	}
}

// TestCanaryRollsBackOnDip: agreement dipping below the floor after
// MinSamples must snap the rollout back — default unchanged, candidate out
// of the dispatch path on the next chunk.
func TestCanaryRollsBackOnDip(t *testing.T) {
	reg, inc, cand, cb := canaryRig(t, 0.9, 0.9)
	err := reg.BeginCanary("candidate", CanaryOptions{
		Fraction: 1.0, Floor: 0.99, HoldWindow: 32, MinSamples: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(4, 8)
	out := make([]float64, len(frames))
	cb.InferBatchInto(frames, out) // 8 agreeing samples: at MinSamples, no dip yet

	cand.setScore(0.1) // crosses the 0.5 threshold: every frame now disagrees
	cb.InferBatchInto(frames, out)
	st := reg.CanaryStatus()
	if st.State != "rolled_back" {
		t.Fatalf("disagreeing candidate not rolled back: %+v", st)
	}
	if reg.DefaultName() != "incumbent" {
		t.Fatalf("rollback flipped the default to %q", reg.DefaultName())
	}

	// traffic is back on the incumbent
	candBefore := cand.frames.Load()
	for i := 0; i < 3; i++ {
		cb.InferBatchInto(frames, out)
		if out[0] != 0.9 {
			t.Fatalf("post-rollback chunk answered %v, want incumbent 0.9", out[0])
		}
	}
	if cand.frames.Load() != candBefore {
		t.Fatal("candidate still receiving traffic after rollback")
	}
	_ = inc
}

// TestCanaryFractionRotor: the deterministic counter split shifts exactly
// every period-th chunk, so Fraction 0.5 shadows half the chunks.
func TestCanaryFractionRotor(t *testing.T) {
	reg, _, _, cb := canaryRig(t, 0.9, 0.8)
	err := reg.BeginCanary("candidate", CanaryOptions{
		Fraction: 0.5, Floor: 0.99, HoldWindow: 1024, MinSamples: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(5, 4)
	out := make([]float64, len(frames))
	for i := 0; i < 8; i++ {
		cb.InferBatchInto(frames, out)
	}
	if st := reg.CanaryStatus(); st.Samples != 16 {
		t.Fatalf("fraction 0.5 over 8x4 frames shadowed %d, want 16", st.Samples)
	}
}

// TestCanaryGuards: the rollout refuses nonsense — unknown candidates, the
// current default, resolution mismatches, double-starts — and CancelCanary
// reports whether it actually stopped a running rollout.
func TestCanaryGuards(t *testing.T) {
	reg, _, _, _ := canaryRig(t, 0.9, 0.9)
	if err := reg.BeginCanary("ghost", CanaryOptions{}); err == nil {
		t.Fatal("unknown candidate accepted")
	}
	if err := reg.BeginCanary("incumbent", CanaryOptions{}); err == nil {
		t.Fatal("default accepted as its own candidate")
	}
	if err := reg.Register("small", newScripted("small", 8, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := reg.BeginCanary("small", CanaryOptions{}); err == nil {
		t.Fatal("resolution mismatch accepted")
	}
	if reg.CancelCanary() {
		t.Fatal("canceled a rollout that never started")
	}
	if err := reg.BeginCanary("candidate", CanaryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.BeginCanary("candidate", CanaryOptions{}); err == nil {
		t.Fatal("second rollout started over a running one")
	}
	if !reg.CancelCanary() {
		t.Fatal("cancel did not stop the running rollout")
	}
	if st := reg.CanaryStatus(); st.State != "rolled_back" || st.Active {
		t.Fatalf("cancel state: %+v", st)
	}
	// a finished rollout does not block the next one
	if err := reg.BeginCanary("candidate", CanaryOptions{}); err != nil {
		t.Fatalf("rollout after a finished one refused: %v", err)
	}
}

// TestCanaryConcurrentSelectDuringShift hammers the shadow-scoring path
// from parallel dispatch lanes while other goroutines read and mutate the
// registry — the satellite's -race contract over Select/SetDefault during
// a live traffic shift. Incumbent and candidate agree, so the rollout must
// land on promoted with every verdict intact.
func TestCanaryConcurrentSelectDuringShift(t *testing.T) {
	reg, _, _, cb := canaryRig(t, 0.9, 0.9)
	err := reg.BeginCanary("candidate", CanaryOptions{
		Fraction: 1.0, Floor: 0.99, HoldWindow: 64, MinSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(6, 4)
	var wg sync.WaitGroup
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(b Backend) {
			defer wg.Done()
			out := make([]float64, len(frames))
			for i := 0; i < 32; i++ {
				b.InferBatchInto(frames, out)
				if out[0] != 0.9 {
					t.Errorf("verdict %v mid-shift, want 0.9", out[0])
					return
				}
			}
		}(cb.Replicate())
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				reg.Select("incumbent").Name()
				reg.Select("candidate").InputRes()
				reg.CanaryStatus()
				reg.DefaultName()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			// operator flapping the default mid-shift must stay safe
			reg.SetDefault("incumbent")
		}
	}()
	wg.Wait()
	if st := reg.CanaryStatus(); st.State != "promoted" {
		t.Fatalf("agreeing rollout under concurrency ended %+v", st)
	}
}
