package engine

// The HTTP wire surface shared by RemoteBackend (the client in remote.go)
// and the daemon endpoints cmd/percival-serve mounts: one binary frame-batch
// format for POST /classify/batch and one JSON handshake for GET /modelz.
// Keeping encoder, decoder and handlers in one file means the two sides of
// the wire can never silently diverge.
//
// Batch request body (little-endian):
//
//	magic   "PCVB"            4 bytes
//	version uint16            currently 1
//	count   uint32            frames in the batch
//	frame   w uint32, h uint32, then w*h*4 RGBA bytes, count times
//
// Batch response body:
//
//	magic   "PCVS"            4 bytes
//	version uint16
//	count   uint32            must equal the request count
//	score   float64 bits (ad-class probability), count times
//
// Frames travel at their original resolution: the peer runs the exact same
// pre-processing (ResizeBilinearInto + ToTensorInto) an in-process backend
// would, so a proxied verdict is bit-identical to local dispatch.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"percival/internal/imaging"
)

const (
	batchMagic  = "PCVB"
	scoreMagic  = "PCVS"
	wireVersion = 1
	// wireHeaderLen is the shared magic+version+count prefix length.
	wireHeaderLen = 4 + 2 + 4
	// maxWireFrames bounds one batch request; a proxy chunks by BatchChunk,
	// so anything near this limit is a misbehaving client, not a big batch.
	maxWireFrames = 4096
	// maxWireEdge/maxWireFrameBytes bound one frame before its pixel buffer
	// is allocated, so a lying header cannot over-allocate the peer.
	maxWireEdge       = 1 << 15
	maxWireFrameBytes = 32 << 20
)

// encodeFrames appends the batch wire encoding of frames to buf.
func encodeFrames(buf []byte, frames []*imaging.Bitmap) []byte {
	buf = append(buf, batchMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frames)))
	for _, f := range frames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.W))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.H))
		buf = append(buf, f.Pix...)
	}
	return buf
}

// decodeFrames reads a batch wire stream, validating every frame header
// before allocating its pixel buffer.
func decodeFrames(r io.Reader) ([]*imaging.Bitmap, error) {
	br := bufio.NewReader(r)
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("engine: batch header: %w", err)
	}
	if string(hdr[:4]) != batchMagic {
		return nil, fmt.Errorf("engine: not a frame batch (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersion {
		return nil, fmt.Errorf("engine: batch version %d, want %d", v, wireVersion)
	}
	count := binary.LittleEndian.Uint32(hdr[6:10])
	if count == 0 || count > maxWireFrames {
		return nil, fmt.Errorf("engine: batch of %d frames (1..%d)", count, maxWireFrames)
	}
	frames := make([]*imaging.Bitmap, 0, count)
	for i := uint32(0); i < count; i++ {
		var dims [8]byte
		if _, err := io.ReadFull(br, dims[:]); err != nil {
			return nil, fmt.Errorf("engine: frame %d header: %w", i, err)
		}
		w := int(binary.LittleEndian.Uint32(dims[0:4]))
		h := int(binary.LittleEndian.Uint32(dims[4:8]))
		if w <= 0 || h <= 0 || w > maxWireEdge || h > maxWireEdge || w*h*4 > maxWireFrameBytes {
			return nil, fmt.Errorf("engine: frame %d is %dx%d", i, w, h)
		}
		b := imaging.NewBitmap(w, h)
		if _, err := io.ReadFull(br, b.Pix); err != nil {
			return nil, fmt.Errorf("engine: frame %d pixels: %w", i, err)
		}
		frames = append(frames, b)
	}
	return frames, nil
}

// encodeScores appends the score wire encoding to buf.
func encodeScores(buf []byte, scores []float64) []byte {
	buf = append(buf, scoreMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(scores)))
	for _, s := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	return buf
}

// decodeScoresInto reads a score stream into out; the peer must return
// exactly len(out) scores.
func decodeScoresInto(r io.Reader, out []float64) error {
	br := bufio.NewReader(r)
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("engine: score header: %w", err)
	}
	if string(hdr[:4]) != scoreMagic {
		return fmt.Errorf("engine: not a score stream (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersion {
		return fmt.Errorf("engine: score version %d, want %d", v, wireVersion)
	}
	if count := binary.LittleEndian.Uint32(hdr[6:10]); count != uint32(len(out)) {
		return fmt.Errorf("engine: %d scores for %d frames", count, len(out))
	}
	var buf [8]byte
	for i := range out {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("engine: score %d: %w", i, err)
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return nil
}

// selectWire resolves the ?model= parameter against the registry, falling
// back to def when the parameter is absent (Registry.Select already handles
// unknown names leniently).
func selectWire(reg *Registry, def Backend, r *http.Request) Backend {
	if name := r.URL.Query().Get("model"); name != "" && reg != nil {
		return reg.Select(name)
	}
	return def
}

// BatchHandler serves POST /classify/batch: length-prefixed raw-RGBA frames
// in, scores out, one forward pass per request (clients chunk by BatchChunk,
// so a well-behaved request is exactly one forward pass on the selected
// backend). ?model= selects a registry entry; def serves when the parameter
// is absent. reg may be nil for a single-engine peer.
func BatchHandler(reg *Registry, def Backend) http.HandlerFunc {
	// one well-behaved request is at most BatchChunk max-size frames
	const maxBatchBody = BatchChunk*(maxWireFrameBytes+8) + wireHeaderLen
	return func(w http.ResponseWriter, r *http.Request) {
		frames, err := decodeFrames(http.MaxBytesReader(w, r.Body, maxBatchBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b := selectWire(reg, def, r)
		scores := make([]float64, len(frames))
		b.InferBatchInto(frames, scores)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(encodeScores(make([]byte, 0, wireHeaderLen+8*len(scores)), scores))
	}
}

// ModelzInfo is the GET /modelz handshake payload: everything a proxy needs
// to validate a peer before routing traffic to it.
type ModelzInfo struct {
	// WireVersion is the /classify/batch format version the peer speaks; a
	// proxy refuses a version-skewed peer at dial time, because every batch
	// would deterministically fail open otherwise.
	WireVersion int `json:"wire_version"`
	// Engine is the backend that would serve a batch with the same ?model=.
	Engine string `json:"engine"`
	// InputRes is that backend's network input resolution; a proxy refuses
	// a peer whose resolution differs from its own pre-processing contract.
	InputRes int `json:"input_res"`
	// Threshold is the peer's ad-probability blocking threshold.
	Threshold float64 `json:"threshold"`
	// Backends lists the peer's registry entries (?model= candidates).
	Backends []string `json:"backends,omitempty"`
}

// ModelzHandler serves GET /modelz, the proxy handshake. ?model= reports
// the entry a batch request with the same parameter would hit.
func ModelzHandler(reg *Registry, def Backend, threshold float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		b := selectWire(reg, def, r)
		var names []string
		if reg != nil {
			names = reg.Names()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ModelzInfo{
			WireVersion: wireVersion,
			Engine:      b.Name(),
			InputRes:    b.InputRes(),
			Threshold:   threshold,
			Backends:    names,
		})
	}
}
