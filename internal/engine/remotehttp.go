package engine

// The HTTP wire surface shared by RemoteBackend (the client in remote.go)
// and the daemon endpoints cmd/percival-serve mounts: one binary frame-batch
// format for POST /classify/batch and one JSON handshake for GET /modelz.
// Keeping encoder, decoder and handlers in one file means the two sides of
// the wire can never silently diverge.
//
// Wire v1 — one message per HTTP exchange. Batch request body
// (little-endian):
//
//	magic   "PCVB"            4 bytes
//	version uint16            1
//	count   uint32            frames in the batch
//	frame   w uint32, h uint32, then w*h*4 RGBA bytes, count times
//
// Batch response body:
//
//	magic   "PCVS"            4 bytes
//	version uint16            1
//	count   uint32            must equal the request count
//	score   float64 bits (ad-class probability), count times
//
// Wire v2 — the persistent-socket framing (sockwire.go): the same magics
// and little-endian layout, carried as multiplexed messages over one hot
// TCP connection instead of one HTTP exchange each. Every message header
// grows a request ID (echoed by the response, so responses may arrive out
// of order) and a flags word:
//
//	magic   "PCVB"/"PCVS"     4 bytes
//	version uint16            2
//	id      uint32            request ID, echoed by the response
//	flags   uint32            sockFlagProbe (request) / sockFlagMask (response)
//	count   uint32            entries that follow
//
// A request with sockFlagProbe carries count × (32-byte content key +
// 8-byte perceptual hash) — the hash-first dedup tier: the peer answers
// from its verdict cache and never sees the pixels. Its response carries
// sockFlagMask: a ceil(count/8) hit bitmask followed by one float64 score
// per set bit. A request without sockFlagProbe carries count ×
// (32-byte content key + w uint32 + h uint32 + w*h*4 RGBA bytes) — pixels
// for the probe misses, keyed so the peer can store the verdicts it scores
// without re-hashing; its response is count × float64 scores, v1-style.
//
// Which framing a peer speaks is negotiated through /modelz: wire_version
// is the highest version the peer accepts, and wire_addr names its socket
// listener (empty = HTTP only). A v2 proxy falls back to per-request HTTP
// v1 against a v1 peer, so mixed fleets interoperate during rollout.
//
// Frames travel at their original resolution: the peer runs the exact same
// pre-processing (ResizeBilinearInto + ToTensorInto) an in-process backend
// would, so a proxied verdict is bit-identical to local dispatch — and a
// dedup hit is answered from a cache filled by those same model runs, so
// it is bit-identical too.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"

	"percival/internal/imaging"
)

const (
	batchMagic  = "PCVB"
	scoreMagic  = "PCVS"
	wireVersion = 1
	// wireVersionSock is the persistent-socket framing version (sockwire.go).
	// A peer's /modelz advertises the highest version it speaks; proxies
	// accept any version in [wireVersion, wireVersionSock] and pick the
	// transport the peer's handshake supports.
	wireVersionSock = 2
	// wireHeaderLen is the shared magic+version+count prefix length.
	wireHeaderLen = 4 + 2 + 4
	// maxWireFrames bounds one batch request; a proxy chunks by BatchChunk,
	// so anything near this limit is a misbehaving client, not a big batch.
	maxWireFrames = 4096
	// maxWireEdge/maxWireFrameBytes bound one frame before its pixel buffer
	// is allocated, so a lying header cannot over-allocate the peer.
	maxWireEdge       = 1 << 15
	maxWireFrameBytes = 32 << 20
)

// encodeFrames appends the batch wire encoding of frames to buf.
func encodeFrames(buf []byte, frames []*imaging.Bitmap) []byte {
	buf = append(buf, batchMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frames)))
	for _, f := range frames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.W))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.H))
		buf = append(buf, f.Pix...)
	}
	return buf
}

// decodeFrames reads a batch wire stream, validating every frame header
// before allocating its pixel buffer.
func decodeFrames(r io.Reader) ([]*imaging.Bitmap, error) {
	br := bufio.NewReader(r)
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("engine: batch header: %w", err)
	}
	if string(hdr[:4]) != batchMagic {
		return nil, fmt.Errorf("engine: not a frame batch (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersion {
		return nil, fmt.Errorf("engine: batch version %d, want %d", v, wireVersion)
	}
	count := binary.LittleEndian.Uint32(hdr[6:10])
	if count == 0 || count > maxWireFrames {
		return nil, fmt.Errorf("engine: batch of %d frames (1..%d)", count, maxWireFrames)
	}
	frames := make([]*imaging.Bitmap, 0, count)
	for i := uint32(0); i < count; i++ {
		var dims [8]byte
		if _, err := io.ReadFull(br, dims[:]); err != nil {
			return nil, fmt.Errorf("engine: frame %d header: %w", i, err)
		}
		w := int(binary.LittleEndian.Uint32(dims[0:4]))
		h := int(binary.LittleEndian.Uint32(dims[4:8]))
		// the byte-size bound is computed in int64: on a 32-bit platform
		// w*h*4 wraps for max-edge headers (32768×32768×4 = 2^32), letting a
		// lying header pass validation with a negative or tiny product
		if w <= 0 || h <= 0 || w > maxWireEdge || h > maxWireEdge || int64(w)*int64(h)*4 > maxWireFrameBytes {
			return nil, fmt.Errorf("engine: frame %d is %dx%d", i, w, h)
		}
		b := imaging.NewBitmap(w, h)
		if _, err := io.ReadFull(br, b.Pix); err != nil {
			return nil, fmt.Errorf("engine: frame %d pixels: %w", i, err)
		}
		frames = append(frames, b)
	}
	return frames, nil
}

// encodeScores appends the score wire encoding to buf.
func encodeScores(buf []byte, scores []float64) []byte {
	buf = append(buf, scoreMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(scores)))
	for _, s := range scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	return buf
}

// decodeScoresInto reads a score stream into out; the peer must return
// exactly len(out) scores.
func decodeScoresInto(r io.Reader, out []float64) error {
	br := bufio.NewReader(r)
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("engine: score header: %w", err)
	}
	if string(hdr[:4]) != scoreMagic {
		return fmt.Errorf("engine: not a score stream (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != wireVersion {
		return fmt.Errorf("engine: score version %d, want %d", v, wireVersion)
	}
	if count := binary.LittleEndian.Uint32(hdr[6:10]); count != uint32(len(out)) {
		return fmt.Errorf("engine: %d scores for %d frames", count, len(out))
	}
	var buf [8]byte
	for i := range out {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("engine: score %d: %w", i, err)
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return nil
}

// selectWire resolves the ?model= parameter against the registry, falling
// back to def when the parameter is absent (Registry.Select already handles
// unknown names leniently).
func selectWire(reg *Registry, def Backend, r *http.Request) Backend {
	if name := r.URL.Query().Get("model"); name != "" && reg != nil {
		return reg.Select(name)
	}
	return def
}

// httpWire carries the server-side counters of the HTTP batch endpoint —
// the /metrics view of satellite traffic a front proxies here. WriteErrors
// is the interesting one: a response write that failed mid-stream surfaces
// client-side as a confusing truncation error, so the serving side must
// count it as its own signal.
var httpWire struct {
	requests    atomic.Int64
	bytesIn     atomic.Int64
	bytesOut    atomic.Int64
	writeErrors atomic.Int64
}

// HTTPWireStats is a snapshot of the HTTP batch endpoint's wire counters.
type HTTPWireStats struct {
	Requests    int64
	BytesIn     int64
	BytesOut    int64
	WriteErrors int64
}

// WireHTTPStats snapshots the process-wide HTTP batch-endpoint counters.
func WireHTTPStats() HTTPWireStats {
	return HTTPWireStats{
		Requests:    httpWire.requests.Load(),
		BytesIn:     httpWire.bytesIn.Load(),
		BytesOut:    httpWire.bytesOut.Load(),
		WriteErrors: httpWire.writeErrors.Load(),
	}
}

// countingReader counts bytes drawn from an HTTP request body.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// BatchHandler serves POST /classify/batch: length-prefixed raw-RGBA frames
// in, scores out, one forward pass per request (clients chunk by BatchChunk,
// so a well-behaved request is exactly one forward pass on the selected
// backend). ?model= selects a registry entry; def serves when the parameter
// is absent. reg may be nil for a single-engine peer.
func BatchHandler(reg *Registry, def Backend) http.HandlerFunc {
	// one well-behaved request is at most BatchChunk max-size frames
	const maxBatchBody = BatchChunk*(maxWireFrameBytes+8) + wireHeaderLen
	return func(w http.ResponseWriter, r *http.Request) {
		httpWire.requests.Add(1)
		body := countingReader{r: http.MaxBytesReader(w, r.Body, maxBatchBody), n: &httpWire.bytesIn}
		frames, err := decodeFrames(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b := selectWire(reg, def, r)
		scores := make([]float64, len(frames))
		b.InferBatchInto(frames, scores)
		payload := encodeScores(make([]byte, 0, wireHeaderLen+8*len(scores)), scores)
		// Content-Length lets the client distinguish a truncated score
		// stream from a complete one instead of hitting an opaque decode
		// error, and keeps the connection reusable without chunked framing.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		if _, err := w.Write(payload); err != nil {
			// the client is gone or the connection broke mid-response; the
			// forward pass is already spent, so make the loss observable
			httpWire.writeErrors.Add(1)
			return
		}
		httpWire.bytesOut.Add(int64(len(payload)))
	}
}

// ModelzInfo is the GET /modelz handshake payload: everything a proxy needs
// to validate a peer before routing traffic to it.
type ModelzInfo struct {
	// WireVersion is the highest wire version the peer speaks (1 = HTTP
	// /classify/batch only, 2 = the persistent-socket framing as well). A
	// proxy refuses a peer outside its own [wireVersion, wireVersionSock]
	// compatibility range at dial time, because every batch would
	// deterministically fail open otherwise; inside the range it picks the
	// best transport both ends support.
	WireVersion int `json:"wire_version"`
	// WireAddr is the peer's persistent-socket listener ("host:port"; an
	// empty or wildcard host is resolved against the peer's HTTP host).
	// Empty means HTTP only — the v1 fallback every proxy can ride.
	WireAddr string `json:"wire_addr,omitempty"`
	// Engine is the backend that would serve a batch with the same ?model=.
	Engine string `json:"engine"`
	// InputRes is that backend's network input resolution; a proxy refuses
	// a peer whose resolution differs from its own pre-processing contract.
	InputRes int `json:"input_res"`
	// Threshold is the peer's ad-probability blocking threshold.
	Threshold float64 `json:"threshold"`
	// Backends lists the peer's registry entries (?model= candidates).
	Backends []string `json:"backends,omitempty"`
	// InstanceID is the serving daemon's per-process identity (random at
	// startup). Dialers compare it against their own to reject self-dials
	// — an address looping back to the dialing daemon would proxy chunks
	// into itself recursively. Empty from peers predating the field.
	InstanceID string `json:"instance_id,omitempty"`
}

// ModelzHandler serves GET /modelz, the proxy handshake, for an HTTP-only
// peer (wire v1, no socket listener). ?model= reports the entry a batch
// request with the same parameter would hit.
func ModelzHandler(reg *Registry, def Backend, threshold float64) http.HandlerFunc {
	return ModelzHandlerWire(reg, def, threshold, "")
}

// ModelzHandlerWire is ModelzHandler for a peer that also mounts the
// persistent-socket wire listener at wireAddr: the handshake advertises
// wire v2 and the listener address, so dialing proxies negotiate the socket
// transport. An empty wireAddr degrades to the plain v1 handshake.
func ModelzHandlerWire(reg *Registry, def Backend, threshold float64, wireAddr string) http.HandlerFunc {
	return ModelzHandlerID(reg, def, threshold, wireAddr, "")
}

// ModelzHandlerID is ModelzHandlerWire carrying the daemon's per-process
// instance ID, letting dialing proxies detect self-dials (see
// ModelzInfo.InstanceID). percival-serve mounts this variant; the shorter
// wrappers remain for peers without an identity to advertise.
func ModelzHandlerID(reg *Registry, def Backend, threshold float64, wireAddr, instanceID string) http.HandlerFunc {
	version := wireVersion
	if wireAddr != "" {
		version = wireVersionSock
	}
	return func(w http.ResponseWriter, r *http.Request) {
		b := selectWire(reg, def, r)
		var names []string
		if reg != nil {
			names = reg.Names()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ModelzInfo{
			WireVersion: version,
			WireAddr:    wireAddr,
			Engine:      b.Name(),
			InputRes:    b.InputRes(),
			Threshold:   threshold,
			Backends:    names,
			InstanceID:  instanceID,
		})
	}
}
