// Package gradcam implements Grad-CAM (Selvaraju et al.), the salience
// mapping the paper uses in §5.6 / Fig. 4 to show which image regions drive
// the ad verdict: the class score's gradient with respect to a convolutional
// layer's activations is channel-averaged into weights, the weighted
// activation sum is rectified, and the result is upsampled onto the input.
package gradcam

import (
	"fmt"
	"math"
	"strings"

	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/tensor"
)

// Heatmap is a salience map over the network input, values in [0,1].
type Heatmap struct {
	W, H int
	Data []float64
}

// At returns the salience at (x, y).
func (h *Heatmap) At(x, y int) float64 { return h.Data[y*h.W+x] }

// Compute runs Grad-CAM for the given class on a single input ([1,C,H,W])
// at the layer with index targetLayer in net.Layers. It uses training-mode
// forward/backward machinery, so it must not run concurrently with training.
func Compute(net *nn.Sequential, x *tensor.Tensor, targetLayer, class int) (*Heatmap, error) {
	if targetLayer < 0 || targetLayer >= len(net.Layers) {
		return nil, fmt.Errorf("gradcam: layer %d out of range (%d layers)", targetLayer, len(net.Layers))
	}
	if x.Shape[0] != 1 {
		return nil, fmt.Errorf("gradcam: single-sample input required, got batch %d", x.Shape[0])
	}
	// forward, capturing the target layer's activation
	var act *tensor.Tensor
	h := x
	for i, l := range net.Layers {
		h = l.Forward(h, true)
		if i == targetLayer {
			if len(h.Shape) != 4 {
				return nil, fmt.Errorf("gradcam: layer %d (%s) output is not spatial", i, l.Name())
			}
			act = h.Clone() // later ReLU layers may modify h in place
		}
	}
	if class < 0 || class >= h.Shape[1] {
		return nil, fmt.Errorf("gradcam: class %d out of range", class)
	}
	// backward from the class logit down to (but not through) targetLayer:
	// afterwards grad holds d(score)/d(act)
	grad := tensor.New(h.Shape...)
	grad.Data[class] = 1
	for i := len(net.Layers) - 1; i > targetLayer; i-- {
		grad = net.Layers[i].Backward(grad)
	}
	c, ah, aw := act.Shape[1], act.Shape[2], act.Shape[3]
	plane := ah * aw
	weights := make([]float64, c)
	for ch := 0; ch < c; ch++ {
		var s float64
		for i := 0; i < plane; i++ {
			s += float64(grad.Data[ch*plane+i])
		}
		weights[ch] = s / float64(plane)
	}
	cam := make([]float64, plane)
	var maxV float64
	for i := 0; i < plane; i++ {
		var v float64
		for ch := 0; ch < c; ch++ {
			v += weights[ch] * float64(act.Data[ch*plane+i])
		}
		if v < 0 {
			v = 0 // ReLU
		}
		cam[i] = v
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 0 {
		for i := range cam {
			cam[i] /= maxV
		}
	}
	// drain remaining training state
	for i := targetLayer; i >= 0; i-- {
		grad = net.Layers[i].Backward(grad)
	}
	return &Heatmap{W: aw, H: ah, Data: cam}, nil
}

// Upsample bilinearly resizes the heatmap to w×h (typically the input
// resolution for overlay).
func (h *Heatmap) Upsample(w, ht int) *Heatmap {
	out := &Heatmap{W: w, H: ht, Data: make([]float64, w*ht)}
	for y := 0; y < ht; y++ {
		sy := float64(y) * float64(h.H-1) / math.Max(float64(ht-1), 1)
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= h.H {
			y1 = h.H - 1
		}
		fy := sy - float64(y0)
		for x := 0; x < w; x++ {
			sx := float64(x) * float64(h.W-1) / math.Max(float64(w-1), 1)
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= h.W {
				x1 = h.W - 1
			}
			fx := sx - float64(x0)
			top := h.At(x0, y0)*(1-fx) + h.At(x1, y0)*fx
			bot := h.At(x0, y1)*(1-fx) + h.At(x1, y1)*fx
			out.Data[y*w+x] = top*(1-fy) + bot*fy
		}
	}
	return out
}

// ASCII renders the heatmap as a text intensity plot (for terminal
// inspection of Fig. 4-style output).
func (h *Heatmap) ASCII() string {
	ramp := " .:-=+*#%@"
	var sb strings.Builder
	for y := 0; y < h.H; y++ {
		for x := 0; x < h.W; x++ {
			v := h.At(x, y)
			idx := int(v * float64(len(ramp)-1))
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PGM encodes the heatmap as a binary PGM image (P5).
func (h *Heatmap) PGM() []byte {
	header := fmt.Sprintf("P5\n%d %d\n255\n", h.W, h.H)
	out := make([]byte, 0, len(header)+len(h.Data))
	out = append(out, header...)
	for _, v := range h.Data {
		out = append(out, byte(v*255))
	}
	return out
}

// Overlay tints a bitmap with the heatmap (red where salient) for visual
// inspection; returns a new bitmap at the heatmap's resolution.
func Overlay(base *imaging.Bitmap, h *Heatmap) *imaging.Bitmap {
	scaled := imaging.ResizeBilinear(base, h.W, h.H)
	out := scaled.Clone()
	for y := 0; y < h.H; y++ {
		for x := 0; x < h.W; x++ {
			v := h.At(x, y)
			c := scaled.At(x, y)
			r := float64(c.R) + v*(255-float64(c.R))
			g := float64(c.G) * (1 - 0.6*v)
			b := float64(c.B) * (1 - 0.6*v)
			c.R, c.G, c.B = uint8(r), uint8(g), uint8(b)
			out.Set(x, y, c)
		}
	}
	return out
}

// MeanSalience returns the average salience inside the rectangle
// [x0,x1)×[y0,y1) — used by tests to verify the map attends to ad cues.
func (h *Heatmap) MeanSalience(x0, y0, x1, y1 int) float64 {
	var s float64
	n := 0
	for y := y0; y < y1 && y < h.H; y++ {
		for x := x0; x < x1 && x < h.W; x++ {
			if x < 0 || y < 0 {
				continue
			}
			s += h.At(x, y)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
