package gradcam

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/tensor"
)

// buildNet makes a tiny conv net whose first conv is the CAM target.
func buildNet(t *testing.T, seed int64) *nn.Sequential {
	t.Helper()
	net := nn.NewSequential(
		nn.NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		nn.NewReLU("r1"),
		nn.NewMaxPool("p1", 2, 2),
		nn.NewConv2D("c2", tensor.ConvSpec{InC: 4, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		nn.NewGlobalAvgPool("gap"),
	)
	nn.InitHe(net, rand.New(rand.NewSource(seed)))
	return net
}

func TestComputeShapeAndRange(t *testing.T) {
	net := buildNet(t, 1)
	x := tensor.New(1, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i%7) / 7
	}
	hm, err := Compute(net, x, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hm.W != 8 || hm.H != 8 {
		t.Fatalf("heatmap %dx%d", hm.W, hm.H)
	}
	for _, v := range hm.Data {
		if v < 0 || v > 1 {
			t.Fatalf("salience %v out of [0,1]", v)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	net := buildNet(t, 2)
	x := tensor.New(1, 1, 8, 8)
	if _, err := Compute(net, x, 99, 1); err == nil {
		t.Fatal("bad layer must error")
	}
	if _, err := Compute(net, x, 0, 7); err == nil {
		t.Fatal("bad class must error")
	}
	batch := tensor.New(2, 1, 8, 8)
	if _, err := Compute(net, batch, 0, 1); err == nil {
		t.Fatal("batch input must error")
	}
	// non-spatial layer (gap output) must error
	if _, err := Compute(net, x, 4, 1); err == nil {
		t.Fatal("non-spatial layer must error")
	}
}

// TestSalienceTracksDiscriminativeRegion trains a toy net where class 1 is
// "bright top-left quadrant" and verifies the CAM highlights that quadrant.
func TestSalienceTracksDiscriminativeRegion(t *testing.T) {
	net := buildNet(t, 3)
	opt := nn.NewSGD(net.Params(), 0.05, 0.9, 0)
	rng := rand.New(rand.NewSource(4))
	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = rng.Intn(2)
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := float32(rng.NormFloat64() * 0.1)
					if labels[i] == 1 && y < 4 && xx < 4 {
						v += 1.2
					}
					x.Set(v, i, 0, y, xx)
				}
			}
		}
		return x, labels
	}
	for step := 0; step < 150; step++ {
		x, labels := makeBatch(16)
		nn.TrainStep(net, opt, x, labels)
	}
	// a positive example
	x := tensor.New(1, 1, 8, 8)
	for y := 0; y < 4; y++ {
		for xx := 0; xx < 4; xx++ {
			x.Set(1.2, 0, 0, y, xx)
		}
	}
	hm, err := Compute(net, x, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	inside := hm.MeanSalience(0, 0, 4, 4)
	outside := hm.MeanSalience(4, 4, 8, 8)
	if inside <= outside {
		t.Fatalf("salience should concentrate on the cue: inside %v outside %v\n%s", inside, outside, hm.ASCII())
	}
}

func TestUpsampleDimensions(t *testing.T) {
	hm := &Heatmap{W: 2, H: 2, Data: []float64{0, 1, 1, 0}}
	up := hm.Upsample(8, 8)
	if up.W != 8 || up.H != 8 {
		t.Fatalf("upsample %dx%d", up.W, up.H)
	}
	if up.At(7, 0) < 0.9 || up.At(0, 0) > 0.1 {
		t.Fatalf("corner values wrong: %v %v", up.At(7, 0), up.At(0, 0))
	}
	// interior is interpolated
	mid := up.At(4, 4)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("midpoint %v should be interpolated", mid)
	}
}

func TestASCIIAndPGM(t *testing.T) {
	hm := &Heatmap{W: 3, H: 2, Data: []float64{0, 0.5, 1, 1, 0.5, 0}}
	art := hm.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("ascii shape wrong:\n%s", art)
	}
	if lines[0][0] != ' ' || lines[0][2] != '@' {
		t.Fatalf("ascii ramp wrong: %q", lines[0])
	}
	pgm := hm.PGM()
	if !bytes.HasPrefix(pgm, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("pgm header: %q", pgm[:12])
	}
	if len(pgm) != len("P5\n3 2\n255\n")+6 {
		t.Fatalf("pgm size %d", len(pgm))
	}
}

func TestOverlayTintsSalientRegions(t *testing.T) {
	base := imaging.NewBitmap(4, 4)
	base.Fill(colorGray())
	hm := &Heatmap{W: 4, H: 4, Data: make([]float64, 16)}
	hm.Data[0] = 1 // top-left fully salient
	out := Overlay(base, hm)
	hot := out.At(0, 0)
	cold := out.At(3, 3)
	if hot.R <= cold.R {
		t.Fatalf("salient pixel should be redder: %v vs %v", hot, cold)
	}
}

func TestMeanSalienceBounds(t *testing.T) {
	hm := &Heatmap{W: 2, H: 2, Data: []float64{1, 1, 0, 0}}
	if hm.MeanSalience(0, 0, 2, 1) != 1 {
		t.Fatal("top row mean")
	}
	if hm.MeanSalience(-5, -5, 0, 0) != 0 {
		t.Fatal("empty region should be 0")
	}
}

func colorGray() (c struct{ R, G, B, A uint8 }) {
	return struct{ R, G, B, A uint8 }{128, 128, 128, 255}
}
