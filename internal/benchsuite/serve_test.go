package benchsuite

import (
	"strings"
	"testing"
)

// TestFailfParksDrawFailure pins the percival-bench redraw contract: under
// testing.Benchmark there is no test runner attached to b, so failf must not
// Fatalf (nil-deref) or panic (kills the whole snapshot binary) — it parks
// the message for TakeDrawFailure and exits the draw's goroutine, letting
// the snapshot redraw a gate row that flunked on hypervisor noise.
func TestFailfParksDrawFailure(t *testing.T) {
	TakeDrawFailure() // drain any stale state

	ran := false
	testing.Benchmark(func(b *testing.B) {
		ran = true
		failf(b, "synthetic gate failure %d", 42)
		t.Error("failf returned; want Goexit out of the draw")
	})
	if !ran {
		t.Fatal("benchmark body never ran")
	}
	got := TakeDrawFailure()
	if !strings.Contains(got, "synthetic gate failure 42") {
		t.Fatalf("TakeDrawFailure() = %q, want the parked failf message", got)
	}
	if again := TakeDrawFailure(); again != "" {
		t.Fatalf("second TakeDrawFailure() = %q, want empty (drained)", again)
	}
}
