package benchsuite

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"percival/internal/engine"
	"percival/internal/faultinject"
	"percival/internal/imaging"
	"percival/internal/serve"
	"percival/internal/synth"
)

// flipBackend inverts every verdict it scores — the injected disagreeing
// model the canary rollback gate must catch from live agreement alone.
type flipBackend struct{ engine.Backend }

func (f flipBackend) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	res := f.Backend.InferBatchInto(frames, out)
	for i := range res {
		res[i] = 1 - res[i]
	}
	return res
}

func (f flipBackend) Replicate() engine.Backend { return flipBackend{f.Backend.Replicate()} }

// ServeReroute8x2 is the control-plane row: a 3-peer fleet on the rotation
// workload with peer 0 permanently ~100ms slow (healthy, just degraded — the
// case eviction and hedging don't cover). The timed headline is weighted
// routing throughput; around it the row asserts the fleet-control acceptance
// contract:
//
//   - weighted (window-headroom-per-latency) routing sustains goodput >= the
//     static lane-pinned baseline measured on the same run, with verdicts
//     bit-identical to in-process classification throughout;
//   - a live drain+remove of the slow peer plus a live add of a spare,
//     mid-load through Fleet's membership surface, completes with zero
//     fail-open and zero wrong verdicts;
//   - the agreement-gated canary rolls back an injected disagreeing model
//     and promotes an agreeing one, both driven only by the live verdict
//     agreement floor — no wall clock, no manual gate.
func ServeReroute8x2(b *testing.B) {
	svc := PaperService(false)
	// peers 0..2 are the initial fleet (0 always slow); 3 is the spare that
	// joins live during the membership phase
	const nPeers = 4
	injs := make([]*faultinject.Injector, nPeers)
	urls := make([]string, nPeers)
	for i := range urls {
		rep := svc.Engine().Replicate()
		rep.Warm(16)
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandler(nil, rep, svc.Threshold()))
		injs[i] = faultinject.NewInjector(int64(i + 1))
		ts := httptest.NewServer(faultinject.Middleware(injs[i], mux))
		defer ts.Close()
		urls[i] = ts.URL
	}
	injs[0].Set(faultinject.Fault{Latency: 100 * time.Millisecond, LatencyRate: 1.0})

	dial := func(u string) *engine.RemoteBackend {
		// slow != dead: the per-attempt budget clears the injected latency
		// with room, and EvictAfter stays high so the supervisor never
		// rescues the router — shedding the slow peer is routing's job here
		rb, err := engine.NewRemote(u, engine.RemoteOptions{
			ExpectRes: svc.InputRes(),
			Timeout:   2 * time.Second,
			Retries:   0,
		})
		if err != nil {
			failf(b, "dial %s: %v", u, err)
		}
		return rb
	}

	frames := synth.SampleFrames(19, serveRotationDistinct)
	wants := make([]float64, len(frames))
	for i, f := range frames {
		wants[i] = svc.Classify(f)
	}
	// bit-identity is checked inside client goroutines, where Fatalf is
	// illegal — record atomically, assert from the main flow
	var mismatches atomic.Int64
	var firstMismatch atomic.Value // string
	runWindow := func(srv *serve.Server, check bool) {
		srv.ResetCache()
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					j := (c + i) % len(frames)
					r := srv.Submit(frames[j])
					if check && r.Score != wants[j] {
						if mismatches.Add(1) == 1 {
							firstMismatch.Store(fmt.Sprintf(
								"frame %d scored %v, want %v", j, r.Score, wants[j]))
						}
					}
				}
			}(c)
		}
		wg.Wait()
	}
	checkIdentical := func(phase string) {
		if n := mismatches.Load(); n != 0 {
			failf(b, "%s: %d verdicts diverged from in-process classification (first: %v)",
				phase, n, firstMismatch.Load())
		}
	}

	// phase 1: static lane-pinned baseline — the pre-refactor placement, one
	// shard lane stuck on the slow peer — same window count as the timed
	// weighted phase, measured on the same run
	staticFleet, err := engine.NewFleet(
		[]*engine.RemoteBackend{dial(urls[0]), dial(urls[1]), dial(urls[2])},
		engine.FleetOptions{EvictAfter: 50, HedgeQuantile: -1})
	if err != nil {
		failf(b, "%v", err)
	}
	staticSrv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   3,
		Policy:   serve.NewAIMDPolicy(),
		Backend:  staticFleet,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	staticSrv.Warm()
	runWindow(staticSrv, false) // warm pools, arenas, HTTP connections
	staticStart := time.Now()
	for i := 0; i < b.N; i++ {
		runWindow(staticSrv, true)
	}
	staticFPS := float64(b.N*ServeConcurrency*serveRotationDistinct) /
		time.Since(staticStart).Seconds()
	checkIdentical("static baseline")
	staticSrv.Close()
	staticFleet.Close()

	// phase 2: the weighted fleet behind the canary dispatch proxy — the
	// daemon's serving topology — with per-chunk placement by congestion
	// window headroom per unit latency EWMA. Timed: the row's headline.
	reg := engine.NewRegistry()
	fleet, err := engine.NewFleet(
		[]*engine.RemoteBackend{dial(urls[0]), dial(urls[1]), dial(urls[2])},
		engine.FleetOptions{EvictAfter: 50, HedgeQuantile: -1, Router: &engine.WeightedRouter{}})
	if err != nil {
		failf(b, "%v", err)
	}
	defer fleet.Close()
	if err := reg.Register("fleet", fleet); err != nil {
		failf(b, "%v", err)
	}
	serving := engine.NewCanaryBackend(reg, fleet)
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   3,
		Policy:   serve.NewAIMDPolicy(),
		Backend:  serving,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer srv.Close()
	srv.Warm()
	// two warm windows: the first seeds every peer's latency EWMA (cold
	// peers are tried optimistically), the second routes on learned weights
	runWindow(srv, false)
	runWindow(srv, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWindow(srv, true)
	}
	b.StopTimer()
	weightedFPS := float64(b.N*ServeConcurrency*serveRotationDistinct) /
		b.Elapsed().Seconds()
	checkIdentical("weighted routing")
	if weightedFPS < staticFPS {
		failf(b, "weighted goodput %.1f frames/sec < static baseline %.1f",
			weightedFPS, staticFPS)
	}

	// phase 3 (untimed): live membership under load — add the spare, then
	// drain+remove the slow peer, while client windows keep dispatching
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			runWindow(srv, true)
		}
	}()
	membershipErr := func() error {
		if err := fleet.AddPeer(dial(urls[3])); err != nil {
			return fmt.Errorf("live add: %w", err)
		}
		if _, err := fleet.DrainRemovePeer(urls[0], 5*time.Second); err != nil {
			return fmt.Errorf("drain+remove: %w", err)
		}
		return nil
	}()
	close(stop)
	<-done
	if membershipErr != nil {
		failf(b, "%v", membershipErr)
	}
	runWindow(srv, true) // the post-churn topology still serves correctly
	checkIdentical("live membership churn")
	if n := len(fleet.PeerHealth()); n != 3 {
		failf(b, "fleet has %d peers after add+remove, want 3", n)
	}

	// phase 4 (untimed): the agreement-gated canary. First an injected
	// disagreeing model — every shifted chunk disagrees with the fleet's
	// shadow verdict, so the rollout must roll itself back (verdicts served
	// during this probe are intentionally wrong: unchecked windows). Then an
	// agreeing candidate, which must promote to registry default.
	canary := engine.CanaryOptions{
		Fraction: 1, Floor: 0.99, HoldWindow: 64, MinSamples: 16,
		Threshold: svc.Threshold(),
	}
	if err := reg.Register("flip", flipBackend{svc.Engine().Replicate()}); err != nil {
		failf(b, "%v", err)
	}
	if err := reg.BeginCanary("flip", canary); err != nil {
		failf(b, "%v", err)
	}
	for i := 0; i < 30 && reg.CanaryStatus().State != "rolled_back"; i++ {
		runWindow(srv, false)
	}
	if st := reg.CanaryStatus(); st.State != "rolled_back" {
		failf(b, "disagreeing canary not rolled back: %+v", st)
	}
	if def := reg.DefaultName(); def != "fleet" {
		failf(b, "rollback flipped the default to %q", def)
	}
	if err := reg.Register("good", svc.Engine().Replicate()); err != nil {
		failf(b, "%v", err)
	}
	if err := reg.BeginCanary("good", canary); err != nil {
		failf(b, "%v", err)
	}
	for i := 0; i < 30 && reg.CanaryStatus().State != "promoted"; i++ {
		runWindow(srv, true)
	}
	if st := reg.CanaryStatus(); st.State != "promoted" {
		failf(b, "agreeing canary not promoted: %+v", st)
	}
	if def := reg.DefaultName(); def != "good" {
		failf(b, "promotion left the default on %q", def)
	}
	runWindow(srv, true) // promoted topology serves the same verdicts
	checkIdentical("canary rollout")

	// zero fail-open across every phase: no chunk was ever scored by a
	// transport giving up instead of a model
	errs := fleet.Stats().Errors
	for _, st := range srv.BackendStats() {
		errs += st.Errors
	}
	if errs != 0 {
		failf(b, "%d chunks failed open during the control-plane sequence", errs)
	}
	b.ReportMetric(weightedFPS/staticFPS, "weighted/static")
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}
