package benchsuite

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"percival/internal/core"
	"percival/internal/engine"
	"percival/internal/faultinject"
	"percival/internal/metrics"
	"percival/internal/serve"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

// ServeConcurrency is the client population for the serving benchmarks —
// the "concurrency >= 8" point of the frames/sec-vs-concurrency trajectory.
const ServeConcurrency = 8

// serveRotationDistinct × ServeConcurrency sightings is the rotation
// workload: 16 distinct creatives each seen by every concurrent client,
// the repeated-creative reality (§6 memoization) that the sharded cache
// and in-flight coalescing exploit.
const serveRotationDistinct = 16

// PaperService builds a core classifier service at paper scale around the
// deterministic warm-start network, optionally on the INT8 engine (the
// parity gate must activate — throughput numbers must not silently fall
// back to FP32).
func PaperService(quantized bool) *core.Percival {
	net := PaperNet()
	opts := core.Options{DisableCache: true}
	if quantized {
		opts.Quantized = true
		opts.CalibFrames = synth.SampleFrames(91, 8)
		opts.ParityMinAgreement = 0.01 // activation gate: parity itself is reported by eval
	}
	svc, err := core.New(net, squeezenet.PaperConfig(), opts)
	if err != nil {
		panic(err)
	}
	if quantized && !svc.QuantizedActive() {
		panic("benchsuite: INT8 engine failed to activate")
	}
	return svc
}

// reportFPS attaches the throughput metric the BENCH trajectory tracks.
func reportFPS(b *testing.B, frames int64) {
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/sec")
}

// serveSteady measures the batcher steady state: ServeConcurrency clients
// submitting a stream of non-repeating frames (memoization disabled) through
// the coalescing batcher. This is the pure-batching row — and the 0
// allocs/op gate for the serve hot path: requests, batch slices, arenas and
// cache state are all pooled/warm.
func serveSteady(b *testing.B, quantized bool) {
	svc := PaperService(quantized)
	frames := synth.SampleFrames(17, 64)
	srv, err := serve.New(svc, serve.Options{
		MaxBatch:     16,
		Linger:       2 * time.Millisecond,
		DisableCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	// Deterministically warm each shard replica's inference state across
	// every batch fill the coalescer can produce: the arena free-lists are
	// exact-size, so a batch size first seen inside the timed loop would
	// allocate.
	srv.Warm()
	// warm the request/batch pools through the batcher itself
	var wg sync.WaitGroup
	for c := 0; c < ServeConcurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				srv.Submit(frames[(c*8+i)%len(frames)])
			}
		}(c)
	}
	wg.Wait()
	// Exactly ServeConcurrency client goroutines (RunParallel would spawn
	// parallelism×GOMAXPROCS, breaking the row's concurrency label on
	// multi-core runners), each cycling its own disjoint 8-frame slice so
	// the stream never repeats across clients and coalescing stays idle.
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	var bwg sync.WaitGroup
	for c := 0; c < ServeConcurrency; c++ {
		bwg.Add(1)
		go func(c int) {
			defer bwg.Done()
			set := frames[c*8 : c*8+8]
			for i := 0; remaining.Add(-1) >= 0; i++ {
				srv.Submit(set[i%len(set)])
			}
		}(c)
	}
	bwg.Wait()
	b.StopTimer()
	reportFPS(b, int64(b.N))
}

// ServeSteady8 is the FP32 steady-state batcher benchmark.
func ServeSteady8(b *testing.B) { serveSteady(b, false) }

// ServeSteady8Int8 is the INT8 steady-state batcher benchmark.
func ServeSteady8Int8(b *testing.B) { serveSteady(b, true) }

// serveRotation measures serving throughput on the rotation workload: every
// concurrent client sights the same window of distinct creatives, and each
// window starts cold (ResetCache), so exactly one model run per distinct
// creative is amortized over ServeConcurrency sightings via the sharded
// cache and in-flight coalescing. shards > 1 partitions dispatch by
// content-hash range (each shard with its own batcher and backend replica)
// and runs the AIMD adaptive linger policy — the per-shard-count points of
// the throughput trajectory.
func serveRotation(b *testing.B, shards int, quantized bool) {
	opts := serve.Options{
		MaxBatch: 16,
		Linger:   2 * time.Millisecond,
		Shards:   shards,
	}
	if shards > 1 {
		opts.Policy = serve.NewAIMDPolicy()
	}
	serveRotationOpts(b, opts, quantized)
}

// serveRotationOpts is the shared rotation loop behind the shard-sweep and
// pinned-lane rows.
func serveRotationOpts(b *testing.B, opts serve.Options, quantized bool) {
	srv, err := serve.New(PaperService(quantized), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Warm()
	frames := synth.SampleFrames(19, serveRotationDistinct)
	runWindow := func() {
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					srv.Submit(frames[(c+i)%len(frames)])
				}
			}(c)
		}
		wg.Wait()
	}
	runWindow() // warm pools and arenas
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ResetCache()
		runWindow()
	}
	b.StopTimer()
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}

// ServeRotation8 is the FP32 rotation-workload serving benchmark
// (single shard, fixed linger — the PR-3 anchor configuration).
func ServeRotation8(b *testing.B) { serveRotation(b, 1, false) }

// ServeRotation8Int8 is the INT8 rotation-workload serving benchmark.
func ServeRotation8Int8(b *testing.B) { serveRotation(b, 1, true) }

// ServeRotation8x2 is the FP32 rotation workload over 2 dispatch shards
// with the AIMD adaptive linger policy.
func ServeRotation8x2(b *testing.B) { serveRotation(b, 2, false) }

// ServeRotation8x2Int8 is the INT8 rotation workload over 2 dispatch
// shards with the adaptive policy.
func ServeRotation8x2Int8(b *testing.B) { serveRotation(b, 2, true) }

// ServeRotation8x4 is the FP32 rotation workload over 4 dispatch shards
// with the adaptive policy.
func ServeRotation8x4(b *testing.B) { serveRotation(b, 4, false) }

// ServeRotationPinned is the core-pinned lane configuration of the rotation
// workload: one dispatch shard per GOMAXPROCS slot, each shard's dispatch
// goroutine locked to an OS thread and pinned to its own core, with the GEMM
// worker pool partitioned across the lanes (serve.Options.PinLanes). It is
// the multi-core serving row of the core-count sweep — run it under varying
// GOMAXPROCS to trace parallel efficiency.
func ServeRotationPinned(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	opts := serve.Options{
		MaxBatch: 16,
		Linger:   2 * time.Millisecond,
		Shards:   shards,
		PinLanes: true,
	}
	if shards > 1 {
		opts.Policy = serve.NewAIMDPolicy()
	}
	serveRotationOpts(b, opts, false)
}

// ServeRemote8x2 is the two-tier counterpart of ServeRotation8x2: the same
// rotation workload at the same concurrency and shard count, but every
// forward pass is proxied to one of two backend percival-serve replicas
// over loopback HTTP (engine.RemoteBackend riding /classify/batch). The
// delta against ServeRotation8x2 is the measured proxy overhead — frame
// encode, HTTP round trip, score decode — that PERFORMANCE.md's "Remote
// backends" section tracks.
func ServeRemote8x2(b *testing.B) {
	svc := PaperService(false)
	remotes := make([]*engine.RemoteBackend, 2)
	for i := range remotes {
		rep := svc.Engine().Replicate()
		rep.Warm(16)
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandler(nil, rep, svc.Threshold()))
		ts := httptest.NewServer(mux)
		defer ts.Close()
		rb, err := engine.NewRemote(ts.URL, engine.RemoteOptions{ExpectRes: svc.InputRes()})
		if err != nil {
			b.Fatal(err)
		}
		remotes[i] = rb
	}
	pool, err := engine.NewRemotePool(remotes)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Backend:  pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Warm()
	frames := synth.SampleFrames(19, serveRotationDistinct)
	runWindow := func() {
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					srv.Submit(frames[(c+i)%len(frames)])
				}
			}(c)
		}
		wg.Wait()
	}
	runWindow() // warm pools, arenas and HTTP connections
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ResetCache()
		runWindow()
	}
	b.StopTimer()
	var errs int64
	for _, st := range srv.BackendStats() {
		errs += st.Errors
	}
	if errs > 0 {
		failf(b, "remote dispatch failed open %d times during the benchmark", errs)
	}
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}

// ServeRemoteWire8x2 is the persistent-socket counterpart of ServeRemote8x2:
// the same rotation workload, shard count and two backend replicas, but the
// proxies negotiate the wire-v2 socket transport — one hot framed connection
// per peer with hash-first dedup answered from each peer's verdict cache.
// The timed loop runs cache-warm (the rotation reality: every window re-sees
// the same 16 creatives the peers already scored), so the headline measures
// the probe-hit fast path. Before timing, the row hard-asserts the
// transport's two contracts: verdicts bit-identical to in-process scoring,
// and a >=10x wire-bytes cut from cold (pixels) to warm (probes) windows.
func ServeRemoteWire8x2(b *testing.B) {
	svc := PaperService(false)
	remotes := make([]*engine.RemoteBackend, 2)
	for i := range remotes {
		rep := svc.Engine().Replicate()
		rep.Warm(16)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			failf(b, "wire listener: %v", err)
		}
		ws := engine.NewWireServer(engine.WireServerOptions{Backend: rep, Cache: engine.NewVerdictMap(0)})
		go ws.Serve(ln)
		defer ws.Close()
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandlerWire(nil, rep, svc.Threshold(), ln.Addr().String()))
		ts := httptest.NewServer(mux)
		defer ts.Close()
		rb, err := engine.NewRemote(ts.URL, engine.RemoteOptions{ExpectRes: svc.InputRes()})
		if err != nil {
			failf(b, "dial wire peer: %v", err)
		}
		if kind := rb.TransportStats().Kind; kind != "socket" {
			failf(b, "negotiated %s transport, want socket", kind)
		}
		remotes[i] = rb
	}
	pool, err := engine.NewRemotePool(remotes)
	if err != nil {
		failf(b, "%v", err)
	}
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Backend:  pool,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer srv.Close()
	srv.Warm()
	frames := synth.SampleFrames(19, serveRotationDistinct)
	runWindow := func() {
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					srv.Submit(frames[(c+i)%len(frames)])
				}
			}(c)
		}
		wg.Wait()
	}
	wireBytes := func() int64 {
		var n int64
		for _, rb := range remotes {
			n += rb.TransportStats().BytesOut
		}
		return n
	}

	// cold window: peer verdict caches start empty, every creative's pixels
	// cross the wire exactly once (also warms pools, arenas and the socket)
	start := wireBytes()
	runWindow()
	coldBytes := wireBytes() - start

	// bit-identity gate: the wire-scored verdicts now memoized at the
	// serving edge must equal in-process classification exactly
	for i, f := range frames {
		if got, want := srv.Submit(f).Score, svc.Classify(f); got != want {
			failf(b, "frame %d: wire verdict %v, in-process %v", i, got, want)
		}
	}

	// warm window: the peers' caches know all the creatives, so the probes
	// answer everything — the deterministic >=10x bytes cut the dedup tier
	// exists for
	srv.ResetCache()
	start = wireBytes()
	runWindow()
	warmBytes := wireBytes() - start
	if warmBytes <= 0 || coldBytes < 10*warmBytes {
		failf(b, "dedup bytes cut %d -> %d (%.1fx), want >=10x",
			coldBytes, warmBytes, float64(coldBytes)/float64(warmBytes))
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ResetCache()
		runWindow()
	}
	b.StopTimer()
	var errs int64
	for _, st := range srv.BackendStats() {
		errs += st.Errors
	}
	if errs > 0 {
		failf(b, "socket dispatch failed open %d times during the benchmark", errs)
	}
	var dedup, pixels int64
	for _, rb := range remotes {
		st := rb.TransportStats()
		dedup += st.FramesDedup
		pixels += st.FramesPixels
	}
	if dedup == 0 {
		failf(b, "no frames were deduped on the warm rotation (pixels=%d)", pixels)
	}
	b.ReportMetric(float64(coldBytes)/float64(warmBytes), "bytes-cold/warm")
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}

// drawFailure parks a gate failure raised while a row runs under
// testing.Benchmark (percival-bench). The snapshot binary drains it with
// TakeDrawFailure after every draw: gate rows (chaos p99, overload goodput,
// dedup floors) assert contracts a single draw can flunk spuriously under
// the same one-sided hypervisor noise the best-of-N sampling rule exists
// for, so a failed draw is discarded and redrawn rather than aborting the
// whole snapshot.
var drawFailure atomic.Value // string

// TakeDrawFailure returns the gate-failure message from the most recent
// benchmark draw, if any, and clears it. Empty means the draw's contracts
// all held.
func TakeDrawFailure() string {
	if s, ok := drawFailure.Swap("").(string); ok {
		return s
	}
	return ""
}

// failf fails a benchmark with a formatted message. Under `go test` that is
// plain b.Fatalf; under testing.Benchmark (percival-bench) there is no test
// runner attached to b — Name() is empty and Fatalf nil-derefs inside the
// testing package — so park the message for TakeDrawFailure, mark the run
// failed, and bail out of the draw's goroutine the same way FailNow would.
func failf(b *testing.B, format string, args ...any) {
	if b.Name() == "" {
		drawFailure.Store("benchsuite: " + fmt.Sprintf(format, args...))
		b.Fail()
		runtime.Goexit()
	}
	b.Fatalf(format, args...)
}

// ServeChaos8x2 is the fleet-health row: the ServeRemote8x2 topology plus a
// third spare replica, driven through fault injection. Peer 0 (a preferred
// shard lane) is blackholed — the supervisor must evict it and re-route its
// shard's traffic; peer 1 serves 20% of its requests ~100ms slow — the
// hedger's job; peer 2 is the healthy spare. The row measures chaos-phase
// throughput and asserts the fleet-health acceptance contract:
//
//   - zero requests block or shed, and zero chunks fail open (a real
//     verdict for every frame while >= 1 healthy replica remains),
//   - steady-chaos p99 (dead peer evicted, slow peer hedged) within 2x the
//     healthy-fleet p99 measured on the same run,
//   - the evicted peer rejoins automatically once healed, visible in the
//     PeerHealth surface /healthz renders.
func ServeChaos8x2(b *testing.B) {
	svc := PaperService(false)
	const nPeers = 3
	injs := make([]*faultinject.Injector, nPeers)
	remotes := make([]*engine.RemoteBackend, nPeers)
	for i := range remotes {
		rep := svc.Engine().Replicate()
		rep.Warm(16)
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandler(nil, rep, svc.Threshold()))
		injs[i] = faultinject.NewInjector(int64(i + 1))
		ts := httptest.NewServer(faultinject.Middleware(injs[i], mux))
		defer ts.Close()
		// The per-attempt budget must clear a full 16-frame paper-scale
		// forward pass (~0.5s) with contention headroom, or healthy peers
		// time out and get evicted alongside the blackholed one.
		rb, err := engine.NewRemote(ts.URL, engine.RemoteOptions{
			ExpectRes: svc.InputRes(),
			Timeout:   2 * time.Second,
			Retries:   0,
		})
		if err != nil {
			failf(b, "%v", err)
		}
		remotes[i] = rb
	}
	// HedgeMax is the row's latency SLO: without the ceiling the EWMA
	// trigger chases the congestion it should be cutting (queue delay
	// inflates mean+dev until hedges never fire) and the slow peer's tail
	// sails past the 2x gate.
	fleet, err := engine.NewFleet(remotes, engine.FleetOptions{
		EvictAfter:    2,
		RedialBase:    25 * time.Millisecond,
		RedialMax:     100 * time.Millisecond,
		HedgeQuantile: 0.99,
		HedgeMax:      400 * time.Millisecond,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer fleet.Close()
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		Policy:   serve.NewAIMDPolicy(),
		Backend:  fleet,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer srv.Close()
	srv.Warm()

	frames := synth.SampleFrames(19, serveRotationDistinct)
	var notOK atomic.Int64 // shed or otherwise verdict-less submissions
	var latMu sync.Mutex
	runWindow := func(lat *metrics.Latencies) {
		srv.ResetCache()
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					start := time.Now()
					r := srv.Submit(frames[(c+i)%len(frames)])
					took := float64(time.Since(start).Nanoseconds()) / 1e6
					if r.Status == serve.StatusShed {
						notOK.Add(1)
					}
					if lat != nil {
						latMu.Lock()
						lat.Add(took)
						latMu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
	}

	runWindow(nil) // warm pools, arenas, HTTP connections, latency EWMAs

	// phase 1: healthy fleet — the p99 baseline, same window count as the
	// measured chaos phase
	healthy := &metrics.Latencies{}
	for i := 0; i < b.N; i++ {
		runWindow(healthy)
	}

	// phase 2: inject the chaos — preferred peer 0 dies outright, peer 1
	// serves a poisoned 20% tail — and run untimed transition windows until
	// the supervisor has evicted the dead peer (its shard's traffic
	// re-routes from the very first failure; the transient is excluded from
	// the steady-chaos p99, not from the no-fail-open contract)
	injs[0].Set(faultinject.Fault{Blackhole: true})
	injs[1].Set(faultinject.Fault{Latency: 100 * time.Millisecond, LatencyRate: 0.2})
	evicted := func() bool {
		return fleet.PeerHealth()[0].StateCode == engine.PeerEvicted ||
			fleet.PeerHealth()[0].StateCode == engine.PeerRedialing
	}
	for i := 0; i < 50 && !evicted(); i++ {
		runWindow(nil)
	}
	if !evicted() {
		failf(b, "dead peer not evicted after 50 windows: %+v", fleet.PeerHealth())
	}

	// phase 3: steady chaos — the timed, measured region
	chaos := &metrics.Latencies{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWindow(chaos)
	}
	b.StopTimer()

	// the acceptance contract
	if n := notOK.Load(); n != 0 {
		failf(b, "%d submissions shed under chaos, want every request answered", n)
	}
	errs := fleet.Stats().Errors
	for _, st := range srv.BackendStats() {
		errs += st.Errors
	}
	if errs != 0 {
		failf(b, "%d chunks failed open with healthy replicas remaining", errs)
	}
	hp99, cp99 := healthy.Percentile(99), chaos.Percentile(99)
	if cp99 > 2*hp99 {
		failf(b, "chaos p99 %.1fms > 2x healthy p99 %.1fms", cp99, hp99)
	}
	// the dead peer rejoins automatically once healed
	injs[0].Set(faultinject.Fault{})
	deadline := time.Now().Add(10 * time.Second)
	for fleet.PeerHealth()[0].StateCode != engine.PeerHealthy {
		if time.Now().After(deadline) {
			failf(b, "healed peer not re-admitted: %+v", fleet.PeerHealth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.ReportMetric(cp99/hp99, "p99-ratio")
	b.ReportMetric(cp99, "p99-ms")
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}

// ServeOverload8x2 is the admission-control row: the ServeChaos8x2 topology
// (three remote replicas behind a supervised fleet, 2 serve shards), but the
// attack is sustained overload instead of a dead peer — distinct-creative
// flux (a cache-busting rotation the memo layer can't absorb) offered
// open-loop at 2x the measured classification capacity while peer 1 serves
// 20% of its requests ~100ms slow. The serving edge runs the unified
// AdmissionController, and the row asserts the graded-brownout acceptance
// contract:
//
//   - zero fail-open: shedding is the intended graded response, a chunk
//     scored 0 because the transport gave up is not — engine error counters
//     must stay zero;
//   - the brownout ladder engages (stage >= 1 observed during overload) and
//     releases (stage back to 0 after the load drops);
//   - goodput under 2x offered load stays >= 80% of the healthy-load
//     throughput measured on the same run — overload costs the excess, not
//     the capacity.
func ServeOverload8x2(b *testing.B) {
	svc := PaperService(false)
	const nPeers = 3
	injs := make([]*faultinject.Injector, nPeers)
	remotes := make([]*engine.RemoteBackend, nPeers)
	for i := range remotes {
		rep := svc.Engine().Replicate()
		rep.Warm(16)
		mux := http.NewServeMux()
		mux.Handle("POST /classify/batch", engine.BatchHandler(nil, rep))
		mux.Handle("GET /modelz", engine.ModelzHandler(nil, rep, svc.Threshold()))
		injs[i] = faultinject.NewInjector(int64(i + 1))
		ts := httptest.NewServer(faultinject.Middleware(injs[i], mux))
		defer ts.Close()
		rb, err := engine.NewRemote(ts.URL, engine.RemoteOptions{
			ExpectRes: svc.InputRes(),
			Timeout:   2 * time.Second,
			Retries:   0,
		})
		if err != nil {
			failf(b, "%v", err)
		}
		remotes[i] = rb
	}
	fleet, err := engine.NewFleet(remotes, engine.FleetOptions{
		EvictAfter:    2,
		RedialBase:    25 * time.Millisecond,
		RedialMax:     100 * time.Millisecond,
		HedgeQuantile: 0.99,
		HedgeMax:      400 * time.Millisecond,
		// the daemon's own topology: when overload-starved peers are all
		// evicted at once, the local model serves the chunk — zero fail-open
		// is part of this row's contract
		Fallback: svc.Engine().Replicate(),
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer fleet.Close()
	adm := serve.NewAdmissionController(serve.AdmissionOptions{})
	srv, err := serve.New(svc, serve.Options{
		MaxBatch: 16,
		Shards:   2,
		// a bounded envelope, like the daemon defaults: a queue shallow
		// enough that sustained leader overload is visible as occupancy
		// quickly (the coalescer absorbs followers without consuming slots —
		// and at ~27 leader-fps, 16 slots/shard is already >1s of backlog
		// against a 500 ms shed deadline), and a shed deadline that clears
		// the healthy closed-loop tail with margin
		QueueDepth: 16,
		Deadline:   500 * time.Millisecond,
		Policy:     adm,
		Backend:    fleet,
	})
	if err != nil {
		failf(b, "%v", err)
	}
	defer srv.Close()
	srv.Warm()

	// The workload is distinct-creative flux: with memoization and in-flight
	// coalescing at the edge, repeated creatives are nearly free and total
	// frames/sec can double without the model noticing — the attack that
	// actually overloads this architecture is a stream of creatives it has
	// never classified. Both phases are leader-pure (cache reset per pool
	// cycle) so "2x the healthy rate" means 2x the classification capacity
	// and the goodput gate compares like against like.
	// ServeConcurrency closed-loop clients keep the pipeline busy without
	// overcommitting it: leader-pure batches cost real model time, and an
	// in-flight population much past the batch size just queues behind the
	// shed deadline and measures thrash, not capacity.
	const poolSize = 128
	pool := synth.SampleFrames(19, poolSize)
	runWindow := func() {
		srv.ResetCache()
		per := poolSize / ServeConcurrency
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					srv.Submit(pool[c*per+i])
				}
			}(c)
		}
		wg.Wait()
	}

	runWindow() // warm pools, arenas, HTTP connections, latency EWMAs

	// phase 1: closed-loop healthy baseline — the distinct-frame
	// classification capacity the goodput gate (and the 2x offered load) is
	// measured against
	healthyStart := time.Now()
	for i := 0; i < b.N; i++ {
		runWindow()
	}
	healthyElapsed := time.Since(healthyStart)
	healthyRate := float64(b.N*poolSize) / healthyElapsed.Seconds()
	if srv.BrownoutStage() != serve.BrownoutNormal {
		failf(b, "brownout stage %v under healthy closed-loop load", srv.BrownoutStage())
	}

	// phase 2: sustained overload, open-loop — 2x the measured healthy rate
	// offered regardless of completions, with peer 1's tail poisoned. Timed:
	// the row's frames/sec is goodput under overload.
	injs[1].Set(faultinject.Fault{Latency: 100 * time.Millisecond, LatencyRate: 0.2})
	dur := healthyElapsed
	if dur < 8*time.Second {
		// long enough for the excess-arrival rate to fill the queue and for
		// the ladder's hold times to pass on a slow shared runner
		dur = 8 * time.Second
	}
	if dur > 10*time.Second {
		dur = 10 * time.Second
	}
	interval := time.Duration(float64(ServeConcurrency) / (2 * healthyRate) * 1e9)
	var answered, shed atomic.Int64
	var maxStage atomic.Int32
	var submitted atomic.Int64
	b.ResetTimer()
	end := time.Now().Add(dur)
	var owg sync.WaitGroup
	for c := 0; c < ServeConcurrency; c++ {
		owg.Add(1)
		go func(c int) {
			defer owg.Done()
			next := time.Now()
			for {
				now := time.Now()
				if !now.Before(end) {
					return
				}
				// catch-up pacing: on a saturated single core the sleep
				// wakeups run late, so each wakeup submits every arrival due
				// by now — scheduler delay bursts the offered load instead of
				// silently thinning it back below capacity
				for !next.After(now) {
					// a global counter deals every pool frame exactly once
					// per cycle (leader-pure), resetting the cache at each
					// wrap so recycled creatives stay fresh classification
					// work
					n := submitted.Add(1)
					if n%poolSize == 0 {
						srv.ResetCache()
					}
					// each submission rides its own goroutine: a stage-0 full
					// queue blocks the submitter for up to the shed deadline,
					// and a pacer that waited there would degrade the offered
					// load back to closed-loop — overload means the arrivals
					// don't stop
					f := pool[int((n-1)%poolSize)]
					owg.Add(1)
					go func() {
						defer owg.Done()
						if srv.Submit(f).Status == serve.StatusShed {
							shed.Add(1)
						} else {
							answered.Add(1)
						}
					}()
					next = next.Add(interval)
				}
				st := int32(srv.BrownoutStage())
				for {
					cur := maxStage.Load()
					if st <= cur || maxStage.CompareAndSwap(cur, st) {
						break
					}
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}(c)
	}
	owg.Wait()
	b.StopTimer()
	overloadElapsed := b.Elapsed()
	// the backlog keeps resolving (and the ladder keeps evaluating) after the
	// pacers stop — a transition during the drain still counts as engagement
	if st := int32(srv.BrownoutStage()); st > maxStage.Load() {
		maxStage.Store(st)
	}

	// phase 3: the acceptance contract
	errs := fleet.Stats().Errors
	for _, st := range srv.BackendStats() {
		errs += st.Errors
	}
	if errs != 0 {
		failf(b, "%d chunks failed open under overload, want graded shedding only", errs)
	}
	if maxStage.Load() < int32(serve.BrownoutCacheOnly) {
		failf(b, "brownout never engaged under 2x offered load (max stage %d, pressure %.2f, offered %.0f/s of %.0f/s target)",
			maxStage.Load(), adm.Pressure(),
			float64(submitted.Load())/overloadElapsed.Seconds(), 2*healthyRate)
	}
	goodput := float64(answered.Load()) / overloadElapsed.Seconds()
	if goodput < 0.8*healthyRate {
		failf(b, "goodput %.1f frames/sec under overload < 80%% of healthy %.1f",
			goodput, healthyRate)
	}
	// load drops: the ladder must walk back to normal under light traffic
	injs[1].Set(faultinject.Fault{})
	releaseBy := time.Now().Add(15 * time.Second)
	for i := 0; srv.BrownoutStage() != serve.BrownoutNormal; i++ {
		if time.Now().After(releaseBy) {
			failf(b, "brownout stage %v did not release after load drop (pressure %.2f)",
				srv.BrownoutStage(), adm.Pressure())
		}
		// keep the release traffic leader-pure too: cached hits never reach
		// the admission gate, and a ladder that only sees silence can't walk
		// back down — recovery is observed through real (light) work
		if i%poolSize == 0 {
			srv.ResetCache()
		}
		srv.Submit(pool[i%poolSize])
		time.Sleep(5 * time.Millisecond)
	}
	b.ReportMetric(goodput/healthyRate, "goodput-ratio")
	b.ReportMetric(float64(maxStage.Load()), "max-stage")
	b.ReportMetric(float64(shed.Load()), "shed")
	reportFPS(b, answered.Load())
}

// ServeSteady8x2 is the sharded steady-state benchmark: 2 shards, AIMD
// policy, memoization off — the 0 allocs/op gate for the sharded dispatch
// hot path.
func ServeSteady8x2(b *testing.B) {
	svc := PaperService(false)
	frames := synth.SampleFrames(17, 64)
	srv, err := serve.New(svc, serve.Options{
		MaxBatch:     16,
		Shards:       2,
		Policy:       serve.NewAIMDPolicy(),
		DisableCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Warm()
	var wg sync.WaitGroup
	for c := 0; c < ServeConcurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				srv.Submit(frames[(c*8+i)%len(frames)])
			}
		}(c)
	}
	wg.Wait()
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	var bwg sync.WaitGroup
	for c := 0; c < ServeConcurrency; c++ {
		bwg.Add(1)
		go func(c int) {
			defer bwg.Done()
			set := frames[c*8 : c*8+8]
			for i := 0; remaining.Add(-1) >= 0; i++ {
				srv.Submit(set[i%len(set)])
			}
		}(c)
	}
	bwg.Wait()
	b.StopTimer()
	reportFPS(b, int64(b.N))
}

// syncLoop is the baseline the serve layer is measured against: the same
// rotation workload, but every sighting is a synchronous single-frame
// Classify call — no batching, no coalescing, no memoization — from the
// same number of concurrent clients.
func syncLoop(b *testing.B, quantized bool) {
	svc := PaperService(quantized)
	frames := synth.SampleFrames(19, serveRotationDistinct)
	runWindow := func() {
		var wg sync.WaitGroup
		for c := 0; c < ServeConcurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range frames {
					svc.Classify(frames[(c+i)%len(frames)])
				}
			}(c)
		}
		wg.Wait()
	}
	// warm the per-goroutine inference states
	svc.ClassifyBatch(frames[:2])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWindow()
	}
	b.StopTimer()
	reportFPS(b, int64(b.N)*ServeConcurrency*serveRotationDistinct)
}

// SyncClassify8 is the FP32 synchronous single-frame baseline loop.
func SyncClassify8(b *testing.B) { syncLoop(b, false) }

// SyncClassify8Int8 is the INT8 synchronous single-frame baseline loop.
func SyncClassify8Int8(b *testing.B) { syncLoop(b, true) }
