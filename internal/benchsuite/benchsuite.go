// Package benchsuite holds the single definition of the repository's
// headline benchmarks, shared by the `go test -bench` wrappers in
// bench_test.go and by cmd/percival-bench (which snapshots them into
// BENCH_<n>.json via testing.Benchmark). Keeping one definition means the
// perf trajectory and the ad-hoc benchmark runs can never silently diverge.
package benchsuite

import (
	"math/rand"
	"testing"

	"percival/internal/dataset"
	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/tensor"
)

// PaperNet builds the paper-scale PERCIVAL fork with the deterministic
// warm-start initialization (weights are random but fixed; benchmark
// latency does not depend on training).
func PaperNet() *nn.Sequential {
	net, err := squeezenet.Build(squeezenet.PaperConfig())
	if err != nil {
		panic(err)
	}
	squeezenet.PretrainedInit(net, 1)
	return net
}

// PaperQuantNet builds and calibrates the paper-scale INT8 engine shared by
// the Int8 benchmarks.
func PaperQuantNet() *nn.QuantizedSequential {
	net := PaperNet()
	rng := rand.New(rand.NewSource(2))
	calib := make([]*tensor.Tensor, 2)
	for i := range calib {
		x := tensor.New(1, 4, 224, 224)
		for j := range x.Data {
			x.Data[j] = float32(rng.Float64())
		}
		calib[i] = x
	}
	qnet, err := nn.Quantize(net, calib)
	if err != nil {
		panic(err)
	}
	return qnet
}

// InferSingle measures raw single-frame FP32 inference latency at paper
// resolution on the arena fast path: the per-frame cost PERCIVAL adds to
// the rendering critical path. Steady state should report 0 allocs/op.
func InferSingle(b *testing.B) {
	net := PaperNet()
	x := tensor.New(1, 4, 224, 224)
	a := tensor.NewArena()
	a.PutTensor(nn.PredictArena(net, x, a)) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PutTensor(nn.PredictArena(net, x, a))
	}
}

// InferSingleInt8 measures single-frame inference latency on the INT8
// quantized engine — the INT8 counterpart of InferSingle.
func InferSingleInt8(b *testing.B) {
	qnet := PaperQuantNet()
	x := tensor.New(1, 4, 224, 224)
	a := tensor.NewArena()
	a.PutTensor(qnet.PredictArena(x, a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PutTensor(qnet.PredictArena(x, a))
	}
}

// InferBatch measures batched FP32 throughput (8 frames per forward pass),
// the ClassifyBatch workload.
func InferBatch(b *testing.B) {
	net := PaperNet()
	x := tensor.New(8, 4, 224, 224)
	a := tensor.NewArena()
	a.PutTensor(nn.PredictArena(net, x, a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PutTensor(nn.PredictArena(net, x, a))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*8)/1e6, "ms/frame")
}

// InferBatchInt8 measures batched quantized throughput (8 frames per
// forward pass).
func InferBatchInt8(b *testing.B) {
	qnet := PaperQuantNet()
	x := tensor.New(8, 4, 224, 224)
	a := tensor.NewArena()
	a.PutTensor(qnet.PredictArena(x, a))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.PutTensor(qnet.PredictArena(x, a))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*8)/1e6, "ms/frame")
}

// GemmStem measures the paper-scale stem GEMM (96×196×12544) in FP32.
func GemmStem(b *testing.B) {
	const m, k, n = 96, 196, 12544
	rng := rand.New(rand.NewSource(3))
	a := make([]float32, m*k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	x := make([]float32, k*n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(a, x, c, m, k, n)
	}
}

// QGemmStem measures the same stem product through the quantized
// u8×s8→int32 GEMM.
func QGemmStem(b *testing.B) {
	const m, k, n = 96, 196, 12544
	rng := rand.New(rand.NewSource(4))
	a := make([]int8, m*k)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	x := make([]uint8, k*n)
	for i := range x {
		x[i] = uint8(rng.Intn(tensor.QMaxU8 + 1))
	}
	c := make([]int32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.QGemm(a, x, c, m, k, n)
	}
}

// Resize measures the per-frame bilinear scaling cost on the classification
// pre-processing path (typical decoded frame → 224×224).
func Resize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	src := imaging.NewBitmap(640, 480)
	for i := range src.Pix {
		src.Pix[i] = uint8(rng.Intn(256))
	}
	dst := imaging.NewBitmap(224, 224)
	imaging.ResizeBilinearInto(src, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.ResizeBilinearInto(src, dst)
	}
}

// TrainingEpoch measures one SGD epoch at the reduced harness scale (the
// §4.3 training recipe on this engine).
func TrainingEpoch(b *testing.B) {
	arch := squeezenet.SmallConfig(32)
	ds := dataset.Generate(7, synth.CrawlStyle(), 96)
	cfg := dataset.FastTraining(arch, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Train(cfg, ds); err != nil {
			b.Fatal(err)
		}
	}
}
