package dataset

import (
	"fmt"
	"io"
	"math/rand"

	"percival/internal/metrics"
	"percival/internal/nn"
	"percival/internal/squeezenet"
)

// TrainConfig controls a training run. The defaults in PaperTraining mirror
// §4.3: SGD with momentum 0.9, base learning rate 0.001 decayed ×0.1 every
// 30 epochs, batch size 24.
type TrainConfig struct {
	Arch        squeezenet.Config
	Epochs      int
	BatchSize   int
	Momentum    float64
	WeightDecay float64
	Schedule    nn.StepLR
	Seed        int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// PaperTraining returns the paper's §4.3 hyper-parameters for the given
// architecture. The epoch count is the caller's budget decision.
func PaperTraining(arch squeezenet.Config, epochs int) TrainConfig {
	return TrainConfig{
		Arch:        arch,
		Epochs:      epochs,
		BatchSize:   24,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Schedule:    nn.PaperSchedule(),
		Seed:        1,
	}
}

// FastTraining returns hyper-parameters tuned for the reduced-resolution
// experiments: a higher learning rate shortens convergence on CPU while
// keeping the paper's optimizer family.
func FastTraining(arch squeezenet.Config, epochs int) TrainConfig {
	return TrainConfig{
		Arch:        arch,
		Epochs:      epochs,
		BatchSize:   24,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Schedule:    nn.StepLR{Base: 0.005, Gamma: 0.5, StepEpochs: 3},
		Seed:        1,
	}
}

// Train fits a PERCIVAL network on the dataset and returns it. The network
// is warm-started from the simulated pretrained feature extractor (§4.3).
func Train(cfg TrainConfig, train *Dataset) (*nn.Sequential, error) {
	if train.Len() < cfg.BatchSize {
		return nil, fmt.Errorf("dataset: training set of %d smaller than batch size %d", train.Len(), cfg.BatchSize)
	}
	net, err := squeezenet.Build(cfg.Arch)
	if err != nil {
		return nil, err
	}
	squeezenet.PretrainedInit(net, cfg.Seed)
	opt := nn.NewSGD(net.Params(), cfg.Schedule.Base, cfg.Momentum, cfg.WeightDecay)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := cfg.Arch.InputRes
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.Schedule.At(epoch)
		rng.Shuffle(train.Len(), func(i, j int) {
			train.Samples[i], train.Samples[j] = train.Samples[j], train.Samples[i]
		})
		var lossSum, accSum float64
		batches := 0
		for lo := 0; lo+cfg.BatchSize <= train.Len(); lo += cfg.BatchSize {
			x, labels := train.Batch(lo, lo+cfg.BatchSize, res)
			loss, acc := nn.TrainStep(net, opt, x, labels)
			lossSum += loss
			accSum += acc
			batches++
		}
		if cfg.Log != nil && batches > 0 {
			fmt.Fprintf(cfg.Log, "epoch %2d lr %.5f loss %.4f acc %.4f\n",
				epoch, opt.LR, lossSum/float64(batches), accSum/float64(batches))
		}
	}
	return net, nil
}

// Evaluate classifies every sample in the dataset at the network's
// resolution with the given ad-probability threshold and returns the
// confusion matrix. A threshold of 0.5 reproduces argmax behaviour.
func Evaluate(net *nn.Sequential, res int, threshold float64, d *Dataset) metrics.Confusion {
	var c metrics.Confusion
	const chunk = 32
	for lo := 0; lo < d.Len(); lo += chunk {
		hi := lo + chunk
		if hi > d.Len() {
			hi = d.Len()
		}
		x, labels := d.Batch(lo, hi, res)
		probs := nn.Predict(net, x)
		n, k := probs.Shape[0], probs.Shape[1]
		for i := 0; i < n; i++ {
			adProb := float64(probs.Data[i*k+Ad])
			c.Add(adProb >= threshold, labels[i] == Ad)
		}
	}
	return c
}
