package dataset

import (
	"image/color"
	"math/rand"
	"testing"

	"percival/internal/imaging"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

func rgba(r, g, b uint8) color.RGBA { return color.RGBA{r, g, b, 255} }

func smallArch() squeezenet.Config { return squeezenet.SmallConfig(16) }

func TestGenerateAndCounts(t *testing.T) {
	d := Generate(1, synth.CrawlStyle(), 100)
	if d.Len() != 100 {
		t.Fatalf("len %d", d.Len())
	}
	ads, nonAds := d.Counts()
	if ads+nonAds != 100 {
		t.Fatalf("counts %d+%d", ads, nonAds)
	}
	if ads < 30 || ads > 70 {
		t.Fatalf("unbalanced sample: %d ads", ads)
	}
}

func TestGenerateUnbalanced(t *testing.T) {
	d := GenerateUnbalanced(2, synth.FacebookStyle(), 20, 80)
	ads, nonAds := d.Counts()
	if ads != 20 || nonAds != 80 {
		t.Fatalf("counts %d/%d", ads, nonAds)
	}
}

func TestBalanceCapsTheMajorityClass(t *testing.T) {
	d := GenerateUnbalanced(3, synth.CrawlStyle(), 10, 50)
	d.Balance(rand.New(rand.NewSource(1)))
	ads, nonAds := d.Counts()
	if ads != 10 || nonAds != 10 {
		t.Fatalf("after balance: %d/%d", ads, nonAds)
	}
}

func TestDedupRemovesExactDuplicates(t *testing.T) {
	d := &Dataset{}
	img := imaging.NewBitmap(32, 32)
	img.FillRect(4, 4, 20, 20, rgba(200, 30, 30))
	img.LinearGradientV(0, 20, 32, 32, rgba(10, 10, 10), rgba(240, 240, 240))
	for i := 0; i < 5; i++ {
		d.Add(img.Clone(), Ad)
	}
	distinct := imaging.NewBitmap(32, 32)
	distinct.LinearGradientV(0, 0, 32, 32, rgba(255, 255, 255), rgba(0, 0, 0))
	d.Add(distinct, NonAd)
	removed := d.Dedup(4)
	if removed != 4 {
		t.Fatalf("removed %d, want 4", removed)
	}
	if d.Len() != 2 {
		t.Fatalf("kept %d, want 2", d.Len())
	}
}

func TestDedupKeepsDistinctSamples(t *testing.T) {
	d := Generate(4, synth.CrawlStyle(), 60)
	before := d.Len()
	d.Dedup(2)
	// synthetic samples are diverse; dedup should keep the majority
	if d.Len() < before/2 {
		t.Fatalf("dedup too aggressive: %d -> %d", before, d.Len())
	}
}

func TestSplitPartitions(t *testing.T) {
	d := Generate(5, synth.CrawlStyle(), 50)
	train, val := d.Split(rand.New(rand.NewSource(2)), 0.8)
	if train.Len() != 40 || val.Len() != 10 {
		t.Fatalf("split %d/%d", train.Len(), val.Len())
	}
}

func TestMerge(t *testing.T) {
	a := Generate(6, synth.CrawlStyle(), 10)
	b := Generate(7, synth.CrawlStyle(), 15)
	a.Merge(b)
	if a.Len() != 25 {
		t.Fatalf("merged len %d", a.Len())
	}
}

func TestBatchShapes(t *testing.T) {
	d := Generate(8, synth.CrawlStyle(), 10)
	x, labels := d.Batch(2, 6, 32)
	if x.Shape[0] != 4 || x.Shape[1] != 4 || x.Shape[2] != 32 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(labels) != 4 {
		t.Fatalf("labels %d", len(labels))
	}
}

func TestBatchPanicsOnBadRange(t *testing.T) {
	d := Generate(9, synth.CrawlStyle(), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Batch(2, 10, 32)
}

func TestTrainRejectsTinyDataset(t *testing.T) {
	cfg := FastTraining(smallArch(), 1)
	d := Generate(10, synth.CrawlStyle(), 5)
	if _, err := Train(cfg, d); err == nil {
		t.Fatal("expected error for dataset smaller than batch")
	}
}
