// Package dataset manages labelled image collections for training and
// evaluating PERCIVAL: balancing (§4.4.1 caps non-ads to the ad count so the
// classifier doesn't favor one class), de-duplication (the paper keeps only
// 15–20% of each crawl phase after removing duplicates), train/validation
// splits, and the tensor batching used by the training loop.
package dataset

import (
	"fmt"
	"math/rand"

	"percival/internal/imaging"
	"percival/internal/synth"
	"percival/internal/tensor"
)

// Label values for the binary ad-classification task.
const (
	NonAd = 0
	Ad    = 1
)

// Sample is one labelled image.
type Sample struct {
	Image *imaging.Bitmap
	Label int
	// PHash caches the perceptual hash for dedup prefiltering.
	PHash uint64
	// Thumb caches a small thumbnail for dedup confirmation.
	Thumb *imaging.Bitmap
}

// Dataset is an ordered collection of labelled samples.
type Dataset struct {
	Samples []Sample
}

// Add appends a sample, computing its dedup signatures.
func (d *Dataset) Add(img *imaging.Bitmap, label int) {
	d.Samples = append(d.Samples, Sample{
		Image: img,
		Label: label,
		PHash: imaging.PerceptualHash(img),
		Thumb: imaging.Thumbnail(img),
	})
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Counts returns (ads, nonAds).
func (d *Dataset) Counts() (ads, nonAds int) {
	for _, s := range d.Samples {
		if s.Label == Ad {
			ads++
		} else {
			nonAds++
		}
	}
	return ads, nonAds
}

// dupThumbThreshold is the mean-absolute thumbnail difference below which
// two phash-similar images are confirmed duplicates (same creative,
// possibly rescaled or recompressed).
const dupThumbThreshold = 10.0

// Dedup removes exact and near duplicates in two stages: a perceptual-hash
// Hamming prefilter within the given radius, confirmed by a color-aware
// thumbnail comparison (the 64-bit aHash alone collides on distinct
// creatives that share a layout). Returns the number removed. The paper
// keeps only 15-20% of each crawl phase after this step (§4.4.2).
func (d *Dataset) Dedup(radius int) int {
	var kept []Sample
	removed := 0
	for _, s := range d.Samples {
		dup := false
		for i := range kept {
			if !imaging.NearDuplicate(kept[i].PHash, s.PHash, radius) {
				continue
			}
			if imaging.MeanAbsDiff(kept[i].Thumb, s.Thumb) <= dupThumbThreshold {
				dup = true
				break
			}
		}
		if dup {
			removed++
		} else {
			kept = append(kept, s)
		}
	}
	d.Samples = kept
	return removed
}

// Balance caps the majority class to the minority class count, shuffling
// first so the dropped samples are random (§4.4.1: "we limited the number of
// non ad and ad images to 2,000").
func (d *Dataset) Balance(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
	ads, nonAds := d.Counts()
	cap := ads
	if nonAds < cap {
		cap = nonAds
	}
	var out []Sample
	a, n := 0, 0
	for _, s := range d.Samples {
		if s.Label == Ad && a < cap {
			out = append(out, s)
			a++
		} else if s.Label == NonAd && n < cap {
			out = append(out, s)
			n++
		}
	}
	d.Samples = out
}

// Split partitions the dataset into train and validation sets with the given
// training fraction, after shuffling.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, val *Dataset) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
	n := int(float64(len(d.Samples)) * trainFrac)
	return &Dataset{Samples: d.Samples[:n]}, &Dataset{Samples: d.Samples[n:]}
}

// Merge appends all samples from other.
func (d *Dataset) Merge(other *Dataset) {
	d.Samples = append(d.Samples, other.Samples...)
}

// Batch materializes samples [lo,hi) as a network input batch at the given
// resolution, plus the label vector.
func (d *Dataset) Batch(lo, hi, res int) (*tensor.Tensor, []int) {
	if lo < 0 || hi > len(d.Samples) || lo >= hi {
		panic(fmt.Sprintf("dataset: bad batch range [%d,%d) of %d", lo, hi, len(d.Samples)))
	}
	bitmaps := make([]*imaging.Bitmap, 0, hi-lo)
	labels := make([]int, 0, hi-lo)
	for _, s := range d.Samples[lo:hi] {
		bitmaps = append(bitmaps, imaging.ResizeBilinear(s.Image, res, res))
		labels = append(labels, s.Label)
	}
	return imaging.BatchToTensor(bitmaps), labels
}

// Generate synthesizes a balanced dataset of n samples from a style.
func Generate(seed int64, style synth.Style, n int) *Dataset {
	g := synth.NewGenerator(seed, style)
	d := &Dataset{}
	for i := 0; i < n; i++ {
		img, label := g.Sample()
		d.Add(img, label)
	}
	return d
}

// GenerateUnbalanced synthesizes a dataset with explicit per-class counts —
// evaluation sets like Facebook's (354 ads vs 1,830 non-ads, Fig. 10) are
// heavily skewed.
func GenerateUnbalanced(seed int64, style synth.Style, ads, nonAds int) *Dataset {
	g := synth.NewGenerator(seed, style)
	d := &Dataset{}
	for i := 0; i < ads; i++ {
		d.Add(g.Ad(), Ad)
	}
	for i := 0; i < nonAds; i++ {
		d.Add(g.NonAd(), NonAd)
	}
	return d
}

// External synthesizes the Hussain-et-al.-style held-out set (§5.1): a
// sample of nAds ad images plus matching negatives drawn from the shifted
// external distribution.
func External(seed int64, n int) *Dataset {
	return Generate(seed, synth.ExternalStyle(), n)
}
