package easylist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: filter lists are crowd-sourced text; the engine must
// survive arbitrary input (real ad blockers skip malformed rules).
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		l, _ := Parse(s)
		return l != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchNeverPanicsOnRandomRequests throws random rules and URLs at the
// matcher.
func TestMatchNeverPanicsOnRandomRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ruleParts := []string{"||", "|", "^", "*", "ads", ".com", "/", "banner", "@@", "$image", "$domain=a.com", "~"}
	urlParts := []string{"http://", "https://", "ads", ".com", "/", "?q=", "banner", ".png", "a.b", ":8080"}
	build := func(parts []string, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(parts[rng.Intn(len(parts))])
		}
		return sb.String()
	}
	for trial := 0; trial < 400; trial++ {
		l, _ := Parse(build(ruleParts, 1+rng.Intn(6)))
		req := Request{
			URL:        build(urlParts, 1+rng.Intn(6)),
			Domain:     build(urlParts, 1+rng.Intn(3)),
			PageDomain: "site.com",
			Type:       RequestType(rng.Intn(4)),
		}
		l.ShouldBlock(req) // must not panic
		l.MatchingRule(req)
		l.HideSelectors(req.PageDomain)
	}
}

// TestExceptionAlwaysWins: for any request, adding a matching @@ exception
// must never increase blocking.
func TestExceptionAlwaysWins(t *testing.T) {
	base := "||ads.example^\n/banner/\ntrack"
	withException := base + "\n@@||ads.example^\n@@/banner/\n@@track"
	lBase, _ := Parse(base)
	lExc, _ := Parse(withException)
	urls := []string{
		"http://ads.example/x.png",
		"http://cdn.com/banner/1.png",
		"http://t.com/track?id=1",
		"http://clean.com/img.png",
	}
	for _, u := range urls {
		req := Request{URL: u, Domain: "cdn.com", PageDomain: "p.com", Type: TypeImage}
		if lExc.ShouldBlock(req) {
			t.Fatalf("%s blocked despite blanket exceptions", u)
		}
		_ = lBase.ShouldBlock(req)
	}
}
