// Package easylist implements a filter-list engine compatible with the core
// EasyList rule grammar: network blocking rules with anchors, wildcards,
// separators and options, exception rules, and element-hiding (CSS) rules.
//
// In the paper EasyList plays three roles: the labeller for the first
// training dataset (§4.4.1), the baseline PERCIVAL is compared against
// (Figs. 6 and 7), and the blocking layer active in the Brave browser
// profile of the performance evaluation (§5.7). This engine fills all three
// roles against the synthetic web corpus.
package easylist

import (
	"fmt"
	"strings"
)

// RequestType classifies a network request for option matching.
type RequestType int

// Request types relevant to the evaluation (EasyList supports more).
const (
	TypeImage RequestType = iota
	TypeScript
	TypeSubdocument
	TypeOther
)

// Request is one network fetch to test against the list.
type Request struct {
	// URL is the full resource URL.
	URL string
	// Domain is the resource's host.
	Domain string
	// PageDomain is the host of the page making the request.
	PageDomain string
	// Type is the resource type.
	Type RequestType
}

// ThirdParty reports whether the request crosses sites.
func (r Request) ThirdParty() bool {
	return !sameSite(r.Domain, r.PageDomain)
}

func sameSite(a, b string) bool {
	return a == b || strings.HasSuffix(a, "."+b) || strings.HasSuffix(b, "."+a)
}

// NetworkRule is a parsed blocking (or exception) rule.
type NetworkRule struct {
	// Raw is the original rule text.
	Raw string
	// Exception marks an @@ rule.
	Exception bool
	// anchors and pattern
	anchorStart  bool // |http...
	anchorDomain bool // ||example.com...
	anchorEnd    bool // ...|
	tokens       []string
	// options
	domains     []string // $domain=a.com|b.com (empty = all)
	notDomains  []string // $domain=~a.com
	types       map[RequestType]bool
	notTypes    map[RequestType]bool
	thirdParty  *bool
	optionsSeen bool
}

// CosmeticRule is an element-hiding rule (##selector / #@#selector).
type CosmeticRule struct {
	Raw       string
	Domains   []string // empty = generic
	Selector  string
	Exception bool
}

// List is a parsed filter list.
type List struct {
	Network  []NetworkRule
	Cosmetic []CosmeticRule
}

// Parse reads a filter list in EasyList text format. Comment lines (!) and
// section headers ([Adblock Plus ...]) are skipped. Malformed rules are
// reported but do not abort parsing, matching real ad-blocker behaviour.
func Parse(text string) (*List, []error) {
	l := &List{}
	var errs []error
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		if idx := strings.Index(line, "#@#"); idx >= 0 {
			l.Cosmetic = append(l.Cosmetic, parseCosmetic(line, idx, 3, true))
			continue
		}
		if idx := strings.Index(line, "##"); idx >= 0 {
			l.Cosmetic = append(l.Cosmetic, parseCosmetic(line, idx, 2, false))
			continue
		}
		r, err := parseNetwork(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("easylist: line %d: %w", ln+1, err))
			continue
		}
		l.Network = append(l.Network, r)
	}
	return l, errs
}

func parseCosmetic(line string, idx, sepLen int, exception bool) CosmeticRule {
	rule := CosmeticRule{Raw: line, Selector: line[idx+sepLen:], Exception: exception}
	if idx > 0 {
		for _, d := range strings.Split(line[:idx], ",") {
			d = strings.TrimSpace(d)
			if d != "" {
				rule.Domains = append(rule.Domains, d)
			}
		}
	}
	return rule
}

func parseNetwork(line string) (NetworkRule, error) {
	r := NetworkRule{Raw: line}
	if strings.HasPrefix(line, "@@") {
		r.Exception = true
		line = line[2:]
	}
	// split off options
	if idx := strings.LastIndex(line, "$"); idx >= 0 {
		opts := line[idx+1:]
		line = line[:idx]
		r.optionsSeen = true
		if err := r.parseOptions(opts); err != nil {
			return r, err
		}
	}
	if strings.HasPrefix(line, "||") {
		r.anchorDomain = true
		line = line[2:]
	} else if strings.HasPrefix(line, "|") {
		r.anchorStart = true
		line = line[1:]
	}
	if strings.HasSuffix(line, "|") {
		r.anchorEnd = true
		line = line[:len(line)-1]
	}
	if line == "" {
		return r, fmt.Errorf("empty pattern in %q", r.Raw)
	}
	r.tokens = strings.Split(line, "*")
	return r, nil
}

func (r *NetworkRule) parseOptions(opts string) error {
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		switch {
		case opt == "":
			continue
		case strings.HasPrefix(opt, "domain="):
			for _, d := range strings.Split(opt[len("domain="):], "|") {
				if strings.HasPrefix(d, "~") {
					r.notDomains = append(r.notDomains, d[1:])
				} else if d != "" {
					r.domains = append(r.domains, d)
				}
			}
		case opt == "image", opt == "script", opt == "subdocument":
			if r.types == nil {
				r.types = map[RequestType]bool{}
			}
			r.types[typeFromName(opt)] = true
		case opt == "~image", opt == "~script", opt == "~subdocument":
			if r.notTypes == nil {
				r.notTypes = map[RequestType]bool{}
			}
			r.notTypes[typeFromName(opt[1:])] = true
		case opt == "third-party":
			v := true
			r.thirdParty = &v
		case opt == "~third-party":
			v := false
			r.thirdParty = &v
		default:
			return fmt.Errorf("unsupported option %q in %q", opt, r.Raw)
		}
	}
	return nil
}

func typeFromName(name string) RequestType {
	switch name {
	case "image":
		return TypeImage
	case "script":
		return TypeScript
	case "subdocument":
		return TypeSubdocument
	}
	return TypeOther
}

// Matches reports whether the rule's pattern and options match the request.
func (r *NetworkRule) Matches(req Request) bool {
	if !r.optionsMatch(req) {
		return false
	}
	return r.patternMatches(req.URL)
}

func (r *NetworkRule) optionsMatch(req Request) bool {
	if r.thirdParty != nil && *r.thirdParty != req.ThirdParty() {
		return false
	}
	if len(r.types) > 0 && !r.types[req.Type] {
		return false
	}
	if r.notTypes != nil && r.notTypes[req.Type] {
		return false
	}
	if len(r.domains) > 0 {
		ok := false
		for _, d := range r.domains {
			if sameSite(req.PageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.notDomains {
		if sameSite(req.PageDomain, d) {
			return false
		}
	}
	return true
}

// patternMatches implements EasyList pattern semantics over the URL:
// anchors pin the match position, '*' separates freely-ordered tokens and
// '^' within a token matches a separator character (anything that is not a
// letter, digit, or one of "_-.%") or the end of the URL.
func (r *NetworkRule) patternMatches(url string) bool {
	pos := 0
	for i, tok := range r.tokens {
		if tok == "" {
			continue
		}
		var at int
		switch {
		case i == 0 && r.anchorStart:
			if !matchesAt(url, 0, tok) {
				return false
			}
			at = 0
		case i == 0 && r.anchorDomain:
			at = matchDomainAnchor(url, tok)
			if at < 0 {
				return false
			}
		default:
			at = searchToken(url, pos, tok)
			if at < 0 {
				return false
			}
		}
		pos = at + len(tok)
	}
	if r.anchorEnd {
		last := r.tokens[len(r.tokens)-1]
		if last != "" && !strings.HasSuffix(url, strings.ReplaceAll(last, "^", "")) && pos != len(url) {
			// allow '^' to absorb the end-of-URL
			if !(strings.HasSuffix(last, "^") && pos >= len(url)) {
				return false
			}
		}
	}
	return true
}

// matchDomainAnchor finds the token starting at a host-boundary position:
// immediately after "://" or after a "." within the host.
func matchDomainAnchor(url, tok string) int {
	schemeEnd := strings.Index(url, "://")
	if schemeEnd < 0 {
		return -1
	}
	hostStart := schemeEnd + 3
	hostEnd := len(url)
	for i := hostStart; i < len(url); i++ {
		if url[i] == '/' || url[i] == '?' {
			hostEnd = i
			break
		}
	}
	for at := hostStart; at <= hostEnd; at++ {
		if at != hostStart && (at == 0 || url[at-1] != '.') {
			continue
		}
		if matchesAt(url, at, tok) {
			return at
		}
	}
	return -1
}

// searchToken finds the first position >= from where tok matches.
func searchToken(url string, from int, tok string) int {
	for at := from; at+tokenMinLen(tok) <= len(url); at++ {
		if matchesAt(url, at, tok) {
			return at
		}
	}
	// a trailing '^' may match end-of-url with the rest of the token before it
	return -1
}

func tokenMinLen(tok string) int {
	// '^' can match end-of-string, so a trailing '^' doesn't consume a char
	if strings.HasSuffix(tok, "^") {
		return len(tok) - 1
	}
	return len(tok)
}

// matchesAt tests tok against url at position at, honoring '^' separators.
func matchesAt(url string, at int, tok string) bool {
	for i := 0; i < len(tok); i++ {
		p := at + i
		if tok[i] == '^' {
			if p == len(url) && i == len(tok)-1 {
				return true // '^' matches end of URL
			}
			if p >= len(url) || !isSeparator(url[p]) {
				return false
			}
			continue
		}
		if p >= len(url) || url[p] != tok[i] {
			return false
		}
	}
	return true
}

func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_', c == '-', c == '.', c == '%':
		return false
	}
	return true
}

// ShouldBlock evaluates the full list against a request: a blocking rule
// must match and no exception rule may match.
func (l *List) ShouldBlock(req Request) bool {
	blocked := false
	for i := range l.Network {
		r := &l.Network[i]
		if r.Exception {
			continue
		}
		if r.Matches(req) {
			blocked = true
			break
		}
	}
	if !blocked {
		return false
	}
	for i := range l.Network {
		r := &l.Network[i]
		if r.Exception && r.Matches(req) {
			return false
		}
	}
	return true
}

// MatchingRule returns the first blocking rule matching the request (for
// diagnostics), or nil.
func (l *List) MatchingRule(req Request) *NetworkRule {
	for i := range l.Network {
		r := &l.Network[i]
		if !r.Exception && r.Matches(req) {
			return r
		}
	}
	return nil
}

// HideSelectors returns the CSS selectors that apply on the given page
// domain: generic selectors plus domain-scoped ones, minus exceptions.
func (l *List) HideSelectors(pageDomain string) []string {
	excluded := map[string]bool{}
	for _, c := range l.Cosmetic {
		if !c.Exception {
			continue
		}
		for _, d := range c.Domains {
			if sameSite(pageDomain, d) {
				excluded[c.Selector] = true
			}
		}
		if len(c.Domains) == 0 {
			excluded[c.Selector] = true
		}
	}
	var out []string
	for _, c := range l.Cosmetic {
		if c.Exception || excluded[c.Selector] {
			continue
		}
		if len(c.Domains) == 0 {
			out = append(out, c.Selector)
			continue
		}
		for _, d := range c.Domains {
			if sameSite(pageDomain, d) {
				out = append(out, c.Selector)
				break
			}
		}
	}
	return out
}
