package easylist

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *List {
	t.Helper()
	l, errs := Parse(text)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return l
}

func imgReq(url, domain, page string) Request {
	return Request{URL: url, Domain: domain, PageDomain: page, Type: TypeImage}
}

func TestParseSkipsCommentsAndHeaders(t *testing.T) {
	l := mustParse(t, "[Adblock Plus 2.0]\n! comment\n\n||ads.example.com^\n")
	if len(l.Network) != 1 {
		t.Fatalf("network rules %d", len(l.Network))
	}
}

func TestDomainAnchorMatching(t *testing.T) {
	l := mustParse(t, "||adnet.com^")
	cases := []struct {
		url  string
		want bool
	}{
		{"http://adnet.com/banner.png", true},
		{"https://adnet.com/x", true},
		{"https://cdn.adnet.com/x", true}, // subdomain boundary after "."
		{"https://notadnet.com/x", false}, // no host boundary before match
		{"https://example.com/adnet.com/x", false},
		{"https://adnet.company.com/x", false}, // '^' must see separator after match
	}
	for _, c := range cases {
		req := imgReq(c.url, "adnet.com", "site.com")
		if got := l.ShouldBlock(req); got != c.want {
			t.Errorf("%s: block=%v want %v", c.url, got, c.want)
		}
	}
}

func TestStartAnchorAndEndAnchor(t *testing.T) {
	l := mustParse(t, "|http://exact.com/ad.gif|")
	if !l.ShouldBlock(imgReq("http://exact.com/ad.gif", "exact.com", "p.com")) {
		t.Fatal("exact match should block")
	}
	if l.ShouldBlock(imgReq("http://exact.com/ad.gif?x=1", "exact.com", "p.com")) {
		t.Fatal("end anchor should reject longer URL")
	}
	if l.ShouldBlock(imgReq("https://prefix.http://exact.com/ad.gif", "exact.com", "p.com")) {
		t.Fatal("start anchor should reject offset match")
	}
}

func TestSubstringAndWildcard(t *testing.T) {
	l := mustParse(t, "/banners/*.png")
	if !l.ShouldBlock(imgReq("http://x.com/banners/top.png", "x.com", "x.com")) {
		t.Fatal("wildcard should match")
	}
	if l.ShouldBlock(imgReq("http://x.com/banners/top.jpg", "x.com", "x.com")) {
		t.Fatal("suffix mismatch should not block")
	}
	// tokens must appear in order
	l2 := mustParse(t, "ad*track")
	if !l2.ShouldBlock(imgReq("http://x.com/ad/pixel/track", "x.com", "x.com")) {
		t.Fatal("ordered tokens should match")
	}
	if l2.ShouldBlock(imgReq("http://x.com/track/pixel/ad", "x.com", "x.com")) {
		t.Fatal("out-of-order tokens should not match")
	}
}

func TestSeparatorSemantics(t *testing.T) {
	l := mustParse(t, "||ads.net^banner")
	if !l.ShouldBlock(imgReq("http://ads.net/banner", "ads.net", "p.com")) {
		t.Fatal("'/' should satisfy '^'")
	}
	if l.ShouldBlock(imgReq("http://ads.netxbanner.com/", "ads.netxbanner.com", "p.com")) {
		t.Fatal("letter should not satisfy '^'")
	}
	// '^' at end of pattern may match end of URL
	l2 := mustParse(t, "||ads.net^")
	if !l2.ShouldBlock(imgReq("http://ads.net", "ads.net", "p.com")) {
		t.Fatal("'^' should match end of URL")
	}
}

func TestExceptionRules(t *testing.T) {
	l := mustParse(t, "||adnet.com^\n@@||adnet.com/allowed/")
	if !l.ShouldBlock(imgReq("http://adnet.com/banner", "adnet.com", "p.com")) {
		t.Fatal("non-excepted URL should block")
	}
	if l.ShouldBlock(imgReq("http://adnet.com/allowed/banner", "adnet.com", "p.com")) {
		t.Fatal("exception should unblock")
	}
}

func TestDomainOption(t *testing.T) {
	l := mustParse(t, "/promo/$domain=news.com|mag.com")
	if !l.ShouldBlock(imgReq("http://cdn.com/promo/1.png", "cdn.com", "news.com")) {
		t.Fatal("listed domain should block")
	}
	if !l.ShouldBlock(imgReq("http://cdn.com/promo/1.png", "cdn.com", "sub.mag.com")) {
		t.Fatal("subdomain of listed domain should block")
	}
	if l.ShouldBlock(imgReq("http://cdn.com/promo/1.png", "cdn.com", "other.com")) {
		t.Fatal("unlisted domain should not block")
	}
	neg := mustParse(t, "/promo/$domain=~news.com")
	if neg.ShouldBlock(imgReq("http://cdn.com/promo/1.png", "cdn.com", "news.com")) {
		t.Fatal("negated domain should not block")
	}
	if !neg.ShouldBlock(imgReq("http://cdn.com/promo/1.png", "cdn.com", "other.com")) {
		t.Fatal("other domains should block")
	}
}

func TestTypeOptions(t *testing.T) {
	l := mustParse(t, "||adnet.com^$image")
	req := imgReq("http://adnet.com/x", "adnet.com", "p.com")
	if !l.ShouldBlock(req) {
		t.Fatal("image rule should block image")
	}
	req.Type = TypeScript
	if l.ShouldBlock(req) {
		t.Fatal("image rule should not block script")
	}
	l2 := mustParse(t, "||adnet.com^$~image")
	if l2.ShouldBlock(imgReq("http://adnet.com/x", "adnet.com", "p.com")) {
		t.Fatal("~image should not block image")
	}
}

func TestThirdPartyOption(t *testing.T) {
	l := mustParse(t, "||tracker.com^$third-party")
	if !l.ShouldBlock(imgReq("http://tracker.com/x", "tracker.com", "news.com")) {
		t.Fatal("cross-site should block")
	}
	if l.ShouldBlock(imgReq("http://tracker.com/x", "tracker.com", "tracker.com")) {
		t.Fatal("same-site should not block")
	}
	if l.ShouldBlock(imgReq("http://cdn.tracker.com/x", "cdn.tracker.com", "tracker.com")) {
		t.Fatal("subdomain is first-party")
	}
}

func TestCosmeticRules(t *testing.T) {
	l := mustParse(t, "##.ad-banner\nnews.com##.sponsored\n#@#.ad-banner")
	sel := l.HideSelectors("news.com")
	joined := strings.Join(sel, ",")
	if strings.Contains(joined, ".ad-banner") {
		t.Fatal("generic exception should remove .ad-banner")
	}
	if !strings.Contains(joined, ".sponsored") {
		t.Fatal("domain-scoped selector missing")
	}
	if s := l.HideSelectors("other.com"); strings.Contains(strings.Join(s, ","), ".sponsored") {
		t.Fatal("domain-scoped selector leaked to other domain")
	}
}

func TestParseReportsErrorsButContinues(t *testing.T) {
	l, errs := Parse("||good.com^\n$image\n||also-good.com^")
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	if len(l.Network) != 2 {
		t.Fatalf("want 2 parsed rules, got %d", len(l.Network))
	}
}

func TestUnsupportedOptionIsError(t *testing.T) {
	_, errs := Parse("||x.com^$websocket")
	if len(errs) != 1 {
		t.Fatalf("want unsupported-option error, got %v", errs)
	}
}

func TestMatchingRuleDiagnostics(t *testing.T) {
	l := mustParse(t, "||a.com^\n||b.com^")
	r := l.MatchingRule(imgReq("http://b.com/x", "b.com", "p.com"))
	if r == nil || r.Raw != "||b.com^" {
		t.Fatalf("MatchingRule = %+v", r)
	}
	if l.MatchingRule(imgReq("http://c.com/x", "c.com", "p.com")) != nil {
		t.Fatal("no rule should match")
	}
}
