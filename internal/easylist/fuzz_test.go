package easylist

import (
	"strings"
	"testing"
)

// FuzzParse drives the EasyList parser and matcher with arbitrary list
// text. The parser's contract is browser-grade tolerance: malformed rules
// are reported as errors, never panics, and whatever does parse must
// evaluate against requests without crashing.
func FuzzParse(f *testing.F) {
	// seeds: the grammar corners the unit tests pin, plus real-shaped rules
	// from the synthetic corpus generator
	for _, seed := range []string{
		"[Adblock Plus 2.0]\n! comment\n\n||ads.example.com^\n",
		"||adnet.com^",
		"|http://exact.com/ad.gif|",
		"@@||good.example.com/ads$image",
		"&ad_box_$~third-party,image",
		"/banners/*.png$domain=news1.example|~blog2.example",
		"||cdn.adsrv.adnet.example^$image,subdocument",
		"##.ad-banner",
		"news1.example##.sponsored-box",
		"blog2.example#@#.promo-unit",
		"*ads*tracking*^$script",
		"^^^^",
		"||",
		"@@",
		"$domain=",
		"a$unsupportedopt",
		"||x^|",
		"!! not a rule ## but looks cosmetic",
	} {
		f.Add(seed)
	}
	reqs := []Request{
		{URL: "http://cdn.adsrv.adnet.example/banners/1-0-0.png", Domain: "cdn.adsrv.adnet.example", PageDomain: "news1.example", Type: TypeImage},
		{URL: "https://example.com/", Domain: "example.com", PageDomain: "example.com", Type: TypeSubdocument},
		{URL: "no-scheme-at-all", Domain: "", PageDomain: "", Type: TypeOther},
		{URL: "", Domain: "", PageDomain: "x", Type: TypeScript},
	}
	f.Fuzz(func(t *testing.T, text string) {
		list, errs := Parse(text)
		if list == nil {
			t.Fatal("Parse returned nil list")
		}
		// every input line is accounted for: parsed or skipped, never both
		lines := 0
		for _, ln := range strings.Split(text, "\n") {
			if s := strings.TrimSpace(ln); s != "" && !strings.HasPrefix(s, "!") && !strings.HasPrefix(s, "[") {
				lines++
			}
		}
		if got := len(list.Network) + len(list.Cosmetic) + len(errs); got > lines {
			t.Fatalf("%d rules+errors from %d candidate lines", got, lines)
		}
		for i := range list.Network {
			r := &list.Network[i]
			if r.Raw == "" {
				t.Fatal("parsed rule lost its raw text")
			}
			for _, req := range reqs {
				r.Matches(req) // must not panic
			}
		}
		for _, req := range reqs {
			blocked := list.ShouldBlock(req)
			if blocked && list.MatchingRule(req) == nil {
				t.Fatal("ShouldBlock true but no matching rule")
			}
		}
		list.HideSelectors("news1.example")
		list.HideSelectors("")
	})
}
