package core

import (
	"math"
	"testing"

	"percival/internal/imaging"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

func calibFrames(n int) []*imaging.Bitmap {
	g := synth.NewGenerator(41, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, n)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	return frames
}

// TestQuantizedModeClassifies checks the quantized service activates behind
// the parity gate and produces scores close to the FP32 service on fresh
// frames.
func TestQuantizedModeClassifies(t *testing.T) {
	frames := calibFrames(32)
	fp := testService(t, Options{})
	q := testService(t, Options{Quantized: true, CalibFrames: frames})
	if q.ParityAgreement() == 0 {
		t.Fatal("parity agreement not measured")
	}
	if !q.QuantizedActive() {
		t.Skipf("parity gate kept FP32 (agreement %.3f) — valid fallback, nothing to compare", q.ParityAgreement())
	}
	if q.QuantizedModelSizeBytes() == 0 || q.QuantizedModelSizeBytes() >= q.ModelSizeBytes() {
		t.Fatalf("INT8 model %d B should be below FP32 %d B", q.QuantizedModelSizeBytes(), q.ModelSizeBytes())
	}
	g := synth.NewGenerator(42, synth.CrawlStyle())
	for i := 0; i < 16; i++ {
		f, _ := g.Sample()
		pf := fp.Classify(f)
		pq := q.Classify(f)
		if math.Abs(pf-pq) > 0.2 {
			t.Fatalf("frame %d: fp32 %.4f int8 %.4f", i, pf, pq)
		}
	}
	// batched path routes through the same engine
	batch := q.ClassifyBatch([]*imaging.Bitmap{frames[0], frames[1]})
	for i, f := range frames[:2] {
		if math.Abs(batch[i]-q.Classify(f)) > 1e-4 {
			t.Fatalf("batch[%d]=%v single=%v", i, batch[i], q.Classify(f))
		}
	}
}

// TestQuantizedModeRequiresCalibration checks the calibration-frame
// precondition fails loudly.
func TestQuantizedModeRequiresCalibration(t *testing.T) {
	cfg := squeezenet.SmallConfig(16)
	net, err := squeezenet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	if _, err := New(net, cfg, Options{Quantized: true}); err == nil {
		t.Fatal("quantized mode without calibration frames must fail")
	}
}

// TestQuantizedParityGateFallback checks an impossible parity bar falls back
// to FP32 instead of serving a model that failed its accuracy check.
func TestQuantizedParityGateFallback(t *testing.T) {
	p := testService(t, Options{Quantized: true, CalibFrames: calibFrames(8), ParityMinAgreement: 1.1})
	if p.QuantizedActive() {
		t.Fatal("unreachable parity bar must leave FP32 active")
	}
	if prob := p.Classify(adLike(t)); prob < 0 || prob > 1 {
		t.Fatalf("fallback service must still classify, got %v", prob)
	}
}

// TestQuantizedZeroAllocSteadyState checks the quantized Classify path keeps
// the zero-allocation property of the FP32 path.
func TestQuantizedZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := testService(t, Options{Quantized: true, CalibFrames: calibFrames(16), DisableCache: true})
	if !p.QuantizedActive() {
		t.Skipf("parity gate kept FP32 (agreement %.3f)", p.ParityAgreement())
	}
	f := adLike(t)
	p.Classify(f) // warm the pooled state
	allocs := testing.AllocsPerRun(10, func() { p.Classify(f) })
	// Classify draws state from a sync.Pool; allow the occasional pool miss.
	if allocs > 1 {
		t.Fatalf("steady-state quantized Classify allocates %v times per call", allocs)
	}
}
