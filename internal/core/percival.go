// Package core implements PERCIVAL, the paper's primary contribution: a
// deep-learning frame classifier embedded at the rendering pipeline's
// decode/raster choke point. It wraps the compressed SqueezeNet fork with
// the pre-processing the paper describes (§3.3: scale the decoded buffer to
// the network input, build a tensor, forward pass, clear the buffer on an
// ad verdict) and provides both deployment modes from §1:
//
//   - Synchronous: classification runs inside the raster task, adding its
//     latency to the rendering critical path (the Fig. 14/15 treatment).
//   - Asynchronous: the frame renders immediately while classification runs
//     in the background; verdicts are memoized by content hash, so the ad is
//     blocked on the next occurrence/visit (§6's "memorize ... and filter it
//     out on consecutive page visitations").
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/engine"
	"percival/internal/imaging"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/tensor"
)

// Mode selects how classification interacts with rendering.
type Mode int

// Deployment modes.
const (
	// Synchronous classifies in the raster task (blocks rendering).
	Synchronous Mode = iota
	// Asynchronous renders first, classifies in the background, and blocks
	// memoized ads on later sightings.
	Asynchronous
)

// Options configures a PERCIVAL instance.
type Options struct {
	// Threshold is the ad-probability above which a frame is blocked.
	// 0.5 reproduces argmax; raising it trades recall for precision.
	Threshold float64
	// Mode selects synchronous or asynchronous deployment.
	Mode Mode
	// CacheSize bounds the memoization cache (entries). 0 uses a default.
	CacheSize int
	// MinFrameEdge skips classification of tiny images (spacer gifs,
	// 1-px tracking pixels) that cannot be ads; 0 uses a default of 20.
	MinFrameEdge int
	// DisableCache turns memoization off, forcing a model run on every
	// sighting. Used by the performance evaluation, which measures the
	// paper's synchronous classify-every-image treatment.
	DisableCache bool
	// Quantized requests the INT8 inference engine. The model is quantized
	// at load time, calibrated on CalibFrames, and gated by an
	// accuracy-parity check against the FP32 path on the same frames
	// (restricted to frames FP32 classifies with some margin): if top-1
	// agreement falls below ParityMinAgreement the service silently stays
	// on FP32 (QuantizedActive reports the outcome).
	Quantized bool
	// CalibFrames are representative decoded frames used for quantization
	// calibration and the parity gate. Required when Quantized is set.
	CalibFrames []*imaging.Bitmap
	// ParityMinAgreement is the minimum FP32-vs-INT8 top-1 agreement for
	// the quantized engine to activate. 0 uses the default of 0.99.
	ParityMinAgreement float64
}

// Percival is the classifier service. One instance serves all raster
// workers: inference is stateless and goroutine-safe, matching the paper's
// per-worker parallelism (§3.1).
type Percival struct {
	net  *nn.Sequential
	cfg  squeezenet.Config
	opts Options

	// backends is the registry of named inference engines. "fp32" is always
	// registered; "int8" joins it when Options.Quantized was set, and becomes
	// the default only when the accuracy-parity gate passed — engine choice
	// is registry policy, not inline branching on the classify paths.
	backends *engine.Registry
	// active is the default backend every classify path routes through.
	active engine.Backend
	// parityAgreement records the measured FP32-vs-INT8 top-1 agreement when
	// quantization was requested (whether or not the gate passed).
	parityAgreement float64

	cache *verdictCache

	// single recycles the one-frame scratch (frames+scores slices) Classify
	// wraps around the batched backend entry point, keeping the single-frame
	// path zero-alloc; the warm per-goroutine inference state itself lives
	// inside each engine.Backend.
	single sync.Pool

	// async bookkeeping
	pending sync.WaitGroup

	// stats
	classified  atomic.Int64
	blocked     atomic.Int64
	cacheHits   atomic.Int64
	totalNanos  atomic.Int64
	inPathNanos atomic.Int64
}

// New builds a PERCIVAL service around a trained network.
func New(net *nn.Sequential, cfg squeezenet.Config, opts Options) (*Percival, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.5
	}
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, fmt.Errorf("core: threshold %v out of range (0,1)", opts.Threshold)
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.MinFrameEdge == 0 {
		opts.MinFrameEdge = 20
	}
	p := &Percival{
		net:      net,
		cfg:      cfg,
		opts:     opts,
		backends: engine.NewRegistry(),
		cache:    newVerdictCache(opts.CacheSize),
	}
	if err := p.backends.Register(engine.FP32Name, engine.NewFP32(net, cfg.InputRes)); err != nil {
		return nil, err
	}
	if opts.Quantized {
		if err := p.enableQuantized(); err != nil {
			return nil, err
		}
	}
	p.active = p.backends.Default()
	return p, nil
}

// enableQuantized quantizes the model on the calibration frames, registers
// the INT8 backend, and runs the accuracy-parity gate: INT8 becomes the
// registry default only if its top-1 verdicts agree with FP32 on at least
// ParityMinAgreement of the frames; otherwise it stays registered (callers
// may still select it by name) while FP32 keeps the default slot.
func (p *Percival) enableQuantized() error {
	if len(p.opts.CalibFrames) == 0 {
		return fmt.Errorf("core: quantized mode requires calibration frames")
	}
	minAgree := p.opts.ParityMinAgreement
	if minAgree == 0 {
		minAgree = 0.99
	}
	res := p.cfg.InputRes
	tensors := make([]*tensor.Tensor, len(p.opts.CalibFrames))
	for i, f := range p.opts.CalibFrames {
		tensors[i] = imaging.PrepareInput(f, res)
	}
	qnet, err := squeezenet.Quantize(p.net, p.cfg, tensors)
	if err != nil {
		return fmt.Errorf("core: quantize: %w", err)
	}
	int8be := engine.NewInt8(qnet, res)
	if err := p.backends.Register(engine.Int8Name, int8be); err != nil {
		return err
	}
	// Margin-filtered agreement on the service's own decision function:
	// verdicts are compared at the configured Threshold, and frames FP32
	// itself scores within parityMargin of that boundary are excluded —
	// they flip under any numeric perturbation and say nothing about
	// quantization fidelity. If every frame is borderline there is nothing
	// to distinguish and the engines are considered in parity.
	const parityMargin = 0.05
	fp32be := p.backends.Select(engine.FP32Name)
	fpScores := fp32be.InferBatchInto(p.opts.CalibFrames, make([]float64, len(p.opts.CalibFrames)))
	qScores := int8be.InferBatchInto(p.opts.CalibFrames, make([]float64, len(p.opts.CalibFrames)))
	agree, counted := 0, 0
	for i, fpScore := range fpScores {
		if math.Abs(fpScore-p.opts.Threshold) < parityMargin {
			continue
		}
		counted++
		if (fpScore >= p.opts.Threshold) == (qScores[i] >= p.opts.Threshold) {
			agree++
		}
	}
	if counted == 0 {
		p.parityAgreement = 1
	} else {
		p.parityAgreement = float64(agree) / float64(counted)
	}
	if p.parityAgreement >= minAgree {
		if err := p.backends.SetDefault(engine.Int8Name); err != nil {
			return err
		}
	}
	return nil
}

// QuantizedActive reports whether inference runs on the INT8 engine (the
// parity gate passed and made it the default backend).
func (p *Percival) QuantizedActive() bool {
	return p.backends.DefaultName() == engine.Int8Name
}

// ParityAgreement returns the measured FP32-vs-INT8 top-1 agreement on the
// calibration frames (0 when quantization was not requested).
func (p *Percival) ParityAgreement() float64 { return p.parityAgreement }

// QuantizedModelSizeBytes returns the INT8 weight footprint, or 0 when the
// quantized engine is inactive.
func (p *Percival) QuantizedModelSizeBytes() int {
	if !p.QuantizedActive() {
		return 0
	}
	if b, ok := p.backends.Get(engine.Int8Name); ok {
		return b.(*engine.Int8Backend).SizeBytes()
	}
	return 0
}

// Engine returns the active (default) inference backend — the seam serve
// dispatch replicates per shard.
func (p *Percival) Engine() engine.Backend { return p.active }

// Backends exposes the named-backend registry for selection policy
// (serving flags, multi-model routing).
func (p *Percival) Backends() *engine.Registry { return p.backends }

// singleScratch is the pooled one-frame view Classify wraps around the
// batched backend entry point.
type singleScratch struct {
	frames [1]*imaging.Bitmap
	out    [1]float64
}

func (p *Percival) getSingle() *singleScratch {
	if sc, ok := p.single.Get().(*singleScratch); ok {
		return sc
	}
	return &singleScratch{}
}

// Classify runs the active backend on a decoded frame and returns the ad
// probability. Safe for concurrent use; steady-state calls allocate nothing
// (the backend's warm per-goroutine arena state plus a pooled one-frame
// scratch).
func (p *Percival) Classify(frame *imaging.Bitmap) float64 {
	start := time.Now()
	sc := p.getSingle()
	sc.frames[0] = frame
	p.active.InferBatchInto(sc.frames[:1], sc.out[:1])
	score := sc.out[0]
	sc.frames[0] = nil
	p.single.Put(sc)
	p.classified.Add(1)
	p.totalNanos.Add(time.Since(start).Nanoseconds())
	return score
}

// ClassifyBatch scores a set of frames in chunked batched forward passes
// through the active backend.
func (p *Percival) ClassifyBatch(frames []*imaging.Bitmap) []float64 {
	if len(frames) == 0 {
		return nil
	}
	return p.ClassifyBatchInto(frames, make([]float64, len(frames)))
}

// ClassifyBatchInto is ClassifyBatch writing scores into a caller-provided
// slice (len(out) >= len(frames)), so steady-state batched callers allocate
// nothing. Chunking (16 frames per forward pass) lives in the backend.
// Returns out[:len(frames)].
func (p *Percival) ClassifyBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	if len(frames) == 0 {
		return out[:0]
	}
	start := time.Now()
	out = p.active.InferBatchInto(frames, out)
	p.classified.Add(int64(len(frames)))
	p.totalNanos.Add(time.Since(start).Nanoseconds())
	return out
}

// IsAd applies the decision threshold to a frame.
func (p *Percival) IsAd(frame *imaging.Bitmap) bool {
	return p.Classify(frame) >= p.opts.Threshold
}

// IsAdBatch applies the decision threshold to a batch scored via
// ClassifyBatch (chunked forward passes over a warm arena) — the batched
// counterpart of IsAd, sharing its verdict rule.
func (p *Percival) IsAdBatch(frames []*imaging.Bitmap) []bool {
	scores := p.ClassifyBatch(frames)
	verdicts := make([]bool, len(scores))
	for i, s := range scores {
		verdicts[i] = s >= p.opts.Threshold
	}
	return verdicts
}

// InspectFrame implements raster.FrameInspector — PERCIVAL's attachment
// point in the rendering pipeline. Behaviour depends on the mode:
//
// Synchronous: classify now; return the verdict (blocking the frame before
// it is drawn).
//
// Asynchronous: consult the memoization cache; on a hit return the cached
// verdict instantly, otherwise let the frame render and classify in the
// background so the verdict is available for the next sighting.
func (p *Percival) InspectFrame(src string, frame *imaging.Bitmap) bool {
	start := time.Now()
	defer func() { p.inPathNanos.Add(time.Since(start).Nanoseconds()) }()
	if frame.W < p.opts.MinFrameEdge || frame.H < p.opts.MinFrameEdge {
		return false
	}
	if p.opts.DisableCache {
		verdict := p.IsAd(frame)
		if verdict {
			p.blocked.Add(1)
		}
		return verdict
	}
	key := imaging.ContentHash(frame)
	if verdict, ok := p.cache.get(key); ok {
		p.cacheHits.Add(1)
		if verdict {
			p.blocked.Add(1)
		}
		return verdict
	}
	switch p.opts.Mode {
	case Synchronous:
		verdict := p.IsAd(frame)
		p.cache.put(key, verdict)
		if verdict {
			p.blocked.Add(1)
		}
		return verdict
	default: // Asynchronous
		snapshot := frame.Clone() // the raster task may clear/draw the buffer
		p.pending.Add(1)
		go func() {
			defer p.pending.Done()
			p.cache.put(key, p.IsAd(snapshot))
		}()
		return false
	}
}

// Drain waits for in-flight asynchronous classifications; after Drain, all
// verdicts are memoized. (In the browser this corresponds to idle time
// between page visits.)
func (p *Percival) Drain() { p.pending.Wait() }

// Stats reports service counters.
type Stats struct {
	Classified int64
	Blocked    int64
	CacheHits  int64
	// AvgClassifyMS is the mean model latency per classified frame.
	AvgClassifyMS float64
	// InPathMS is the cumulative time spent inside InspectFrame — the
	// rendering critical path. In asynchronous mode this excludes background
	// classification, which is the mode's whole point.
	InPathMS float64
}

// Stats returns a snapshot of the service counters.
func (p *Percival) Stats() Stats {
	n := p.classified.Load()
	s := Stats{
		Classified: n,
		Blocked:    p.blocked.Load(),
		CacheHits:  p.cacheHits.Load(),
		InPathMS:   float64(p.inPathNanos.Load()) / 1e6,
	}
	if n > 0 {
		s.AvgClassifyMS = float64(p.totalNanos.Load()) / float64(n) / 1e6
	}
	return s
}

// ModelSizeBytes returns the float32 weight footprint of the wrapped model.
func (p *Percival) ModelSizeBytes() int { return nn.SizeBytes(p.net) }

// InputRes returns the network input resolution.
func (p *Percival) InputRes() int { return p.cfg.InputRes }

// Threshold returns the active decision threshold.
func (p *Percival) Threshold() float64 { return p.opts.Threshold }

// verdictCache is a bounded FIFO-evicting map from content hash to verdict.
// (True LRU order is unnecessary: creatives repeat within short windows.)
type verdictCache struct {
	mu    sync.Mutex
	max   int
	m     map[[32]byte]bool
	order [][32]byte
	next  int
}

func newVerdictCache(max int) *verdictCache {
	if max < 0 {
		// Non-positive capacity means "no memoization": the cache stays
		// usable (get always misses, put is a no-op) instead of panicking on
		// the ring index.
		max = 0
	}
	return &verdictCache{max: max, m: make(map[[32]byte]bool, max)}
}

func (c *verdictCache) get(k [32]byte) (bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *verdictCache) put(k [32]byte, v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return // capacity 0: memoization disabled, nothing to evict into
	}
	if _, exists := c.m[k]; exists {
		c.m[k] = v
		return
	}
	if len(c.m) >= c.max {
		// evict the oldest inserted key (ring over insertion order)
		old := c.order[c.next%len(c.order)]
		delete(c.m, old)
		c.order[c.next%len(c.order)] = k
		c.next++
	} else {
		c.order = append(c.order, k)
	}
	c.m[k] = v
}

// Len reports the number of memoized verdicts (for tests).
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Gradient exposes dScore/dInput for salience mapping (Grad-CAM). It runs a
// training-mode forward/backward pass, so it must not run concurrently with
// other training-mode calls.
func (p *Percival) Gradient(frame *imaging.Bitmap) *tensor.Tensor {
	x := imaging.PrepareInput(frame, p.cfg.InputRes)
	logits := p.net.Forward(x, true)
	dl := tensor.New(logits.Shape...)
	dl.Data[1] = 1 // d(ad logit)
	return p.net.Backward(dl)
}
