package core

import (
	"crypto/sha256"
	"encoding/binary"
	"image/color"
	"runtime"
	"sync"
	"testing"

	"percival/internal/dataset"
	"percival/internal/engine"
	"percival/internal/imaging"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

// testService builds a PERCIVAL around an untrained (but initialized)
// small network; verdict correctness is covered by integration tests, these
// tests exercise the service mechanics.
func testService(t *testing.T, opts Options) *Percival {
	t.Helper()
	cfg := squeezenet.SmallConfig(16)
	net, err := squeezenet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	p, err := New(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func adLike(t *testing.T) *imaging.Bitmap {
	t.Helper()
	g := synth.NewGenerator(7, synth.CrawlStyle())
	return g.Ad()
}

func TestNewValidation(t *testing.T) {
	cfg := squeezenet.SmallConfig(16)
	net, _ := squeezenet.Build(cfg)
	if _, err := New(nil, cfg, Options{}); err == nil {
		t.Fatal("nil net must fail")
	}
	if _, err := New(net, cfg, Options{Threshold: 1.5}); err == nil {
		t.Fatal("threshold out of range must fail")
	}
	p, err := New(net, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Threshold() != 0.5 {
		t.Fatalf("default threshold %v", p.Threshold())
	}
}

func TestClassifyReturnsProbability(t *testing.T) {
	p := testService(t, Options{})
	prob := p.Classify(adLike(t))
	if prob < 0 || prob > 1 {
		t.Fatalf("probability %v", prob)
	}
	s := p.Stats()
	if s.Classified != 1 || s.AvgClassifyMS <= 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClassifyBatchMatchesSingle(t *testing.T) {
	p := testService(t, Options{})
	g := synth.NewGenerator(3, synth.CrawlStyle())
	frames := []*imaging.Bitmap{g.Ad(), g.NonAd(), g.Ad()}
	batch := p.ClassifyBatch(frames)
	for i, f := range frames {
		single := p.Classify(f)
		if diff := batch[i] - single; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("frame %d: batch %v single %v", i, batch[i], single)
		}
	}
	if p.ClassifyBatch(nil) != nil {
		t.Fatal("empty batch should be nil")
	}
}

func TestSynchronousInspectBlocksAndMemoizes(t *testing.T) {
	p := testService(t, Options{Mode: Synchronous})
	frame := adLike(t)
	verdict1 := p.InspectFrame("http://x/a.png", frame.Clone())
	hits0 := p.Stats().CacheHits
	verdict2 := p.InspectFrame("http://y/b.png", frame.Clone()) // same pixels, new URL
	if verdict1 != verdict2 {
		t.Fatal("same content must get same verdict")
	}
	if p.Stats().CacheHits != hits0+1 {
		t.Fatal("second sighting should hit the content-hash cache")
	}
	if p.Stats().Classified != 1 {
		t.Fatalf("classified %d, want 1 (memoized)", p.Stats().Classified)
	}
}

func TestAsynchronousModeRendersFirstBlocksLater(t *testing.T) {
	p := testService(t, Options{Mode: Asynchronous})
	frame := adLike(t)
	// first sighting always renders (returns false) in async mode
	if p.InspectFrame("http://x/a.png", frame.Clone()) {
		t.Fatal("async first sighting must not block")
	}
	p.Drain()
	// second sighting uses the memoized verdict, whatever it is
	verdict := p.InspectFrame("http://x/a.png", frame.Clone())
	want := p.Classify(frame) >= p.Threshold()
	if verdict != want {
		t.Fatalf("memoized verdict %v, classifier says %v", verdict, want)
	}
	if p.Stats().CacheHits != 1 {
		t.Fatalf("cache hits %d", p.Stats().CacheHits)
	}
}

func TestTinyFramesSkipped(t *testing.T) {
	p := testService(t, Options{Mode: Synchronous})
	pixel := imaging.NewBitmap(1, 1)
	if p.InspectFrame("http://t/pixel.gif", pixel) {
		t.Fatal("tracking pixel blocked")
	}
	if p.Stats().Classified != 0 {
		t.Fatal("tiny frame should not be classified")
	}
}

func TestInspectFrameConcurrentSafety(t *testing.T) {
	p := testService(t, Options{Mode: Synchronous})
	g := synth.NewGenerator(5, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, 8)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p.InspectFrame("src", frames[(w+i)%len(frames)].Clone())
			}
		}(w)
	}
	wg.Wait()
	// Concurrent first sightings of the same content may classify more than
	// once (the raster layer, not core, provides per-resource singleflight),
	// but once the cache is warm no further model work happens.
	warm := p.Stats().Classified
	if warm > 80 {
		t.Fatalf("classified %d of 80 inspections — memoization ineffective", warm)
	}
	for _, f := range frames {
		p.InspectFrame("src", f.Clone())
	}
	if p.Stats().Classified != warm {
		t.Fatal("warm cache should serve all repeat sightings")
	}
}

func TestVerdictCacheEviction(t *testing.T) {
	c := newVerdictCache(3)
	key := func(i int) [32]byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		return sha256.Sum256(b[:])
	}
	for i := 0; i < 5; i++ {
		c.put(key(i), i%2 == 0)
	}
	if c.len() != 3 {
		t.Fatalf("cache len %d, want 3", c.len())
	}
	// oldest (0, 1) evicted; 2, 3, 4 remain
	if _, ok := c.get(key(0)); ok {
		t.Fatal("key 0 should be evicted")
	}
	if v, ok := c.get(key(4)); !ok || !v { // 4 was stored with verdict true
		t.Fatalf("key 4: %v %v", v, ok)
	}
	// overwrite existing key keeps size
	c.put(key(4), false)
	if v, _ := c.get(key(4)); v {
		t.Fatal("overwrite failed")
	}
	if c.len() != 3 {
		t.Fatal("overwrite changed size")
	}
}

func TestModelSizeUnder2MB(t *testing.T) {
	cfg := squeezenet.PaperConfig()
	net, err := squeezenet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelSizeBytes() >= 2<<20 {
		t.Fatalf("model %d bytes, paper requires <2MB", p.ModelSizeBytes())
	}
	if p.InputRes() != 224 {
		t.Fatalf("input res %d", p.InputRes())
	}
}

func TestGradientShapeMatchesInput(t *testing.T) {
	p := testService(t, Options{})
	grad := p.Gradient(adLike(t))
	if grad.Shape[1] != 4 || grad.Shape[2] != 16 || grad.Shape[3] != 16 {
		t.Fatalf("gradient shape %v", grad.Shape)
	}
	nonZero := false
	for _, v := range grad.Data {
		if v != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("gradient all zero")
	}
}

// TestTrainedServiceSeparatesClasses is the package's end-to-end check: a
// quickly-trained model must block generated ads and pass generated content
// well above chance.
func TestTrainedServiceSeparatesClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	arch := squeezenet.SmallConfig(32)
	train := dataset.Generate(42, synth.CrawlStyle(), 360)
	// 6 epochs, not 5: at 5 this recipe is still mid-descent and the final
	// accuracy swings ±0.1 with the FP32 kernel tier's rounding (the AVX-512
	// 8×32 tile folds edge tiles differently than the 6×16 tile); one more
	// epoch converges to ~0.90 under every tier.
	cfg := dataset.FastTraining(arch, 6)
	net, err := dataset.Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, arch, Options{Mode: Synchronous})
	if err != nil {
		t.Fatal(err)
	}
	g := synth.NewGenerator(77, synth.CrawlStyle())
	correct, total := 0, 120
	for i := 0; i < total; i++ {
		img, label := g.Sample()
		if p.IsAd(img) == (label == dataset.Ad) {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("trained service accuracy %v < 0.8", acc)
	}
}

func TestBlockedFrameClearedByRaster(t *testing.T) {
	// document the §3.3 contract: core flags, raster clears
	b := imaging.NewBitmap(4, 4)
	b.Fill(color.RGBA{1, 2, 3, 255})
	b.Clear()
	if !b.IsCleared() {
		t.Fatal("clear failed")
	}
}

// TestClassifyZeroAllocSteadyState verifies the warm-arena classify path:
// after the first frame builds the arena, classification allocates nothing
// (GOMAXPROCS pinned to 1 so the GEMM fan-out stays inline; multi-core runs
// add only the worker-pool's per-call scheduling allocations).
func TestClassifyZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	p := testService(t, Options{})
	frame := adLike(t)
	p.Classify(frame) // warm the arena and scaled-frame buffer
	allocs := testing.AllocsPerRun(10, func() { p.Classify(frame) })
	if allocs != 0 {
		t.Fatalf("steady-state Classify allocates %v times per frame, want 0", allocs)
	}
}

// TestClassifyConcurrentConsistent hammers Classify from many goroutines
// (each checks out its own pooled inference state) and checks every score
// matches the serial result; run under -race to verify the state pooling.
func TestClassifyConcurrentConsistent(t *testing.T) {
	p := testService(t, Options{})
	frame := adLike(t)
	want := p.Classify(frame)
	var wg sync.WaitGroup
	errs := make(chan float64, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if got := p.Classify(frame); got != want {
					errs <- got
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if got, bad := <-errs; bad {
		t.Fatalf("concurrent Classify returned %v, serial %v", got, want)
	}
}

// TestClassifyBatchChunking checks batches larger than the internal chunk
// size (16) still score every frame identically to single-frame classify.
func TestClassifyBatchChunking(t *testing.T) {
	p := testService(t, Options{})
	g := synth.NewGenerator(9, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, 2*engine.BatchChunk+3)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	batch := p.ClassifyBatch(frames)
	if len(batch) != len(frames) {
		t.Fatalf("got %d scores for %d frames", len(batch), len(frames))
	}
	for _, i := range []int{0, engine.BatchChunk - 1, engine.BatchChunk, len(frames) - 1} {
		single := p.Classify(frames[i])
		if diff := batch[i] - single; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("frame %d: batch %v single %v", i, batch[i], single)
		}
	}
}

// TestVerdictCacheZeroAndNegativeCapacity pins the fix for the mod-by-zero
// panic: a cache constructed with max <= 0 must behave as "memoization
// disabled" (put is a no-op, get always misses) instead of dividing by the
// empty ring length on the first eviction.
func TestVerdictCacheZeroAndNegativeCapacity(t *testing.T) {
	key := func(i int) [32]byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		return sha256.Sum256(b[:])
	}
	for _, max := range []int{0, -1, -4096} {
		c := newVerdictCache(max)
		for i := 0; i < 4; i++ {
			c.put(key(i), true) // must not panic
		}
		if c.len() != 0 {
			t.Fatalf("max=%d: cache stored %d entries, want 0", max, c.len())
		}
		if _, ok := c.get(key(0)); ok {
			t.Fatalf("max=%d: get hit on a disabled cache", max)
		}
	}
}

// TestVerdictCacheFIFOOrderDeterministic drives the ring through several
// wrap-arounds and checks that eviction is exactly insertion-ordered: after
// inserting keys 0..n-1 into a cache of capacity c, precisely the last c
// keys remain, for every prefix length.
func TestVerdictCacheFIFOOrderDeterministic(t *testing.T) {
	const capacity = 4
	key := func(i int) [32]byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		return sha256.Sum256(b[:])
	}
	c := newVerdictCache(capacity)
	for i := 0; i < 3*capacity+1; i++ {
		c.put(key(i), i%2 == 0)
		oldest := i + 1 - capacity
		if oldest < 0 {
			oldest = 0
		}
		for j := 0; j <= i; j++ {
			v, ok := c.get(key(j))
			if j < oldest {
				if ok {
					t.Fatalf("after %d inserts: key %d should be FIFO-evicted", i+1, j)
				}
				continue
			}
			if !ok {
				t.Fatalf("after %d inserts: key %d missing (oldest live %d)", i+1, j, oldest)
			}
			if v != (j%2 == 0) {
				t.Fatalf("key %d verdict corrupted", j)
			}
		}
	}
}

// TestClassifyBatchIntoReusesCallerSlice checks the zero-alloc batched entry
// point used by the serve dispatch workers: scores land in the provided
// slice and match ClassifyBatch.
func TestClassifyBatchIntoReusesCallerSlice(t *testing.T) {
	p := testService(t, Options{DisableCache: true})
	g := synth.NewGenerator(41, synth.CrawlStyle())
	frames := make([]*imaging.Bitmap, 5)
	for i := range frames {
		frames[i], _ = g.Sample()
	}
	out := make([]float64, 8)
	got := p.ClassifyBatchInto(frames, out)
	if len(got) != len(frames) {
		t.Fatalf("got %d scores, want %d", len(got), len(frames))
	}
	if &got[0] != &out[0] {
		t.Fatal("ClassifyBatchInto must write into the caller's slice")
	}
	want := p.ClassifyBatch(frames)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d: into=%v batch=%v", i, got[i], want[i])
		}
	}
	if n := p.ClassifyBatchInto(nil, out); len(n) != 0 {
		t.Fatal("empty batch must return an empty slice")
	}
}
