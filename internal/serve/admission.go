package serve

// AdmissionController is the unified per-shard overload controller: one
// component that co-adapts the three levers the serving edge has — linger
// (how long a coalescer holds an underfull batch), batch cap (how much work
// one dispatch bites off), and admission itself (whether a new leader
// request may enter the bounded queue at all) — from one smoothed pressure
// signal, instead of three mechanisms each reading its own tea leaves.
//
// Pressure folds the signals the stack already produces into one EWMA in
// [0, ~1.25]:
//
//   - queue occupancy: every leader admission observes len(queue)/cap —
//     the direct "are we keeping up" signal;
//   - dispatch wait: every dispatched batch observes the oldest member's
//     pre-dispatch wait over the shed deadline — catches worker saturation
//     while queues still look shallow;
//   - remote congestion: when the backend gates peers with CUBIC windows
//     (engine.WindowReporter), mean in-flight/cwnd saturation is sampled —
//     catches a congested fleet before the local queue backs up.
//
// The pressure drives a graded brownout ladder with hysteresis, replacing
// the old binary deadline shed:
//
//   stage 0 normal     — blocking admission (bounded by the shed deadline),
//                        adaptive linger, full batch cap;
//   stage 1 cache-only — over-budget requests get cache/coalesce service
//                        only: admission stops blocking, a full queue sheds
//                        immediately instead of queueing doomed work;
//   stage 2 degraded   — batch cap and shed deadline halve and linger drops
//                        to the floor: smaller bites, tighter deadlines,
//                        no waiting for fill;
//   stage 3 shed       — new leader work is shed at the edge; cache and
//                        coalesce hits are still answered (repeats are the
//                        common case — the cache IS the brownout capacity).
//
// Transitions move one stage at a time: escalate after pressure has held
// above EnterPressure for EnterHold, release after it has held below
// ExitPressure for ExitHold. The gap between the two thresholds plus the
// hold times is the hysteresis that keeps the ladder from flapping on a
// bursty boundary load.
//
// The controller is a Policy: the linger decision delegates to the wrapped
// inner policy (the AIMD adaptive linger by default), demoted from
// standalone authority to one input of the controller.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/engine"
	"percival/internal/metrics"
)

// BrownoutStage is the admission controller's position on the overload
// ladder.
type BrownoutStage int32

// Ladder stages, mildest first.
const (
	BrownoutNormal    BrownoutStage = iota // full service
	BrownoutCacheOnly                      // over-budget requests: cache/coalesce only
	BrownoutDegraded                       // halved batch cap, tightened deadline, floor linger
	BrownoutShed                           // new leader work shed at the edge
)

// String names the stage for /healthz and logs.
func (st BrownoutStage) String() string {
	switch st {
	case BrownoutNormal:
		return "normal"
	case BrownoutCacheOnly:
		return "cache-only"
	case BrownoutDegraded:
		return "degraded"
	case BrownoutShed:
		return "shed"
	}
	return fmt.Sprintf("stage(%d)", int32(st))
}

// Admission defaults; see AdmissionOptions.
const (
	admDefaultEnter     = 0.75
	admDefaultExit      = 0.35
	admDefaultEnterHold = 100 * time.Millisecond
	admDefaultExitHold  = 300 * time.Millisecond
	admDefaultAlpha     = 0.1
	admDefaultWinPeriod = 25 * time.Millisecond
	// admDefaultWaitNorm normalizes dispatch waits into pressure when no
	// shed deadline is configured.
	admDefaultWaitNorm = 100 * time.Millisecond
	// admWindowWeight discounts the remote-saturation signal: a pipeline
	// briefly running at its window is normal; only sustained saturation
	// should push past EnterPressure.
	admWindowWeight = 0.9
)

// AdmissionOptions tunes an AdmissionController. The zero value gets
// defaults from NewAdmissionController.
type AdmissionOptions struct {
	// Linger is the wrapped linger policy (default: NewAIMDPolicy()). An
	// *AIMDPolicy with no Hist is wired to the service's latency histogram
	// by serve.New, exactly as when used standalone.
	Linger Policy
	// EnterPressure / ExitPressure bound the hysteresis band (defaults
	// 0.75 / 0.35): escalate above the first, release below the second.
	EnterPressure float64
	ExitPressure  float64
	// EnterHold / ExitHold are how long pressure must sit past a threshold
	// before the ladder moves one stage (defaults 100ms / 300ms — brownout
	// engages faster than it releases).
	EnterHold time.Duration
	ExitHold  time.Duration
	// Alpha is the pressure EWMA smoothing factor (default 0.1).
	Alpha float64
	// Windows feeds remote congestion-window saturation into the pressure
	// signal. serve.New wires the service backend automatically when it
	// reports windows (fleet or remote) and this is nil.
	Windows engine.WindowReporter
	// WindowPeriod rate-limits Windows sampling (default 25ms).
	WindowPeriod time.Duration
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.Linger == nil {
		o.Linger = NewAIMDPolicy()
	}
	if o.EnterPressure <= 0 {
		o.EnterPressure = admDefaultEnter
	}
	if o.ExitPressure <= 0 {
		o.ExitPressure = admDefaultExit
	}
	if o.ExitPressure > o.EnterPressure {
		o.ExitPressure = o.EnterPressure
	}
	if o.EnterHold <= 0 {
		o.EnterHold = admDefaultEnterHold
	}
	if o.ExitHold <= 0 {
		o.ExitHold = admDefaultExitHold
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = admDefaultAlpha
	}
	if o.WindowPeriod <= 0 {
		o.WindowPeriod = admDefaultWinPeriod
	}
	return o
}

// AdmissionController is the unified overload controller (see the package
// comment above the type set). Safe for concurrent use from every shard's
// submitters, coalescers, and workers.
type AdmissionController struct {
	opts  AdmissionOptions
	inner Policy

	stage    atomic.Int32
	pressure atomic.Uint64 // math.Float64bits of the EWMA
	deadline atomic.Int64  // configured shed deadline, ns (wait normalizer)

	// ladder/bookkeeping state, TryLock'd from the hot path: a submission
	// that loses the race simply leaves the evaluation to the winner.
	mu      sync.Mutex
	above   time.Time // since when pressure has sat above EnterPressure
	below   time.Time // since when pressure has sat below ExitPressure
	lastWin time.Time // last Windows sample
	winSat  float64   // last sampled mean in-flight/cwnd over peers

	transitions metrics.Counter // ladder moves, either direction
	admSheds    metrics.Counter // requests shed by the ladder at admission

	now func() time.Time // test clock hook
}

// NewAdmissionController builds a controller at stage 0.
func NewAdmissionController(opts AdmissionOptions) *AdmissionController {
	opts = opts.withDefaults()
	return &AdmissionController{
		opts:  opts,
		inner: opts.Linger,
		now:   time.Now,
	}
}

// Inner returns the wrapped linger policy.
func (c *AdmissionController) Inner() Policy { return c.inner }

// Stage returns the ladder's current stage.
func (c *AdmissionController) Stage() BrownoutStage {
	return BrownoutStage(c.stage.Load())
}

// Pressure returns the smoothed pressure signal.
func (c *AdmissionController) Pressure() float64 {
	return math.Float64frombits(c.pressure.Load())
}

// Transitions reports ladder moves in either direction.
func (c *AdmissionController) Transitions() int64 { return c.transitions.Load() }

// AdmissionSheds reports requests the ladder shed at admission (stage >= 1
// queue-full rejections and stage-3 edge sheds) — dispatch-time deadline
// sheds are not included.
func (c *AdmissionController) AdmissionSheds() int64 { return c.admSheds.Load() }

// setDeadline publishes the configured shed deadline as the dispatch-wait
// normalizer (serve.New calls this; a zero deadline falls back to
// admDefaultWaitNorm).
func (c *AdmissionController) setDeadline(d time.Duration) { c.deadline.Store(int64(d)) }

func (c *AdmissionController) waitNorm() time.Duration {
	if d := time.Duration(c.deadline.Load()); d > 0 {
		return d
	}
	return admDefaultWaitNorm
}

// observe folds one pressure sample into the EWMA (CAS loop: the hot path
// never blocks on a lock for this).
func (c *AdmissionController) observe(x float64) {
	for {
		old := c.pressure.Load()
		p := math.Float64frombits(old)
		p += c.opts.Alpha * (x - p)
		if c.pressure.CompareAndSwap(old, math.Float64bits(p)) {
			return
		}
	}
}

// AdmitQueue is called once per leader admission with the shard queue's
// occupancy. It feeds the pressure signal, advances the ladder, and returns
// the stage the submission must obey.
func (c *AdmissionController) AdmitQueue(qlen, qcap int) BrownoutStage {
	x := 0.0
	if qcap > 0 {
		x = float64(qlen) / float64(qcap)
	}
	if c.opts.Windows != nil {
		if sat := c.sampleWindows(); sat*admWindowWeight > x {
			x = sat * admWindowWeight
		}
	}
	c.observe(x)
	c.evaluate(c.now())
	return c.Stage()
}

// sampleWindows refreshes the remote-saturation reading at most once per
// WindowPeriod and returns the latest value: the mean, over peers, of
// in-flight depth against the congestion window. A fleet pinned at its
// windows is congested no matter how shallow the local queues are. The
// reporter's rows cover only peers that can take traffic (the fleet
// excludes evicted and draining peers — see Fleet.WindowStats), so a
// mid-drain topology change neither dilutes the mean with a quiescing
// window nor spikes it with a collapsed one; an empty row set (no routable
// peer, dispatch on the local fallback) reads as zero remote saturation.
func (c *AdmissionController) sampleWindows() float64 {
	now := c.now()
	if !c.mu.TryLock() {
		return 0 // a concurrent sampler owns the fresh value this instant
	}
	defer c.mu.Unlock()
	if now.Sub(c.lastWin) >= c.opts.WindowPeriod {
		c.lastWin = now
		stats := c.opts.Windows.WindowStats()
		sat := 0.0
		for _, st := range stats {
			limit := st.Cwnd
			if limit < 1 {
				limit = 1
			}
			f := float64(st.InFlight) / limit
			if f > 1 {
				f = 1
			}
			sat += f
		}
		if len(stats) > 0 {
			sat /= float64(len(stats))
		}
		c.winSat = sat
	}
	return c.winSat
}

// evaluate advances the hysteresis ladder: one stage per EnterHold above
// EnterPressure, one stage back per ExitHold below ExitPressure. TryLock —
// concurrent submissions race to evaluate and only one needs to win.
func (c *AdmissionController) evaluate(now time.Time) {
	if !c.mu.TryLock() {
		return
	}
	defer c.mu.Unlock()
	p := c.Pressure()
	st := c.stage.Load()
	switch {
	case p >= c.opts.EnterPressure:
		c.below = time.Time{}
		if c.above.IsZero() {
			c.above = now
		}
		if st < int32(BrownoutShed) && now.Sub(c.above) >= c.opts.EnterHold {
			c.stage.Store(st + 1)
			c.transitions.Inc()
			c.above = now // the next step needs its own sustained hold
		}
	case p <= c.opts.ExitPressure:
		c.above = time.Time{}
		if c.below.IsZero() {
			c.below = now
		}
		if st > int32(BrownoutNormal) && now.Sub(c.below) >= c.opts.ExitHold {
			c.stage.Store(st - 1)
			c.transitions.Inc()
			c.below = now
		}
	default:
		// inside the hysteresis band: hold the stage, restart both clocks
		c.above, c.below = time.Time{}, time.Time{}
	}
}

// Linger implements Policy: the inner policy's budget normally, the floor
// under degraded brownout — with queues this deep, batches fill on their
// own and holding them open is pure added latency.
func (c *AdmissionController) Linger() time.Duration {
	if c.Stage() >= BrownoutDegraded {
		if a, ok := c.inner.(*AIMDPolicy); ok {
			return a.minOr()
		}
		return aimdDefaultMin
	}
	return c.inner.Linger()
}

// ObserveBatch implements Policy: the batch feeds the inner linger policy
// and its dispatch wait (normalized by the shed deadline) feeds pressure —
// the signal that catches saturated workers behind shallow queues.
func (c *AdmissionController) ObserveBatch(fill, maxBatch int, wait time.Duration) {
	c.inner.ObserveBatch(fill, maxBatch, wait)
	x := float64(wait) / float64(c.waitNorm())
	if x > 1.25 {
		x = 1.25
	}
	c.observe(x)
}

// ObserveShed counts one ladder-driven admission shed. Deliberately not a
// pressure input: at stage 3 every leader sheds, and feeding those back in
// would pin the pressure high after the load is gone — the ladder could
// never release. Occupancy and dispatch waits are the ground truth.
func (c *AdmissionController) ObserveShed() { c.admSheds.Inc() }

// ObserveDispatchWait feeds one leader's queue age (sampled as it leaves
// the queue) into the pressure signal, normalized by the shed deadline. In
// a coalescing service the queue can stay structurally shallow — the leader
// population is bounded by the distinct-creative count — while every leader
// still ages toward the deadline; this per-pop sample is what reads
// saturation when occupancy cannot. Rate-matched with the per-admission
// occupancy samples, so neither signal drowns the other in the shared EWMA.
// Stage 3 sheds leaders at the edge, so no pops happen there and the signal
// naturally decays — the ladder can always release.
func (c *AdmissionController) ObserveDispatchWait(age time.Duration) {
	x := float64(age) / float64(c.waitNorm())
	if x > 1.25 {
		x = 1.25
	}
	c.observe(x)
}

// ObserveOverloadShed feeds one deadline-driven shed — a leader that aged
// out at the queue door or at dispatch — into the pressure signal at the
// saturation ceiling, weighted by the whole request mass it took down (the
// leader plus every follower coalesced behind it). Mass matters: in a
// coalescing service one stalled leader can carry hundreds of submissions,
// and counting it as a single sample lets the high-rate low-pressure
// admission samples drown the event. This is NOT the ladder's own shedding
// (ObserveShed): ladder sheds are the controller's output and feeding them
// back would pin the pressure at stage 3 forever; deadline sheds only
// happen when dispatch genuinely cannot keep up.
func (c *AdmissionController) ObserveOverloadShed(mass int) {
	if mass < 1 {
		mass = 1
	}
	// fold equivalent to mass consecutive observations of the ceiling
	const x = 1.25
	w := 1 - math.Pow(1-c.opts.Alpha, float64(mass))
	for {
		old := c.pressure.Load()
		p := math.Float64frombits(old)
		p += w * (x - p)
		if c.pressure.CompareAndSwap(old, math.Float64bits(p)) {
			return
		}
	}
}

// BatchCap is the stage-adjusted dispatch bite: the configured MaxBatch
// normally, half (floor 1) under degraded brownout.
func (c *AdmissionController) BatchCap(configured int) int {
	if c.Stage() >= BrownoutDegraded {
		if configured >= 2 {
			return configured / 2
		}
		return 1
	}
	return configured
}

// ShedDeadline is the stage-adjusted shed deadline: configured normally,
// halved under degraded brownout (0 stays 0 — disabled is disabled).
func (c *AdmissionController) ShedDeadline(configured time.Duration) time.Duration {
	if configured > 0 && c.Stage() >= BrownoutDegraded {
		return configured / 2
	}
	return configured
}

// Expose renders the controller's gauges in Prometheus text exposition
// format (the daemon's /metrics appends this when admission is on).
func (c *AdmissionController) Expose() string {
	return fmt.Sprintf("percival_serve_brownout_stage %d\n", c.Stage()) +
		fmt.Sprintf("percival_serve_admission_pressure %.4f\n", c.Pressure()) +
		metrics.ExposeCounter("percival_serve_brownout_transitions_total", &c.transitions) +
		metrics.ExposeCounter("percival_serve_admission_sheds_total", &c.admSheds)
}
