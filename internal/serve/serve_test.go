package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"percival/internal/core"
	"percival/internal/imaging"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

// testCore builds a PERCIVAL service around a deterministic untrained small
// network; serve tests exercise the batching mechanics, not verdict quality.
func testCore(t testing.TB, opts core.Options) *core.Percival {
	t.Helper()
	cfg := squeezenet.SmallConfig(16)
	net, err := squeezenet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	p, err := core.New(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testServer(t testing.TB, copts core.Options, sopts Options) *Server {
	t.Helper()
	s, err := New(testCore(t, copts), sopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidatesInputs(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil service must be rejected")
	}
	if _, err := New(testCore(t, core.Options{}), Options{MaxBatch: -1}); err == nil {
		t.Fatal("negative MaxBatch must be rejected")
	}
}

// TestSubmitMatchesSynchronousClassify is the correctness anchor: a frame
// scored through the batcher must get exactly the score the synchronous
// path produces (both run the same engine over the same warm state).
func TestSubmitMatchesSynchronousClassify(t *testing.T) {
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, f := range synth.SampleFrames(7, 12) {
		got := s.Submit(f)
		if got.Status == StatusShed {
			t.Fatalf("frame %d shed with no load", i)
		}
		want := svc.Classify(f)
		if math.Abs(got.Score-want) > 1e-6 {
			t.Fatalf("frame %d: serve score %v, sync score %v", i, got.Score, want)
		}
		if got.Ad != (want >= svc.Threshold()) {
			t.Fatalf("frame %d: verdict mismatch", i)
		}
	}
}

// TestConcurrentSubmitsCoalesceIntoBatches drives many goroutines through
// the service and checks every caller resolves with a consistent verdict
// while the model ran fewer forward passes than submissions.
func TestConcurrentSubmitsCoalesceIntoBatches(t *testing.T) {
	s := testServer(t, core.Options{}, Options{Workers: 2, MaxBatch: 8, Linger: time.Millisecond})
	frames := synth.SampleFrames(11, 16)
	const callers = 16
	scores := make([][]float64, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			scores[c] = make([]float64, len(frames))
			for i, f := range frames {
				r := s.Submit(f)
				if r.Status == StatusShed {
					t.Errorf("caller %d frame %d shed", c, i)
					return
				}
				scores[c][i] = r.Score
			}
		}(c)
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		for i := range frames {
			if scores[c][i] != scores[0][i] {
				t.Fatalf("caller %d frame %d: score %v != caller 0's %v", c, i, scores[c][i], scores[0][i])
			}
		}
	}
	m := s.Metrics()
	if m.Classified.Load() >= m.Submitted.Load() {
		t.Fatalf("no dedup: %d classified of %d submitted", m.Classified.Load(), m.Submitted.Load())
	}
	if m.CacheHits.Load()+m.Coalesced.Load() == 0 {
		t.Fatal("identical frames must hit the cache or coalesce in flight")
	}
	if m.Batches.Load() == 0 {
		t.Fatal("no batches dispatched")
	}
}

// TestCacheHitSkipsModel: a repeat submission must resolve from the sharded
// cache without another forward pass.
func TestCacheHitSkipsModel(t *testing.T) {
	s := testServer(t, core.Options{}, Options{Workers: 1})
	f := synth.SampleFrames(13, 1)[0]
	first := s.Submit(f)
	if first.Status != StatusClassified {
		t.Fatalf("first submission status %v", first.Status)
	}
	classified := s.Metrics().Classified.Load()
	second := s.Submit(f)
	if second.Status != StatusCached {
		t.Fatalf("repeat submission status %v, want cached", second.Status)
	}
	if second.Score != first.Score {
		t.Fatal("cached score differs")
	}
	if got := s.Metrics().Classified.Load(); got != classified {
		t.Fatalf("repeat submission ran the model (%d -> %d)", classified, got)
	}
	if s.CacheLen() == 0 {
		t.Fatal("cache empty after a classified frame")
	}
	s.ResetCache()
	if s.CacheLen() != 0 {
		t.Fatal("ResetCache left entries behind")
	}
}

// TestVerdictCacheView: the engine.VerdictCache view over the serving
// cache (LookupVerdict/StoreVerdict, keyed by imaging.ContentKey) must be
// the same store Submit memoizes into — that identity is what lets a wire
// peer answer a remote front's hash probe from verdicts the local serving
// edge already produced, and vice versa.
func TestVerdictCacheView(t *testing.T) {
	s := testServer(t, core.Options{}, Options{Workers: 1})
	f := synth.SampleFrames(29, 1)[0]
	if _, ok := s.LookupVerdict(imaging.ContentKey(f)); ok {
		t.Fatal("verdict visible before any classification")
	}
	r := s.Submit(f)
	v, ok := s.LookupVerdict(imaging.ContentKey(f))
	if !ok || v != r.Score {
		t.Fatalf("LookupVerdict (%v, %v) after Submit scored %v", v, ok, r.Score)
	}

	// a wire-stored verdict must serve later Submits as a cache hit
	g := synth.SampleFrames(31, 1)[0]
	s.StoreVerdict(imaging.ContentKey(g), 0.625)
	res := s.Submit(g)
	if res.Status != StatusCached || res.Score != 0.625 {
		t.Fatalf("Submit after StoreVerdict got %+v, want cached 0.625", res)
	}
}

// TestInflightCoalescingWithCacheDisabled: concurrent submissions of the
// same frame must share one model run even without memoization.
func TestInflightCoalescingWithCacheDisabled(t *testing.T) {
	s := testServer(t, core.Options{}, Options{
		Workers: 1, MaxBatch: 4, Linger: 20 * time.Millisecond, DisableCache: true,
	})
	f := synth.SampleFrames(17, 1)[0]
	const callers = 8
	var wg sync.WaitGroup
	results := make([]Result, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = s.Submit(f)
		}(c)
	}
	wg.Wait()
	coalesced := 0
	for c, r := range results {
		if r.Status == StatusShed {
			t.Fatalf("caller %d shed", c)
		}
		if r.Score != results[0].Score {
			t.Fatalf("caller %d score %v != %v", c, r.Score, results[0].Score)
		}
		if r.Status == StatusCoalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatal("no caller coalesced onto the in-flight duplicate")
	}
	if s.CacheLen() != 0 {
		t.Fatal("DisableCache must not memoize")
	}
}

// TestDeadlineLoadShedding: with a one-lane worker pinned by a slow batch
// and a tiny deadline, queued requests must resolve StatusShed (verdict
// unknown, fail open) rather than waiting forever.
func TestDeadlineLoadShedding(t *testing.T) {
	s := testServer(t, core.Options{}, Options{
		Workers: 1, MaxBatch: 1, Linger: time.Microsecond,
		QueueDepth: 64, Deadline: time.Nanosecond, DisableCache: true,
	})
	frames := synth.SampleFrames(19, 32)
	var wg sync.WaitGroup
	shed := make([]bool, len(frames))
	for i, f := range frames {
		wg.Add(1)
		go func(i int, f *imaging.Bitmap) {
			defer wg.Done()
			r := s.Submit(f)
			shed[i] = r.Status == StatusShed
			if r.Status == StatusShed && (r.Ad || r.Score != 0) {
				t.Error("shed result must fail open with zero score")
			}
		}(i, f)
	}
	wg.Wait()
	anyShed := false
	for _, v := range shed {
		anyShed = anyShed || v
	}
	if !anyShed {
		t.Fatal("nanosecond deadline shed nothing under a 32-deep burst")
	}
	if s.Metrics().Shed.Load() == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// TestSubmitAsyncOverlapsAndResolves: futures resolve to the same verdicts
// the blocking path produces, and Wait is idempotent.
func TestSubmitAsyncOverlapsAndResolves(t *testing.T) {
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := synth.SampleFrames(23, 10)
	futs := make([]*Future, len(frames))
	for i, f := range frames {
		futs[i] = s.SubmitAsync(f)
	}
	for i, fut := range futs {
		r1 := fut.Wait()
		if r1.Status == StatusShed {
			t.Fatalf("future %d shed with no load", i)
		}
		want := svc.Classify(frames[i])
		if math.Abs(r1.Score-want) > 1e-6 {
			t.Fatalf("future %d: %v != %v", i, r1.Score, want)
		}
		if r2 := fut.Wait(); r2 != r1 {
			t.Fatalf("future %d: second Wait returned %+v, first %+v", i, r2, r1)
		}
	}
	// a cache-hit future resolves immediately
	if r := s.SubmitAsync(frames[0]).Wait(); r.Status != StatusCached {
		t.Fatalf("repeat async status %v, want cached", r.Status)
	}
}

// TestFutureWaitConcurrent: Wait is documented safe to call repeatedly,
// which includes concurrently — resolution must be exclusive (the pooled
// request is released exactly once) and every caller must observe the same
// Result. Regression for a data race on the future's request/result fields;
// `make race` runs this under -race.
func TestFutureWaitConcurrent(t *testing.T) {
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Workers: 2, MaxBatch: 4, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := synth.SampleFrames(31, 8)
	const waiters = 4
	for round := 0; round < 32; round++ {
		fut := s.SubmitAsync(frames[round%len(frames)])
		var wg sync.WaitGroup
		results := make([]Result, waiters)
		for g := 0; g < waiters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = fut.Wait()
			}(g)
		}
		wg.Wait()
		for g := 1; g < waiters; g++ {
			if results[g] != results[0] {
				t.Fatalf("round %d: waiter %d saw %+v, waiter 0 saw %+v",
					round, g, results[g], results[0])
			}
		}
		if results[0].Status == StatusShed {
			t.Fatalf("round %d shed with no load", round)
		}
	}
}

// TestCloseDrainsAndSheds: Close resolves queued work, and submissions
// after Close shed instead of panicking.
func TestCloseDrainsAndSheds(t *testing.T) {
	s, err := New(testCore(t, core.Options{}), Options{Workers: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(29, 6)
	futs := make([]*Future, len(frames))
	for i, f := range frames {
		futs[i] = s.SubmitAsync(f)
	}
	s.Close()
	for i, fut := range futs {
		if r := fut.Wait(); r.Status == StatusShed {
			t.Fatalf("future %d shed by graceful close", i)
		}
	}
	if r := s.Submit(frames[0]); r.Status != StatusShed {
		t.Fatalf("post-close submit status %v, want shed", r.Status)
	}
	s.Close() // idempotent
}

// TestMetricsExposition sanity-checks the Prometheus rendering.
func TestMetricsExposition(t *testing.T) {
	s := testServer(t, core.Options{}, Options{Workers: 1})
	s.Submit(synth.SampleFrames(31, 1)[0])
	text := s.Metrics().Expose()
	for _, want := range []string{
		"percival_serve_submitted_total 1",
		"percival_serve_classified_total 1",
		"percival_serve_batches_total 1",
		"percival_serve_latency_ms_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestSteadyStateSubmitDoesNotAllocate is the zero-alloc gate for the
// batcher hot path: after warmup, Submit (hash, queue, batch, classify,
// resolve, cache insert — across all service goroutines) must not allocate.
func TestSteadyStateSubmitDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := testServer(t, core.Options{}, Options{Workers: 1, MaxBatch: 4, Linger: time.Microsecond})
	frames := synth.SampleFrames(37, 32)
	for _, f := range frames { // warm: request pool, batch slices, arenas, cache
		s.Submit(f)
	}
	s.ResetCache() // measure the full classify path, not the hit path
	i := 0
	allocs := testing.AllocsPerRun(len(frames)*4, func() {
		s.Submit(frames[i%len(frames)])
		i++
	})
	// AllocsPerRun counts mallocs process-wide, so GC-driven sync.Pool
	// evictions can leak fractional allocations into the run; steady state
	// must still average (well) under one allocation per submission.
	if allocs >= 1 {
		t.Fatalf("steady-state Submit allocates %.2f/op, want 0", allocs)
	}
}

// TestRaceStress is the -race stress test: many goroutines × many frames
// with a mixed duplicate-heavy workload, concurrent metrics reads, a cache
// reset mid-flight, and a graceful close racing the last submitters.
func TestRaceStress(t *testing.T) {
	s, err := New(testCore(t, core.Options{}), Options{
		Workers: 4, MaxBatch: 4, Linger: 200 * time.Microsecond,
		QueueDepth: 32, Deadline: time.Second, CacheSize: 64, CacheShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(41, 12)
	const goroutines = 16
	perG := 40
	if testing.Short() {
		perG = 10
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f := frames[(g*7+i)%len(frames)]
				if g%3 == 0 {
					fut := s.SubmitAsync(f)
					fut.Wait()
					fut.Wait()
				} else {
					s.Submit(f)
				}
				if i == perG/2 && g == 1 {
					s.ResetCache()
				}
				if i%16 == 0 {
					_ = s.Metrics().Expose()
					_ = s.CacheLen()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	m := s.Metrics()
	resolved := m.Classified.Load() + m.CacheHits.Load() + m.Coalesced.Load() + m.Shed.Load()
	if resolved != m.Submitted.Load() {
		t.Fatalf("accounting leak: %d resolved of %d submitted", resolved, m.Submitted.Load())
	}
}
