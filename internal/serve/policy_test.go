package serve

import (
	"testing"
	"time"

	"percival/internal/core"
	"percival/internal/metrics"
	"percival/internal/synth"
)

// TestAIMDConvergenceBounds pins the adaptive policy's convergence
// behaviour: the linger never leaves [Min, Max], sustained overload walks
// it down to Min, and sustained thin traffic walks it up to Max.
func TestAIMDConvergenceBounds(t *testing.T) {
	p := NewAIMDPolicy()
	if got := p.Linger(); got != p.Min {
		t.Fatalf("initial linger %v, want Min %v", got, p.Min)
	}

	// thin traffic: underfull timer batches with tiny waits → additive
	// climb to Max, never beyond
	for i := 0; i < 1000; i++ {
		p.ObserveBatch(2, 16, time.Millisecond)
		if l := p.Linger(); l < p.Min || l > p.Max {
			t.Fatalf("step %d: linger %v escaped [%v, %v]", i, l, p.Min, p.Max)
		}
	}
	if got := p.Linger(); got != p.Max {
		t.Fatalf("thin traffic converged to %v, want Max %v", got, p.Max)
	}
	// climb is additive: from Min it must take at least (Max-Min)/Step steps
	p2 := NewAIMDPolicy()
	steps := 0
	for p2.Linger() < p2.Max {
		p2.ObserveBatch(2, 16, 0)
		steps++
	}
	if minSteps := int((p2.Max - p2.Min) / p2.Step); steps < minSteps {
		t.Fatalf("climbed Min→Max in %d steps; additive increase needs ≥ %d", steps, minSteps)
	}

	// overload: waits past TargetWait → multiplicative collapse to Min,
	// and fast (halving: ~log2(Max/Min) steps, allow slack)
	steps = 0
	for p.Linger() > p.Min {
		p.ObserveBatch(16, 16, p.TargetWait+time.Millisecond)
		steps++
		if steps > 64 {
			t.Fatalf("overload did not converge to Min within 64 steps (at %v)", p.Linger())
		}
	}
	if steps > 10 {
		t.Fatalf("multiplicative decrease took %d steps for Max→Min", steps)
	}

	// full batches inside the wait budget leave the linger alone
	before := p.Linger()
	p.ObserveBatch(16, 16, time.Millisecond)
	if got := p.Linger(); got != before {
		t.Fatalf("healthy full batch moved linger %v → %v", before, got)
	}
}

// TestAIMDHistogramTailDecrease: a healthy-looking batch stream with an
// over-budget latency tail must pull the linger down via the periodic
// histogram check — and because the check is windowed (bucket deltas
// between checks, not the all-time distribution), the policy must recover
// once the tail clears instead of staying pinned at Min forever.
func TestAIMDHistogramTailDecrease(t *testing.T) {
	p := NewAIMDPolicy()
	p.Hist = metrics.NewHistogram(nil)
	// drive to Max with thin traffic first
	for i := 0; i < 100; i++ {
		p.ObserveBatch(2, 16, 0)
	}
	if p.Linger() != p.Max {
		t.Fatalf("setup: linger %v, want Max", p.Linger())
	}
	// latency tail far over the 10ms budget, then one check period of
	// individually healthy batches: the windowed p95 must flip tailOver
	// and start decreasing
	for i := 0; i < 1000; i++ {
		p.Hist.Observe(100)
	}
	for i := 0; i < aimdHistPeriod+1; i++ {
		p.ObserveBatch(2, 16, 0)
	}
	if got := p.Linger(); got >= p.Max {
		t.Fatalf("over-budget tail left linger at %v", got)
	}
	// the bad epoch is behind us: no new over-budget samples arrive, so
	// the next window is clean and the policy must climb back toward Max
	// (a cumulative quantile could never recover here)
	for i := 0; i < 3*aimdHistPeriod; i++ {
		p.Hist.Observe(0.5)
		p.ObserveBatch(2, 16, 0)
	}
	if got := p.Linger(); got != p.Max {
		t.Fatalf("policy did not recover after the tail cleared: linger %v, want Max %v", got, p.Max)
	}
}

// TestFixedPolicyIsConstant: the default policy ignores feedback.
func TestFixedPolicyIsConstant(t *testing.T) {
	p := FixedPolicy{D: 3 * time.Millisecond}
	p.ObserveBatch(1, 16, time.Hour)
	if got := p.Linger(); got != 3*time.Millisecond {
		t.Fatalf("fixed policy drifted to %v", got)
	}
}

// TestAdaptiveServerServes: a server running the AIMD policy end to end
// still produces correct verdicts and keeps the policy within bounds.
func TestAdaptiveServerServes(t *testing.T) {
	pol := NewAIMDPolicy()
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Shards: 2, Workers: 2, MaxBatch: 4, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if pol.Hist == nil {
		t.Fatal("serve.New must wire the latency histogram into the policy")
	}
	frames := synth.SampleFrames(71, 24)
	for i, f := range frames {
		r := s.Submit(f)
		if r.Status == StatusShed {
			t.Fatalf("frame %d shed with no load", i)
		}
		if want := svc.Classify(f); r.Score != want {
			t.Fatalf("frame %d: adaptive score %v, sync %v", i, r.Score, want)
		}
	}
	if l := pol.Linger(); l < pol.Min || l > pol.Max {
		t.Fatalf("policy escaped bounds: %v", l)
	}
}
