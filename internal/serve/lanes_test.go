package serve

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"percival/internal/core"
	"percival/internal/synth"
	"percival/internal/tensor"
)

// TestPinnedLanesServe runs the PinLanes configuration end to end: verdicts
// must match the synchronous classifier, the GEMM pool must be partitioned
// while the server lives and restored on Close, and the per-lane metrics
// must account for every dispatch.
func TestPinnedLanesServe(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Shards: 4, PinLanes: true, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tensor.GemmParallelism(); got != 2 {
		t.Fatalf("GemmParallelism = %d while 4 pinned lanes run at GOMAXPROCS=8, want 2", got)
	}

	frames := synth.SampleFrames(61, 24)
	for i, f := range frames {
		got := s.Submit(f)
		want := svc.Classify(f)
		if got.Score != want {
			t.Fatalf("frame %d: pinned-lane score %v != synchronous %v", i, got.Score, want)
		}
	}

	met := s.Metrics()
	var dispatches, busy int64
	for i := range met.LaneDispatches {
		dispatches += met.LaneDispatches[i].Load()
		busy += met.LaneBusyNS[i].Load()
	}
	if dispatches == 0 || dispatches != met.Batches.Load() {
		t.Fatalf("lane dispatches %d, want >0 and equal to batches %d", dispatches, met.Batches.Load())
	}
	if busy <= 0 {
		t.Fatalf("lane busy time %d ns, want > 0", busy)
	}
	exp := met.Expose()
	for _, want := range []string{
		"percival_serve_lane_dispatches_total{lane=\"0\"}",
		"percival_serve_lane_busy_ns_total{lane=\"3\"}",
		"percival_serve_lane_pinned{lane=\"0\"}",
		"percival_serve_gemm_pool_workers",
		"percival_serve_gemm_pool_max_fanout 2",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("Expose() missing %q:\n%s", want, exp)
		}
	}

	s.Close()
	if got := tensor.GemmParallelism(); got != 0 {
		t.Fatalf("GemmParallelism = %d after Close, want 0 (partition not restored)", got)
	}
}

// TestPinnedLanesConcurrentStress is the multi-shard pinned-lane race
// workload (`make race` runs this package under -race at GOMAXPROCS=8 via
// the runtime override below): many submitters, duplicate creatives to
// exercise coalescing, metrics readers racing the lanes, all four pinned
// lanes dispatching concurrently into the partitioned GEMM pool.
func TestPinnedLanesConcurrentStress(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	s := testServer(t, core.Options{}, Options{Shards: 4, PinLanes: true, MaxBatch: 4})
	frames := synth.SampleFrames(67, 16)
	iters := 30
	if raceEnabled {
		iters = 15
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// metrics readers race the lane writers
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Metrics().Expose()
					_ = s.Metrics().LatencyMS.Quantile(0.99)
				}
			}
		}()
	}
	var subWG sync.WaitGroup
	for g := 0; g < 16; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for i := 0; i < iters; i++ {
				f := frames[(g+i)%len(frames)]
				if r := s.Submit(f); r.Status == StatusShed {
					t.Errorf("unexpected shed under pinned lanes")
					return
				}
			}
		}(g)
	}
	subWG.Wait()
	close(stop)
	wg.Wait()
	if got := s.Metrics().Submitted.Load(); got != int64(16*iters) {
		t.Fatalf("submitted %d, want %d", got, 16*iters)
	}
}
