package serve

import (
	"bytes"
	"encoding/binary"
	"testing"

	"percival/internal/core"
	"percival/internal/synth"
)

// TestRestoreCacheTruncatedEntries: a snapshot cut off mid-stream (the
// crash-during-save shape) must restore every complete entry, report that
// partial count, and return an error — never claim a cold start or hang.
func TestRestoreCacheTruncatedEntries(t *testing.T) {
	src := testServer(t, core.Options{}, Options{Workers: 1})
	frames := synth.SampleFrames(67, 6)
	for _, f := range frames {
		src.Submit(f)
	}
	var buf bytes.Buffer
	n, err := src.SnapshotCache(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("snapshot wrote %d entries, want %d", n, len(frames))
	}

	const header = 10
	keep := 3
	// chop off the last entries plus half of entry keep, so the stream dies
	// mid-entry
	cut := buf.Bytes()[:header+keep*cacheEntryLn+cacheEntryLn/2]
	dst := testServer(t, core.Options{}, Options{Workers: 1})
	restored, err := dst.RestoreCache(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
	if restored != keep {
		t.Fatalf("restored %d entries from a snapshot truncated after %d", restored, keep)
	}
	if dst.CacheLen() != keep {
		t.Fatalf("cache holds %d entries, want the %d complete ones", dst.CacheLen(), keep)
	}

	// a zero-length file — the artifact the missing fsync used to leave —
	// must also fail loudly with a zero count
	if k, err := dst.RestoreCache(bytes.NewReader(nil)); err == nil || k != 0 {
		t.Fatalf("empty snapshot reported (%d, %v), want (0, error)", k, err)
	}
}

// TestRestoreCacheOverlargeCount: a header whose count exceeds the actual
// entry stream must restore what is there and error — and it must never
// size an allocation off the untrusted count.
func TestRestoreCacheOverlargeCount(t *testing.T) {
	src := testServer(t, core.Options{}, Options{Workers: 1})
	frames := synth.SampleFrames(71, 2)
	for _, f := range frames {
		src.Submit(f)
	}
	var buf bytes.Buffer
	if _, err := src.SnapshotCache(&buf); err != nil {
		t.Fatal(err)
	}
	lying := append([]byte{}, buf.Bytes()...)
	binary.LittleEndian.PutUint32(lying[6:10], 1<<31) // claims 2^31 entries

	dst := testServer(t, core.Options{}, Options{Workers: 1})
	restored, err := dst.RestoreCache(bytes.NewReader(lying))
	if err == nil {
		t.Fatal("over-large count accepted")
	}
	if restored != len(frames) {
		t.Fatalf("restored %d entries, want the %d actually present", restored, len(frames))
	}
	if dst.CacheLen() != len(frames) {
		t.Fatalf("cache holds %d entries, want %d", dst.CacheLen(), len(frames))
	}
}
