package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"percival/internal/core"
	"percival/internal/engine"
	"percival/internal/synth"
)

// TestShardRoutingDeterminism: the same content hash must route to the
// same shard on every submission — cache affinity and in-flight coalescing
// depend on it — and distinct creatives should spread over the shard map.
func TestShardRoutingDeterminism(t *testing.T) {
	s := testServer(t, core.Options{}, Options{Shards: 4, Workers: 4, MaxBatch: 2})
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	frames := synth.SampleFrames(43, 32)
	for i, f := range frames {
		k := hashFrame(f)
		first := s.shardFor(k)
		for rep := 0; rep < 3; rep++ {
			if got := s.shardFor(hashFrame(f)); got != first {
				t.Fatalf("frame %d: shard flapped %d -> %d", i, first.id, got.id)
			}
		}
	}
	seen := map[int]bool{}
	for _, f := range frames {
		seen[s.shardFor(hashFrame(f)).id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 distinct creatives landed on %d shard(s); range partition is degenerate", len(seen))
	}

	// End to end: repeats of a creative must hit the cache (affinity held),
	// and the per-shard dispatch counters must only count model runs on the
	// owner shard.
	for _, f := range frames {
		s.Submit(f)
	}
	for _, f := range frames {
		if r := s.Submit(f); r.Status != StatusCached {
			t.Fatalf("repeat submission status %v, want cached (shard affinity broken)", r.Status)
		}
	}
	var dispatched int64
	for i := range s.Metrics().ShardFrames {
		dispatched += s.Metrics().ShardFrames[i].Load()
	}
	if dispatched != int64(len(frames)) {
		t.Fatalf("shard counters sum to %d dispatched frames, want %d", dispatched, len(frames))
	}
}

// TestShardedSubmitMatchesSynchronousClassify: sharded dispatch must not
// change scores — every shard replica shares the same weights.
func TestShardedSubmitMatchesSynchronousClassify(t *testing.T) {
	svc := testCore(t, core.Options{})
	s, err := New(svc, Options{Shards: 3, Workers: 3, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, f := range synth.SampleFrames(47, 12) {
		got := s.Submit(f)
		if got.Status == StatusShed {
			t.Fatalf("frame %d shed with no load", i)
		}
		want := svc.Classify(f)
		if got.Score != want {
			t.Fatalf("frame %d: sharded score %v, sync score %v", i, got.Score, want)
		}
	}
}

// TestBackendOverride: serve must dispatch through Options.Backend when
// set, regardless of the classifier's default engine.
func TestBackendOverride(t *testing.T) {
	svc := testCore(t, core.Options{})
	fp32, ok := svc.Backends().Get(engine.FP32Name)
	if !ok {
		t.Fatal("classifier has no fp32 backend")
	}
	s, err := New(svc, Options{Shards: 2, Workers: 2, Backend: fp32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := synth.SampleFrames(53, 8)
	for _, f := range frames {
		s.Submit(f)
	}
	var replicaFrames int64
	for _, st := range s.BackendStats() {
		replicaFrames += st.Frames
	}
	if replicaFrames != int64(len(frames)) {
		t.Fatalf("replicas dispatched %d frames, want %d", replicaFrames, len(frames))
	}
	// the override backend itself must not have served traffic (shards run
	// replicas, never the caller's value)
	if st := fp32.Stats(); st.Frames != 0 {
		t.Fatalf("caller's backend served %d frames; shards must use replicas", st.Frames)
	}
}

// TestShardedSteadyStateZeroAlloc is the per-shard zero-alloc gate: after
// Warm and a warmup pass, steady-state Submit across a multi-shard server
// must not allocate.
func TestShardedSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := testServer(t, core.Options{}, Options{
		Shards: 2, Workers: 2, MaxBatch: 4, Linger: time.Microsecond,
	})
	s.Warm()
	frames := synth.SampleFrames(59, 32)
	for _, f := range frames { // warm: request pool, batch slices, cache state
		s.Submit(f)
	}
	s.ResetCache() // measure the full classify path, not the hit path
	i := 0
	allocs := testing.AllocsPerRun(len(frames)*4, func() {
		s.Submit(frames[i%len(frames)])
		i++
	})
	if allocs >= 1 {
		t.Fatalf("steady-state sharded Submit allocates %.2f/op, want 0", allocs)
	}
}

// TestCachePersistenceRoundTrip: a snapshot taken from one server must
// restore into another — including one with a different shard geometry —
// and serve repeats without model runs.
func TestCachePersistenceRoundTrip(t *testing.T) {
	src := testServer(t, core.Options{}, Options{Shards: 2, Workers: 2})
	frames := synth.SampleFrames(61, 12)
	want := make([]Result, len(frames))
	for i, f := range frames {
		want[i] = src.Submit(f)
	}
	var buf bytes.Buffer
	n, err := src.SnapshotCache(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("snapshot wrote %d entries, want %d", n, len(frames))
	}

	// restore into a fresh server with different shard/cache geometry
	dst := testServer(t, core.Options{}, Options{Shards: 3, Workers: 3, CacheShards: 4})
	m, err := dst.RestoreCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("restored %d of %d entries", m, n)
	}
	if dst.CacheLen() != n {
		t.Fatalf("restored cache holds %d entries, want %d", dst.CacheLen(), n)
	}
	for i, f := range frames {
		r := dst.Submit(f)
		if r.Status != StatusCached {
			t.Fatalf("frame %d: status %v after restore, want cached", i, r.Status)
		}
		if r.Score != want[i].Score {
			t.Fatalf("frame %d: restored score %v, original %v", i, r.Score, want[i].Score)
		}
	}
	if got := dst.Metrics().Classified.Load(); got != 0 {
		t.Fatalf("restored server ran the model %d times on cached creatives", got)
	}

	// corrupt magic must be rejected
	bad := append([]byte("XXXX"), buf.Bytes()[4:]...)
	if _, err := dst.RestoreCache(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// a DisableCache server restores nothing and must say so
	off := testServer(t, core.Options{}, Options{Workers: 1, DisableCache: true})
	if k, err := off.RestoreCache(bytes.NewReader(buf.Bytes())); err != nil || k != 0 {
		t.Fatalf("DisableCache restore reported (%d, %v), want (0, nil)", k, err)
	}
	if off.CacheLen() != 0 {
		t.Fatal("DisableCache server memoized restored entries")
	}
}

// TestMultiShardRaceStress is the -race stress pass over sharded dispatch:
// many goroutines, duplicate-heavy traffic across every shard, the
// adaptive policy live, snapshots racing submissions, and a graceful close.
func TestMultiShardRaceStress(t *testing.T) {
	s, err := New(testCore(t, core.Options{}), Options{
		Shards: 4, Workers: 4, MaxBatch: 4, Linger: 200 * time.Microsecond,
		QueueDepth: 32, Deadline: time.Second, CacheSize: 64, CacheShards: 4,
		Policy: NewAIMDPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := synth.SampleFrames(67, 16)
	const goroutines = 16
	perG := 40
	if testing.Short() {
		perG = 10
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f := frames[(g*7+i)%len(frames)]
				if g%3 == 0 {
					fut := s.SubmitAsync(f)
					fut.Wait()
				} else {
					s.Submit(f)
				}
				switch {
				case i == perG/2 && g == 1:
					s.ResetCache()
				case i%16 == 5 && g == 2:
					var buf bytes.Buffer
					if _, err := s.SnapshotCache(&buf); err != nil {
						t.Errorf("snapshot under load: %v", err)
					}
				case i%16 == 0:
					_ = s.Metrics().Expose()
					_ = s.BackendStats()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	m := s.Metrics()
	resolved := m.Classified.Load() + m.CacheHits.Load() + m.Coalesced.Load() + m.Shed.Load()
	if resolved != m.Submitted.Load() {
		t.Fatalf("accounting leak: %d resolved of %d submitted", resolved, m.Submitted.Load())
	}
}
