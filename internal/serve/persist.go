package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Verdict-cache persistence: a daemon restart used to start the cache cold,
// paying one model run per creative all over again. SnapshotCache writes a
// compact binary image of every memoized verdict; RestoreCache reads one
// back, re-routing each entry through the live shard map (so a snapshot
// taken with one shard/cache geometry restores correctly into another).
//
// Format (little-endian):
//
//	magic   "PCVC"           4 bytes
//	version uint16           currently 1
//	count   uint32
//	entry   key [32]byte + score float64-bits, count times
const (
	cacheMagic   = "PCVC"
	cacheVersion = 1
	cacheEntryLn = 32 + 8
)

// SnapshotCache writes every memoized verdict to w and reports how many
// entries it wrote. Safe while the server runs: each cache shard is locked
// only while its entries are copied out. In-flight (pending) requests are
// not part of the snapshot.
func (s *Server) SnapshotCache(w io.Writer) (int, error) {
	// size the header without holding every lock at once: copy entries
	// shard by shard, then emit
	type entry struct {
		k frameKey
		v float64
	}
	var entries []entry
	for _, sh := range s.shards {
		for i := range sh.cache.shards {
			cs := &sh.cache.shards[i]
			cs.mu.Lock()
			for k, v := range cs.m {
				entries = append(entries, entry{k, v})
			}
			cs.mu.Unlock()
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(cacheMagic); err != nil {
		return 0, err
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], cacheVersion)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var buf [cacheEntryLn]byte
	for _, e := range entries {
		copy(buf[:32], e.k[:])
		binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(e.v))
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	return len(entries), bw.Flush()
}

// RestoreCache loads a snapshot produced by SnapshotCache, inserting each
// verdict through the live shard routing, and reports how many entries it
// restored. Entries beyond the configured cache capacity evict FIFO like
// any other insert; restoring into a DisableCache server validates the
// header but restores nothing (reported count 0 — memoization is off, so
// claiming N restored verdicts would misreport the serving state).
func (s *Server) RestoreCache(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var hdr [10]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("serve: cache snapshot header: %w", err)
	}
	if string(hdr[:4]) != cacheMagic {
		return 0, fmt.Errorf("serve: not a cache snapshot (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != cacheVersion {
		return 0, fmt.Errorf("serve: cache snapshot version %d, want %d", v, cacheVersion)
	}
	if s.opts.DisableCache {
		return 0, nil
	}
	count := binary.LittleEndian.Uint32(hdr[6:10])
	var buf [cacheEntryLn]byte
	restored := 0
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return restored, fmt.Errorf("serve: cache snapshot entry %d: %w", i, err)
		}
		var k frameKey
		copy(k[:], buf[:32])
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[32:]))
		sh := s.shardFor(k)
		ch := sh.cache.shard(k)
		ch.mu.Lock()
		ch.put(k, v)
		ch.mu.Unlock()
		restored++
	}
	return restored, nil
}
