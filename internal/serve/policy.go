package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"percival/internal/metrics"
)

// Policy decides how long a shard's coalescer holds an underfull batch open
// waiting for more submissions. Implementations must be safe for concurrent
// use from every shard's batcher and workers, and must not allocate on
// either call — both sit on the dispatch hot path.
type Policy interface {
	// Linger is read by a coalescer each time it opens a batch.
	Linger() time.Duration
	// ObserveBatch feeds back one dispatched batch: its fill, the configured
	// maximum, and the oldest member's pre-dispatch wait (queue + linger
	// time — the delay the policy's lever actually controls).
	ObserveBatch(fill, maxBatch int, wait time.Duration)
}

// FixedPolicy is the non-adaptive policy: a constant linger budget.
type FixedPolicy struct {
	D time.Duration
}

// Linger returns the fixed budget.
func (p FixedPolicy) Linger() time.Duration { return p.D }

// ObserveBatch is a no-op.
func (FixedPolicy) ObserveBatch(int, int, time.Duration) {}

// AIMD defaults; see NewAIMDPolicy.
const (
	aimdDefaultMin        = 200 * time.Microsecond
	aimdDefaultMax        = 5 * time.Millisecond
	aimdDefaultStep       = 100 * time.Microsecond
	aimdDefaultTargetWait = 10 * time.Millisecond
	// aimdHistPeriod is how many batches pass between latency-histogram
	// consultations (Quantile walks the bucket ladder; cheap, but not
	// per-batch cheap).
	aimdHistPeriod = 64
)

// AIMDPolicy adapts the linger budget with additive-increase /
// multiplicative-decrease, replacing the fixed 2ms linger:
//
//   - a batch dispatched underfull by the timer means traffic is too thin
//     for the current budget — lingering longer would improve fill, so the
//     budget grows additively (+Step, capped at Max);
//   - a batch whose oldest member waited longer than TargetWait means the
//     service is queue-bound — lingering is pure added latency, so the
//     budget halves (floored at Min);
//   - every aimdHistPeriod batches the live latency histogram's TargetQ
//     quantile is checked against TargetWait, halving the budget when the
//     tail is over budget even though individual batches look healthy.
//
// Under sustained overload the budget converges to Min (batches fill on
// their own; holding them open is waste); under thin traffic it converges
// to Max (fill is worth more than the wait); bursts walk between the two.
type AIMDPolicy struct {
	// Min and Max bound the linger budget (defaults 200µs, 5ms).
	Min, Max time.Duration
	// Step is the additive increase per underfull batch (default 100µs).
	Step time.Duration
	// TargetWait is the pre-dispatch wait budget (default 10ms).
	TargetWait time.Duration
	// TargetQ is the latency-histogram quantile held to TargetWait
	// (default 0.95).
	TargetQ float64
	// Hist is the latency feed in milliseconds; serve.New wires the
	// service's own LatencyMS histogram when nil.
	Hist *metrics.Histogram

	cur      atomic.Int64 // current linger, nanoseconds
	nBatches atomic.Int64
	// tailOver holds the latest windowed-histogram verdict: while the
	// latency tail of the most recent observation window is over budget,
	// additive increases are suppressed and every batch decreases —
	// otherwise the climb between two histogram checks would win the
	// tug-of-war against a once-per-period halving. The window is the
	// delta between consecutive bucket snapshots (histMu + the two count
	// buffers below), not the cumulative distribution: an all-time
	// quantile can never recover from one bad epoch, which would pin the
	// linger at Min forever.
	tailOver   atomic.Bool
	histMu     sync.Mutex
	prevCounts []int64
	curCounts  []int64
}

// NewAIMDPolicy returns an adaptive policy with the default bounds,
// starting at Min.
func NewAIMDPolicy() *AIMDPolicy {
	p := &AIMDPolicy{
		Min:        aimdDefaultMin,
		Max:        aimdDefaultMax,
		Step:       aimdDefaultStep,
		TargetWait: aimdDefaultTargetWait,
		TargetQ:    0.95,
	}
	p.cur.Store(int64(p.Min))
	return p
}

// Linger returns the current adaptive budget.
func (p *AIMDPolicy) Linger() time.Duration {
	if cur := p.cur.Load(); cur > 0 {
		return time.Duration(cur)
	}
	// zero-value AIMDPolicy (not built by NewAIMDPolicy): start at Min
	return p.minOr()
}

func (p *AIMDPolicy) minOr() time.Duration {
	if p.Min > 0 {
		return p.Min
	}
	return aimdDefaultMin
}

func (p *AIMDPolicy) maxOr() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return aimdDefaultMax
}

func (p *AIMDPolicy) stepOr() time.Duration {
	if p.Step > 0 {
		return p.Step
	}
	return aimdDefaultStep
}

func (p *AIMDPolicy) targetWaitOr() time.Duration {
	if p.TargetWait > 0 {
		return p.TargetWait
	}
	return aimdDefaultTargetWait
}

// ObserveBatch applies the AIMD step for one dispatched batch. Updates are
// load/store rather than CAS: concurrent shards may overwrite each other's
// adjustment, which only dampens the walk — the bounds still hold.
func (p *AIMDPolicy) ObserveBatch(fill, maxBatch int, wait time.Duration) {
	target := p.targetWaitOr()
	// Tail check: per-batch waits can look healthy while the latency tail
	// creeps (deep queues behind full batches never report a long wait
	// here). Every aimdHistPeriod batches, hold the tail quantile of the
	// *window since the previous check* (bucket-count deltas, so a bad
	// epoch ages out of the verdict) to the same budget. TryLock keeps
	// racing workers off the snapshot buffers without blocking dispatch;
	// the buffers allocate once, on the first check.
	if p.Hist != nil && p.nBatches.Add(1)%aimdHistPeriod == 0 && p.histMu.TryLock() {
		q := p.TargetQ
		if q == 0 {
			q = 0.95
		}
		p.curCounts = p.Hist.CountsInto(p.curCounts)
		if len(p.prevCounts) != len(p.curCounts) {
			p.prevCounts = make([]int64, len(p.curCounts))
		}
		var windowN int64
		for i, c := range p.curCounts {
			d := c - p.prevCounts[i]
			p.prevCounts[i] = c
			p.curCounts[i] = d // curCounts becomes the windowed distribution
			windowN += d
		}
		over := false
		if windowN > 0 {
			over = p.Hist.QuantileOf(p.curCounts, q) > float64(target)/1e6
		}
		p.tailOver.Store(over)
		p.histMu.Unlock()
	}
	cur := p.Linger()
	switch {
	case wait > target || p.tailOver.Load():
		// queue-bound (directly observed or via the latency tail): batches
		// fill or age out without help; lingering longer only adds
		// latency. Multiplicative decrease.
		p.store(cur / 2)
	case fill < maxBatch:
		// timer-dispatched underfull batch with latency headroom: trade a
		// little wait for better fill. Additive increase.
		p.store(cur + p.stepOr())
	}
}

// store clamps to [Min, Max] and publishes.
func (p *AIMDPolicy) store(d time.Duration) {
	if min := p.minOr(); d < min {
		d = min
	}
	if max := p.maxOr(); d > max {
		d = max
	}
	p.cur.Store(int64(d))
}
