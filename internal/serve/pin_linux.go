//go:build linux

package serve

import (
	"runtime"
	"syscall"
	"unsafe"
)

// pinThreadToCPU binds the calling OS thread (which must already be locked
// with runtime.LockOSThread) to one CPU core, lane mod NumCPU, via raw
// sched_setaffinity — the ndn-dpdk lcore model without cgo. Reports whether
// the bind took; single-CPU machines skip it (there is nothing to win and
// the empty "every thread on cpu0" mask would only confuse debugging).
func pinThreadToCPU(lane int) bool {
	ncpu := runtime.NumCPU()
	if ncpu < 2 {
		return false
	}
	cpu := lane % ncpu
	// 1024-bit cpu_set_t, the kernel's default mask width.
	var mask [16]uint64
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	// tid 0 = calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	return errno == 0
}
