package serve

import (
	"encoding/binary"
	"sync"

	"percival/internal/imaging"
)

// frameKey is the content-hash cache key — imaging.ContentKey, the canonical
// zero-alloc key shared with the remote-dispatch wire. Using the shared
// computation (rather than a serve-private hash) is what lets a peer answer
// a wire hash probe straight from this cache: the proxy keys a frame once
// and the peer's lookup agrees byte-for-byte.
type frameKey [32]byte

func hashFrame(b *imaging.Bitmap) frameKey {
	return frameKey(imaging.ContentKey(b))
}

// cacheShard is one lock domain of the sharded verdict cache: a bounded
// FIFO-evicting verdict map (the concurrent counterpart of core's
// verdictCache) plus the in-flight leader table used for request
// coalescing — a follower submitting a frame that is already being
// classified attaches to the leader instead of queueing a duplicate model
// run.
type cacheShard struct {
	mu      sync.Mutex
	max     int // 0 = memoization disabled (pending table still active)
	m       map[frameKey]float64
	order   []frameKey
	next    int
	pending map[frameKey]*request

	// The shards live by value in one contiguous slice, so without padding
	// two neighbours share a cache line: every mu lock/unlock and every
	// bump of the FIFO cursor (next) on one shard would invalidate the
	// neighbour's line on another core — false sharing the 8-core sweep
	// surfaced. The pad keeps each header (64 bytes of fields above) on its
	// own line group.
	_ [64]byte
}

// shardedCache spreads verdict lookups over 2^k independently locked
// shards, replacing the single-mutex cache as the hot-path bottleneck when
// many goroutines submit concurrently.
type shardedCache struct {
	shards []cacheShard
	mask   uint32
}

func newShardedCache(shards, total int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	// round up to a power of two so shard selection is a mask
	n := 1
	for n < shards {
		n <<= 1
	}
	per := 0
	if total > 0 {
		per = (total + n - 1) / n
	}
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			max:     per,
			m:       make(map[frameKey]float64, per),
			pending: map[frameKey]*request{},
		}
	}
	return c
}

func (c *shardedCache) shard(k frameKey) *cacheShard {
	// the key is a cryptographic hash: any 4 bytes are uniformly distributed
	return &c.shards[binary.LittleEndian.Uint32(k[8:12])&c.mask]
}

// Lookups happen inline in Server.begin under the shard lock, composed
// with the pending-leader check — a standalone get would let callers race
// the coalescing protocol.

// put memoizes a score with FIFO eviction, mirroring core's verdictCache
// semantics (including the max<=0 "disabled" guard).
func (s *cacheShard) put(k frameKey, v float64) {
	if s.max <= 0 {
		return
	}
	if _, exists := s.m[k]; exists {
		s.m[k] = v
		return
	}
	if len(s.m) >= s.max {
		old := s.order[s.next%len(s.order)]
		delete(s.m, old)
		s.order[s.next%len(s.order)] = k
		s.next++
	} else {
		s.order = append(s.order, k)
	}
	s.m[k] = v
}

// reset drops every memoized verdict (creative-rotation epochs, tests,
// benchmarks). In-flight leaders are left untouched.
func (c *shardedCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.order = s.order[:0]
		s.next = 0
		s.mu.Unlock()
	}
}

// len reports the number of memoized verdicts across all shards.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
