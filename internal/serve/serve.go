// Package serve turns PERCIVAL's synchronous per-caller classifier into a
// concurrent micro-batching service: many goroutines Submit single frames,
// per-shard coalescing batchers collect them into batches bounded by size
// and a latency budget, and dispatch workers run each batch through a warm
// engine.Backend replica (FP32 or INT8, whichever the selection policy
// chose) in one forward pass. This is the throughput story the paper's
// deployment needs at scale: per-frame latency is already hardware-bound,
// so serving millions of users is about amortizing forward passes and
// never classifying the same creative twice.
//
// The service layers four mechanisms in front of the model:
//
//   - dispatch sharding: submissions are partitioned by content-hash range
//     over Options.Shards independent shards, each owning its own queue,
//     coalescing batcher, verdict-cache slice, and backend replica (own
//     arena pool — shards never contend for inference state);
//   - a sharded verdict cache keyed by frame content hash with shard
//     affinity: a creative's verdict lives exactly where its repeats route;
//   - in-flight request coalescing: a frame identical to one already being
//     classified attaches to the in-flight request instead of queueing a
//     duplicate model run (ad creatives repeat — that is the point);
//   - bounded queues with backpressure and deadline load-shedding: when the
//     system cannot keep up, requests older than the deadline resolve to
//     StatusShed ("verdict unknown", render the frame) instead of growing
//     the queue without bound.
//
// How long a batcher holds an underfull batch open is set by a Policy: a
// fixed linger by default, or the AIMD adaptive policy (see policy.go)
// that tunes the linger against the live latency histogram.
//
// Counters and latency histograms are exported through internal/metrics and
// rendered by cmd/percival-serve's /metrics endpoint.
package serve

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"time"

	"percival/internal/core"
	"percival/internal/engine"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/tensor"
)

// Status reports how a submission was resolved.
type Status uint8

// Submission outcomes.
const (
	// StatusClassified: the model scored this frame (it led a batch slot).
	StatusClassified Status = iota
	// StatusCached: the verdict came from the sharded content-hash cache.
	StatusCached
	// StatusCoalesced: an identical frame was already in flight; this
	// request attached to it and shares its verdict.
	StatusCoalesced
	// StatusShed: the service was overloaded and rejected the request past
	// its deadline. The verdict is unknown; callers must fail open (render
	// the frame) — dropping content is worse than showing an ad.
	StatusShed
)

// String names the status for logs and JSON verdicts.
func (s Status) String() string {
	switch s {
	case StatusClassified:
		return "classified"
	case StatusCached:
		return "cached"
	case StatusCoalesced:
		return "coalesced"
	case StatusShed:
		return "shed"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Result is one resolved classification.
type Result struct {
	// Score is the ad probability (0 when Status is StatusShed).
	Score float64
	// Ad applies the service threshold to Score; always false for shed
	// requests (verdict unknown fails open).
	Ad bool
	// Status records how the verdict was produced.
	Status Status
}

// Options tunes the batching service. The zero value gets sensible
// defaults from New.
type Options struct {
	// MaxBatch caps frames per dispatched forward pass (default 16,
	// matching the engine batch chunk so one dispatch is one forward pass).
	MaxBatch int
	// Linger is how long a coalescer holds an underfull batch open waiting
	// for more submissions (default 2ms) when no Policy is set. Smaller
	// favors latency, larger favors batch fill.
	Linger time.Duration
	// Workers is the total number of dispatch workers across all shards,
	// each driving warm inference state (default GOMAXPROCS). Split evenly
	// over shards, at least one per shard.
	Workers int
	// QueueDepth bounds the submit queues in total entries across shards
	// (default 4*Workers*MaxBatch). A full shard queue blocks submitters —
	// backpressure, not buffering.
	QueueDepth int
	// Deadline sheds requests that waited longer than this before their
	// batch was dispatched (0 disables shedding).
	Deadline time.Duration
	// CacheSize bounds the verdict cache in total entries across all
	// shards (default 4096).
	CacheSize int
	// CacheShards is the lock-domain count per dispatch shard, rounded up
	// to a power of two (default 16).
	CacheShards int
	// DisableCache turns verdict memoization off. In-flight coalescing
	// stays active.
	DisableCache bool
	// Shards is the number of independent dispatch shards; submissions are
	// partitioned by content-hash range, each shard owning its own queue,
	// batcher, verdict-cache slice, and backend replica (default 1).
	Shards int
	// PinLanes dedicates one core-pinned dispatch lane to each shard,
	// ndn-dpdk lcore style: exactly one worker per shard, locked to its OS
	// thread and (on Linux, when the machine has more than one CPU) bound to
	// core shard-id mod NumCPU with sched_setaffinity. The GEMM worker pool
	// is partitioned to match — tensor.SetGemmParallelism(GOMAXPROCS/Shards)
	// — so N lanes running forward passes never oversubscribe the cores the
	// way N shards × M workers × a GOMAXPROCS-wide pool did. Options.Workers
	// is ignored (each lane is its own worker); Close restores the
	// unpartitioned pool.
	PinLanes bool
	// Backend overrides the inference engine (default: the classifier's
	// active backend). Each shard replicates it, so the value passed here
	// never serves traffic directly.
	Backend engine.Backend
	// Policy sets the adaptive linger/batch policy (default: fixed Linger).
	// An *AIMDPolicy with no Hist is wired to the service's own latency
	// histogram. An *AdmissionController additionally takes over admission:
	// graded brownout, stage-adjusted batch cap and shed deadline (its
	// wrapped linger policy gets the same histogram wiring, and its remote
	// congestion feed defaults to the service backend when that reports
	// windows).
	Policy Policy
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.Linger == 0 {
		o.Linger = 2 * time.Millisecond
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.Workers * o.MaxBatch
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards == 0 {
		o.CacheShards = 16
	}
	return o
}

// Metrics are the service's live counters and histograms, exported through
// internal/metrics and safe to read while the server runs.
type Metrics struct {
	// Submitted counts every Submit/SubmitAsync call.
	Submitted metrics.Counter
	// CacheHits counts verdicts served from the sharded cache.
	CacheHits metrics.Counter
	// Coalesced counts requests that attached to an in-flight duplicate.
	Coalesced metrics.Counter
	// Classified counts frames actually scored by the model.
	Classified metrics.Counter
	// Shed counts requests rejected with verdict-unknown.
	Shed metrics.Counter
	// Batches counts dispatched forward passes.
	Batches metrics.Counter
	// BatchFill records frames per dispatched batch.
	BatchFill *metrics.Histogram
	// LatencyMS records enqueue→resolve latency for model-scored frames.
	// Shed resolutions are deliberately excluded: the AIMD policy holds this
	// histogram's tail to its wait budget, and shed waits (which are capped
	// by the deadline regardless of what the policy does) would bias its
	// linger halvings. They go to ShedWaitMS instead.
	LatencyMS *metrics.Histogram
	// ShedWaitMS records enqueue→shed wait for rejected requests.
	ShedWaitMS *metrics.Histogram
	// ShardFrames counts model-dispatched frames per shard (routing and
	// balance observability).
	ShardFrames []metrics.Counter
	// LaneDispatches counts forward passes per dispatch lane (indexed by
	// shard; with PinLanes each shard is exactly one lane).
	LaneDispatches []metrics.Counter
	// LaneBusyNS accumulates nanoseconds each lane spent inside the model —
	// lane occupancy is LaneBusyNS rate over wall time.
	LaneBusyNS []metrics.Counter
	// LanePinned is 1 when the lane's OS thread was successfully bound to a
	// CPU core, 0 otherwise (non-Linux, single-CPU, or PinLanes off).
	LanePinned []metrics.Counter
}

// Expose renders every metric in Prometheus text exposition format.
func (m *Metrics) Expose() string {
	s := metrics.ExposeCounter("percival_serve_submitted_total", &m.Submitted) +
		metrics.ExposeCounter("percival_serve_cache_hits_total", &m.CacheHits) +
		metrics.ExposeCounter("percival_serve_coalesced_total", &m.Coalesced) +
		metrics.ExposeCounter("percival_serve_classified_total", &m.Classified) +
		metrics.ExposeCounter("percival_serve_shed_total", &m.Shed) +
		metrics.ExposeCounter("percival_serve_batches_total", &m.Batches) +
		m.BatchFill.Expose("percival_serve_batch_fill") +
		m.LatencyMS.Expose("percival_serve_latency_ms") +
		m.ShedWaitMS.Expose("percival_serve_shed_wait_ms")
	for i := range m.ShardFrames {
		s += fmt.Sprintf("percival_serve_shard_frames_total{shard=\"%d\"} %d\n",
			i, m.ShardFrames[i].Load())
	}
	for i := range m.LaneDispatches {
		s += fmt.Sprintf("percival_serve_lane_dispatches_total{lane=\"%d\"} %d\n",
			i, m.LaneDispatches[i].Load())
	}
	for i := range m.LaneBusyNS {
		s += fmt.Sprintf("percival_serve_lane_busy_ns_total{lane=\"%d\"} %d\n",
			i, m.LaneBusyNS[i].Load())
	}
	for i := range m.LanePinned {
		s += fmt.Sprintf("percival_serve_lane_pinned{lane=\"%d\"} %d\n",
			i, m.LanePinned[i].Load())
	}
	// Shared GEMM pool occupancy: how the lanes' forward passes are drawing
	// on the tensor worker pool right now.
	ps := tensor.PoolStats()
	s += fmt.Sprintf("percival_serve_gemm_pool_workers %d\n", ps.Workers)
	s += fmt.Sprintf("percival_serve_gemm_pool_max_fanout %d\n", ps.MaxFanout)
	s += fmt.Sprintf("percival_serve_gemm_pool_active_drivers %d\n", ps.ActiveDrivers)
	return s
}

// request is one in-flight submission. Requests are pooled: the done
// channel is allocated once and reused, so a steady-state Submit performs
// no heap allocation.
type request struct {
	frame     *imaging.Bitmap
	key       frameKey
	enq       time.Time
	score     float64
	status    Status
	done      chan struct{} // buffered(1): resolver never blocks
	followers []*request    // coalesced duplicates, guarded by the key's shard lock
}

// shard is one independent dispatch lane: a content-hash range of the key
// space with its own submit queue, coalescing batcher, verdict-cache
// slice, and backend replica. A shard's arena state is its own — two
// shards never contend for inference buffers.
type shard struct {
	srv     *Server
	id      int
	backend engine.Backend
	cache   *shardedCache

	queue       chan *request
	batches     chan []*request
	freeBatches chan []*request

	loopsWG sync.WaitGroup // coalescer + workers
}

// Server is the sharded micro-batching classification service.
type Server struct {
	svc    *core.Percival
	opts   Options
	policy Policy
	adm    *AdmissionController // non-nil when Policy is an AdmissionController
	shards []*shard

	// partitionedPool records that New partitioned the tensor worker pool
	// for pinned lanes; Close restores the unpartitioned default.
	partitionedPool bool

	reqPool sync.Pool

	// closeMu serializes submissions against Close: submitters hold the
	// read side across pending-registration and the queue send, so no
	// shard queue is ever closed under an in-flight sender.
	closeMu sync.RWMutex
	closed  bool

	met Metrics
}

// New builds and starts a Server in front of a core.Percival service.
func New(svc *core.Percival, opts Options) (*Server, error) {
	if svc == nil {
		return nil, fmt.Errorf("serve: nil classifier service")
	}
	opts = opts.withDefaults()
	if opts.PinLanes {
		// One dispatch lane per shard; the lane is the worker.
		opts.Workers = opts.Shards
	}
	if opts.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch %d < 1", opts.MaxBatch)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("serve: Workers %d < 1", opts.Workers)
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: QueueDepth %d < 1", opts.QueueDepth)
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("serve: Shards %d < 1", opts.Shards)
	}
	backend := opts.Backend
	if backend == nil {
		backend = svc.Engine()
	}
	policy := opts.Policy
	if policy == nil {
		policy = FixedPolicy{D: opts.Linger}
	}
	s := &Server{
		svc:    svc,
		opts:   opts,
		policy: policy,
	}
	s.met.BatchFill = metrics.NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64})
	s.met.LatencyMS = metrics.NewHistogram(nil)
	s.met.ShedWaitMS = metrics.NewHistogram(nil)
	s.met.ShardFrames = make([]metrics.Counter, opts.Shards)
	s.met.LaneDispatches = make([]metrics.Counter, opts.Shards)
	s.met.LaneBusyNS = make([]metrics.Counter, opts.Shards)
	s.met.LanePinned = make([]metrics.Counter, opts.Shards)
	if opts.PinLanes {
		// Partition the shared GEMM pool across lanes: each forward pass may
		// fan out to at most its core share, so L concurrent lanes never
		// stack L × GOMAXPROCS helpers on the same cores. On a partition of
		// 1 every lane runs its GEMMs serial on its own pinned core — the
		// ndn-dpdk run-to-completion model.
		per := runtime.GOMAXPROCS(0) / opts.Shards
		if per < 1 {
			per = 1
		}
		tensor.SetGemmParallelism(per)
		s.partitionedPool = true
	}
	if a, ok := policy.(*AIMDPolicy); ok && a.Hist == nil {
		a.Hist = s.met.LatencyMS
	}
	if ac, ok := policy.(*AdmissionController); ok {
		s.adm = ac
		ac.setDeadline(opts.Deadline)
		if a, ok := ac.inner.(*AIMDPolicy); ok && a.Hist == nil {
			a.Hist = s.met.LatencyMS
		}
		if ac.opts.Windows == nil {
			if wr, ok := backend.(engine.WindowReporter); ok {
				ac.opts.Windows = wr
			}
		}
	}
	s.reqPool.New = func() any {
		return &request{done: make(chan struct{}, 1)}
	}

	// split the global budgets evenly across shards, at least 1 each
	perShard := func(total int) int {
		n := (total + opts.Shards - 1) / opts.Shards
		if n < 1 {
			n = 1
		}
		return n
	}
	workers := perShard(opts.Workers)
	queueDepth := perShard(opts.QueueDepth)
	cacheSize := perShard(opts.CacheSize)
	if opts.DisableCache {
		cacheSize = 0
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		sh := &shard{
			srv:         s,
			id:          i,
			backend:     backend.Replicate(),
			cache:       newShardedCache(opts.CacheShards, cacheSize),
			queue:       make(chan *request, queueDepth),
			batches:     make(chan []*request, workers),
			freeBatches: make(chan []*request, workers+2),
		}
		s.shards[i] = sh
		sh.loopsWG.Add(1)
		go sh.coalesce()
		for w := 0; w < workers; w++ {
			sh.loopsWG.Add(1)
			go sh.worker(opts.PinLanes)
		}
	}
	return s, nil
}

// shardFor partitions the key space by content-hash range: the leading 4
// bytes of the (uniform, cryptographic) hash are treated as a fixed-point
// fraction of the keyspace and scaled to the shard count, so the same
// content hash always routes to the same shard regardless of shard-internal
// cache geometry.
func (s *Server) shardFor(k frameKey) *shard {
	hi := uint64(binary.BigEndian.Uint32(k[0:4]))
	return s.shards[int(hi*uint64(len(s.shards))>>32)]
}

// Service returns the wrapped classifier (model introspection, stats).
func (s *Server) Service() *core.Percival { return s.svc }

// Metrics returns the live service metrics.
func (s *Server) Metrics() *Metrics { return &s.met }

// Shards reports the dispatch-shard count.
func (s *Server) Shards() int { return len(s.shards) }

// BackendStats returns each shard replica's engine dispatch counters.
func (s *Server) BackendStats() []engine.Stats {
	out := make([]engine.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.backend.Stats()
	}
	return out
}

// FleetHealth reports per-peer supervisor state when the shards dispatch
// into a supervised fleet (engine.HealthReporter), nil for local backends.
// Replicas share one health table, so any shard's answer is the fleet's.
// A reporter answering nil does not end the scan: proxy backends (the
// canary rollout wrapper) implement the interface unconditionally and
// answer nil when their inner path is local.
func (s *Server) FleetHealth() []engine.PeerHealthInfo {
	for _, sh := range s.shards {
		if hr, ok := sh.backend.(engine.HealthReporter); ok {
			if ph := hr.PeerHealth(); ph != nil {
				return ph
			}
		}
	}
	return nil
}

// WindowStats reports per-peer congestion-window state when the shards
// dispatch into window-gated remotes (engine.WindowReporter), nil for local
// backends. Replicas share their peer's window, so any shard's answer is
// the fleet's. Like FleetHealth, a nil answer from a proxy backend does
// not end the scan.
func (s *Server) WindowStats() []engine.WindowStat {
	for _, sh := range s.shards {
		if wr, ok := sh.backend.(engine.WindowReporter); ok {
			if ws := wr.WindowStats(); ws != nil {
				return ws
			}
		}
	}
	return nil
}

// Admission returns the unified admission controller when one is the
// service's policy, nil otherwise.
func (s *Server) Admission() *AdmissionController { return s.adm }

// BrownoutStage reports the admission ladder's current stage
// (BrownoutNormal when no admission controller is installed).
func (s *Server) BrownoutStage() BrownoutStage {
	if s.adm == nil {
		return BrownoutNormal
	}
	return s.adm.Stage()
}

// Warm pre-touches every shard replica's arena state for all batch sizes
// the coalescers can dispatch, so the first real burst allocates nothing.
func (s *Server) Warm() {
	for _, sh := range s.shards {
		sh.backend.Warm(s.opts.MaxBatch)
	}
}

// CacheLen reports the number of memoized verdicts across all shards.
func (s *Server) CacheLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.cache.len()
	}
	return n
}

// LookupVerdict reports a memoized verdict by its imaging.ContentKey —
// the read half of engine.VerdictCache. The wire listener answers hash
// probes from the same sharded cache /classify fills, so a creative this
// daemon has already scored never pulls pixels over the wire again.
func (s *Server) LookupVerdict(key [32]byte) (float64, bool) {
	k := frameKey(key)
	ch := s.shardFor(k).cache.shard(k)
	ch.mu.Lock()
	v, ok := ch.m[k]
	ch.mu.Unlock()
	return v, ok
}

// StoreVerdict memoizes a verdict scored on behalf of a wire peer — the
// write half of engine.VerdictCache. Routed through the same shard geometry
// as Submit, so wire-scored and locally-scored verdicts share one bounded
// cache.
func (s *Server) StoreVerdict(key [32]byte, score float64) {
	k := frameKey(key)
	ch := s.shardFor(k).cache.shard(k)
	ch.mu.Lock()
	ch.put(k, score)
	ch.mu.Unlock()
}

// ResetCache drops all memoized verdicts (creative-rotation epoch).
func (s *Server) ResetCache() {
	for _, sh := range s.shards {
		sh.cache.reset()
	}
}

// result materializes a Result from a resolved request.
func (s *Server) result(r *request) Result {
	if r.status == StatusShed {
		return Result{Status: StatusShed}
	}
	return Result{Score: r.score, Ad: r.score >= s.svc.Threshold(), Status: r.status}
}

// getRequest checks a pooled request out for one submission.
func (s *Server) getRequest(frame *imaging.Bitmap, key frameKey) *request {
	r := s.reqPool.Get().(*request)
	r.frame = frame
	r.key = key
	r.enq = time.Now()
	r.score = 0
	r.status = StatusClassified
	return r
}

func (s *Server) putRequest(r *request) {
	r.frame = nil
	r.followers = r.followers[:0]
	s.reqPool.Put(r)
}

// begin starts one submission: shard routing, cache lookup, in-flight
// coalescing, or leader enqueue. It returns either an immediate result
// (ok=true) or the request to wait on.
func (s *Server) begin(frame *imaging.Bitmap) (Result, bool, *request) {
	s.met.Submitted.Inc()
	key := hashFrame(frame)
	shd := s.shardFor(key)
	ch := shd.cache.shard(key)

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.met.Shed.Inc()
		return Result{Status: StatusShed}, true, nil
	}

	ch.mu.Lock()
	if v, ok := ch.m[key]; ok {
		ch.mu.Unlock()
		s.closeMu.RUnlock()
		s.met.CacheHits.Inc()
		return Result{Score: v, Ad: v >= s.svc.Threshold(), Status: StatusCached}, true, nil
	}
	if leader, ok := ch.pending[key]; ok {
		f := s.getRequest(nil, key)
		leader.followers = append(leader.followers, f)
		ch.mu.Unlock()
		s.closeMu.RUnlock()
		return Result{}, false, f
	}
	r := s.getRequest(frame, key)
	ch.pending[key] = r
	ch.mu.Unlock()

	// Bounded queue with stage-graded admission. Normal operation blocks
	// the submitter on a full queue (backpressure) — but never past the
	// shed deadline: a request that cannot even enter the queue in time is
	// already doomed, and shedding it here keeps it from occupying bounded
	// capacity just to be shed at dispatch. Under brownout (stage >= 1)
	// admission stops blocking entirely, and at stage 3 new leader work is
	// shed at the edge; cache and coalesce hits were already served above.
	stage := BrownoutNormal
	if s.adm != nil {
		stage = s.adm.AdmitQueue(len(shd.queue), cap(shd.queue))
	}
	switch {
	case stage >= BrownoutShed:
		s.adm.ObserveShed()
		shd.resolveShed(r)
	case stage >= BrownoutCacheOnly:
		select {
		case shd.queue <- r:
		default:
			s.adm.ObserveShed()
			shd.resolveShed(r)
		}
	default:
		if !shd.enqueue(r, s.opts.Deadline) {
			// a door shed under normal stage is overload ground truth: the
			// queue stayed full for the whole deadline — feed it, weighted by
			// every follower that coalesced behind the doomed leader
			n := shd.resolveShed(r)
			if s.adm != nil {
				s.adm.ObserveOverloadShed(n)
			}
		}
	}
	s.closeMu.RUnlock()
	return Result{}, false, r
}

// enqueue submits a leader to the shard's bounded queue, blocking at most d
// (0: unbounded backpressure, the pre-deadline contract). Reports false when
// the wait exhausted the shed deadline — the caller sheds immediately
// instead of queueing a request that can only be shed later.
func (sh *shard) enqueue(r *request, d time.Duration) bool {
	select {
	case sh.queue <- r:
		return true
	default:
	}
	if d <= 0 {
		sh.queue <- r
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case sh.queue <- r:
		return true
	case <-timer.C:
		return false
	}
}

// Submit classifies one frame through the batching service, blocking until
// its batch resolves (or the request is shed). Safe for arbitrary
// concurrency; the steady state allocates nothing.
func (s *Server) Submit(frame *imaging.Bitmap) Result {
	res, done, r := s.begin(frame)
	if done {
		return res
	}
	<-r.done
	res = s.result(r)
	s.putRequest(r)
	return res
}

// Future is a pending asynchronous classification from SubmitAsync.
type Future struct {
	s    *Server
	r    *request
	once sync.Once
	res  Result
}

// Wait blocks until the verdict is available. Safe to call repeatedly,
// including from concurrent goroutines: resolution is exclusive (the pooled
// request is consumed exactly once), and every caller returns the same
// Result.
func (f *Future) Wait() Result {
	f.once.Do(f.resolve)
	return f.res
}

// resolve consumes the underlying pooled request. It must run at most once:
// a second put of the same request would hand one pooled value to two
// submissions.
func (f *Future) resolve() {
	if f.r == nil {
		return
	}
	<-f.r.done
	f.res = f.s.result(f.r)
	f.s.putRequest(f.r)
	f.r = nil
}

// SubmitAsync starts a classification and returns a Future, letting the
// caller overlap other work (rasterization) with the in-flight batch.
func (s *Server) SubmitAsync(frame *imaging.Bitmap) *Future {
	res, done, r := s.begin(frame)
	if done {
		return &Future{res: res}
	}
	return &Future{s: s, r: r}
}

// coalesce is a shard's batching loop: it drains the shard's submit queue
// into batches bounded by MaxBatch and the policy's linger budget, then
// hands each batch to a dispatch worker.
func (sh *shard) coalesce() {
	defer sh.loopsWG.Done()
	defer close(sh.batches)
	s := sh.srv
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	batch := sh.getBatchSlice()
	flush := func() {
		if len(batch) > 0 {
			sh.batches <- batch
			batch = sh.getBatchSlice()
		}
	}
	for {
		if len(batch) == 0 {
			r, ok := <-sh.queue
			if !ok {
				return
			}
			if !sh.admitPopped(r) {
				continue
			}
			batch = append(batch, r)
			if len(batch) >= s.batchCap() {
				flush()
				continue
			}
			timer.Reset(s.policy.Linger())
		}
		select {
		case r, ok := <-sh.queue:
			if !ok {
				stopTimer()
				flush()
				return
			}
			if !sh.admitPopped(r) {
				continue
			}
			batch = append(batch, r)
			if len(batch) >= s.batchCap() {
				stopTimer()
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// admitPopped screens a request leaving the queue: one already past the
// shed deadline can only be shed at dispatch, so shedding it here frees its
// batch slot for live work instead of carrying a doomed passenger through
// the coalescer. Every pop also feeds the admission controller's pressure
// signal with the leader's queue age — in a coalescing service the leader
// population is bounded by the distinct-creative count, so occupancy alone
// under-reads saturation; age against the deadline is the signal that
// actually pins high when dispatch falls behind.
func (sh *shard) admitPopped(r *request) bool {
	age := time.Since(r.enq)
	if sh.srv.adm != nil {
		sh.srv.adm.ObserveDispatchWait(age)
	}
	if d := sh.srv.shedDeadline(); d > 0 && age > d {
		n := sh.resolveShed(r)
		if sh.srv.adm != nil {
			sh.srv.adm.ObserveOverloadShed(n)
		}
		return false
	}
	return true
}

// batchCap is the stage-adjusted frames-per-dispatch cap.
func (s *Server) batchCap() int {
	if s.adm != nil {
		return s.adm.BatchCap(s.opts.MaxBatch)
	}
	return s.opts.MaxBatch
}

// shedDeadline is the stage-adjusted shed deadline.
func (s *Server) shedDeadline() time.Duration {
	if s.adm != nil {
		return s.adm.ShedDeadline(s.opts.Deadline)
	}
	return s.opts.Deadline
}

func (sh *shard) getBatchSlice() []*request {
	select {
	case b := <-sh.freeBatches:
		return b
	default:
		return make([]*request, 0, sh.srv.opts.MaxBatch)
	}
}

// worker is one shard dispatch loop: it owns reusable frame/score slices
// and runs each batch through the shard's warm backend replica. With pin
// set (PinLanes) the loop is the shard's dedicated lane: it locks to its OS
// thread and binds that thread to a core, so the lane's forward passes stop
// migrating and stop stealing each other's cache residency. The thread is
// intentionally never unlocked — it is destroyed when the lane exits at
// Close, which is cheaper than giving a core-bound thread back to the
// scheduler pool.
func (sh *shard) worker(pin bool) {
	defer sh.loopsWG.Done()
	s := sh.srv
	if pin {
		runtime.LockOSThread()
		if pinThreadToCPU(sh.id) {
			s.met.LanePinned[sh.id].Inc()
		}
	}
	frames := make([]*imaging.Bitmap, 0, s.opts.MaxBatch)
	live := make([]*request, 0, s.opts.MaxBatch)
	scores := make([]float64, s.opts.MaxBatch)
	for batch := range sh.batches {
		frames = frames[:0]
		live = live[:0]
		now := time.Now()
		if deadline := s.shedDeadline(); deadline > 0 {
			for _, r := range batch {
				if now.Sub(r.enq) > deadline {
					sh.resolveShed(r)
					continue
				}
				live = append(live, r)
				frames = append(frames, r.frame)
			}
		} else {
			for _, r := range batch {
				live = append(live, r)
				frames = append(frames, r.frame)
			}
		}
		if len(live) > 0 {
			// the oldest request's pre-dispatch wait is the queue+linger
			// delay the policy controls (model time is not its lever)
			wait := now.Sub(live[0].enq)
			start := time.Now()
			out := sh.backend.InferBatchInto(frames, scores[:len(live)])
			s.met.LaneBusyNS[sh.id].Add(time.Since(start).Nanoseconds())
			s.met.LaneDispatches[sh.id].Inc()
			s.met.Batches.Inc()
			s.met.BatchFill.Observe(float64(len(live)))
			s.met.Classified.Add(int64(len(live)))
			s.met.ShardFrames[sh.id].Add(int64(len(live)))
			for i, r := range live {
				sh.resolve(r, out[i])
			}
			s.policy.ObserveBatch(len(live), s.opts.MaxBatch, wait)
		}
		select {
		case sh.freeBatches <- batch[:0]:
		default:
		}
	}
}

// resolve publishes a model verdict: memoize, release the in-flight slot,
// fan the score out to coalesced followers, wake the leader.
func (sh *shard) resolve(r *request, score float64) {
	s := sh.srv
	s.met.LatencyMS.Observe(float64(time.Since(r.enq).Nanoseconds()) / 1e6)
	ch := sh.cache.shard(r.key)
	ch.mu.Lock()
	ch.put(r.key, score)
	if ch.pending[r.key] == r {
		delete(ch.pending, r.key)
	}
	followers := r.followers
	r.followers = nil
	ch.mu.Unlock()
	for _, f := range followers {
		f.score = score
		f.status = StatusCoalesced
		s.met.Coalesced.Inc()
		f.done <- struct{}{}
	}
	r.score = score
	r.status = StatusClassified
	r.done <- struct{}{}
}

// resolveShed rejects a request (and any coalesced followers) with
// verdict-unknown, returning how many submissions that resolved — the
// request mass a deadline shed feeds into the admission pressure signal.
// The wait goes to ShedWaitMS, never LatencyMS — shed waits are
// deadline-capped no matter what the linger policy does, and would bias its
// tail check (see Metrics.LatencyMS).
func (sh *shard) resolveShed(r *request) int {
	s := sh.srv
	s.met.ShedWaitMS.Observe(float64(time.Since(r.enq).Nanoseconds()) / 1e6)
	ch := sh.cache.shard(r.key)
	ch.mu.Lock()
	if ch.pending[r.key] == r {
		delete(ch.pending, r.key)
	}
	followers := r.followers
	r.followers = nil
	ch.mu.Unlock()
	for _, f := range followers {
		f.status = StatusShed
		s.met.Shed.Inc()
		f.done <- struct{}{}
	}
	r.status = StatusShed
	s.met.Shed.Inc()
	r.done <- struct{}{}
	return 1 + len(followers)
}

// Close drains the service: it waits for in-flight submitters, stops every
// shard's batcher and workers, resolves everything still queued (open
// linger batches are flushed, not dropped), and closes the shard backend
// replicas. Submissions racing with Close resolve as StatusShed. The
// server must not be used after Close.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		sh.loopsWG.Wait()
		sh.backend.Close()
	}
	if s.partitionedPool {
		tensor.SetGemmParallelism(0)
	}
}
