// Package serve turns PERCIVAL's synchronous per-caller classifier into a
// concurrent micro-batching service: many goroutines Submit single frames,
// a coalescing batcher collects them into batches bounded by size and a
// latency budget, and per-worker dispatch loops run each batch through the
// warm arena-backed engine (FP32 or INT8, whichever the parity gate
// selected) in one forward pass. This is the throughput story the paper's
// deployment needs at scale: per-frame latency is already hardware-bound,
// so serving millions of users is about amortizing forward passes and
// never classifying the same creative twice.
//
// The service layers three mechanisms in front of the model:
//
//   - a sharded verdict cache keyed by frame content hash, replacing the
//     single-mutex memoization cache as the hot-path bottleneck;
//   - in-flight request coalescing: a frame identical to one already being
//     classified attaches to the in-flight request instead of queueing a
//     duplicate model run (ad creatives repeat — that is the point);
//   - bounded queues with backpressure and deadline load-shedding: when the
//     system cannot keep up, requests older than the deadline resolve to
//     StatusShed ("verdict unknown", render the frame) instead of growing
//     the queue without bound.
//
// Counters and latency histograms are exported through internal/metrics and
// rendered by cmd/percival-serve's /metrics endpoint.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"percival/internal/core"
	"percival/internal/imaging"
	"percival/internal/metrics"
)

// Status reports how a submission was resolved.
type Status uint8

// Submission outcomes.
const (
	// StatusClassified: the model scored this frame (it led a batch slot).
	StatusClassified Status = iota
	// StatusCached: the verdict came from the sharded content-hash cache.
	StatusCached
	// StatusCoalesced: an identical frame was already in flight; this
	// request attached to it and shares its verdict.
	StatusCoalesced
	// StatusShed: the service was overloaded and rejected the request past
	// its deadline. The verdict is unknown; callers must fail open (render
	// the frame) — dropping content is worse than showing an ad.
	StatusShed
)

// String names the status for logs and JSON verdicts.
func (s Status) String() string {
	switch s {
	case StatusClassified:
		return "classified"
	case StatusCached:
		return "cached"
	case StatusCoalesced:
		return "coalesced"
	case StatusShed:
		return "shed"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Result is one resolved classification.
type Result struct {
	// Score is the ad probability (0 when Status is StatusShed).
	Score float64
	// Ad applies the service threshold to Score; always false for shed
	// requests (verdict unknown fails open).
	Ad bool
	// Status records how the verdict was produced.
	Status Status
}

// Options tunes the batching service. The zero value gets sensible
// defaults from New.
type Options struct {
	// MaxBatch caps frames per dispatched forward pass (default 16,
	// matching core's batch chunk so one dispatch is one forward pass).
	MaxBatch int
	// Linger is how long the coalescer holds an underfull batch open
	// waiting for more submissions (default 2ms). Smaller favors latency,
	// larger favors batch fill.
	Linger time.Duration
	// Workers is the number of dispatch workers, each driving warm
	// per-worker inference state (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submit queue (default 4*Workers*MaxBatch).
	// A full queue blocks submitters — backpressure, not buffering.
	QueueDepth int
	// Deadline sheds requests that waited longer than this before their
	// batch was dispatched (0 disables shedding).
	Deadline time.Duration
	// CacheSize bounds the sharded verdict cache in total entries
	// (default 4096).
	CacheSize int
	// CacheShards is the lock-domain count, rounded up to a power of two
	// (default 16).
	CacheShards int
	// DisableCache turns verdict memoization off. In-flight coalescing
	// stays active.
	DisableCache bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.Linger == 0 {
		o.Linger = 2 * time.Millisecond
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.Workers * o.MaxBatch
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards == 0 {
		o.CacheShards = 16
	}
	return o
}

// Metrics are the service's live counters and histograms, exported through
// internal/metrics and safe to read while the server runs.
type Metrics struct {
	// Submitted counts every Submit/SubmitAsync call.
	Submitted metrics.Counter
	// CacheHits counts verdicts served from the sharded cache.
	CacheHits metrics.Counter
	// Coalesced counts requests that attached to an in-flight duplicate.
	Coalesced metrics.Counter
	// Classified counts frames actually scored by the model.
	Classified metrics.Counter
	// Shed counts requests rejected with verdict-unknown.
	Shed metrics.Counter
	// Batches counts dispatched forward passes.
	Batches metrics.Counter
	// BatchFill records frames per dispatched batch.
	BatchFill *metrics.Histogram
	// LatencyMS records enqueue→resolve latency for model-scored frames.
	LatencyMS *metrics.Histogram
}

// Expose renders every metric in Prometheus text exposition format.
func (m *Metrics) Expose() string {
	return metrics.ExposeCounter("percival_serve_submitted_total", &m.Submitted) +
		metrics.ExposeCounter("percival_serve_cache_hits_total", &m.CacheHits) +
		metrics.ExposeCounter("percival_serve_coalesced_total", &m.Coalesced) +
		metrics.ExposeCounter("percival_serve_classified_total", &m.Classified) +
		metrics.ExposeCounter("percival_serve_shed_total", &m.Shed) +
		metrics.ExposeCounter("percival_serve_batches_total", &m.Batches) +
		m.BatchFill.Expose("percival_serve_batch_fill") +
		m.LatencyMS.Expose("percival_serve_latency_ms")
}

// request is one in-flight submission. Requests are pooled: the done
// channel is allocated once and reused, so a steady-state Submit performs
// no heap allocation.
type request struct {
	frame     *imaging.Bitmap
	key       frameKey
	enq       time.Time
	score     float64
	status    Status
	done      chan struct{} // buffered(1): resolver never blocks
	followers []*request    // coalesced duplicates, guarded by the key's shard lock
}

// Server is the micro-batching classification service.
type Server struct {
	svc   *core.Percival
	opts  Options
	cache *shardedCache

	queue       chan *request
	batches     chan []*request
	freeBatches chan []*request

	reqPool sync.Pool

	// closeMu serializes submissions against Close: submitters hold the
	// read side across pending-registration and the queue send, so the
	// queue is never closed under an in-flight sender.
	closeMu sync.RWMutex
	closed  bool
	loopsWG sync.WaitGroup // coalescer + workers

	met Metrics
}

// New builds and starts a Server in front of a core.Percival service.
func New(svc *core.Percival, opts Options) (*Server, error) {
	if svc == nil {
		return nil, fmt.Errorf("serve: nil classifier service")
	}
	opts = opts.withDefaults()
	if opts.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch %d < 1", opts.MaxBatch)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("serve: Workers %d < 1", opts.Workers)
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: QueueDepth %d < 1", opts.QueueDepth)
	}
	cacheSize := opts.CacheSize
	if opts.DisableCache {
		cacheSize = 0
	}
	s := &Server{
		svc:         svc,
		opts:        opts,
		cache:       newShardedCache(opts.CacheShards, cacheSize),
		queue:       make(chan *request, opts.QueueDepth),
		batches:     make(chan []*request, opts.Workers),
		freeBatches: make(chan []*request, opts.Workers+2),
	}
	s.met.BatchFill = metrics.NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64})
	s.met.LatencyMS = metrics.NewHistogram(nil)
	s.reqPool.New = func() any {
		return &request{done: make(chan struct{}, 1)}
	}
	s.loopsWG.Add(1)
	go s.coalesce()
	for i := 0; i < opts.Workers; i++ {
		s.loopsWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Service returns the wrapped classifier (model introspection, stats).
func (s *Server) Service() *core.Percival { return s.svc }

// Metrics returns the live service metrics.
func (s *Server) Metrics() *Metrics { return &s.met }

// CacheLen reports the number of memoized verdicts.
func (s *Server) CacheLen() int { return s.cache.len() }

// ResetCache drops all memoized verdicts (creative-rotation epoch).
func (s *Server) ResetCache() { s.cache.reset() }

// result materializes a Result from a resolved request.
func (s *Server) result(r *request) Result {
	if r.status == StatusShed {
		return Result{Status: StatusShed}
	}
	return Result{Score: r.score, Ad: r.score >= s.svc.Threshold(), Status: r.status}
}

// getRequest checks a pooled request out for one submission.
func (s *Server) getRequest(frame *imaging.Bitmap, key frameKey) *request {
	r := s.reqPool.Get().(*request)
	r.frame = frame
	r.key = key
	r.enq = time.Now()
	r.score = 0
	r.status = StatusClassified
	return r
}

func (s *Server) putRequest(r *request) {
	r.frame = nil
	r.followers = r.followers[:0]
	s.reqPool.Put(r)
}

// begin starts one submission: cache lookup, in-flight coalescing, or
// leader enqueue. It returns either an immediate result (ok=true) or the
// request to wait on.
func (s *Server) begin(frame *imaging.Bitmap) (Result, bool, *request) {
	s.met.Submitted.Inc()
	key := hashFrame(frame)
	sh := s.cache.shard(key)

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.met.Shed.Inc()
		return Result{Status: StatusShed}, true, nil
	}

	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		s.closeMu.RUnlock()
		s.met.CacheHits.Inc()
		return Result{Score: v, Ad: v >= s.svc.Threshold(), Status: StatusCached}, true, nil
	}
	if leader, ok := sh.pending[key]; ok {
		f := s.getRequest(nil, key)
		leader.followers = append(leader.followers, f)
		sh.mu.Unlock()
		s.closeMu.RUnlock()
		return Result{}, false, f
	}
	r := s.getRequest(frame, key)
	sh.pending[key] = r
	sh.mu.Unlock()

	// Bounded queue: a full queue blocks the submitter (backpressure);
	// requests that then sit past the deadline are shed at dispatch.
	s.queue <- r
	s.closeMu.RUnlock()
	return Result{}, false, r
}

// Submit classifies one frame through the batching service, blocking until
// its batch resolves (or the request is shed). Safe for arbitrary
// concurrency; the steady state allocates nothing.
func (s *Server) Submit(frame *imaging.Bitmap) Result {
	res, done, r := s.begin(frame)
	if done {
		return res
	}
	<-r.done
	res = s.result(r)
	s.putRequest(r)
	return res
}

// Future is a pending asynchronous classification from SubmitAsync.
type Future struct {
	s   *Server
	r   *request
	res Result
}

// Wait blocks until the verdict is available. Safe to call repeatedly; the
// first call releases the underlying pooled request.
func (f *Future) Wait() Result {
	if f.r != nil {
		<-f.r.done
		f.res = f.s.result(f.r)
		f.s.putRequest(f.r)
		f.r = nil
	}
	return f.res
}

// SubmitAsync starts a classification and returns a Future, letting the
// caller overlap other work (rasterization) with the in-flight batch.
func (s *Server) SubmitAsync(frame *imaging.Bitmap) *Future {
	res, done, r := s.begin(frame)
	if done {
		return &Future{res: res}
	}
	return &Future{s: s, r: r}
}

// coalesce is the batching loop: it drains the submit queue into batches
// bounded by MaxBatch and the Linger budget, then hands each batch to a
// dispatch worker.
func (s *Server) coalesce() {
	defer s.loopsWG.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	batch := s.getBatchSlice()
	flush := func() {
		if len(batch) > 0 {
			s.batches <- batch
			batch = s.getBatchSlice()
		}
	}
	for {
		if len(batch) == 0 {
			r, ok := <-s.queue
			if !ok {
				return
			}
			batch = append(batch, r)
			if len(batch) >= s.opts.MaxBatch {
				flush()
				continue
			}
			timer.Reset(s.opts.Linger)
		}
		select {
		case r, ok := <-s.queue:
			if !ok {
				stopTimer()
				flush()
				return
			}
			batch = append(batch, r)
			if len(batch) >= s.opts.MaxBatch {
				stopTimer()
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

func (s *Server) getBatchSlice() []*request {
	select {
	case b := <-s.freeBatches:
		return b
	default:
		return make([]*request, 0, s.opts.MaxBatch)
	}
}

// worker is one dispatch loop: it owns reusable frame/score slices and runs
// each batch through core's warm arena-backed batch path (the per-worker
// replica state lives in core's inference-state pool, one checkout per
// concurrent dispatch).
func (s *Server) worker() {
	defer s.loopsWG.Done()
	frames := make([]*imaging.Bitmap, 0, s.opts.MaxBatch)
	live := make([]*request, 0, s.opts.MaxBatch)
	scores := make([]float64, s.opts.MaxBatch)
	for batch := range s.batches {
		frames = frames[:0]
		live = live[:0]
		if s.opts.Deadline > 0 {
			now := time.Now()
			for _, r := range batch {
				if now.Sub(r.enq) > s.opts.Deadline {
					s.resolveShed(r)
					continue
				}
				live = append(live, r)
				frames = append(frames, r.frame)
			}
		} else {
			for _, r := range batch {
				live = append(live, r)
				frames = append(frames, r.frame)
			}
		}
		if len(live) > 0 {
			out := s.svc.ClassifyBatchInto(frames, scores[:len(live)])
			s.met.Batches.Inc()
			s.met.BatchFill.Observe(float64(len(live)))
			s.met.Classified.Add(int64(len(live)))
			for i, r := range live {
				s.resolve(r, out[i])
			}
		}
		select {
		case s.freeBatches <- batch[:0]:
		default:
		}
	}
}

// resolve publishes a model verdict: memoize, release the in-flight slot,
// fan the score out to coalesced followers, wake the leader.
func (s *Server) resolve(r *request, score float64) {
	s.met.LatencyMS.Observe(float64(time.Since(r.enq).Nanoseconds()) / 1e6)
	sh := s.cache.shard(r.key)
	sh.mu.Lock()
	sh.put(r.key, score)
	if sh.pending[r.key] == r {
		delete(sh.pending, r.key)
	}
	followers := r.followers
	r.followers = nil
	sh.mu.Unlock()
	for _, f := range followers {
		f.score = score
		f.status = StatusCoalesced
		s.met.Coalesced.Inc()
		f.done <- struct{}{}
	}
	r.score = score
	r.status = StatusClassified
	r.done <- struct{}{}
}

// resolveShed rejects a request (and any coalesced followers) with
// verdict-unknown.
func (s *Server) resolveShed(r *request) {
	sh := s.cache.shard(r.key)
	sh.mu.Lock()
	if sh.pending[r.key] == r {
		delete(sh.pending, r.key)
	}
	followers := r.followers
	r.followers = nil
	sh.mu.Unlock()
	for _, f := range followers {
		f.status = StatusShed
		s.met.Shed.Inc()
		f.done <- struct{}{}
	}
	r.status = StatusShed
	s.met.Shed.Inc()
	r.done <- struct{}{}
}

// Close drains the service: it waits for in-flight submitters, stops the
// batcher and workers, and resolves everything still queued. Submissions
// racing with Close resolve as StatusShed. The server must not be used
// after Close.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.queue)
	s.loopsWG.Wait()
}
