//go:build !linux

package serve

// pinThreadToCPU is a no-op off Linux: the lane still gets LockOSThread
// (scheduler affinity), just not a hard core binding.
func pinThreadToCPU(lane int) bool { return false }
