package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"percival/internal/core"
	"percival/internal/engine"
	"percival/internal/imaging"
	"percival/internal/synth"
)

// admClock drives an AdmissionController's time source deterministically.
type admClock struct {
	mu sync.Mutex
	t  time.Time
}

func newAdmClock() *admClock {
	return &admClock{t: time.Unix(1700000000, 0)}
}

func (c *admClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *admClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testController(opts AdmissionOptions) (*AdmissionController, *admClock) {
	c := NewAdmissionController(opts)
	clk := newAdmClock()
	c.now = clk.now
	return c, clk
}

// drive feeds n full-pressure (or zero-pressure) admissions with dt between
// them.
func drive(c *AdmissionController, clk *admClock, n int, qlen, qcap int, dt time.Duration) {
	for i := 0; i < n; i++ {
		clk.advance(dt)
		c.AdmitQueue(qlen, qcap)
	}
}

func TestAdmissionLadderEscalatesAndReleases(t *testing.T) {
	c, clk := testController(AdmissionOptions{
		Linger:    FixedPolicy{D: time.Millisecond},
		EnterHold: 50 * time.Millisecond,
		ExitHold:  50 * time.Millisecond,
	})
	if c.Stage() != BrownoutNormal {
		t.Fatalf("fresh controller at stage %v", c.Stage())
	}
	// sustained full queue: the ladder climbs one stage per EnterHold
	drive(c, clk, 200, 64, 64, 5*time.Millisecond)
	if c.Stage() != BrownoutShed {
		t.Fatalf("stage after sustained overload = %v, want %v", c.Stage(), BrownoutShed)
	}
	// load drops: the ladder steps back down to normal, one ExitHold each
	drive(c, clk, 400, 0, 64, 5*time.Millisecond)
	if c.Stage() != BrownoutNormal {
		t.Fatalf("stage after load drop = %v, want %v", c.Stage(), BrownoutNormal)
	}
	if c.Transitions() < 6 {
		t.Fatalf("transitions = %d, want >= 6 (3 up + 3 down)", c.Transitions())
	}
}

func TestAdmissionLadderHysteresis(t *testing.T) {
	c, clk := testController(AdmissionOptions{
		Linger:        FixedPolicy{D: time.Millisecond},
		EnterPressure: 0.75,
		ExitPressure:  0.35,
		EnterHold:     50 * time.Millisecond,
		ExitHold:      50 * time.Millisecond,
	})
	// a short burst (shorter than EnterHold) must not move the ladder
	drive(c, clk, 100, 64, 64, 100*time.Microsecond)
	if c.Stage() != BrownoutNormal {
		t.Fatalf("ladder moved on a sub-hold burst: %v", c.Stage())
	}
	// climb a stage or two, then sit inside the hysteresis band: the stage
	// holds — neither climbing (below enter) nor releasing (above exit)
	drive(c, clk, 15, 64, 64, 5*time.Millisecond)
	if c.Stage() != BrownoutCacheOnly && c.Stage() != BrownoutDegraded {
		t.Fatalf("stage after overload = %v, want cache-only or degraded", c.Stage())
	}
	st := c.Stage()
	// drop the EWMA straight into the band (its natural decay from ~1.0
	// would spend another EnterHold above the threshold — a real step, not
	// drift), then hold occupancy there
	c.pressure.Store(pressureBits(0.56))
	drive(c, clk, 500, 36, 64, 5*time.Millisecond) // occupancy 0.56: between exit and enter
	if c.Stage() != st {
		t.Fatalf("stage drifted inside the hysteresis band: %v -> %v", st, c.Stage())
	}
}

func TestAdmissionStageAdjustedKnobs(t *testing.T) {
	c, _ := testController(AdmissionOptions{Linger: FixedPolicy{D: 4 * time.Millisecond}})
	if got := c.BatchCap(16); got != 16 {
		t.Fatalf("stage-0 batch cap = %d, want 16", got)
	}
	if got := c.ShedDeadline(time.Second); got != time.Second {
		t.Fatalf("stage-0 deadline = %v, want 1s", got)
	}
	if got := c.Linger(); got != 4*time.Millisecond {
		t.Fatalf("stage-0 linger = %v, want the inner policy's 4ms", got)
	}
	c.stage.Store(int32(BrownoutDegraded))
	if got := c.BatchCap(16); got != 8 {
		t.Fatalf("degraded batch cap = %d, want 8", got)
	}
	if got := c.BatchCap(1); got != 1 {
		t.Fatalf("degraded batch cap floor = %d, want 1", got)
	}
	if got := c.ShedDeadline(time.Second); got != 500*time.Millisecond {
		t.Fatalf("degraded deadline = %v, want 500ms", got)
	}
	if got := c.ShedDeadline(0); got != 0 {
		t.Fatalf("disabled deadline must stay disabled, got %v", got)
	}
	if got := c.Linger(); got != aimdDefaultMin {
		t.Fatalf("degraded linger = %v, want the %v floor", got, aimdDefaultMin)
	}
}

// stubWindows is a WindowReporter pinned at a fixed saturation.
type stubWindows struct{ stats []engine.WindowStat }

func (s stubWindows) WindowStats() []engine.WindowStat { return s.stats }

// pressureBits encodes a pressure value for direct injection into the
// controller's EWMA word.
func pressureBits(p float64) uint64 { return math.Float64bits(p) }

// slowBackend is an engine.Backend that sleeps per batch — the jammed-
// pipeline stand-in for admission tests.
type slowBackend struct {
	d   time.Duration
	res int
}

func (b slowBackend) Name() string              { return "slow-test" }
func (b slowBackend) InputRes() int             { return b.res }
func (b slowBackend) Replicate() engine.Backend { return b }
func (b slowBackend) Warm(int)                  {}
func (b slowBackend) Close()                    {}
func (b slowBackend) Stats() engine.Stats       { return engine.Stats{} }

func (b slowBackend) InferBatchInto(frames []*imaging.Bitmap, out []float64) []float64 {
	time.Sleep(b.d)
	out = out[:len(frames)]
	for i := range out {
		out[i] = 0.5
	}
	return out
}

func TestAdmissionRemoteSaturationSignal(t *testing.T) {
	// every peer pinned at its window: remote congestion alone must push
	// pressure past EnterPressure even though the local queue is empty
	c, clk := testController(AdmissionOptions{
		Linger:    FixedPolicy{D: time.Millisecond},
		EnterHold: 50 * time.Millisecond,
		Windows: stubWindows{stats: []engine.WindowStat{
			{Peer: "a", Cwnd: 1, InFlight: 1},
			{Peer: "b", Cwnd: 2, InFlight: 2},
		}},
	})
	drive(c, clk, 100, 0, 64, 5*time.Millisecond)
	if c.Stage() < BrownoutCacheOnly {
		t.Fatalf("remote saturation did not engage brownout: stage %v, pressure %.2f",
			c.Stage(), c.Pressure())
	}
}

// TestAdmissionCoalescedPressureSignals covers the two signals that make
// overload visible in a coalescing service, where queue occupancy alone is
// structurally capped by the distinct-creative count: per-pop dispatch ages
// and mass-weighted deadline sheds.
func TestAdmissionCoalescedPressureSignals(t *testing.T) {
	newC := func() *AdmissionController {
		c, _ := testController(AdmissionOptions{Linger: FixedPolicy{D: time.Millisecond}})
		c.setDeadline(100 * time.Millisecond)
		return c
	}

	// a leader popped at exactly its shed deadline is a full-pressure sample
	c := newC()
	c.ObserveDispatchWait(100 * time.Millisecond)
	if want := c.opts.Alpha * 1.0; math.Abs(c.Pressure()-want) > 1e-9 {
		t.Fatalf("deadline-age dispatch wait moved pressure to %.4f, want %.4f",
			c.Pressure(), want)
	}

	// a pathological age is clamped: one sample can't inject more than 1.25
	c = newC()
	c.ObserveDispatchWait(10 * time.Second)
	if want := c.opts.Alpha * 1.25; math.Abs(c.Pressure()-want) > 1e-9 {
		t.Fatalf("clamped dispatch wait moved pressure to %.4f, want %.4f",
			c.Pressure(), want)
	}

	// a deadline shed carries its follower mass: one resolution that strands
	// 64 coalesced clients must move pressure like the crowd it shed, not
	// like one EWMA sample
	lone, crowd := newC(), newC()
	lone.ObserveOverloadShed(1)
	crowd.ObserveOverloadShed(64)
	if want := lone.opts.Alpha * 1.25; math.Abs(lone.Pressure()-want) > 1e-9 {
		t.Fatalf("mass-1 shed moved pressure to %.4f, want %.4f", lone.Pressure(), want)
	}
	if crowd.Pressure() < 1.0 {
		t.Fatalf("mass-64 shed moved pressure to %.4f, want near the 1.25 ceiling",
			crowd.Pressure())
	}

	// ladder-driven sheds stay excluded — at stage 3 every leader sheds, and
	// feeding those back in would hold the ladder up after the load is gone
	c = newC()
	c.ObserveShed()
	if c.Pressure() != 0 {
		t.Fatalf("ladder shed moved pressure to %.4f, want 0", c.Pressure())
	}
	if c.AdmissionSheds() != 1 {
		t.Fatalf("AdmissionSheds = %d, want 1", c.AdmissionSheds())
	}
}

// TestServeStage3ShedsAtEdgeButServesCache drives a real server pinned at
// stage 3: fresh leaders shed at admission without occupying queue
// capacity, while verdicts already cached keep being answered.
func TestServeStage3ShedsAtEdgeButServesCache(t *testing.T) {
	ac := NewAdmissionController(AdmissionOptions{Linger: FixedPolicy{D: time.Millisecond}})
	s := testServer(t, core.Options{}, Options{
		MaxBatch: 4, Workers: 1, Shards: 1, Policy: ac,
	})
	frames := synth.SampleFrames(3, 5)
	// warm a verdict into the cache at stage 0
	if res := s.Submit(frames[0]); res.Status != StatusClassified {
		t.Fatalf("warm submit resolved %v", res.Status)
	}
	ac.stage.Store(int32(BrownoutShed))
	// hold the pressure at the ceiling so AdmitQueue's evaluate cannot
	// release the pinned stage mid-test
	ac.pressure.Store(pressureBits(1.0))
	if res := s.Submit(frames[0]); res.Status != StatusCached {
		t.Fatalf("cached verdict at stage 3 resolved %v, want cached", res.Status)
	}
	if res := s.Submit(frames[1]); res.Status != StatusShed {
		t.Fatalf("fresh leader at stage 3 resolved %v, want shed", res.Status)
	}
	if got := ac.AdmissionSheds(); got < 1 {
		t.Fatalf("admission sheds = %d, want >= 1", got)
	}
	// shed waits land in the shed histogram, not the latency histogram
	if n := s.Metrics().ShedWaitMS.N(); n < 1 {
		t.Fatalf("shed wait histogram empty after an admission shed")
	}
	lat := s.Metrics().LatencyMS.N()
	if res := s.Submit(frames[2]); res.Status != StatusShed {
		t.Fatalf("second fresh leader resolved %v, want shed", res.Status)
	}
	if got := s.Metrics().LatencyMS.N(); got != lat {
		t.Fatalf("shed resolution leaked into LatencyMS: %d -> %d", lat, got)
	}
}

// TestServeAdmissionDeadlineShedsBlockedSubmitter covers the
// deadline-at-admission bugfix: a submitter blocked on a full queue past
// the shed deadline sheds instead of waiting to be shed at dispatch.
func TestServeAdmissionDeadlineShedsBlockedSubmitter(t *testing.T) {
	// a backend this slow with queue depth 1 jams the lone shard instantly
	s := testServer(t, core.Options{}, Options{
		MaxBatch: 1, Workers: 1, Shards: 1, QueueDepth: 1,
		Deadline: 30 * time.Millisecond,
		Backend:  slowBackend{d: 300 * time.Millisecond, res: 16},
	})
	frames := synth.SampleFrames(6, 9)
	var wg sync.WaitGroup
	sheds := make(chan time.Duration, len(frames))
	for _, f := range frames {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			if res := s.Submit(f); res.Status == StatusShed {
				sheds <- time.Since(start)
			}
		}()
	}
	wg.Wait()
	close(sheds)
	n, fast := 0, 0
	for took := range sheds {
		n++
		if took < 250*time.Millisecond {
			fast++
		}
	}
	if n == 0 {
		t.Fatal("no submission shed despite a jammed queue")
	}
	// requests already inside the pipeline legitimately shed late at
	// dispatch; the admission fix is about the ones still blocked at the
	// queue door — they must resolve around one deadline, not after the
	// pipeline drains (a model pass is 10x the deadline here). The old
	// dispatch-only shedding resolved every one of these at >= 300ms.
	if fast < 2 {
		t.Fatalf("only %d/%d sheds resolved within 250ms — submitters blocked past the admission deadline", fast, n)
	}
}

func TestAdmissionExpose(t *testing.T) {
	c, _ := testController(AdmissionOptions{Linger: FixedPolicy{D: time.Millisecond}})
	out := c.Expose()
	for _, want := range []string{
		"percival_serve_brownout_stage 0",
		"percival_serve_admission_pressure",
		"percival_serve_brownout_transitions_total 0",
		"percival_serve_admission_sheds_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Expose output missing %q:\n%s", want, out)
		}
	}
}
