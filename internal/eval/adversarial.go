package eval

import (
	"fmt"
	"math"

	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/nn"
	"percival/internal/synth"
	"percival/internal/tensor"
)

// AdvRow is one ε level of the adversarial probe.
type AdvRow struct {
	Epsilon float64
	// EvasionRate is the fraction of correctly-blocked ads that flip to
	// "not ad" under an FGSM perturbation of magnitude ε (in [0,1] pixel
	// units).
	EvasionRate float64
	// MeanDrop is the average decrease in p(ad) over the probed set.
	MeanDrop float64
	Probed   int
}

// AdvReport quantifies the §6/§7 discussion: perceptual ad blockers are
// susceptible to adversarial perturbations (Tramèr et al.). The paper raises
// the threat without measuring it; this probe characterizes our model's
// exposure with single-step FGSM, the weakest practical attack.
type AdvReport struct{ Rows []AdvRow }

// Adversarial runs the FGSM probe at several ε levels against ads the model
// currently blocks.
func (h *Harness) Adversarial() (*AdvReport, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	g := synth.NewGenerator(h.Seed+200, synth.CrawlStyle())
	// collect ads the model blocks (correct verdicts only)
	var inputs []*tensor.Tensor
	var baseProb []float64
	for len(inputs) < h.n(40) {
		ad := g.Ad()
		x := imaging.PrepareInput(ad, h.Res)
		p := adProb(net, x)
		if p >= 0.5 {
			inputs = append(inputs, x)
			baseProb = append(baseProb, p)
		}
	}
	rep := &AdvReport{}
	for _, eps := range []float64{0.005, 0.01, 0.02, 0.05} {
		row := AdvRow{Epsilon: eps, Probed: len(inputs)}
		var drop float64
		evaded := 0
		for i, x := range inputs {
			adv := fgsm(net, x, float32(eps))
			p := adProb(net, adv)
			drop += baseProb[i] - p
			if p < 0.5 {
				evaded++
			}
		}
		row.EvasionRate = float64(evaded) / float64(len(inputs))
		row.MeanDrop = drop / float64(len(inputs))
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// adProb runs inference and returns p(ad).
func adProb(net *nn.Sequential, x *tensor.Tensor) float64 {
	probs := tensor.Softmax(net.Forward(x.Clone(), false))
	return float64(probs.Data[1])
}

// fgsm computes x - ε·sign(∂p(ad)/∂x), clamped to [0,1]: the attacker
// minimizes the ad logit with one gradient step.
func fgsm(net *nn.Sequential, x *tensor.Tensor, eps float32) *tensor.Tensor {
	logits := net.Forward(x.Clone(), true)
	dl := tensor.New(logits.Shape...)
	dl.Data[1] = 1
	grad := net.Backward(dl)
	adv := x.Clone()
	for i, g := range grad.Data {
		switch {
		case g > 0:
			adv.Data[i] -= eps
		case g < 0:
			adv.Data[i] += eps
		}
		if adv.Data[i] < 0 {
			adv.Data[i] = 0
		}
		if adv.Data[i] > 1 {
			adv.Data[i] = 1
		}
	}
	return adv
}

// Table renders the probe.
func (r *AdvReport) Table() string {
	t := metrics.Table{Header: []string{"epsilon (pixel units)", "evasion rate", "mean p(ad) drop", "probed ads"}}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.3f (~%.0f/255)", row.Epsilon, math.Round(row.Epsilon*255)),
			metrics.Pct(row.EvasionRate),
			metrics.F3(row.MeanDrop),
			fmt.Sprintf("%d", row.Probed),
		)
	}
	return t.String() + "single-step FGSM against the ad logit; the paper (§7) flags this\nthreat without measuring it — larger ε or iterated attacks evade more.\n"
}
