package eval

import (
	"fmt"
	"time"

	"percival/internal/core"
	"percival/internal/dataset"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/synth"
)

// QuantReport compares the FP32 and INT8 inference engines side by side:
// accuracy on the synthetic eval set, top-1 agreement, model size, and
// per-frame latency.
type QuantReport struct {
	FP32, INT8     metrics.Confusion
	Agreement      float64 // FP32-vs-INT8 top-1 agreement on the eval set
	ParityGate     float64 // agreement measured by the core parity gate
	Active         bool    // whether the gate activated the INT8 engine
	FP32MS, INT8MS float64 // mean per-frame classification latency
	FP32MB, INT8MB float64
	SampleCount    int
}

// quantCalibFrames is how many synthetic frames feed calibration and the
// core parity gate.
const quantCalibFrames = 64

// Quant evaluates the INT8 quantized engine against FP32 on the synthetic
// eval distribution: both services share the same trained model; the
// quantized one calibrates and parity-gates on a held-out frame sample.
func (h *Harness) Quant() (*QuantReport, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	fp32, err := core.New(net, h.arch, core.Options{Mode: core.Synchronous, DisableCache: true})
	if err != nil {
		return nil, err
	}
	g := synth.NewGenerator(h.Seed+160, synth.CrawlStyle())
	calib := make([]*imaging.Bitmap, quantCalibFrames)
	for i := range calib {
		calib[i], _ = g.Sample()
	}
	int8svc, err := core.New(net, h.arch, core.Options{
		Mode: core.Synchronous, DisableCache: true,
		Quantized: true, CalibFrames: calib,
	})
	if err != nil {
		return nil, err
	}

	n := h.n(250)
	d := dataset.Generate(h.Seed+161, synth.CrawlStyle(), n*2)
	rep := &QuantReport{
		ParityGate:  int8svc.ParityAgreement(),
		Active:      int8svc.QuantizedActive(),
		FP32MB:      float64(fp32.ModelSizeBytes()) / (1 << 20),
		INT8MB:      float64(int8svc.QuantizedModelSizeBytes()) / (1 << 20),
		SampleCount: d.Len(),
	}
	agree := 0
	thr := fp32.Threshold()
	startFP := time.Now()
	fpScores := make([]float64, d.Len())
	for i := range d.Samples {
		fpScores[i] = fp32.Classify(d.Samples[i].Image)
	}
	rep.FP32MS = time.Since(startFP).Seconds() * 1000 / float64(d.Len())
	startQ := time.Now()
	for i := range d.Samples {
		q := int8svc.Classify(d.Samples[i].Image)
		isAd := d.Samples[i].Label == dataset.Ad
		rep.FP32.Add(fpScores[i] >= thr, isAd)
		rep.INT8.Add(q >= thr, isAd)
		if (fpScores[i] >= thr) == (q >= thr) {
			agree++
		}
	}
	rep.INT8MS = time.Since(startQ).Seconds() * 1000 / float64(d.Len())
	rep.Agreement = float64(agree) / float64(d.Len())
	h.logf("quant: parity gate %.3f (active=%v), eval agreement %.3f\n",
		rep.ParityGate, rep.Active, rep.Agreement)
	return rep, nil
}

// Table renders the FP32-vs-INT8 comparison.
func (r *QuantReport) Table() string {
	t := metrics.Table{Header: []string{"Engine", "Acc.", "Precision", "Recall", "F1", "Model (MB)", "ms/frame"}}
	t.AddRow("FP32", metrics.F3(r.FP32.Accuracy()), metrics.F3(r.FP32.Precision()),
		metrics.F3(r.FP32.Recall()), metrics.F3(r.FP32.F1()),
		fmt.Sprintf("%.2f", r.FP32MB), fmt.Sprintf("%.2f", r.FP32MS))
	t.AddRow("INT8", metrics.F3(r.INT8.Accuracy()), metrics.F3(r.INT8.Precision()),
		metrics.F3(r.INT8.Recall()), metrics.F3(r.INT8.F1()),
		fmt.Sprintf("%.2f", r.INT8MB), fmt.Sprintf("%.2f", r.INT8MS))
	return t.String() + fmt.Sprintf(
		"accuracy delta %+.4f; verdict agreement %.2f%% over %d samples; parity gate %.2f%% (int8 active: %v)\n",
		r.INT8.Accuracy()-r.FP32.Accuracy(), r.Agreement*100, r.SampleCount, r.ParityGate*100, r.Active)
}
