package eval

import (
	"fmt"
	"io"
	"sort"
)

// Tabler is any experiment report that renders a paper-style table.
type Tabler interface{ Table() string }

// Experiment names accepted by Run.
const (
	ExpFig3  = "fig3"
	ExpFig4  = "fig4"
	ExpFig6  = "fig6"
	ExpFig7  = "fig7"
	ExpFig8  = "fig8"
	ExpFig9  = "fig9"
	ExpFig10 = "fig10"
	ExpFig13 = "fig13"
	ExpFig14 = "fig14"
	ExpFig15 = "fig15"
	ExpCrawl = "crawl"
	ExpAsync = "async"
	ExpAdv   = "adversarial"
	ExpObf   = "obfuscation"
	ExpQuant = "quant"
)

// Experiments lists every runnable experiment id in presentation order.
func Experiments() []string {
	return []string{
		ExpFig3, ExpFig4, ExpFig6, ExpFig7, ExpFig8, ExpFig9,
		ExpFig10, ExpFig13, ExpFig14, ExpFig15, ExpCrawl, ExpAsync,
		ExpAdv, ExpObf, ExpQuant,
	}
}

// titles maps experiment ids to the paper artifacts they regenerate.
var titles = map[string]string{
	ExpFig3:  "Fig. 3 — architecture and model-size comparison",
	ExpFig4:  "Fig. 4 — Grad-CAM salience maps",
	ExpFig6:  "Fig. 6 — EasyList coverage of the corpus",
	ExpFig7:  "Fig. 7 — replicating EasyList labels",
	ExpFig8:  "Fig. 8 — external (Hussain et al.) dataset",
	ExpFig9:  "Fig. 9 — non-English languages",
	ExpFig10: "Fig. 10 — Facebook ads and sponsored content",
	ExpFig13: "Fig. 13 — Google Image Search probes",
	ExpFig14: "Fig. 14 — render-time distributions",
	ExpFig15: "Fig. 15 — render-time overhead",
	ExpCrawl: "§4.4 — crawler methodology comparison",
	ExpAsync: "§1/§6 — async classification with memoization",
	ExpAdv:   "§6/§7 — adversarial (FGSM) exposure probe",
	ExpObf:   "§2.2/§7 — overlay-mask obfuscation vs element-based blocking",
	ExpQuant: "INT8 — quantized engine vs FP32 (accuracy delta, latency)",
}

// Title returns the human-readable title for an experiment id.
func Title(id string) string { return titles[id] }

// Run executes one experiment by id and returns its report.
func (h *Harness) Run(id string) (Tabler, error) {
	switch id {
	case ExpFig3:
		return h.Fig3()
	case ExpFig4:
		return h.Fig4()
	case ExpFig6:
		return h.Fig6()
	case ExpFig7:
		return h.Fig7()
	case ExpFig8:
		return h.Fig8()
	case ExpFig9:
		return h.Fig9()
	case ExpFig10:
		return h.Fig10()
	case ExpFig13:
		return h.Fig13()
	case ExpFig14:
		return h.Fig14()
	case ExpFig15:
		f14, err := h.Fig14()
		if err != nil {
			return nil, err
		}
		return h.Fig15(f14)
	case ExpCrawl:
		return h.CrawlComparison()
	case ExpAsync:
		return h.AsyncMemoization()
	case ExpAdv:
		return h.Adversarial()
	case ExpObf:
		return h.Obfuscation()
	case ExpQuant:
		return h.Quant()
	default:
		return nil, fmt.Errorf("eval: unknown experiment %q (known: %v)", id, Experiments())
	}
}

// RunAll executes every experiment in order, writing each table to w.
// Fig. 14's report is reused for Fig. 15 so pages render once.
func (h *Harness) RunAll(w io.Writer) error {
	var f14 *Fig14Report
	for _, id := range Experiments() {
		fmt.Fprintf(w, "\n=== %s ===\n", Title(id))
		var rep Tabler
		var err error
		switch id {
		case ExpFig14:
			f14, err = h.Fig14()
			rep = f14
		case ExpFig15:
			if f14 == nil {
				if f14, err = h.Fig14(); err != nil {
					return err
				}
			}
			rep, err = h.Fig15(f14)
		default:
			rep, err = h.Run(id)
		}
		if err != nil {
			return fmt.Errorf("eval: %s: %w", id, err)
		}
		fmt.Fprint(w, rep.Table())
	}
	return nil
}

// SortedTitles returns "id: title" lines for CLI help.
func SortedTitles() []string {
	out := make([]string, 0, len(titles))
	for id, t := range titles {
		out = append(out, id+": "+t)
	}
	sort.Strings(out)
	return out
}
