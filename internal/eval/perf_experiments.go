package eval

import (
	"fmt"

	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/easylist"
	"percival/internal/metrics"
	"percival/internal/webgen"
)

// PerfCondition is one of the four Fig. 14 curves.
type PerfCondition struct {
	Name      string
	Latencies *metrics.Latencies
}

// Fig14Report holds the render-time distributions for the four browser
// configurations (Chromium, Chromium+PERCIVAL, Brave, Brave+PERCIVAL).
type Fig14Report struct {
	Conditions []PerfCondition
	PagesEach  int
}

// Fig15Row is one overhead row (baseline vs treatment).
type Fig15Row struct {
	Baseline, Treatment string
	OverheadPct         float64
	OverheadMS          float64
}

// Fig15Report derives the median-overhead table from the Fig. 14 runs.
type Fig15Report struct{ Rows []Fig15Row }

// fig14Repeats is how many times each page renders per condition; keeping
// the fastest sample filters wall-clock noise (GC, scheduler) that would
// otherwise swamp the classifier's few-millisecond in-path cost at reduced
// resolution. The paper renders once per page but at 224px, where the model
// costs 11 ms/image and noise is relatively negligible.
const fig14Repeats = 3

// Fig14 renders the top-N synthetic sites under all four conditions with
// synchronous in-path classification (the paper's treatment) and collects
// the domLoading→domComplete distribution.
func (h *Harness) Fig14() (*Fig14Report, error) {
	corpus := webgen.NewCorpus(h.Seed+140, h.n(40))
	list, errs := easylist.Parse(corpus.SyntheticEasyList())
	if len(errs) > 0 {
		return nil, fmt.Errorf("eval: list: %v", errs)
	}
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs[0]) // landing pages, like the paper
	}

	// classify-every-image treatment: memoization off so repeats measure the
	// model's true in-path cost
	mkInspector := func() (*core.Percival, error) {
		net, err := h.Model()
		if err != nil {
			return nil, err
		}
		return core.New(net, h.arch, core.Options{Mode: core.Synchronous, DisableCache: true})
	}

	conditions := []struct {
		name    string
		profile browser.Profile
		insp    bool
	}{
		{"Chromium", browser.Chromium(), false},
		{"Chromium+PERCIVAL", browser.Chromium(), true},
		{"Brave", browser.Brave(list), false},
		{"Brave+PERCIVAL", browser.Brave(list), true},
	}
	rep := &Fig14Report{PagesEach: len(pages)}
	for _, cond := range conditions {
		cfg := browser.Config{Profile: cond.profile, Corpus: corpus}
		if cond.insp {
			svc, err := mkInspector()
			if err != nil {
				return nil, err
			}
			cfg.Inspector = svc
		}
		b, err := browser.New(cfg)
		if err != nil {
			return nil, err
		}
		lat := &metrics.Latencies{}
		for _, u := range pages {
			best := 0.0
			for rep := 0; rep < fig14Repeats; rep++ {
				res, err := b.Render(u, 0)
				if err != nil {
					return nil, fmt.Errorf("eval: %s render %s: %w", cond.name, u, err)
				}
				if rep == 0 || res.RenderTimeMS < best {
					best = res.RenderTimeMS
				}
			}
			lat.Add(best)
		}
		rep.Conditions = append(rep.Conditions, PerfCondition{Name: cond.name, Latencies: lat})
		h.logf("fig14: %-18s median %.1f ms over %d pages\n", cond.name, lat.Median(), lat.N())
	}
	return rep, nil
}

// Table renders the Fig. 14 CDFs as aligned percentile columns.
func (r *Fig14Report) Table() string {
	t := metrics.Table{Header: []string{"Percentile"}}
	for _, c := range r.Conditions {
		t.Header = append(t.Header, c.Name+" (ms)")
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		row := []string{fmt.Sprintf("p%.0f", p)}
		for _, c := range r.Conditions {
			row = append(row, fmt.Sprintf("%.1f", c.Latencies.Percentile(p)))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// CDF exposes one condition's distribution for plotting.
func (r *Fig14Report) CDF(name string, points int) []metrics.CDFPoint {
	for _, c := range r.Conditions {
		if c.Name == name {
			return c.Latencies.CDF(points)
		}
	}
	return nil
}

// Fig15 derives the overhead table from a Fig. 14 report.
func (h *Harness) Fig15(f14 *Fig14Report) (*Fig15Report, error) {
	med := map[string]float64{}
	for _, c := range f14.Conditions {
		med[c.Name] = c.Latencies.Median()
	}
	rows := []Fig15Row{}
	for _, pair := range [][2]string{
		{"Chromium", "Chromium+PERCIVAL"},
		{"Brave", "Brave+PERCIVAL"},
	} {
		base, treat := med[pair[0]], med[pair[1]]
		if base == 0 {
			return nil, fmt.Errorf("eval: missing condition %q", pair[0])
		}
		rows = append(rows, Fig15Row{
			Baseline:    pair[0],
			Treatment:   pair[1],
			OverheadPct: (treat - base) / base * 100,
			OverheadMS:  treat - base,
		})
	}
	return &Fig15Report{Rows: rows}, nil
}

// Table renders the Fig. 15 overhead table.
func (r *Fig15Report) Table() string {
	t := metrics.Table{Header: []string{"Baseline", "Treatment", "Overhead (%)", "(ms)"}}
	for _, row := range r.Rows {
		t.AddRow(row.Baseline, row.Treatment,
			fmt.Sprintf("%.2f", row.OverheadPct), fmt.Sprintf("%.2f", row.OverheadMS))
	}
	return t.String()
}

// AsyncReport contrasts the two deployment modes (§1): synchronous blocking
// in the critical path versus asynchronous classification with memoization.
// The decisive metric is in-path inspector time: asynchronous mode moves the
// model's work off the rendering critical path (the same CPU is burned, but
// in the background).
type AsyncReport struct {
	SyncInPathMS    float64 // cumulative InspectFrame time, sync mode
	AsyncInPathMS   float64 // cumulative InspectFrame time, async mode
	SyncMedianMS    float64 // median per-page compute, sync
	AsyncMedianMS   float64 // median per-page compute, async
	FirstVisitAds   int     // ads that rendered during async first visits
	SecondVisitAds  int     // static ads still rendering on revisit
	CacheHitsSecond int64
}

// AsyncMemoization renders a page set twice under each mode: asynchronous
// mode must be cheaper in-path, and after the first visit its memoized
// verdicts must block on the revisit.
func (h *Harness) AsyncMemoization() (*AsyncReport, error) {
	corpus := webgen.NewCorpus(h.Seed+150, h.n(15))
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs[0])
	}
	rep := &AsyncReport{}

	// synchronous pass
	syncSvc, err := h.Service(core.Synchronous)
	if err != nil {
		return nil, err
	}
	bSync, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: syncSvc})
	syncLat := &metrics.Latencies{}
	for _, u := range pages {
		res, err := bSync.Render(u, 0)
		if err != nil {
			return nil, err
		}
		syncLat.Add(res.ComputeMS)
	}
	rep.SyncMedianMS = syncLat.Median()
	rep.SyncInPathMS = syncSvc.Stats().InPathMS

	// asynchronous first visit
	asyncSvc, err := h.Service(core.Asynchronous)
	if err != nil {
		return nil, err
	}
	bAsync, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: asyncSvc})
	asyncLat := &metrics.Latencies{}
	for _, u := range pages {
		res, err := bAsync.Render(u, 0)
		if err != nil {
			return nil, err
		}
		asyncLat.Add(res.ComputeMS)
		for _, ri := range res.Images {
			if ri.Spec.IsAd && !ri.BlockedByInspector {
				rep.FirstVisitAds++
			}
		}
	}
	rep.AsyncMedianMS = asyncLat.Median()
	rep.AsyncInPathMS = asyncSvc.Stats().InPathMS
	asyncSvc.Drain() // browser idle: background classification completes

	// revisit: memoized verdicts now block (fresh browser = fresh raster
	// caches; the service cache persists like a profile would)
	hitsBefore := asyncSvc.Stats().CacheHits
	bAsync2, _ := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: asyncSvc})
	for _, u := range pages {
		res, err := bAsync2.Render(u, 0)
		if err != nil {
			return nil, err
		}
		for _, ri := range res.Images {
			if ri.Spec.IsAd && !ri.BlockedByInspector && ri.Spec.RefreshMS == 0 {
				rep.SecondVisitAds++
			}
		}
	}
	rep.CacheHitsSecond = asyncSvc.Stats().CacheHits - hitsBefore
	return rep, nil
}

// Table renders the async-mode comparison.
func (r *AsyncReport) Table() string {
	t := metrics.Table{Header: []string{"Mode", "In-path inspector (ms)", "Median page compute (ms)", "Ads shown (1st visit)", "Static ads shown (revisit)"}}
	t.AddRow("synchronous", fmt.Sprintf("%.2f", r.SyncInPathMS), fmt.Sprintf("%.2f", r.SyncMedianMS), "0", "0")
	t.AddRow("asynchronous", fmt.Sprintf("%.2f", r.AsyncInPathMS), fmt.Sprintf("%.2f", r.AsyncMedianMS),
		fmt.Sprintf("%d", r.FirstVisitAds), fmt.Sprintf("%d", r.SecondVisitAds))
	return t.String() + fmt.Sprintf("revisit cache hits: %d\n", r.CacheHitsSecond)
}
