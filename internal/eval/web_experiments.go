package eval

import (
	"fmt"
	"strings"

	"percival/internal/core"
	"percival/internal/crawler"
	"percival/internal/dataset"
	"percival/internal/dom"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/synth"
	"percival/internal/webgen"
)

// Fig6Report measures how much of the synthetic news-site corpus EasyList
// covers (Fig. 6: CSS rules matched 20.2% of 5,000 elements, network rules
// 31.1% of 5,000 requests).
type Fig6Report struct {
	CSSElements int
	CSSMatched  int
	NetRequests int
	NetMatched  int
}

// Fig6 applies the synthetic EasyList's cosmetic rules to page containers
// and its network rules to image requests across the news-site corpus.
func (h *Harness) Fig6() (*Fig6Report, error) {
	corpus := webgen.NewCorpus(h.Seed+60, h.n(60))
	list, errs := easylist.Parse(corpus.SyntheticEasyList())
	if len(errs) > 0 {
		return nil, fmt.Errorf("eval: synthetic list: %v", errs)
	}
	r := &Fig6Report{}
	for _, site := range corpus.Sites {
		sel := list.HideSelectors(site.Domain)
		for _, u := range site.PageURLs {
			page, _ := corpus.Page(u)
			doc := parseDoc(page.HTML)
			for _, div := range doc.ByTag("div") {
				r.CSSElements++
				for _, s := range sel {
					if div.MatchesSelector(s) {
						r.CSSMatched++
						break
					}
				}
			}
			for _, spec := range page.Images {
				r.NetRequests++
				req := easylist.Request{
					URL: spec.URL, Domain: hostOf(spec.URL),
					PageDomain: site.Domain, Type: easylist.TypeImage,
				}
				if list.ShouldBlock(req) {
					r.NetMatched++
				}
			}
		}
	}
	return r, nil
}

// Table renders the Fig. 6 rows.
func (r *Fig6Report) Table() string {
	t := metrics.Table{Header: []string{"Dataset", "Size", "Matched rules"}}
	t.AddRow("CSS rules", fmt.Sprintf("%d", r.CSSElements), metrics.Pct(float64(r.CSSMatched)/float64(maxi(r.CSSElements, 1))))
	t.AddRow("Network", fmt.Sprintf("%d", r.NetRequests), metrics.Pct(float64(r.NetMatched)/float64(maxi(r.NetRequests, 1))))
	return t.String()
}

// Fig7Report measures how well PERCIVAL replicates EasyList labels on a
// traditional-crawl screenshot dataset (Fig. 7: acc 96.76%, precision
// 97.76%, recall 95.72% over 6,930 images).
type Fig7Report struct {
	Confusion     metrics.Confusion
	Images        int
	AdsIdentified int
}

// Fig7 crawls the corpus with the screenshot crawler (EasyList labels) and
// tests whether the model reproduces those labels. The paper's methodology
// includes a manual post-processing pass ("manually labelled them to
// identify the false positives"); we simulate it by dropping samples whose
// EasyList label contradicts generation-time ground truth — mostly
// first-party and unlisted-network ads that EasyList cannot see, which a
// human annotator would have relabelled.
func (h *Harness) Fig7() (*Fig7Report, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	corpus := webgen.NewCorpus(h.Seed+70, h.n(50))
	list, _ := easylist.Parse(corpus.SyntheticEasyList())
	tc := &crawler.Traditional{Corpus: corpus, List: list, ScreenshotDelayMS: 10_000}
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs...)
	}
	ds, truth, _, err := tc.Crawl(pages)
	if err != nil {
		return nil, err
	}
	// manual-cleanup simulation: keep samples whose EasyList label agrees
	// with ground truth (mostly dropping first-party and unlisted-network
	// ads that EasyList mislabels as non-ads)
	cleaned := &dataset.Dataset{}
	adsIdentified := 0
	for i, s := range ds.Samples {
		if s.Label == truth[i] {
			cleaned.Samples = append(cleaned.Samples, s)
			if s.Label == dataset.Ad {
				adsIdentified++
			}
		}
	}
	c := dataset.Evaluate(net, h.Res, 0.5, cleaned)
	return &Fig7Report{Confusion: c, Images: cleaned.Len(), AdsIdentified: adsIdentified}, nil
}

// Table renders the Fig. 7 row.
func (r *Fig7Report) Table() string {
	t := metrics.Table{Header: []string{"Images", "Ads Identified", "Accuracy", "Precision", "Recall"}}
	t.AddRow(
		fmt.Sprintf("%d", r.Images),
		fmt.Sprintf("%d", r.AdsIdentified),
		metrics.Pct(r.Confusion.Accuracy()),
		metrics.Pct(r.Confusion.Precision()),
		metrics.Pct(r.Confusion.Recall()),
	)
	return t.String()
}

// LangResult is one Fig. 9 row.
type LangResult struct {
	Language      string
	ImagesCrawled int
	AdsIdentified int
	Confusion     metrics.Confusion
}

// Fig9Report is the language-agnostic evaluation (§5.5).
type Fig9Report struct{ Rows []LangResult }

// Fig9 evaluates the crawl-trained model on each regional distribution.
// Per-language set sizes mirror the paper's crawl proportions.
func (h *Harness) Fig9() (*Fig9Report, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	// paper set sizes /10: (crawled, ads)
	sizes := map[string][2]int{
		"arabic":  {500, 275},
		"spanish": {254, 31},
		"french":  {241, 37},
		"korean":  {430, 51},
		"chinese": {209, 53},
	}
	rep := &Fig9Report{}
	for _, lang := range synth.Languages() {
		style, _ := synth.LanguageStyle(lang)
		sz := sizes[lang]
		total, ads := h.n(sz[0]), h.n(sz[1])
		if ads >= total {
			ads = total / 2
		}
		d := dataset.GenerateUnbalanced(h.Seed+int64(len(lang))*977, style, ads, total-ads)
		c := dataset.Evaluate(net, h.Res, 0.5, d)
		rep.Rows = append(rep.Rows, LangResult{
			Language: lang, ImagesCrawled: total, AdsIdentified: ads, Confusion: c,
		})
	}
	return rep, nil
}

// Table renders the Fig. 9 table.
func (r *Fig9Report) Table() string {
	t := metrics.Table{Header: []string{"Language", "Images crawled", "Ads Identified", "Accuracy", "Precision", "Recall"}}
	for _, row := range r.Rows {
		t.AddRow(
			titleCase(row.Language),
			fmt.Sprintf("%d", row.ImagesCrawled),
			fmt.Sprintf("%d", row.AdsIdentified),
			metrics.Pct(row.Confusion.Accuracy()),
			metrics.F3(row.Confusion.Precision()),
			metrics.F3(row.Confusion.Recall()),
		)
	}
	return t.String()
}

// Fig10Report is the Facebook first-party evaluation (§5.3).
type Fig10Report struct {
	Sessions  int
	Confusion metrics.Confusion
}

// Fig10 browses simulated Facebook sessions (the paper browsed for 35 days)
// and classifies every feed unit's creative.
func (h *Harness) Fig10() (*Fig10Report, error) {
	svc, err := h.Service(core.Synchronous)
	if err != nil {
		return nil, err
	}
	corpus := webgen.NewCorpus(h.Seed+80, 2)
	sessions := h.n(35)
	var c metrics.Confusion
	for s := 1; s <= sessions; s++ {
		fs := corpus.GenerateFeedSession(s)
		for _, spec := range fs.Page.Images {
			frame := spec.Render(0)
			predictedAd := svc.IsAd(frame)
			c.Add(predictedAd, spec.IsAd)
		}
	}
	return &Fig10Report{Sessions: sessions, Confusion: c}, nil
}

// Table renders the Fig. 10 row.
func (r *Fig10Report) Table() string {
	c := r.Confusion
	t := metrics.Table{Header: []string{"Ads", "Non-ads", "Accuracy", "FP", "FN", "TP", "TN", "Precision", "Recall"}}
	t.AddRow(
		fmt.Sprintf("%d", c.TP+c.FN),
		fmt.Sprintf("%d", c.TN+c.FP),
		metrics.Pct(c.Accuracy()),
		fmt.Sprintf("%d", c.FP),
		fmt.Sprintf("%d", c.FN),
		fmt.Sprintf("%d", c.TP),
		fmt.Sprintf("%d", c.TN),
		metrics.F3(c.Precision()),
		metrics.F3(c.Recall()),
	)
	return t.String()
}

// QueryResult is one Fig. 13 row.
type QueryResult struct {
	Query    webgen.SearchQuery
	Blocked  int
	Rendered int
	FP, FN   int
}

// Fig13Report is the image-search probing experiment (§5.4).
type Fig13Report struct{ Rows []QueryResult }

// Fig13 classifies the top-100 image results for each Fig. 13 query.
func (h *Harness) Fig13() (*Fig13Report, error) {
	svc, err := h.Service(core.Synchronous)
	if err != nil {
		return nil, err
	}
	corpus := webgen.NewCorpus(h.Seed+90, 2)
	rep := &Fig13Report{}
	for _, q := range webgen.SearchQueries() {
		page := corpus.GenerateSearchResults(q, 100)
		row := QueryResult{Query: q}
		// Score the result page through the batched service path (which
		// amortizes pre-processing and keeps its arena warm), rendering one
		// chunk of creatives at a time so peak memory stays bounded.
		const renderChunk = 16
		for lo := 0; lo < len(page.Images); lo += renderChunk {
			hi := lo + renderChunk
			if hi > len(page.Images) {
				hi = len(page.Images)
			}
			frames := make([]*imaging.Bitmap, hi-lo)
			for i, spec := range page.Images[lo:hi] {
				frames[i] = spec.Render(0)
			}
			verdicts := svc.IsAdBatch(frames)
			for i, spec := range page.Images[lo:hi] {
				if verdicts[i] {
					row.Blocked++
					if !spec.IsAd {
						row.FP++
					}
				} else {
					row.Rendered++
					if spec.IsAd {
						row.FN++
					}
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Table renders the Fig. 13 table ("-" for unlabeled queries, as in the
// paper).
func (r *Fig13Report) Table() string {
	t := metrics.Table{Header: []string{"Search query", "Images blocked", "Images rendered", "FP", "FN"}}
	for _, row := range r.Rows {
		fp, fn := "-", "-"
		if row.Query.Labeled {
			fp, fn = fmt.Sprintf("%d", row.FP), fmt.Sprintf("%d", row.FN)
		}
		t.AddRow(row.Query.Name, fmt.Sprintf("%d", row.Blocked), fmt.Sprintf("%d", row.Rendered), fp, fn)
	}
	return t.String()
}

// CrawlReport summarizes the two crawler methodologies (§4.4).
type CrawlReport struct {
	TraditionalStats crawler.TraditionalStats
	TraditionalKept  int
	PipelineStats    crawler.PipelineStats
	PipelineKept     int
}

// CrawlComparison runs both crawlers over the same pages, dedups both
// datasets, and reports the §4.4 contrast: the screenshot crawler's
// white-space race versus the pipeline crawler's clean captures.
func (h *Harness) CrawlComparison() (*CrawlReport, error) {
	corpus := webgen.NewCorpus(h.Seed+95, h.n(30))
	list, _ := easylist.Parse(corpus.SyntheticEasyList())
	var pages []string
	for _, s := range corpus.Sites {
		pages = append(pages, s.PageURLs...)
	}
	tc := &crawler.Traditional{Corpus: corpus, List: list, ScreenshotDelayMS: 400}
	tds, _, tstats, err := tc.Crawl(pages)
	if err != nil {
		return nil, err
	}
	tds.Dedup(3)
	pc := &crawler.Pipeline{Corpus: corpus, Labeler: crawler.GroundTruthLabeler{Corpus: corpus}}
	pds, pstats, err := pc.Crawl(pages, 0)
	if err != nil {
		return nil, err
	}
	pds.Dedup(3)
	return &CrawlReport{
		TraditionalStats: tstats, TraditionalKept: tds.Len(),
		PipelineStats: pstats, PipelineKept: pds.Len(),
	}, nil
}

// Table renders the crawler comparison.
func (r *CrawlReport) Table() string {
	t := metrics.Table{Header: []string{"Crawler", "Captured", "White-space", "Kept after dedup"}}
	t.AddRow("traditional (screenshots)", fmt.Sprintf("%d", r.TraditionalStats.Elements),
		fmt.Sprintf("%d", r.TraditionalStats.Whitespace), fmt.Sprintf("%d", r.TraditionalKept))
	t.AddRow("percival (pipeline)", fmt.Sprintf("%d", r.PipelineStats.Captured),
		fmt.Sprintf("%d", r.PipelineStats.Whitespace), fmt.Sprintf("%d", r.PipelineKept))
	return t.String()
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// titleCase upper-cases the first ASCII letter (language names in Fig. 9).
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// hostOf extracts the host portion of a URL.
func hostOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// parseDoc parses page HTML into a DOM tree.
func parseDoc(html string) *dom.Node { return dom.Parse(html) }
