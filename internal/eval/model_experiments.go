package eval

import (
	"fmt"
	"strings"

	"percival/internal/dataset"
	"percival/internal/gradcam"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
	"percival/internal/zoo"
)

// Fig3Report compares the original SqueezeNet, PERCIVAL's fork, and the
// heavyweight baselines by size (Fig. 3 and the §1/§4.2 size claims).
type Fig3Report struct {
	Models                []zoo.ModelInfo
	ForkSizeMB            float64
	ForkCompressedMB      float64
	OriginalSizeMB        float64
	CompressionVsSentinel float64
}

// Fig3 runs the architecture/size comparison.
func (h *Harness) Fig3() (*Fig3Report, error) {
	fork, err := squeezenet.Build(squeezenet.PaperConfig())
	if err != nil {
		return nil, err
	}
	orig := squeezenet.BuildOriginal(squeezenet.OriginalSqueezeNet())
	r := &Fig3Report{
		Models:                zoo.Catalog(),
		ForkSizeMB:            float64(nn.SizeBytes(fork)) / (1 << 20),
		ForkCompressedMB:      float64(nn.SizeBytes(fork)) / 2 / (1 << 20),
		OriginalSizeMB:        float64(nn.SizeBytes(orig)) / (1 << 20),
		CompressionVsSentinel: zoo.CompressionFactor("YOLOv2 (Sentinel)", true),
	}
	return r, nil
}

// Table renders the Fig. 3 comparison.
func (r *Fig3Report) Table() string {
	t := metrics.Table{Header: []string{"Model", "Params", "Size (MB)", "Mobile-deployable"}}
	for _, m := range r.Models {
		t.AddRow(m.Name, fmt.Sprintf("%d", m.Params), fmt.Sprintf("%.2f", m.SizeMB), fmt.Sprintf("%v", m.Deployable))
	}
	return t.String() + fmt.Sprintf(
		"fork %.2f MB (%.2f MB compressed) vs original %.2f MB; %.0fx smaller than Sentinel-class (paper: 74x)\n",
		r.ForkSizeMB, r.ForkCompressedMB, r.OriginalSizeMB, r.CompressionVsSentinel)
}

// Fig4Report carries the Grad-CAM salience outputs for one ad and one
// non-ad sample at two depths (the paper shows layers 5 and 9).
type Fig4Report struct {
	AdShallow, AdDeep       *gradcam.Heatmap
	NonAdDeep               *gradcam.Heatmap
	AdChoicesSalience       float64 // mean salience in the AdChoices corner
	BackgroundSalience      float64 // mean salience elsewhere on the ad
	ShallowLayer, DeepLayer int
}

// Fig4 computes salience maps on a banner ad (with its AdChoices marker in
// the top-right corner) and a content image.
func (h *Harness) Fig4() (*Fig4Report, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	// pick two conv/fire depths analogous to the paper's layer 5 / layer 9
	shallow, deep := 3, 6 // fire1, fire3 in the fork's layer list
	g := synth.NewGenerator(h.Seed+40, synth.CrawlStyle())
	var ad *imaging.Bitmap
	for i := 0; i < 50; i++ {
		cand := g.Ad()
		if cand.W >= cand.H { // prefer wide banner with corner marker
			ad = cand
			break
		}
	}
	if ad == nil {
		ad = g.Ad()
	}
	nonAd := g.NonAd()

	adX := imaging.PrepareInput(ad, h.Res)
	adShallow, err := gradcam.Compute(net, adX.Clone(), shallow, dataset.Ad)
	if err != nil {
		return nil, err
	}
	adDeep, err := gradcam.Compute(net, adX.Clone(), deep, dataset.Ad)
	if err != nil {
		return nil, err
	}
	nonX := imaging.PrepareInput(nonAd, h.Res)
	nonDeep, err := gradcam.Compute(net, nonX, deep, dataset.Ad)
	if err != nil {
		return nil, err
	}
	up := adDeep.Upsample(h.Res, h.Res)
	corner := up.MeanSalience(h.Res*3/4, 0, h.Res, h.Res/4)
	rest := up.MeanSalience(0, h.Res/4, h.Res, h.Res)
	return &Fig4Report{
		AdShallow: adShallow, AdDeep: adDeep, NonAdDeep: nonDeep,
		AdChoicesSalience: corner, BackgroundSalience: rest,
		ShallowLayer: shallow, DeepLayer: deep,
	}, nil
}

// Table renders the salience summary plus ASCII maps.
func (r *Fig4Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Grad-CAM (ad, layer %d):\n%s\n", r.DeepLayer, r.AdDeep.ASCII())
	fmt.Fprintf(&sb, "Grad-CAM (non-ad, layer %d):\n%s\n", r.DeepLayer, r.NonAdDeep.ASCII())
	fmt.Fprintf(&sb, "ad-corner salience %.3f vs elsewhere %.3f\n", r.AdChoicesSalience, r.BackgroundSalience)
	return sb.String()
}

// Fig8Report is the external-dataset validation (§5.1): accuracy, model
// size, per-image latency, precision, recall, F1 on the Hussain-style set.
type Fig8Report struct {
	Confusion   metrics.Confusion
	SizeMB      float64
	AvgTimeMS   float64
	SampleCount int
}

// Fig8 trains on the crawl distribution (the shared model) and tests on the
// shifted external distribution.
func (h *Harness) Fig8() (*Fig8Report, error) {
	svc, err := h.Service(0)
	if err != nil {
		return nil, err
	}
	n := h.n(502) // paper: 5,024 at 10x scale
	d := dataset.Generate(h.Seed+50, synth.ExternalStyle(), n*2)
	net, _ := h.Model()
	c := dataset.Evaluate(net, h.Res, 0.5, d)
	// measure per-frame latency through the service path
	g := synth.NewGenerator(h.Seed+51, synth.ExternalStyle())
	for i := 0; i < 20; i++ {
		img, _ := g.Sample()
		svc.Classify(img)
	}
	stats := svc.Stats()
	return &Fig8Report{
		Confusion:   c,
		SizeMB:      float64(svc.ModelSizeBytes()) / (1 << 20),
		AvgTimeMS:   stats.AvgClassifyMS,
		SampleCount: d.Len(),
	}, nil
}

// Table renders the Fig. 8 row.
func (r *Fig8Report) Table() string {
	t := metrics.Table{Header: []string{"Size (images)", "Acc.", "Size", "Avg. time", "Precision", "Recall", "F1"}}
	t.AddRow(
		fmt.Sprintf("%d", r.SampleCount),
		metrics.F3(r.Confusion.Accuracy()),
		fmt.Sprintf("%.2f MB", r.SizeMB),
		fmt.Sprintf("%.1f ms", r.AvgTimeMS),
		metrics.F3(r.Confusion.Precision()),
		metrics.F3(r.Confusion.Recall()),
		metrics.F3(r.Confusion.F1()),
	)
	return t.String()
}
