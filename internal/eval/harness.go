// Package eval reproduces every table and figure in the paper's evaluation
// (Section 5). Each experiment is a method on Harness that returns a typed
// report and can render itself as a paper-style table; percival-eval and the
// repository benchmarks are thin wrappers around these runners.
//
// Experiments run at a reduced input resolution and corpus scale by default
// so the whole suite completes on CPU in minutes; Res/Scale raise both
// toward paper scale. EXPERIMENTS.md records paper-versus-measured numbers.
package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"percival/internal/core"
	"percival/internal/dataset"
	"percival/internal/metrics"
	"percival/internal/nn"
	"percival/internal/squeezenet"
	"percival/internal/synth"
)

// Harness owns the shared state of an evaluation run: the trained model and
// the scaling knobs.
type Harness struct {
	// Res is the network input resolution (paper: 224; default 32).
	Res int
	// Scale multiplies evaluation-set sizes (1.0 = the reduced default;
	// paper-scale sets are ~10× larger).
	Scale float64
	// TrainSamples sizes the synthetic training crawl.
	TrainSamples int
	// Epochs is the training budget.
	Epochs int
	// Seed drives all randomness.
	Seed int64
	// Out receives progress lines (nil = silent).
	Out io.Writer

	once  sync.Once
	model *nn.Sequential
	arch  squeezenet.Config
	err   error
}

// NewHarness returns a harness with the reduced-scale defaults.
func NewHarness(out io.Writer) *Harness {
	return &Harness{
		Res:          32,
		Scale:        1,
		TrainSamples: 700,
		Epochs:       8,
		Seed:         1,
		Out:          out,
	}
}

func (h *Harness) logf(format string, args ...any) {
	if h.Out != nil {
		fmt.Fprintf(h.Out, format, args...)
	}
}

// n scales an evaluation-set size.
func (h *Harness) n(base int) int {
	v := int(float64(base) * h.Scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Arch returns the architecture in use (training it first if needed).
func (h *Harness) Arch() (squeezenet.Config, error) {
	if _, err := h.Model(); err != nil {
		return squeezenet.Config{}, err
	}
	return h.arch, nil
}

// Model returns the shared trained network, training it on first use on the
// synthetic crawl distribution (§4.4.2's final dataset stands in here).
func (h *Harness) Model() (*nn.Sequential, error) {
	h.once.Do(func() {
		if h.Res >= 224 {
			h.arch = squeezenet.PaperConfig()
		} else {
			h.arch = squeezenet.SmallConfig(h.Res)
		}
		h.logf("training %s on %d synthetic crawl samples (%d epochs)...\n",
			h.arch.Name, h.TrainSamples, h.Epochs)
		train := dataset.Generate(h.Seed+100, synth.CrawlStyle(), h.TrainSamples)
		train.Dedup(2)
		train.Balance(rand.New(rand.NewSource(h.Seed + 101)))
		cfg := dataset.FastTraining(h.arch, h.Epochs)
		cfg.Seed = h.Seed
		cfg.Log = h.Out
		h.model, h.err = dataset.Train(cfg, train)
	})
	return h.model, h.err
}

// Service wraps the shared model in a PERCIVAL classifier service.
func (h *Harness) Service(mode core.Mode) (*core.Percival, error) {
	net, err := h.Model()
	if err != nil {
		return nil, err
	}
	return core.New(net, h.arch, core.Options{Mode: mode})
}

// evaluateStyle classifies a generated dataset and returns its confusion.
func (h *Harness) evaluateStyle(style synth.Style, nAds, nNonAds int) (metrics.Confusion, error) {
	net, err := h.Model()
	if err != nil {
		return metrics.Confusion{}, err
	}
	d := dataset.GenerateUnbalanced(h.Seed+int64(len(style.Name))*31, style, nAds, nNonAds)
	return dataset.Evaluate(net, h.Res, 0.5, d), nil
}
