package eval

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"percival/internal/synth"
)

func crawlStyleForTest() synth.Style { return synth.CrawlStyle() }

var (
	testOnce sync.Once
	testH    *Harness
)

// testHarness shares one small trained model across the package's tests.
func testHarness(t *testing.T) *Harness {
	t.Helper()
	if testing.Short() {
		t.Skip("eval experiments need a trained model")
	}
	testOnce.Do(func() {
		testH = NewHarness(nil)
		testH.Scale = 0.3
		testH.TrainSamples = 450
		testH.Epochs = 6
	})
	if _, err := testH.Model(); err != nil {
		t.Fatal(err)
	}
	return testH
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Fatalf("%d experiments", len(Experiments()))
	}
	for _, id := range Experiments() {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
	if len(SortedTitles()) != len(Experiments()) {
		t.Fatal("SortedTitles incomplete")
	}
}

func TestAdversarialProbeShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.Adversarial()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d epsilon levels", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Epsilon <= r.Rows[i-1].Epsilon {
			t.Fatal("epsilons must increase")
		}
		// evasion is (weakly) monotone in perturbation budget
		if r.Rows[i].EvasionRate+0.11 < r.Rows[i-1].EvasionRate {
			t.Fatalf("evasion dropped sharply with larger epsilon: %+v", r.Rows)
		}
	}
	// the largest budget must achieve meaningful evasion (the §7 threat is real)
	if last := r.Rows[len(r.Rows)-1]; last.EvasionRate == 0 && last.MeanDrop <= 0 {
		t.Fatalf("FGSM had no effect at eps=%.3f", last.Epsilon)
	}
	if !strings.Contains(r.Table(), "FGSM") {
		t.Fatal("table malformed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	h := NewHarness(nil)
	if _, err := h.Run("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig3SizesMatchPaperShape(t *testing.T) {
	h := NewHarness(nil) // fig3 needs no trained model
	r, err := h.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.ForkSizeMB >= 2 {
		t.Fatalf("fork %.2f MB, paper requires <2", r.ForkSizeMB)
	}
	if r.OriginalSizeMB < 4 || r.OriginalSizeMB > 6 {
		t.Fatalf("original %.2f MB, paper says ~4.8", r.OriginalSizeMB)
	}
	if r.CompressionVsSentinel < 74 {
		t.Fatalf("compression %.0fx, paper reports 74x", r.CompressionVsSentinel)
	}
	if !strings.Contains(r.Table(), "PERCIVAL fork") {
		t.Fatal("table missing fork row")
	}
}

func TestFig4SalienceDiffersAcrossClasses(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.AdDeep == nil || r.NonAdDeep == nil || r.AdShallow == nil {
		t.Fatal("missing heatmaps")
	}
	// the ad map must carry salience mass (the model fires on ad cues)
	var adMass, nonMass float64
	for _, v := range r.AdDeep.Data {
		adMass += v
	}
	for _, v := range r.NonAdDeep.Data {
		nonMass += v
	}
	if adMass <= 0 {
		t.Fatal("ad heatmap empty")
	}
	if !strings.Contains(r.Table(), "Grad-CAM") {
		t.Fatal("table malformed")
	}
	_ = nonMass
}

func TestFig6CoverageNearPaper(t *testing.T) {
	h := NewHarness(nil) // no model needed
	h.Scale = 0.3
	r, err := h.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	css := float64(r.CSSMatched) / float64(r.CSSElements)
	net := float64(r.NetMatched) / float64(r.NetRequests)
	// paper: 20.2% and 31.1%; allow a generous band — lists cover a
	// minority of elements but a larger share of requests
	if css < 0.10 || css > 0.35 {
		t.Fatalf("css coverage %.3f outside plausible band", css)
	}
	if net < 0.18 || net > 0.45 {
		t.Fatalf("network coverage %.3f outside plausible band", net)
	}
	if net <= css {
		t.Fatalf("network coverage (%.3f) should exceed CSS coverage (%.3f), as in Fig. 6", net, css)
	}
}

func TestFig7ReplicatesEasyList(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Images == 0 || r.AdsIdentified == 0 {
		t.Fatal("empty evaluation set")
	}
	// paper: 96.76% with a full training run; the test harness trains a
	// much smaller model, so only the gross shape is asserted here (the
	// default-scale numbers live in EXPERIMENTS.md)
	if acc := r.Confusion.Accuracy(); acc < 0.78 {
		t.Fatalf("replication accuracy %.3f too low", acc)
	}
	if p := r.Confusion.Precision(); p < 0.65 {
		t.Fatalf("precision %.3f too low", p)
	}
}

func TestFig8ExternalGeneralization(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// paper: 0.877 accuracy across a distribution shift
	if acc := r.Confusion.Accuracy(); acc < 0.7 {
		t.Fatalf("external accuracy %.3f too low", acc)
	}
	if r.AvgTimeMS <= 0 || r.SizeMB <= 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	// the distribution shift must cost accuracy relative to in-distribution
	crawl, err := h.evaluateStyle(crawlStyleForTest(), 150, 150)
	if err != nil {
		t.Fatal(err)
	}
	if r.Confusion.Accuracy() > crawl.Accuracy()+0.05 {
		t.Fatalf("external (%.3f) should not beat in-distribution (%.3f)",
			r.Confusion.Accuracy(), crawl.Accuracy())
	}
}

func TestFig9LanguageShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d language rows", len(r.Rows))
	}
	acc := map[string]float64{}
	for _, row := range r.Rows {
		acc[row.Language] = row.Confusion.Accuracy()
		if row.Confusion.Accuracy() < 0.5 {
			t.Fatalf("%s below chance", row.Language)
		}
	}
	// the paper's ordering: Latin-script languages beat CJK and Arabic
	if acc["spanish"] <= acc["korean"] || acc["french"] <= acc["chinese"] {
		t.Fatalf("language ordering violated: %+v", acc)
	}
}

func TestFig10FacebookShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	c := r.Confusion
	if c.Total() == 0 {
		t.Fatal("no feed units")
	}
	// feed is ad-light, like the paper's 354 vs 1830
	if c.TP+c.FN >= c.TN+c.FP {
		t.Fatal("feed should contain more organic than sponsored units")
	}
	// recall is limited by organic-looking sponsored posts (paper: 0.7)
	if rec := c.Recall(); rec > 0.95 {
		t.Fatalf("facebook recall %.3f implausibly high — hard ads not hard", rec)
	}
	if acc := c.Accuracy(); acc < 0.75 {
		t.Fatalf("facebook accuracy %.3f too low", acc)
	}
}

func TestFig13SearchIntentOrdering(t *testing.T) {
	h := testHarness(t)
	r, err := h.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	blocked := map[string]int{}
	for _, row := range r.Rows {
		blocked[row.Query.Name] = row.Blocked
		if row.Blocked+row.Rendered != 100 {
			t.Fatalf("%s: %d+%d != 100", row.Query.Name, row.Blocked, row.Rendered)
		}
	}
	// high-intent queries must be blocked far more than low-intent ones
	if blocked["Advertisement"] <= blocked["Obama"] {
		t.Fatal("Advertisement should block more than Obama")
	}
	if blocked["Advertisement"] < 70 {
		t.Fatalf("Advertisement blocked only %d/100", blocked["Advertisement"])
	}
	if blocked["Obama"] > 30 {
		t.Fatalf("Obama blocked %d/100 — too many false positives", blocked["Obama"])
	}
	if !strings.Contains(r.Table(), "-") {
		t.Fatal("unlabeled queries should print '-' for FP/FN")
	}
}

func TestFig14And15OverheadShape(t *testing.T) {
	h := testHarness(t)
	f14, err := h.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(f14.Conditions) != 4 {
		t.Fatalf("%d conditions", len(f14.Conditions))
	}
	med := map[string]float64{}
	for _, c := range f14.Conditions {
		if c.Latencies.N() != f14.PagesEach {
			t.Fatalf("%s measured %d pages, want %d", c.Name, c.Latencies.N(), f14.PagesEach)
		}
		med[c.Name] = c.Latencies.Median()
	}
	// Brave's blocklist strips requests, so its baseline renders faster
	if med["Brave"] >= med["Chromium"] {
		t.Fatalf("Brave median %.1f should beat Chromium %.1f", med["Brave"], med["Chromium"])
	}
	f15, err := h.Fig15(f14)
	if err != nil {
		t.Fatal(err)
	}
	if len(f15.Rows) != 2 {
		t.Fatalf("%d overhead rows", len(f15.Rows))
	}
	for _, row := range f15.Rows {
		// in-path classification costs something but not the world
		if row.OverheadPct < -5 || row.OverheadPct > 60 {
			t.Fatalf("%s overhead %.2f%% implausible", row.Treatment, row.OverheadPct)
		}
	}
	if f14.CDF("Chromium", 5) == nil || f14.CDF("nope", 5) != nil {
		t.Fatal("CDF accessor broken")
	}
}

func TestCrawlComparisonShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.CrawlComparison()
	if err != nil {
		t.Fatal(err)
	}
	if r.TraditionalStats.Whitespace == 0 {
		t.Fatal("traditional crawler should race some iframes at 400ms")
	}
	if r.PipelineStats.Whitespace != 0 {
		t.Fatal("pipeline crawler cannot produce whitespace")
	}
	if r.PipelineKept <= 0 || r.TraditionalKept <= 0 {
		t.Fatal("degenerate kept counts")
	}
}

func TestAsyncMemoizationShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.AsyncMemoization()
	if err != nil {
		t.Fatal(err)
	}
	// async mode's whole point: less in-path time than sync
	if r.AsyncInPathMS >= r.SyncInPathMS {
		t.Fatalf("async in-path %.2f >= sync %.2f", r.AsyncInPathMS, r.SyncInPathMS)
	}
	if r.FirstVisitAds == 0 {
		t.Fatal("async first visits must render some ads")
	}
	if r.SecondVisitAds >= r.FirstVisitAds {
		t.Fatalf("memoization ineffective: %d ads on revisit vs %d first visit",
			r.SecondVisitAds, r.FirstVisitAds)
	}
	if r.CacheHitsSecond == 0 {
		t.Fatal("revisit produced no cache hits")
	}
}

func TestObfuscationAttackShape(t *testing.T) {
	h := testHarness(t)
	r, err := h.Obfuscation()
	if err != nil {
		t.Fatal(err)
	}
	if r.AdsClean == 0 || r.AdsAttacked == 0 {
		t.Fatal("no ads probed")
	}
	// the §2.2/§7 claim: the overlay attack must hurt the element-based
	// blocker substantially more than it hurts PERCIVAL
	elementDrop := r.CleanElement - r.AttackedElement
	percivalDrop := r.CleanPercival - r.AttackedPercival
	if elementDrop < 0.2 {
		t.Fatalf("overlay attack barely moved the element blocker: clean %.2f attacked %.2f",
			r.CleanElement, r.AttackedElement)
	}
	if percivalDrop > elementDrop/2 {
		t.Fatalf("percival degraded too much under the attack: drop %.2f vs element %.2f",
			percivalDrop, elementDrop)
	}
}

func TestQuantParityAndSpeed(t *testing.T) {
	h := testHarness(t)
	r, err := h.Quant()
	if err != nil {
		t.Fatal(err)
	}
	if r.SampleCount == 0 {
		t.Fatal("empty evaluation set")
	}
	// The INT8 engine must stay within a small accuracy delta of FP32 and
	// agree on nearly every verdict. The parity gate may legitimately fall
	// back to FP32 on a marginally-trained harness model, but only near the
	// threshold — a deep disagreement would mean broken quantization.
	if !r.Active {
		if r.ParityGate < 0.95 {
			t.Fatalf("parity gate agreement %.3f: quantization badly broken", r.ParityGate)
		}
		t.Skipf("parity gate fell back to FP32 at agreement %.3f (within tolerance)", r.ParityGate)
	}
	// The reduced-scale harness model leaves many samples near the decision
	// boundary, so the bounds here are loose; the default-scale numbers
	// (+0.006 accuracy, 99% agreement) are tracked in BENCH_2.json.
	if d := r.INT8.Accuracy() - r.FP32.Accuracy(); d < -0.06 {
		t.Fatalf("INT8 accuracy regressed by %.4f", -d)
	}
	if r.Agreement < 0.90 {
		t.Fatalf("verdict agreement %.3f too low", r.Agreement)
	}
	if r.INT8MB <= 0 || r.INT8MB >= r.FP32MB {
		t.Fatalf("INT8 model %.3f MB should be below FP32 %.3f MB", r.INT8MB, r.FP32MB)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	h := testHarness(t)
	var buf bytes.Buffer
	if err := h.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range Experiments() {
		if !strings.Contains(out, Title(id)) {
			t.Fatalf("output missing section %q", Title(id))
		}
	}
}

func TestHarnessScaling(t *testing.T) {
	h := NewHarness(nil)
	h.Scale = 2
	if h.n(10) != 20 {
		t.Fatalf("n(10) = %d", h.n(10))
	}
	h.Scale = 0.0001
	if h.n(10) != 8 {
		t.Fatalf("minimum clamp: %d", h.n(10))
	}
}
