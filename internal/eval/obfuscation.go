package eval

import (
	"fmt"

	"percival/internal/browser"
	"percival/internal/core"
	"percival/internal/elementblocker"
	"percival/internal/imaging"
	"percival/internal/metrics"
	"percival/internal/webgen"
)

// ObfuscationReport quantifies the §2.2/§7 contrast: an element-based
// perceptual blocker (screenshot-of-rendered-box) versus PERCIVAL
// (decoded-frame hook) on pages whose ads hide behind CSS overlay masks.
type ObfuscationReport struct {
	// Clean is each blocker's ad recall on unmasked pages.
	CleanElement, CleanPercival float64
	// Attacked is the recall on overlay-attack pages.
	AttackedElement, AttackedPercival float64
	AdsClean, AdsAttacked             int
}

// Obfuscation runs both blockers over clean pages and overlay-attack pages.
func (h *Harness) Obfuscation() (*ObfuscationReport, error) {
	svc, err := h.Service(core.Synchronous)
	if err != nil {
		return nil, err
	}
	corpus := webgen.NewCorpus(h.Seed+160, 6)
	classify := func(b *imaging.Bitmap) bool { return svc.IsAd(b) }
	eb := &elementblocker.Blocker{Corpus: corpus, Classify: classify}

	rep := &ObfuscationReport{}

	// clean pages: landing pages of the normal corpus
	var cleanE, cleanP metrics.Confusion
	for _, site := range corpus.TopSites(6) {
		url := site.PageURLs[0]
		verdicts, err := eb.Scan(url)
		if err != nil {
			return nil, err
		}
		for _, v := range verdicts {
			cleanE.Add(v.Flagged, v.IsAdTruth)
		}
		if err := h.percivalConfusion(svc, corpus, url, &cleanP); err != nil {
			return nil, err
		}
	}

	// attack pages: every ad carries an overlay mask
	var atkE, atkP metrics.Confusion
	for i := 0; i < 6; i++ {
		page := corpus.GenerateAttackPage(i)
		verdicts, err := eb.Scan(page.URL)
		if err != nil {
			return nil, err
		}
		for _, v := range verdicts {
			atkE.Add(v.Flagged, v.IsAdTruth)
		}
		if err := h.percivalConfusion(svc, corpus, page.URL, &atkP); err != nil {
			return nil, err
		}
	}
	rep.CleanElement = cleanE.Recall()
	rep.CleanPercival = cleanP.Recall()
	rep.AttackedElement = atkE.Recall()
	rep.AttackedPercival = atkP.Recall()
	rep.AdsClean = cleanP.TP + cleanP.FN
	rep.AdsAttacked = atkP.TP + atkP.FN
	return rep, nil
}

// percivalConfusion renders the page with PERCIVAL installed and records
// per-ad blocking outcomes into c.
func (h *Harness) percivalConfusion(svc *core.Percival, corpus *webgen.Corpus, url string, c *metrics.Confusion) error {
	b, err := browser.New(browser.Config{Profile: browser.Chromium(), Corpus: corpus, Inspector: svc})
	if err != nil {
		return err
	}
	res, err := b.Render(url, 0)
	if err != nil {
		return fmt.Errorf("eval: render %s: %w", url, err)
	}
	for _, ri := range res.Images {
		c.Add(ri.BlockedByInspector, ri.Spec.IsAd)
	}
	return nil
}

// Table renders the obfuscation comparison.
func (r *ObfuscationReport) Table() string {
	t := metrics.Table{Header: []string{"Blocker", "Recall (clean pages)", "Recall (overlay attack)"}}
	t.AddRow("element-based (Ad Highlighter-style)", metrics.Pct(r.CleanElement), metrics.Pct(r.AttackedElement))
	t.AddRow("PERCIVAL (decoded-frame hook)", metrics.Pct(r.CleanPercival), metrics.Pct(r.AttackedPercival))
	return t.String() + fmt.Sprintf(
		"ads probed: %d clean, %d attacked. Overlay masks perturb the rendered\ncomposite that element-based blockers screenshot; PERCIVAL classifies the\nunmodified decoded buffers (§2.2, §7) and is unaffected.\n",
		r.AdsClean, r.AdsAttacked)
}
