// Package browser simulates the renderer process the paper instruments
// (§2.1, §3): it fetches a document from the synthetic web, builds the DOM,
// resolves sub-documents (iframes) and images through a latency-modelled
// network, lays the page out, and rasterizes it on a worker pool with
// PERCIVAL's frame inspector installed at the decode/raster choke point.
//
// Two profiles mirror the §5.7 evaluation: a Chromium profile (no request
// blocking) and a Brave profile (filter-list "shields" that drop matching
// requests before fetch and hide matching containers before layout).
//
// Render time is reported the way the paper measures it — the
// domLoading→domComplete interval — as simulated network milliseconds plus
// measured compute milliseconds for parse, layout, decode, classification
// and raster.
package browser

import (
	"fmt"
	"strings"
	"time"

	"percival/internal/dom"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/layout"
	"percival/internal/raster"
	"percival/internal/serve"
	"percival/internal/webgen"
)

// Profile selects the browser configuration under test.
type Profile struct {
	// Name labels the profile in reports ("Chromium", "Brave").
	Name string
	// Shields enables filter-list request blocking and element hiding.
	Shields bool
	// List is the active filter list when Shields is on.
	List *easylist.List
}

// Chromium returns the stock profile: no request blocking.
func Chromium() Profile { return Profile{Name: "Chromium"} }

// Brave returns the shields-on profile backed by the given list.
func Brave(list *easylist.List) Profile {
	return Profile{Name: "Brave", Shields: true, List: list}
}

// Config assembles a browser instance.
type Config struct {
	Profile Profile
	Corpus  *webgen.Corpus
	// Inspector is PERCIVAL's hook; nil renders the baseline.
	Inspector raster.FrameInspector
	// AsyncServe selects the asynchronous inspection mode: every image is
	// submitted to the (possibly sharded) micro-batching classification
	// service the moment its pixels are materialized — before layout — so
	// classification runs concurrently with layout and rasterization, and
	// the raster-time inspector merely resolves the in-flight verdict.
	// Deployment shape (shard count, backend selection, adaptive batching)
	// is the server's own serve.Options; the browser is agnostic to it —
	// including when the server's dispatch shards proxy forward passes to
	// remote model processes (serve.Options.Backend = engine.RemoteBackend
	// or a RemotePool, the `percival-serve -peers` topology). Shed verdicts
	// fail open (the frame renders), and a remote transport failure
	// surfaces the same way: verdict unknown, frame rendered, never a
	// blocked page. Mutually exclusive with Inspector.
	AsyncServe *serve.Server
	// RasterWorkers sizes the raster thread pool (default 4, Chromium's
	// desktop default).
	RasterWorkers int
	// ViewportW defaults to layout.DefaultViewportW.
	ViewportW int
}

// Browser is a configured renderer-process simulator.
type Browser struct {
	cfg Config
}

// New constructs a Browser.
func New(cfg Config) (*Browser, error) {
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("browser: config needs a corpus")
	}
	if cfg.Profile.Shields && cfg.Profile.List == nil {
		return nil, fmt.Errorf("browser: shields profile needs a filter list")
	}
	if cfg.Inspector != nil && cfg.AsyncServe != nil {
		return nil, fmt.Errorf("browser: Inspector and AsyncServe are mutually exclusive")
	}
	if cfg.RasterWorkers == 0 {
		cfg.RasterWorkers = 4
	}
	if cfg.ViewportW == 0 {
		cfg.ViewportW = layout.DefaultViewportW
	}
	return &Browser{cfg: cfg}, nil
}

// RenderedImage records the fate of one image resource during a render.
type RenderedImage struct {
	Spec *webgen.ImageSpec
	// ChainDelayMS is the virtual time from navigation start until the
	// image's pixels were available (frame fetch + image fetch for iframe
	// creatives).
	ChainDelayMS float64
	// BlockedByList marks requests dropped by shields before fetch.
	BlockedByList bool
	// BlockedByInspector marks frames cleared by PERCIVAL at raster time.
	BlockedByInspector bool
}

// RenderResult is the outcome of one page render.
type RenderResult struct {
	URL     string
	Surface *imaging.Bitmap
	// RenderTimeMS is the domLoading→domComplete interval: NetworkMS +
	// ComputeMS.
	RenderTimeMS float64
	// NetworkMS is the simulated fetch critical path.
	NetworkMS float64
	// ComputeMS is measured parse/layout/decode/classify/raster time.
	ComputeMS float64
	// Images lists every image resource considered.
	Images []RenderedImage
	// HiddenContainers counts elements removed by cosmetic rules.
	HiddenContainers int
	// Stats carries raster-stage counters.
	Stats raster.DecodeStats
	// DocHeight is the laid-out document height.
	DocHeight int
}

// hostOf extracts the host from a URL.
func hostOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// htmlLatencyMS models the document fetch time.
func htmlLatencyMS(url string) float64 {
	// deterministic per-URL jitter in [60, 360)
	h := 0
	for i := 0; i < len(url); i++ {
		h = h*31 + int(url[i])
	}
	if h < 0 {
		h = -h
	}
	return 60 + float64(h%300)
}

// Render loads and renders the page at url. epoch selects creative rotations
// for refreshing ad iframes (0 on first visit).
func (b *Browser) Render(url string, epoch int) (*RenderResult, error) {
	page, ok := b.cfg.Corpus.Page(url)
	if !ok {
		return nil, fmt.Errorf("browser: no such page %q", url)
	}
	res := &RenderResult{URL: url}
	pageDomain := hostOf(url)

	// --- network phase (virtual time) ---
	res.NetworkMS = htmlLatencyMS(url)
	computeStart := time.Now()
	doc := dom.Parse(page.HTML)

	// shields: element hiding strips matched containers before layout
	if b.cfg.Profile.Shields {
		res.HiddenContainers = hideElements(doc, b.cfg.Profile.List, pageDomain)
	}

	// resolve frames and images
	type fetched struct {
		spec  *webgen.ImageSpec
		chain float64
	}
	resolve := map[string]fetched{} // src -> spec+timing
	var maxChain float64

	blockReq := func(spec *webgen.ImageSpec, frameURL string, reqType easylist.RequestType) bool {
		if !b.cfg.Profile.Shields {
			return false
		}
		target := spec.URL
		if reqType == easylist.TypeSubdocument {
			target = frameURL
		}
		req := easylist.Request{
			URL:        target,
			Domain:     hostOf(target),
			PageDomain: pageDomain,
			Type:       reqType,
		}
		return b.cfg.Profile.List.ShouldBlock(req)
	}

	// direct images on the main document
	for _, node := range doc.ByTag("img") {
		src := node.Attrs["src"]
		spec, ok := b.cfg.Corpus.Image(src)
		if !ok {
			continue
		}
		ri := RenderedImage{Spec: spec, ChainDelayMS: spec.LoadDelayMS}
		if blockReq(spec, "", easylist.TypeImage) {
			ri.BlockedByList = true
			node.Attrs["src"] = "" // request dropped; slot collapses
		} else {
			resolve[src] = fetched{spec, spec.LoadDelayMS}
			if spec.LoadDelayMS > maxChain {
				maxChain = spec.LoadDelayMS
			}
		}
		res.Images = append(res.Images, ri)
	}
	// iframes: fetch the sub-document, then its creative
	for _, node := range doc.ByTag("iframe") {
		frameURL := node.Attrs["src"]
		sub, ok := b.cfg.Corpus.Page(frameURL)
		if !ok || len(sub.Images) == 0 {
			continue
		}
		spec := sub.Images[0]
		chain := spec.LoadDelayMS // frame latency folded into creative delay
		ri := RenderedImage{Spec: spec, ChainDelayMS: chain}
		if blockReq(spec, frameURL, easylist.TypeSubdocument) || blockReq(spec, "", easylist.TypeImage) {
			ri.BlockedByList = true
			node.Attrs["src"] = ""
		} else {
			// rewrite the frame slot into the creative image for rasterization
			node.Attrs["src"] = spec.URL
			resolve[spec.URL] = fetched{spec, chain}
			if chain > maxChain {
				maxChain = chain
			}
		}
		res.Images = append(res.Images, ri)
	}
	res.NetworkMS += maxChain

	// materialize encoded bytes outside the timed compute section: encoding
	// is an artifact of the simulation, not browser work
	encoded := map[string][]byte{}
	dims := map[string][2]int{}
	var futures map[string]*serve.Future
	if b.cfg.AsyncServe != nil {
		futures = make(map[string]*serve.Future, len(resolve))
	}
	for src, f := range resolve {
		bm := f.spec.Render(epoch)
		if futures != nil {
			// async inspection: classification is in flight from the moment
			// pixels exist, overlapping layout and rasterization below
			futures[src] = b.cfg.AsyncServe.SubmitAsync(bm)
		}
		data, err := imaging.Encode(bm, f.spec.Format)
		if err != nil {
			return nil, fmt.Errorf("browser: encode %s: %w", src, err)
		}
		encoded[src] = data
		dims[src] = [2]int{bm.W, bm.H}
	}

	// --- compute phase (measured) ---
	sizer := func(src string) (int, int, bool) {
		d, ok := dims[src]
		if !ok {
			return 0, 0, false
		}
		return d[0], d[1], true
	}
	box := layout.Layout(doc, b.cfg.ViewportW, sizer)
	items := layout.BuildDisplayList(box)
	// drop image items whose request was blocked (src cleared above)
	kept := items[:0]
	for _, it := range items {
		if it.Kind == layout.ItemImage && it.Src == "" {
			continue
		}
		kept = append(kept, it)
	}
	items = kept

	fetchFn := func(src string) ([]byte, bool) {
		data, ok := encoded[src]
		return data, ok
	}
	inspector := b.cfg.Inspector
	if futures != nil {
		inspector = &futureInspector{futures: futures}
	}
	r := raster.NewRasterizer(b.cfg.RasterWorkers, fetchFn, inspector)
	h := box.H
	if h < 1 {
		h = 1
	}
	surface, stats, err := r.Raster(items, b.cfg.ViewportW, h)
	if err != nil {
		return nil, fmt.Errorf("browser: raster %s: %w", url, err)
	}
	res.ComputeMS = float64(time.Since(computeStart).Microseconds()) / 1000
	res.Surface = surface
	res.Stats = stats
	res.DocHeight = box.H
	res.RenderTimeMS = res.NetworkMS + res.ComputeMS

	// mark inspector-blocked creatives
	if stats.Blocked > 0 {
		for i := range res.Images {
			ri := &res.Images[i]
			if ri.BlockedByList {
				continue
			}
			if b.wasCleared(r, ri.Spec.URL) {
				ri.BlockedByInspector = true
			}
		}
	}
	return res, nil
}

// futureInspector is the raster.FrameInspector installed in asynchronous
// inspection mode: the frame's classification has been in flight since its
// pixels were materialized, so raster workers only resolve the verdict
// future — in-path time is the residual wait, not a model run. A shed
// verdict (service overloaded) fails open and the frame renders.
type futureInspector struct {
	futures map[string]*serve.Future
}

func (fi *futureInspector) InspectFrame(src string, frame *imaging.Bitmap) bool {
	fut, ok := fi.futures[src]
	if !ok {
		return false
	}
	return fut.Wait().Ad
}

// wasCleared asks the rasterizer's decode cache whether the frame ended up
// blocked.
func (b *Browser) wasCleared(r *raster.Rasterizer, src string) bool {
	return r.WasBlocked(src)
}

// hideElements removes containers matched by the list's cosmetic rules,
// returning how many were dropped.
func hideElements(doc *dom.Node, list *easylist.List, pageDomain string) int {
	selectors := list.HideSelectors(pageDomain)
	hidden := 0
	for _, sel := range selectors {
		for _, n := range doc.QuerySelectorAll(sel) {
			if n.Parent == nil {
				continue
			}
			siblings := n.Parent.Children
			for i, c := range siblings {
				if c == n {
					n.Parent.Children = append(siblings[:i], siblings[i+1:]...)
					hidden++
					break
				}
			}
		}
	}
	return hidden
}
