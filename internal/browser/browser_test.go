package browser

import (
	"strings"
	"sync/atomic"
	"testing"

	"percival/internal/core"
	"percival/internal/easylist"
	"percival/internal/imaging"
	"percival/internal/raster"
	"percival/internal/serve"
	"percival/internal/squeezenet"
	"percival/internal/webgen"
)

func corpusAndList(t *testing.T, seed int64, sites int) (*webgen.Corpus, *easylist.List) {
	t.Helper()
	c := webgen.NewCorpus(seed, sites)
	list, errs := easylist.Parse(c.SyntheticEasyList())
	if len(errs) > 0 {
		t.Fatalf("list errors: %v", errs)
	}
	return c, list
}

func firstPage(c *webgen.Corpus) string { return c.Sites[0].PageURLs[0] }

// countingInspector flags every ad creative via ground truth (an oracle
// classifier) and counts invocations.
type countingInspector struct {
	corpus   *webgen.Corpus
	inspects atomic.Int64
}

func (ci *countingInspector) InspectFrame(src string, frame *imaging.Bitmap) bool {
	ci.inspects.Add(1)
	spec, ok := ci.corpus.Image(src)
	return ok && spec.IsAd
}

func TestRenderBaselineChromium(t *testing.T) {
	c, _ := corpusAndList(t, 1, 5)
	b, err := New(Config{Profile: Chromium(), Corpus: c})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Render(firstPage(c), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surface == nil || res.DocHeight <= 0 {
		t.Fatal("no surface rendered")
	}
	if res.RenderTimeMS <= res.NetworkMS || res.NetworkMS <= 0 {
		t.Fatalf("timing wrong: render %v network %v", res.RenderTimeMS, res.NetworkMS)
	}
	if len(res.Images) == 0 {
		t.Fatal("no images considered")
	}
	for _, ri := range res.Images {
		if ri.BlockedByList {
			t.Fatal("chromium profile must not block requests")
		}
	}
}

func TestRenderUnknownURL(t *testing.T) {
	c, _ := corpusAndList(t, 2, 2)
	b, _ := New(Config{Profile: Chromium(), Corpus: c})
	if _, err := b.Render("http://nope.example/x.html", 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Profile: Chromium()}); err == nil {
		t.Fatal("nil corpus must fail")
	}
	c, _ := corpusAndList(t, 3, 2)
	if _, err := New(Config{Profile: Profile{Name: "Brave", Shields: true}, Corpus: c}); err == nil {
		t.Fatal("shields without list must fail")
	}
}

func TestBraveShieldsBlockListedRequests(t *testing.T) {
	c, list := corpusAndList(t, 4, 20)
	brave, _ := New(Config{Profile: Brave(list), Corpus: c})
	chromium, _ := New(Config{Profile: Chromium(), Corpus: c})

	var listBlocked, totalListedAds int
	for _, site := range c.TopSites(20) {
		for _, u := range site.PageURLs {
			res, err := brave.Render(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, ri := range res.Images {
				if ri.Spec.Kind == webgen.KindAdImg || ri.Spec.Kind == webgen.KindAdFrame {
					if isListed(c, ri.Spec.Network) {
						totalListedAds++
						if ri.BlockedByList {
							listBlocked++
						}
					}
				}
				if ri.Spec.Kind == webgen.KindFirstPartyAd && ri.BlockedByList {
					t.Fatal("list should not catch first-party ads")
				}
				if ri.Spec.Kind == webgen.KindContent && ri.BlockedByList {
					t.Fatal("list should not block content")
				}
			}
			// same page in chromium must fetch strictly more images
			cres, err := chromium.Render(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Decodes > cres.Stats.Decodes {
				t.Fatal("brave should decode fewer or equal images than chromium")
			}
		}
	}
	if totalListedAds == 0 {
		t.Fatal("no listed ads in corpus")
	}
	if listBlocked != totalListedAds {
		t.Fatalf("shields blocked %d/%d listed ads", listBlocked, totalListedAds)
	}
}

func isListed(c *webgen.Corpus, network string) bool {
	for _, n := range c.Networks {
		if n.Domain == network {
			return n.Listed
		}
	}
	return false
}

func TestInspectorBlocksAdsAtRasterTime(t *testing.T) {
	c, _ := corpusAndList(t, 5, 10)
	oracle := &countingInspector{corpus: c}
	b, _ := New(Config{Profile: Chromium(), Corpus: c, Inspector: oracle})
	var adFrames, blocked int
	for _, site := range c.TopSites(10) {
		res, err := b.Render(site.PageURLs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ri := range res.Images {
			if ri.Spec.IsAd {
				adFrames++
				if ri.BlockedByInspector {
					blocked++
				}
			} else if ri.BlockedByInspector {
				t.Fatalf("content %s blocked by oracle", ri.Spec.URL)
			}
		}
	}
	if adFrames == 0 {
		t.Fatal("no ads rendered")
	}
	if blocked != adFrames {
		t.Fatalf("oracle blocked %d/%d ads", blocked, adFrames)
	}
}

func TestInspectorSeesFirstPartyAdsThatListsMiss(t *testing.T) {
	// The paper's headline capability: PERCIVAL blocks first-party ads that
	// slip through Brave's shields.
	c, list := corpusAndList(t, 6, 15)
	oracle := &countingInspector{corpus: c}
	b, _ := New(Config{Profile: Brave(list), Corpus: c, Inspector: oracle})
	var firstPartySeen, firstPartyBlocked int
	for _, site := range c.TopSites(15) {
		for _, u := range site.PageURLs {
			res, err := b.Render(u, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, ri := range res.Images {
				if ri.Spec.Kind == webgen.KindFirstPartyAd {
					firstPartySeen++
					if ri.BlockedByInspector {
						firstPartyBlocked++
					}
					if ri.BlockedByList {
						t.Fatal("list unexpectedly caught first-party ad")
					}
				}
			}
		}
	}
	if firstPartySeen == 0 {
		t.Fatal("no first-party ads in corpus")
	}
	if firstPartyBlocked != firstPartySeen {
		t.Fatalf("inspector blocked %d/%d first-party ads", firstPartyBlocked, firstPartySeen)
	}
}

func TestCosmeticHidingReducesContainers(t *testing.T) {
	c, list := corpusAndList(t, 7, 10)
	brave, _ := New(Config{Profile: Brave(list), Corpus: c})
	hiddenTotal := 0
	for _, site := range c.TopSites(10) {
		res, err := brave.Render(site.PageURLs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		hiddenTotal += res.HiddenContainers
	}
	if hiddenTotal == 0 {
		t.Fatal("cosmetic rules hid nothing across 10 sites")
	}
}

func TestRenderTimeIncludesNetworkCriticalPath(t *testing.T) {
	c, _ := corpusAndList(t, 8, 3)
	b, _ := New(Config{Profile: Chromium(), Corpus: c})
	res, err := b.Render(firstPage(c), 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxDelay float64
	for _, ri := range res.Images {
		if !ri.BlockedByList && ri.ChainDelayMS > maxDelay {
			maxDelay = ri.ChainDelayMS
		}
	}
	if res.NetworkMS < maxDelay {
		t.Fatalf("network %v < slowest image %v", res.NetworkMS, maxDelay)
	}
}

func TestEpochChangesRotatingCreatives(t *testing.T) {
	c, _ := corpusAndList(t, 9, 15)
	b, _ := New(Config{Profile: Chromium(), Corpus: c})
	var url string
	for _, site := range c.TopSites(15) {
		for _, u := range site.PageURLs {
			p, _ := c.Page(u)
			for _, s := range p.Images {
				if s.RefreshMS > 0 {
					url = u
				}
			}
		}
	}
	if url == "" {
		t.Skip("no rotating creative in this corpus draw")
	}
	r0, err := b.Render(url, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Render(url, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imaging.ContentHash(r0.Surface) == imaging.ContentHash(r1.Surface) {
		t.Fatal("rotating creative should change the rendered surface across epochs")
	}
}

var _ raster.FrameInspector = (*countingInspector)(nil)

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.com/x?y=1": "a.com",
		"https://b.c.com":    "b.c.com",
		"noscheme/path":      "noscheme/path",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want && !strings.Contains(in, "/") {
			t.Fatalf("hostOf(%q) = %q want %q", in, got, want)
		}
	}
	if hostOf("http://x.com/path") != "x.com" {
		t.Fatal("path not stripped")
	}
}

// TestAsyncServeInspectionMatchesDirectVerdicts renders with the
// micro-batching service in asynchronous inspection mode and checks that
// the set of inspector-blocked creatives is exactly the set the service
// itself flags as ads: the future-resolving inspector must not drop or
// invent verdicts while classification overlaps rasterization.
func TestAsyncServeInspectionMatchesDirectVerdicts(t *testing.T) {
	c, _ := corpusAndList(t, 9, 6)
	arch := squeezenet.SmallConfig(16)
	net, err := squeezenet.Build(arch)
	if err != nil {
		t.Fatal(err)
	}
	squeezenet.PretrainedInit(net, 1)
	svc, err := core.New(net, arch, core.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(svc, serve.Options{Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b, err := New(Config{Profile: Chromium(), Corpus: c, AsyncServe: srv})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, site := range c.TopSites(6) {
		res, err := b.Render(site.PageURLs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Inspects == 0 {
			t.Fatalf("%s: async inspector never consulted", res.URL)
		}
		for _, ri := range res.Images {
			if ri.BlockedByList {
				continue
			}
			// the render submitted these exact pixels, so this resolves from
			// the sharded cache with the identical score
			direct := srv.Submit(ri.Spec.Render(0))
			if direct.Status != serve.StatusCached {
				t.Fatalf("%s: verdict for %s not memoized (status %v)", res.URL, ri.Spec.URL, direct.Status)
			}
			if ri.BlockedByInspector != direct.Ad {
				t.Fatalf("%s: %s blocked=%v but service verdict ad=%v",
					res.URL, ri.Spec.URL, ri.BlockedByInspector, direct.Ad)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d creatives checked", checked)
	}
	if srv.Metrics().Submitted.Load() == 0 {
		t.Fatal("render submitted nothing to the service")
	}
}

// TestAsyncServeConfigValidation: Inspector and AsyncServe are exclusive.
func TestAsyncServeConfigValidation(t *testing.T) {
	c, _ := corpusAndList(t, 10, 2)
	ci := &countingInspector{corpus: c}
	arch := squeezenet.SmallConfig(16)
	net, _ := squeezenet.Build(arch)
	squeezenet.PretrainedInit(net, 1)
	svc, _ := core.New(net, arch, core.Options{})
	srv, err := serve.New(svc, serve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := New(Config{Profile: Chromium(), Corpus: c, Inspector: ci, AsyncServe: srv}); err == nil {
		t.Fatal("Inspector+AsyncServe must be rejected")
	}
}
