package nn

import (
	"math"
	"math/rand"
)

// InitHe fills every convolution weight with Kaiming-He normal noise
// (std = sqrt(2/fan_in)) and zeroes biases. The RNG is caller-supplied so
// initialization is deterministic under a fixed seed.
func InitHe(l Layer, rng *rand.Rand) {
	for _, p := range l.Params() {
		if len(p.W.Shape) == 1 { // bias
			p.W.Zero()
			continue
		}
		fanIn := p.W.Shape[1] // conv weights are [OutC, InC*KH*KW]
		std := math.Sqrt(2 / float64(fanIn))
		for i := range p.W.Data {
			p.W.Data[i] = float32(rng.NormFloat64() * std)
		}
	}
}

// InitXavier fills weights with Glorot-uniform noise; useful for the final
// classifier convolution where He can saturate the softmax early.
func InitXavier(l Layer, rng *rand.Rand) {
	for _, p := range l.Params() {
		if len(p.W.Shape) == 1 {
			p.W.Zero()
			continue
		}
		fanIn, fanOut := p.W.Shape[1], p.W.Shape[0]
		limit := math.Sqrt(6 / float64(fanIn+fanOut))
		for i := range p.W.Data {
			p.W.Data[i] = float32((rng.Float64()*2 - 1) * limit)
		}
	}
}
