package nn

import (
	"fmt"
	"math"

	"percival/internal/tensor"
)

// This file implements the post-training INT8 inference engine: a
// QuantizedSequential mirrors Sequential.ForwardInfer — arena-backed,
// zero-alloc steady state, fused conv+bias+ReLU in the requantize pass, 1×1
// fast path and direct-to-concat fire expands — but carries activations as
// u8 (≤ tensor.QMaxU8) and weights as per-output-channel s8, accumulating in
// int32 through tensor.QGemm.
//
// Quantize performs the calibration pass: it replays the FP32 network over a
// calibration set, records per-quant-point activation ranges, and folds
// every scale, bias, and zero-point compensation into two per-channel
// constants (mult, beta) consumed by the fused requantize epilogue, so the
// hot path touches no quantization arithmetic beyond one FMA per element.

// qAct is a quantized activation tensor threaded between ops. The backing
// buffer belongs to the inference arena.
type qAct struct {
	data       []uint8
	n, c, h, w int
}

func (x qAct) imageLen() int { return x.c * x.h * x.w }

// qOp is one stage of the quantized pipeline.
type qOp interface {
	forward(x qAct, a *tensor.Arena) qAct
}

// QuantizedSequential is the INT8 counterpart of a Sequential restricted to
// the inference-path layer vocabulary (Conv2D[+ReLU], Fire, MaxPool,
// Dropout, final Conv2D, GlobalAvgPool). Build one with Quantize.
type QuantizedSequential struct {
	inQ     tensor.QuantParams
	ops     []qOp
	final   *qFinal
	classes int
}

// Classes returns the output class count.
func (q *QuantizedSequential) Classes() int { return q.classes }

// InputQuant exposes the calibrated input quantization parameters.
func (q *QuantizedSequential) InputQuant() tensor.QuantParams { return q.inQ }

// SizeBytes returns the quantized weight footprint (s8 weights plus the
// per-channel requantization constants), the number that shrinks 4× from
// the FP32 model.
func (q *QuantizedSequential) SizeBytes() int {
	total := 0
	addConv := func(c *qConv) { total += len(c.wq) + 8*len(c.mult) }
	for _, op := range q.ops {
		switch o := op.(type) {
		case *qConv:
			addConv(o)
		case *qFire:
			addConv(o.squeeze)
			addConv(o.expand1)
			addConv(o.expand3)
		}
	}
	total += len(q.final.wq) + 8*len(q.final.mult)
	return total
}

// ForwardInfer runs a quantized forward pass drawing every buffer from a.
// It accepts the same [N,C,H,W] float32 input as the FP32 path (quantization
// happens at the entry) and returns arena-owned logits [N, classes]: copy
// out what you need, then PutTensor.
func (q *QuantizedSequential) ForwardInfer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: QuantizedSequential: input shape %s, want [N,C,H,W]", shapeStr(x.Shape)))
	}
	cur := qAct{
		data: a.GetU8(len(x.Data)),
		n:    x.Shape[0], c: x.Shape[1], h: x.Shape[2], w: x.Shape[3],
	}
	tensor.QuantizeU8(cur.data, x.Data, q.inQ)
	for _, op := range q.ops {
		cur = op.forward(cur, a)
	}
	return q.final.forward(cur, a)
}

// PredictArena runs quantized inference and returns per-sample class
// probabilities ([N,C]) in an arena-owned tensor — the INT8 counterpart of
// nn.PredictArena.
func (q *QuantizedSequential) PredictArena(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	logits := q.ForwardInfer(x, a)
	probs := a.GetTensor(logits.Shape[0], logits.Shape[1])
	tensor.SoftmaxInto(logits, probs.Data)
	a.PutTensor(logits)
	return probs
}

// qConv is a quantized convolution with bias and ReLU fused into the
// requantize epilogue.
type qConv struct {
	spec tensor.ConvSpec
	wq   []int8
	// mult/beta fold sW·sIn/sOut and bias − sW·sIn·zIn·Σw (plus zOut) per
	// output channel; see Quantize.
	mult, beta []float32
	relu       bool
	inZP       uint8
	outZero    int32
}

// runInto computes the convolution into channels [chOff, chOff+OutC) of the
// u8 output buffer y laid out [n, dstC, oh, ow] — the direct-to-concat hook
// used by the fire module.
func (c *qConv) runInto(x qAct, y []uint8, dstC, chOff int, a *tensor.Arena) (oh, ow int) {
	if x.c != c.spec.InC {
		panic(fmt.Sprintf("nn: quantized conv: input has %d channels, want %d", x.c, c.spec.InC))
	}
	oh, ow = c.spec.OutSize(x.h, x.w)
	spatial := oh * ow
	k := c.spec.InC * c.spec.KH * c.spec.KW
	var col []uint8
	if n := c.spec.ColScratchLen(x.h, x.w); n > 0 {
		col = a.GetU8(n)
	}
	acc := a.GetI32(c.spec.OutC * spatial)
	il := x.imageLen()
	for i := 0; i < x.n; i++ {
		img := x.data[i*il : (i+1)*il]
		src := img
		if col != nil {
			tensor.Im2colU8(img, x.c, x.h, x.w, c.spec, col, c.inZP)
			src = col
		}
		tensor.QGemm(c.wq, src, acc, c.spec.OutC, k, spatial)
		out := y[(i*dstC+chOff)*spatial:]
		for oc := 0; oc < c.spec.OutC; oc++ {
			tensor.RequantizeU8(out[oc*spatial:oc*spatial+spatial],
				acc[oc*spatial:(oc+1)*spatial], c.mult[oc], c.beta[oc], c.outZero, c.relu)
		}
	}
	if col != nil {
		a.PutU8(col)
	}
	a.PutI32(acc)
	return oh, ow
}

func (c *qConv) forward(x qAct, a *tensor.Arena) qAct {
	oh, ow := c.spec.OutSize(x.h, x.w)
	y := a.GetU8(x.n * c.spec.OutC * oh * ow)
	c.runInto(x, y, c.spec.OutC, 0, a)
	a.PutU8(x.data)
	return qAct{data: y, n: x.n, c: c.spec.OutC, h: oh, w: ow}
}

// qFire runs a quantized fire module: squeeze, then both expand branches
// written straight into their slots of the concatenated output. Both expands
// requantize into the shared quantization parameters of the concatenated
// tensor, so the concat is free.
type qFire struct {
	squeeze, expand1, expand3 *qConv
}

func (f *qFire) forward(x qAct, a *tensor.Arena) qAct {
	s := f.squeeze.forward(x, a)
	e1, e3 := f.expand1.spec.OutC, f.expand3.spec.OutC
	y := a.GetU8(s.n * (e1 + e3) * s.h * s.w)
	f.expand1.runInto(s, y, e1+e3, 0, a)
	f.expand3.runInto(s, y, e1+e3, e1, a)
	a.PutU8(s.data)
	return qAct{data: y, n: s.n, c: e1 + e3, h: s.h, w: s.w}
}

// qPool max-pools in the quantized domain; quantization parameters pass
// through unchanged (max commutes with the monotonic dequantization map).
type qPool struct {
	spec tensor.PoolSpec
}

func (p *qPool) forward(x qAct, a *tensor.Arena) qAct {
	oh, ow := p.spec.OutSize(x.h, x.w)
	y := a.GetU8(x.n * x.c * oh * ow)
	tensor.MaxPoolU8Into(x.data, x.n, x.c, x.h, x.w, p.spec, y)
	a.PutU8(x.data)
	return qAct{data: y, n: x.n, c: x.c, h: oh, w: ow}
}

// qFinal is the classifier convolution fused with global average pooling:
// the int32 accumulators are averaged per channel and mapped straight to
// FP32 logits (GAP and the affine dequantization commute), so the network
// leaves the quantized domain exactly once, on C·N values.
type qFinal struct {
	spec       tensor.ConvSpec
	wq         []int8
	mult, beta []float32
	inZP       uint8
}

func (f *qFinal) forward(x qAct, a *tensor.Arena) *tensor.Tensor {
	oh, ow := f.spec.OutSize(x.h, x.w)
	spatial := oh * ow
	k := f.spec.InC * f.spec.KH * f.spec.KW
	var col []uint8
	if n := f.spec.ColScratchLen(x.h, x.w); n > 0 {
		col = a.GetU8(n)
	}
	acc := a.GetI32(f.spec.OutC * spatial)
	out := a.GetTensor(x.n, f.spec.OutC)
	il := x.imageLen()
	inv := 1 / float32(spatial)
	for i := 0; i < x.n; i++ {
		img := x.data[i*il : (i+1)*il]
		src := img
		if col != nil {
			tensor.Im2colU8(img, x.c, x.h, x.w, f.spec, col, f.inZP)
			src = col
		}
		tensor.QGemm(f.wq, src, acc, f.spec.OutC, k, spatial)
		for oc := 0; oc < f.spec.OutC; oc++ {
			var sum int64
			for _, v := range acc[oc*spatial : (oc+1)*spatial] {
				sum += int64(v)
			}
			out.Data[i*f.spec.OutC+oc] = f.mult[oc]*float32(sum)*inv + f.beta[oc]
		}
	}
	if col != nil {
		a.PutU8(col)
	}
	a.PutI32(acc)
	a.PutU8(x.data)
	return out
}

// observer tracks the real-valued range of one quantization point.
type observer struct {
	min, max float32
	seen     bool
}

func (o *observer) observe(data []float32) {
	for _, v := range data {
		if !o.seen {
			o.min, o.max, o.seen = v, v, true
			continue
		}
		if v < o.min {
			o.min = v
		}
		if v > o.max {
			o.max = v
		}
	}
}

func (o *observer) params() tensor.QuantParams {
	return tensor.ChooseQuantParams(o.min, o.max)
}

// calibNode is one stage of the parsed FP32 network with the observers that
// watch its outputs during calibration.
type calibNode struct {
	conv  *Conv2D  // fused conv(+ReLU) or final conv
	relu  bool     // ReLU fused after conv
	fire  *Fire    // fire module
	pool  *MaxPool // max pooling
	out   observer // output range (conv / fire concat)
	sqOut observer // fire squeeze output range
}

// Quantize builds the INT8 engine from a trained FP32 network, calibrating
// activation ranges on the given input tensors (each [N,C,H,W]; a handful of
// representative frames suffices). The FP32 network is not modified.
func Quantize(net *Sequential, calib []*tensor.Tensor) (*QuantizedSequential, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("nn: Quantize: empty calibration set")
	}
	nodes, finalConv, classes, err := parseQuantizable(net)
	if err != nil {
		return nil, err
	}

	// Calibration: replay the FP32 inference path, recording the range of
	// every tensor that will live in the quantized domain.
	var inObs observer
	for _, x := range calib {
		if len(x.Shape) != 4 {
			return nil, fmt.Errorf("nn: Quantize: calibration tensor shape %v, want [N,C,H,W]", x.Shape)
		}
		inObs.observe(x.Data)
		cur := x
		for _, nd := range nodes {
			switch {
			case nd.conv != nil:
				y := nd.conv.Forward(cur, false)
				if nd.relu {
					reluInPlace(y.Data)
				}
				nd.out.observe(y.Data)
				cur = y
			case nd.fire != nil:
				s := nd.fire.Squeeze.Forward(cur, false)
				reluInPlace(s.Data)
				nd.sqOut.observe(s.Data)
				e1 := nd.fire.Expand1.Forward(s, false)
				reluInPlace(e1.Data)
				e3 := nd.fire.Expand3.Forward(s, false)
				reluInPlace(e3.Data)
				y := concatChannels(e1, e3)
				nd.out.observe(y.Data)
				cur = y
			case nd.pool != nil:
				cur = nd.pool.Forward(cur, false)
			}
		}
	}

	// Assemble the quantized ops, threading each stage's output params into
	// the next stage's input params.
	q := &QuantizedSequential{inQ: inObs.params(), classes: classes}
	curQ := q.inQ
	for _, nd := range nodes {
		switch {
		case nd.conv != nil:
			outQ := nd.out.params()
			q.ops = append(q.ops, buildQConv(nd.conv, curQ, outQ, nd.relu))
			curQ = outQ
		case nd.fire != nil:
			sqQ := nd.sqOut.params()
			outQ := nd.out.params()
			q.ops = append(q.ops, &qFire{
				squeeze: buildQConv(nd.fire.Squeeze, curQ, sqQ, true),
				expand1: buildQConv(nd.fire.Expand1, sqQ, outQ, true),
				expand3: buildQConv(nd.fire.Expand3, sqQ, outQ, true),
			})
			curQ = outQ
		case nd.pool != nil:
			q.ops = append(q.ops, &qPool{spec: nd.pool.Spec})
		}
	}
	q.final = buildQFinal(finalConv, curQ)
	return q, nil
}

// parseQuantizable walks the layer list and checks it matches the supported
// inference topology.
func parseQuantizable(net *Sequential) (nodes []*calibNode, finalConv *Conv2D, classes int, err error) {
	layers := net.Layers
	if len(layers) < 2 {
		return nil, nil, 0, fmt.Errorf("nn: Quantize: network too short")
	}
	last := layers[len(layers)-1]
	if _, ok := last.(*GlobalAvgPool); !ok {
		return nil, nil, 0, fmt.Errorf("nn: Quantize: network must end in GlobalAvgPool, got %T", last)
	}
	body := layers[:len(layers)-1]
	for i := 0; i < len(body); i++ {
		switch l := body[i].(type) {
		case *Conv2D:
			relu := false
			if i+1 < len(body) {
				if _, ok := body[i+1].(*ReLU); ok {
					relu = true
					i++
				}
			}
			if !relu && i == len(body)-1 {
				finalConv = l
				classes = l.Spec.OutC
				continue
			}
			if !relu {
				return nil, nil, 0, fmt.Errorf("nn: Quantize: conv %s without ReLU is only supported as the classifier head", l.Name())
			}
			nodes = append(nodes, &calibNode{conv: l, relu: true})
		case *Fire:
			nodes = append(nodes, &calibNode{fire: l})
		case *MaxPool:
			nodes = append(nodes, &calibNode{pool: l})
		case *Dropout:
			// identity at inference
		default:
			return nil, nil, 0, fmt.Errorf("nn: Quantize: unsupported layer %T (%s)", l, l.Name())
		}
	}
	if finalConv == nil {
		return nil, nil, 0, fmt.Errorf("nn: Quantize: no classifier convolution before GlobalAvgPool")
	}
	return nodes, finalConv, classes, nil
}

// buildQConv quantizes one convolution's weights and folds its requantize
// constants.
func buildQConv(c *Conv2D, inQ, outQ tensor.QuantParams, relu bool) *qConv {
	k := c.Spec.InC * c.Spec.KH * c.Spec.KW
	wq, ws, wsum := tensor.QuantizeWeightsPerChannel(c.Wt.W.Data, c.Spec.OutC, k)
	mult := make([]float32, c.Spec.OutC)
	beta := make([]float32, c.Spec.OutC)
	for oc := range mult {
		m := ws[oc] * inQ.Scale
		mult[oc] = m / outQ.Scale
		beta[oc] = (c.Bias.W.Data[oc]-m*float32(inQ.Zero)*float32(wsum[oc]))/outQ.Scale + float32(outQ.Zero)
	}
	return &qConv{
		spec: c.Spec, wq: wq, mult: mult, beta: beta,
		relu: relu, inZP: uint8(inQ.Zero), outZero: outQ.Zero,
	}
}

// buildQFinal quantizes the classifier convolution, whose epilogue maps
// accumulators straight to FP32 logits.
func buildQFinal(c *Conv2D, inQ tensor.QuantParams) *qFinal {
	k := c.Spec.InC * c.Spec.KH * c.Spec.KW
	wq, ws, wsum := tensor.QuantizeWeightsPerChannel(c.Wt.W.Data, c.Spec.OutC, k)
	mult := make([]float32, c.Spec.OutC)
	beta := make([]float32, c.Spec.OutC)
	for oc := range mult {
		mult[oc] = ws[oc] * inQ.Scale
		beta[oc] = c.Bias.W.Data[oc] - mult[oc]*float32(inQ.Zero)*float32(wsum[oc])
	}
	return &qFinal{spec: c.Spec, wq: wq, mult: mult, beta: beta, inZP: uint8(inQ.Zero)}
}

func reluInPlace(data []float32) {
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		}
	}
}

// TopAgreement computes the fraction of samples whose argmax class matches
// between two probability (or logit) tensors of shape [N,C] — the
// accuracy-parity metric gating the quantized mode.
func TopAgreement(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) || len(a.Shape) != 2 {
		panic(fmt.Sprintf("nn: TopAgreement: shapes %v vs %v", a.Shape, b.Shape))
	}
	n, c := a.Shape[0], a.Shape[1]
	if n == 0 {
		return math.NaN()
	}
	agree := 0
	for i := 0; i < n; i++ {
		if tensor.Argmax(a.Data[i*c:(i+1)*c]) == tensor.Argmax(b.Data[i*c:(i+1)*c]) {
			agree++
		}
	}
	return float64(agree) / float64(n)
}
