package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"percival/internal/tensor"
)

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestConv2DShapes(t *testing.T) {
	c := NewConv2D("c1", tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	rng := rand.New(rand.NewSource(1))
	InitHe(c, rng)
	x := randInput(rng, 2, 3, 8, 8)
	y := c.Forward(x, false)
	want := []int{2, 8, 8, 8}
	for i := range want {
		if y.Shape[i] != want[i] {
			t.Fatalf("shape %v want %v", y.Shape, want)
		}
	}
}

func TestConv2DRejectsWrongChannels(t *testing.T) {
	c := NewConv2D("c1", tensor.ConvSpec{InC: 3, OutC: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	c.Forward(tensor.New(1, 4, 8, 8), false)
}

func TestSequentialForwardBackwardGradientCheck(t *testing.T) {
	// Small conv->relu->pool->conv->gap network; verify dL/dW numerically.
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(
		NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewConv2D("c2", tensor.ConvSpec{InC: 4, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		NewGlobalAvgPool("gap"),
	)
	InitHe(net, rng)
	x := randInput(rng, 2, 1, 6, 6)
	labels := []int{0, 1}

	lossAt := func() float64 {
		logits := net.Forward(x.Clone(), false)
		probs := tensor.Softmax(logits)
		loss, _ := tensor.CrossEntropyLoss(probs, labels)
		return loss
	}

	logits := net.Forward(x.Clone(), true)
	probs := tensor.Softmax(logits)
	_, dlogits := tensor.CrossEntropyLoss(probs, labels)
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	net.Backward(dlogits)

	const eps = 1e-2
	for _, p := range net.Params() {
		idxs := []int{0}
		if p.W.Len() > 3 {
			idxs = append(idxs, p.W.Len()/2, p.W.Len()-1)
		}
		for _, i := range idxs {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := lossAt()
			p.W.Data[i] = orig - eps
			down := lossAt()
			p.W.Data[i] = orig
			num := (up - down) / (2 * eps)
			got := float64(p.Grad.Data[i])
			if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: numerical %v analytic %v", p.Name, i, num, got)
			}
		}
	}
}

func TestFireModuleShapesAndGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fire := NewFire("fire1", 4, 2, 3, 3)
	InitHe(fire, rng)
	// Nudge biases off zero: a zero bias puts ReLU pre-activations exactly at
	// the kink, where numerical differentiation is undefined.
	for _, p := range fire.Params() {
		if len(p.W.Shape) == 1 {
			for i := range p.W.Data {
				p.W.Data[i] = float32(rng.NormFloat64() * 0.3)
			}
		}
	}
	x := randInput(rng, 1, 4, 5, 5)
	y := fire.Forward(x.Clone(), false)
	if y.Shape[1] != 6 {
		t.Fatalf("fire out channels %d want 6", y.Shape[1])
	}
	if fire.OutChannels() != 6 {
		t.Fatalf("OutChannels() = %d", fire.OutChannels())
	}

	// gradient check through the module
	coef := randInput(rng, 1, 6, 5, 5)
	objective := func() float64 {
		out := fire.Forward(x.Clone(), false)
		var v float64
		for i := range out.Data {
			v += float64(coef.Data[i]) * float64(out.Data[i])
		}
		return v
	}
	fire.Forward(x.Clone(), true)
	for _, p := range fire.Params() {
		p.ZeroGrad()
	}
	fire.Backward(coef.Clone())
	const eps = 1e-2
	for _, p := range fire.Params() {
		i := p.W.Len() / 2
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		up := objective()
		p.W.Data[i] = orig - eps
		down := objective()
		p.W.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(p.Grad.Data[i])) > 3e-2*(1+math.Abs(num)) {
			t.Errorf("%s: numerical %v analytic %v", p.Name, num, p.Grad.Data[i])
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randInput(rng, 2, 3, 4, 4)
	b := randInput(rng, 2, 5, 4, 4)
	y := concatChannels(a, b)
	a2, b2 := splitChannels(y, 3)
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("split(a) mismatch")
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("split(b) mismatch")
		}
	}
}

func TestTrainingConvergesOnToyTask(t *testing.T) {
	// Class 0: bright top half. Class 1: bright bottom half. A tiny conv net
	// must separate these in a few hundred steps.
	rng := rand.New(rand.NewSource(5))
	net := NewSequential(
		NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewConv2D("c2", tensor.ConvSpec{InC: 4, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		NewGlobalAvgPool("gap"),
	)
	InitHe(net, rng)
	opt := NewSGD(net.Params(), 0.05, 0.9, 0)

	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = rng.Intn(2)
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := float32(rng.NormFloat64() * 0.1)
					if (labels[i] == 0 && y < 4) || (labels[i] == 1 && y >= 4) {
						v += 1
					}
					x.Set(v, i, 0, y, xx)
				}
			}
		}
		return x, labels
	}

	var lastAcc float64
	for step := 0; step < 200; step++ {
		x, labels := makeBatch(16)
		_, lastAcc = TrainStep(net, opt, x, labels)
	}
	if lastAcc < 0.9 {
		t.Fatalf("training failed to converge: final batch accuracy %v", lastAcc)
	}
	// held-out check
	x, labels := makeBatch(64)
	preds := PredictClasses(net, x)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / 64; acc < 0.9 {
		t.Fatalf("held-out accuracy %v < 0.9", acc)
	}
}

func TestSGDMomentumMatchesHandComputation(t *testing.T) {
	p := NewParam("w", 1)
	p.W.Data[0] = 1
	opt := NewSGD([]*Param{p}, 0.1, 0.9, 0)
	p.Grad.Data[0] = 1
	opt.Step() // v = -0.1; w = 0.9
	if math.Abs(float64(p.W.Data[0])-0.9) > 1e-6 {
		t.Fatalf("w after step1 = %v", p.W.Data[0])
	}
	opt.Step() // v = 0.9*-0.1 - 0.1 = -0.19; w = 0.71
	if math.Abs(float64(p.W.Data[0])-0.71) > 1e-6 {
		t.Fatalf("w after step2 = %v", p.W.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("w", 1)
	p.W.Data[0] = 2
	opt := NewSGD([]*Param{p}, 0.1, 0, 0.5)
	opt.Step() // grad = 0 + 0.5*2 = 1; w = 2 - 0.1 = 1.9
	if math.Abs(float64(p.W.Data[0])-1.9) > 1e-6 {
		t.Fatalf("w = %v", p.W.Data[0])
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := PaperSchedule()
	if s.At(0) != 0.001 || s.At(29) != 0.001 {
		t.Fatal("epoch<30 should be base lr")
	}
	if math.Abs(s.At(30)-0.0001) > 1e-12 {
		t.Fatalf("At(30) = %v", s.At(30))
	}
	if math.Abs(s.At(60)-0.00001) > 1e-13 {
		t.Fatalf("At(60) = %v", s.At(60))
	}
}

func TestDropoutTrainVsInference(t *testing.T) {
	d := NewDropout("d", 0.5, 42)
	x := tensor.New(1, 1, 32, 32)
	x.Fill(1)
	y := d.Forward(x.Clone(), false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at inference")
		}
	}
	y = d.Forward(x.Clone(), true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	frac := float64(zeros) / float64(zeros+twos)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %v not near 0.5", frac)
	}
	if zeros+twos != 1024 {
		t.Fatal("element count wrong")
	}
	_ = twos
}

func TestSerializationRoundTripFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(
		NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewConv2D("c2", tensor.ConvSpec{InC: 3, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
	)
	InitHe(net, rng)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2 := NewSequential(
		NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewConv2D("c2", tensor.ConvSpec{InC: 3, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
	)
	if err := Load(&buf, net2); err != nil {
		t.Fatal(err)
	}
	p1, p2 := net.Params(), net2.Params()
	for i := range p1 {
		for j := range p1[i].W.Data {
			if p1[i].W.Data[j] != p2[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs", p1[i].Name, j)
			}
		}
	}
}

func TestSerializationCompressedHalvesSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(NewConv2D("c1", tensor.ConvSpec{InC: 3, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1}))
	InitHe(net, rng)
	var full, half bytes.Buffer
	if err := Save(&full, net); err != nil {
		t.Fatal(err)
	}
	if err := SaveCompressed(&half, net); err != nil {
		t.Fatal(err)
	}
	if half.Len() >= full.Len() {
		t.Fatalf("compressed %d >= full %d", half.Len(), full.Len())
	}
	net2 := NewSequential(NewConv2D("c1", tensor.ConvSpec{InC: 3, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1}))
	if err := Load(&half, net2); err != nil {
		t.Fatal(err)
	}
	// fp16 roundtrip error should be small relative to weight magnitude
	p1, p2 := net.Params()[0], net2.Params()[0]
	for i := range p1.W.Data {
		diff := math.Abs(float64(p1.W.Data[i] - p2.W.Data[i]))
		if diff > 1e-3*(1+math.Abs(float64(p1.W.Data[i]))) {
			t.Fatalf("fp16 roundtrip error too large at %d: %v vs %v", i, p1.W.Data[i], p2.W.Data[i])
		}
	}
}

func TestLoadRejectsMismatchedArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSequential(NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}))
	InitHe(net, rng)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	other := NewSequential(NewConv2D("cX", tensor.ConvSpec{InC: 1, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}))
	if err := Load(&buf, other); err == nil {
		t.Fatal("expected name-mismatch error")
	}
	var buf2 bytes.Buffer
	if err := Save(&buf2, net); err != nil {
		t.Fatal(err)
	}
	shapeMismatch := NewSequential(NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}))
	if err := Load(&buf2, shapeMismatch); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	net := NewSequential(NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}))
	if err := Load(bytes.NewReader([]byte("XXXX\x01\x00")), net); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if err := Load(bytes.NewReader(nil), net); err == nil {
		t.Fatal("expected EOF error")
	}
}

// Property: half-precision roundtrip is within half-epsilon for values in the
// representable range.
func TestHalfRoundTripProperty(t *testing.T) {
	f := func(v float32) bool {
		if v != v { // NaN: just require NaN out
			return HalfToFloat32(Float32ToHalf(v)) != HalfToFloat32(Float32ToHalf(v))
		}
		av := math.Abs(float64(v))
		if av > 65000 || (av < 6e-5 && av != 0) {
			return true // out of fp16 normal range; skip
		}
		got := float64(HalfToFloat32(Float32ToHalf(v)))
		return math.Abs(got-float64(v)) <= math.Max(1e-3*math.Abs(float64(v)), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHalfSpecialValues(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 65504, -65504, float32(math.Inf(1)), float32(math.Inf(-1))}
	for _, v := range cases {
		got := HalfToFloat32(Float32ToHalf(v))
		if math.IsInf(float64(v), 0) {
			if !math.IsInf(float64(got), int(math.Copysign(1, float64(v)))) {
				t.Fatalf("inf roundtrip: %v -> %v", v, got)
			}
			continue
		}
		if math.Abs(float64(got-v)) > 1e-3*(1+math.Abs(float64(v))) {
			t.Fatalf("roundtrip %v -> %v", v, got)
		}
	}
	// overflow clamps to inf
	if !math.IsInf(float64(HalfToFloat32(Float32ToHalf(1e10))), 1) {
		t.Fatal("overflow should produce +inf")
	}
}

func TestParamCountAndSize(t *testing.T) {
	c := NewConv2D("c", tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1})
	want := 8*3*3*3 + 8
	if ParamCount(c) != want {
		t.Fatalf("ParamCount = %d want %d", ParamCount(c), want)
	}
	if SizeBytes(c) != want*4 {
		t.Fatalf("SizeBytes = %d", SizeBytes(c))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(rng, len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := map[int]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("not a permutation: %v", vals)
	}
}

func TestInferenceIsGoroutineSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewSequential(
		NewConv2D("c1", tensor.ConvSpec{InC: 1, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewReLU("r1"),
		NewFire("f1", 4, 2, 4, 4),
		NewGlobalAvgPool("gap"),
	)
	InitHe(net, rng)
	x := randInput(rng, 1, 1, 8, 8)
	want := net.Forward(x.Clone(), false)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 20; i++ {
				y := net.Forward(x.Clone(), false)
				for j := range y.Data {
					if y.Data[j] != want.Data[j] {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent inference produced differing results")
		}
	}
}
