package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"percival/internal/tensor"
)

// calibSet builds a small random calibration set matching the test network's
// input shape.
func calibSet(rng *rand.Rand, n, c, h, w, count int) []*tensor.Tensor {
	set := make([]*tensor.Tensor, count)
	for i := range set {
		x := tensor.New(n, c, h, w)
		for j := range x.Data {
			x.Data[j] = float32(rng.Float64()) // [0,1), like decoded RGBA planes
		}
		set[i] = x
	}
	return set
}

// TestQuantizedMatchesFloat checks the INT8 path tracks the FP32 path: class
// probabilities within quantization tolerance and ≥99% top-1 agreement over
// a random input set.
func TestQuantizedMatchesFloat(t *testing.T) {
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(21))
	qnet, err := Quantize(net, calibSet(rng, 4, 3, 12, 12, 4))
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.NewArena()
	agree, total := 0, 0
	for trial := 0; trial < 25; trial++ {
		x := tensor.New(2, 3, 12, 12)
		for j := range x.Data {
			x.Data[j] = float32(rng.Float64())
		}
		want := Predict(net, x)
		got := qnet.PredictArena(x, a)
		n, c := want.Shape[0], want.Shape[1]
		for i := 0; i < n; i++ {
			total++
			if tensor.Argmax(want.Data[i*c:(i+1)*c]) == tensor.Argmax(got.Data[i*c:(i+1)*c]) {
				agree++
			}
			for j := 0; j < c; j++ {
				d := math.Abs(float64(want.Data[i*c+j] - got.Data[i*c+j]))
				if d > 0.15 {
					t.Fatalf("trial %d sample %d: prob[%d] fp32 %.4f int8 %.4f (diff %.4f)",
						trial, i, j, want.Data[i*c+j], got.Data[i*c+j], d)
				}
			}
		}
		a.PutTensor(got)
	}
	if frac := float64(agree) / float64(total); frac < 0.99 {
		t.Fatalf("top-1 agreement %.3f < 0.99 (%d/%d)", frac, agree, total)
	}
}

// TestQuantizedForwardZeroAllocSteadyState verifies the quantized forward
// pass performs no heap allocation once the arena is warm.
func TestQuantizedForwardZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(22))
	qnet, err := Quantize(net, calibSet(rng, 1, 3, 12, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 12, 12)
	a := tensor.NewArena()
	warm := qnet.PredictArena(x, a)
	a.PutTensor(warm)
	allocs := testing.AllocsPerRun(10, func() {
		probs := qnet.PredictArena(x, a)
		a.PutTensor(probs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantized PredictArena allocates %v times per pass, want 0", allocs)
	}
}

// TestQuantizedConcurrentArenas runs quantized inference from several
// goroutines, each with its own pooled arena (exercised under -race by make
// check), checking results stay bit-identical across goroutines.
func TestQuantizedConcurrentArenas(t *testing.T) {
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(23))
	qnet, err := Quantize(net, calibSet(rng, 2, 3, 12, 12, 2))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 12, 12)
	for i := range x.Data {
		x.Data[i] = float32(i%17) / 17
	}
	ref := tensor.NewArena()
	wantT := qnet.PredictArena(x, ref)
	want := append([]float32(nil), wantT.Data...)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 20; iter++ {
				a := tensor.GetArena()
				probs := qnet.PredictArena(x, a)
				for i := range want {
					if probs.Data[i] != want[i] {
						done <- errMismatch
						return
					}
				}
				a.PutTensor(probs)
				tensor.PutArena(a)
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuantizeRejectsUnsupported checks topology validation: networks that
// do not match the inference vocabulary are refused rather than silently
// misquantized.
func TestQuantizeRejectsUnsupported(t *testing.T) {
	calib := calibSet(rand.New(rand.NewSource(24)), 1, 3, 8, 8, 1)
	if _, err := Quantize(NewSequential(NewReLU("r"), NewGlobalAvgPool("gap")), calib); err == nil {
		t.Fatal("expected error for network without classifier conv")
	}
	net := NewSequential(
		NewConv2D("c", tensor.ConvSpec{InC: 3, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		NewReLU("r"),
	)
	if _, err := Quantize(net, calib); err == nil {
		t.Fatal("expected error for network not ending in GlobalAvgPool")
	}
	ok := NewSequential(
		NewConv2D("c", tensor.ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewReLU("r"),
		NewConv2D("head", tensor.ConvSpec{InC: 4, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		NewGlobalAvgPool("gap"),
	)
	InitHe(ok, rand.New(rand.NewSource(25)))
	if _, err := Quantize(ok, calib); err != nil {
		t.Fatalf("minimal conv+head network should quantize: %v", err)
	}
	if _, err := Quantize(ok, nil); err == nil {
		t.Fatal("expected error for empty calibration set")
	}
}

// TestQuantizedBatchMatchesSingle checks batched quantized inference agrees
// with per-sample inference (the ClassifyBatch path).
func TestQuantizedBatchMatchesSingle(t *testing.T) {
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(26))
	qnet, err := Quantize(net, calibSet(rng, 2, 3, 12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 3
	xb := tensor.New(batch, 3, 12, 12)
	for i := range xb.Data {
		xb.Data[i] = float32(rng.Float64())
	}
	a := tensor.NewArena()
	got := qnet.PredictArena(xb, a)
	per := 3 * 12 * 12
	for i := 0; i < batch; i++ {
		x1 := tensor.FromSlice(append([]float32(nil), xb.Data[i*per:(i+1)*per]...), 1, 3, 12, 12)
		p1 := qnet.PredictArena(x1, a)
		for j := 0; j < got.Shape[1]; j++ {
			if d := math.Abs(float64(p1.Data[j] - got.Data[i*got.Shape[1]+j])); d > 1e-6 {
				t.Fatalf("sample %d class %d: batch %v single %v", i, j, got.Data[i*got.Shape[1]+j], p1.Data[j])
			}
		}
		a.PutTensor(p1)
	}
	a.PutTensor(got)
}
