package nn

import (
	"math/rand"

	"percival/internal/tensor"
)

// TrainStep runs one optimization step on a batch: forward, softmax
// cross-entropy, backward, SGD update. x is [N,C,H,W]; labels are class
// indices. Returns the batch loss and accuracy.
func TrainStep(net Layer, opt *SGD, x *tensor.Tensor, labels []int) (loss float64, acc float64) {
	opt.ZeroGrads()
	logits := net.Forward(x, true)
	probs := tensor.Softmax(logits)
	loss, dlogits := tensor.CrossEntropyLoss(probs, labels)
	net.Backward(dlogits)
	opt.Step()
	correct := 0
	n, c := probs.Shape[0], probs.Shape[1]
	for i := 0; i < n; i++ {
		if tensor.Argmax(probs.Data[i*c:(i+1)*c]) == labels[i] {
			correct++
		}
	}
	return loss, float64(correct) / float64(n)
}

// Predict runs inference and returns per-sample class probabilities ([N,C]).
// Sequential networks run on the arena-backed fast path (fused conv+ReLU,
// pooled scratch); x is left untouched and the returned tensor is freshly
// allocated and caller-owned.
func Predict(net Layer, x *tensor.Tensor) *tensor.Tensor {
	if s, ok := net.(*Sequential); ok {
		a := tensor.GetArena()
		probs := PredictArena(s, x, a)
		out := tensor.New(probs.Shape...)
		copy(out.Data, probs.Data)
		a.PutTensor(probs)
		tensor.PutArena(a)
		return out
	}
	return tensor.Softmax(net.Forward(x, false))
}

// PredictClasses runs inference and returns the argmax class per sample.
func PredictClasses(net Layer, x *tensor.Tensor) []int {
	probs := Predict(net, x)
	n, c := probs.Shape[0], probs.Shape[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = tensor.Argmax(probs.Data[i*c : (i+1)*c])
	}
	return out
}

// Shuffle permutes parallel slices of samples and labels in lock-step using
// the supplied RNG; used between epochs.
func Shuffle(rng *rand.Rand, n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		swap(i, j)
	}
}
