package nn

import (
	"fmt"

	"percival/internal/tensor"
)

// This file implements the zero-allocation inference path. Unlike
// Layer.Forward, which allocates a fresh output tensor per layer, the infer
// path draws every intermediate buffer from a tensor.Arena and returns each
// layer's input to the arena as soon as it has been consumed. After one
// warm-up pass the arena's free lists hold every buffer the network needs and
// a forward pass performs no heap allocation.
//
// Ownership protocol: forwardInfer receives `owned` reporting whether x
// belongs to the arena. A layer that produces a new output from an owned
// input must PutTensor the input; in-place layers pass ownership through.
// The tensor returned by ForwardInfer/PredictArena is arena-owned: callers
// copy out what they need, then PutTensor it (or stop using the arena).

// inferLayer is implemented by layers that support arena-backed inference.
// Layers without it fall back to Forward(x, false) and their outputs are
// treated as heap-owned.
type inferLayer interface {
	forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool)
}

// ForwardInfer runs an inference-mode forward pass drawing all intermediate
// buffers from a. The returned tensor is owned by the arena: copy out any
// values before returning it (or the arena) to a pool. Adjacent
// Conv2D+ReLU pairs are fused into a single output pass.
func (s *Sequential) ForwardInfer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	y, owned := s.forwardInfer(x, a, false)
	if !owned {
		// Normalize the contract: hand back an arena-owned copy so callers
		// can treat the result uniformly. Only reachable when the network is
		// empty or ends in a non-arena layer.
		c := a.GetTensor(y.Shape...)
		copy(c.Data, y.Data)
		return c
	}
	return y
}

// forwardInfer implements inferLayer, peephole-fusing Conv2D+ReLU pairs.
func (s *Sequential) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	for i := 0; i < len(s.Layers); i++ {
		l := s.Layers[i]
		if c, ok := l.(*Conv2D); ok {
			relu := false
			if i+1 < len(s.Layers) {
				if _, isRelu := s.Layers[i+1].(*ReLU); isRelu {
					relu = true
					i++
				}
			}
			x, owned = c.inferConv(x, a, owned, relu)
			continue
		}
		if il, ok := l.(inferLayer); ok {
			x, owned = il.forwardInfer(x, a, owned)
			continue
		}
		y := l.Forward(x, false)
		if owned && y != x {
			a.PutTensor(x)
		}
		x, owned = y, owned && y == x
	}
	return x, owned
}

// inferConv is the arena conv forward, optionally fusing the following ReLU.
func (c *Conv2D) inferConv(x *tensor.Tensor, a *tensor.Arena, owned, relu bool) (*tensor.Tensor, bool) {
	if len(x.Shape) != 4 || x.Shape[1] != c.Spec.InC {
		panic(fmt.Sprintf("nn: conv %s: input shape %s, want [N,%d,H,W]", c.name, shapeStr(x.Shape), c.Spec.InC))
	}
	oh, ow := c.Spec.OutSize(x.Shape[2], x.Shape[3])
	y := a.GetTensor(x.Shape[0], c.Spec.OutC, oh, ow)
	var colp []float32
	if n := c.Spec.ColScratchLen(x.Shape[2], x.Shape[3]); n > 0 {
		colp = a.Get(n)
	}
	tensor.ConvForwardInto(x, c.Wt.W.Data, c.Bias.W.Data, c.Spec, colp, y, 0, relu)
	if colp != nil {
		a.Put(colp)
	}
	if owned {
		a.PutTensor(x)
	}
	return y, true
}

func (c *Conv2D) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	return c.inferConv(x, a, owned, false)
}

// forwardInfer for ReLU clamps in place on arena-owned tensors. A caller-
// owned input is copied into the arena first: Predict promises x is left
// untouched, and a standalone head ReLU would otherwise scribble on it.
func (r *ReLU) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	if !owned {
		y := a.GetTensor(x.Shape...)
		for i, v := range x.Data {
			if v < 0 {
				v = 0
			}
			y.Data[i] = v
		}
		return y, true
	}
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x, owned
}

func (m *MaxPool) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	oh, ow := m.Spec.OutSize(x.Shape[2], x.Shape[3])
	y := a.GetTensor(x.Shape[0], x.Shape[1], oh, ow)
	tensor.MaxPoolForwardInto(x, m.Spec, y)
	if owned {
		a.PutTensor(x)
	}
	return y, true
}

func (g *GlobalAvgPool) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	y := a.GetTensor(x.Shape[0], x.Shape[1])
	tensor.GlobalAvgPoolInto(x, y.Data)
	if owned {
		a.PutTensor(x)
	}
	return y, true
}

// forwardInfer for Dropout is the identity: dropout only acts in training.
func (d *Dropout) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	return x, owned
}

// forwardInfer for Fire fuses each convolution with its ReLU and writes the
// two expand branches directly into their slots of the concatenated output,
// eliminating the intermediate expand tensors and the concat copy.
func (f *Fire) forwardInfer(x *tensor.Tensor, a *tensor.Arena, owned bool) (*tensor.Tensor, bool) {
	s, _ := f.Squeeze.inferConv(x, a, owned, true)
	n, h, w := s.Shape[0], s.Shape[2], s.Shape[3]
	e1, e3 := f.Expand1.Spec.OutC, f.Expand3.Spec.OutC
	y := a.GetTensor(n, e1+e3, h, w)
	tensor.ConvForwardInto(s, f.Expand1.Wt.W.Data, f.Expand1.Bias.W.Data, f.Expand1.Spec, nil, y, 0, true)
	sp := f.Expand3.Spec
	colp := a.Get(sp.ColScratchLen(h, w))
	tensor.ConvForwardInto(s, f.Expand3.Wt.W.Data, f.Expand3.Bias.W.Data, sp, colp, y, e1, true)
	a.Put(colp)
	a.PutTensor(s)
	return y, true
}

// PredictArena runs inference using buffers from a and returns per-sample
// class probabilities ([N,C]) in an arena-owned tensor: copy out the scores
// you need, then PutTensor it before releasing the arena.
func PredictArena(net *Sequential, x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	logits := net.ForwardInfer(x, a)
	probs := a.GetTensor(logits.Shape[0], logits.Shape[1])
	tensor.SoftmaxInto(logits, probs.Data)
	a.PutTensor(logits)
	return probs
}
