package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"percival/internal/tensor"
)

// buildTestNet assembles a miniature PERCIVAL-style stack covering every
// layer type the infer path special-cases: stem conv+ReLU, max pool, a fire
// module, dropout, classifier conv, and global average pooling.
func buildTestNet(t *testing.T) *Sequential {
	t.Helper()
	net := NewSequential(
		NewConv2D("conv1", tensor.ConvSpec{InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		NewReLU("relu1"),
		NewMaxPool("pool1", 2, 2),
		NewFire("fire1", 8, 4, 6, 6),
		NewDropout("drop", 0.5, 7),
		NewConv2D("conv_final", tensor.ConvSpec{InC: 12, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		NewGlobalAvgPool("gap"),
	)
	InitHe(net, rand.New(rand.NewSource(3)))
	return net
}

// TestForwardInferMatchesForward checks the arena path (fused conv+ReLU,
// direct-to-concat fire branches, pooled scratch) is numerically identical
// to the reference Layer.Forward path.
func TestForwardInferMatchesForward(t *testing.T) {
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(4))
	for _, batch := range []int{1, 3} {
		x := tensor.New(batch, 3, 12, 12)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		want := net.Forward(x.Clone(), false)
		a := tensor.NewArena()
		got := net.ForwardInfer(x, a)
		if !got.SameShape(want) {
			t.Fatalf("shape %v want %v", got.Shape, want.Shape)
		}
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4*(1+math.Abs(float64(want.Data[i]))) {
				t.Fatalf("batch %d: y[%d]=%v want %v", batch, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestPredictMatchesPredictArena checks the two public prediction paths
// agree and that Predict's returned tensor is caller-owned (mutating it must
// not corrupt later predictions).
func TestPredictMatchesPredictArena(t *testing.T) {
	net := buildTestNet(t)
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(2, 3, 12, 12)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	p1 := Predict(net, x)
	p1.Fill(-99) // caller-owned: scribbling must be harmless
	a := tensor.NewArena()
	p2 := PredictArena(net, x, a)
	p3 := Predict(net, x)
	for i := range p3.Data {
		if math.Abs(float64(p2.Data[i]-p3.Data[i])) > 1e-6 {
			t.Fatalf("probs[%d]: arena %v predict %v", i, p2.Data[i], p3.Data[i])
		}
	}
}

// TestForwardInferZeroAllocSteadyState verifies that once the arena is warm,
// a forward pass performs no heap allocation. GOMAXPROCS is pinned to 1 so
// the GEMM worker fan-out (which allocates a closure per call) stays inline;
// multi-core runs add a handful of small scheduling allocations per pass.
func TestForwardInferZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	net := buildTestNet(t)
	x := tensor.New(1, 3, 12, 12)
	a := tensor.NewArena()
	warm := PredictArena(net, x, a)
	a.PutTensor(warm)
	allocs := testing.AllocsPerRun(10, func() {
		probs := PredictArena(net, x, a)
		a.PutTensor(probs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state PredictArena allocates %v times per pass, want 0", allocs)
	}
}

// TestForwardInferConcurrentArenas runs inference from several goroutines,
// each with its own pooled arena (run under -race).
func TestForwardInferConcurrentArenas(t *testing.T) {
	net := buildTestNet(t)
	x := tensor.New(1, 3, 12, 12)
	for i := range x.Data {
		x.Data[i] = float32(i%13) / 13
	}
	want := Predict(net, x)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 20; iter++ {
				a := tensor.GetArena()
				probs := PredictArena(net, x, a)
				for i := range want.Data {
					if math.Abs(float64(probs.Data[i]-want.Data[i])) > 1e-6 {
						done <- errMismatch
						return
					}
				}
				a.PutTensor(probs)
				tensor.PutArena(a)
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent inference mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestForwardInferValidatesConvInput checks the arena path rejects
// channel-mismatched inputs just like Layer.Forward does, instead of
// silently computing on a reinterpreted buffer.
func TestForwardInferValidatesConvInput(t *testing.T) {
	net := buildTestNet(t)
	x := tensor.New(1, 8, 12, 12) // stem expects 3 channels
	a := tensor.NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel-mismatched input")
		}
	}()
	net.ForwardInfer(x, a)
}

// TestForwardInferLeavesCallerInputUntouched checks a head-of-network
// in-place layer (ReLU) does not scribble on the caller-owned input.
func TestForwardInferLeavesCallerInputUntouched(t *testing.T) {
	net := NewSequential(NewReLU("relu"), NewGlobalAvgPool("gap"))
	x := tensor.New(1, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(i) - 9 // half negative
	}
	orig := append([]float32(nil), x.Data...)
	a := tensor.NewArena()
	net.ForwardInfer(x, a)
	for i, v := range x.Data {
		if v != orig[i] {
			t.Fatalf("caller input mutated at %d: %v -> %v", i, orig[i], v)
		}
	}
}
