package nn

// SGD implements stochastic gradient descent with classical momentum and an
// optional L2 weight decay, the optimizer PERCIVAL was trained with (§4.3:
// momentum β=0.9, lr=0.001, batch 24).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	params   []*Param
	velocity [][]float32
}

// NewSGD builds an optimizer over the given parameters.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	vel := make([][]float32, len(params))
	for i, p := range params {
		vel[i] = make([]float32, p.W.Len())
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, params: params, velocity: vel}
}

// Step applies one update: v = β·v − lr·(g + wd·w); w += v. Gradients are
// left untouched; call ZeroGrads before the next accumulation.
func (o *SGD) Step() {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for i, p := range o.params {
		v := o.velocity[i]
		w := p.W.Data
		g := p.Grad.Data
		for j := range w {
			grad := g[j] + wd*w[j]
			v[j] = mom*v[j] - lr*grad
			w[j] += v[j]
		}
	}
}

// ZeroGrads clears all parameter gradients.
func (o *SGD) ZeroGrads() {
	for _, p := range o.params {
		p.ZeroGrad()
	}
}

// StepLR is the paper's step learning-rate schedule: multiply the rate by
// Gamma every StepEpochs epochs (§4.3: γ=0.1 every 30 epochs).
type StepLR struct {
	Base       float64
	Gamma      float64
	StepEpochs int
}

// At returns the learning rate for the given zero-based epoch.
func (s StepLR) At(epoch int) float64 {
	lr := s.Base
	for e := s.StepEpochs; e <= epoch; e += s.StepEpochs {
		lr *= s.Gamma
	}
	return lr
}

// PaperSchedule returns the exact schedule from §4.3.
func PaperSchedule() StepLR { return StepLR{Base: 0.001, Gamma: 0.1, StepEpochs: 30} }
