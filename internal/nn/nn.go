// Package nn implements the neural-network layer abstraction PERCIVAL's
// detection model is built from: composable layers with forward/backward
// passes, the SqueezeNet "fire" module, SGD-with-momentum training (the
// paper's §4.3 recipe), deterministic initialization, and a compact binary
// model format suitable for shipping inside a browser binary.
package nn

import (
	"fmt"

	"percival/internal/tensor"
)

// Param is a learnable tensor together with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one stage of the network. Forward with train=false must be safe
// to call concurrently from multiple goroutines (PERCIVAL runs one classifier
// instance per raster worker); train=true may retain per-call state for the
// subsequent Backward and is single-goroutine only.
type Layer interface {
	// Name identifies the layer for serialization and debugging.
	Name() string
	// Forward runs the layer. It may modify x in place for activation
	// layers; callers must not reuse x afterwards.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the upstream gradient and returns the gradient with
	// respect to the layer input, accumulating parameter gradients.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers in order.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return "sequential" }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through every layer in reverse.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params collects parameters from all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar weights.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.W.Len()
	}
	return n
}

// SizeBytes returns the serialized float32 weight footprint, the number the
// paper quotes when calling the PERCIVAL model "less than 2 MB".
func SizeBytes(l Layer) int { return ParamCount(l) * 4 }

// shapeStr formats a shape for error messages.
func shapeStr(s []int) string { return fmt.Sprint(s) }
