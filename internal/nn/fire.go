package nn

import (
	"fmt"

	"percival/internal/tensor"
)

// Fire is SqueezeNet's building block (§4.2): a 1×1 "squeeze" convolution
// that cuts the channel count, followed by parallel 1×1 and 3×3 "expand"
// convolutions whose outputs are concatenated along the channel axis. Each
// convolution is followed by a ReLU.
type Fire struct {
	name      string
	Squeeze   *Conv2D
	squeezeRe *ReLU
	Expand1   *Conv2D
	expand1Re *ReLU
	Expand3   *Conv2D
	expand3Re *ReLU

	// training-only state
	squeezed *tensor.Tensor
}

// NewFire builds a fire module: inC input channels, sq squeeze channels, and
// e1/e3 expand channels for the 1×1 and 3×3 branches. Output channel count
// is e1+e3.
func NewFire(name string, inC, sq, e1, e3 int) *Fire {
	return &Fire{
		name:      name,
		Squeeze:   NewConv2D(name+".squeeze", tensor.ConvSpec{InC: inC, OutC: sq, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		squeezeRe: NewReLU(name + ".squeeze_relu"),
		Expand1:   NewConv2D(name+".expand1x1", tensor.ConvSpec{InC: sq, OutC: e1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}),
		expand1Re: NewReLU(name + ".expand1x1_relu"),
		Expand3:   NewConv2D(name+".expand3x3", tensor.ConvSpec{InC: sq, OutC: e3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}),
		expand3Re: NewReLU(name + ".expand3x3_relu"),
	}
}

// OutChannels returns the concatenated output channel count.
func (f *Fire) OutChannels() int { return f.Expand1.Spec.OutC + f.Expand3.Spec.OutC }

// Name implements Layer.
func (f *Fire) Name() string { return f.name }

// Forward implements Layer.
func (f *Fire) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := f.squeezeRe.Forward(f.Squeeze.Forward(x, train), train)
	if train {
		f.squeezed = s
	}
	// The expand branches both read s; training mode stores s per branch.
	a := f.expand1Re.Forward(f.Expand1.Forward(s, train), train)
	b := f.expand3Re.Forward(f.Expand3.Forward(s, train), train)
	return concatChannels(a, b)
}

// Backward implements Layer.
func (f *Fire) Backward(dy *tensor.Tensor) *tensor.Tensor {
	da, db := splitChannels(dy, f.Expand1.Spec.OutC)
	ds1 := f.Expand1.Backward(f.expand1Re.Backward(da))
	ds3 := f.Expand3.Backward(f.expand3Re.Backward(db))
	ds1.AddInPlace(ds3)
	f.squeezed = nil
	return f.Squeeze.Backward(f.squeezeRe.Backward(ds1))
}

// Params implements Layer.
func (f *Fire) Params() []*Param {
	ps := f.Squeeze.Params()
	ps = append(ps, f.Expand1.Params()...)
	ps = append(ps, f.Expand3.Params()...)
	return ps
}

// concatChannels joins two [N,C,H,W] tensors along the channel axis.
func concatChannels(a, b *tensor.Tensor) *tensor.Tensor {
	if a.Shape[0] != b.Shape[0] || a.Shape[2] != b.Shape[2] || a.Shape[3] != b.Shape[3] {
		panic(fmt.Sprintf("nn: concat shape mismatch %s vs %s", shapeStr(a.Shape), shapeStr(b.Shape)))
	}
	n, ca, cb := a.Shape[0], a.Shape[1], b.Shape[1]
	h, w := a.Shape[2], a.Shape[3]
	plane := h * w
	y := tensor.New(n, ca+cb, h, w)
	for i := 0; i < n; i++ {
		copy(y.Data[i*(ca+cb)*plane:], a.Data[i*ca*plane:(i+1)*ca*plane])
		copy(y.Data[(i*(ca+cb)+ca)*plane:], b.Data[i*cb*plane:(i+1)*cb*plane])
	}
	return y
}

// splitChannels is the inverse of concatChannels: the first ca channels go to
// the first tensor, the rest to the second.
func splitChannels(y *tensor.Tensor, ca int) (a, b *tensor.Tensor) {
	n, c, h, w := y.Shape[0], y.Shape[1], y.Shape[2], y.Shape[3]
	cb := c - ca
	plane := h * w
	a = tensor.New(n, ca, h, w)
	b = tensor.New(n, cb, h, w)
	for i := 0; i < n; i++ {
		copy(a.Data[i*ca*plane:], y.Data[i*c*plane:i*c*plane+ca*plane])
		copy(b.Data[i*cb*plane:], y.Data[i*c*plane+ca*plane:(i+1)*c*plane])
	}
	return a, b
}
