package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Model file format ("PCVL"): a compact binary container for network weights.
// PERCIVAL ships its model inside the browser binary, so the format favors
// simple sequential reads over random access.
//
//	magic   [4]byte  "PCVL"
//	version uint16   1 = float32 weights, 2 = float16 weights (compressed)
//	nparams uint32
//	per param:
//	  nameLen uint16, name []byte
//	  rank    uint8,  shape []uint32
//	  data    []float32 (v1) or []uint16 IEEE half (v2)
const (
	magic          = "PCVL"
	versionFloat32 = 1
	versionFloat16 = 2
)

// Save writes the model's parameters in float32 (version 1).
func Save(w io.Writer, l Layer) error { return save(w, l, versionFloat32) }

// SaveCompressed writes the model's parameters quantized to IEEE float16,
// halving the on-disk footprint — the trick behind the paper's "<2 MB"
// in-browser model.
func SaveCompressed(w io.Writer, l Layer) error { return save(w, l, versionFloat16) }

func save(w io.Writer, l Layer, version uint16) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	params := l.Params()
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if len(p.Name) > math.MaxUint16 {
			return fmt.Errorf("nn: save: parameter name too long: %q", p.Name[:32])
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(len(p.W.Shape))); err != nil {
			return err
		}
		for _, d := range p.W.Shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		switch version {
		case versionFloat32:
			for _, v := range p.W.Data {
				if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
		case versionFloat16:
			for _, v := range p.W.Data {
				if err := binary.Write(bw, binary.LittleEndian, Float32ToHalf(v)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("nn: save: unknown version %d", version)
		}
	}
	return bw.Flush()
}

// Load reads weights into an already-constructed model. Parameter names and
// shapes must match exactly; this guards against loading a mismatched
// architecture.
func Load(r io.Reader, l Layer) error {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	if string(hdr[:]) != magic {
		return fmt.Errorf("nn: load: bad magic %q", hdr)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != versionFloat32 && version != versionFloat16 {
		return fmt.Errorf("nn: load: unsupported version %d", version)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	params := l.Params()
	if int(n) != len(params) {
		return fmt.Errorf("nn: load: file has %d params, model has %d", n, len(params))
	}
	for _, p := range params {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: load: parameter %q in file, model expects %q", name, p.Name)
		}
		rank, err := br.ReadByte()
		if err != nil {
			return err
		}
		if int(rank) != len(p.W.Shape) {
			return fmt.Errorf("nn: load: %s: rank %d, model expects %d", p.Name, rank, len(p.W.Shape))
		}
		for i := 0; i < int(rank); i++ {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.W.Shape[i] {
				return fmt.Errorf("nn: load: %s: dim %d is %d, model expects %d", p.Name, i, d, p.W.Shape[i])
			}
		}
		switch version {
		case versionFloat32:
			if err := binary.Read(br, binary.LittleEndian, p.W.Data); err != nil {
				return err
			}
		case versionFloat16:
			half := make([]uint16, p.W.Len())
			if err := binary.Read(br, binary.LittleEndian, half); err != nil {
				return err
			}
			for i, h := range half {
				p.W.Data[i] = HalfToFloat32(h)
			}
		}
	}
	return nil
}

// SaveFile writes the model to a file path.
func SaveFile(path string, l Layer, compressed bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if compressed {
		if err := SaveCompressed(f, l); err != nil {
			return err
		}
	} else if err := Save(f, l); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads model weights from a file path.
func LoadFile(path string, l Layer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, l)
}

// Float32ToHalf converts an IEEE 754 float32 to float16 with round-to-nearest
// (ties to even), clamping to ±Inf on overflow.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16((bits >> 16) & 0x8000)
	exp := int32((bits>>23)&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 0x1f: // overflow or already inf/nan
		if (bits>>23)&0xff == 0xff && mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// subnormal half
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		if (mant>>(shift-1))&1 != 0 { // round
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp<<10) | uint16(mant>>13)
		if mant&0x1000 != 0 { // round to nearest
			half++
		}
		return half
	}
}

// HalfToFloat32 converts an IEEE 754 float16 to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
