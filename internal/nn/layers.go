package nn

import (
	"fmt"
	"math/rand"

	"percival/internal/tensor"
)

// Conv2D is a 2-D convolution layer with optional bias.
type Conv2D struct {
	name string
	Spec tensor.ConvSpec
	Wt   *Param // [OutC, InC*KH*KW]
	Bias *Param // [OutC]

	// training-only state (single goroutine)
	lastIn *tensor.Tensor
}

// NewConv2D constructs a convolution layer with zeroed weights; call an
// initializer (He, Xavier) or load weights before use.
func NewConv2D(name string, spec tensor.ConvSpec) *Conv2D {
	k := spec.InC * spec.KH * spec.KW
	return &Conv2D{
		name: name,
		Spec: spec,
		Wt:   NewParam(name+".weight", spec.OutC, k),
		Bias: NewParam(name+".bias", spec.OutC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Forward implements Layer. Inference calls share nothing mutable and are
// goroutine-safe.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.Spec.InC {
		panic(fmt.Sprintf("nn: conv %s: input shape %s, want [N,%d,H,W]", c.name, shapeStr(x.Shape), c.Spec.InC))
	}
	scratch := tensor.GetScratch(c.Spec.ColScratchLen(x.Shape[2], x.Shape[3]))
	y := tensor.ConvForward(x, c.Wt.W.Data, c.Bias.W.Data, c.Spec, *scratch)
	tensor.PutScratch(scratch)
	if train {
		c.lastIn = x
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: conv backward without forward(train=true)")
	}
	scratch := tensor.GetScratch(c.Spec.ColScratchLen(c.lastIn.Shape[2], c.lastIn.Shape[3]))
	dx := tensor.ConvBackward(c.lastIn, dy, c.Wt.W.Data, c.Wt.Grad.Data, c.Bias.Grad.Data, c.Spec, *scratch)
	tensor.PutScratch(scratch)
	c.lastIn = nil
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Wt, c.Bias} }

// ReLU is the rectified-linear activation. It operates in place.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		r.mask = tensor.ReLUForward(x)
	} else {
		for i, v := range x.Data {
			if v < 0 {
				x.Data[i] = 0
			}
		}
	}
	return x
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.ReLUBackward(dy, r.mask)
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// MaxPool is a square max-pooling layer.
type MaxPool struct {
	name string
	Spec tensor.PoolSpec
	// argmaxP is pooled scratch (tensor.GetScratchI32) held between
	// Forward(train=true) and Backward, like the other cross-call scratch.
	argmaxP *[]int32
	inShape []int
}

// NewMaxPool constructs a max-pooling layer.
func NewMaxPool(name string, k, stride int) *MaxPool {
	return &MaxPool{name: name, Spec: tensor.PoolSpec{K: k, Stride: stride}}
}

// Name implements Layer.
func (m *MaxPool) Name() string { return m.name }

// Forward implements Layer. The inference path skips argmax bookkeeping
// entirely; the training path draws the argmax buffer from the shared
// int32 scratch pool and returns it in Backward.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	oh, ow := m.Spec.OutSize(x.Shape[2], x.Shape[3])
	y := tensor.New(x.Shape[0], x.Shape[1], oh, ow)
	if !train {
		tensor.MaxPoolForwardInto(x, m.Spec, y)
		return y
	}
	if m.argmaxP != nil { // forward without backward: recycle the old scratch
		tensor.PutScratchI32(m.argmaxP)
	}
	m.argmaxP = tensor.GetScratchI32(y.Len())
	tensor.MaxPoolForwardArgmax(x, m.Spec, y, *m.argmaxP)
	m.inShape = append(m.inShape[:0], x.Shape...)
	return y
}

// Backward implements Layer.
func (m *MaxPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if m.argmaxP == nil {
		panic("nn: maxpool backward without forward(train=true)")
	}
	dx := tensor.MaxPoolBackward(dy, *m.argmaxP, m.inShape)
	tensor.PutScratchI32(m.argmaxP)
	m.argmaxP = nil
	return dx
}

// Params implements Layer.
func (m *MaxPool) Params() []*Param { return nil }

// GlobalAvgPool reduces each channel plane to its mean, then flattens to
// [N,C]. SqueezeNet-style classifier head.
type GlobalAvgPool struct {
	name    string
	inShape []int
}

// NewGlobalAvgPool constructs the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		g.inShape = append([]int(nil), x.Shape...)
	}
	y := tensor.GlobalAvgPoolForward(x)
	return y.Reshape(x.Shape[0], x.Shape[1])
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dy4 := dy.Reshape(dy.Shape[0], dy.Shape[1], 1, 1)
	return tensor.GlobalAvgPoolBackward(dy4, g.inShape)
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout); it is the identity at
// inference time. SqueezeNet places a 0.5 dropout before its final conv.
type Dropout struct {
	name string
	P    float64
	rng  *rand.Rand
	mask []bool
}

// NewDropout constructs a dropout layer with its own deterministic RNG.
func NewDropout(name string, p float64, seed int64) *Dropout {
	return &Dropout{name: name, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		return x
	}
	scale := float32(1 / (1 - d.P))
	d.mask = make([]bool, len(x.Data))
	for i := range x.Data {
		if d.rng.Float64() < d.P {
			x.Data[i] = 0
		} else {
			d.mask[i] = true
			x.Data[i] *= scale
		}
	}
	return x
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dy
	}
	scale := float32(1 / (1 - d.P))
	for i := range dy.Data {
		if d.mask[i] {
			dy.Data[i] *= scale
		} else {
			dy.Data[i] = 0
		}
	}
	return dy
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
