// Package raster implements the final rendering stage and PERCIVAL's choke
// point (§3.1): display items are binned into tiles, each tile is rasterized
// by a worker from a pool of raster threads, and every encoded image is
// decoded exactly once (deferred decoding, like Blink's
// DecodingImageGenerator) with the decoded buffer handed to a FrameInspector
// *before* it is drawn. If the inspector flags the frame, its buffer is
// cleared and the ad never reaches the surface.
package raster

import (
	"fmt"
	"image/color"
	"sync"

	"percival/internal/imaging"
	"percival/internal/layout"
)

// TileSize is the square tile edge, matching Blink's raster granularity.
const TileSize = 256

// FrameInspector sees every decoded image frame before rasterization.
// Implementations must be safe for concurrent use: raster workers run in
// parallel and the paper's design goal is to run one classifier instance per
// worker (§3.1 "Run multiple instances of PERCIVAL in parallel").
type FrameInspector interface {
	// InspectFrame examines the decoded pixels of the resource. Returning
	// true blocks the frame: the caller clears the buffer before drawing.
	InspectFrame(src string, frame *imaging.Bitmap) bool
}

// Fetcher resolves an image URL to its encoded bytes.
type Fetcher func(src string) ([]byte, bool)

// DecodeStats counts work done during one raster pass.
type DecodeStats struct {
	Decodes  int // images decoded
	Inspects int // frames shown to the inspector
	Blocked  int // frames cleared
	Tiles    int // tiles rasterized
}

// Rasterizer renders display lists into a surface bitmap.
type Rasterizer struct {
	// Workers is the raster thread-pool size (Blink runs several raster
	// threads; 4 is Chromium's default on desktop).
	Workers int
	// Fetch resolves encoded image bytes.
	Fetch Fetcher
	// Inspector, when non-nil, is PERCIVAL's hook.
	Inspector FrameInspector

	mu      sync.Mutex
	decoded map[string]*decodeEntry // post-inspection frame cache
}

// decodeEntry is a singleflight slot: the first worker to need a resource
// performs the decode and inspection; concurrent workers wait on the Once.
type decodeEntry struct {
	once  sync.Once
	frame *imaging.Bitmap // nil when blocked
	err   error
}

// NewRasterizer constructs a rasterizer with the given worker count.
func NewRasterizer(workers int, fetch Fetcher, inspector FrameInspector) *Rasterizer {
	if workers < 1 {
		workers = 1
	}
	return &Rasterizer{
		Workers:   workers,
		Fetch:     fetch,
		Inspector: inspector,
		decoded:   map[string]*decodeEntry{},
	}
}

// WasBlocked reports whether src was decoded during a raster pass and
// cleared by the inspector.
func (r *Rasterizer) WasBlocked(src string) bool {
	r.mu.Lock()
	e, seen := r.decoded[src]
	r.mu.Unlock()
	if !seen {
		return false
	}
	// ensure the decode has completed before reading the verdict
	e.once.Do(func() {})
	return e.err == nil && e.frame == nil
}

// decodeAndInspect returns the ready-to-draw frame for src, running the
// decode + inspection exactly once per resource (concurrent raster workers
// needing the same resource wait for the first decode). A cleared (blocked)
// frame is represented by nil.
func (r *Rasterizer) decodeAndInspect(src string, stats *DecodeStats) (*imaging.Bitmap, error) {
	r.mu.Lock()
	e, ok := r.decoded[src]
	if !ok {
		e = &decodeEntry{}
		r.decoded[src] = e
	}
	r.mu.Unlock()

	e.once.Do(func() {
		data, ok := r.Fetch(src)
		if !ok {
			e.err = fmt.Errorf("raster: resource %q unavailable", src)
			return
		}
		frame, _, err := imaging.Decode(data)
		if err != nil {
			e.err = fmt.Errorf("raster: decode %q: %w", src, err)
			return
		}
		blocked := false
		if r.Inspector != nil {
			blocked = r.Inspector.InspectFrame(src, frame)
		}
		r.mu.Lock()
		stats.Decodes++
		if r.Inspector != nil {
			stats.Inspects++
		}
		if blocked {
			stats.Blocked++
		}
		r.mu.Unlock()
		if blocked {
			frame.Clear()
			return // e.frame stays nil
		}
		e.frame = frame
	})
	return e.frame, e.err
}

// Raster renders the display list into a surface of the given dimensions.
// Tiles are distributed over the worker pool; each worker decodes (and
// inspects) the images intersecting its tiles. Returns the surface and
// statistics. Resources that fail to fetch or decode render as empty slots,
// as a browser would show a broken image.
func (r *Rasterizer) Raster(items []layout.DisplayItem, w, h int) (*imaging.Bitmap, DecodeStats, error) {
	if w <= 0 {
		w = layout.DefaultViewportW
	}
	if h <= 0 {
		h = TileSize
	}
	surface := imaging.NewBitmap(w, h)
	surface.Fill(color.RGBA{255, 255, 255, 255})

	tilesX := (w + TileSize - 1) / TileSize
	tilesY := (h + TileSize - 1) / TileSize
	type tile struct{ tx, ty int }
	tiles := make(chan tile, tilesX*tilesY)
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			tiles <- tile{tx, ty}
		}
	}
	close(tiles)

	var stats DecodeStats
	stats.Tiles = tilesX * tilesY
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for wk := 0; wk < r.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tiles {
				if err := r.rasterTile(items, surface, t.tx, t.ty, &stats); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return surface, stats, firstErr
}

// rasterTile draws the display items intersecting one tile. Each worker
// writes only within its tile bounds, so the shared surface needs no lock.
func (r *Rasterizer) rasterTile(items []layout.DisplayItem, surface *imaging.Bitmap, tx, ty int, stats *DecodeStats) error {
	x0, y0 := tx*TileSize, ty*TileSize
	x1, y1 := x0+TileSize, y0+TileSize
	if x1 > surface.W {
		x1 = surface.W
	}
	if y1 > surface.H {
		y1 = surface.H
	}
	for i := range items {
		it := &items[i]
		if it.X >= x1 || it.Y >= y1 || it.X+it.W <= x0 || it.Y+it.H <= y0 {
			continue // no intersection
		}
		switch it.Kind {
		case layout.ItemRect:
			fillClipped(surface, it.X, it.Y, it.X+it.W, it.Y+it.H, x0, y0, x1, y1, it.Color)
		case layout.ItemText:
			drawTextClipped(surface, it, x0, y0, x1, y1)
		case layout.ItemPattern:
			drawPatternClipped(surface, it, x0, y0, x1, y1)
		case layout.ItemImage:
			frame, err := r.decodeAndInspect(it.Src, stats)
			if err != nil {
				return err
			}
			if frame == nil {
				continue // blocked: leave the slot blank
			}
			drawImageClipped(surface, frame, it, x0, y0, x1, y1)
		}
	}
	return nil
}

func fillClipped(s *imaging.Bitmap, rx0, ry0, rx1, ry1, cx0, cy0, cx1, cy1 int, c color.RGBA) {
	if rx0 < cx0 {
		rx0 = cx0
	}
	if ry0 < cy0 {
		ry0 = cy0
	}
	if rx1 > cx1 {
		rx1 = cx1
	}
	if ry1 > cy1 {
		ry1 = cy1
	}
	s.FillRect(rx0, ry0, rx1, ry1, c)
}

// drawPatternClipped paints the §2.2/§7 adversarial overlay: interleaved
// stripes in a photographic palette (sky over the top half, foliage over the
// bottom) covering half the box. The composite's statistics shift toward the
// content class — corrupting screenshots of the region and fooling
// element-based perceptual blockers — while every other stripe of the
// underlying creative stays visible to a human, and the decoded frame that
// PERCIVAL inspects is untouched.
func drawPatternClipped(s *imaging.Bitmap, it *layout.DisplayItem, cx0, cy0, cx1, cy1 int) {
	sky := color.RGBA{140, 190, 235, 255}
	foliage := color.RGBA{85, 125, 65, 255}
	mid := it.Y + it.H/2
	for y := it.Y; y < it.Y+it.H; y++ {
		if (y-it.Y)%4 >= 2 {
			continue // leave alternating stripes of the creative visible
		}
		c := sky
		if y >= mid {
			c = foliage
		}
		fillClipped(s, it.X, y, it.X+it.W, y+1, cx0, cy0, cx1, cy1, c)
	}
}

// drawTextClipped paints text as line blocks (glyph rendering is out of
// scope; the raster cost model only needs pixels written).
func drawTextClipped(s *imaging.Bitmap, it *layout.DisplayItem, cx0, cy0, cx1, cy1 int) {
	lineH := 18
	for y := it.Y; y < it.Y+it.H; y += lineH {
		fillClipped(s, it.X, y+4, it.X+it.W*3/4, y+10, cx0, cy0, cx1, cy1, it.Color)
	}
}

// drawImageClipped scales the frame into the item's box, writing only
// within the clip rect.
func drawImageClipped(s *imaging.Bitmap, frame *imaging.Bitmap, it *layout.DisplayItem, cx0, cy0, cx1, cy1 int) {
	x0, y0 := it.X, it.Y
	x1, y1 := it.X+it.W, it.Y+it.H
	if x0 < cx0 {
		x0 = cx0
	}
	if y0 < cy0 {
		y0 = cy0
	}
	if x1 > cx1 {
		x1 = cx1
	}
	if y1 > cy1 {
		y1 = cy1
	}
	if x1 <= x0 || y1 <= y0 || it.W <= 0 || it.H <= 0 {
		return
	}
	for y := y0; y < y1; y++ {
		sy := (y - it.Y) * frame.H / it.H
		for x := x0; x < x1; x++ {
			sx := (x - it.X) * frame.W / it.W
			s.Set(x, y, frame.At(sx, sy))
		}
	}
}
