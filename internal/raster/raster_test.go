package raster

import (
	"image/color"
	"strings"
	"sync/atomic"
	"testing"

	"percival/internal/dom"
	"percival/internal/imaging"
	"percival/internal/layout"
)

// memFetcher serves encoded bitmaps from a map.
func memFetcher(images map[string]*imaging.Bitmap) Fetcher {
	return func(src string) ([]byte, bool) {
		bm, ok := images[src]
		if !ok {
			return nil, false
		}
		data, err := imaging.Encode(bm, imaging.PNG)
		if err != nil {
			return nil, false
		}
		return data, true
	}
}

// blockBySubstr blocks frames whose src contains a marker.
type blockBySubstr struct {
	marker   string
	inspects atomic.Int64
}

func (b *blockBySubstr) InspectFrame(src string, frame *imaging.Bitmap) bool {
	b.inspects.Add(1)
	return strings.Contains(src, b.marker)
}

func redBitmap(w, h int) *imaging.Bitmap {
	b := imaging.NewBitmap(w, h)
	b.Fill(color.RGBA{255, 0, 0, 255})
	return b
}

func renderPage(t *testing.T, html string, images map[string]*imaging.Bitmap, inspector FrameInspector, workers int) (*imaging.Bitmap, DecodeStats) {
	t.Helper()
	doc := dom.Parse(html)
	sizer := func(src string) (int, int, bool) {
		bm, ok := images[src]
		if !ok {
			return 0, 0, false
		}
		return bm.W, bm.H, true
	}
	box := layout.Layout(doc, 800, sizer)
	items := layout.BuildDisplayList(box)
	r := NewRasterizer(workers, memFetcher(images), inspector)
	surface, stats, err := r.Raster(items, 800, box.H)
	if err != nil {
		t.Fatal(err)
	}
	return surface, stats
}

func TestRasterDrawsImage(t *testing.T) {
	images := map[string]*imaging.Bitmap{"http://x/a.png": redBitmap(100, 50)}
	surface, stats := renderPage(t, `<img src="http://x/a.png">`, images, nil, 2)
	if stats.Decodes != 1 {
		t.Fatalf("decodes %d", stats.Decodes)
	}
	// layout places the image at (0,0)
	if c := surface.At(10, 10); c.R != 255 || c.G != 0 {
		t.Fatalf("image pixels missing: %v", c)
	}
}

func TestRasterBlocksFlaggedFrames(t *testing.T) {
	images := map[string]*imaging.Bitmap{
		"http://ads/banner.png": redBitmap(100, 50),
		"http://x/photo.png":    redBitmap(100, 50),
	}
	html := `<img src="http://ads/banner.png"><img src="http://x/photo.png">`
	insp := &blockBySubstr{marker: "ads/"}
	surface, stats := renderPage(t, html, images, insp, 2)
	if stats.Blocked != 1 {
		t.Fatalf("blocked %d", stats.Blocked)
	}
	// first image slot (y in [0,50)) must be blank (white), second drawn
	if c := surface.At(10, 10); c.R != 255 || c.G != 255 {
		t.Fatalf("blocked slot not blank: %v", c)
	}
	if c := surface.At(10, 60); c.R != 255 || c.G != 0 {
		t.Fatalf("allowed image missing: %v", c)
	}
}

func TestDecodeOncePerResource(t *testing.T) {
	// the same image referenced many times decodes and inspects once
	images := map[string]*imaging.Bitmap{"http://x/a.png": redBitmap(40, 40)}
	var html strings.Builder
	for i := 0; i < 12; i++ {
		html.WriteString(`<img src="http://x/a.png">`)
	}
	insp := &blockBySubstr{marker: "never"}
	_, stats := renderPage(t, html.String(), images, insp, 4)
	if stats.Decodes != 1 {
		t.Fatalf("decodes %d, want 1 (deferred decode cache)", stats.Decodes)
	}
	if got := insp.inspects.Load(); got != 1 {
		t.Fatalf("inspects %d, want 1", got)
	}
}

func TestRasterMissingResourceErrors(t *testing.T) {
	doc := dom.Parse(`<img src="http://gone/404.png">`)
	box := layout.Layout(doc, 800, nil)
	items := layout.BuildDisplayList(box)
	r := NewRasterizer(1, memFetcher(nil), nil)
	_, _, err := r.Raster(items, 800, box.H)
	if err == nil {
		t.Fatal("expected fetch error")
	}
}

func TestRasterCorruptImageErrors(t *testing.T) {
	fetch := func(string) ([]byte, bool) { return []byte("garbage"), true }
	doc := dom.Parse(`<img src="http://x/bad.png">`)
	box := layout.Layout(doc, 800, nil)
	items := layout.BuildDisplayList(box)
	r := NewRasterizer(1, fetch, nil)
	_, _, err := r.Raster(items, 800, box.H)
	if err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelWorkersProduceSameSurface(t *testing.T) {
	images := map[string]*imaging.Bitmap{}
	var html strings.Builder
	for i := 0; i < 8; i++ {
		src := "http://x/img" + string(rune('a'+i)) + ".png"
		bm := imaging.NewBitmap(120, 40)
		bm.Fill(color.RGBA{uint8(i * 30), 100, 200, 255})
		images[src] = bm
		html.WriteString(`<img src="` + src + `">`)
	}
	s1, _ := renderPage(t, html.String(), images, nil, 1)
	s8, _ := renderPage(t, html.String(), images, nil, 8)
	if imaging.ContentHash(s1) != imaging.ContentHash(s8) {
		t.Fatal("worker count changed rendered output")
	}
}

func TestTileCount(t *testing.T) {
	r := NewRasterizer(2, memFetcher(nil), nil)
	surface, stats, err := r.Raster(nil, 800, 600)
	if err != nil {
		t.Fatal(err)
	}
	// 800x600 at 256px tiles = 4x3
	if stats.Tiles != 12 {
		t.Fatalf("tiles %d", stats.Tiles)
	}
	if surface.W != 800 || surface.H != 600 {
		t.Fatalf("surface %dx%d", surface.W, surface.H)
	}
}

func TestWorkerCountClamped(t *testing.T) {
	r := NewRasterizer(0, memFetcher(nil), nil)
	if r.Workers != 1 {
		t.Fatalf("workers %d", r.Workers)
	}
}

func TestBlockedFrameStaysBlockedOnReuse(t *testing.T) {
	// second raster pass with the same rasterizer reuses the cleared cache
	images := map[string]*imaging.Bitmap{"http://ads/x.png": redBitmap(60, 60)}
	insp := &blockBySubstr{marker: "ads/"}
	doc := dom.Parse(`<img src="http://ads/x.png">`)
	sizer := func(string) (int, int, bool) { return 60, 60, true }
	box := layout.Layout(doc, 800, sizer)
	items := layout.BuildDisplayList(box)
	r := NewRasterizer(2, memFetcher(images), insp)
	if _, _, err := r.Raster(items, 800, box.H); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Raster(items, 800, box.H); err != nil {
		t.Fatal(err)
	}
	if insp.inspects.Load() != 1 {
		t.Fatalf("inspects %d, want 1 (cache must remember the verdict)", insp.inspects.Load())
	}
}
