package tensor

// ConvSpec describes a 2-D convolution (square kernels are the common case in
// SqueezeNet but rectangular ones are supported).
type ConvSpec struct {
	InC, OutC  int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutSize returns the output spatial size for an input of h×w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.PadH-s.KH)/s.StrideH + 1
	ow = (w+2*s.PadW-s.KW)/s.StrideW + 1
	return oh, ow
}

// Im2col expands one image (C×H×W, a slice of a batch tensor) into the column
// matrix used by GEMM convolution: shape [C*KH*KW, outH*outW], row-major into
// col, which must have capacity for that many elements. Zero padding is
// materialized as zeros.
func Im2col(img []float32, c, h, w int, s ConvSpec, col []float32) (oh, ow int) {
	oh, ow = s.OutSize(h, w)
	rowLen := oh * ow
	ri := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				dst := col[ri*rowLen : (ri+1)*rowLen]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chOff + iy*w
					ix := -s.PadW + kx
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dst[di] = img[rowOff+ix]
						} else {
							dst[di] = 0
						}
						di++
						ix += s.StrideW
					}
				}
				ri++
			}
		}
	}
	return oh, ow
}

// Col2im is the adjoint of Im2col: it scatters the column-matrix gradient
// back into the (zero-initialized) image gradient buffer, accumulating where
// receptive fields overlap.
func Col2im(col []float32, c, h, w int, s ConvSpec, img []float32) {
	oh, ow := s.OutSize(h, w)
	rowLen := oh * ow
	ri := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				src := col[ri*rowLen : (ri+1)*rowLen]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowOff := chOff + iy*w
					ix := -s.PadW + kx
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							img[rowOff+ix] += src[si]
						}
						si++
						ix += s.StrideW
					}
				}
				ri++
			}
		}
	}
}

// ConvForward computes a batched convolution y = conv(x, w) + b using
// im2col+GEMM, one GEMM per batch element. x is [N,C,H,W]; w is
// [OutC, InC*KH*KW] flattened; b is [OutC] (may be nil); col is scratch of at
// least InC*KH*KW*outH*outW elements. Returns [N,OutC,outH,outW].
func ConvForward(x *Tensor, w, b []float32, s ConvSpec, col []float32) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	y := New(n, s.OutC, oh, ow)
	k := s.InC * s.KH * s.KW
	spatial := oh * ow
	for i := 0; i < n; i++ {
		img := x.Data[i*c*h*wd : (i+1)*c*h*wd]
		Im2col(img, c, h, wd, s, col)
		out := y.Data[i*s.OutC*spatial : (i+1)*s.OutC*spatial]
		Gemm(w, col, out, s.OutC, k, spatial)
		if b != nil {
			for oc := 0; oc < s.OutC; oc++ {
				bias := b[oc]
				row := out[oc*spatial : (oc+1)*spatial]
				for j := range row {
					row[j] += bias
				}
			}
		}
	}
	return y
}

// ConvBackward computes gradients for the im2col convolution. Given upstream
// gradient dy ([N,OutC,outH,outW]), the stored input x and weights w, it
// accumulates dW ([OutC, InC*KH*KW]) and db ([OutC]) and returns dx with x's
// shape. col is scratch shared with the forward pass.
func ConvBackward(x, dy *Tensor, w, dw, db []float32, s ConvSpec, col []float32) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	spatial := oh * ow
	k := s.InC * s.KH * s.KW
	dx := New(n, c, h, wd)
	dcol := make([]float32, k*spatial)
	for i := 0; i < n; i++ {
		img := x.Data[i*c*h*wd : (i+1)*c*h*wd]
		Im2col(img, c, h, wd, s, col)
		g := dy.Data[i*s.OutC*spatial : (i+1)*s.OutC*spatial]
		// dW += dY × colᵀ : [OutC, spatial] × [spatial, k] with col stored
		// [k, spatial] row-major, i.e. A×Bᵀ.
		GemmTBAcc(g, col, dw, s.OutC, spatial, k)
		if db != nil {
			for oc := 0; oc < s.OutC; oc++ {
				row := g[oc*spatial : (oc+1)*spatial]
				var sum float32
				for _, v := range row {
					sum += v
				}
				db[oc] += sum
			}
		}
		// dcol = Wᵀ × dY : W stored [OutC, k] row-major → Aᵀ×B.
		GemmTA(w, g, dcol, k, s.OutC, spatial)
		Col2im(dcol, c, h, wd, s, dx.Data[i*c*h*wd:(i+1)*c*h*wd])
	}
	return dx
}
