package tensor

import "fmt"

// ConvSpec describes a 2-D convolution (square kernels are the common case in
// SqueezeNet but rectangular ones are supported).
type ConvSpec struct {
	InC, OutC  int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutSize returns the output spatial size for an input of h×w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.PadH-s.KH)/s.StrideH + 1
	ow = (w+2*s.PadW-s.KW)/s.StrideW + 1
	return oh, ow
}

// Im2col expands one image (C×H×W, a slice of a batch tensor) into the column
// matrix used by GEMM convolution: shape [C*KH*KW, outH*outW], row-major into
// col, which must have capacity for that many elements. Zero padding is
// materialized as zeros.
func Im2col(img []float32, c, h, w int, s ConvSpec, col []float32) (oh, ow int) {
	oh, ow = s.OutSize(h, w)
	rowLen := oh * ow
	ri := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				dst := col[ri*rowLen : (ri+1)*rowLen]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowOff := chOff + iy*w
					ix := -s.PadW + kx
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dst[di] = img[rowOff+ix]
						} else {
							dst[di] = 0
						}
						di++
						ix += s.StrideW
					}
				}
				ri++
			}
		}
	}
	return oh, ow
}

// Col2im is the adjoint of Im2col: it scatters the column-matrix gradient
// back into the (zero-initialized) image gradient buffer, accumulating where
// receptive fields overlap.
func Col2im(col []float32, c, h, w int, s ConvSpec, img []float32) {
	oh, ow := s.OutSize(h, w)
	rowLen := oh * ow
	ri := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				src := col[ri*rowLen : (ri+1)*rowLen]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowOff := chOff + iy*w
					ix := -s.PadW + kx
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							img[rowOff+ix] += src[si]
						}
						si++
						ix += s.StrideW
					}
				}
				ri++
			}
		}
	}
}

// is1x1Fast reports whether the convolution is a pointwise (1×1, stride 1,
// unpadded) conv, for which the input image already is the im2col column
// matrix and the expansion can be skipped entirely. SqueezeNet's squeeze and
// expand-1×1 convolutions — the bulk of its layers — take this path.
func (s ConvSpec) is1x1Fast() bool {
	return s.KH == 1 && s.KW == 1 && s.StrideH == 1 && s.StrideW == 1 &&
		s.PadH == 0 && s.PadW == 0
}

// ColScratchLen returns the col scratch length ConvForward/ConvBackward
// require for an h×w input: 0 when the pointwise fast path applies (the
// scratch is unused and may be nil), InC*KH*KW*outH*outW otherwise. Callers
// sizing scratch buffers should use this rather than re-deriving the
// fast-path condition.
func (s ConvSpec) ColScratchLen(h, w int) int {
	if s.is1x1Fast() {
		return 0
	}
	oh, ow := s.OutSize(h, w)
	return s.InC * s.KH * s.KW * oh * ow
}

// checkColScratch validates the im2col scratch buffer up front so an
// undersized buffer fails loudly instead of silently computing on a
// truncated column matrix.
func checkColScratch(fn string, col []float32, s ConvSpec, oh, ow int) {
	if need := s.InC * s.KH * s.KW * oh * ow; len(col) < need {
		panic(fmt.Sprintf("tensor: %s: col scratch has %d elements, need %d (InC*KH*KW*outH*outW = %d*%d*%d*%d*%d)",
			fn, len(col), need, s.InC, s.KH, s.KW, oh, ow))
	}
}

// ConvForward computes a batched convolution y = conv(x, w) + b using
// im2col+GEMM, one GEMM per batch element. x is [N,C,H,W]; w is
// [OutC, InC*KH*KW] flattened; b is [OutC] (may be nil); col is scratch of at
// least InC*KH*KW*outH*outW elements (unused, and may be nil, for 1×1
// stride-1 unpadded convolutions). Returns [N,OutC,outH,outW].
func ConvForward(x *Tensor, w, b []float32, s ConvSpec, col []float32) *Tensor {
	n := x.Shape[0]
	oh, ow := s.OutSize(x.Shape[2], x.Shape[3])
	y := New(n, s.OutC, oh, ow)
	ConvForwardInto(x, w, b, s, col, y, 0, false)
	return y
}

// ConvForwardInto computes conv(x, w) + b into a caller-provided output
// tensor. y must be [N, dstC, outH, outW] with chOff+OutC <= dstC; the
// result lands in channels [chOff, chOff+OutC), which lets callers write
// branch outputs (SqueezeNet's expand pair) directly into their concatenated
// destination. When relu is set, bias addition and max(0,·) are fused into
// the output pass, eliminating the separate activation sweep.
//
// 1×1/stride-1/unpadded convolutions skip Im2col entirely — the input is
// already the column matrix — and ignore col (which may be nil).
func ConvForwardInto(x *Tensor, w, b []float32, s ConvSpec, col []float32, y *Tensor, chOff int, relu bool) {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	spatial := oh * ow
	dstC := y.Shape[1]
	if y.Shape[0] != n || y.Shape[2] != oh || y.Shape[3] != ow || chOff+s.OutC > dstC {
		panic(fmt.Sprintf("tensor: ConvForwardInto: output shape %v cannot hold [%d,%d,%d,%d] at channel offset %d",
			y.Shape, n, s.OutC, oh, ow, chOff))
	}
	fast := s.is1x1Fast()
	if !fast {
		checkColScratch("ConvForwardInto", col, s, oh, ow)
	}
	k := s.InC * s.KH * s.KW
	for i := 0; i < n; i++ {
		img := x.Data[i*c*h*wd : (i+1)*c*h*wd]
		out := y.Data[(i*dstC+chOff)*spatial : (i*dstC+chOff)*spatial+s.OutC*spatial]
		if fast {
			// The image is already the [InC, H*W] column matrix.
			Gemm(w, img, out, s.OutC, k, spatial)
		} else {
			Im2col(img, c, h, wd, s, col)
			Gemm(w, col, out, s.OutC, k, spatial)
		}
		if b == nil && !relu {
			continue
		}
		for oc := 0; oc < s.OutC; oc++ {
			var bias float32
			if b != nil {
				bias = b[oc]
			}
			row := out[oc*spatial : (oc+1)*spatial]
			if relu {
				for j, v := range row {
					v += bias
					if v < 0 {
						v = 0
					}
					row[j] = v
				}
			} else {
				for j := range row {
					row[j] += bias
				}
			}
		}
	}
}

// ConvBackward computes gradients for the im2col convolution. Given upstream
// gradient dy ([N,OutC,outH,outW]), the stored input x and weights w, it
// accumulates dW ([OutC, InC*KH*KW]) and db ([OutC]) and returns dx with x's
// shape. col is scratch shared with the forward pass.
func ConvBackward(x, dy *Tensor, w, dw, db []float32, s ConvSpec, col []float32) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	spatial := oh * ow
	k := s.InC * s.KH * s.KW
	fast := s.is1x1Fast()
	if !fast {
		checkColScratch("ConvBackward", col, s, oh, ow)
	}
	dx := New(n, c, h, wd)
	var dcolp *[]float32
	var dcol []float32
	if !fast {
		dcolp = GetScratch(k * spatial)
		dcol = *dcolp
	}
	for i := 0; i < n; i++ {
		img := x.Data[i*c*h*wd : (i+1)*c*h*wd]
		if !fast {
			Im2col(img, c, h, wd, s, col)
		} else {
			// For pointwise convs the image already is the column matrix and
			// Col2im is an identity accumulation into the (fresh) dx plane.
			col = img
		}
		g := dy.Data[i*s.OutC*spatial : (i+1)*s.OutC*spatial]
		// dW += dY × colᵀ : [OutC, spatial] × [spatial, k] with col stored
		// [k, spatial] row-major, i.e. A×Bᵀ.
		GemmTBAcc(g, col, dw, s.OutC, spatial, k)
		if db != nil {
			for oc := 0; oc < s.OutC; oc++ {
				row := g[oc*spatial : (oc+1)*spatial]
				var sum float32
				for _, v := range row {
					sum += v
				}
				db[oc] += sum
			}
		}
		// dcol = Wᵀ × dY : W stored [OutC, k] row-major → Aᵀ×B.
		if fast {
			GemmTA(w, g, dx.Data[i*c*h*wd:(i+1)*c*h*wd], k, s.OutC, spatial)
		} else {
			GemmTA(w, g, dcol, k, s.OutC, spatial)
			Col2im(dcol, c, h, wd, s, dx.Data[i*c*h*wd:(i+1)*c*h*wd])
		}
	}
	if dcolp != nil {
		PutScratch(dcolp)
	}
	return dx
}
