package tensor

import (
	"fmt"
	"math"
)

// INT8 quantization scheme (see PERFORMANCE.md "INT8 quantization" for the
// full derivation):
//
//   - Activations are unsigned 8-bit, asymmetric, per-tensor, restricted to
//     [0, QMaxU8] = [0, 127] ("u7"). Restricting activations to 7 bits keeps
//     every VPMADDUBSW pair sum (2 × 127 × 127 = 32 258) below the int16
//     saturation point, so the AVX2 kernel never saturates and matches the
//     portable kernel bit-for-bit.
//   - Weights are signed 8-bit, symmetric (zero-point 0), per-output-channel,
//     in [-127, 127].
//   - Accumulation is int32. The asymmetric activation zero-point is folded
//     out of the accumulator with the precomputed per-channel weight row sum:
//     real = sW·sA·(acc − zA·Σₖw), so the hot loop never sees it.
type QuantParams struct {
	// Scale maps quantized steps to real values: real = Scale·(q − Zero).
	Scale float32
	// Zero is the quantized value representing real 0, in [0, QMaxU8].
	Zero int32
}

// QMaxU8 is the top of the activation range. Activations use 7 of their 8
// bits (see the scheme note above).
const QMaxU8 = 127

// ChooseQuantParams fits activation quantization parameters to an observed
// real-value range. The range is widened to include zero so that real 0 is
// exactly representable (padding and ReLU both depend on that).
func ChooseQuantParams(minV, maxV float32) QuantParams {
	if minV > 0 {
		minV = 0
	}
	if maxV < 0 {
		maxV = 0
	}
	if maxV == minV {
		return QuantParams{Scale: 1, Zero: 0}
	}
	scale := (maxV - minV) / QMaxU8
	zero := int32(math.Round(float64(-minV / scale)))
	if zero < 0 {
		zero = 0
	}
	if zero > QMaxU8 {
		zero = QMaxU8
	}
	return QuantParams{Scale: scale, Zero: zero}
}

// QuantizeU8 quantizes real values into [0, QMaxU8]: q = clamp(round(v/s)+z).
func QuantizeU8(dst []uint8, src []float32, q QuantParams) {
	if len(dst) < len(src) {
		panic("tensor: QuantizeU8 dst too small")
	}
	inv := 1 / q.Scale
	// Round half-up via the +0.5 truncation: exact for the non-negative
	// in-range values, and the clamp absorbs the truncated negatives.
	zf := float32(q.Zero) + 0.5
	for i, v := range src {
		x := int32(v*inv + zf)
		if x < 0 {
			x = 0
		} else if x > QMaxU8 {
			x = QMaxU8
		}
		dst[i] = uint8(x)
	}
}

// DequantizeU8 maps quantized activations back to real values.
func DequantizeU8(dst []float32, src []uint8, q QuantParams) {
	if len(dst) < len(src) {
		panic("tensor: DequantizeU8 dst too small")
	}
	z := float32(q.Zero)
	for i, v := range src {
		dst[i] = q.Scale * (float32(v) - z)
	}
}

// QuantizeWeightsPerChannel quantizes a [outC, k] weight matrix symmetrically
// per output channel: wq = round(w/s) with s = maxAbs(row)/127. It returns
// the quantized weights, the per-channel scales, and the per-channel row sums
// Σₖ wq used for activation zero-point compensation.
func QuantizeWeightsPerChannel(w []float32, outC, k int) (wq []int8, scales []float32, rowSums []int32) {
	if len(w) < outC*k {
		panic(fmt.Sprintf("tensor: QuantizeWeightsPerChannel: %d weights, want %d", len(w), outC*k))
	}
	wq = make([]int8, outC*k)
	scales = make([]float32, outC)
	rowSums = make([]int32, outC)
	for oc := 0; oc < outC; oc++ {
		row := w[oc*k : (oc+1)*k]
		var maxAbs float32
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			scales[oc] = 1
			continue
		}
		s := maxAbs / 127
		scales[oc] = s
		inv := 1 / s
		var sum int32
		for j, v := range row {
			x := int32(math.Round(float64(v * inv)))
			if x < -127 {
				x = -127
			} else if x > 127 {
				x = 127
			}
			wq[oc*k+j] = int8(x)
			sum += x
		}
		rowSums[oc] = sum
	}
	return wq, scales, rowSums
}

// RequantizeU8 converts one output-channel row of int32 accumulators into the
// next layer's u8 activation domain: q = clamp(round(acc·mult + beta), lo,
// QMaxU8). mult folds the weight, input, and output scales
// (sW·sA/sOut); beta folds the bias, the activation-zero-point compensation,
// and the output zero-point. relu raises the lower clamp to the output zero
// point, fusing the activation into the pass that already touches every
// element.
func RequantizeU8(dst []uint8, acc []int32, mult, beta float32, zOut int32, relu bool) {
	if len(dst) < len(acc) {
		panic("tensor: RequantizeU8 dst too small")
	}
	lo := int32(0)
	if relu {
		lo = zOut
	}
	if haveQuantASM && len(acc) >= 32 {
		n := len(acc) &^ 31
		requantU8ASM(&acc[0], &dst[0], int64(n), mult, beta, uint8(lo), QMaxU8)
		acc = acc[n:]
		dst = dst[n:]
	}
	for i, a := range acc {
		x := int32(math.RoundToEven(float64(float32(a)*mult + beta)))
		if x < lo {
			x = lo
		} else if x > QMaxU8 {
			x = QMaxU8
		}
		dst[i] = uint8(x)
	}
}

// DequantizeAcc converts one output-channel row of int32 accumulators
// straight to real values: v = acc·mult + beta — the final-layer epilogue,
// where the logits leave the quantized domain.
func DequantizeAcc(dst []float32, acc []int32, mult, beta float32) {
	if len(dst) < len(acc) {
		panic("tensor: DequantizeAcc dst too small")
	}
	for i, a := range acc {
		dst[i] = float32(a)*mult + beta
	}
}

// Im2colU8 is the quantized counterpart of Im2col: it expands one u8 image
// (C×H×W) into the [C*KH*KW, outH*outW] column matrix. Zero padding is
// materialized as the activation zero-point zp (the quantized encoding of
// real 0), so the zero-point compensation term stays exact across padded
// positions.
//
// The horizontal bounds test is hoisted out of the pixel loop: for each
// (ky, kx) the valid output-column range is computed once, the out-of-range
// edges are filled with zp, and the interior degenerates to a memmove for
// stride-1 convolutions (SqueezeNet's 3×3 expands) or a branchless strided
// gather otherwise (the strided stem).
func Im2colU8(img []uint8, c, h, w int, s ConvSpec, col []uint8, zp uint8) (oh, ow int) {
	oh, ow = s.OutSize(h, w)
	rowLen := oh * ow
	ri := 0
	for ch := 0; ch < c; ch++ {
		chOff := ch * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				dst := col[ri*rowLen : (ri+1)*rowLen]
				ri++
				// Valid ox range: 0 <= kx - PadW + ox*StrideW < w.
				base := kx - s.PadW
				oxLo, oxHi := 0, ow
				if base < 0 {
					oxLo = (-base + s.StrideW - 1) / s.StrideW
				}
				if base+(ow-1)*s.StrideW >= w {
					oxHi = (w-1-base)/s.StrideW + 1
				}
				if oxHi < oxLo {
					oxHi = oxLo
				}
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH - s.PadH + ky
					drow := dst[di : di+ow]
					di += ow
					if iy < 0 || iy >= h {
						fillU8(drow, zp)
						continue
					}
					for x := 0; x < oxLo; x++ {
						drow[x] = zp
					}
					for x := oxHi; x < ow; x++ {
						drow[x] = zp
					}
					row := img[chOff+iy*w : chOff+iy*w+w]
					if s.StrideW == 1 {
						copy(drow[oxLo:oxHi], row[base+oxLo:base+oxHi])
						continue
					}
					ix := base + oxLo*s.StrideW
					for x := oxLo; x < oxHi; x++ {
						drow[x] = row[ix]
						ix += s.StrideW
					}
				}
			}
		}
	}
	return oh, ow
}

func fillU8(dst []uint8, v uint8) {
	for i := range dst {
		dst[i] = v
	}
}

// MaxPoolU8Into max-pools u8 activations ([N,C,H,W] planes in x) into y.
// Max pooling commutes with the (monotonic) quantization map, so the window
// maximum is taken directly on the quantized bytes and the tensor's
// quantization parameters pass through unchanged.
//
// Unpadded pooling (every pool in the PERCIVAL architectures) runs a
// separable fast path: a vectorizable vertical max over the window rows into
// a row buffer, then a small horizontal max per output — 2K reads per output
// instead of K² branchy window probes.
func MaxPoolU8Into(x []uint8, n, c, h, w int, p PoolSpec, y []uint8) (oh, ow int) {
	oh, ow = p.OutSize(h, w)
	if len(x) < n*c*h*w || len(y) < n*c*oh*ow {
		panic(fmt.Sprintf("tensor: MaxPoolU8Into: x %d / y %d too small for [%d,%d,%d,%d]→[%d,%d]",
			len(x), len(y), n, c, h, w, oh, ow))
	}
	if p.Pad == 0 && oh > 0 && ow > 0 {
		maxPoolU8Separable(x, n, c, h, w, p, y, oh, ow)
		return oh, ow
	}
	oi := 0
	for i := 0; i < n*c; i++ {
		plane := x[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var best uint8
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride - p.Pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					row := plane[iy*w : iy*w+w]
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride - p.Pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						if v := row[ix]; v > best {
							best = v
						}
					}
				}
				y[oi] = best
				oi++
			}
		}
	}
	return oh, ow
}

// maxPoolU8Separable is the unpadded fast path: vertical max of the K window
// rows into rowmax (VPMAXUB-vectorized on amd64), then a horizontal K-max
// per output element.
func maxPoolU8Separable(x []uint8, n, c, h, w int, p PoolSpec, y []uint8, oh, ow int) {
	rowmaxP := GetScratchU8(w)
	rowmax := *rowmaxP
	for i := 0; i < n*c; i++ {
		plane := x[i*h*w : (i+1)*h*w]
		yp := y[i*oh*ow : (i+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			iy := oy * p.Stride
			copy(rowmax, plane[iy*w:iy*w+w])
			for t := 1; t < p.K; t++ {
				maxU8Into(rowmax, plane[(iy+t)*w:(iy+t)*w+w])
			}
			out := yp[oy*ow : oy*ow+ow]
			for ox := 0; ox < ow; ox++ {
				ix := ox * p.Stride
				m := rowmax[ix]
				for t := 1; t < p.K; t++ {
					if v := rowmax[ix+t]; v > m {
						m = v
					}
				}
				out[ox] = m
			}
		}
	}
	PutScratchU8(rowmaxP)
}

// maxU8Into computes dst = max(dst, src) element-wise.
func maxU8Into(dst, src []uint8) {
	j := 0
	if haveQuantASM && len(dst) >= 32 {
		m := len(dst) &^ 31
		maxU8x32(&dst[0], &src[0], int64(m))
		j = m
	}
	for ; j < len(dst); j++ {
		if src[j] > dst[j] {
			dst[j] = src[j]
		}
	}
}
