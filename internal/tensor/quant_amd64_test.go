//go:build amd64

package tensor

import (
	"math/rand"
	"testing"
)

// TestQGemmKernelMatchesGeneric checks the assembly micro-kernel against the
// portable one on identical packed panels.
func TestQGemmKernelMatchesGeneric(t *testing.T) {
	if !haveQuantASM {
		t.Skip("no quantized assembly kernel on this platform")
	}
	rng := rand.New(rand.NewSource(12))
	for _, quads := range []int{1, 2, 3, 17, 64} {
		a := make([]int8, quads*mrQTile*4)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
		}
		b := make([]uint8, quads*nrQTile*4)
		for i := range b {
			b[i] = uint8(rng.Intn(QMaxU8 + 1))
		}
		init := make([]int32, mrQTile*nrQTile)
		for i := range init {
			init[i] = int32(rng.Intn(1000) - 500)
		}
		want := append([]int32(nil), init...)
		qgemmKernelGeneric(quads, a, b, want, nrQTile)
		got := append([]int32(nil), init...)
		qgemmKernel4x16(int64(quads), &a[0], &b[0], &got[0], int64(nrQTile))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("avx2 quads=%d: tile[%d]=%d want %d", quads, i, got[i], want[i])
			}
		}
		if haveVNNI {
			got = append(got[:0], init...)
			qgemmKernelVNNI4x16(int64(quads), &a[0], &b[0], &got[0], int64(nrQTile))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("vnni quads=%d: tile[%d]=%d want %d", quads, i, got[i], want[i])
				}
			}
		}
	}
}
