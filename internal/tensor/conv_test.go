package tensor

import (
	"math/rand"
	"strings"
	"testing"
)

// TestConvForward1x1FastPath checks the pointwise fast path (which skips
// Im2col and accepts a nil col scratch) against the naive direct conv.
func TestConvForward1x1FastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := ConvSpec{InC: 5, OutC: 7, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	x := FromSlice(randSlice(rng, 3*5*6*4), 3, 5, 6, 4)
	w := randSlice(rng, s.OutC*s.InC)
	b := randSlice(rng, s.OutC)
	got := ConvForward(x, w, b, s, nil) // nil col: fast path must not touch it
	want := naiveConv(x, w, b, s)
	if !got.SameShape(want) {
		t.Fatalf("shape %v want %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if !relClose(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("y[%d]=%v want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestConvForwardIntoChannelOffset writes two convolutions into disjoint
// channel ranges of one output tensor and checks the result equals the
// concatenation of the two standalone convolutions — the Fire-module layout.
func TestConvForwardIntoChannelOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in := FromSlice(randSlice(rng, 2*6*5*5), 2, 6, 5, 5)
	s1 := ConvSpec{InC: 6, OutC: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	s3 := ConvSpec{InC: 6, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w1 := randSlice(rng, s1.OutC*s1.InC)
	b1 := randSlice(rng, s1.OutC)
	w3 := randSlice(rng, s3.OutC*s3.InC*9)
	b3 := randSlice(rng, s3.OutC)
	col := make([]float32, s3.InC*9*5*5)

	y := New(2, 7, 5, 5)
	ConvForwardInto(in, w1, b1, s1, nil, y, 0, false)
	ConvForwardInto(in, w3, b3, s3, col, y, 3, false)

	y1 := naiveConv(in, w1, b1, s1)
	y3 := naiveConv(in, w3, b3, s3)
	plane := 5 * 5
	for i := 0; i < 2; i++ {
		for c := 0; c < 7; c++ {
			var want []float32
			if c < 3 {
				want = y1.Data[(i*3+c)*plane : (i*3+c+1)*plane]
			} else {
				want = y3.Data[(i*4+c-3)*plane : (i*4+c-2)*plane]
			}
			got := y.Data[(i*7+c)*plane : (i*7+c+1)*plane]
			for j := range want {
				if !relClose(float64(got[j]), float64(want[j]), 1e-4) {
					t.Fatalf("n=%d c=%d j=%d: got %v want %v", i, c, j, got[j], want[j])
				}
			}
		}
	}
}

// TestConvForwardIntoFusedReLU checks the fused bias+ReLU epilogue equals
// conv followed by a separate clamp.
func TestConvForwardIntoFusedReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := ConvSpec{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := FromSlice(randSlice(rng, 1*3*9*9), 1, 3, 9, 9)
	w := randSlice(rng, s.OutC*s.InC*9)
	b := randSlice(rng, s.OutC)
	oh, ow := s.OutSize(9, 9)
	col := make([]float32, s.InC*9*oh*ow)

	fused := New(1, s.OutC, oh, ow)
	ConvForwardInto(x, w, b, s, col, fused, 0, true)

	want := naiveConv(x, w, b, s)
	for i, v := range want.Data {
		if v < 0 {
			v = 0
		}
		if !relClose(float64(fused.Data[i]), float64(v), 1e-4) {
			t.Fatalf("y[%d]=%v want %v", i, fused.Data[i], v)
		}
	}
}

// TestConvScratchValidation checks that undersized col scratch panics with a
// diagnostic message instead of silently computing on a truncated column
// matrix.
func TestConvScratchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := FromSlice(randSlice(rng, 1*2*5*5), 1, 2, 5, 5)
	w := randSlice(rng, s.OutC*s.InC*9)
	short := make([]float32, 7) // far too small

	expectPanic := func(name string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic on undersized col scratch", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "col scratch") {
				t.Fatalf("%s: panic %v lacks diagnostic message", name, r)
			}
		}()
		fn()
	}
	expectPanic("ConvForward", func() { ConvForward(x, w, nil, s, short) })
	expectPanic("ConvBackward", func() {
		dy := New(1, s.OutC, 5, 5)
		dw := make([]float32, len(w))
		ConvBackward(x, dy, w, dw, nil, s, short)
	})
}

// TestConvBackward1x1FastPath verifies the pointwise backward shortcut
// (no im2col / col2im round-trip) against central differences.
func TestConvBackward1x1FastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := ConvSpec{InC: 3, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	x := FromSlice(randSlice(rng, 1*3*4*4), 1, 3, 4, 4)
	w := randSlice(rng, s.OutC*s.InC)
	b := randSlice(rng, s.OutC)
	oh, ow := s.OutSize(4, 4)
	coef := randSlice(rng, s.OutC*oh*ow)
	objective := func() float64 {
		y := ConvForward(x, w, b, s, nil)
		var v float64
		for i, c := range coef {
			v += float64(c) * float64(y.Data[i])
		}
		return v
	}
	dy := FromSlice(append([]float32(nil), coef...), 1, s.OutC, oh, ow)
	dw := make([]float32, len(w))
	db := make([]float32, len(b))
	dx := ConvBackward(x, dy, w, dw, db, s, nil)

	const eps = 1e-2
	check := func(name string, buf, grad []float32, idxs []int) {
		for _, i := range idxs {
			orig := buf[i]
			buf[i] = orig + eps
			up := objective()
			buf[i] = orig - eps
			down := objective()
			buf[i] = orig
			num := (up - down) / (2 * eps)
			if !almostEq(num, float64(grad[i]), 2e-2) {
				t.Fatalf("%s[%d]: numerical %v analytic %v", name, i, num, grad[i])
			}
		}
	}
	check("dx", x.Data, dx.Data, []int{0, 13, 31, 47})
	check("dw", w, dw, []int{0, 3, 5})
	check("db", b, db, []int{0, 1})
}

// TestIm2colCol2imAdjointHardSpecs is the strengthened adjoint property:
// rectangular kernels, strides beyond 1, and asymmetric padding, over random
// image sizes. <Im2col(x), y> must equal <x, Col2im(y)> for every spec.
func TestIm2colCol2imAdjointHardSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 120; trial++ {
		c := 1 + rng.Intn(4)
		h := 4 + rng.Intn(9)
		w := 4 + rng.Intn(9)
		s := ConvSpec{
			InC: c, OutC: 1,
			KH: 1 + rng.Intn(4), KW: 1 + rng.Intn(4), // rectangular: KH and KW drawn independently
			StrideH: 1 + rng.Intn(3), StrideW: 1 + rng.Intn(3), // stride up to 3
			PadH: rng.Intn(3), PadW: rng.Intn(3), // asymmetric: PadH != PadW allowed
		}
		if s.KH > h+2*s.PadH || s.KW > w+2*s.PadW {
			continue
		}
		oh, ow := s.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}
		x := randSlice(rng, c*h*w)
		col := make([]float32, c*s.KH*s.KW*oh*ow)
		Im2col(x, c, h, w, s, col)
		y := randSlice(rng, len(col))
		var lhs float64
		for i := range col {
			lhs += float64(col[i]) * float64(y[i])
		}
		back := make([]float32, len(x))
		Col2im(y, c, h, w, s, back)
		var rhs float64
		for i := range x {
			rhs += float64(x[i]) * float64(back[i])
		}
		if !almostEq(lhs, rhs, 1e-2*(1+lhs*lhs)) {
			t.Fatalf("trial %d spec %+v: <im2col(x),y>=%v <x,col2im(y)>=%v", trial, s, lhs, rhs)
		}
	}
}

// TestArenaReusesBuffersExactly verifies Get/Put round-trips reuse storage
// (the zero-steady-state-allocation property) and that tensor headers are
// recycled alongside.
func TestArenaReusesBuffersExactly(t *testing.T) {
	a := NewArena()
	b1 := a.Get(128)
	b1[0] = 42
	a.Put(b1)
	b2 := a.Get(128)
	if &b1[0] != &b2[0] {
		t.Fatal("arena did not reuse the freed buffer")
	}
	a.Put(b2)

	t1 := a.GetTensor(2, 3)
	d1 := &t1.Data[0]
	a.PutTensor(t1)
	t2 := a.GetTensor(3, 2)
	if t1 != t2 {
		t.Fatal("arena did not recycle the tensor header")
	}
	if &t2.Data[0] != d1 {
		t.Fatal("arena did not reuse the tensor buffer for an equal-size shape")
	}
	if t2.Shape[0] != 3 || t2.Shape[1] != 2 {
		t.Fatalf("recycled tensor shape %v", t2.Shape)
	}
}
