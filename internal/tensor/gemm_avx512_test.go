//go:build amd64

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fmaRef8x32 is the bit-reference for the AVX-512F micro-kernel: the same
// 8×32 tile update with every accumulation emulated as a fused
// multiply-add (math.FMA computes a*b+c with a single rounding) in the same
// k order as the assembly's FMA chain.
func fmaRef8x32(kc int, a, b, ctile []float32, ldc int) {
	for p := 0; p < kc; p++ {
		for r := 0; r < 8; r++ {
			av := float64(a[p*8+r])
			for j := 0; j < 32; j++ {
				c := &ctile[r*ldc+j]
				*c = float32(math.FMA(av, float64(b[p*32+j]), float64(*c)))
			}
		}
	}
}

// TestGemmKernelAVX512BitExact compares the ZMM kernel against the
// FMA-emulating portable reference bit for bit across kc values that hit the
// unrolled loop, the odd tail, and a full L1 panel.
func TestGemmKernelAVX512BitExact(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512F+VL on this CPU")
	}
	rng := rand.New(rand.NewSource(21))
	for _, kc := range []int{1, 2, 3, 7, 8, 15, 64, 255, 256} {
		a := randSlice(rng, kc*8)
		b := randSlice(rng, kc*32)
		got := randSlice(rng, 8*32)
		want := append([]float32(nil), got...)
		sgemmKernel8x32(int64(kc), &a[0], &b[0], &got[0], 32)
		fmaRef8x32(kc, a, b, want, 32)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("kc=%d: c[%d]=%b want %b (bit mismatch)", kc, i, got[i], want[i])
			}
		}
	}
}

// TestGemmKernelAVX512WideStride runs the kernel with ldc wider than the
// tile (the in-place full-tile path inside a larger C) and checks it only
// touches its own 8×32 window.
func TestGemmKernelAVX512WideStride(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512F+VL on this CPU")
	}
	rng := rand.New(rand.NewSource(22))
	const kc, ldc = 37, 50
	a := randSlice(rng, kc*8)
	b := randSlice(rng, kc*32)
	got := randSlice(rng, 8*ldc)
	want := append([]float32(nil), got...)
	sgemmKernel8x32(int64(kc), &a[0], &b[0], &got[0], ldc)
	fmaRef8x32(kc, a, b, want, ldc)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("c[%d]=%b want %b", i, got[i], want[i])
		}
	}
}

// TestGemmAVX512TierMatchesAVX2Tier runs whole blocked products under the
// AVX-512 8×32 tier and the AVX2 6×16 tier and demands bit-identical C.
// For k ≤ kcBlock every C element is one k-ordered FMA chain from zero in
// both tiers (edge tiles fold scratch into zeroed C with exact adds), so the
// tile geometry must not change a single bit. The shape sweep covers every
// m%8 and n%32 remainder class the 8×32 tile can hit.
func TestGemmAVX512TierMatchesAVX2Tier(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512F+VL on this CPU")
	}
	avx512 := gemmTier
	avx2 := gemmTierT{name: "avx2-6x16", kind: tierKind6x16, mr: mrTile, nr: nrTile, mc: mcBlock}
	defer func() { gemmTier = avx512 }()
	rng := rand.New(rand.NewSource(23))
	ms := []int{1, 5, 7, 8, 9, 14, 16, 129}
	ns := []int{1, 17, 31, 32, 33, 63, 64, 97}
	for _, k := range []int{1, 19, 256} {
		for _, m := range ms {
			for _, n := range ns {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				gemmTier = avx512
				c512 := make([]float32, m*n)
				gemmBlocked(a, b, c512, m, k, n, false, false)
				gemmTier = avx2
				c256 := make([]float32, m*n)
				gemmBlocked(a, b, c256, m, k, n, false, false)
				for i := range c512 {
					if c512[i] != c256[i] {
						t.Fatalf("m=%d k=%d n=%d: c[%d]=%b (avx512) vs %b (avx2)", m, k, n, i, c512[i], c256[i])
					}
				}
			}
		}
	}
}

// TestGemmKernelNameMatchesDetection pins the dispatch: the reported tier
// must agree with what the CPU actually offers.
func TestGemmKernelNameMatchesDetection(t *testing.T) {
	want := "portable-6x16"
	switch {
	case haveAVX512:
		want = "avx512-8x32"
	case haveFMA:
		want = "avx2-6x16"
	}
	if got := GemmKernelName(); got != want {
		t.Fatalf("GemmKernelName()=%q want %q (haveFMA=%v haveAVX512=%v)", got, want, haveFMA, haveAVX512)
	}
}
