//go:build !amd64

package tensor

// gemmKernel runs one packed 6×16 micro-tile update on platforms without an
// assembly kernel.
func gemmKernel(kc int, a, b, ctile []float32, ldc int) {
	gemmKernelGeneric(kc, a, b, ctile, ldc)
}

// gemmKernelTier dispatches by tier kind; without assembly both kinds run
// the portable kernel at the tier's geometry.
func gemmKernelTier(kind uint8, kc int, a, b, ctile []float32, ldc int) {
	if kind == tierKind8x32 {
		gemmKernelGeneric8x32(kc, a, b, ctile, ldc)
		return
	}
	gemmKernelGeneric(kc, a, b, ctile, ldc)
}
