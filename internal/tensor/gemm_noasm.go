//go:build !amd64

package tensor

// gemmKernel runs one packed 6×16 micro-tile update on platforms without an
// assembly kernel.
func gemmKernel(kc int, a, b, ctile []float32, ldc int) {
	gemmKernelGeneric(kc, a, b, ctile, ldc)
}
