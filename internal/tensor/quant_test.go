package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// qgemmRef is the naive int32 reference product for the quantized GEMM.
func qgemmRef(a []int8, b []uint8, m, k, n int) []int32 {
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := int32(a[i*k+p])
			for j := 0; j < n; j++ {
				c[i*n+j] += av * int32(b[p*n+j])
			}
		}
	}
	return c
}

func randQOperands(rng *rand.Rand, m, k, n int) ([]int8, []uint8) {
	a := make([]int8, m*k)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	b := make([]uint8, k*n)
	for i := range b {
		b[i] = uint8(rng.Intn(QMaxU8 + 1))
	}
	return a, b
}

// TestQGemmMatchesReference exercises the blocked quantized GEMM (packing,
// edge tiles, partial quads, the assembly kernel when available) against the
// naive reference across awkward shapes. Negative weights distinguish the
// signed from the unsigned VPMADDUBSW operand, so an operand-order bug in the
// assembly cannot pass.
func TestQGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 16, 16}, {6, 3, 33},
		{16, 96, 49}, {5, 7, 129}, {96, 196, 50}, {13, 200, 37},
		{64, 147, 121}, {2, 513, 18},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randQOperands(rng, m, k, n)
		want := qgemmRef(a, b, m, k, n)
		got := make([]int32, m*n)
		QGemm(a, b, got, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("QGemm %dx%dx%d: c[%d]=%d want %d", m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestQGemmQuantizedVsFloat quantizes a random float GEMM and checks the
// dequantized int8 product stays within the propagated quantization error
// bound of the float32 result.
func TestQGemmQuantizedVsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, k, n := 24, 96, 70
	w := make([]float32, m*k)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	x := make([]float32, k*n)
	var minX, maxX float32
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		if x[i] < minX {
			minX = x[i]
		}
		if x[i] > maxX {
			maxX = x[i]
		}
	}
	xq := ChooseQuantParams(minX, maxX)
	xu := make([]uint8, len(x))
	QuantizeU8(xu, x, xq)
	wq, ws, wsum := QuantizeWeightsPerChannel(w, m, k)

	want := make([]float32, m*n)
	Gemm(w, x, want, m, k, n)
	acc := make([]int32, m*n)
	QGemm(wq, xu, acc, m, k, n)

	// Per-element error bound: each of the k products carries at most
	// (sW/2)·|x| + (sX/2)·|w| + sW·sX/4 of rounding error; bound loosely
	// with max |x| ≈ 4σ, |w| ≈ 4σ.
	for oc := 0; oc < m; oc++ {
		mult := ws[oc] * xq.Scale
		bound := float64(k) * float64(ws[oc]*4+xq.Scale*4+ws[oc]*xq.Scale) / 2
		for j := 0; j < n; j++ {
			got := mult * float32(acc[oc*n+j]-xq.Zero*wsum[oc])
			diff := math.Abs(float64(got - want[oc*n+j]))
			if diff > bound {
				t.Fatalf("c[%d,%d]: int8 %v vs float %v (diff %v > bound %v)",
					oc, j, got, want[oc*n+j], diff, bound)
			}
		}
	}
}

// TestQuantizeRoundTrip is the requantize round-trip property test: for
// random ranges, quantize→dequantize must stay within half a quantization
// step of the clamped original, and the zero point must map exactly to 0.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		lo := float32(-rng.Float64() * 10)
		hi := float32(rng.Float64()*10 + 0.1)
		q := ChooseQuantParams(lo, hi)
		if q.Zero < 0 || q.Zero > QMaxU8 {
			t.Fatalf("zero point %d out of range", q.Zero)
		}
		// real 0 must be exactly representable
		zbuf := make([]uint8, 1)
		QuantizeU8(zbuf, []float32{0}, q)
		back := make([]float32, 1)
		DequantizeU8(back, zbuf, q)
		if back[0] != 0 {
			t.Fatalf("zero does not round-trip: %v (params %+v)", back[0], q)
		}
		vals := make([]float32, 256)
		for i := range vals {
			vals[i] = lo + (hi-lo)*float32(rng.Float64())
		}
		u := make([]uint8, len(vals))
		QuantizeU8(u, vals, q)
		rt := make([]float32, len(vals))
		DequantizeU8(rt, u, q)
		for i, v := range vals {
			clamped := v
			if min := -q.Scale * float32(q.Zero); clamped < min {
				clamped = min
			}
			if max := q.Scale * float32(QMaxU8-q.Zero); clamped > max {
				clamped = max
			}
			if diff := math.Abs(float64(rt[i] - clamped)); diff > float64(q.Scale)/2+1e-6 {
				t.Fatalf("round-trip v=%v got %v (diff %v > step/2 %v)", v, rt[i], diff, q.Scale/2)
			}
		}
	}
}

// TestRequantizeU8MatchesScalar checks the vectorized requantization epilogue
// against the scalar reference, including the ReLU lower clamp, across sizes
// that exercise both the 32-wide body and the scalar tail.
func TestRequantizeU8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 31, 32, 33, 100, 256, 1000} {
		for _, relu := range []bool{false, true} {
			acc := make([]int32, n)
			for i := range acc {
				acc[i] = int32(rng.Intn(2_000_000) - 1_000_000)
			}
			mult := float32(rng.Float64() * 1e-4)
			beta := float32(rng.NormFloat64() * 10)
			zOut := int32(rng.Intn(QMaxU8))
			got := make([]uint8, n)
			RequantizeU8(got, acc, mult, beta, zOut, relu)
			lo := int32(0)
			if relu {
				lo = zOut
			}
			for i, a := range acc {
				x := int32(math.RoundToEven(float64(float32(a)*mult + beta)))
				if x < lo {
					x = lo
				} else if x > QMaxU8 {
					x = QMaxU8
				}
				if got[i] != uint8(x) {
					t.Fatalf("n=%d relu=%v: dst[%d]=%d want %d (acc=%d mult=%v beta=%v)",
						n, relu, i, got[i], x, a, mult, beta)
				}
			}
		}
	}
}

// TestIm2colU8MatchesFloat checks the quantized im2col against the float one
// on the same (quantized) data, with zero-point-encoded padding.
func TestIm2colU8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := ConvSpec{InC: 3, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	c, h, w := 3, 9, 7
	imgU := make([]uint8, c*h*w)
	imgF := make([]float32, c*h*w)
	zp := uint8(17)
	for i := range imgU {
		imgU[i] = uint8(rng.Intn(QMaxU8 + 1))
		imgF[i] = float32(imgU[i])
	}
	oh, ow := s.OutSize(h, w)
	colU := make([]uint8, s.InC*s.KH*s.KW*oh*ow)
	colF := make([]float32, len(colU))
	Im2colU8(imgU, c, h, w, s, colU, zp)
	Im2col(imgF, c, h, w, s, colF)
	for i := range colU {
		want := colF[i]
		if want == 0 && colU[i] == zp {
			continue // padding encodes real 0 as the zero point
		}
		if float32(colU[i]) != want {
			t.Fatalf("col[%d]=%d want %v", i, colU[i], want)
		}
	}
}

// TestMaxPoolU8MatchesFloat checks u8 pooling against float pooling of the
// same values.
func TestMaxPoolU8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, c, h, w := 2, 3, 9, 9
	xu := make([]uint8, n*c*h*w)
	xf := New(n, c, h, w)
	for i := range xu {
		xu[i] = uint8(rng.Intn(QMaxU8 + 1))
		xf.Data[i] = float32(xu[i])
	}
	p := PoolSpec{K: 3, Stride: 2}
	oh, ow := p.OutSize(h, w)
	yu := make([]uint8, n*c*oh*ow)
	MaxPoolU8Into(xu, n, c, h, w, p, yu)
	yf := New(n, c, oh, ow)
	MaxPoolForwardInto(xf, p, yf)
	for i := range yu {
		if float32(yu[i]) != yf.Data[i] {
			t.Fatalf("pool[%d]=%d want %v", i, yu[i], yf.Data[i])
		}
	}
}

// TestQGemmConcurrentSharedPool hammers the quantized GEMM from several
// goroutines sharing the worker pool (run under -race), checking results
// stay correct under contention.
func TestQGemmConcurrentSharedPool(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(18))
	m, k, n := 32, 64, 200
	a, b := randQOperands(rng, m, k, n)
	want := qgemmRef(a, b, m, k, n)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]int32, m*n)
			for iter := 0; iter < 10; iter++ {
				QGemm(a, b, c, m, k, n)
				for i := range want {
					if c[i] != want[i] {
						errs <- "concurrent QGemm mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestQuantizeWeightsPerChannel checks scales, row sums, and that dequantized
// weights stay within half a step per channel.
func TestQuantizeWeightsPerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	outC, k := 8, 30
	w := make([]float32, outC*k)
	for i := range w {
		w[i] = float32(rng.NormFloat64()) * float32(1+rng.Intn(5))
	}
	wq, ws, wsum := QuantizeWeightsPerChannel(w, outC, k)
	for oc := 0; oc < outC; oc++ {
		var sum int32
		for j := 0; j < k; j++ {
			q := wq[oc*k+j]
			sum += int32(q)
			diff := math.Abs(float64(float32(q)*ws[oc] - w[oc*k+j]))
			if diff > float64(ws[oc])/2+1e-6 {
				t.Fatalf("w[%d,%d]: dequant err %v > step/2", oc, j, diff)
			}
		}
		if sum != wsum[oc] {
			t.Fatalf("row sum[%d]=%d want %d", oc, wsum[oc], sum)
		}
	}
}

func BenchmarkQGemm96x196x12544(b *testing.B) {
	benchQGemm(b, 96, 196, 12544)
}

func BenchmarkQGemm64x144x3136(b *testing.B) {
	benchQGemm(b, 64, 144, 3136)
}

func BenchmarkQGemm256x64x784(b *testing.B) {
	benchQGemm(b, 256, 64, 784)
}

func benchQGemm(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(20))
	wq, x := randQOperands(rng, m, k, n)
	c := make([]int32, m*n)
	b.SetBytes(int64(2 * m * k * n)) // MACs ≈ bytes/2 for ops/s readout
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QGemm(wq, x, c, m, k, n)
	}
}

func BenchmarkRequantizeU8(b *testing.B) {
	acc := make([]int32, 96*12544)
	for i := range acc {
		acc[i] = int32(i%100000 - 50000)
	}
	dst := make([]uint8, len(acc))
	b.SetBytes(int64(len(acc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RequantizeU8(dst, acc, 1e-4, 3, 5, true)
	}
}
