package tensor

import "sync"

// Arena is a size-classed free-list allocator for inference scratch. A
// network forward pass requests the same buffer sizes frame after frame, so
// after one warm-up pass every Get is satisfied from the free list and the
// steady state allocates nothing.
//
// Ownership rules:
//   - An Arena is NOT goroutine-safe. Each concurrent inference (e.g. one
//     raster worker) must use its own arena; GetArena/PutArena recycle warm
//     arenas through a global sync.Pool.
//   - Tensors handed out by GetTensor belong to the arena. Callers must copy
//     any values they need before PutTensor/PutArena, and must not retain the
//     tensor (or slices of its data) afterwards.
//   - Buffers are returned uncleared: callers must fully overwrite them.
type Arena struct {
	free    map[int][][]float32
	freeU8  map[int][][]uint8
	freeI32 map[int][][]int32
	headers []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		free:    make(map[int][][]float32),
		freeU8:  make(map[int][][]uint8),
		freeI32: make(map[int][][]int32),
	}
}

// Get returns an uncleared buffer of length n, reusing a previously Put
// buffer of the same length when available.
func (a *Arena) Get(n int) []float32 {
	if l := a.free[n]; len(l) > 0 {
		buf := l[len(l)-1]
		a.free[n] = l[:len(l)-1]
		return buf
	}
	return make([]float32, n)
}

// Put returns a buffer obtained from Get to the free list.
func (a *Arena) Put(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	a.free[len(buf)] = append(a.free[len(buf)], buf)
}

// GetU8 returns an uncleared byte buffer of length n from the arena — the
// quantized-activation counterpart of Get. Same ownership rules.
func (a *Arena) GetU8(n int) []uint8 {
	if l := a.freeU8[n]; len(l) > 0 {
		buf := l[len(l)-1]
		a.freeU8[n] = l[:len(l)-1]
		return buf
	}
	return make([]uint8, n)
}

// PutU8 returns a buffer obtained from GetU8 to the free list.
func (a *Arena) PutU8(buf []uint8) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	a.freeU8[len(buf)] = append(a.freeU8[len(buf)], buf)
}

// GetI32 returns an uncleared int32 buffer of length n from the arena — the
// quantized-accumulator counterpart of Get. Same ownership rules.
func (a *Arena) GetI32(n int) []int32 {
	if l := a.freeI32[n]; len(l) > 0 {
		buf := l[len(l)-1]
		a.freeI32[n] = l[:len(l)-1]
		return buf
	}
	return make([]int32, n)
}

// PutI32 returns a buffer obtained from GetI32 to the free list.
func (a *Arena) PutI32(buf []int32) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	a.freeI32[len(buf)] = append(a.freeI32[len(buf)], buf)
}

// GetTensor returns an arena-owned tensor with the given shape and uncleared
// contents. Tensor headers are recycled alongside the data buffers, so the
// steady state performs no heap allocation.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var t *Tensor
	if len(a.headers) > 0 {
		t = a.headers[len(a.headers)-1]
		a.headers = a.headers[:len(a.headers)-1]
	} else {
		t = &Tensor{}
	}
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = a.Get(n)[:n]
	return t
}

// PutTensor returns an arena-owned tensor's buffer and header to the arena.
func (a *Arena) PutTensor(t *Tensor) {
	a.Put(t.Data)
	t.Data = nil
	a.headers = append(a.headers, t)
}

// arenaPool recycles warm arenas across goroutines.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// GetArena fetches a (possibly warm) arena from the global pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the global pool. The caller must no longer
// hold any tensor or buffer obtained from it.
func PutArena(a *Arena) { arenaPool.Put(a) }

// scratchPool recycles transient scratch buffers (GEMM packing panels,
// im2col columns, conv backward dcol). Pointers to slice headers are pooled
// so the steady state performs no boxing allocation.
var scratchPool sync.Pool

// GetScratch returns a pointer to a scratch buffer of length n. Contents are
// uncleared. Release with PutScratch.
func GetScratch(n int) *[]float32 {
	p, _ := scratchPool.Get().(*[]float32)
	if p == nil {
		p = new([]float32)
	}
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]float32) { scratchPool.Put(p) }

// Typed scratch pools for the quantized kernels and the training path; same
// pointer-boxing scheme as scratchPool so steady-state Put allocates nothing.
var (
	scratchPoolU8  sync.Pool
	scratchPoolI8  sync.Pool
	scratchPoolI32 sync.Pool
)

// GetScratchU8 returns a pointer to an uncleared byte scratch buffer of
// length n. Release with PutScratchU8.
func GetScratchU8(n int) *[]uint8 {
	p, _ := scratchPoolU8.Get().(*[]uint8)
	if p == nil {
		p = new([]uint8)
	}
	if cap(*p) < n {
		*p = make([]uint8, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratchU8 returns a buffer obtained from GetScratchU8 to the pool.
func PutScratchU8(p *[]uint8) { scratchPoolU8.Put(p) }

// GetScratchI8 returns a pointer to an uncleared int8 scratch buffer of
// length n. Release with PutScratchI8.
func GetScratchI8(n int) *[]int8 {
	p, _ := scratchPoolI8.Get().(*[]int8)
	if p == nil {
		p = new([]int8)
	}
	if cap(*p) < n {
		*p = make([]int8, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratchI8 returns a buffer obtained from GetScratchI8 to the pool.
func PutScratchI8(p *[]int8) { scratchPoolI8.Put(p) }

// GetScratchI32 returns a pointer to an uncleared int32 scratch buffer of
// length n. Release with PutScratchI32.
func GetScratchI32(n int) *[]int32 {
	p, _ := scratchPoolI32.Get().(*[]int32)
	if p == nil {
		p = new([]int32)
	}
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratchI32 returns a buffer obtained from GetScratchI32 to the pool.
func PutScratchI32(p *[]int32) { scratchPoolI32.Put(p) }
