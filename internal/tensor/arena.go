package tensor

import "sync"

// Arena is a size-classed free-list allocator for inference scratch. A
// network forward pass requests the same buffer sizes frame after frame, so
// after one warm-up pass every Get is satisfied from the free list and the
// steady state allocates nothing.
//
// Ownership rules:
//   - An Arena is NOT goroutine-safe. Each concurrent inference (e.g. one
//     raster worker) must use its own arena; GetArena/PutArena recycle warm
//     arenas through a global sync.Pool.
//   - Tensors handed out by GetTensor belong to the arena. Callers must copy
//     any values they need before PutTensor/PutArena, and must not retain the
//     tensor (or slices of its data) afterwards.
//   - Buffers are returned uncleared: callers must fully overwrite them.
type Arena struct {
	free    map[int][][]float32
	headers []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][][]float32)}
}

// Get returns an uncleared buffer of length n, reusing a previously Put
// buffer of the same length when available.
func (a *Arena) Get(n int) []float32 {
	if l := a.free[n]; len(l) > 0 {
		buf := l[len(l)-1]
		a.free[n] = l[:len(l)-1]
		return buf
	}
	return make([]float32, n)
}

// Put returns a buffer obtained from Get to the free list.
func (a *Arena) Put(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	a.free[len(buf)] = append(a.free[len(buf)], buf)
}

// GetTensor returns an arena-owned tensor with the given shape and uncleared
// contents. Tensor headers are recycled alongside the data buffers, so the
// steady state performs no heap allocation.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var t *Tensor
	if len(a.headers) > 0 {
		t = a.headers[len(a.headers)-1]
		a.headers = a.headers[:len(a.headers)-1]
	} else {
		t = &Tensor{}
	}
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = a.Get(n)[:n]
	return t
}

// PutTensor returns an arena-owned tensor's buffer and header to the arena.
func (a *Arena) PutTensor(t *Tensor) {
	a.Put(t.Data)
	t.Data = nil
	a.headers = append(a.headers, t)
}

// arenaPool recycles warm arenas across goroutines.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// GetArena fetches a (possibly warm) arena from the global pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the global pool. The caller must no longer
// hold any tensor or buffer obtained from it.
func PutArena(a *Arena) { arenaPool.Put(a) }

// scratchPool recycles transient scratch buffers (GEMM packing panels,
// im2col columns, conv backward dcol). Pointers to slice headers are pooled
// so the steady state performs no boxing allocation.
var scratchPool sync.Pool

// GetScratch returns a pointer to a scratch buffer of length n. Contents are
// uncleared. Release with PutScratch.
func GetScratch(n int) *[]float32 {
	p, _ := scratchPool.Get().(*[]float32)
	if p == nil {
		p = new([]float32)
	}
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]float32) { scratchPool.Put(p) }
