package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 {
		t.Fatalf("Len = %d, want 120", x.Len())
	}
	x.Set(7, 1, 2, 3, 4)
	if got := x.At(1, 2, 3, 4); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := x.Data[119]; got != 7 {
		t.Fatalf("last element = %v, want 7 (row-major layout)", got)
	}
}

func TestFromSliceAndReshape(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(data, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape view broken: got %v", y.At(2, 1))
	}
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share data")
	}
	c := x.Clone()
	c.Set(-1, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Clone must not share data")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestScaleFillZeroSum(t *testing.T) {
	x := New(4)
	x.Fill(2)
	x.Scale(3)
	if x.Sum() != 24 {
		t.Fatalf("Sum = %v, want 24", x.Sum())
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatalf("Sum after Zero = %v", x.Sum())
	}
}

func TestAddInPlaceAndMaxAbs(t *testing.T) {
	x := FromSlice([]float32{1, -5, 2}, 3)
	y := FromSlice([]float32{1, 1, 1}, 3)
	x.AddInPlace(y)
	if x.Data[1] != -4 {
		t.Fatalf("AddInPlace broken: %v", x.Data)
	}
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", x.MaxAbs())
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("Argmax wrong")
	}
	if Argmax([]float32{-3, -1, -2}) != 1 {
		t.Fatal("Argmax wrong on negatives")
	}
}

// naiveGemm is the reference O(mnk) triple loop.
func naiveGemm(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 48, 80}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c := make([]float32, m*n)
		Gemm(a, b, c, m, k, n)
		want := naiveGemm(a, b, m, k, n)
		for i := range c {
			if !almostEq(float64(c[i]), float64(want[i]), 1e-3) {
				t.Fatalf("dims %v: c[%d]=%v want %v", dims, i, c[i], want[i])
			}
		}
	}
}

func TestGemmTAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 7, 11, 5
	a := randSlice(rng, k*m) // stored K×M
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	GemmTA(a, b, c, m, k, n)
	// reference: transpose A then naive
	at := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			at[i*k+p] = a[p*m+i]
		}
	}
	want := naiveGemm(at, b, m, k, n)
	for i := range c {
		if !almostEq(float64(c[i]), float64(want[i]), 1e-3) {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestGemmTBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 6, 9, 8
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k) // stored N×K
	c := make([]float32, m*n)
	GemmTB(a, b, c, m, k, n)
	bt := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*k+p]
		}
	}
	want := naiveGemm(a, bt, m, k, n)
	for i := range c {
		if !almostEq(float64(c[i]), float64(want[i]), 1e-3) {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestGemmAccAccumulates(t *testing.T) {
	a := []float32{1, 0, 0, 1} // identity
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	GemmAcc(a, b, c, 2, 2, 2)
	want := []float32{6, 7, 8, 9}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("c=%v want %v", c, want)
		}
	}
}

// naiveConv is a direct convolution used as ground truth for the im2col path.
func naiveConv(x *Tensor, w, b []float32, s ConvSpec) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := s.OutSize(h, wd)
	y := New(n, s.OutC, oh, ow)
	for i := 0; i < n; i++ {
		for oc := 0; oc < s.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					if b != nil {
						sum = b[oc]
					}
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH - s.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW - s.PadW + kx
								if ix < 0 || ix >= wd {
									continue
								}
								wv := w[((oc*c+ic)*s.KH+ky)*s.KW+kx]
								sum += wv * x.At(i, ic, iy, ix)
							}
						}
					}
					y.Set(sum, i, oc, oy, ox)
				}
			}
		}
	}
	return y
}

func TestConvForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []ConvSpec{
		{InC: 3, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, OutC: 5, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 3, OutC: 2, KH: 3, KW: 3, StrideH: 2, StrideW: 2},
		{InC: 1, OutC: 3, KH: 5, KW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2},
	}
	for _, s := range cases {
		x := FromSlice(randSlice(rng, 2*s.InC*9*9), 2, s.InC, 9, 9)
		w := randSlice(rng, s.OutC*s.InC*s.KH*s.KW)
		b := randSlice(rng, s.OutC)
		oh, ow := s.OutSize(9, 9)
		col := make([]float32, s.InC*s.KH*s.KW*oh*ow)
		got := ConvForward(x, w, b, s, col)
		want := naiveConv(x, w, b, s)
		if !got.SameShape(want) {
			t.Fatalf("spec %+v: shape %v want %v", s, got.Shape, want.Shape)
		}
		for i := range got.Data {
			if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-3) {
				t.Fatalf("spec %+v: y[%d]=%v want %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConvBackwardNumerical verifies conv gradients by central differences.
func TestConvBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := FromSlice(randSlice(rng, 1*2*5*5), 1, 2, 5, 5)
	w := randSlice(rng, s.OutC*s.InC*9)
	b := randSlice(rng, s.OutC)
	oh, ow := s.OutSize(5, 5)
	col := make([]float32, s.InC*9*oh*ow)

	// scalar objective: sum of outputs weighted by fixed random coefficients
	coef := randSlice(rng, s.OutC*oh*ow)
	objective := func() float64 {
		y := ConvForward(x, w, b, s, col)
		var v float64
		for i, c := range coef {
			v += float64(c) * float64(y.Data[i])
		}
		return v
	}

	dy := FromSlice(append([]float32(nil), coef...), 1, s.OutC, oh, ow)
	dw := make([]float32, len(w))
	db := make([]float32, len(b))
	dx := ConvBackward(x, dy, w, dw, db, s, col)

	const eps = 1e-2
	check := func(name string, buf []float32, grad []float32, idxs []int) {
		for _, i := range idxs {
			orig := buf[i]
			buf[i] = orig + eps
			up := objective()
			buf[i] = orig - eps
			down := objective()
			buf[i] = orig
			num := (up - down) / (2 * eps)
			if !almostEq(num, float64(grad[i]), 2e-2) {
				t.Fatalf("%s[%d]: numerical %v analytic %v", name, i, num, grad[i])
			}
		}
	}
	check("dx", x.Data, dx.Data, []int{0, 7, 24, 49})
	check("dw", w, dw, []int{0, 5, 17, 53})
	check("db", b, db, []int{0, 1, 2})
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := PoolSpec{K: 2, Stride: 2}
	y, arg := MaxPoolForward(x, p)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool y=%v want %v", y.Data, want)
		}
	}
	dy := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := MaxPoolBackward(dy, arg, x.Shape)
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("maxpool backward wrong: %v", dx.Data)
	}
	if dx.Sum() != 10 {
		t.Fatalf("gradient mass not conserved: %v", dx.Sum())
	}
}

func TestMaxPoolOverlappingWindows(t *testing.T) {
	// SqueezeNet uses 3x3 stride-2 overlapping max pools.
	rng := rand.New(rand.NewSource(6))
	x := FromSlice(randSlice(rng, 1*2*7*7), 1, 2, 7, 7)
	p := PoolSpec{K: 3, Stride: 2}
	y, arg := MaxPoolForward(x, p)
	oh, ow := p.OutSize(7, 7)
	if y.Shape[2] != oh || y.Shape[3] != ow || oh != 3 {
		t.Fatalf("out shape %v", y.Shape)
	}
	// every argmax must point at an element >= all others in its window
	for i, a := range arg {
		if a < 0 {
			t.Fatalf("argmax[%d] unset", i)
		}
		if y.Data[i] != x.Data[a] {
			t.Fatalf("argmax/y mismatch at %d", i)
		}
	}
}

func TestAvgPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := PoolSpec{K: 2, Stride: 2}
	y := AvgPoolForward(x, p)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("avgpool y=%v want %v", y.Data, want)
		}
	}
	dy := FromSlice([]float32{4, 4, 4, 4}, 1, 1, 2, 2)
	dx := AvgPoolBackward(dy, p, x.Shape)
	for _, v := range dx.Data {
		if v != 1 {
			t.Fatalf("avgpool backward should spread uniformly: %v", dx.Data)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := GlobalAvgPoolForward(x)
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("gap = %v", y.Data)
	}
	dy := FromSlice([]float32{4, 8}, 1, 2, 1, 1)
	dx := GlobalAvgPoolBackward(dy, x.Shape)
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Fatalf("gap backward = %v", dx.Data)
	}
}

func TestReLU(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2, -3}, 4)
	mask := ReLUForward(x)
	if x.Data[0] != 0 || x.Data[2] != 2 {
		t.Fatalf("relu fwd = %v", x.Data)
	}
	dy := FromSlice([]float32{1, 1, 1, 1}, 4)
	ReLUBackward(dy, mask)
	if dy.Data[0] != 0 || dy.Data[2] != 1 || dy.Data[3] != 0 {
		t.Fatalf("relu bwd = %v", dy.Data)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(a, b, c float32) bool {
		// clamp to a sane range to avoid quick generating inf
		clamp := func(v float32) float32 {
			if v > 50 {
				return 50
			}
			if v < -50 {
				return -50
			}
			return v
		}
		x := FromSlice([]float32{clamp(a), clamp(b), clamp(c)}, 1, 3)
		y := Softmax(x)
		var sum float64
		for _, v := range y.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := FromSlice([]float32{1000, 1001}, 1, 2)
	y := Softmax(x)
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", y.Data)
		}
	}
	if !(y.Data[1] > y.Data[0]) {
		t.Fatal("ordering lost")
	}
}

func TestCrossEntropyLossAndGrad(t *testing.T) {
	probs := FromSlice([]float32{0.25, 0.75, 0.9, 0.1}, 2, 2)
	loss, grad := CrossEntropyLoss(probs, []int{1, 0})
	want := -(math.Log(0.75) + math.Log(0.9)) / 2
	if !almostEq(loss, want, 1e-6) {
		t.Fatalf("loss %v want %v", loss, want)
	}
	// grad = (p - onehot)/N
	if !almostEq(float64(grad.Data[0]), 0.25/2, 1e-6) ||
		!almostEq(float64(grad.Data[1]), (0.75-1)/2, 1e-6) {
		t.Fatalf("grad = %v", grad.Data)
	}
}

// Property: Col2im is the adjoint of Im2col, i.e. <im2col(x), y> == <x, col2im(y)>.
func TestIm2colCol2imAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		c := 1 + rng.Intn(3)
		h := 3 + rng.Intn(6)
		w := 3 + rng.Intn(6)
		s := ConvSpec{
			InC: c, OutC: 1,
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if s.KH > h+2*s.PadH || s.KW > w+2*s.PadW {
			continue
		}
		oh, ow := s.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			continue
		}
		x := randSlice(rng, c*h*w)
		col := make([]float32, c*s.KH*s.KW*oh*ow)
		Im2col(x, c, h, w, s, col)
		y := randSlice(rng, len(col))
		var lhs float64
		for i := range col {
			lhs += float64(col[i]) * float64(y[i])
		}
		back := make([]float32, len(x))
		Col2im(y, c, h, w, s, back)
		var rhs float64
		for i := range x {
			rhs += float64(x[i]) * float64(back[i])
		}
		if !almostEq(lhs, rhs, 1e-2*(1+math.Abs(lhs))) {
			t.Fatalf("trial %d spec %+v: <im2col(x),y>=%v <x,col2im(y)>=%v", trial, s, lhs, rhs)
		}
	}
}

func TestConvSpecOutSize(t *testing.T) {
	s := ConvSpec{InC: 3, OutC: 8, KH: 7, KW: 7, StrideH: 2, StrideW: 2}
	oh, ow := s.OutSize(224, 224)
	if oh != 109 || ow != 109 {
		t.Fatalf("OutSize = %d,%d", oh, ow)
	}
	p := PoolSpec{K: 3, Stride: 2}
	oh, ow = p.OutSize(109, 109)
	if oh != 54 || ow != 54 {
		t.Fatalf("pool OutSize = %d,%d", oh, ow)
	}
}
