package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestGemmWorkerBudget pins the pool-partition arithmetic: concurrent
// drivers split GOMAXPROCS, SetGemmParallelism caps the per-driver share,
// and a share below 2 signals serial.
func TestGemmWorkerBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	defer SetGemmParallelism(0)

	SetGemmParallelism(0)
	for _, tc := range []struct{ drivers, want int }{
		{1, 8}, {2, 4}, {3, 2}, {4, 2}, {8, 1}, {9, 0},
	} {
		if got := gemmWorkerBudget(tc.drivers); got != tc.want {
			t.Fatalf("budget(drivers=%d)=%d want %d", tc.drivers, got, tc.want)
		}
	}

	SetGemmParallelism(2)
	if got := GemmParallelism(); got != 2 {
		t.Fatalf("GemmParallelism()=%d want 2", got)
	}
	if got := gemmWorkerBudget(1); got != 2 {
		t.Fatalf("capped budget(1)=%d want 2", got)
	}
	if got := gemmWorkerBudget(2); got != 1 {
		t.Fatalf("capped budget(2)=%d want 1 (serial)", got)
	}

	// The pinned-lane setting: every product serial inside its own lane.
	SetGemmParallelism(1)
	if got := gemmWorkerBudget(1); got != 1 {
		t.Fatalf("lane budget=%d want 1", got)
	}
}

// TestParallelForBudgetCoversAllParts checks exactly-once part execution
// for every budget, including the inline budget=1 path.
func TestParallelForBudgetCoversAllParts(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, budget := range []int{0, 1, 2, 3} {
		for _, parts := range []int{1, 2, 17, 64} {
			hits := make([]int32, parts)
			var mu sync.Mutex
			parallelForBudget(parts, budget, func(p int) {
				mu.Lock()
				hits[p]++
				mu.Unlock()
			})
			for p, h := range hits {
				if h != 1 {
					t.Fatalf("budget=%d parts=%d: part %d ran %d times", budget, parts, p, h)
				}
			}
		}
	}
}

// TestGemmSerialUnderPartition runs a product big enough for the parallel
// path with the lane cap at 1 (forcing serial) and checks correctness plus
// the driver-count bookkeeping.
func TestGemmSerialUnderPartition(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	SetGemmParallelism(1)
	defer SetGemmParallelism(0)
	rng := rand.New(rand.NewSource(31))
	m, k, n := 37, 52, 123 // above gemmParallelThreshold
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := naiveGemmOp(a, b, m, k, n, false, false)
	c := make([]float32, m*n)
	Gemm(a, b, c, m, k, n)
	for i := range c {
		if !relClose(float64(c[i]), float64(want[i]), 1e-3) {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
	st := PoolStats()
	if st.ActiveDrivers != 0 {
		t.Fatalf("ActiveDrivers=%d after Gemm returned, want 0", st.ActiveDrivers)
	}
	if st.MaxFanout != 1 {
		t.Fatalf("MaxFanout=%d want 1", st.MaxFanout)
	}
}
