//go:build amd64

#include "textflag.h"

// func qgemmKernel4x16(quads int64, a *int8, b *uint8, c *int32, ldc int64)
//
// Quantized GEMM micro-kernel: accumulates a 4×16 tile of int32 C (row
// stride ldc ints) with `quads` groups of 4 rank-1 byte updates from the
// packed panels.
//   a: quads groups of 16 bytes — 4 rows × 4 consecutive k-values (s8)
//   b: quads groups of 64 bytes — 16 cols × 4 consecutive k-values (u8)
// Per quad: the two B vectors (8 columns × 4 bytes each) are loaded once;
// each row broadcasts its 4-byte k-group (VPBROADCASTD), multiplies byte
// pairs into saturating int16 (VPMADDUBSW — saturation-free because
// activations are ≤ 127, see QuantParams), widens pairs into int32
// (VPMADDWD with ones) and accumulates (VPADDD). The quad loop is unrolled
// by two.
TEXT ·qgemmKernel4x16(SB), NOSPLIT, $0-40
	MOVQ quads+0(FP), AX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), DX
	SHLQ $2, DX            // row stride in bytes

	// Y8 = sixteen int16(1), for the VPMADDWD pair-sum widening.
	VPCMPEQD Y8, Y8, Y8
	VPSRLW   $15, Y8, Y8

	// Load the 4×16 int32 C tile.
	MOVQ DI, R8
	VMOVDQU (R8), Y0
	VMOVDQU 32(R8), Y1
	ADDQ DX, R8
	VMOVDQU (R8), Y2
	VMOVDQU 32(R8), Y3
	ADDQ DX, R8
	VMOVDQU (R8), Y4
	VMOVDQU 32(R8), Y5
	ADDQ DX, R8
	VMOVDQU (R8), Y6
	VMOVDQU 32(R8), Y7

	MOVQ AX, CX
	SHRQ $1, CX
	JZ   tail

loop2:
	VMOVDQU (BX), Y12
	VMOVDQU 32(BX), Y13

	VPBROADCASTD (SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y0, Y0
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y1, Y1

	VPBROADCASTD 4(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y2, Y2
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y3, Y3

	VPBROADCASTD 8(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y4, Y4
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y5, Y5

	VPBROADCASTD 12(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y6, Y6
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y7, Y7

	VMOVDQU 64(BX), Y12
	VMOVDQU 96(BX), Y13

	VPBROADCASTD 16(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y0, Y0
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y1, Y1

	VPBROADCASTD 20(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y2, Y2
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y3, Y3

	VPBROADCASTD 24(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y4, Y4
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y5, Y5

	VPBROADCASTD 28(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y6, Y6
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y7, Y7

	ADDQ $32, SI
	ADDQ $128, BX
	DECQ CX
	JNE  loop2

tail:
	TESTQ $1, AX
	JZ    done

	VMOVDQU (BX), Y12
	VMOVDQU 32(BX), Y13

	VPBROADCASTD (SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y0, Y0
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y1, Y1

	VPBROADCASTD 4(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y2, Y2
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y3, Y3

	VPBROADCASTD 8(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y4, Y4
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y5, Y5

	VPBROADCASTD 12(SI), Y14
	VPMADDUBSW Y14, Y12, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y6, Y6
	VPMADDUBSW Y14, Y13, Y15
	VPMADDWD   Y8, Y15, Y15
	VPADDD     Y15, Y7, Y7

done:
	// Store the tile back.
	MOVQ DI, R8
	VMOVDQU Y0, (R8)
	VMOVDQU Y1, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y2, (R8)
	VMOVDQU Y3, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y4, (R8)
	VMOVDQU Y5, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y6, (R8)
	VMOVDQU Y7, 32(R8)
	VZEROUPPER
	RET

// func qgemmKernelVNNI4x16(quads int64, a *int8, b *uint8, c *int32, ldc int64)
//
// AVX512-VNNI variant of the quantized micro-kernel over the same packed
// quad panels: VPDPBUSD fuses the VPMADDUBSW/VPMADDWD/VPADDD chain into one
// u8×s8 dot-product-accumulate, tripling per-instruction work. Uses only YMM
// width (AVX512VL), so it runs at full clock on every VNNI part. The quad
// loop is unrolled by two using the EVEX high registers for the second
// quad's operands.
TEXT ·qgemmKernelVNNI4x16(SB), NOSPLIT, $0-40
	MOVQ quads+0(FP), AX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), DX
	SHLQ $2, DX            // row stride in bytes

	// Load the 4×16 int32 C tile.
	MOVQ DI, R8
	VMOVDQU (R8), Y0
	VMOVDQU 32(R8), Y1
	ADDQ DX, R8
	VMOVDQU (R8), Y2
	VMOVDQU 32(R8), Y3
	ADDQ DX, R8
	VMOVDQU (R8), Y4
	VMOVDQU 32(R8), Y5
	ADDQ DX, R8
	VMOVDQU (R8), Y6
	VMOVDQU 32(R8), Y7

	MOVQ AX, CX
	SHRQ $1, CX
	JZ   vtail

vloop2:
	VMOVDQU (BX), Y12
	VMOVDQU 32(BX), Y13
	VMOVDQU32 64(BX), Y18
	VMOVDQU32 96(BX), Y19

	VPBROADCASTD (SI), Y14
	VPBROADCASTD 4(SI), Y15
	VPBROADCASTD 8(SI), Y16
	VPBROADCASTD 12(SI), Y17
	VPDPBUSD Y14, Y12, Y0
	VPDPBUSD Y14, Y13, Y1
	VPDPBUSD Y15, Y12, Y2
	VPDPBUSD Y15, Y13, Y3
	VPDPBUSD Y16, Y12, Y4
	VPDPBUSD Y16, Y13, Y5
	VPDPBUSD Y17, Y12, Y6
	VPDPBUSD Y17, Y13, Y7

	VPBROADCASTD 16(SI), Y20
	VPBROADCASTD 20(SI), Y21
	VPBROADCASTD 24(SI), Y22
	VPBROADCASTD 28(SI), Y23
	VPDPBUSD Y20, Y18, Y0
	VPDPBUSD Y20, Y19, Y1
	VPDPBUSD Y21, Y18, Y2
	VPDPBUSD Y21, Y19, Y3
	VPDPBUSD Y22, Y18, Y4
	VPDPBUSD Y22, Y19, Y5
	VPDPBUSD Y23, Y18, Y6
	VPDPBUSD Y23, Y19, Y7

	ADDQ $32, SI
	ADDQ $128, BX
	DECQ CX
	JNE  vloop2

vtail:
	TESTQ $1, AX
	JZ    vdone

	VMOVDQU (BX), Y12
	VMOVDQU 32(BX), Y13
	VPBROADCASTD (SI), Y14
	VPBROADCASTD 4(SI), Y15
	VPBROADCASTD 8(SI), Y16
	VPBROADCASTD 12(SI), Y17
	VPDPBUSD Y14, Y12, Y0
	VPDPBUSD Y14, Y13, Y1
	VPDPBUSD Y15, Y12, Y2
	VPDPBUSD Y15, Y13, Y3
	VPDPBUSD Y16, Y12, Y4
	VPDPBUSD Y16, Y13, Y5
	VPDPBUSD Y17, Y12, Y6
	VPDPBUSD Y17, Y13, Y7

vdone:
	// Store the tile back.
	MOVQ DI, R8
	VMOVDQU Y0, (R8)
	VMOVDQU Y1, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y2, (R8)
	VMOVDQU Y3, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y4, (R8)
	VMOVDQU Y5, 32(R8)
	ADDQ DX, R8
	VMOVDQU Y6, (R8)
	VMOVDQU Y7, 32(R8)
	VZEROUPPER
	RET

// func maxU8x32(dst, src *uint8, n int64)
//
// dst = max(dst, src) element-wise over n bytes, n a positive multiple of
// 32 — the vertical pass of the separable u8 max pool.
TEXT ·maxU8x32(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $5, CX

mxloop:
	VMOVDQU (DI), Y0
	VPMAXUB (SI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNE  mxloop

	VZEROUPPER
	RET

// qpermIdx reorders the dword groups produced by the in-lane
// VPACKSSDW/VPACKUSWB cascade back into memory order.
DATA qpermIdx<>+0(SB)/4, $0
DATA qpermIdx<>+4(SB)/4, $4
DATA qpermIdx<>+8(SB)/4, $1
DATA qpermIdx<>+12(SB)/4, $5
DATA qpermIdx<>+16(SB)/4, $2
DATA qpermIdx<>+20(SB)/4, $6
DATA qpermIdx<>+24(SB)/4, $3
DATA qpermIdx<>+28(SB)/4, $7
GLOBL qpermIdx<>(SB), RODATA, $32

// func requantU8x32(acc *int32, dst *uint8, n int64, mult, beta float32, lo, hi uint8)
//
// Vectorized requantization: 32 int32 accumulators per iteration are
// converted to float32, scaled (acc*mult + beta, one FMA), rounded to
// nearest-even (VCVTPS2DQ), narrowed int32→int16→u8 with saturation
// (VPACKSSDW/VPACKUSWB + VPERMD lane fix) and clamped to [lo, hi].
// n must be a positive multiple of 32.
TEXT ·requantU8x32(SB), NOSPLIT, $0-34
	MOVQ acc+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX
	SHRQ $5, CX

	VBROADCASTSS mult+24(FP), Y13
	VBROADCASTSS beta+28(FP), Y14
	VPBROADCASTB lo+32(FP), Y11
	VPBROADCASTB hi+33(FP), Y10
	VMOVDQU      qpermIdx<>(SB), Y12

rqloop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3

	VCVTDQ2PS Y0, Y0
	VCVTDQ2PS Y1, Y1
	VCVTDQ2PS Y2, Y2
	VCVTDQ2PS Y3, Y3

	VFMADD213PS Y14, Y13, Y0
	VFMADD213PS Y14, Y13, Y1
	VFMADD213PS Y14, Y13, Y2
	VFMADD213PS Y14, Y13, Y3

	VCVTPS2DQ Y0, Y0
	VCVTPS2DQ Y1, Y1
	VCVTPS2DQ Y2, Y2
	VCVTPS2DQ Y3, Y3

	VPACKSSDW Y1, Y0, Y4
	VPACKSSDW Y3, Y2, Y5
	VPACKUSWB Y5, Y4, Y6
	VPERMD    Y6, Y12, Y6
	VPMAXUB   Y11, Y6, Y6
	VPMINUB   Y10, Y6, Y6
	VMOVDQU   Y6, (DI)

	ADDQ $128, SI
	ADDQ $32, DI
	DECQ CX
	JNE  rqloop

	VZEROUPPER
	RET
