package tensor

// Blocked-GEMM tuning knobs (see PERFORMANCE.md for the derivation):
//
//   - mrTile×nrTile is the base register-blocked micro-kernel footprint. On
//     amd64 the 6×16 tile maps to 12 YMM accumulators driven by FMA; the
//     generic kernel uses the same packed layout. CPUs with AVX-512F swap in
//     the 8×32 tile (16 ZMM accumulators) via gemmTier below.
//   - kcBlock keeps one A micro-panel (mr×kc) plus one B micro-panel (kc×nr)
//     L1-resident while the kernel streams them.
//   - mcBlock keeps the packed A block (mc×kc ≈ 132 KB) L2-resident; each
//     tier rounds it to a multiple of its own mr (gemmTierT.mc).
//   - ncBlock bounds the packed B block (kc×nc ≤ 2 MB, LLC-resident); it must
//     be a multiple of every tier's nr (2048 = 128×16 = 64×32).
//   - gemmParallelThreshold is the m*k*n volume above which the work fans out
//     across the persistent worker pool (see workers.go).
//   - gemmSmallThreshold is the volume below which packing costs more than it
//     saves and a plain unblocked loop runs instead.
const (
	mrTile  = 6
	nrTile  = 16
	kcBlock = 256
	mcBlock = 132
	ncBlock = 2048

	// Edge-tile scratch bounds across every kernel tier (max mr × max nr).
	maxMrTile = 8
	maxNrTile = 32

	gemmParallelThreshold = 1 << 16
	gemmSmallThreshold    = 1 << 13
)

// gemmTierT describes the active FP32 micro-kernel: its register-tile
// footprint, the A-block height rounded to that tile, and which kernel kind
// runs the tile. The kind is an enum dispatched through the per-arch
// gemmKernelTier shim — a direct call, not a func value, so escape analysis
// keeps the panel's edge-tile scratch on the stack (a func field here cost
// one heap allocation per panel and broke the serve path's zero-alloc
// steady state). One product reads the tier once on entry, so a concurrent
// tier swap (only tests do that) never mixes tile geometries mid-product.
type gemmTierT struct {
	name   string
	kind   uint8
	mr, nr int
	mc     int
}

// Kernel kinds for gemmTierT.kind.
const (
	tierKind6x16 uint8 = iota // FMA-or-portable 6×16 (gemmKernel)
	tierKind8x32              // AVX-512F 8×32 (sgemmKernel8x32)
)

// gemmTier is the FP32 kernel tier in use. The default is the 6×16 tile whose
// gemmKernel dispatches FMA vs portable at runtime; init in gemm_amd64.go
// upgrades it to the AVX-512F 8×32 tile when the CPU and OS qualify.
var gemmTier = gemmTierT{name: "portable-6x16", kind: tierKind6x16, mr: mrTile, nr: nrTile, mc: mcBlock}

// GemmKernelName identifies the dispatched FP32 micro-kernel tier
// ("avx512-8x32", "avx2-6x16", or "portable-6x16") for bench snapshots and
// /metrics.
func GemmKernelName() string { return gemmTier.name }

// Gemm computes C = A×B for row-major matrices. A is M×K, B is K×N and C is
// M×N; C is overwritten. Large problems run cache-blocked over packed panels
// with a register-tiled micro-kernel, split across the shared worker pool.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	clear(c[:m*n])
	gemmDispatch(a, b, c, m, k, n, false, false)
}

// GemmAcc computes C += A×B with the same layout as Gemm.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	gemmDispatch(a, b, c, m, k, n, false, false)
}

// GemmTA computes C = Aᵀ×B where A is stored K×M (so Aᵀ is M×K), B is K×N,
// C is M×N.
func GemmTA(a, b, c []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTA buffer too small")
	}
	clear(c[:m*n])
	gemmDispatch(a, b, c, m, k, n, true, false)
}

// GemmTAAcc computes C += Aᵀ×B with A stored K×M.
func GemmTAAcc(a, b, c []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTA buffer too small")
	}
	gemmDispatch(a, b, c, m, k, n, true, false)
}

// GemmTB computes C = A×Bᵀ where A is M×K, B is stored N×K, C is M×N.
func GemmTB(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTB buffer too small")
	}
	clear(c[:m*n])
	gemmDispatch(a, b, c, m, k, n, false, true)
}

// GemmTBAcc computes C += A×Bᵀ with B stored N×K.
func GemmTBAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTB buffer too small")
	}
	gemmDispatch(a, b, c, m, k, n, false, true)
}

// gemmDispatch routes a C += op(A)×op(B) product to the small unblocked loop
// or the packed blocked kernel. aT means A is stored K×M; bT means B is
// stored N×K. At most one of aT/bT is set by the public entry points.
func gemmDispatch(a, b, c []float32, m, k, n int, aT, bT bool) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	if m*k*n <= gemmSmallThreshold {
		gemmSmall(a, b, c, m, k, n, aT, bT)
		return
	}
	gemmBlocked(a, b, c, m, k, n, aT, bT)
}

// gemmSmall is the unblocked fallback for problems too small to amortize
// packing. Loop orders match the storage layouts so every inner loop streams
// contiguously.
func gemmSmall(a, b, c []float32, m, k, n int, aT, bT bool) {
	if bT {
		// C[i,j] = dot(A row i, B row j): both contiguous.
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := b[j*k : j*k+k]
				var sum float32
				for p, av := range arow {
					sum += av * brow[p]
				}
				crow[j] += sum
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			var av float32
			if aT {
				av = a[p*m+i]
			} else {
				av = a[i*k+p]
			}
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmBlocked is the cache-blocked path: loops (jc, pc, ic) over NC/KC/MC
// blocks, packing B and A into micro-panel layout and running the
// register-tiled kernel over every (ir, jr) tile. Parallelism fans the column
// panels of each (ic, pc, jc) block across the worker pool; panels write
// disjoint regions of C.
func gemmBlocked(a, b, c []float32, m, k, n int, aT, bT bool) {
	lda := k
	if aT {
		lda = m
	}
	ldb := n
	if bT {
		ldb = k
	}
	tier := gemmTier
	mr, nr := tier.mr, tier.nr
	// Register as a driver so concurrent products split the pool instead of
	// each fanning to GOMAXPROCS (see gemmWorkerBudget); a budget below 2
	// goroutines means serial is the faster plan.
	drivers := int(gemmDrivers.Add(1))
	defer gemmDrivers.Add(-1)
	budget := gemmWorkerBudget(drivers)
	serial := m*k*n < gemmParallelThreshold || budget < 2
	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		ncPanels := (nc + nr - 1) / nr
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			bbufp := GetScratch(ncPanels * nr * kc)
			bbuf := *bbufp
			packB(bbuf, b, ldb, bT, pc, kc, jc, nc, nr)
			for ic := 0; ic < m; ic += tier.mc {
				mc := min(tier.mc, m-ic)
				mcPanels := (mc + mr - 1) / mr
				abufp := GetScratch(mcPanels * mr * kc)
				abuf := *abufp
				packA(abuf, a, lda, aT, ic, mc, pc, kc, mr)
				blk := gemmBlock{
					abuf: abuf, bbuf: bbuf, c: c,
					ic: ic, jc: jc, kc: kc, mc: mc, nc: nc,
					mcPanels: mcPanels, n: n,
					mr: mr, nr: nr, kind: tier.kind,
				}
				if serial {
					for jp := 0; jp < ncPanels; jp++ {
						blk.panel(jp)
					}
				} else {
					blk.parallel(ncPanels, budget)
				}
				PutScratch(abufp)
			}
			PutScratch(bbufp)
		}
	}
}

// gemmBlock carries one packed (mc×kc)×(kc×nc) block product; panel runs the
// micro-kernel down one nr-wide column panel. It is a named struct (not a
// closure) so the serial path keeps it off the heap.
type gemmBlock struct {
	abuf, bbuf, c      []float32
	ic, jc, kc, mc, nc int
	mcPanels, n        int
	mr, nr             int
	kind               uint8
}

// parallel fans the block's column panels across the worker pool, bounded by
// the driver's goroutine budget. The value receiver confines the
// heap-escaping method value to this path, keeping the serial caller's
// gemmBlock on the stack.
func (g gemmBlock) parallel(ncPanels, budget int) {
	parallelForBudget(ncPanels, budget, g.panel)
}

func (g *gemmBlock) panel(jp int) {
	var tile [maxMrTile * maxNrTile]float32
	mr, nr := g.mr, g.nr
	bpanel := g.bbuf[jp*nr*g.kc:]
	j := g.jc + jp*nr
	cols := min(nr, g.nc-jp*nr)
	for ip := 0; ip < g.mcPanels; ip++ {
		apanel := g.abuf[ip*mr*g.kc:]
		i := g.ic + ip*mr
		rows := min(mr, g.mc-ip*mr)
		if rows == mr && cols == nr {
			gemmKernelTier(g.kind, g.kc, apanel, bpanel, g.c[i*g.n+j:], g.n)
			continue
		}
		// Edge tile: run the full-size kernel on a zeroed scratch tile, then
		// fold the valid region into C.
		clear(tile[:mr*nr])
		gemmKernelTier(g.kind, g.kc, apanel, bpanel, tile[:], nr)
		for r := 0; r < rows; r++ {
			crow := g.c[(i+r)*g.n+j:]
			trow := tile[r*nr:]
			for t := 0; t < cols; t++ {
				crow[t] += trow[t]
			}
		}
	}
}

// packA copies the mc×kc block of op(A) at (i0, p0) into micro-panel layout:
// consecutive groups of mr values hold one column of an mr-row panel,
// zero-padded past the last valid row so the kernel never branches. Full
// panels of the two amd64 tile heights (6 and 8) take unrolled fast paths.
func packA(dst, a []float32, lda int, trans bool, i0, mc, p0, kc, mr int) {
	di := 0
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		if !trans && rows == mr && (mr == 6 || mr == 8) {
			base := (i0 + ir) * lda
			r0 := a[base+p0 : base+p0+kc]
			r1 := a[base+lda+p0:]
			r2 := a[base+2*lda+p0:]
			r3 := a[base+3*lda+p0:]
			r4 := a[base+4*lda+p0:]
			r5 := a[base+5*lda+p0:]
			if mr == 8 {
				r6 := a[base+6*lda+p0:]
				r7 := a[base+7*lda+p0:]
				for p := 0; p < kc; p++ {
					dst[di] = r0[p]
					dst[di+1] = r1[p]
					dst[di+2] = r2[p]
					dst[di+3] = r3[p]
					dst[di+4] = r4[p]
					dst[di+5] = r5[p]
					dst[di+6] = r6[p]
					dst[di+7] = r7[p]
					di += 8
				}
				continue
			}
			for p := 0; p < kc; p++ {
				dst[di] = r0[p]
				dst[di+1] = r1[p]
				dst[di+2] = r2[p]
				dst[di+3] = r3[p]
				dst[di+4] = r4[p]
				dst[di+5] = r5[p]
				di += 6
			}
			continue
		}
		for p := 0; p < kc; p++ {
			for r := 0; r < mr; r++ {
				var v float32
				if r < rows {
					if trans {
						v = a[(p0+p)*lda+i0+ir+r]
					} else {
						v = a[(i0+ir+r)*lda+p0+p]
					}
				}
				dst[di] = v
				di++
			}
		}
	}
}

// packB copies the kc×nc block of op(B) at (p0, j0) into micro-panel layout:
// consecutive groups of nr values hold one row of an nr-column panel,
// zero-padded past the last valid column.
func packB(dst, b []float32, ldb int, trans bool, p0, kc, j0, nc, nr int) {
	di := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		if !trans && cols == nr {
			for p := 0; p < kc; p++ {
				src := (p0+p)*ldb + j0 + jr
				copy(dst[di:di+nr], b[src:src+nr])
				di += nr
			}
			continue
		}
		for p := 0; p < kc; p++ {
			for cidx := 0; cidx < nr; cidx++ {
				var v float32
				if cidx < cols {
					if trans {
						v = b[(j0+jr+cidx)*ldb+p0+p]
					} else {
						v = b[(p0+p)*ldb+j0+jr+cidx]
					}
				}
				dst[di] = v
				di++
			}
		}
	}
}

// gemmKernelGenericTile is the portable micro-kernel over the packed panels:
// the mr×nr tile of C at stride ldc accumulates kc outer products.
func gemmKernelGenericTile(kc int, a, b, ctile []float32, ldc, mr, nr int) {
	for p := 0; p < kc; p++ {
		ap := a[p*mr : p*mr+mr]
		bp := b[p*nr : p*nr+nr]
		for r := 0; r < mr; r++ {
			av := ap[r]
			if av == 0 {
				continue
			}
			crow := ctile[r*ldc : r*ldc+nr]
			for j, bv := range bp {
				crow[j] += av * bv
			}
		}
	}
}

// gemmKernelGeneric is the 6×16 instantiation, used on non-amd64 builds and
// as the runtime fallback when AVX2/FMA is unavailable.
func gemmKernelGeneric(kc int, a, b, ctile []float32, ldc int) {
	gemmKernelGenericTile(kc, a, b, ctile, ldc, mrTile, nrTile)
}

// gemmKernelGeneric8x32 is the 8×32 instantiation — the portable reference
// the AVX-512F kernel is bit-compared against in tests.
func gemmKernelGeneric8x32(kc int, a, b, ctile []float32, ldc int) {
	gemmKernelGenericTile(kc, a, b, ctile, ldc, 8, 32)
}
