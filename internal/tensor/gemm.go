package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the FLOP count above which GEMM fans out across
// goroutines. Below it the goroutine overhead dominates.
const gemmParallelThreshold = 1 << 16

// Gemm computes C = A×B for row-major matrices. A is M×K, B is K×N and C is
// M×N; C is overwritten. The inner loops are ordered (i,k,j) so the hot loop
// streams both B and C rows sequentially, and the work is split across
// goroutines by output-row blocks for large problems.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	gemmAcc(a, b, c, m, k, n)
}

// GemmAcc computes C += A×B with the same layout as Gemm.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	gemmAcc(a, b, c, m, k, n)
}

func gemmAcc(a, b, c []float32, m, k, n int) {
	flops := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if flops < gemmParallelThreshold || workers < 2 || m < 2 {
		gemmRows(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rowsPer {
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows accumulates rows [lo,hi) of C += A×B.
func gemmRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTA computes C = Aᵀ×B where A is K×M (so Aᵀ is M×K), B is K×N, C is M×N.
func GemmTA(a, b, c []float32, m, k, n int) {
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	GemmTAAcc(a, b, c, m, k, n)
}

// GemmTAAcc computes C += Aᵀ×B with A stored K×M.
func GemmTAAcc(a, b, c []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTA buffer too small")
	}
	// Iterate p (rows of A and B) outermost: both are streamed row-major.
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < gemmParallelThreshold || workers < 2 || m < 2 {
		gemmTARows(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rowsPer {
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmTARows(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmTARows accumulates rows [lo,hi) of C += Aᵀ×B, with A stored K×M.
func gemmTARows(a, b, c []float32, lo, hi, k, n int) {
	m := len(a) / k
	for i := lo; i < hi; i++ {
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTB computes C = A×Bᵀ where A is M×K, B is N×K, C is M×N.
func GemmTB(a, b, c []float32, m, k, n int) {
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	GemmTBAcc(a, b, c, m, k, n)
}

// GemmTBAcc computes C += A×Bᵀ with B stored N×K. Each C element is a dot
// product of an A row and a B row, both streamed sequentially.
func GemmTBAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTB buffer too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < gemmParallelThreshold || workers < 2 || m < 2 {
		gemmTBRows(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rowsPer {
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmTBRows(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func gemmTBRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] += sum
		}
	}
}
