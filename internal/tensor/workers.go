package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one persistent pool of worker goroutines, sized by
// GOMAXPROCS, that every parallel kernel (all three GEMM variants) shares.
// Spawning goroutines per GEMM call — the previous design — costs scheduler
// round-trips on every convolution; the pool pays that cost once.
//
// Work distribution is cooperative: parallelFor enqueues lightweight helper
// tasks and the calling goroutine immediately starts chewing through the same
// atomic part counter, so a fully busy pool degrades to inline execution
// instead of deadlocking or queueing behind other callers.

var (
	workCh      = make(chan func(), 256)
	workerCount atomic.Int32
	workerMu    sync.Mutex
)

// ensureWorkers grows the pool to the current GOMAXPROCS. Workers are never
// torn down; they block on the channel when idle.
func ensureWorkers() int {
	want := int32(runtime.GOMAXPROCS(0))
	if workerCount.Load() >= want {
		return int(want)
	}
	workerMu.Lock()
	for workerCount.Load() < want {
		go func() {
			for f := range workCh {
				f()
			}
		}()
		workerCount.Add(1)
	}
	workerMu.Unlock()
	return int(want)
}

// parallelFor executes body(part) for every part in [0, parts), spreading the
// parts across the worker pool and the calling goroutine. It returns once all
// parts have completed. body must be safe to run concurrently for distinct
// parts.
//
// Completion is tracked by a counter of finished parts, not by helper-task
// teardown: under concurrent load a helper may sit queued behind other
// callers' work, and once the parts are exhausted it must cost nothing —
// a stale helper claims no part, never touches body's captures (which the
// caller may recycle immediately after return), and the caller never waits
// on it.
func parallelFor(parts int, body func(part int)) {
	if parts <= 0 {
		return
	}
	if parts == 1 {
		body(0)
		return
	}
	workers := ensureWorkers()
	var next, pending atomic.Int32
	pending.Store(int32(parts))
	done := make(chan struct{})
	run := func() {
		for {
			p := int(next.Add(1)) - 1
			if p >= parts {
				return
			}
			body(p)
			if pending.Add(-1) == 0 {
				close(done)
			}
		}
	}
	helpers := workers - 1
	if helpers > parts-1 {
		helpers = parts - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case workCh <- run:
		default:
			// Pool queue is full (heavy concurrent traffic): the caller
			// covers the remaining parts itself rather than blocking.
		}
	}
	run()
	<-done
}
