package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one persistent pool of worker goroutines, sized by
// GOMAXPROCS, that every parallel kernel (all three GEMM variants) shares.
// Spawning goroutines per GEMM call — the previous design — costs scheduler
// round-trips on every convolution; the pool pays that cost once.
//
// Work distribution is cooperative: parallelFor enqueues lightweight helper
// tasks and the calling goroutine immediately starts chewing through the same
// atomic part counter, so a fully busy pool degrades to inline execution
// instead of deadlocking or queueing behind other callers.

var (
	workCh      = make(chan func(), 256)
	workerCount atomic.Int32
	workerMu    sync.Mutex

	// gemmDrivers counts blocked GEMM/QGemm products currently inside the
	// driver loop. Each driver divides the fan-out budget by this count so N
	// concurrent products (e.g. N serve shards) share the pool instead of
	// each claiming GOMAXPROCS helpers and oversubscribing the cores.
	gemmDrivers atomic.Int32

	// gemmMaxFanout, when >0, caps the goroutines (caller + helpers) one
	// blocked product may occupy. Serve lanes set it to partition the pool.
	gemmMaxFanout atomic.Int32
)

// SetGemmParallelism caps how many goroutines (the calling one plus pool
// helpers) a single blocked GEMM/QGemm product may occupy. Pinned serve
// lanes use it to partition the shared pool: with L lanes on P cores,
// SetGemmParallelism(P/L) keeps L concurrent products from oversubscribing
// the machine, and SetGemmParallelism(1) forces every product serial inside
// its own lane. n <= 0 restores the default (GOMAXPROCS, split dynamically
// across however many drivers are in flight).
func SetGemmParallelism(n int) {
	if n < 0 {
		n = 0
	}
	gemmMaxFanout.Store(int32(n))
}

// GemmParallelism returns the cap set by SetGemmParallelism (0 = unset).
func GemmParallelism() int { return int(gemmMaxFanout.Load()) }

// GemmPoolStats is a point-in-time snapshot of the shared worker pool, for
// /metrics exposure: pool size, the per-product fan-out cap, and how many
// blocked products are in flight right now.
type GemmPoolStats struct {
	Workers       int // goroutines in the persistent pool
	MaxFanout     int // SetGemmParallelism cap (0 = GOMAXPROCS)
	ActiveDrivers int // blocked products currently executing
}

// PoolStats returns the current shared-pool snapshot.
func PoolStats() GemmPoolStats {
	return GemmPoolStats{
		Workers:       int(workerCount.Load()),
		MaxFanout:     int(gemmMaxFanout.Load()),
		ActiveDrivers: int(gemmDrivers.Load()),
	}
}

// gemmWorkerBudget returns the number of goroutines (including the caller)
// one blocked product should use when `drivers` products are in flight —
// the caller must already be registered in gemmDrivers. A budget below 2
// means the product should run serial: with the pool shared N ways there is
// no idle worker to recruit, and queueing helpers behind other drivers'
// work only adds scheduler churn (the former m*k*n-only cutoff
// double-committed the pool exactly this way).
func gemmWorkerBudget(drivers int) int {
	avail := runtime.GOMAXPROCS(0)
	if limit := int(gemmMaxFanout.Load()); limit > 0 && limit < avail {
		avail = limit
	}
	if drivers > 1 {
		avail /= drivers
	}
	return avail
}

// ensureWorkers grows the pool to the current GOMAXPROCS. Workers are never
// torn down; they block on the channel when idle.
func ensureWorkers() int {
	want := int32(runtime.GOMAXPROCS(0))
	if workerCount.Load() >= want {
		return int(want)
	}
	workerMu.Lock()
	for workerCount.Load() < want {
		go func() {
			for f := range workCh {
				f()
			}
		}()
		workerCount.Add(1)
	}
	workerMu.Unlock()
	return int(want)
}

// parallelFor executes body(part) for every part in [0, parts), spreading the
// parts across the worker pool and the calling goroutine. It returns once all
// parts have completed. body must be safe to run concurrently for distinct
// parts.
//
// Completion is tracked by a counter of finished parts, not by helper-task
// teardown: under concurrent load a helper may sit queued behind other
// callers' work, and once the parts are exhausted it must cost nothing —
// a stale helper claims no part, never touches body's captures (which the
// caller may recycle immediately after return), and the caller never waits
// on it.
func parallelFor(parts int, body func(part int)) {
	parallelForBudget(parts, 0, body)
}

// parallelForBudget is parallelFor with an explicit goroutine budget
// (caller + helpers); budget <= 0 means the full pool width.
func parallelForBudget(parts, budget int, body func(part int)) {
	if parts <= 0 {
		return
	}
	if parts == 1 || budget == 1 {
		for p := 0; p < parts; p++ {
			body(p)
		}
		return
	}
	workers := ensureWorkers()
	if budget > 0 && budget < workers {
		workers = budget
	}
	var next, pending atomic.Int32
	pending.Store(int32(parts))
	done := make(chan struct{})
	run := func() {
		for {
			p := int(next.Add(1)) - 1
			if p >= parts {
				return
			}
			body(p)
			if pending.Add(-1) == 0 {
				close(done)
			}
		}
	}
	helpers := workers - 1
	if helpers > parts-1 {
		helpers = parts - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case workCh <- run:
		default:
			// Pool queue is full (heavy concurrent traffic): the caller
			// covers the remaining parts itself rather than blocking.
		}
	}
	run()
	<-done
}
