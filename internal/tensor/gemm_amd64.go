//go:build amd64

package tensor

// sgemmKernel6x16 is the FMA micro-kernel in gemm_amd64.s.
//
//go:noescape
func sgemmKernel6x16(kc int64, a, b, c *float32, ldc int64)

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// haveFMA reports whether the CPU and OS support the AVX2+FMA kernel
// (AVX2, FMA3, and YMM state enabled via XSAVE).
var haveFMA = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM+YMM state saving.
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// gemmKernel runs one packed 6×16 micro-tile update (see gemmKernelGeneric
// for the semantics), dispatching to the FMA kernel when available.
func gemmKernel(kc int, a, b, ctile []float32, ldc int) {
	if haveFMA {
		sgemmKernel6x16(int64(kc), &a[0], &b[0], &ctile[0], int64(ldc))
		return
	}
	gemmKernelGeneric(kc, a, b, ctile, ldc)
}
