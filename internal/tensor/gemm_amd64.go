//go:build amd64

package tensor

import "os"

// sgemmKernel6x16 is the FMA micro-kernel in gemm_amd64.s.
//
//go:noescape
func sgemmKernel6x16(kc int64, a, b, c *float32, ldc int64)

// sgemmKernel8x32 is the AVX-512F micro-kernel in gemm_amd64.s: a 8×32 tile
// held in 16 ZMM accumulators.
//
//go:noescape
func sgemmKernel8x32(kc int64, a, b, c *float32, ldc int64)

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// haveFMA reports whether the CPU and OS support the AVX2+FMA kernel
// (AVX2, FMA3, and YMM state enabled via XSAVE).
var haveFMA = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM+YMM state saving.
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// haveAVX512 reports whether the ZMM-width FP32 kernel may run: AVX-512F for
// the instructions, plus AVX512VL as the downclocking guard — parts that ship
// F without VL are the early server generation where 512-bit execution
// license-throttles the whole core, so they stay on the AVX2 tier — and XCR0
// opmask/ZMM state enabled by the OS (same 0xe6 mask as detectVNNI).
// PERCIVAL_NO_AVX512=1 forces the AVX2 tier at runtime for boxes where even
// guarded 512-bit execution downclocks neighbours.
var haveAVX512 = detectAVX512()

func detectAVX512() bool {
	if !haveFMA || os.Getenv("PERCIVAL_NO_AVX512") != "" {
		return false
	}
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const (
		avx512f  = 1 << 16
		avx512vl = 1 << 31
	)
	if b7&avx512f == 0 || b7&avx512vl == 0 {
		return false
	}
	lo, _ := xgetbv0()
	return lo&0xe6 == 0xe6
}

// init upgrades the FP32 kernel tier past the portable default: AVX-512F
// 8×32 when the CPU qualifies, else the FMA-dispatching 6×16 keeps the
// default geometry and only the reported name changes.
func init() {
	if haveAVX512 {
		gemmTier = gemmTierT{name: "avx512-8x32", kind: tierKind8x32, mr: 8, nr: 32, mc: 128}
	} else if haveFMA {
		gemmTier.name = "avx2-6x16"
	}
}

// gemmKernel runs one packed 6×16 micro-tile update (see gemmKernelGeneric
// for the semantics), dispatching to the FMA kernel when available.
func gemmKernel(kc int, a, b, ctile []float32, ldc int) {
	if haveFMA {
		sgemmKernel6x16(int64(kc), &a[0], &b[0], &ctile[0], int64(ldc))
		return
	}
	gemmKernelGeneric(kc, a, b, ctile, ldc)
}

// gemmKernelTier dispatches one packed micro-tile update by tier kind with
// direct calls (see gemmTierT for why this is not a func value). The 8×32
// kind is only ever installed behind detectAVX512.
func gemmKernelTier(kind uint8, kc int, a, b, ctile []float32, ldc int) {
	if kind == tierKind8x32 {
		sgemmKernel8x32(int64(kc), &a[0], &b[0], &ctile[0], int64(ldc))
		return
	}
	gemmKernel(kc, a, b, ctile, ldc)
}
