//go:build !amd64

package tensor

// haveQuantASM is false on platforms without the AVX2 quantized kernels.
const haveQuantASM = false

// maxU8x32 is never called when haveQuantASM is false.
func maxU8x32(dst, src *uint8, n int64) {
	panic("tensor: maxU8x32 without assembly support")
}

// requantU8ASM is never called when haveQuantASM is false.
func requantU8ASM(acc *int32, dst *uint8, n int64, mult, beta float32, lo, hi uint8) {
	panic("tensor: requantU8ASM without assembly support")
}

// qgemmKernel runs one packed 4×16 micro-tile update on platforms without an
// assembly kernel.
func qgemmKernel(quads int, a []int8, b []uint8, ctile []int32, ldc int) {
	qgemmKernelGeneric(quads, a, b, ctile, ldc)
}
