package tensor

import (
	"fmt"
	"math"
)

// PoolSpec describes a 2-D pooling window.
type PoolSpec struct {
	K      int // window size (square)
	Stride int
	Pad    int
}

// OutSize returns the output spatial size of pooling an h×w input. Following
// the convention used by SqueezeNet (ceil mode off), partial windows beyond
// the padded edge are dropped.
func (p PoolSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.Pad-p.K)/p.Stride + 1
	ow = (w+2*p.Pad-p.K)/p.Stride + 1
	return oh, ow
}

// MaxPoolForward computes max pooling over x ([N,C,H,W]) and records the
// linear argmax index of each output element (into x.Data) so the backward
// pass can route gradients. Padded positions are -inf and never win.
func MaxPoolForward(x *Tensor, p PoolSpec) (y *Tensor, argmax []int32) {
	n, c := x.Shape[0], x.Shape[1]
	oh, ow := p.OutSize(x.Shape[2], x.Shape[3])
	y = New(n, c, oh, ow)
	argmax = make([]int32, y.Len())
	MaxPoolForwardArgmax(x, p, y, argmax)
	return y, argmax
}

// MaxPoolForwardArgmax is the scratch-friendly body of MaxPoolForward: it
// pools into the caller-provided y ([N,C,outH,outW]) and argmax (y.Len()
// elements), allocating nothing. The training path routes argmax through
// GetScratchI32/PutScratchI32 so repeated forward/backward cycles reuse one
// buffer instead of allocating per call.
func MaxPoolForwardArgmax(x *Tensor, p PoolSpec, y *Tensor, argmax []int32) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := p.OutSize(h, w)
	if y.Shape[0] != n || y.Shape[1] != c || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: MaxPoolForwardArgmax: output shape %v, want [%d,%d,%d,%d]", y.Shape, n, c, oh, ow))
	}
	if len(argmax) < y.Len() {
		panic(fmt.Sprintf("tensor: MaxPoolForwardArgmax: argmax has %d elements, need %d", len(argmax), y.Len()))
	}
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := int32(-1)
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := x.Data[plane+iy*w+ix]
							if v > best {
								best = v
								bi = int32(plane + iy*w + ix)
							}
						}
					}
					y.Data[oi] = best
					argmax[oi] = bi
					oi++
				}
			}
		}
	}
}

// MaxPoolForwardInto computes max pooling into a caller-provided output
// tensor without recording argmax indices — the inference-path variant, which
// performs no allocation. y must be [N,C,outH,outW].
func MaxPoolForwardInto(x *Tensor, p PoolSpec, y *Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := p.OutSize(h, w)
	if y.Shape[0] != n || y.Shape[1] != c || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: MaxPoolForwardInto: output shape %v, want [%d,%d,%d,%d]", y.Shape, n, c, oh, ow))
	}
	oi := 0
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride - p.Pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					row := plane[iy*w : iy*w+w]
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride - p.Pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						if v := row[ix]; v > best {
							best = v
						}
					}
				}
				y.Data[oi] = best
				oi++
			}
		}
	}
}

// MaxPoolBackward scatters dy back to the winning input positions.
func MaxPoolBackward(dy *Tensor, argmax []int32, inShape []int) *Tensor {
	dx := New(inShape...)
	for i, g := range dy.Data {
		if a := argmax[i]; a >= 0 {
			dx.Data[a] += g
		}
	}
	return dx
}

// AvgPoolForward computes average pooling over x ([N,C,H,W]). The divisor is
// the full window area (count_include_pad=false is not needed because the
// network only average-pools unpadded).
func AvgPoolForward(x *Tensor, p PoolSpec) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := p.OutSize(h, w)
	y := New(n, c, oh, ow)
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += x.Data[plane+iy*w+ix]
						}
					}
					y.Data[oi] = sum * inv
					oi++
				}
			}
		}
	}
	return y
}

// AvgPoolBackward distributes dy uniformly over each pooling window.
func AvgPoolBackward(dy *Tensor, p PoolSpec, inShape []int) *Tensor {
	dx := New(inShape...)
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	oh, ow := p.OutSize(h, w)
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.Data[oi] * inv
					oi++
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							dx.Data[plane+iy*w+ix] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// GlobalAvgPoolForward averages each channel plane to a single value,
// producing [N,C,1,1]. This is SqueezeNet's classifier head reduction.
func GlobalAvgPoolForward(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := New(n, c, 1, 1)
	inv := 1 / float32(h*w)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		var sum float32
		for _, v := range plane {
			sum += v
		}
		y.Data[i] = sum * inv
	}
	return y
}

// GlobalAvgPoolInto averages each channel plane of x ([N,C,H,W]) into dst,
// which must hold N*C elements — the allocation-free inference variant of
// GlobalAvgPoolForward.
func GlobalAvgPoolInto(x *Tensor, dst []float32) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if len(dst) < n*c {
		panic(fmt.Sprintf("tensor: GlobalAvgPoolInto: dst has %d elements, need %d", len(dst), n*c))
	}
	inv := 1 / float32(h*w)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		var sum float32
		for _, v := range plane {
			sum += v
		}
		dst[i] = sum * inv
	}
}

// GlobalAvgPoolBackward spreads each channel gradient uniformly over the
// input plane.
func GlobalAvgPoolBackward(dy *Tensor, inShape []int) *Tensor {
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	dx := New(inShape...)
	inv := 1 / float32(h*w)
	for i := 0; i < n*c; i++ {
		g := dy.Data[i] * inv
		plane := dx.Data[i*h*w : (i+1)*h*w]
		for j := range plane {
			plane[j] = g
		}
	}
	return dx
}
